#!/usr/bin/env bash
# Distributed end-to-end gate: a 1-coordinator + 3-worker gpsd fleet over
# a small universe must produce a merged inventory byte-identical to the
# single-process 4-shard run, and a split+join re-balance of the
# distributed checkpoint must round-trip byte-identically (no rescan).
#
# CI runs this under `timeout 300` so a wedged worker fails the job
# instead of hanging it; everything the run produces lands in $DIR, which
# CI uploads as an artifact on failure.
set -euo pipefail

BIN=${BIN:-./gpsd}
DIR=${DIR:-e2e}
mkdir -p "$DIR"

# -parallelism 1 pins the per-shard compute order so budget cutoffs are
# deterministic; the finite budget makes the slicing path load-bearing.
COMMON=(-seed 7 -prefixes 8 -density 0.02 -seed-fraction 0.05
        -epochs 3 -budget 60000 -shards 4 -parallelism 1 -exact-counts)

echo "== single-process reference (4 in-process shards)"
"$BIN" "${COMMON[@]}" -checkpoint "$DIR/single.ckpt" -inventory "$DIR/single.inv" \
    > "$DIR/single.log" 2>&1

echo "== starting 3 workers"
pids=()
cleanup() { kill "${pids[@]}" 2>/dev/null || true; }
trap cleanup EXIT
ports=(7461 7462 7463)
for p in "${ports[@]}"; do
  "$BIN" -worker -listen "127.0.0.1:$p" > "$DIR/worker-$p.log" 2>&1 &
  pids+=($!)
done

echo "== distributed run (coordinator + 3 workers, 4 shards)"
workers=$(IFS=,; echo "${ports[*]/#/127.0.0.1:}")
"$BIN" "${COMMON[@]}" -coordinator -workers "$workers" \
    -checkpoint "$DIR/dist.ckpt" -shard-checkpoints "$DIR/shards" \
    -inventory "$DIR/dist.inv" > "$DIR/coordinator.log" 2>&1

echo "== diffing merged inventories"
cmp "$DIR/single.inv" "$DIR/dist.inv"

echo "== re-balance round trip (4 -> 8 -> 4 shards, no rescan)"
cp "$DIR/dist.ckpt" "$DIR/rebalance.ckpt"
"$BIN" -rebalance split -checkpoint "$DIR/rebalance.ckpt" >> "$DIR/coordinator.log"
"$BIN" -rebalance join  -checkpoint "$DIR/rebalance.ckpt" >> "$DIR/coordinator.log"
cmp "$DIR/dist.ckpt" "$DIR/rebalance.ckpt"

echo "PASS: distributed inventory byte-identical to single-process; re-balance round-trips"
