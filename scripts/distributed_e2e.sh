#!/usr/bin/env bash
# Distributed end-to-end gate: a 1-coordinator + 3-worker gpsd fleet over
# a small universe must produce a merged inventory byte-identical to the
# single-process 4-shard run, a split+join re-balance of the distributed
# checkpoint must round-trip byte-identically (no rescan), and the
# inventory query API must serve identical answers from the single
# process, the distributed coordinator, and a standalone GPSV file —
# totals matching the merged inventory exactly.
#
# The coordinator also exports its replication feed: two read replicas
# subscribe and must serve /v1 responses byte-identical to the origin's
# (bodies and ETags) at every epoch, one replica is killed and restarted
# mid-run and must re-converge, and a /v1/watch consumer accumulating
# the NDJSON change feed must reconstruct the final inventory exactly —
# byte-identical to the coordinator's -inventory artifact.
#
# CI runs this under `timeout 300` so a wedged worker fails the job
# instead of hanging it; everything the run produces lands in $DIR, which
# CI uploads as an artifact on failure.
set -euo pipefail

BIN=${BIN:-./gpsd}
DIR=${DIR:-e2e}
mkdir -p "$DIR"

# -parallelism 1 pins the per-shard compute order so budget cutoffs are
# deterministic; the finite budget makes the slicing path load-bearing.
COMMON=(-seed 7 -prefixes 8 -density 0.02 -seed-fraction 0.05
        -epochs 3 -budget 60000 -shards 4 -parallelism 1 -exact-counts)

pids=()
cleanup() { kill "${pids[@]}" 2>/dev/null || true; }
trap cleanup EXIT

# wait_stats URL EPOCH: poll until the served stats report the epoch.
wait_stats() {
  for _ in $(seq 1 150); do
    if curl -fsS "$1/v1/stats" 2>/dev/null | grep -q "\"epoch\":$2,"; then
      return 0
    fi
    sleep 0.2
  done
  echo "server at $1 never served epoch $2" >&2
  return 1
}

# wait_healthy URL: poll until /v1/healthz answers ok.
wait_healthy() {
  for _ in $(seq 1 150); do
    if curl -fsS "$1/v1/healthz" 2>/dev/null | grep -q '"status":"ok"'; then
      return 0
    fi
    sleep 0.2
  done
  echo "server at $1 never became healthy" >&2
  return 1
}

# metric_value FILE NAME: extract one sample value from a saved
# /v1/metricz scrape (exact series match, label block included in NAME).
metric_value() {
  local v
  v=$(awk -v m="$2" '$1 == m {print $2; exit}' "$1")
  if [ -z "$v" ]; then
    echo "metric $2 missing from $1" >&2
    return 1
  fi
  echo "$v"
}

# fetch_at_epoch URL PATH EPOCH OUT: fetch one document, retrying until
# its ETag pins the wanted epoch — so a pair of captures taken from two
# servers is known to describe the same snapshot even while epochs
# commit underneath.
fetch_at_epoch() {
  for _ in $(seq 1 150); do
    if curl -fsS -D "$4.hdr" -o "$4" "$1$2" 2>/dev/null \
        && grep -qi "etag: \"gps-epoch-$3\"" "$4.hdr"; then
      return 0
    fi
    sleep 0.1
  done
  echo "server at $1 never served $2 at epoch $3" >&2
  return 1
}

# snapshot_queries URL PREFIX: capture the query set the gate diffs.
# List bodies carry no epoch (it travels in the ETag), so equal
# inventories must serve equal bytes whatever process answers.
snapshot_queries() {
  curl -fsS "$1/v1/stats" > "$DIR/$2.stats.json"
  curl -fsS "$1/v1/ports" > "$DIR/$2.ports.json"
  local port
  port=$(grep -o '"port":[0-9]*' "$DIR/$2.ports.json" | head -1 | cut -d: -f2)
  echo "$port" > "$DIR/$2.port"
  curl -fsS "$1/v1/port/$port?limit=50" > "$DIR/$2.port.json"
}

echo "== single-process reference (4 in-process shards, serving on :7471)"
"$BIN" "${COMMON[@]}" -checkpoint "$DIR/single.ckpt" -inventory "$DIR/single.inv" \
    -serve 127.0.0.1:7471 > "$DIR/single.log" 2>&1 &
single_pid=$!
pids+=($single_pid)
wait_stats http://127.0.0.1:7471 3
snapshot_queries http://127.0.0.1:7471 single
curl -fsS http://127.0.0.1:7471/v1/metricz > "$DIR/single.metricz"
# SIGTERM must flush the final checkpoint + inventory and exit 0: the
# .inv the rest of the gate diffs only exists if clean shutdown works.
kill -TERM $single_pid
wait $single_pid
test -s "$DIR/single.inv"

echo "== starting 3 workers"
ports=(7461 7462 7463)
for p in "${ports[@]}"; do
  "$BIN" -worker -listen "127.0.0.1:$p" -debug-addr "127.0.0.1:$((p+100))" \
      > "$DIR/worker-$p.log" 2>&1 &
  pids+=($!)
done

echo "== distributed run (coordinator + 3 workers, 4 shards, serving on :7472, feed on :7480)"
# -interval paces the epochs so the replica checks below can observe each
# one; determinism is untouched (churn derives from seed+epoch, not wall
# time).
workers=$(IFS=,; echo "${ports[*]/#/127.0.0.1:}")
"$BIN" "${COMMON[@]}" -coordinator -workers "$workers" \
    -checkpoint "$DIR/dist.ckpt" -shard-checkpoints "$DIR/shards" \
    -inventory "$DIR/dist.inv" -serve 127.0.0.1:7472 \
    -feed 127.0.0.1:7480 -interval 2s > "$DIR/coordinator.log" 2>&1 &
coord_pid=$!
pids+=($coord_pid)

echo "== two read replicas (:7474, :7475) and a /v1/watch consumer"
"$BIN" -replica -upstream 127.0.0.1:7480 -serve 127.0.0.1:7474 > "$DIR/replica-a.log" 2>&1 &
replica_a=$!
pids+=($replica_a)
"$BIN" -replica -upstream 127.0.0.1:7480 -serve 127.0.0.1:7475 > "$DIR/replica-b.log" 2>&1 &
replica_b=$!
pids+=($replica_b)
# Replicas redial their upstream until it exists; the watch client makes
# one HTTP request, so it starts once the origin is actually serving.
wait_healthy http://127.0.0.1:7472
"$BIN" -watch http://127.0.0.1:7472/v1/watch -epochs 3 \
    -inventory "$DIR/watch.inv" > "$DIR/watch.log" 2>&1 &
watch_pid=$!
pids+=($watch_pid)

# Replica responses must be byte-identical to the origin's — bodies and
# ETags — at every epoch. The ETag-pinned fetches make each comparison
# race-free against the next commit.
for epoch in 1 2 3; do
  wait_stats http://127.0.0.1:7472 $epoch
  wait_stats http://127.0.0.1:7474 $epoch
  fetch_at_epoch http://127.0.0.1:7472 /v1/stats $epoch "$DIR/origin.e$epoch.stats.json"
  fetch_at_epoch http://127.0.0.1:7472 /v1/ports $epoch "$DIR/origin.e$epoch.ports.json"
  fetch_at_epoch http://127.0.0.1:7474 /v1/stats $epoch "$DIR/replica.e$epoch.stats.json"
  fetch_at_epoch http://127.0.0.1:7474 /v1/ports $epoch "$DIR/replica.e$epoch.ports.json"
  cmp "$DIR/origin.e$epoch.stats.json" "$DIR/replica.e$epoch.stats.json"
  cmp "$DIR/origin.e$epoch.ports.json" "$DIR/replica.e$epoch.ports.json"
  echo "   epoch $epoch: replica byte-identical to origin"

  case $epoch in
  1)
    # Kill replica B mid-run; it misses epoch 2 entirely.
    kill -TERM $replica_b
    wait $replica_b
    ;;
  2)
    # Restart it: a replica is stateless, so the new process must
    # re-bootstrap from a snapshot frame and catch up on its own.
    "$BIN" -replica -upstream 127.0.0.1:7480 -serve 127.0.0.1:7475 > "$DIR/replica-b2.log" 2>&1 &
    replica_b=$!
    pids+=($replica_b)
    ;;
  esac
done

echo "== restarted replica re-converges"
wait_stats http://127.0.0.1:7475 3
fetch_at_epoch http://127.0.0.1:7475 /v1/stats 3 "$DIR/replica-b.e3.stats.json"
fetch_at_epoch http://127.0.0.1:7475 /v1/ports 3 "$DIR/replica-b.e3.ports.json"
cmp "$DIR/origin.e3.stats.json" "$DIR/replica-b.e3.stats.json"
cmp "$DIR/origin.e3.ports.json" "$DIR/replica-b.e3.ports.json"

echo "== replica telemetry (lag, delta/bootstrap accounting)"
curl -fsS http://127.0.0.1:7474/v1/metricz > "$DIR/replica-a.metricz"
curl -fsS http://127.0.0.1:7475/v1/metricz > "$DIR/replica-b.metricz"
lag_a=$(metric_value "$DIR/replica-a.metricz" gps_replica_lag_epochs)
lag_b=$(metric_value "$DIR/replica-b.metricz" gps_replica_lag_epochs)
deltas_a=$(metric_value "$DIR/replica-a.metricz" gps_replica_deltas_applied_total)
boots_a=$(metric_value "$DIR/replica-a.metricz" gps_replica_bootstraps_total)
boots_b=$(metric_value "$DIR/replica-b.metricz" gps_replica_bootstraps_total)
echo "replica A: lag=$lag_a deltas=$deltas_a bootstraps=$boots_a; replica B (restarted): lag=$lag_b bootstraps=$boots_b"
if [ "$lag_a" != "0" ] || [ "$lag_b" != "0" ]; then
  echo "replicas still lag the origin after convergence" >&2
  exit 1
fi
# A lived through the whole run: one bootstrap, then pure deltas. B's
# fresh process proves the restart path took a snapshot bootstrap.
if [ "$boots_a" -lt 1 ] || [ "$deltas_a" -lt 2 ] || [ "$boots_b" -lt 1 ]; then
  echo "replica feed accounting inconsistent with a bootstrap+deltas run" >&2
  exit 1
fi

echo "== watch consumer reconstructs the final inventory"
wait $watch_pid
test -s "$DIR/watch.inv"

snapshot_queries http://127.0.0.1:7472 dist
curl -fsS http://127.0.0.1:7472/v1/metricz > "$DIR/dist.metricz"
feed_head=$(metric_value "$DIR/dist.metricz" gps_feed_head_epoch)
if [ "$feed_head" != "3" ]; then
  echo "origin feed head is $feed_head, want 3" >&2
  exit 1
fi
kill -TERM $coord_pid
wait $coord_pid
kill -TERM $replica_a $replica_b
wait $replica_a $replica_b 2>/dev/null || true

# The watch consumer folded snapshot+delta events from an empty map; its
# persisted inventory must equal the coordinator's artifact exactly.
cmp "$DIR/watch.inv" "$DIR/dist.inv"

echo "== cross-mode telemetry consistency (/v1/metricz)"
# The workers are still listening (only the coordinator exited), so their
# debug servers answer. Each worker materialized only its partition of
# the world: the per-worker gps_world_hosts gauges must sum exactly to
# the full-world figure the coordinator reported from its seeding
# universe — the ~1/N memory claim, asserted instead of grepped from a
# free-text MemStats log line.
for p in "${ports[@]}"; do
  curl -fsS "http://127.0.0.1:$((p+100))/v1/metricz" > "$DIR/worker-$p.metricz"
done

coord_hosts=$(metric_value "$DIR/dist.metricz" gps_world_hosts)
single_hosts=$(metric_value "$DIR/single.metricz" gps_world_hosts)
worker_hosts=0
worker_shards=0
worker_epochs=0
for p in "${ports[@]}"; do
  worker_hosts=$((worker_hosts + $(metric_value "$DIR/worker-$p.metricz" gps_world_hosts)))
  worker_shards=$((worker_shards + $(metric_value "$DIR/worker-$p.metricz" gps_world_owned_shards)))
  worker_epochs=$((worker_epochs + $(metric_value "$DIR/worker-$p.metricz" gps_worker_epochs_total)))
done
echo "world hosts: single=$single_hosts coordinator=$coord_hosts workers(sum)=$worker_hosts"
if [ "$worker_hosts" -ne "$coord_hosts" ] || [ "$single_hosts" -ne "$coord_hosts" ]; then
  echo "per-worker world partitions do not sum to the full world" >&2
  exit 1
fi
# The partitions must also cover the shard layout exactly, and the fleet
# must have executed every shard epoch: shards x epochs.
if [ "$worker_shards" -ne 4 ]; then
  echo "workers own $worker_shards shards, want 4" >&2
  exit 1
fi
if [ "$worker_epochs" -ne 12 ]; then
  echo "workers executed $worker_epochs shard epochs, want 4 shards x 3 epochs = 12" >&2
  exit 1
fi
# Epoch counters must agree across modes: the in-process coordinator
# counts epochs directly; the distributed one's RPC histogram counts one
# observation per shard epoch; both serve the same snapshot epoch.
single_epochs=$(metric_value "$DIR/single.metricz" gps_coordinator_epochs_total)
rpc_epochs=0
for shard in 0 1 2 3; do
  rpc_epochs=$((rpc_epochs + $(metric_value "$DIR/dist.metricz" "gps_rpc_shard_epoch_seconds_count{shard=\"$shard\"}")))
done
single_snap=$(metric_value "$DIR/single.metricz" gps_snapshot_epoch)
dist_snap=$(metric_value "$DIR/dist.metricz" gps_snapshot_epoch)
echo "epochs: single=$single_epochs rpc(sum)=$rpc_epochs snapshots: single=$single_snap dist=$dist_snap"
if [ "$single_epochs" -ne 3 ] || [ "$rpc_epochs" -ne 12 ]; then
  echo "epoch counters diverge across modes" >&2
  exit 1
fi
if [ "$single_snap" -ne 3 ] || [ "$dist_snap" -ne 3 ]; then
  echo "served snapshot epochs diverge" >&2
  exit 1
fi

echo "== diffing merged inventories"
cmp "$DIR/single.inv" "$DIR/dist.inv"

echo "== diffing served queries: distributed == single-process"
cmp "$DIR/single.stats.json" "$DIR/dist.stats.json"
cmp "$DIR/single.ports.json" "$DIR/dist.ports.json"
cmp "$DIR/single.port.json"  "$DIR/dist.port.json"

echo "== standalone file server over the merged inventory (:7473)"
"$BIN" -serve 127.0.0.1:7473 -serve-file "$DIR/single.inv" > "$DIR/servefile.log" 2>&1 &
file_pid=$!
pids+=($file_pid)
wait_healthy http://127.0.0.1:7473
snapshot_queries http://127.0.0.1:7473 file
kill -TERM $file_pid
wait $file_pid

# The file server derives its epoch from the inventory, so list bodies
# must match byte for byte and the stats totals must agree with the live
# daemons' (the aggregates are pure functions of the merged inventory).
cmp "$DIR/single.ports.json" "$DIR/file.ports.json"
cmp "$DIR/single.port.json"  "$DIR/file.port.json"
live_totals=$(grep -o '"services":[0-9]*,"hosts":[0-9]*,"ports":[0-9]*' "$DIR/single.stats.json")
file_totals=$(grep -o '"services":[0-9]*,"hosts":[0-9]*,"ports":[0-9]*' "$DIR/file.stats.json")
if [ -z "$live_totals" ] || [ "$live_totals" != "$file_totals" ]; then
  echo "served totals diverge: live [$live_totals] vs file [$file_totals]" >&2
  exit 1
fi

echo "== re-balance round trip (4 -> 8 -> 4 shards, no rescan)"
cp "$DIR/dist.ckpt" "$DIR/rebalance.ckpt"
"$BIN" rebalance split -checkpoint "$DIR/rebalance.ckpt" >> "$DIR/coordinator.log"
"$BIN" rebalance join  -checkpoint "$DIR/rebalance.ckpt" >> "$DIR/coordinator.log"
cmp "$DIR/dist.ckpt" "$DIR/rebalance.ckpt"

echo "== cluster churn: join a 4th worker mid-run, drain one, leave cleanly"
# A fresh fleet on fresh ports runs 10 paced epochs while membership
# churns underneath it: a 4th worker joins through the coordinator's
# -cluster listener and receives a live shard migration, one of the
# original workers is drained over the admin API, and the joiner leaves
# again via SIGTERM + -leave. Shard epochs are deterministic wherever
# they execute, so the merged inventory must stay byte-identical to a
# single-process run of the same 10 epochs.
CHURN_COMMON=(-seed 7 -prefixes 8 -density 0.02 -seed-fraction 0.05
              -epochs 10 -budget 60000 -shards 4 -parallelism 1 -exact-counts)
CO=http://127.0.0.1:7476

"$BIN" "${CHURN_COMMON[@]}" -inventory "$DIR/churn-single.inv" > "$DIR/churn-single.log" 2>&1
test -s "$DIR/churn-single.inv"

churn_ports=(7481 7482 7483)
for p in "${churn_ports[@]}"; do
  "$BIN" worker -listen "127.0.0.1:$p" > "$DIR/churn-worker-$p.log" 2>&1 &
  pids+=($!)
done
churn_workers=$(IFS=,; echo "${churn_ports[*]/#/127.0.0.1:}")
"$BIN" "${CHURN_COMMON[@]}" -coordinator -workers "$churn_workers" \
    -cluster 127.0.0.1:7490 -admin -serve 127.0.0.1:7476 \
    -inventory "$DIR/churn-dist.inv" -interval 1s > "$DIR/churn-coordinator.log" 2>&1 &
churn_coord=$!
pids+=($churn_coord)
wait_healthy $CO

# The readiness doc carries the coordinator role, and the probe-friendly
# text mode answers with the bare status word.
curl -fsS "$CO/v1/healthz" | grep -q '"role":"coordinator"'
test "$(curl -fsS "$CO/v1/healthz?format=text")" = "ok"

# wait_cluster PATTERN: poll GET /v1/cluster until one worker row
# matches. Rows are captured object-by-object ("id" opens a row, "}"
# closes it — no nested braces inside a worker row).
wait_cluster() {
  for _ in $(seq 1 150); do
    if curl -fsS "$CO/v1/cluster" 2>/dev/null | grep -o '"id":[^}]*' | grep -q "$1"; then
      return 0
    fi
    sleep 0.2
  done
  echo "cluster doc never matched: $1" >&2
  curl -fsS "$CO/v1/cluster" >&2 || true
  return 1
}

"$BIN" worker -join 127.0.0.1:7490 -name w4 -leave \
    -debug-addr 127.0.0.1:7584 > "$DIR/churn-w4.log" 2>&1 &
w4_pid=$!
pids+=($w4_pid)

# The joiner must be admitted and receive at least one live-migrated
# shard at the next epoch boundary.
wait_cluster '"id":"w4".*"state":"alive".*"shard_count":[1-9]'
# The joiner's own readiness doc reports the worker role with live
# shard ownership (read off the telemetry gauge, so migrations show).
curl -fsS http://127.0.0.1:7584/v1/healthz | grep -q '"role":"worker"'
curl -fsS http://127.0.0.1:7584/v1/healthz | grep -q '"shards_owned":[1-9]'
echo "   w4 joined and owns shards"

# Mutations are gated: without -admin this would be a 403; with it the
# drain is accepted (202) and the worker's shards migrate away.
drain_code=$(curl -s -o "$DIR/churn-drain.json" -w '%{http_code}' -X POST \
    "$CO/v1/cluster/workers/127.0.0.1:7481/drain")
if [ "$drain_code" != "202" ]; then
  echo "drain POST answered $drain_code, want 202" >&2
  cat "$DIR/churn-drain.json" >&2
  exit 1
fi
wait_cluster '"id":"127.0.0.1:7481".*"state":"drained"'
echo "   127.0.0.1:7481 drained via admin API"

# SIGTERM + -leave: the joiner hands its shards back and exits 0.
kill -TERM $w4_pid
if ! wait $w4_pid; then
  echo "leaving worker exited non-zero" >&2
  cat "$DIR/churn-w4.log" >&2
  exit 1
fi
wait_cluster '"id":"w4".*"state":"drained"'
echo "   w4 drained and left cleanly"

wait_stats $CO 10
curl -fsS "$CO/v1/cluster" > "$DIR/churn-cluster.json"
curl -fsS "$CO/v1/metricz" > "$DIR/churn.metricz"

echo "== flight recorder (/v1/tracez, /v1/debugz) holds the stitched churn traces"
# The coordinator's ring must still hold the whole churn story. Every
# migration lands at an epoch boundary, so its migrate span parents
# under the epoch trace that absorbed it: walk every epoch trace's
# waterfall and require at least one migrate span (join, drain, and
# leave each record one) plus, in every epoch, one rpc.epoch span per
# shard stitched out of the workers' shipped span batches. The captures
# land in $DIR so a failing run uploads them alongside the logs.
curl -fsS "$CO/v1/tracez?format=text&limit=4096" > "$DIR/churn-coordinator.tracez"
epoch_traces=$(awk '$2 == "epoch" {print $1}' "$DIR/churn-coordinator.tracez")
if [ -z "$epoch_traces" ]; then
  echo "no epoch trace in the coordinator flight recorder" >&2
  cat "$DIR/churn-coordinator.tracez" >&2
  exit 1
fi
for tid in $epoch_traces; do
  curl -fsS "$CO/v1/tracez?trace=$tid&format=text" >> "$DIR/churn-coordinator.tracez"
done
if ! grep -Eq ' migrate +' "$DIR/churn-coordinator.tracez"; then
  echo "no migrate span in any epoch trace after churn" >&2
  cat "$DIR/churn-coordinator.tracez" >&2
  exit 1
fi
for shard in 0 1 2 3; do
  # One grep, not a grep|grep -q pipe: -q closing the pipe early would
  # SIGPIPE the producer and trip pipefail on a line that matched.
  if ! grep -Eq "rpc\.epoch .*shard=$shard[^0-9]" "$DIR/churn-coordinator.tracez"; then
    echo "no rpc.epoch span for shard $shard in the recorded epoch traces" >&2
    cat "$DIR/churn-coordinator.tracez" >&2
    exit 1
  fi
done
echo "   flight recorder: migrate span recorded, rpc.epoch spans stitched for all 4 shards"
# The one-request bug-report bundle must carry its build, metrics, and
# trace sections; the .ndjson is the artifact CI uploads on failure.
curl -fsS "$CO/v1/debugz" > "$DIR/churn-coordinator.ndjson"
for section in build metrics trace; do
  if ! grep -q "\"section\":\"$section\"" "$DIR/churn-coordinator.ndjson"; then
    echo "debugz bundle is missing its $section section" >&2
    exit 1
  fi
done

kill -TERM $churn_coord
wait $churn_coord
test -s "$DIR/churn-dist.inv"

# Every membership change must be visible in the final doc, and the
# migration counter must account the join, the drain, and the leave.
grep -o '"id":"127.0.0.1:7482"[^}]*' "$DIR/churn-cluster.json" | grep -q '"state":"alive"'
migrations=$(awk '$1 ~ /^gps_shard_migrations_total/ {s+=$2} END {print s+0}' "$DIR/churn.metricz")
echo "   live shard migrations: $migrations"
if [ "$migrations" -lt 3 ]; then
  echo "expected >=3 live migrations (join + drain + leave), saw $migrations" >&2
  exit 1
fi

# Membership churn must not perturb the scan: the merged inventory is
# byte-identical to the single-process run of the same epochs.
cmp "$DIR/churn-single.inv" "$DIR/churn-dist.inv"
echo "   churned fleet inventory byte-identical to single-process run"

echo "PASS: distributed inventory byte-identical to single-process; served queries identical across single, distributed, and file modes; telemetry consistent across modes; re-balance round-trips; cluster churn (join + drain + leave) preserves byte-identity"
