// Package gps implements GPS (Izhikevich, Teixeira, Durumeric — SIGCOMM
// 2022): a predictive Internet-wide scanning system that discovers IPv4
// services across all 65,536 TCP ports using orders of magnitude less
// bandwidth than exhaustive scanning.
//
// GPS runs in four phases (§5):
//
//  1. Seed: collect (or be given) a small uniform random sample of hosts
//     scanned across all ports.
//  2. Model: compute conditional probabilities between every feature value
//     and every port (Expressions 4-7) in one parallel pass.
//  3. Priors scan: find the single most predictive "anchor" service on
//     every responsive host by exhaustively scanning an ordered list of
//     (port, subnet) tuples.
//  4. Prediction scan: map each anchor's features through the
//     most-predictive-feature-values list and probe the predicted
//     (IP, port) pairs in descending probability.
//
// The package orchestrates the substrate packages (scanner, lzr, zgrab,
// probmodel, priors, predict) against a netmodel.Universe, which stands in
// for the live IPv4 Internet. The batch pipeline itself lives in
// internal/pipeline; this package re-exports it, the continuous
// subsystem (internal/continuous, re-exported below in facade.go) runs
// the same pipeline epoch after epoch against an evolving universe, and
// the shard subsystem (internal/shard) partitions either mode across N
// deterministic hash shards with a cross-shard merge.
package gps

import (
	"gps/internal/dataset"
	"gps/internal/netmodel"
	"gps/internal/pipeline"
)

// Config parameterizes a GPS run. The zero value is usable: it scans with
// a /16 step size, every feature family, the paper's probability floor,
// and full parallelism.
type Config = pipeline.Config

// Phase identifies which scan phase discovered a service.
type Phase = pipeline.Phase

// Scan phases.
const (
	PhasePriors  = pipeline.PhasePriors
	PhasePredict = pipeline.PhasePredict
)

// Discovery is one service found by the scans, annotated with the
// cumulative probe count at the moment of discovery: the raw material of
// every coverage-vs-bandwidth curve in the evaluation.
type Discovery = pipeline.Discovery

// Timings records wall time per pipeline stage (Table 2's rows).
type Timings = pipeline.Timings

// Result is everything a GPS run produces.
type Result = pipeline.Result

// CollectSeed gathers a fresh seed set: a uniform random sample of the
// address space scanned across all 65K ports (§5.1). The returned
// dataset's CollectionProbes records the bandwidth this cost.
func CollectSeed(u *netmodel.Universe, fraction float64, seed int64) *dataset.Dataset {
	return pipeline.CollectSeed(u, fraction, seed)
}

// Run executes phases 2-4 of GPS against the universe, training on
// seedSet. The seed set is typically either CollectSeed output or the seed
// half of a dataset split (§6.1).
func Run(u *netmodel.Universe, seedSet *dataset.Dataset, cfg Config) (*Result, error) {
	return pipeline.Run(u, seedSet, cfg)
}
