package gps_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the pipeline's design
// choices and micro-benchmarks for the hot substrates.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each experiment bench reports its headline result as custom metrics
// (coverage, savings-x, precision and so on) so a bench run doubles as a
// results table; the notes attached to each experiment's rendered table
// record the paper's corresponding values.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"gps/internal/dataset"
	"gps/internal/engine"
	"gps/internal/experiments"
	"gps/internal/metrics"

	"gps"
	"gps/internal/netmodel"
	"gps/internal/predict"
	"gps/internal/priors"
	"gps/internal/probmodel"
	"gps/internal/scanner"
)

var (
	benchOnce  sync.Once
	benchSetup *experiments.Setup
)

func setupBench(b *testing.B) *experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup = experiments.NewSetup(experiments.SmallScale(2024))
	})
	return benchSetup
}

// --- Figure 2: service discovery vs bandwidth -----------------------------

func benchFigure2(b *testing.B, v experiments.Fig2Variant) {
	s := setupBench(b)
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure2(s, v)
	}
	b.ReportMetric(r.FinalGPS, "coverage")
	b.ReportMetric(r.SavingsAtFinal, "savings-x")
}

func BenchmarkFigure2a(b *testing.B) { benchFigure2(b, experiments.Fig2Variant{Censys: true}) }
func BenchmarkFigure2b(b *testing.B) { benchFigure2(b, experiments.Fig2Variant{}) }
func BenchmarkFigure2c(b *testing.B) {
	benchFigure2(b, experiments.Fig2Variant{Censys: true, Normalized: true})
}
func BenchmarkFigure2d(b *testing.B) {
	benchFigure2(b, experiments.Fig2Variant{Normalized: true})
}

// --- Figure 3: precision ---------------------------------------------------

func BenchmarkFigure3(b *testing.B) {
	s := setupBench(b)
	var r *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure3(s)
	}
	b.ReportMetric(r.PrecisionRatioMid, "precision-ratio-x")
}

// --- Figure 4: GPS vs the XGBoost scanner ----------------------------------

func BenchmarkFigure4(b *testing.B) {
	s := setupBench(b)
	var r *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure4(s)
	}
	b.ReportMetric(r.AvgPriorSavings, "avg-prior-savings-x")
	b.ReportMetric(r.BestPriorSavings, "best-prior-savings-x")
}

// --- Figure 5 / 6: parameter sweeps ----------------------------------------

func BenchmarkFigure5(b *testing.B) {
	s := setupBench(b)
	var r *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure5(s, []uint8{0, 12, 16, 20})
	}
	b.ReportMetric(r.Curves[0].Final().FracNorm, "norm-coverage-step0")
	b.ReportMetric(r.Curves[len(r.Curves)-1].Final().FracNorm, "norm-coverage-step20")
}

func BenchmarkFigure6(b *testing.B) {
	s := setupBench(b)
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure6(s, nil)
	}
	b.ReportMetric(r.FinalNorm[0], "norm-coverage-smallest-seed")
	b.ReportMetric(r.FinalNorm[len(r.FinalNorm)-1], "norm-coverage-largest-seed")
}

// --- Tables -----------------------------------------------------------------

func BenchmarkTable1FeatureDimensionality(b *testing.B) {
	s := setupBench(b)
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table1(s)
	}
	b.ReportMetric(float64(len(t.Rows)), "features")
}

// BenchmarkTable2SingleCore and BenchmarkTable2Parallel time the pure
// prediction computation (model + priors list + MPF + predictions list) at
// the two parallelism levels Table 2 contrasts.
func benchTable2(b *testing.B, workers int) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 31)
	hosts := seedSet.ByHost()
	eng := engine.Config{Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := probmodel.Build(probmodel.Config{Engine: eng}, hosts)
		pl := priors.Build(m, hosts, 16, eng)
		mpf := predict.BuildMPF(m, hosts, eng)
		_ = pl
		_ = mpf
	}
}

func BenchmarkTable2SingleCore(b *testing.B) { benchTable2(b, 1) }
func BenchmarkTable2Parallel(b *testing.B)   { benchTable2(b, 0) }

func BenchmarkTable3(b *testing.B) {
	s := setupBench(b)
	var r *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3(s)
	}
	b.ReportMetric(float64(r.UniqueRules), "mpf-rules")
	b.ReportMetric(float64(r.UniqueKinds), "tuple-kinds")
}

func BenchmarkTable4(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		_ = experiments.Table4(s)
	}
}

// --- Baselines and appendix experiments -------------------------------------

func BenchmarkTGABaseline(b *testing.B) {
	s := setupBench(b)
	var r *experiments.TGAResult
	for i := 0; i < b.N; i++ {
		r = experiments.TGAExperiment(s)
	}
	b.ReportMetric(r.TGA.FracAll, "coverage")
}

func BenchmarkRecommenderBaseline(b *testing.B) {
	s := setupBench(b)
	var r *experiments.RecommenderResult
	for i := 0; i < b.N; i++ {
		r = experiments.RecommenderExperiment(s)
	}
	b.ReportMetric(r.Rec.FracAll, "coverage")
	b.ReportMetric(r.Rec.FracNorm, "norm-coverage")
}

func BenchmarkPseudoServiceFilter(b *testing.B) {
	s := setupBench(b)
	var r *experiments.AppendixBResult
	for i := 0; i < b.N; i++ {
		r = experiments.AppendixB(s)
	}
	b.ReportMetric(r.Recall, "recall")
	b.ReportMetric(r.Precision, "precision")
}

func BenchmarkSection7(b *testing.B) {
	s := setupBench(b)
	var r *experiments.Section7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Section7Limits(s)
	}
	b.ReportMetric(r.NormCoverage, "ideal-norm-coverage")
}

// BenchmarkContinuousEpoch times one epoch of the continuous scanning
// subsystem at small scale: re-verify the inventory, re-train the model
// on it, and run budgeted discovery against a freshly churned universe.
func BenchmarkContinuousEpoch(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 91)
	world := netmodel.Churn(s.Universe, netmodel.DefaultChurn(91))
	cfg := gps.ContinuousConfig{Budget: 20 * s.Universe.SpaceSize()}
	var stats gps.EpochStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := gps.NewContinuous(seedSet, cfg)
		var err error
		if stats, err = r.Epoch(world); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.KnownSize), "known-services")
	b.ReportMetric(stats.Freshness.AliveFrac(), "alive-frac")
}

// BenchmarkTelemetryOverhead runs the same continuous epoch with the
// telemetry registry recording and with it disabled, so the two
// sub-benchmark times bound the cost of instrumentation on the hottest
// composite path. The registry's hot paths are single atomics, so the
// delta should be noise (<5% is the CI expectation).
func BenchmarkTelemetryOverhead(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 91)
	world := netmodel.Churn(s.Universe, netmodel.DefaultChurn(91))
	cfg := gps.ContinuousConfig{Budget: 20 * s.Universe.SpaceSize()}
	epoch := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gps.NewContinuous(seedSet, cfg).Epoch(world); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("instrumented", epoch)
	b.Run("disabled", func(b *testing.B) {
		gps.Telemetry().SetEnabled(false)
		defer gps.Telemetry().SetEnabled(true)
		epoch(b)
	})
}

// BenchmarkTraceOverhead is the tracing twin of the telemetry bench: a
// full continuous epoch (which records an epoch root plus four phase
// spans) with the flight recorder on versus off. The disabled path must
// reduce every instrumentation site to one atomic load and a nil
// return, so the two sub-benches are expected to agree within noise
// (<1% like telemetry).
func BenchmarkTraceOverhead(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 91)
	world := netmodel.Churn(s.Universe, netmodel.DefaultChurn(91))
	cfg := gps.ContinuousConfig{Budget: 20 * s.Universe.SpaceSize()}
	epoch := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gps.NewContinuous(seedSet, cfg).Epoch(world); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("instrumented", epoch)
	b.Run("disabled", func(b *testing.B) {
		gps.Tracing().SetEnabled(false)
		defer gps.Tracing().SetEnabled(true)
		epoch(b)
	})
}

// --- Shard scale-out ---------------------------------------------------------

// BenchmarkShardPipeline measures ONE shard's share of a batch run at
// increasing shard counts: the per-shard work (dominated by the scan
// bandwidth it owns) must scale down roughly linearly with the count,
// which is the horizontal analogue of Table 2's warehouse speedup.
func BenchmarkShardPipeline(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 55)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			cfg := gps.Config{Seed: 55, ShardIndex: 0, ShardCount: n}
			var res *gps.Result
			for i := 0; i < b.N; i++ {
				var err error
				if res, err = gps.Run(s.Universe, seedSet, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.TotalScanProbes()), "shard-probes")
			b.ReportMetric(float64(len(res.Found)), "shard-found")
		})
	}
}

// BenchmarkShardMerge measures the cross-shard fold alone: the merge
// visits every discovered service once, so its cost tracks the total
// inventory size and stays roughly flat (sublinear) as the shard count
// grows.
func BenchmarkShardMerge(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 55)
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			merged, err := gps.RunSharded(s.Universe, seedSet, gps.Config{Seed: 55}, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var m *gps.ShardMerged
			for i := 0; i < b.N; i++ {
				m = gps.MergeShardResults(merged.Results)
			}
			b.ReportMetric(float64(len(m.Found)), "merged-services")
		})
	}
}

// BenchmarkShardEpoch times one sharded continuous epoch: N runners
// re-verifying and discovering concurrently, each on its own partition.
func BenchmarkShardEpoch(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 91)
	world := netmodel.Churn(s.Universe, netmodel.DefaultChurn(91))
	cfg := gps.ShardConfig{
		Shards:     4,
		Continuous: gps.ContinuousConfig{Budget: 20 * s.Universe.SpaceSize()},
	}
	var stats gps.EpochStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := gps.NewShardCoordinator(seedSet, cfg)
		var err error
		if stats, err = c.Epoch(world); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.KnownSize), "known-services")
}

// --- Inventory serving --------------------------------------------------------

// benchInventory builds a merged-inventory view of the LZR snapshot: the
// shape the serving layer indexes every epoch.
func benchInventory(s *experiments.Setup) map[gps.ServiceKey]*gps.KnownService {
	inv := make(map[gps.ServiceKey]*gps.KnownService, s.LZR.NumServices())
	for _, r := range s.LZR.Records {
		inv[r.Key()] = &gps.KnownService{Rec: r, FirstSeen: 1, LastSeen: 3}
	}
	return inv
}

// BenchmarkSnapshotBuild times the producer side of the serving split:
// indexing one committed inventory into an immutable snapshot (secondary
// indexes by host, port, /16, ASN plus the aggregates). This is the
// per-epoch cost -serve adds to the scan loop.
func BenchmarkSnapshotBuild(b *testing.B) {
	s := setupBench(b)
	inv := benchInventory(s)
	var snap *gps.InventorySnapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap = gps.NewInventorySnapshot(3, inv)
	}
	b.ReportMetric(float64(snap.NumServices()), "services")
}

// BenchmarkServeQuery measures the read path under fire: query latency
// through the full HTTP handler (routing, snapshot load, page copy, JSON
// render, cache) while a committer goroutine keeps swapping fresh
// snapshots in — the serving claim is precisely that commits never stall
// readers, so the tail latencies are reported alongside the mean.
func BenchmarkServeQuery(b *testing.B) {
	s := setupBench(b)
	inv := benchInventory(s)
	var pub gps.InventoryPublisher
	pub.Publish(gps.NewInventorySnapshot(1, inv))
	h := gps.NewInventoryServer(&pub).Handler()

	rec := s.LZR.Records[0]
	paths := []string{
		"/v1/stats",
		fmt.Sprintf("/v1/port/%d?limit=100", rec.Port),
		fmt.Sprintf("/v1/host/%s", rec.IP),
		fmt.Sprintf("/v1/asn/%d", rec.ASN),
		"/v1/ports",
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the epoch-commit side, as hostile as it gets
		defer wg.Done()
		for e := 2; ; e++ {
			select {
			case <-stop:
				return
			default:
				pub.Publish(gps.NewInventorySnapshot(e, inv))
			}
		}
	}()

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, paths[i%len(paths)], nil)
		rr := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(rr, req)
		lat = append(lat, time.Since(t0))
		if rr.Code != http.StatusOK {
			b.Fatalf("GET %s: %d", paths[i%len(paths)], rr.Code)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Microseconds()), "p50-us")
	b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99-us")
}

func BenchmarkChurn(b *testing.B) {
	s := setupBench(b)
	var r *experiments.ChurnResult
	for i := 0; i < b.N; i++ {
		r = experiments.ChurnStudy(s)
	}
	b.ReportMetric(r.ServicesLost, "services-lost")
	b.ReportMetric(r.NormalizedLost, "norm-services-lost")
}

// --- Ablations ---------------------------------------------------------------

// benchPipelineCoverage runs GPS with cfg against the all-port split and
// reports coverage and precision.
func benchPipelineCoverage(b *testing.B, mutate func(*gps.Config), seedSet, testSet *gps.Dataset) {
	s := setupBench(b)
	cfg := gps.Config{StepBits: 16, Seed: 77}
	mutate(&cfg)
	var point metrics.Point
	for i := 0; i < b.N; i++ {
		res, err := gps.Run(s.Universe, seedSet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		point, _ = gps.Evaluate(res, testSet, s.Universe.SpaceSize())
	}
	b.ReportMetric(point.FracAll, "coverage")
	b.ReportMetric(point.FracNorm, "norm-coverage")
	b.ReportMetric(point.Precision*1000, "hits-per-kprobe")
}

func ablationSplit(b *testing.B) (*gps.Dataset, *gps.Dataset) {
	s := setupBench(b)
	return experiments.SplitEval(s.LZR, s.Scale.SeedSmall, true, 71)
}

// BenchmarkAblationProbabilityFloor contrasts the paper's 1e-5 floor with
// no floor at all: without it, GPS wastes probes on patterns no better
// than random.
func BenchmarkAblationProbabilityFloor(b *testing.B) {
	seedSet, testSet := ablationSplit(b)
	b.Run("floor=1e-5", func(b *testing.B) {
		benchPipelineCoverage(b, func(c *gps.Config) {}, seedSet, testSet)
	})
	b.Run("floor=off", func(b *testing.B) {
		benchPipelineCoverage(b, func(c *gps.Config) {
			c.Floor = -1
			c.MinSupport = -1 // admit singleton patterns too
		}, seedSet, testSet)
	})
}

// BenchmarkAblationFeatureFamilies contrasts all four conditional
// probability families (Expressions 4-7) with the transport-only model.
func BenchmarkAblationFeatureFamilies(b *testing.B) {
	seedSet, testSet := ablationSplit(b)
	b.Run("families=all", func(b *testing.B) {
		benchPipelineCoverage(b, func(c *gps.Config) {}, seedSet, testSet)
	})
	b.Run("families=transport-only", func(b *testing.B) {
		benchPipelineCoverage(b, func(c *gps.Config) { c.Families = probmodel.TransportOnly }, seedSet, testSet)
	})
}

// BenchmarkAblationPriorsOrdering contrasts the §5.3 maximal-coverage
// ordering of the priors scan with a random ordering, under a tight
// budget where ordering matters.
func BenchmarkAblationPriorsOrdering(b *testing.B) {
	seedSet, testSet := ablationSplit(b)
	s := setupBench(b)
	budget := 3 * s.Universe.SpaceSize()
	b.Run("order=coverage", func(b *testing.B) {
		benchPipelineCoverage(b, func(c *gps.Config) { c.Budget = budget }, seedSet, testSet)
	})
	b.Run("order=random", func(b *testing.B) {
		benchPipelineCoverage(b, func(c *gps.Config) {
			c.Budget = budget
			c.RandomPriorsOrder = true
		}, seedSet, testSet)
	})
}

// BenchmarkAblationPseudoFilter contrasts seed sets with and without the
// Appendix B pseudo-service filter.
func BenchmarkAblationPseudoFilter(b *testing.B) {
	s := setupBench(b)
	mkSplit := func(filter bool) (*gps.Dataset, *gps.Dataset) {
		full := dataset.SnapshotLZROpts(s.Universe, s.Scale.LZRFraction, 73, filter)
		seedSet, _ := full.Split(s.Scale.SeedSmall, 74)
		eligible := seedSet.EligiblePorts(2)
		// Evaluate against the *filtered* truth either way: pseudo
		// services are never legitimate discoveries.
		cleanFull := dataset.SnapshotLZR(s.Universe, s.Scale.LZRFraction, 73)
		_, cleanTest := cleanFull.Split(s.Scale.SeedSmall, 74)
		return seedSet.FilterPorts(eligible), cleanTest.FilterPorts(eligible)
	}
	b.Run("filter=on", func(b *testing.B) {
		seedSet, testSet := mkSplit(true)
		benchPipelineCoverage(b, func(c *gps.Config) {}, seedSet, testSet)
	})
	b.Run("filter=off", func(b *testing.B) {
		seedSet, testSet := mkSplit(false)
		benchPipelineCoverage(b, func(c *gps.Config) {}, seedSet, testSet)
	})
}

// --- Micro-benchmarks on the substrates --------------------------------------

func BenchmarkModelBuild(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 81)
	hosts := seedSet.ByHost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := probmodel.Build(probmodel.Config{}, hosts)
		_ = m
	}
}

func BenchmarkProbLookup(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 81)
	hosts := seedSet.ByHost()
	m := probmodel.Build(probmodel.Config{}, hosts)
	c := probmodel.Cond{Port: 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Prob(c, 443)
	}
}

func BenchmarkCyclicIterator(b *testing.B) {
	it, err := scanner.NewCyclicIterator(1<<20, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			it.Reset()
		}
	}
}

func BenchmarkScanPrefixFast(b *testing.B) {
	s := setupBench(b)
	sc := scanner.New(s.Universe)
	pfx := s.Universe.Prefixes()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.ScanPrefixFast(pfx, 80, int64(i))
	}
}

func BenchmarkEngineGroupCount(b *testing.B) {
	items := make([]int, 1<<16)
	for i := range items {
		items[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.GroupCount(engine.Config{}, nil, items,
			func(v int, emit engine.Emit[int, uint64]) { emit(v%1024, 1) })
	}
}

func BenchmarkUniverseGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = netmodel.Generate(netmodel.TestParams(int64(i)))
	}
}

func BenchmarkPredictionThroughput(b *testing.B) {
	s := setupBench(b)
	seedSet, _ := experiments.SplitEval(s.LZR, s.Scale.SeedMid, true, 83)
	hosts := seedSet.ByHost()
	m := probmodel.Build(probmodel.Config{}, hosts)
	mpf := predict.BuildMPF(m, hosts, engine.Config{})
	var anchors []dataset.Record
	for _, h := range hosts {
		anchors = append(anchors, h.Records...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = predict.Predict(m, mpf, anchors, nil, engine.Config{})
	}
}

// BenchmarkPartitionedWorldBuild measures what a shard worker pays to
// hold its world: full-universe build vs a 1-of-4 partition build, with
// retained heap reported per variant (the acceptance criterion is
// partitioned heap ≲ 1/N + ε of full). heap-bytes is measured once per
// run on a GC-settled heap; build time is the benchmark's own metric.
func BenchmarkPartitionedWorldBuild(b *testing.B) {
	const shards = 4
	params := func(part *gps.UniversePartition) gps.UniverseParams {
		p := gps.DemoUniverseParams(7, 16, 0.03)
		p.Partition = part
		return p
	}
	heapAfter := func(build func() *gps.Universe) (u *gps.Universe, retained uint64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		u = build()
		runtime.GC()
		runtime.ReadMemStats(&after)
		return u, after.HeapAlloc - min(after.HeapAlloc, before.HeapAlloc)
	}
	for _, bench := range []struct {
		name string
		part *gps.UniversePartition
	}{
		{"full", nil},
		{"partitioned-1of4", &gps.UniversePartition{Count: shards, Owned: []int{0}}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			u, retained := heapAfter(func() *gps.Universe {
				v, err := gps.NewUniverse(params(bench.part))
				if err != nil {
					b.Fatal(err)
				}
				return v
			})
			runtime.KeepAlive(u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := gps.NewUniverse(params(bench.part))
				if err != nil {
					b.Fatal(err)
				}
				runtime.KeepAlive(v)
			}
			// After ResetTimer, which deletes user metrics.
			b.ReportMetric(float64(retained), "heap-bytes")
			b.ReportMetric(float64(u.NumHosts()), "hosts")
		})
	}
}
