package gps

import (
	"testing"

	"gps/internal/dataset"
	"gps/internal/metrics"
	"gps/internal/netmodel"
)

// TestPipelineSmoke runs the full GPS pipeline on a small universe and
// checks it finds a substantial majority of held-out services with far
// fewer probes than exhaustive scanning — the paper's headline claim in
// miniature.
func TestPipelineSmoke(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(1))
	t.Logf("universe: %d hosts, %d services, space %d", u.NumHosts(), u.NumServices(), u.SpaceSize())

	full := dataset.SnapshotLZR(u, 0.5, 2)
	seedSet, testSet := full.Split(0.05, 3)
	eligible := seedSet.EligiblePorts(2)
	testSet = testSet.FilterPorts(eligible)
	t.Logf("seed: %d services on %d ports; test: %d services", seedSet.NumServices(), len(eligible), testSet.NumServices())

	res, err := Run(u, seedSet, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model: %d conds, %d pairs; priors targets: %d; anchors: %d; predictions: %d",
		res.Model.NumConds(), res.Model.NumPairs(), len(res.PriorsList.Targets),
		len(res.Anchors), len(res.Predictions))
	t.Logf("probes: priors=%d predict=%d (space=%d)", res.PriorsProbes, res.PredictProbes, u.SpaceSize())

	gt := metrics.NewGroundTruth(testSet)
	tr := metrics.NewTracker(gt, u.SpaceSize())
	for _, d := range res.Discoveries {
		tr.Record(d.Key)
	}
	tr.Spend(res.TotalScanProbes())
	p := tr.Snapshot()
	t.Logf("coverage: all=%.3f norm=%.3f precision=%.5f found=%d/%d",
		p.FracAll, p.FracNorm, p.Precision, p.Found, gt.Total())

	if p.FracAll < 0.5 {
		t.Errorf("GPS found only %.1f%% of held-out services; want > 50%%", 100*p.FracAll)
	}
	exhaustiveProbes := u.SpaceSize() * netmodel.NumPorts
	if res.TotalScanProbes() > exhaustiveProbes/10 {
		t.Errorf("GPS used %d probes; want far less than exhaustive %d", res.TotalScanProbes(), exhaustiveProbes)
	}
}
