// Baseline comparison: GPS vs every alternative the paper evaluates.
//
// One universe, one seed budget, four strategies: GPS's conditional
// probabilities, exhaustive optimal-port-order probing, the sequential
// XGBoost scanner (§6.4), and an Entropy/IP-style target generation
// algorithm (§2). Prints coverage and bandwidth side by side.
//
//	go run ./examples/compare-baselines
package main

import (
	"fmt"
	"log"

	"gps"
	"gps/internal/baselines/exhaustive"
	"gps/internal/baselines/tga"
	"gps/internal/baselines/xgboost"
)

func main() {
	u := gps.GenerateUniverse(gps.SmallUniverseParams(17))
	full := gps.SnapshotCensys(u, 200) // popular ports, 100% scanned
	seedSet, testSet := full.Split(0.02, 18)
	space := u.SpaceSize()
	gt := gps.NewGroundTruth(testSet)

	fmt.Printf("universe: %d hosts; ground truth: %d services on %d ports\n\n",
		u.NumHosts(), gt.Total(), gt.NumPorts())
	fmt.Printf("%-28s %10s %12s %10s\n", "strategy", "found", "probes", "coverage")
	row := func(name string, found int, probes uint64) {
		fmt.Printf("%-28s %10d %12d %9.1f%%\n", name, found, probes,
			100*float64(found)/float64(gt.Total()))
	}

	// GPS.
	res, err := gps.Run(u, seedSet, gps.Config{StepBits: 16, Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	point, _ := gps.Evaluate(res, testSet, space)
	row("GPS", point.Found, res.TotalScanProbes())

	// Exhaustive optimal port order, cut at GPS's bandwidth.
	exCurve := exhaustive.Curve(testSet, space)
	exAtBudget := 0
	for _, p := range exCurve {
		if p.Probes <= res.TotalScanProbes() {
			exAtBudget = p.Found
		}
	}
	row("exhaustive (same budget)", exAtBudget, res.TotalScanProbes())
	final := exCurve.Final()
	row("exhaustive (all ports)", final.Found, final.Probes)

	// Sequential XGBoost scanner on the popular-port sequence.
	xgb := xgboost.RunSequential(u, seedSet, testSet, xgboost.ScanConfig{Coverage: 0.95})
	xgbFound := xgb.Curve.Final().Found
	row("XGBoost (sequential)", xgbFound, xgb.TotalProbes)

	// Entropy/IP-style target generation.
	tg := tga.Run(u, seedSet, testSet, tga.Config{
		CandidatesPerPort: int(space / 50),
		MinTrainIPs:       8,
		Seed:              20,
	})
	row("TGA (Entropy/IP-style)", tg.Found, tg.Probes)

	fmt.Println("\nGPS reaches the highest coverage per probe; the XGBoost scanner needs")
	fmt.Println("sequential full scans to build features, and TGAs only re-find address")
	fmt.Println("structure, not services.")
}
