// IPv6 hitlist prediction: the paper's §7 extension.
//
// GPS cannot bootstrap on IPv6 — there is no exhaustive seed scan of a
// 2^128 space — but given a hitlist of known IPv6 addresses each with one
// known responsive port, the prediction phase applies unchanged: the known
// service's banner features index the most-predictive-features list
// trained on IPv4, and the predicted ports are probed directly.
//
//	go run ./examples/ipv6-hitlist
package main

import (
	"fmt"
	"log"

	"gps"
	"gps/internal/engine"
	"gps/internal/features"
	"gps/internal/ipv6"
	"gps/internal/predict"
	"gps/internal/probmodel"
)

func main() {
	// The v4 side: generate, snapshot, train.
	u4 := gps.GenerateUniverse(gps.SmallUniverseParams(23))
	full := gps.SnapshotAllPorts(u4, 0.4, 24)
	seedSet, _ := full.Split(0.02, 25)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	hosts := seedSet.ByHost()
	model := probmodel.Build(probmodel.Config{}, hosts)
	mpf := predict.BuildMPF(model, hosts, engine.Config{})
	fmt.Printf("v4 model: %d conditions from %d seed hosts\n", model.NumConds(), model.HostsSeen())

	// The v6 side: a dual-stack mirror and a hitlist of known services.
	u6 := ipv6.Mirror(u4, ipv6.Params{DualStackFraction: 0.25, Seed: 26})
	hitlist := u6.Hitlist(500, 27)
	fmt.Printf("v6 universe: %d dual-stack hosts; hitlist: %d known services\n",
		u6.NumHosts(), len(hitlist))
	if len(hitlist) == 0 {
		log.Fatal("empty hitlist")
	}
	fmt.Printf("example hitlist entry: [%s]:%d\n", hitlist[0].Addr, hitlist[0].Port)

	// Predict the remaining services on the hitlist hosts.
	pred := ipv6.NewPredictor(model, mpf)
	preds := pred.Predict(hitlist, func(a ipv6.Addr, port uint16) (features.Set, bool) {
		svc, ok := u6.ServiceAt(a, port)
		if !ok {
			return nil, false
		}
		return svc.Feats, true
	})
	res := ipv6.Evaluate(u6, hitlist, preds)

	fmt.Printf("\npredictions: %d probes against %d candidate services\n", res.Probes, res.Remaining)
	fmt.Printf("found %d remaining services: %.1f%% coverage at %.1f%% precision\n",
		res.Found, 100*res.Coverage, 100*res.Precision)
	fmt.Println("\nNo exhaustive IPv6 scanning was possible or needed: every probe was")
	fmt.Println("aimed by a banner pattern learned on IPv4.")
}
