// IoT discovery: find services hiding on unassigned ports under a tight
// probe budget.
//
// The paper's motivation: scanning port 23 alone misses 95% of Telnet
// services, and IoT devices are five times more likely to live on
// non-standard ports. This example runs GPS with a constrained bandwidth
// budget and reports what it finds *off* the standard port list — the
// services an assigned-ports-only scanner never sees.
//
//	go run ./examples/iot-discovery
package main

import (
	"fmt"
	"log"
	"sort"

	"gps"
)

// standardPorts is what a conventional scanner would cover.
var standardPorts = map[uint16]bool{
	21: true, 22: true, 23: true, 25: true, 80: true, 110: true, 143: true,
	443: true, 445: true, 465: true, 587: true, 993: true, 995: true,
	3306: true, 3389: true, 5432: true, 5900: true, 8080: true, 8443: true,
}

func main() {
	u := gps.GenerateUniverse(gps.SmallUniverseParams(7))

	full := gps.SnapshotAllPorts(u, 0.4, 8)
	seedSet, testSet := full.Split(0.02, 9)
	eligible := seedSet.EligiblePorts(2)
	seedSet = seedSet.FilterPorts(eligible)
	testSet = testSet.FilterPorts(eligible)

	// Budget: the probes of five full single-port passes. An exhaustive
	// scanner would cover five ports; GPS covers the whole port space.
	budget := 5 * u.SpaceSize()
	res, err := gps.Run(u, seedSet, gps.Config{StepBits: 20, Budget: budget, Seed: 10})
	if err != nil {
		log.Fatal(err)
	}

	gt := gps.NewGroundTruth(testSet)
	type portStat struct {
		port  uint16
		found int
	}
	offStandard := map[uint16]int{}
	onStandard := 0
	telnetOff := 0
	for _, d := range res.Discoveries {
		if !gt.Contains(d.Key) {
			continue
		}
		if standardPorts[d.Key.Port] {
			onStandard++
			continue
		}
		offStandard[d.Key.Port]++
		if svc, ok := u.ServiceAt(d.Key.IP, d.Key.Port); ok && svc.Proto.String() == "telnet" {
			telnetOff++
		}
	}
	var stats []portStat
	total := 0
	for p, n := range offStandard {
		stats = append(stats, portStat{p, n})
		total += n
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].found > stats[j].found })

	fmt.Printf("budget: %d probes (5 full-scan units)\n", budget)
	fmt.Printf("ground-truth services found: %d on standard ports, %d on non-standard ports\n",
		onStandard, total)
	fmt.Printf("telnet services on non-standard ports: %d\n\n", telnetOff)
	fmt.Println("top non-standard ports discovered:")
	for i, s := range stats {
		if i >= 15 {
			break
		}
		proto := "?"
		for _, d := range res.Discoveries {
			if d.Key.Port == s.port {
				if svc, ok := u.ServiceAt(d.Key.IP, d.Key.Port); ok {
					proto = svc.Proto.String()
				}
				break
			}
		}
		fmt.Printf("  port %5d: %4d services (%s)\n", s.port, s.found, proto)
	}
	fmt.Printf("\nAn exhaustive scanner with the same budget sees at most 5 ports;\n"+
		"GPS found services on %d distinct non-standard ports.\n", len(stats))
}
