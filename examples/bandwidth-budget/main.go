// Bandwidth budgeting: choose GPS parameters for a probe budget.
//
// GPS's coverage is a function of bandwidth (Equation 3): the more probes
// you can spend, the deeper into the long tail it reaches. This example
// sweeps scanning step sizes and budgets on one universe and prints the
// coverage matrix, reproducing the Appendix D trade-off in a form an
// operator would actually consult before a scan.
//
//	go run ./examples/bandwidth-budget
package main

import (
	"fmt"
	"log"

	"gps"
)

func main() {
	u := gps.GenerateUniverse(gps.SmallUniverseParams(11))
	full := gps.SnapshotAllPorts(u, 0.4, 12)
	seedSet, testSet := full.Split(0.02, 13)
	eligible := seedSet.EligiblePorts(2)
	seedSet = seedSet.FilterPorts(eligible)
	testSet = testSet.FilterPorts(eligible)

	steps := []uint8{12, 16, 20}
	budgets := []uint64{1, 2, 5, 10, 20} // in full-scan units

	fmt.Printf("coverage of held-out services by (step size, probe budget):\n\n")
	fmt.Printf("%8s", "budget")
	for _, s := range steps {
		fmt.Printf("     /%d", s)
	}
	fmt.Println(" (step size)")
	for _, b := range budgets {
		fmt.Printf("%7dx", b)
		for _, s := range steps {
			res, err := gps.Run(u, seedSet, gps.Config{
				StepBits: s,
				Budget:   b * u.SpaceSize(),
				Seed:     14,
			})
			if err != nil {
				log.Fatal(err)
			}
			point, _ := gps.Evaluate(res, testSet, u.SpaceSize())
			fmt.Printf("  %5.1f%%", 100*point.FracAll)
		}
		fmt.Println()
	}
	fmt.Println("\nReading the matrix: small steps (/20) are precise and cheap but cap")
	fmt.Println("out early; large steps (/12) need more budget but reach further into")
	fmt.Println("the long tail — exactly the Appendix D.1 trade-off.")
}
