// Quickstart: the smallest end-to-end GPS run.
//
// It generates a synthetic IPv4 universe, collects a seed scan, runs the
// four-phase GPS pipeline, and reports how much of the held-out ground
// truth was found and at what bandwidth cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gps"
)

func main() {
	// 1. A small synthetic Internet: ~half a million addresses, ~10K
	// responsive hosts with realistic port/banner/network structure.
	u := gps.GenerateUniverse(gps.SmallUniverseParams(1))
	fmt.Printf("universe: %d hosts across %d addresses\n", u.NumHosts(), u.SpaceSize())

	// 2. Ground truth and a seed/test split: a 30%% sample of the space
	// scanned across all ports, of which GPS trains on a 2%-of-space
	// seed and is evaluated on the rest.
	full := gps.SnapshotAllPorts(u, 0.3, 2)
	seedSet, testSet := full.Split(0.02, 3)
	eligible := seedSet.EligiblePorts(2) // ports with >2 responsive seed IPs
	seedSet = seedSet.FilterPorts(eligible)
	testSet = testSet.FilterPorts(eligible)
	fmt.Printf("seed: %d services; held-out ground truth: %d services\n",
		seedSet.NumServices(), testSet.NumServices())

	// 3. Run GPS: model -> priors scan -> prediction scan.
	res, err := gps.Run(u, seedSet, gps.Config{StepBits: 16, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate against the held-out services.
	point, _ := gps.Evaluate(res, testSet, u.SpaceSize())
	exhaustive := u.SpaceSize() * 65536
	fmt.Printf("\nGPS found %.1f%% of services (%.1f%% normalized)\n",
		100*point.FracAll, 100*point.FracNorm)
	fmt.Printf("bandwidth: %d probes = %.1f full-scan units (%.0fx less than exhaustive)\n",
		res.TotalScanProbes(), point.ScansUnits,
		float64(exhaustive)/float64(res.TotalScanProbes()))
}
