// Inventory API: the read path of a continuously-refreshed inventory.
//
// It runs a small sharded continuous scan for a few epochs, publishing an
// immutable snapshot of the merged inventory at every commit, and serves
// the snapshot over the HTTP query API while the scan is still running —
// the producer/reader split behind `gpsd -serve`. It then queries its own
// server: stats, one port, one ASN, one host, and a conditional request
// that revalidates for free via the epoch ETag.
//
//	go run ./examples/inventory-api
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"gps"
)

func main() {
	// 1. A small universe and a seed sample, as in the quickstart.
	const seed = 11
	u := gps.GenerateUniverse(gps.SmallUniverseParams(seed))
	seedSet := gps.CollectSeed(u, 0.05, seed^0x5eed)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	fmt.Printf("universe: %d hosts; seeded with %d services\n", u.NumHosts(), seedSet.NumServices())

	// 2. A 2-shard continuous coordinator whose commit hook publishes a
	// fresh immutable snapshot after every epoch. The publisher swap is
	// one atomic store: queries in flight keep the snapshot they loaded,
	// new queries see the new epoch.
	coord := gps.NewShardCoordinator(seedSet, gps.ShardConfig{
		Shards:     2,
		Continuous: gps.ContinuousConfig{Pipeline: gps.Config{Workers: 1, Seed: seed}},
	})
	var pub gps.InventoryPublisher
	coord.SetCommitHook(func(epoch int, inv map[gps.ServiceKey]*gps.KnownService) {
		pub.Publish(gps.NewInventorySnapshot(epoch, inv))
	})

	// 3. Serve while scanning: the API is up from epoch 0.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: gps.NewInventoryServer(&pub).Handler()}
	go srv.Serve(lis)
	base := "http://" + lis.Addr().String()
	fmt.Printf("serving inventory API on %s/v1/\n", base)

	world := u
	for e := 1; e <= 3; e++ {
		world = gps.ApplyChurn(world, gps.DefaultChurn(seed+int64(e)))
		stats, err := coord.Epoch(world)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %d known, %d new, %.0f%% alive\n",
			e, stats.KnownSize, stats.NewFound, 100*stats.Freshness.AliveFrac())
	}

	// 4. Query the inventory the way a user would.
	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	fmt.Printf("GET /v1/stats        -> %s", get("/v1/stats"))
	snap := pub.Current()
	top := snap.Ports()[0]
	for _, pc := range snap.Ports() {
		if pc.Services > top.Services {
			top = pc
		}
	}
	fmt.Printf("GET /v1/port/%-5d   -> %s", top.Port, get(fmt.Sprintf("/v1/port/%d?limit=2", top.Port)))
	first := snap.Services()[0]
	fmt.Printf("GET /v1/asn/%-6d   -> %s", first.ASN, get(fmt.Sprintf("/v1/asn/%d?limit=2", first.ASN)))
	fmt.Printf("GET /v1/host/%-8s -> %s", first.IP, get("/v1/host/"+first.IP.String()))

	// 5. Conditional revalidation: pollers pay one round trip, no body,
	// until the next epoch commits.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/stats", nil)
	req.Header.Set("If-None-Match", fmt.Sprintf("%q", fmt.Sprintf("gps-epoch-%d", snap.Epoch())))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("GET /v1/stats (If-None-Match) -> %s\n", resp.Status)

	srv.Close()
}
