package gps

import (
	"testing"

	"gps/internal/netmodel"
)

// testFixture builds one small universe + split shared by the root tests.
type fixture struct {
	u       *Universe
	seedSet *Dataset
	testSet *Dataset
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	u := GenerateUniverse(SmallUniverseParams(seed))
	full := SnapshotAllPorts(u, 0.4, seed+1)
	seedSet, testSet := full.Split(0.02, seed+2)
	eligible := seedSet.EligiblePorts(2)
	return &fixture{
		u:       u,
		seedSet: seedSet.FilterPorts(eligible),
		testSet: testSet.FilterPorts(eligible),
	}
}

func TestRunEmptySeedErrors(t *testing.T) {
	f := newFixture(t, 100)
	if _, err := Run(f.u, &Dataset{}, Config{}); err == nil {
		t.Error("empty seed accepted")
	}
}

func TestBudgetEnforced(t *testing.T) {
	f := newFixture(t, 100)
	budget := f.u.SpaceSize() // one full-scan unit
	res, err := Run(f.u, f.seedSet, Config{StepBits: 16, Budget: budget, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The budget is checked between scan steps, so one step of overshoot
	// (a /16 = 65536 probes) is allowed, not more.
	if res.TotalScanProbes() > budget+65536 {
		t.Errorf("spent %d probes with budget %d", res.TotalScanProbes(), budget)
	}
	unlimited, err := Run(f.u, f.seedSet, Config{StepBits: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discoveries) >= len(unlimited.Discoveries) {
		t.Error("budgeted run found as much as unlimited; budget had no effect")
	}
}

func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	f := newFixture(t, 100)
	a, err := Run(f.u, f.seedSet, Config{StepBits: 16, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(f.u, f.seedSet, Config{StepBits: 16, Seed: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Discoveries) != len(b.Discoveries) {
		t.Fatalf("discovery counts differ: %d vs %d", len(a.Discoveries), len(b.Discoveries))
	}
	for i := range a.Discoveries {
		if a.Discoveries[i].Key != b.Discoveries[i].Key {
			t.Fatalf("discovery %d differs between worker counts", i)
		}
	}
}

func TestStepZeroScansWholeSpace(t *testing.T) {
	f := newFixture(t, 100)
	res, err := Run(f.u, f.seedSet, Config{StepZero: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every priors target must be a /0.
	for _, tgt := range res.PriorsList.Targets {
		if tgt.Subnet.Bits != 0 {
			t.Fatalf("StepZero produced /%d target", tgt.Subnet.Bits)
		}
	}
	// A /0 scan costs the announced space, not 2^32.
	perPort := res.PriorsProbes / uint64(len(res.PriorsList.Targets))
	if perPort > f.u.SpaceSize() {
		t.Errorf("per-target cost %d exceeds announced space %d", perPort, f.u.SpaceSize())
	}
}

func TestDiscoveriesOrderedByProbes(t *testing.T) {
	f := newFixture(t, 100)
	res, err := Run(f.u, f.seedSet, Config{StepBits: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seenPredict := false
	var last uint64
	for _, d := range res.Discoveries {
		if d.Probes < last {
			t.Fatal("discovery log not monotone in probes")
		}
		last = d.Probes
		if d.Phase == PhasePredict {
			seenPredict = true
		} else if seenPredict {
			t.Fatal("priors discovery after predict phase began")
		}
	}
	if !seenPredict {
		t.Error("no predict-phase discoveries")
	}
	if res.PriorsProbes == 0 || res.PredictProbes == 0 {
		t.Error("phase probe accounting empty")
	}
}

func TestPredictionScanHitsAreReal(t *testing.T) {
	f := newFixture(t, 100)
	res, err := Run(f.u, f.seedSet, Config{StepBits: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Discoveries {
		if !f.u.Responsive(d.Key.IP, d.Key.Port) {
			t.Fatalf("discovered service %v is not actually responsive", d.Key)
		}
		if !res.Found[d.Key] {
			t.Fatalf("discovery %v missing from Found set", d.Key)
		}
	}
	if len(res.Found) != len(res.Discoveries) {
		t.Errorf("Found has %d keys; discoveries %d", len(res.Found), len(res.Discoveries))
	}
}

func TestPredictionsSortedByProbability(t *testing.T) {
	f := newFixture(t, 100)
	res, err := Run(f.u, f.seedSet, Config{StepBits: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Predictions); i++ {
		if res.Predictions[i-1].P < res.Predictions[i].P {
			t.Fatal("predictions not in descending probability")
		}
	}
}

func TestEvaluateFacade(t *testing.T) {
	f := newFixture(t, 100)
	res, err := Run(f.u, f.seedSet, Config{StepBits: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	point, curve := Evaluate(res, f.testSet, f.u.SpaceSize())
	if point.FracAll <= 0 || point.FracAll > 1 {
		t.Errorf("FracAll = %f", point.FracAll)
	}
	if len(curve) == 0 {
		t.Error("empty curve")
	}
	if curve.Final().Probes != res.TotalScanProbes() {
		t.Errorf("curve final probes %d; want %d", curve.Final().Probes, res.TotalScanProbes())
	}
}

func TestCollectSeed(t *testing.T) {
	f := newFixture(t, 100)
	seed := CollectSeed(f.u, 0.01, 9)
	want := uint64(float64(f.u.SpaceSize()) * 0.01 * netmodel.NumPorts)
	if seed.CollectionProbes != want {
		t.Errorf("seed collection probes = %d; want %d", seed.CollectionProbes, want)
	}
	if seed.NumServices() == 0 {
		t.Error("empty seed collected")
	}
	res, err := Run(f.u, seed, Config{StepBits: 16, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedProbes != seed.CollectionProbes {
		t.Error("seed probes not carried into result")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.EffectiveStep() != 16 {
		t.Errorf("default step = %d; want 16", c.EffectiveStep())
	}
	c.StepBits = 20
	if c.EffectiveStep() != 20 {
		t.Error("explicit step ignored")
	}
	c.StepZero = true
	if c.EffectiveStep() != 0 {
		t.Error("StepZero ignored")
	}
	if PhasePriors.String() != "priors" || PhasePredict.String() != "predict" {
		t.Error("phase names wrong")
	}
}

func TestMiddleboxesFiltered(t *testing.T) {
	f := newFixture(t, 100)
	res, err := Run(f.u, f.seedSet, Config{StepBits: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Middleboxes == 0 {
		t.Error("no middleboxes encountered; the universe plants them")
	}
	for _, a := range res.Anchors {
		h, ok := f.u.HostAt(a.IP)
		if !ok {
			t.Fatal("anchor on missing host")
		}
		if h.Middlebox {
			t.Fatal("middlebox used as anchor")
		}
	}
}
