package gps_test

// Compile-checks and exercises every root-package re-export once, so a
// refactor of the internal packages cannot silently break the public API:
// removing or retyping an alias fails this file at compile time, and each
// function alias is called at least once against a tiny universe.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gps"
)

// The type aliases, pinned by assignability. A change to any underlying
// internal type that breaks the alias breaks this block.
var (
	_ gps.IP                = gps.IP(0)
	_ gps.Prefix            = gps.Prefix{}
	_ gps.ASN               = gps.ASN(0)
	_ *gps.Universe         = (*gps.Universe)(nil)
	_ gps.UniverseParams    = gps.UniverseParams{}
	_ gps.ServiceKey        = gps.ServiceKey{}
	_ *gps.Dataset          = (*gps.Dataset)(nil)
	_ gps.Record            = gps.Record{}
	_ gps.FeatureKey        = gps.FeatureKey(0)
	_ gps.Protocol          = gps.Protocol(0)
	_ *gps.Model            = (*gps.Model)(nil)
	_ gps.FamilySet         = gps.FamilySet(0)
	_ gps.PriorsList        = gps.PriorsList{}
	_ gps.Prediction        = gps.Prediction{}
	_ *gps.GroundTruth      = (*gps.GroundTruth)(nil)
	_ *gps.Tracker          = (*gps.Tracker)(nil)
	_ gps.Curve             = gps.Curve(nil)
	_ gps.Rate              = gps.Rate{}
	_ gps.Config            = gps.Config{}
	_ gps.Phase             = gps.PhasePriors
	_ gps.Phase             = gps.PhasePredict
	_ gps.Discovery         = gps.Discovery{}
	_ gps.Timings           = gps.Timings{}
	_ *gps.Result           = (*gps.Result)(nil)
	_ gps.ChurnParams       = gps.ChurnParams{}
	_ gps.ContinuousConfig  = gps.ContinuousConfig{}
	_ *gps.Continuous       = (*gps.Continuous)(nil)
	_ *gps.ContinuousState  = (*gps.ContinuousState)(nil)
	_ gps.EpochStats        = gps.EpochStats{}
	_ *gps.KnownService     = (*gps.KnownService)(nil)
	_ gps.Freshness         = gps.Freshness{}
	_ gps.ShardFilter       = gps.ShardFilter{}
	_ gps.ShardConfig       = gps.ShardConfig{}
	_ *gps.ShardCoordinator = (*gps.ShardCoordinator)(nil)
	_ *gps.ShardMerged      = (*gps.ShardMerged)(nil)

	_ *gps.UniversePartition      = (*gps.UniversePartition)(nil)
	_ gps.ShardWorld              = gps.ShardWorld(nil)
	_ gps.ShardExtendableWorld    = gps.ShardExtendableWorld(nil)
	_ gps.ShardWorldFactory       = gps.ShardWorldFactory(nil)
	_ gps.ShardWorkerOptions      = gps.ShardWorkerOptions{}
	_ gps.DistributedOptions      = gps.DistributedOptions{}
	_ *gps.DistributedCoordinator = (*gps.DistributedCoordinator)(nil)
	_ *gps.ShardWorkerError       = (*gps.ShardWorkerError)(nil)

	_ *gps.InventorySnapshot            = (*gps.InventorySnapshot)(nil)
	_ *gps.InventoryPublisher           = (*gps.InventoryPublisher)(nil)
	_ *gps.InventoryServer              = (*gps.InventoryServer)(nil)
	_ gps.InventoryStats                = gps.InventoryStats{}
	_ gps.ServedService                 = gps.ServedService{}
	_ gps.InventoryPortCount            = gps.InventoryPortCount{}
	_ gps.ShardCommitHook               = gps.ShardCommitHook(nil)
	_ gps.ContinuousCommitHook          = gps.ContinuousCommitHook(nil)
	_ *gps.ShardInventoryMagicError     = (*gps.ShardInventoryMagicError)(nil)
	_ *gps.ShardInventoryTruncatedError = (*gps.ShardInventoryTruncatedError)(nil)
)

// TestFacadeEndToEnd drives every exported function through one tiny
// batch run, one sharded run, and one continuous epoch with a checkpoint
// cycle.
func TestFacadeEndToEnd(t *testing.T) {
	const seed = 21

	// Universe construction helpers.
	if p := gps.DefaultUniverseParams(seed); p.Seed != seed {
		t.Error("DefaultUniverseParams dropped the seed")
	}
	if p := gps.DemoUniverseParams(seed, 8, 0.05); p.NumPrefix16 != 8 {
		t.Error("DemoUniverseParams dropped the prefix count")
	}
	u := gps.GenerateUniverse(gps.SmallUniverseParams(seed))
	if u.NumHosts() == 0 || u.SpaceSize() == 0 {
		t.Fatal("empty universe")
	}

	// Partitioned generation: checked construction, restriction, merge.
	if _, err := gps.NewUniverse(gps.UniverseParams{}); err == nil {
		t.Error("NewUniverse accepted zero params")
	}
	partParams := func(owned ...int) gps.UniverseParams {
		p := gps.SmallUniverseParams(seed)
		p.Partition = &gps.UniversePartition{Count: 4, Owned: owned}
		return p
	}
	sub0, err := gps.NewUniverse(partParams(0))
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := gps.NewUniverse(partParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if sub0.NumHosts() >= u.NumHosts() || sub0.Partition() == nil {
		t.Error("partitioned universe did not restrict hosts")
	}
	for _, h := range sub0.Hosts()[:10] {
		if gps.ShardOf(h.IP, 4) != 0 {
			t.Fatalf("partition {0} materialized host %v of shard %d", h.IP, gps.ShardOf(h.IP, 4))
		}
	}
	mergedU, err := gps.MergeUniverses(sub0, sub1)
	if err != nil {
		t.Fatal(err)
	}
	if mergedU.NumHosts() != sub0.NumHosts()+sub1.NumHosts() {
		t.Error("MergeUniverses lost hosts")
	}
	if _, err := gps.MergeUniverses(sub0, sub0); err == nil {
		t.Error("MergeUniverses accepted overlapping partitions")
	}

	// The transport's world-spec partition envelope.
	base := []byte("demo world header")
	spec := gps.PartitionShardWorldSpec(base, 4, []int{2, 0})
	gotBase, shards, owned, err := gps.SplitShardWorldSpec(spec)
	if err != nil || string(gotBase) != string(base) || shards != 4 ||
		len(owned) != 2 || owned[0] != 0 || owned[1] != 2 {
		t.Errorf("world spec round trip = (%q, %d, %v, %v)", gotBase, shards, owned, err)
	}
	if _, _, _, err := gps.SplitShardWorldSpec([]byte("junk")); err == nil {
		t.Error("SplitShardWorldSpec accepted junk")
	}

	// Snapshots and splits.
	censys := gps.SnapshotCensys(u, 50)
	if censys.NumServices() == 0 {
		t.Fatal("empty censys snapshot")
	}
	full := gps.SnapshotAllPorts(u, 0.3, seed^0x11)
	seedSet, testSet := full.Split(0.04, seed^0x22)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	collected := gps.CollectSeed(u, 0.04, seed)
	if collected.CollectionProbes == 0 {
		t.Error("CollectSeed accounted no bandwidth")
	}

	// Batch pipeline + evaluation.
	res, err := gps.Run(u, seedSet, gps.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Found) == 0 || res.TotalScanProbes() == 0 {
		t.Fatal("batch run found nothing")
	}
	gt := gps.NewGroundTruth(testSet)
	tr := gps.NewTracker(gt, u.SpaceSize())
	tr.Spend(1)
	point, curve := gps.Evaluate(res, testSet, u.SpaceSize())
	if point.Found == 0 || len(curve) == 0 {
		t.Error("Evaluate produced an empty curve")
	}
	if (gps.Rate{Gbps: 1}).Duration(res.TotalScanProbes()) <= 0 {
		t.Error("Rate.Duration returned nothing for a nonzero scan")
	}

	// Sharding: hash, partition, sharded run, merge, inventory.
	ip := gps.IP(0x0a000001)
	if gps.ShardOf(ip, 1) != 0 {
		t.Error("ShardOf(_, 1) != 0")
	}
	if f := (gps.ShardFilter{Index: gps.ShardOf(ip, 4), Count: 4}); !f.Owns(ip) {
		t.Error("ShardFilter does not own its own hash bucket")
	}
	parts := gps.PartitionDataset(seedSet, 4)
	n := 0
	for _, p := range parts {
		n += p.NumServices()
	}
	if len(parts) != 4 || n != seedSet.NumServices() {
		t.Errorf("PartitionDataset: %d parts, %d records; want 4 parts, %d records", len(parts), n, seedSet.NumServices())
	}
	merged, err := gps.RunSharded(u, seedSet, gps.Config{Seed: seed}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Found) != len(res.Found) {
		t.Errorf("2-shard merged inventory %d services; unsharded %d", len(merged.Found), len(res.Found))
	}
	if re := gps.MergeShardResults(merged.Results); len(re.Found) != len(merged.Found) {
		t.Error("MergeShardResults disagrees with RunSharded's own merge")
	}

	// Continuous + churn + checkpoints, unsharded and sharded.
	world := gps.ApplyChurn(u, gps.DefaultChurn(seed+1))
	runner := gps.NewContinuous(seedSet, gps.ContinuousConfig{Pipeline: gps.Config{Workers: 1, Seed: seed}})
	stats, err := runner.Epoch(world)
	if err != nil {
		t.Fatal(err)
	}
	if stats.KnownSize == 0 {
		t.Fatal("continuous epoch emptied the inventory")
	}
	var buf bytes.Buffer
	if err := gps.WriteContinuousCheckpoint(&buf, runner.State()); err != nil {
		t.Fatal(err)
	}
	st, err := gps.ReadContinuousCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if resumed := gps.ResumeContinuous(st, gps.ContinuousConfig{}); resumed.State().Epoch != 1 {
		t.Error("continuous checkpoint did not round-trip the epoch")
	}

	coord := gps.NewShardCoordinator(seedSet, gps.ShardConfig{
		Shards:     2,
		Continuous: gps.ContinuousConfig{Pipeline: gps.Config{Workers: 1, Seed: seed}},
	})
	if _, err := coord.Epoch(world); err != nil {
		t.Fatal(err)
	}
	inv, conflicts := coord.Inventory()
	if len(inv) == 0 || conflicts != 0 {
		t.Errorf("coordinator inventory %d services, %d conflicts", len(inv), conflicts)
	}
	buf.Reset()
	if err := gps.WriteShardCheckpoint(&buf, coord.States()); err != nil {
		t.Fatal(err)
	}
	states, err := gps.ReadShardCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if inv2, _ := gps.MergeShardInventories(states); len(inv2) != len(inv) {
		t.Error("sharded checkpoint did not round-trip the inventory")
	}
	if _, err := gps.ResumeShardCoordinator(states, gps.ShardConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
}

// facadeWorld adapts the facade's universe helpers to the shard-worker
// World contract: epoch e is the seed universe with churn seed+1..seed+e
// applied.
type facadeWorld struct {
	seed  int64
	epoch int
	u     *gps.Universe
}

func (w *facadeWorld) UniverseAt(e int) (*gps.Universe, error) {
	if e < w.epoch {
		w.u = gps.GenerateUniverse(gps.SmallUniverseParams(w.seed))
		w.epoch = 0
	}
	for w.epoch < e {
		w.epoch++
		w.u = gps.ApplyChurn(w.u, gps.DefaultChurn(w.seed+int64(w.epoch)))
	}
	return w.u, nil
}

// TestFacadeDistributed drives the distributed re-exports: a one-worker
// fleet whose merged inventory must match the in-process coordinator's
// byte for byte, then a split+join re-balance round trip of the states.
func TestFacadeDistributed(t *testing.T) {
	const seed = 21
	u := gps.GenerateUniverse(gps.SmallUniverseParams(seed))
	seedSet := gps.CollectSeed(u, 0.05, seed^0x5eed)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	cfg := gps.ShardConfig{
		Shards:     2,
		Continuous: gps.ContinuousConfig{Pipeline: gps.Config{Workers: 1, Seed: seed}},
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() {
		served <- gps.ServeShardWorker(lis, func(spec []byte) (gps.ShardWorld, error) {
			return &facadeWorld{seed: seed, u: gps.GenerateUniverse(gps.SmallUniverseParams(seed))}, nil
		}, nil)
	}()
	defer func() {
		lis.Close()
		<-served
	}()

	coord, err := gps.DialShardWorkers([]string{lis.Addr().String()}, cfg, nil,
		&gps.DistributedOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Epoch(); err != nil {
		t.Fatal(err)
	}

	ref := gps.NewShardCoordinator(seedSet, cfg)
	if _, err := ref.Epoch(gps.ApplyChurn(u, gps.DefaultChurn(seed+1))); err != nil {
		t.Fatal(err)
	}

	var distInv, refInv bytes.Buffer
	inv, _ := coord.Inventory()
	if err := gps.WriteShardInventory(&distInv, inv); err != nil {
		t.Fatal(err)
	}
	inv2, _ := ref.Inventory()
	if err := gps.WriteShardInventory(&refInv, inv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(distInv.Bytes(), refInv.Bytes()) {
		t.Error("distributed inventory differs from the in-process coordinator's")
	}

	split, err := gps.SplitShardStates(coord.States())
	if err != nil {
		t.Fatal(err)
	}
	joined, err := gps.JoinShardStates(split)
	if err != nil {
		t.Fatal(err)
	}
	var before, after bytes.Buffer
	if err := gps.WriteShardCheckpoint(&before, coord.States()); err != nil {
		t.Fatal(err)
	}
	if err := gps.WriteShardCheckpoint(&after, joined); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Error("split+join did not round-trip the shard states")
	}
}

// TestFacadeServing drives the serving re-exports end to end: a sharded
// coordinator whose commit hook feeds an InventoryPublisher, the HTTP
// query API over it, and the GPSV write→read round trip standalone
// serving depends on.
func TestFacadeServing(t *testing.T) {
	const seed = 33
	u := gps.GenerateUniverse(gps.SmallUniverseParams(seed))
	seedSet := gps.CollectSeed(u, 0.05, seed^0x5eed)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	cfg := gps.ShardConfig{
		Shards:     2,
		Continuous: gps.ContinuousConfig{Pipeline: gps.Config{Workers: 1, Seed: seed}},
	}
	coord := gps.NewShardCoordinator(seedSet, cfg)

	var pub gps.InventoryPublisher
	coord.SetCommitHook(func(epoch int, inv map[gps.ServiceKey]*gps.KnownService) {
		pub.Publish(gps.NewInventorySnapshot(epoch, inv))
	})
	if _, err := coord.Epoch(gps.ApplyChurn(u, gps.DefaultChurn(seed+1))); err != nil {
		t.Fatal(err)
	}

	snap := pub.Current()
	if snap == nil || snap.Epoch() != 1 {
		t.Fatalf("commit hook published %v; want epoch-1 snapshot", snap)
	}
	inv, _ := coord.Inventory()
	if snap.NumServices() != len(inv) {
		t.Fatalf("snapshot holds %d services; inventory %d", snap.NumServices(), len(inv))
	}

	// The GPSV artifact round-trips and serves the same aggregates.
	var wire bytes.Buffer
	if err := gps.WriteShardInventory(&wire, inv); err != nil {
		t.Fatal(err)
	}
	loaded, err := gps.ReadShardInventory(&wire)
	if err != nil {
		t.Fatal(err)
	}
	fileSnap := gps.NewInventorySnapshot(1, loaded)
	if fileSnap.Stats() != snap.Stats() {
		t.Errorf("file-loaded stats %+v differ from live stats %+v", fileSnap.Stats(), snap.Stats())
	}

	srv := httptest.NewServer(gps.NewInventoryServer(&pub).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Epoch    int `json:"epoch"`
		Services int `json:"services"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 1 || stats.Services != len(inv) {
		t.Errorf("served stats %+v; want epoch 1, %d services", stats, len(inv))
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
	req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation got %d; want 304", resp2.StatusCode)
	}

	// Typed read errors surface through the facade.
	var magicErr *gps.ShardInventoryMagicError
	if _, err := gps.ReadShardInventory(bytes.NewReader([]byte("nonsense bytes"))); !errors.As(err, &magicErr) {
		t.Errorf("foreign bytes: %v; want *gps.ShardInventoryMagicError", err)
	}
}

// Replication facade aliases, pinned by assignability.
var (
	_ *gps.SnapshotDelta               = (*gps.SnapshotDelta)(nil)
	_ gps.SnapshotDeltaEntry           = gps.SnapshotDeltaEntry{}
	_ *gps.SnapshotDeltaMagicError     = (*gps.SnapshotDeltaMagicError)(nil)
	_ *gps.SnapshotDeltaTruncatedError = (*gps.SnapshotDeltaTruncatedError)(nil)
	_ *gps.InventoryFeed               = (*gps.InventoryFeed)(nil)
	_ gps.InventoryFeedSource          = (*gps.InventoryFeed)(nil)
	_ gps.InventoryFeedEvent           = gps.InventoryFeedEvent{}
	_ *gps.InventoryFeedConn           = (*gps.InventoryFeedConn)(nil)
	_ *gps.ReplicaServer               = (*gps.ReplicaServer)(nil)
	_ gps.ReplicaOptions               = gps.ReplicaOptions{}
	_ *gps.WatchClient                 = (*gps.WatchClient)(nil)
	_ gps.WatchEvent                   = gps.WatchEvent{}
	_ gps.WatchEntry                   = gps.WatchEntry{}
	_ gps.WatchKey                     = gps.WatchKey{}
	_ error                            = gps.ErrWatchDone
)

// TestFacadeReplication drives the replication surface end to end
// through the root package: a coordinator commits epochs into a feed, a
// replica follows it over a real listener, a watch client follows the
// replica's /v1/watch, and the delta codec round-trips with typed
// errors — all byte-compared against the origin inventory.
func TestFacadeReplication(t *testing.T) {
	const seed = 27
	u := gps.GenerateUniverse(gps.SmallUniverseParams(seed))
	seedSet := gps.CollectSeed(u, 0.05, seed^0x5eed)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	coord := gps.NewShardCoordinator(seedSet, gps.ShardConfig{
		Shards:     2,
		Continuous: gps.ContinuousConfig{Pipeline: gps.Config{Workers: 1, Seed: seed}},
	})

	feed := gps.NewInventoryFeed(8)
	defer feed.Close()
	coord.SetCommitHook(feed.Commit)

	// Two committed epochs: one to bootstrap from, one to ride as a delta.
	for e := 1; e <= 2; e++ {
		u = gps.ApplyChurn(u, gps.DefaultChurn(seed+int64(e)))
		if _, err := coord.Epoch(u); err != nil {
			t.Fatal(err)
		}
	}
	if feed.Head() != 2 {
		t.Fatalf("feed head %d; want 2", feed.Head())
	}
	originInv, _ := coord.Inventory()
	var originWire bytes.Buffer
	if err := gps.WriteShardInventory(&originWire, originInv); err != nil {
		t.Fatal(err)
	}

	// The delta codec round-trips through the facade.
	base := gps.CloneShardInventory(originInv)
	next := gps.CloneShardInventory(originInv)
	for k := range next {
		delete(next, k)
		break
	}
	d := gps.ComputeSnapshotDelta(base, next, 2, 3)
	if len(d.Removes) != 1 || d.Size() != 1 {
		t.Fatalf("delta removes %d size %d; want 1 1", len(d.Removes), d.Size())
	}
	var dw bytes.Buffer
	if err := gps.WriteSnapshotDelta(&dw, d); err != nil {
		t.Fatal(err)
	}
	rd, err := gps.ReadSnapshotDelta(bytes.NewReader(dw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := gps.ApplySnapshotDelta(base, rd); err != nil {
		t.Fatal(err)
	}
	if len(base) != len(next) {
		t.Fatalf("applied delta leaves %d services; want %d", len(base), len(next))
	}
	var deltaMagic *gps.SnapshotDeltaMagicError
	if _, err := gps.ReadSnapshotDelta(bytes.NewReader([]byte("nonsense bytes"))); !errors.As(err, &deltaMagic) {
		t.Errorf("foreign bytes: %v; want *gps.SnapshotDeltaMagicError", err)
	}
	var deltaTrunc *gps.SnapshotDeltaTruncatedError
	if _, err := gps.ReadSnapshotDelta(bytes.NewReader(dw.Bytes()[:dw.Len()-1])); !errors.As(err, &deltaTrunc) {
		t.Errorf("truncated delta: %v; want *gps.SnapshotDeltaTruncatedError", err)
	}

	// Serve the feed on a real listener; a replica follows it.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	feedDone := make(chan error, 1)
	go func() {
		feedDone <- gps.ServeInventoryFeed(lis, feed, &gps.DistributedOptions{Timeout: 5 * time.Second})
	}()
	defer func() {
		lis.Close()
		if err := <-feedDone; err != nil {
			t.Errorf("ServeInventoryFeed: %v", err)
		}
	}()

	// A raw subscription sees a snapshot frame first.
	fc, err := gps.DialInventoryFeed(lis.Addr().String(), -1, &gps.DistributedOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := fc.Recv()
	fc.Close()
	if err != nil || ev.Kind != gps.InventoryFeedSnapshot || ev.Epoch != 2 {
		t.Fatalf("first feed event kind %v epoch %d err %v; want snapshot at 2", ev.Kind, ev.Epoch, err)
	}
	if !bytes.Equal(ev.Payload, originWire.Bytes()) {
		t.Fatal("feed snapshot payload differs from the canonical origin inventory")
	}

	rep := gps.NewReplicaServer(lis.Addr().String(), &gps.ReplicaOptions{Backoff: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	repDone := make(chan struct{})
	go func() { defer close(repDone); rep.Run(ctx) }()
	defer func() { cancel(); <-repDone }()
	deadline := time.Now().Add(10 * time.Second)
	for rep.Epoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at epoch %d", rep.Epoch())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if repEpoch, repWire := rep.Feed().Snapshot(); repEpoch != 2 || !bytes.Equal(repWire, originWire.Bytes()) {
		t.Fatalf("replica inventory at epoch %d differs from origin", repEpoch)
	}

	// The replica serves /v1 and /v1/watch; a watch client reconstructs
	// the inventory from its own stream.
	srv := httptest.NewServer(gps.NewInventoryServer(rep.Publisher()).EnableWatch(rep.Feed()).Handler())
	defer srv.Close()
	mirror := make(map[gps.ServiceKey]*gps.KnownService)
	wc := &gps.WatchClient{URL: srv.URL + "/v1/watch", Since: -1}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := wc.Follow(wctx, func(ev gps.WatchEvent) error {
		if err := ev.ApplyTo(mirror); err != nil {
			return err
		}
		return gps.ErrWatchDone // the snapshot event is all we need
	}); err != nil {
		t.Fatal(err)
	}
	var mirrorWire bytes.Buffer
	if err := gps.WriteShardInventory(&mirrorWire, mirror); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mirrorWire.Bytes(), originWire.Bytes()) {
		t.Fatal("watch-reconstructed inventory differs from the origin")
	}
}
