module gps

go 1.21
