package gps

import (
	"io"
	"net"
	"net/http"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/metrics"
	"gps/internal/netmodel"
	"gps/internal/predict"
	"gps/internal/priors"
	"gps/internal/probmodel"
	"gps/internal/scanner"
	"gps/internal/serve"
	"gps/internal/shard"
	"gps/internal/shard/transport"
	"gps/internal/telemetry"
	"gps/internal/trace"
)

// This file re-exports the library's supporting types through the root
// package so that downstream users can drive the full pipeline — universe
// generation, dataset snapshots, evaluation metrics — without importing
// internal packages. The aliases are the public API surface; the internal
// packages remain free to reorganize behind them.

// IP is an IPv4 address in host byte order.
type IP = asndb.IP

// Prefix is a CIDR block.
type Prefix = asndb.Prefix

// ASN is an autonomous system number.
type ASN = asndb.ASN

// Universe is the synthetic IPv4 Internet GPS scans; it stands in for the
// live address space.
type Universe = netmodel.Universe

// UniverseParams configures universe generation.
type UniverseParams = netmodel.Params

// UniversePartition restricts universe generation to the owned subset of
// an n-way hash split (ShardOf): only owned addresses materialize hosts,
// each byte-identical to the full universe's. Shard workers use this to
// hold ~1/N of the world.
type UniversePartition = netmodel.Partition

// ServiceKey identifies one service as an (IP, port) pair.
type ServiceKey = netmodel.Key

// Dataset is a collection of observed services: seed sets, test sets, and
// ground-truth snapshots.
type Dataset = dataset.Dataset

// Record is one observed service.
type Record = dataset.Record

// FeatureKey identifies one of the 25 features of Table 1.
type FeatureKey = features.Key

// Protocol identifies an application-layer protocol.
type Protocol = features.Protocol

// Model is the trained conditional-probability model (Expressions 4-7).
type Model = probmodel.Model

// FamilySet selects which conditional-probability families to use.
type FamilySet = probmodel.FamilySet

// PriorsList is the ordered (port, subnet) scan list of phase 3.
type PriorsList = priors.List

// Prediction is one predicted (IP, port) pair with its probability.
type Prediction = predict.Prediction

// GroundTruth indexes a dataset for evaluation.
type GroundTruth = metrics.GroundTruth

// Tracker accumulates discoveries into coverage curves.
type Tracker = metrics.Tracker

// Curve is a coverage-vs-bandwidth curve.
type Curve = metrics.Curve

// Rate models a scanning link rate for wall-time estimates.
type Rate = scanner.Rate

// GenerateUniverse builds a deterministic synthetic Internet. It panics
// on invalid parameters; NewUniverse returns the error instead.
func GenerateUniverse(p UniverseParams) *Universe { return netmodel.Generate(p) }

// NewUniverse builds a deterministic synthetic Internet, validating the
// parameters (including any UniversePartition) instead of panicking.
// Use it wherever the parameters crossed a trust boundary — e.g. a shard
// worker rebuilding a world from a coordinator's spec.
func NewUniverse(p UniverseParams) (*Universe, error) { return netmodel.GenerateChecked(p) }

// MergeUniverses combines two universes generated (and churned)
// identically except for disjoint owned partitions into one universe
// owning the union; the worker-side cheap path for adopting a re-queued
// shard without regenerating the world.
func MergeUniverses(a, b *Universe) (*Universe, error) { return netmodel.Merge(a, b) }

// DefaultUniverseParams returns a mid-sized universe configuration.
func DefaultUniverseParams(seed int64) UniverseParams { return netmodel.DefaultParams(seed) }

// SmallUniverseParams returns a small universe configuration suitable for
// examples and tests.
func SmallUniverseParams(seed int64) UniverseParams { return netmodel.TestParams(seed) }

// DemoUniverseParams derives a universe configuration from the three
// knobs the command-line tools expose (seed, announced /16 count, host
// density). gps and gpsd share this recipe: gpsd's checkpoints pin only
// these three values, so both commands must derive identical universes
// from them.
func DemoUniverseParams(seed int64, prefixes int, density float64) UniverseParams {
	p := netmodel.DefaultParams(seed)
	p.NumPrefix16 = prefixes
	p.NumASes = max(4, prefixes/2)
	p.HostDensity = density
	return p
}

// SnapshotCensys captures a Censys-style ground truth: 100% scans of the
// top-k most popular ports.
func SnapshotCensys(u *Universe, k int) *Dataset { return dataset.SnapshotCensys(u, k) }

// SnapshotAllPorts captures an LZR-style ground truth: a uniform random
// sample of the address space scanned across all 65K ports.
func SnapshotAllPorts(u *Universe, fraction float64, seed int64) *Dataset {
	return dataset.SnapshotLZR(u, fraction, seed)
}

// NewGroundTruth indexes a dataset for evaluation.
func NewGroundTruth(d *Dataset) *GroundTruth { return metrics.NewGroundTruth(d) }

// NewTracker creates a coverage tracker against a ground truth.
func NewTracker(gt *GroundTruth, spaceSize uint64) *Tracker {
	return metrics.NewTracker(gt, spaceSize)
}

// ChurnParams controls how the universe evolves between observations.
type ChurnParams = netmodel.ChurnParams

// DefaultChurn returns churn parameters tuned to the paper's 10-day
// measurement (§3).
func DefaultChurn(seed int64) ChurnParams { return netmodel.DefaultChurn(seed) }

// ApplyChurn advances the universe one churn step, returning the evolved
// universe; the input is unmodified.
func ApplyChurn(u *Universe, p ChurnParams) *Universe { return netmodel.Churn(u, p) }

// ContinuousConfig parameterizes the continuous scanning subsystem.
type ContinuousConfig = continuous.Config

// Continuous is the epoch-driven continuous scanner: it re-verifies known
// services, re-trains on fresh observations, and spends a recurring
// budget on discovery so the inventory tracks churn.
type Continuous = continuous.Runner

// ContinuousState is the checkpointable state of a continuous scan.
type ContinuousState = continuous.State

// EpochStats summarizes one continuous-scanning epoch.
type EpochStats = continuous.EpochStats

// KnownService is one tracked service in the continuous inventory.
type KnownService = continuous.Entry

// Freshness is the per-epoch staleness accounting of the known set.
type Freshness = metrics.Freshness

// NewContinuous creates a continuous scanner seeded with an initial
// observation set (typically CollectSeed output).
func NewContinuous(seed *Dataset, cfg ContinuousConfig) *Continuous {
	return continuous.New(seed, cfg)
}

// ResumeContinuous creates a continuous scanner from checkpointed state.
func ResumeContinuous(st *ContinuousState, cfg ContinuousConfig) *Continuous {
	return continuous.Resume(st, cfg)
}

// WriteContinuousCheckpoint serializes continuous-scan state.
func WriteContinuousCheckpoint(w io.Writer, st *ContinuousState) error {
	return continuous.WriteCheckpoint(w, st)
}

// ReadContinuousCheckpoint parses WriteContinuousCheckpoint output.
func ReadContinuousCheckpoint(r io.Reader) (*ContinuousState, error) {
	return continuous.ReadCheckpoint(r)
}

// ShardFilter selects one partition of an n-way hash split of the
// address space.
type ShardFilter = shard.Filter

// ShardConfig parameterizes the sharded continuous coordinator.
type ShardConfig = shard.Config

// ShardCoordinator drives N continuous runners, one per partition,
// running their epochs concurrently and merging their inventories into a
// single global view.
type ShardCoordinator = shard.Coordinator

// ShardMerged is the single global view folded from per-shard batch
// pipeline results.
type ShardMerged = shard.Merged

// ShardOf maps an address to one of n shards; the assignment is a pure
// function of (ip, n), stable across runs and churn.
func ShardOf(ip IP, n int) int { return asndb.ShardOf(ip, n) }

// PartitionDataset splits a dataset into n shard-local datasets by IP
// hash.
func PartitionDataset(d *Dataset, n int) []*Dataset { return shard.Partition(d, n) }

// RunSharded executes one batch GPS run partitioned over n shards — n
// independent pipeline runs, each owning one hash partition of the
// address space with its own model and a 1/n budget slice — and folds
// them into one merged view. With an unlimited budget (cfg.Budget == 0)
// the merged inventory is byte-identical to the unsharded run's; a
// finite budget is sliced per shard, so each shard stops in different
// places than the global probe ordering would and the equality becomes
// approximate.
func RunSharded(u *Universe, seedSet *Dataset, cfg Config, n int) (*ShardMerged, error) {
	return shard.Run(u, seedSet, cfg, n)
}

// MergeShardResults folds per-shard batch results into one global view.
// The merged SeedProbes assumes the RunSharded workflow (one seed
// broadcast to every shard); if each shard trained on a disjoint
// PartitionDataset slice instead, account the seed cost from the slices'
// CollectionProbes rather than the merged figure.
func MergeShardResults(results []*Result) *ShardMerged { return shard.MergeResults(results) }

// NewShardCoordinator creates a sharded continuous coordinator seeded
// with an initial observation set.
func NewShardCoordinator(seed *Dataset, cfg ShardConfig) *ShardCoordinator {
	return shard.NewCoordinator(seed, cfg)
}

// ResumeShardCoordinator recreates a coordinator from checkpointed
// per-shard states.
func ResumeShardCoordinator(states []*ContinuousState, cfg ShardConfig) (*ShardCoordinator, error) {
	return shard.ResumeCoordinator(states, cfg)
}

// MergeShardInventories folds per-shard continuous states into one
// global inventory with cross-shard conflict resolution, returning the
// merged inventory and the number of conflicts resolved.
func MergeShardInventories(states []*ContinuousState) (map[ServiceKey]*KnownService, int) {
	return shard.MergeInventories(states)
}

// WriteShardCheckpoint serializes per-shard continuous states in shard
// order.
func WriteShardCheckpoint(w io.Writer, states []*ContinuousState) error {
	return shard.WriteCheckpoint(w, states)
}

// ReadShardCheckpoint parses WriteShardCheckpoint output.
func ReadShardCheckpoint(r io.Reader) ([]*ContinuousState, error) {
	return shard.ReadCheckpoint(r)
}

// SplitShardStates doubles a checkpointed layout's shard count without a
// rescan: state i of an n-way hash split partitions into states i and i+n
// of a 2n-way split by re-hashing each inventory entry. JoinShardStates
// inverts it. Together they are shard re-balancing: a hot shard splits in
// two (each half resumable on its own worker), and cold halves rejoin.
func SplitShardStates(states []*ContinuousState) ([]*ContinuousState, error) {
	return shard.SplitStates(states)
}

// JoinShardStates halves a checkpointed layout's shard count, merging
// states i and i+n/2; the exact inverse of SplitShardStates.
func JoinShardStates(states []*ContinuousState) ([]*ContinuousState, error) {
	return shard.JoinStates(states)
}

// WriteShardInventory serializes a merged continuous inventory
// canonically (sorted keys plus per-entry serving fields and observation
// history): two coordinators that tracked the same services through the
// same epochs produce byte-identical output whatever their shard layout
// or transport.
func WriteShardInventory(w io.Writer, inv map[ServiceKey]*KnownService) error {
	return shard.WriteInventory(w, inv)
}

// ReadShardInventory parses WriteShardInventory output back into a
// merged inventory: the serving artifact gpsd -serve-file loads. Errors
// are typed (*ShardInventoryMagicError, *ShardInventoryTruncatedError).
func ReadShardInventory(r io.Reader) (map[ServiceKey]*KnownService, error) {
	return shard.ReadInventory(r)
}

// ShardInventoryMagicError reports bytes that are not a GPSV inventory,
// or a GPSV version this build does not speak.
type ShardInventoryMagicError = shard.InventoryMagicError

// ShardInventoryTruncatedError reports a GPSV inventory cut short
// mid-stream.
type ShardInventoryTruncatedError = shard.InventoryTruncatedError

// ShardCommitHook observes each committed coordinator epoch with the
// merged global inventory; register it with a ShardCoordinator's or
// DistributedCoordinator's SetCommitHook to feed an InventoryPublisher.
type ShardCommitHook = shard.CommitHook

// ContinuousCommitHook observes each committed epoch of a single
// (unsharded) continuous runner.
type ContinuousCommitHook = continuous.CommitHook

// InventorySnapshot is one immutable, fully-indexed view of the service
// inventory at a committed epoch: secondary indexes by host, port, /16
// prefix, and ASN, plus precomputed freshness aggregates. Safe for
// unlimited concurrent readers.
type InventorySnapshot = serve.Snapshot

// InventoryPublisher atomically swaps snapshots under concurrent readers:
// the lock-free handoff between the scan loop and the query engine.
type InventoryPublisher = serve.Publisher

// InventoryServer is the HTTP query API (/v1/host, /v1/port, /v1/asn,
// /v1/prefix, /v1/ports, /v1/stats, /v1/healthz) over a publisher, with
// pagination, epoch-keyed ETags, and a bounded query cache.
type InventoryServer = serve.Server

// InventoryStats is a snapshot's precomputed aggregate view.
type InventoryStats = serve.Stats

// ServedService is one inventory entry as served.
type ServedService = serve.Service

// InventoryPortCount is one row of the per-port coverage aggregate.
type InventoryPortCount = serve.PortCount

// NewInventorySnapshot indexes a merged inventory as of a committed
// epoch. The input map is read, never retained.
func NewInventorySnapshot(epoch int, inv map[ServiceKey]*KnownService) *InventorySnapshot {
	return serve.NewSnapshot(epoch, inv)
}

// NewInventoryServer wraps a publisher in the HTTP query API.
func NewInventoryServer(pub *InventoryPublisher) *InventoryServer {
	return serve.NewServer(pub)
}

// ShardWorld is a worker's deterministic replica of the scanned universe,
// advanced epoch by epoch.
type ShardWorld = transport.World

// ShardWorldFactory builds a ShardWorld from the coordinator's
// world-spec blob (the caller's base spec wrapped in the partition
// envelope; unwrap with SplitShardWorldSpec).
type ShardWorldFactory = transport.WorldFactory

// ShardExtendableWorld is an optional ShardWorld extension: a
// partitioned world that can adopt a grown owned-shard set in place
// (materializing just the newly owned partition) when a re-queued shard
// arrives, instead of being rebuilt from scratch.
type ShardExtendableWorld = transport.ExtendableWorld

// ShardWorkerOptions tunes ServeShardWorker.
type ShardWorkerOptions = transport.WorkerOptions

// DistributedOptions tunes the distributed coordinator's client side
// (RPC deadline, dial retry window, logging).
type DistributedOptions = transport.Options

// DistributedCoordinator drives N shards across remote worker processes
// over the GPS shard transport, mirroring the in-process ShardCoordinator
// API; its merged inventory is byte-identical to the in-process run's.
type DistributedCoordinator = transport.Coordinator

// ShardWorkerError is the transport's typed worker failure: which worker
// failed, which shard it was serving, and why.
type ShardWorkerError = transport.WorkerError

// ServeShardWorker runs a shard worker process: it accepts coordinator
// sessions on lis and serves shard epochs until the listener closes.
func ServeShardWorker(lis net.Listener, factory ShardWorldFactory, opts *ShardWorkerOptions) error {
	return transport.Serve(lis, factory, opts)
}

// JoinShardWorker registers this process as a new worker with a running
// coordinator's join listener (DistributedCoordinator.AcceptJoins; gpsd
// -cluster) and serves shard epochs over the resulting session. The
// coordinator migrates shards to it live at the next epoch boundary. A
// nil return means a clean shutdown — the coordinator finished, or this
// worker drained out (opts.Draining) and its shards were handed off.
func JoinShardWorker(addr, id string, factory ShardWorldFactory, opts *ShardWorkerOptions) error {
	return transport.Join(addr, id, factory, opts)
}

// ClusterStatus is the live membership document a distributed
// coordinator maintains: per-worker state and shard ownership, per-shard
// latency summaries, and the migration history. GET /v1/cluster serves
// it verbatim.
type ClusterStatus = transport.ClusterStatus

// ClusterWorkerStatus is one worker row of a ClusterStatus.
type ClusterWorkerStatus = transport.WorkerStatus

// ClusterShardStatus is one shard's ownership + latency row of a
// ClusterStatus.
type ClusterShardStatus = transport.ShardStatus

// ClusterMigrationStatus is one completed (or in-flight) live shard
// migration in a ClusterStatus.
type ClusterMigrationStatus = transport.MigrationStatus

// HealthInfo is one process's role-specific readiness, merged into the
// /v1/healthz document (role, shards owned, draining, feed lag).
type HealthInfo = serve.HealthInfo

// HealthSource supplies live HealthInfo; attach one to an
// InventoryServer with SetHealthSource. *ReplicaServer implements it.
type HealthSource = serve.HealthSource

// HealthFunc adapts a closure to HealthSource.
type HealthFunc = serve.HealthFunc

// HealthHandler is a standalone /v1/healthz endpoint for processes with
// readiness but no inventory (a worker's debug mux).
func HealthHandler(hs HealthSource) http.Handler { return serve.HealthHandler(hs) }

// DialShardWorkers connects a distributed coordinator to a worker fleet.
// Seed or Resume it, then drive Epoch in a loop. worldSpec is the base
// world description; each worker receives it wrapped with its own
// owned-shard set (PartitionShardWorldSpec), so workers materialize only
// the partition they scan.
func DialShardWorkers(addrs []string, cfg ShardConfig, worldSpec []byte, opts *DistributedOptions) (*DistributedCoordinator, error) {
	return transport.Dial(addrs, cfg, worldSpec, opts)
}

// PartitionShardWorldSpec wraps a base world spec with the transport's
// partition envelope: the total shard count plus the owned shard
// indexes. The distributed coordinator applies it automatically; it is
// exported for tests and custom coordinators.
func PartitionShardWorldSpec(base []byte, shards int, owned []int) []byte {
	return transport.EncodeWorldSpec(base, shards, owned)
}

// SplitShardWorldSpec unwraps PartitionShardWorldSpec output into the
// base spec, the total shard count, and the owned shard indexes
// (ascending). ShardWorldFactory implementations call this on the spec
// the coordinator delivers.
func SplitShardWorldSpec(spec []byte) (base []byte, shards int, owned []int, err error) {
	return transport.DecodeWorldSpec(spec)
}

// TelemetryRegistry is the runtime metrics registry: atomic counters,
// gauges, fixed-bucket histograms, and EWMA gauges with a Prometheus
// text exposition (Handler serves it as /v1/metricz).
type TelemetryRegistry = telemetry.Registry

// Telemetry returns the process-wide default registry every GPS layer
// instruments into. Scrape it with Telemetry().Handler(), or disable
// recording entirely with Telemetry().SetEnabled(false) (benchmarks
// measure instrumentation overhead this way).
func Telemetry() *TelemetryRegistry { return telemetry.Default }

// Tracer is the distributed flight recorder: finished spans land in a
// bounded in-process ring, trace context propagates over the shard
// transport, and worker-side spans ship back with each epoch result so
// one coordinator trace stitches the whole fleet's work.
type Tracer = trace.Tracer

// Tracing returns the process-wide default tracer every GPS layer
// records spans into. Disable recording with
// Tracing().SetEnabled(false) (span starts become nil no-ops), or tag
// this process's spans with Tracing().SetProcess("worker:a").
func Tracing() *Tracer { return trace.Default }

// TraceHandler serves /v1/tracez from the default tracer: a JSON list
// of recent traces, ?trace=ID for one stitched tree, ?format=text for
// a waterfall rendering.
func TraceHandler() http.Handler { return trace.Handler() }

// DebugzOptions names the sections a /v1/debugz bundle snapshots;
// every field is optional.
type DebugzOptions = trace.DebugzOptions

// DebugzHandler serves the one-request bug-report bundle: build info,
// metrics, cluster doc, and recent traces as NDJSON.
func DebugzHandler(opts DebugzOptions) http.Handler { return trace.DebugzHandler(opts) }

// Logger is the structured leveled logger: logfmt-style key=value
// lines (or JSON, via SetLogJSON) tagged with a component and the
// trace id of the epoch in flight. Debug/Info route to the stdout
// writer, Warn/Error to the stderr writer.
type Logger = trace.Logger

// LogField is one fixed key=value field attached to a Logger.
type LogField = trace.Attr

// LogLevel is a log severity, in increasing order of urgency.
type LogLevel = trace.Level

// Log severities: Debug and Info route to the stdout writer, Warn and
// Error to the stderr writer.
const (
	LogLevelDebug = trace.LevelDebug
	LogLevelInfo  = trace.LevelInfo
	LogLevelWarn  = trace.LevelWarn
	LogLevelError = trace.LevelError
)

// LogString builds a string-valued LogField.
func LogString(k, v string) LogField { return trace.String(k, v) }

// LogInt builds an int-valued LogField.
func LogInt(k string, v int) LogField { return trace.Int(k, v) }

// NewLogger builds a logger for one component ("gpsd", "cluster",
// "worker", ...) with optional fixed fields.
func NewLogger(component string, fields ...LogField) *Logger {
	return trace.NewLogger(component, fields...)
}

// SetLogJSON switches every logger between logfmt text (false) and
// one-JSON-object-per-line (true); gpsd's -log-json flag.
func SetLogJSON(on bool) { trace.SetLogJSON(on) }

// SetLogOutput redirects the process-wide log destinations (nil keeps
// one unchanged) and returns the previous pair so tests can restore.
func SetLogOutput(out, errw io.Writer) (prevOut, prevErr io.Writer) {
	return trace.SetLogOutput(out, errw)
}

// NewHTTPServer returns an http.Server with the serving layer's
// slow-client timeout defaults applied — use it for any listener exposed
// beyond localhost.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return serve.NewHTTPServer(addr, h)
}

// Evaluate replays a result's discovery log against a held-out test set
// and returns the final coverage point plus the sampled curve.
func Evaluate(res *Result, testSet *Dataset, spaceSize uint64) (metrics.Point, Curve) {
	gt := metrics.NewGroundTruth(testSet)
	tr := metrics.NewTracker(gt, spaceSize)
	tr.Snapshot()
	var last uint64
	for _, d := range res.Discoveries {
		if d.Probes > last {
			tr.Spend(d.Probes - last)
			last = d.Probes
		}
		tr.Record(d.Key)
	}
	if total := res.TotalScanProbes(); total > last {
		tr.Spend(total - last)
	}
	p := tr.Snapshot()
	return p, tr.Curve()
}

// SnapshotDelta is one epoch transition of the merged inventory — the
// adds, updates, and removes that turn the BaseEpoch inventory into the
// Epoch one, sorted canonically. It is the unit of replication: origins
// compute one per commit, replicas and /v1/watch consumers apply them.
type SnapshotDelta = shard.Delta

// SnapshotDeltaEntry is one added or updated service in a SnapshotDelta.
type SnapshotDeltaEntry = shard.DeltaEntry

// SnapshotDeltaMagicError reports bytes that are not a GPSE delta, or a
// GPSE version this build does not speak.
type SnapshotDeltaMagicError = shard.DeltaMagicError

// SnapshotDeltaTruncatedError reports a GPSE delta cut short mid-stream.
type SnapshotDeltaTruncatedError = shard.DeltaTruncatedError

// ComputeSnapshotDelta diffs two merged inventories (only the canonical
// GPSV serving fields participate) into the delta that advances base to
// next.
func ComputeSnapshotDelta(base, next map[ServiceKey]*KnownService, baseEpoch, epoch int) *SnapshotDelta {
	return shard.ComputeDelta(base, next, baseEpoch, epoch)
}

// ApplySnapshotDelta applies d to inv in place, strictly: adding a held
// service, or updating/removing an unheld one, errors with inv partially
// modified (clone first — CloneShardInventory — to keep a usable view).
func ApplySnapshotDelta(inv map[ServiceKey]*KnownService, d *SnapshotDelta) error {
	return shard.ApplyDelta(inv, d)
}

// CloneShardInventory deep-copies a merged inventory.
func CloneShardInventory(inv map[ServiceKey]*KnownService) map[ServiceKey]*KnownService {
	return shard.CloneInventory(inv)
}

// WriteSnapshotDelta serializes a delta canonically (GPSE): equal deltas
// produce byte-identical output.
func WriteSnapshotDelta(w io.Writer, d *SnapshotDelta) error {
	return shard.WriteDelta(w, d)
}

// ReadSnapshotDelta parses WriteSnapshotDelta output. Errors are typed
// (*SnapshotDeltaMagicError, *SnapshotDeltaTruncatedError).
func ReadSnapshotDelta(r io.Reader) (*SnapshotDelta, error) {
	return shard.ReadDelta(r)
}

// InventoryFeed is the change-feed hub between an epoch-committing
// producer and replication/watch consumers: it retains a bounded history
// of per-epoch deltas plus the current inventory, serves them to feed
// subscribers and GET /v1/watch, and wakes waiters on every commit.
type InventoryFeed = serve.Feed

// NewInventoryFeed returns a feed retaining up to history epoch deltas
// (<= 0 selects the default depth). Feed each committed epoch to it via
// Commit — typically alongside the InventoryPublisher in a commit hook.
func NewInventoryFeed(history int) *InventoryFeed { return serve.NewFeed(history) }

// InventoryFeedSource is the subscription contract ServeInventoryFeed
// serves; *InventoryFeed satisfies it.
type InventoryFeedSource = transport.FeedSource

// InventoryFeedEvent is one received feed frame: a full snapshot (GPSV
// bytes) or an epoch delta (GPSE bytes), tagged with the origin's head
// epoch for lag accounting.
type InventoryFeedEvent = transport.FeedEvent

// InventoryFeedConn is one subscriber's connection to a replication feed.
type InventoryFeedConn = transport.FeedConn

// Feed event kinds.
const (
	InventoryFeedSnapshot = transport.FeedSnapshot
	InventoryFeedDelta    = transport.FeedDelta
)

// ServeInventoryFeed serves a replication feed on lis until the listener
// closes: each subscriber is bootstrapped (full snapshot) or resumed
// (delta chain) according to the epoch it presents, then streamed one
// delta per commit.
func ServeInventoryFeed(lis net.Listener, src InventoryFeedSource, opts *DistributedOptions) error {
	return transport.ServeFeed(lis, src, opts)
}

// DialInventoryFeed subscribes to a replication feed. since is the epoch
// the caller already holds (-1 for none); the server decides snapshot
// versus delta per event, so callers just apply what arrives.
func DialInventoryFeed(addr string, since int, opts *DistributedOptions) (*InventoryFeedConn, error) {
	return transport.DialFeed(addr, since, opts)
}

// ReplicaServer is a stateless read replica: it subscribes to an origin's
// replication feed, applies epoch deltas onto a local inventory, and
// publishes every applied epoch — a Server over its Publisher serves the
// full /v1 API with ETags identical to the origin's, and its Feed
// re-exports the stream to further replicas and /v1/watch.
type ReplicaServer = serve.ReplicaServer

// ReplicaOptions tunes a ReplicaServer.
type ReplicaOptions = serve.ReplicaOptions

// NewReplicaServer prepares a replica of the origin feed at upstream
// (host:port of the origin's -feed listener); Run starts it.
func NewReplicaServer(upstream string, opts *ReplicaOptions) *ReplicaServer {
	return serve.NewReplicaServer(upstream, opts)
}

// WatchClient follows a GET /v1/watch NDJSON stream.
type WatchClient = serve.WatchClient

// WatchEvent is one /v1/watch stream event; ApplyTo folds it into a
// local inventory so a consumer reconstructs the origin's view exactly.
type WatchEvent = serve.WatchEvent

// WatchEntry is one service in a watch event.
type WatchEntry = serve.WatchEntry

// WatchKey names one removed service in a watch event.
type WatchKey = serve.WatchKey

// ErrWatchDone stops WatchClient.Follow cleanly from inside its callback.
var ErrWatchDone = serve.ErrWatchDone
