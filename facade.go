package gps

import (
	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/metrics"
	"gps/internal/netmodel"
	"gps/internal/predict"
	"gps/internal/priors"
	"gps/internal/probmodel"
	"gps/internal/scanner"
)

// This file re-exports the library's supporting types through the root
// package so that downstream users can drive the full pipeline — universe
// generation, dataset snapshots, evaluation metrics — without importing
// internal packages. The aliases are the public API surface; the internal
// packages remain free to reorganize behind them.

// IP is an IPv4 address in host byte order.
type IP = asndb.IP

// Prefix is a CIDR block.
type Prefix = asndb.Prefix

// ASN is an autonomous system number.
type ASN = asndb.ASN

// Universe is the synthetic IPv4 Internet GPS scans; it stands in for the
// live address space.
type Universe = netmodel.Universe

// UniverseParams configures universe generation.
type UniverseParams = netmodel.Params

// ServiceKey identifies one service as an (IP, port) pair.
type ServiceKey = netmodel.Key

// Dataset is a collection of observed services: seed sets, test sets, and
// ground-truth snapshots.
type Dataset = dataset.Dataset

// Record is one observed service.
type Record = dataset.Record

// FeatureKey identifies one of the 25 features of Table 1.
type FeatureKey = features.Key

// Protocol identifies an application-layer protocol.
type Protocol = features.Protocol

// Model is the trained conditional-probability model (Expressions 4-7).
type Model = probmodel.Model

// FamilySet selects which conditional-probability families to use.
type FamilySet = probmodel.FamilySet

// PriorsList is the ordered (port, subnet) scan list of phase 3.
type PriorsList = priors.List

// Prediction is one predicted (IP, port) pair with its probability.
type Prediction = predict.Prediction

// GroundTruth indexes a dataset for evaluation.
type GroundTruth = metrics.GroundTruth

// Tracker accumulates discoveries into coverage curves.
type Tracker = metrics.Tracker

// Curve is a coverage-vs-bandwidth curve.
type Curve = metrics.Curve

// Rate models a scanning link rate for wall-time estimates.
type Rate = scanner.Rate

// GenerateUniverse builds a deterministic synthetic Internet.
func GenerateUniverse(p UniverseParams) *Universe { return netmodel.Generate(p) }

// DefaultUniverseParams returns a mid-sized universe configuration.
func DefaultUniverseParams(seed int64) UniverseParams { return netmodel.DefaultParams(seed) }

// SmallUniverseParams returns a small universe configuration suitable for
// examples and tests.
func SmallUniverseParams(seed int64) UniverseParams { return netmodel.TestParams(seed) }

// SnapshotCensys captures a Censys-style ground truth: 100% scans of the
// top-k most popular ports.
func SnapshotCensys(u *Universe, k int) *Dataset { return dataset.SnapshotCensys(u, k) }

// SnapshotAllPorts captures an LZR-style ground truth: a uniform random
// sample of the address space scanned across all 65K ports.
func SnapshotAllPorts(u *Universe, fraction float64, seed int64) *Dataset {
	return dataset.SnapshotLZR(u, fraction, seed)
}

// NewGroundTruth indexes a dataset for evaluation.
func NewGroundTruth(d *Dataset) *GroundTruth { return metrics.NewGroundTruth(d) }

// NewTracker creates a coverage tracker against a ground truth.
func NewTracker(gt *GroundTruth, spaceSize uint64) *Tracker {
	return metrics.NewTracker(gt, spaceSize)
}

// Evaluate replays a result's discovery log against a held-out test set
// and returns the final coverage point plus the sampled curve.
func Evaluate(res *Result, testSet *Dataset, spaceSize uint64) (metrics.Point, Curve) {
	gt := metrics.NewGroundTruth(testSet)
	tr := metrics.NewTracker(gt, spaceSize)
	tr.Snapshot()
	var last uint64
	for _, d := range res.Discoveries {
		if d.Probes > last {
			tr.Spend(d.Probes - last)
			last = d.Probes
		}
		tr.Record(d.Key)
	}
	if total := res.TotalScanProbes(); total > last {
		tr.Spend(total - last)
	}
	p := tr.Snapshot()
	return p, tr.Curve()
}
