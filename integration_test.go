package gps_test

// Integration tests spanning the full stack: universe generation, the
// wire-level scanner, LZR fingerprinting, the GPS pipeline, persistence,
// and evaluation — the paths a downstream user composes.

import (
	"bytes"
	"testing"

	"gps"
	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/lzr"
	"gps/internal/netmodel"
	"gps/internal/scanner"
	"gps/internal/store"
	"gps/internal/zgrab"
)

// TestIntegrationWireDiscovery drives one discovery end to end at the
// packet level: SYN probe bytes out, SYN-ACK bytes back, LZR protocol
// bytes exchanged, ZGrab features extracted — and the features must match
// what the dataset layer records for the same service.
func TestIntegrationWireDiscovery(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(201))
	wire := scanner.NewWireScanner(scanner.New(u), asndb.MustParseIP("192.0.2.1"), 0xfeed)
	fp := lzr.New(u)
	gr := zgrab.New(u)

	// Pick a fleet host with a banner-bearing service.
	var target *netmodel.Host
	var port uint16
	for _, h := range u.Hosts() {
		if h.Middlebox {
			continue
		}
		for p, svc := range h.Services() {
			if svc.Proto != features.ProtocolUnknown && len(svc.Feats) > 1 {
				target, port = h, p
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		t.Fatal("no suitable host")
	}

	ok, err := wire.Probe(target.IP, port)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("live service did not acknowledge at the wire level")
	}
	res := fp.Fingerprint(target.IP, port)
	if res.Status != lzr.StatusService {
		t.Fatalf("LZR status %v", res.Status)
	}
	svc, _ := target.ServiceAt(port)
	if res.Proto != svc.Proto {
		t.Fatalf("LZR identified %v; service is %v", res.Proto, svc.Proto)
	}
	g, ok := gr.Grab(target.IP, port)
	if !ok {
		t.Fatal("grab failed")
	}
	for k, v := range svc.Feats {
		if g.Feats[k] != v {
			t.Errorf("grab lost feature %v", k)
		}
	}
}

// TestIntegrationPersistedPipeline runs GPS on a dataset that has been
// round-tripped through the binary store, verifying persistence preserves
// everything training needs.
func TestIntegrationPersistedPipeline(t *testing.T) {
	u := gps.GenerateUniverse(gps.SmallUniverseParams(202))
	full := gps.SnapshotAllPorts(u, 0.4, 203)
	seedSet, testSet := full.Split(0.02, 204)
	eligible := seedSet.EligiblePorts(2)
	seedSet = seedSet.FilterPorts(eligible)
	testSet = testSet.FilterPorts(eligible)

	// Round-trip the seed through the binary format.
	var buf bytes.Buffer
	if _, err := store.WriteDatasetBinary(&buf, seedSet); err != nil {
		t.Fatal(err)
	}
	restored, err := store.ReadDatasetBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := gps.Run(u, seedSet, gps.Config{StepBits: 16, Seed: 205})
	if err != nil {
		t.Fatal(err)
	}
	viaStore, err := gps.Run(u, restored, gps.Config{StepBits: 16, Seed: 205})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Discoveries) != len(viaStore.Discoveries) {
		t.Fatalf("persisted seed changed results: %d vs %d discoveries",
			len(direct.Discoveries), len(viaStore.Discoveries))
	}
	p1, _ := gps.Evaluate(direct, testSet, u.SpaceSize())
	p2, _ := gps.Evaluate(viaStore, testSet, u.SpaceSize())
	if p1.FracAll != p2.FracAll {
		t.Errorf("coverage differs after persistence: %f vs %f", p1.FracAll, p2.FracAll)
	}
}

// TestIntegrationChurnDegradesPredictions verifies the §3 motivation: a
// model trained before churn finds fewer services after it.
func TestIntegrationChurnDegradesPredictions(t *testing.T) {
	u := gps.GenerateUniverse(gps.SmallUniverseParams(206))
	full := gps.SnapshotAllPorts(u, 0.4, 207)
	seedSet, testSet := full.Split(0.02, 208)
	eligible := seedSet.EligiblePorts(2)
	seedSet = seedSet.FilterPorts(eligible)
	testSet = testSet.FilterPorts(eligible)

	fresh, err := gps.Run(u, seedSet, gps.Config{StepBits: 16, Seed: 209})
	if err != nil {
		t.Fatal(err)
	}
	churned := netmodel.Churn(u, netmodel.DefaultChurn(210))
	stale, err := gps.Run(churned, seedSet, gps.Config{StepBits: 16, Seed: 209})
	if err != nil {
		t.Fatal(err)
	}
	pFresh, _ := gps.Evaluate(fresh, testSet, u.SpaceSize())
	pStale, _ := gps.Evaluate(stale, testSet, u.SpaceSize())
	if pStale.FracAll >= pFresh.FracAll {
		t.Errorf("stale scan coverage %.3f not below fresh %.3f; churn should cost coverage",
			pStale.FracAll, pFresh.FracAll)
	}
}

// TestIntegrationBlocklistedOperatorIsInvisible verifies the ethics
// mechanism end to end: a network that blocks the GPS fingerprint appears
// in no phase of the pipeline output.
func TestIntegrationBlocklistedOperatorIsInvisible(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(211))
	blocked := u.Prefixes()[0]

	sc := scanner.New(u)
	sc.Blocklist().Add(blocked)
	found := sc.ScanPrefixFast(blocked, 80, 1)
	if len(found) != 0 {
		t.Fatalf("blocklisted prefix yielded %d responders", len(found))
	}
	if sc.Probes() != 0 {
		t.Error("probes were sent into blocklisted space")
	}

	// The same prefix scanned without the blocklist has hosts, proving
	// the blocklist (not emptiness) hid them.
	sc2 := scanner.New(u)
	if len(sc2.ScanPrefixFast(blocked, 80, 1)) == 0 {
		t.Skip("prefix happens to be empty on port 80")
	}
}

// TestIntegrationDatasetConsistency cross-checks the dataset layer against
// the universe: every record corresponds to a live, fingerprintable
// service with identical features.
func TestIntegrationDatasetConsistency(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(212))
	d := dataset.SnapshotLZR(u, 0.3, 213)
	fp := lzr.New(u)
	for i, r := range d.Records {
		if i >= 500 {
			break
		}
		if !u.Responsive(r.IP, r.Port) {
			t.Fatalf("record %v:%d not responsive", r.IP, r.Port)
		}
		res := fp.Fingerprint(r.IP, r.Port)
		if res.Status != lzr.StatusService {
			t.Fatalf("record %v:%d fingerprints as %v", r.IP, r.Port, res.Status)
		}
		if res.Proto != r.Proto {
			t.Fatalf("record %v:%d protocol mismatch: %v vs %v", r.IP, r.Port, res.Proto, r.Proto)
		}
		if asn, _ := u.ASNOf(r.IP); asn != r.ASN {
			t.Fatalf("record %v ASN mismatch", r.IP)
		}
	}
}
