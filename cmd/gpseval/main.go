// Command gpseval regenerates the paper's tables and figures against the
// synthetic universe. Each experiment id corresponds to one table or
// figure of the evaluation (see the experiment index in README.md).
//
// Usage:
//
//	gpseval [-scale small|default] [-seed N] <experiment>...
//	gpseval all
//
// Experiments: table1 table2 table3 table4 fig2a fig2b fig2c fig2d fig3
// fig4 fig5 fig6 tga recsys appb limits churn props continuous shards
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gps/internal/experiments"
	"gps/internal/metrics"
	"gps/internal/store"
)

func main() {
	var (
		scale = flag.String("scale", "small", "experiment scale: small | default")
		seed  = flag.Int64("seed", 99, "universe seed")
		out   = flag.String("o", "", "directory to write figure series as CSV (optional)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gpseval [-scale small|default] [-seed N] <experiment>... | all")
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.SmallScale(*seed)
	case "default":
		sc = experiments.DefaultScale(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	fmt.Printf("building %s-scale universe (seed %d)...\n", sc.Name, *seed)
	s := experiments.NewSetup(sc)
	fmt.Printf("universe: %d hosts, %d addresses; censys snapshot %d services, all-port snapshot %d services\n\n",
		s.Universe.NumHosts(), s.Universe.SpaceSize(), s.Censys.NumServices(), s.LZR.NumServices())

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table1", "table2", "table3", "table4",
			"fig2a", "fig2b", "fig2c", "fig2d", "fig3", "fig4", "fig5", "fig6",
			"tga", "recsys", "appb", "limits", "churn", "props", "continuous", "shards"}
	}
	for _, id := range ids {
		run(s, id, *out)
	}
}

// writeSeries exports one curve as CSV under dir.
func writeSeries(dir, file, name string, c metrics.Curve) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "gpseval:", err)
		return
	}
	path := filepath.Join(dir, file)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpseval:", err)
		return
	}
	defer f.Close()
	if err := store.WriteCurveCSV(f, name, c); err != nil {
		fmt.Fprintln(os.Stderr, "gpseval:", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func run(s *experiments.Setup, id string, out string) {
	space := s.Universe.SpaceSize()
	switch id {
	case "table1":
		fmt.Println(experiments.Table1(s).Render())
	case "table2":
		fmt.Println(experiments.Table2(s).Table(space).Render())
	case "table3":
		fmt.Println(experiments.Table3(s).Table(5).Render())
	case "table4":
		fmt.Println(experiments.Table4(s).Render())
	case "fig2a", "fig2b", "fig2c", "fig2d":
		v := experiments.Fig2Variant{
			Censys:     id == "fig2a" || id == "fig2c",
			Normalized: id == "fig2c" || id == "fig2d",
		}
		r := experiments.Figure2(s, v)
		fmt.Println(r.Figure().Render())
		writeSeries(out, id+"_gps.csv", "gps", r.GPS)
		writeSeries(out, id+"_exhaustive.csv", "exhaustive", r.Exhaustive)
		writeSeries(out, id+"_oracle.csv", "oracle", r.Oracle)
	case "fig3":
		r := experiments.Figure3(s)
		fmt.Println(r.Figure().Render())
		writeSeries(out, "fig3_gps.csv", "gps", r.GPS)
		writeSeries(out, "fig3_exhaustive.csv", "exhaustive", r.Exhaustive)
	case "fig4":
		r := experiments.Figure4(s)
		for _, t := range r.Tables(space) {
			fmt.Println(t.Render())
		}
		fmt.Println(r.FigureC().Render())
		writeSeries(out, "fig4c_gps.csv", "gps", r.GPSCurve)
		writeSeries(out, "fig4c_xgboost.csv", "xgboost", r.XGBCurve)
		writeSeries(out, "fig4c_exhaustive.csv", "exhaustive", r.Exhaustive)
	case "fig5":
		fmt.Println(experiments.Figure5(s, nil).Figure().Render())
	case "fig6":
		for _, f := range experiments.Figure6(s, nil).Figures() {
			fmt.Println(f.Render())
		}
	case "tga":
		fmt.Println(experiments.TGAExperiment(s).Table().Render())
	case "recsys":
		fmt.Println(experiments.RecommenderExperiment(s).Table().Render())
	case "appb":
		fmt.Println(experiments.AppendixB(s).Table().Render())
	case "limits":
		fmt.Println(experiments.Section7Limits(s).Table().Render())
	case "churn":
		fmt.Println(experiments.ChurnStudy(s).Table().Render())
	case "props":
		fmt.Println(experiments.Section4Properties(s).Table().Render())
	case "continuous":
		r := experiments.Continuous(s, experiments.ContinuousEpochs)
		fmt.Println(r.Table().Render())
		writeSeries(out, "continuous.csv", "continuous", r.Curve(space))
	case "shards":
		fmt.Println(experiments.ShardsExperiment(s, nil).Table().Render())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
	}
}
