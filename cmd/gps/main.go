// Command gps runs the full GPS pipeline against a generated synthetic
// Internet and reports coverage, bandwidth, and precision against a
// held-out ground truth — a one-command demonstration of the paper's
// headline result.
//
// Usage:
//
//	gps [-seed N] [-prefixes N] [-density F] [-seed-fraction F]
//	    [-step BITS] [-budget N] [-workers N] [-dataset censys|allports]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gps"
	"gps/internal/netmodel"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "generator seed")
		prefixes = flag.Int("prefixes", 16, "announced /16 blocks in the universe")
		density  = flag.Float64("density", 0.03, "fraction of addresses hosting services")
		seedFrac = flag.Float64("seed-fraction", 0.02, "seed sample size as a fraction of the address space")
		step     = flag.Uint("step", 16, "scanning step size in prefix bits (0 = whole space)")
		budget   = flag.Uint64("budget", 0, "probe budget for the scans (0 = unlimited)")
		workers  = flag.Int("workers", 0, "compute parallelism (0 = all cores)")
		dsName   = flag.String("dataset", "allports", "ground truth style: censys | allports")
	)
	flag.Parse()

	params := gps.DemoUniverseParams(*seed, *prefixes, *density)

	fmt.Printf("generating universe (seed=%d, %d /16s, density %.1f%%)...\n",
		*seed, *prefixes, 100**density)
	start := time.Now()
	u, err := gps.NewUniverse(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gps: invalid universe flags:", err)
		os.Exit(2)
	}
	fmt.Printf("  %d hosts, %d services, %d addresses (%.0fms)\n",
		u.NumHosts(), u.NumServices(), u.SpaceSize(),
		float64(time.Since(start).Microseconds())/1000)

	var full *gps.Dataset
	filterPorts := false
	switch *dsName {
	case "censys":
		full = gps.SnapshotCensys(u, 2000)
	case "allports":
		full = gps.SnapshotAllPorts(u, min(1, *seedFrac*10), *seed^0x77)
		filterPorts = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -dataset %q\n", *dsName)
		os.Exit(2)
	}
	seedSet, testSet := full.Split(*seedFrac, *seed^0x99)
	if filterPorts {
		eligible := seedSet.EligiblePorts(2)
		seedSet = seedSet.FilterPorts(eligible)
		testSet = testSet.FilterPorts(eligible)
	}
	fmt.Printf("seed set: %d services on %d hosts; test set: %d services\n",
		seedSet.NumServices(), len(seedSet.IPs()), testSet.NumServices())

	cfg := gps.Config{
		StepBits: uint8(*step),
		StepZero: *step == 0,
		Workers:  *workers,
		Budget:   *budget,
		Seed:     *seed,
	}
	res, err := gps.Run(u, seedSet, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gps:", err)
		os.Exit(1)
	}

	fmt.Printf("\npipeline:\n")
	fmt.Printf("  model:        %d conditions, %d pairs (%v)\n",
		res.Model.NumConds(), res.Model.NumPairs(), res.Timings.Model.Round(time.Millisecond))
	fmt.Printf("  priors list:  %d (port, subnet) targets (%v)\n",
		len(res.PriorsList.Targets), res.Timings.PriorsList.Round(time.Millisecond))
	fmt.Printf("  priors scan:  %d anchors found, %d middleboxes filtered, %d probes\n",
		len(res.Anchors), res.Middleboxes, res.PriorsProbes)
	fmt.Printf("  predictions:  %d computed (%v), %d probes spent\n",
		len(res.Predictions), res.Timings.Predictions.Round(time.Millisecond), res.PredictProbes)

	point, _ := gps.Evaluate(res, testSet, u.SpaceSize())
	exhaustiveProbes := u.SpaceSize() * netmodel.NumPorts
	if full.Ports != nil {
		exhaustiveProbes = u.SpaceSize() * uint64(len(full.Ports))
	}
	fmt.Printf("\nresults vs held-out ground truth:\n")
	fmt.Printf("  services found:       %d / %d (%.1f%%)\n",
		point.Found, gps.NewGroundTruth(testSet).Total(), 100*point.FracAll)
	fmt.Printf("  normalized coverage:  %.1f%%\n", 100*point.FracNorm)
	fmt.Printf("  precision:            %.4f services/probe\n", point.Precision)
	fmt.Printf("  bandwidth:            %.2f 100%%-scan units (%.0fx less than exhaustive)\n",
		point.ScansUnits, float64(exhaustiveProbes)/float64(max64(res.TotalScanProbes(), 1)))
	rate := gps.Rate{Gbps: 1}
	fmt.Printf("  est. scan wall-time:  %v at 1 Gb/s\n", rate.Duration(res.TotalScanProbes()).Round(time.Second))
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
