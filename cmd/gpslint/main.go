// Command gpslint runs the repo's project-specific static analyzers
// (internal/analyzers) over the module: the mechanical enforcement of
// the determinism, wire-codec, typed-error, span-lifecycle, and
// atomic-coherence invariants the subsystems are built on. It is a CI
// hard gate; run it locally with
//
//	go run ./cmd/gpslint ./...
//
// Exit status is 0 when the tree is clean, 1 on findings, 2 on usage or
// load errors. A finding that is a documented, reviewed exception can
// be silenced in place with
//
//	//gpslint:ignore <analyzer> <reason>
//
// on (or immediately above) the offending line; the reason is
// mandatory, and a pragma that stops matching anything is itself a
// finding, so suppressions cannot go stale.
package main

import (
	"flag"
	"fmt"
	"os"

	"gps/internal/analyzers"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list the analyzers and their contracts, then exit")
		only   = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		module = flag.String("C", "", "module directory to analyze (default: current directory)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gpslint [-list] [-analyzers a,b] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the GPS project analyzers over the packages (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite, err := analyzers.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpslint:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%s\n\n%s\n\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analyzers.NewLoader(*module)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpslint:", err)
		os.Exit(2)
	}
	diags := analyzers.Run(pkgs, suite)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gpslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
