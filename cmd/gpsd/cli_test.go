package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestSubcommandAliasEquivalence pins the CLI migration contract: every
// deprecated mode flag and its subcommand spelling must parse to the
// exact same daemonFlags, and only the deprecated spelling prints a
// migration hint.
func TestSubcommandAliasEquivalence(t *testing.T) {
	cases := []struct {
		name       string
		deprecated []string
		subcommand []string
	}{
		{
			"worker",
			[]string{"-worker", "-listen", "127.0.0.1:0"},
			[]string{"worker", "-listen", "127.0.0.1:0"},
		},
		{
			"coordinator",
			[]string{"-coordinator", "-workers", "a:1,b:2", "-shards", "4"},
			[]string{"coordinator", "-workers", "a:1,b:2", "-shards", "4"},
		},
		{
			"replica",
			[]string{"-replica", "-upstream", "o:9", "-serve", "127.0.0.1:0"},
			[]string{"replica", "-upstream", "o:9", "-serve", "127.0.0.1:0"},
		},
		{
			"watch",
			[]string{"-watch", "http://o/v1/watch", "-epochs", "3"},
			[]string{"watch", "http://o/v1/watch", "-epochs", "3"},
		},
		{
			"watch operand after flags",
			[]string{"-watch", "http://o/v1/watch", "-epochs", "3"},
			[]string{"watch", "-epochs", "3", "http://o/v1/watch"},
		},
		{
			"serve",
			[]string{"-serve-file", "inv.gpsv", "-serve", "127.0.0.1:0"},
			[]string{"serve", "inv.gpsv", "-serve", "127.0.0.1:0"},
		},
		{
			"rebalance",
			[]string{"-rebalance", "split", "-checkpoint", "c.ckpt"},
			[]string{"rebalance", "split", "-checkpoint", "c.ckpt"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var oldErr, newErr bytes.Buffer
			viaFlag, err := parseArgs(tc.deprecated, &oldErr)
			if err != nil {
				t.Fatalf("deprecated form: %v", err)
			}
			viaSub, err := parseArgs(tc.subcommand, &newErr)
			if err != nil {
				t.Fatalf("subcommand form: %v", err)
			}
			if !reflect.DeepEqual(viaFlag, viaSub) {
				t.Errorf("parse mismatch:\n flag form: %+v\n subcommand: %+v", viaFlag, viaSub)
			}
			if !strings.Contains(oldErr.String(), "deprecated") {
				t.Errorf("deprecated form printed no hint: %q", oldErr.String())
			}
			if newErr.String() != "" {
				t.Errorf("subcommand form printed: %q", newErr.String())
			}
		})
	}
}

func TestParseArgsClusterFlags(t *testing.T) {
	var errBuf bytes.Buffer
	f, err := parseArgs([]string{
		"coordinator", "-workers", "a:1", "-cluster", "127.0.0.1:7700",
		"-admin", "-rebalance-factor", "2.5",
	}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.coordinator || f.cluster != "127.0.0.1:7700" || !f.admin || f.rebalFactor != 2.5 {
		t.Errorf("cluster flags: %+v", f)
	}

	f, err = parseArgs([]string{"worker", "-join", "127.0.0.1:7700", "-name", "w4", "-leave"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.workerMode || f.joinAddr != "127.0.0.1:7700" || f.workerName != "w4" || !f.leave {
		t.Errorf("join flags: %+v", f)
	}
}

func TestParseArgsErrors(t *testing.T) {
	var errBuf bytes.Buffer
	if _, err := parseArgs([]string{"frobnicate"}, &errBuf); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := parseArgs([]string{"watch"}, &errBuf); err == nil {
		t.Error("watch without URL accepted")
	}
	if _, err := parseArgs([]string{"rebalance"}, &errBuf); err == nil {
		t.Error("rebalance without mode accepted")
	}
	if _, err := parseArgs([]string{"-no-such-flag"}, &errBuf); err == nil {
		t.Error("unknown flag accepted")
	}
}
