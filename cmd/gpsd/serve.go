package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"gps"
)

// serveLog tags the query-API side channel's lines.
var serveLog = gps.NewLogger("serve")

// inventoryServer bundles the snapshot publisher and the HTTP server gpsd
// runs alongside the daemon when -serve is set. The scan loop feeds it
// through a commit hook; readers never block the loop (the publisher swap
// is a single atomic store) and the loop never blocks readers. All
// methods are nil-safe so the daemon paths need no "is serving enabled"
// branches.
type inventoryServer struct {
	addr string
	pub  *gps.InventoryPublisher
	feed *gps.InventoryFeed // change feed behind /v1/watch and -feed; nil on the -serve-file path
	srv  *http.Server

	feedLis  net.Listener
	feedDone chan error
}

// startInventoryServer listens on addr and serves the query API in the
// background. Queries answer 503 until the first publish. A non-nil feed
// additionally mounts GET /v1/watch over it; committed epochs must then
// flow through publish so the feed and the snapshots stay in lockstep.
// configure, when non-nil, runs against the server before it starts
// accepting — the hook the modes use to attach health sources and the
// cluster control plane.
func startInventoryServer(addr string, feed *gps.InventoryFeed, configure func(*gps.InventoryServer)) (*inventoryServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	pub := &gps.InventoryPublisher{}
	api := gps.NewInventoryServer(pub)
	if feed != nil {
		api.EnableWatch(feed)
	}
	if configure != nil {
		configure(api)
	}
	is := &inventoryServer{
		addr: lis.Addr().String(),
		pub:  pub,
		feed: feed,
		// NewHTTPServer, not a bare http.Server: the read path is public,
		// and without header/read timeouts a slow-loris client pins
		// connections forever.
		srv: gps.NewHTTPServer("", api.Handler()),
	}
	go func() {
		if err := is.srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveLog.Errorf("%v", err)
		}
	}()
	serveLog.Infof("serving inventory API on http://%s/v1/", is.addr)
	return is, nil
}

// publish indexes a merged inventory and swaps it in as the served
// snapshot; with a feed attached the epoch also commits to the change
// feed, which diffs it into the delta replicas and watchers stream.
func (is *inventoryServer) publish(epoch int, inv map[gps.ServiceKey]*gps.KnownService) {
	if is == nil {
		return
	}
	is.pub.Publish(gps.NewInventorySnapshot(epoch, inv))
	if is.feed != nil {
		is.feed.Commit(epoch, inv)
	}
}

// exportFeed serves the replication feed on addr: the -feed listener
// replicas dial.
func (is *inventoryServer) exportFeed(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("feed: %w", err)
	}
	is.feedLis = lis
	is.feedDone = make(chan error, 1)
	go func() { is.feedDone <- gps.ServeInventoryFeed(lis, is.feed, nil) }()
	serveLog.Infof("serving replication feed on %s", lis.Addr())
	return nil
}

// hook returns the epoch-commit hook feeding the publisher (nil when not
// serving, which unregisters cleanly).
func (is *inventoryServer) hook() gps.ShardCommitHook {
	if is == nil {
		return nil
	}
	return is.publish
}

// shutdown drains in-flight queries and closes the listener; part of the
// daemon's clean-exit path.
func (is *inventoryServer) shutdown() {
	if is == nil {
		return
	}
	// Feed first: closing it turns every replica and watch session into a
	// clean end-of-stream instead of a cut connection.
	if is.feed != nil {
		is.feed.Close()
	}
	if is.feedLis != nil {
		is.feedLis.Close()
		if err := <-is.feedDone; err != nil {
			serveLog.Errorf("feed: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if is.srv.Shutdown(ctx) != nil {
		is.srv.Close()
	}
}

// servableCoordinator is the slice of both coordinator types (in-process
// and distributed) the serving layer hangs off.
type servableCoordinator interface {
	SetCommitHook(gps.ShardCommitHook)
	Inventory() (map[gps.ServiceKey]*gps.KnownService, int)
	EpochNumber() int
}

// startServing mounts the query API next to a coordinator: the commit
// hook publishes each epoch, and the seeded (or resumed) inventory is
// published immediately so queries answer from the current state instead
// of 503ing until the first commit. A serving coordinator is always a
// change-feed origin (/v1/watch); -feed additionally exports the feed to
// replicas over the shard transport. configure customizes the server
// before it accepts (health source, cluster control plane).
func startServing(f daemonFlags, coord servableCoordinator, configure func(*gps.InventoryServer)) (*inventoryServer, error) {
	api, err := startInventoryServer(f.serve, gps.NewInventoryFeed(f.feedHistory), configure)
	if err != nil {
		return nil, err
	}
	coord.SetCommitHook(api.hook())
	inv, _ := coord.Inventory()
	api.publish(coord.EpochNumber(), inv)
	if f.feedAddr != "" {
		if err := api.exportFeed(f.feedAddr); err != nil {
			api.shutdown()
			return nil, err
		}
	}
	return api, nil
}

// serveUntilSignal keeps a daemon whose epochs are done answering
// queries until SIGINT/SIGTERM; a no-op when not serving or when a
// signal already ended the epoch loop.
func serveUntilSignal(api *inventoryServer, sig chan os.Signal, stopped bool) {
	if api == nil || stopped {
		return
	}
	serveLog.Infof("epochs done; serving on %s until SIGINT/SIGTERM", api.addr)
	s := <-sig
	serveLog.Infof("%v — flushing and stopping cleanly", s)
}

// runServeFile is the standalone serving mode: load a GPSV inventory file
// (gpsd -inventory output) and answer queries from it until SIGINT or
// SIGTERM — the read path with no scanner attached, for serving yesterday's
// inventory or somebody else's.
func runServeFile(f daemonFlags) int {
	gps.Tracing().SetProcess("serve")
	file, err := os.Open(f.serveFile)
	if err != nil {
		serveLog.Errorf("%v", err)
		return 1
	}
	inv, err := gps.ReadShardInventory(file)
	file.Close()
	if err != nil {
		serveLog.Errorf("%v", err)
		return 1
	}
	// The file records observation epochs, not the commit epoch; the
	// newest observation is the inventory's notion of "now", and it is
	// what Fresh/Stale aggregates key on.
	epoch := 0
	for _, e := range inv {
		if e.LastSeen > epoch {
			epoch = e.LastSeen
		}
	}
	api, err := startInventoryServer(f.serve, nil, func(api *gps.InventoryServer) {
		api.SetHealthSource(gps.HealthFunc(func() gps.HealthInfo {
			return gps.HealthInfo{Role: "file"}
		}))
	})
	if err != nil {
		serveLog.Errorf("%v", err)
		return 1
	}
	api.publish(epoch, inv)
	serveLog.Infof("serving %d services (epoch %d) from %s", len(inv), epoch, f.serveFile)
	s := <-notifySignals()
	serveLog.Infof("%v — stopping cleanly", s)
	api.shutdown()
	return 0
}
