package main

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gps"
)

// runCoordinator drives a distributed run: dial the worker fleet, seed or
// resume, then stream epochs. The epoch computation happens entirely on
// the workers (each owns a deterministic replica of the universe); the
// coordinator folds the streamed per-shard states into the same merged
// view the in-process daemon maintains, so checkpoints, inventories, and
// log lines are interchangeable between the two modes.
func runCoordinator(f daemonFlags) int {
	gps.Tracing().SetProcess("coordinator")
	addrs := strings.Split(f.workers, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	world := f.world()
	clusterLog := gps.NewLogger("cluster")
	opts := &gps.DistributedOptions{
		Timeout:         f.rpcTimeout,
		RebalanceFactor: f.rebalFactor,
		Logf: func(format string, args ...any) {
			clusterLog.Infof(format, args...)
		},
	}
	coord, err := gps.DialShardWorkers(addrs, f.shardConfig(), world.header(), opts)
	if err != nil {
		mainLog.Errorf("%v", err)
		return 1
	}
	defer coord.Close()
	mainLog.Infof("coordinating %d shards over %d workers (%s)",
		f.shards, len(addrs), f.workers)
	setProcessHealth(func(i *gps.HealthInfo) {
		i.Role = "coordinator"
		i.ShardsOwned = f.shards
	})

	// The join listener makes membership elastic: workers started later
	// with -join register here and receive live shard migrations at the
	// next epoch boundary.
	if f.cluster != "" {
		lis, err := net.Listen("tcp", f.cluster)
		if err != nil {
			mainLog.Errorf("cluster: %v", err)
			return 1
		}
		coord.AcceptJoins(lis)
		mainLog.Infof("accepting joining workers on %s", lis.Addr())
	}

	// Resume from a checkpoint when one exists; otherwise generate the
	// universe locally just long enough to collect the broadcast seed.
	resumed := false
	if f.checkpoint != "" {
		states, topo, err := loadCheckpoint(f.checkpoint, world)
		switch {
		case errors.Is(err, errNoCheckpoint):
			// Fresh start below.
		case err != nil:
			mainLog.Errorf("%v", err)
			return 1
		default:
			known := 0
			for _, st := range states {
				known += len(st.Known)
			}
			mainLog.Infof("resuming from %s at epoch %d (%d known services across %d shards)",
				f.checkpoint, states[0].Epoch, known, len(states))
			if topo.Workers > 0 && topo.Workers != len(addrs) {
				mainLog.Infof("checkpoint was written by a %d-worker fleet; re-homing shards over %d workers",
					topo.Workers, len(addrs))
			}
			if err := coord.Resume(states); err != nil {
				mainLog.Errorf("%v", err)
				return 1
			}
			resumed = true
		}
	}
	if !resumed {
		mainLog.Infof("generating universe (seed=%d, %d /16s, density %.1f%%) for seeding",
			f.seed, f.prefixes, 100*f.density)
		u, err := gps.NewUniverse(gps.DemoUniverseParams(f.seed, f.prefixes, f.density))
		if err != nil {
			mainLog.Errorf("invalid universe flags: %v", err)
			return 2
		}
		// The coordinator holds the full seeding universe, so its world
		// gauges describe the whole world — the total the per-worker
		// partition gauges must sum to (the e2e script asserts this).
		setWorldGauges(u.NumHosts(), f.shards, f.shards)
		if err := coord.Seed(collectSeedSet(u, f)); err != nil {
			mainLog.Errorf("%v", err)
			return 1
		}
	}
	warnEmptyShards(coord.EmptyShards(), resumed)

	var api *inventoryServer
	if f.serve != "" {
		// The serving coordinator is also the cluster control plane:
		// GET /v1/cluster reads the membership doc straight off the
		// coordinator, and the drain endpoint (behind -admin) feeds
		// RequestDrain. The health doc carries the coordinator role.
		configure := func(api *gps.InventoryServer) {
			api.EnableCluster(coord, f.admin)
			api.SetHealthSource(gps.HealthFunc(func() gps.HealthInfo {
				return gps.HealthInfo{Role: "coordinator", ShardsOwned: f.shards}
			}))
		}
		if api, err = startServing(f, coord, configure); err != nil {
			mainLog.Errorf("%v", err)
			return 1
		}
	}

	sig := notifySignals()
	reported := 0
	stopped := false
	for epoch := coord.EpochNumber() + 1; !stopped && (f.epochs == 0 || epoch <= f.epochs); epoch++ {
		select {
		case s := <-sig:
			mainLog.Infof("%v — flushing and stopping cleanly", s)
			stopped = true
			continue
		default:
		}

		start := time.Now()
		stats, err := coord.Epoch()
		for _, we := range coord.Failures()[reported:] {
			mainLog.Warnf("%v — shard re-queued", we)
			reported++
		}
		if err != nil {
			mainLog.Errorf("%v", err)
			return 1
		}
		elapsed := time.Since(start)
		logEpoch(stats, elapsed)

		var ckpt time.Duration
		if f.checkpoint != "" {
			ckptStart := time.Now()
			topo := topology{Workers: len(addrs), Assign: coord.Assignment()}
			if err := saveCheckpoint(f.checkpoint, world, topo, coord.States()); err != nil {
				mainLog.Errorf("checkpoint: %v", err)
				return 1
			}
			ckpt = time.Since(ckptStart)
			checkpointSeconds.Observe(ckpt.Seconds())
		}
		if f.shardCkpts != "" {
			if err := saveShardCheckpoints(f.shardCkpts, coord.States()); err != nil {
				mainLog.Errorf("shard checkpoints: %v", err)
				return 1
			}
		}
		logEpochJSON(stats, elapsed, ckpt)
		if f.interval > 0 && !stopped {
			select {
			case s := <-sig:
				mainLog.Infof("%v — flushing and stopping cleanly", s)
				stopped = true
			case <-time.After(f.interval):
			}
		}
	}
	serveUntilSignal(api, sig, stopped)
	// Close the worker fleet before the final flush: the coordinator
	// holds every shard's state locally, so the checkpoint and inventory
	// need nothing further from the workers, and the shutdown frames land
	// while they are still draining. (The deferred Close stays as the
	// error-path fallback; a second Close is harmless.)
	suffix := fmt.Sprintf(" across %d/%d workers", coord.AliveWorkers(), len(addrs))
	coord.Close()
	return finishDaemon(f, world, topology{Workers: len(addrs), Assign: coord.Assignment()},
		coord.States(), coord.EpochNumber(), api, suffix, coord.Inventory)
}

// saveShardCheckpoints writes each shard's state as its own continuous
// checkpoint (shard-000.ckpt, ...): the per-shard diagnostics CI uploads
// when the distributed gate fails, and the raw material for hand
// re-balancing. Each file lands via the same temp+fsync+rename dance as
// the combined checkpoint (a crash mid-write must not leave a truncated
// file under the final name), and shard files beyond the current layout
// — leftovers of a larger pre-join layout — are removed so the directory
// always describes exactly the current shards.
func saveShardCheckpoints(dir string, states []*gps.ContinuousState) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, st := range states {
		path := filepath.Join(dir, fmt.Sprintf("shard-%03d.ckpt", i))
		tmpf, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
		if err != nil {
			return err
		}
		err = gps.WriteContinuousCheckpoint(tmpf, st)
		if err == nil {
			err = tmpf.Sync()
		}
		if cerr := tmpf.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmpf.Name(), path)
		}
		if err != nil {
			os.Remove(tmpf.Name())
			return err
		}
	}
	for i := len(states); ; i++ {
		stale := filepath.Join(dir, fmt.Sprintf("shard-%03d.ckpt", i))
		if err := os.Remove(stale); err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
	}
}

// runRebalance transforms a checkpoint's shard layout in place: split
// doubles the shard count (each shard's inventory partitions between its
// two successors by re-hashing), join halves it. No scanning happens; a
// subsequent run must pass -shards matching the new count. Worker
// assignments survive: split keeps both halves on the parent's worker,
// join keeps the lower half's.
func runRebalance(f daemonFlags) int {
	if f.checkpoint == "" {
		mainLog.Errorf("-rebalance needs -checkpoint FILE")
		return 2
	}
	world, topo, states, err := readCheckpointFile(f.checkpoint)
	if err != nil {
		mainLog.Errorf("%v", err)
		return 1
	}
	switch f.rebalance {
	case "split":
		if states, err = gps.SplitShardStates(states); err != nil {
			mainLog.Errorf("%v", err)
			return 1
		}
		// Both successors start where the parent lived.
		topo.Assign = append(topo.Assign, topo.Assign...)
		world.Shards *= 2
	case "join":
		if states, err = gps.JoinShardStates(states); err != nil {
			mainLog.Errorf("%v", err)
			return 1
		}
		topo.Assign = topo.Assign[:len(topo.Assign)/2]
		world.Shards /= 2
	default:
		mainLog.Errorf("-rebalance %q: want 'split' or 'join'", f.rebalance)
		return 2
	}
	if err := saveCheckpoint(f.checkpoint, world, topo, states); err != nil {
		mainLog.Errorf("%v", err)
		return 1
	}
	mainLog.Infof("re-balanced %s to %d shards at epoch %d", f.checkpoint, world.Shards, states[0].Epoch)
	return 0
}
