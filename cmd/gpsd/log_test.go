package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gps"
)

// TestLogRouting pins the structured logger's stream contract: epoch
// progress and other info-level lines go to the stdout writer, warnings
// (empty shards, the deprecated-flag hint) to the stderr writer, and
// every line carries the component and level fields.
func TestLogRouting(t *testing.T) {
	var out, errw bytes.Buffer
	prevOut, prevErr := gps.SetLogOutput(&out, &errw)
	defer gps.SetLogOutput(prevOut, prevErr)

	logEpoch(gps.EpochStats{Epoch: 3, KnownSize: 1200, Verified: 1100}, 42*time.Millisecond)
	if errw.Len() != 0 {
		t.Errorf("epoch progress leaked to stderr: %q", errw.String())
	}
	line := out.String()
	for _, want := range []string{"level=info", "component=gpsd", "epoch=3", "known=1200", `msg="epoch complete"`} {
		if !strings.Contains(line, want) {
			t.Errorf("epoch line missing %q: %q", want, line)
		}
	}

	out.Reset()
	warnEmptyShards([]int{2, 5}, false)
	if out.Len() != 0 {
		t.Errorf("empty-shard warning leaked to stdout: %q", out.String())
	}
	if w := errw.String(); !strings.Contains(w, "level=warn") || !strings.Contains(w, "[2 5]") {
		t.Errorf("empty-shard warning = %q; want level=warn naming shards [2 5]", w)
	}
}

// TestDeprecatedHintIsStructuredWarning: the migration hint rides the
// structured logger at warn level, into the stderr writer parseArgs was
// given — never the process-wide streams.
func TestDeprecatedHintIsStructuredWarning(t *testing.T) {
	var out, errw bytes.Buffer
	prevOut, prevErr := gps.SetLogOutput(&out, &errw)
	defer gps.SetLogOutput(prevOut, prevErr)

	var hint bytes.Buffer
	if _, err := parseArgs([]string{"-worker", "-listen", "127.0.0.1:0"}, &hint); err != nil {
		t.Fatal(err)
	}
	h := hint.String()
	for _, want := range []string{"level=warn", "component=gpsd", "deprecated"} {
		if !strings.Contains(h, want) {
			t.Errorf("hint missing %q: %q", want, h)
		}
	}
	if out.Len() != 0 || errw.Len() != 0 {
		t.Errorf("hint leaked to process-wide writers: out=%q err=%q", out.String(), errw.String())
	}
}

// TestLogJSONFlag: -log-json switches the stream to one JSON object per
// line, applied during parseArgs so even the first line obeys it.
func TestLogJSONFlag(t *testing.T) {
	defer gps.SetLogJSON(false)
	var out, errw bytes.Buffer
	prevOut, prevErr := gps.SetLogOutput(&out, &errw)
	defer gps.SetLogOutput(prevOut, prevErr)

	var hint bytes.Buffer
	if _, err := parseArgs([]string{"-log-json", "-worker", "-listen", "127.0.0.1:0"}, &hint); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(hint.Bytes(), &obj); err != nil {
		t.Fatalf("hint is not JSON under -log-json: %q (%v)", hint.String(), err)
	}
	if obj["level"] != "warn" || obj["component"] != "gpsd" {
		t.Errorf("hint JSON fields = %v", obj)
	}

	logEpoch(gps.EpochStats{Epoch: 7}, time.Millisecond)
	if err := json.Unmarshal(out.Bytes(), &obj); err != nil {
		t.Fatalf("epoch line is not JSON under -log-json: %q (%v)", out.String(), err)
	}
	if obj["epoch"] != "7" && obj["epoch"] != float64(7) {
		t.Errorf("epoch JSON fields = %v", obj)
	}
}
