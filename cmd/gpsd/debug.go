package main

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"

	"gps"
)

// processHealth is the role-specific readiness the debug server's
// /v1/healthz reports. The mode runners fill it in after dispatch
// (setProcessHealth), so a worker with no query API still answers a
// structured readiness probe.
var processHealth struct {
	mu   sync.Mutex
	info gps.HealthInfo
}

// setProcessHealth mutates the debug server's readiness doc in place;
// safe from any goroutine.
func setProcessHealth(mutate func(*gps.HealthInfo)) {
	processHealth.mu.Lock()
	defer processHealth.mu.Unlock()
	mutate(&processHealth.info)
}

// workerShardsOwned is the transport session's owned-shard gauge,
// resolved once: processHealthInfo runs per /v1/healthz probe, which
// must not re-enter the telemetry registry.
var workerShardsOwned = gps.Telemetry().Gauge("gps_worker_shards_owned",
	"shards currently assigned to this worker's session")

// processHealthInfo snapshots the readiness doc for a probe.
func processHealthInfo() gps.HealthInfo {
	processHealth.mu.Lock()
	defer processHealth.mu.Unlock()
	info := processHealth.info
	// The worker's owned-shard count lives in a gauge the transport
	// session maintains; read it live so migrations show up immediately.
	if info.Role == "worker" {
		info.ShardsOwned = int(workerShardsOwned.Value())
	}
	return info
}

// debugLog tags the debug side channel's lines.
var debugLog = gps.NewLogger("debug")

// startDebugServer exposes the operational side channel every gpsd mode
// shares: /v1/metricz (Prometheus text), /v1/healthz (role-specific
// readiness), /v1/tracez (the flight recorder), /v1/debugz (the bug-
// report bundle), and /debug/pprof. It binds before mode dispatch so a
// worker, coordinator, or single-process daemon all answer the same
// scrape. The server is fire-and-forget — debugging must never take the
// daemon down, so a bind failure warns and the process continues.
func startDebugServer(addr string) {
	if addr == "" {
		return
	}
	initProcessMetrics()
	mux := http.NewServeMux()
	mux.Handle("/v1/metricz", gps.Telemetry().Handler())
	mux.Handle("/v1/healthz", gps.HealthHandler(gps.HealthFunc(processHealthInfo)))
	mux.Handle("/v1/tracez", gps.TraceHandler())
	mux.Handle("/v1/debugz", gps.DebugzHandler(gps.DebugzOptions{
		Metrics: func(w io.Writer) error {
			_, err := gps.Telemetry().WriteTo(w)
			return err
		},
		HealthState: func() (string, bool) {
			return processHealthInfo().Role, true
		},
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		debugLog.Warnf("debug server: %v", err)
		return
	}
	srv := gps.NewHTTPServer("", mux)
	// CPU profiles stream for ?seconds=N; the serving layer's write bound
	// would truncate them.
	srv.WriteTimeout = 0
	go func() {
		if err := srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			debugLog.Errorf("debug server: %v", err)
		}
	}()
	debugLog.Infof("debug server on http://%s (/v1/metricz, /v1/tracez, /debug/pprof)", lis.Addr())
}

// initProcessMetrics adds the process-level gauges sampled at scrape
// time. Heap via GaugeFunc replaces the MemStats figure the worker used
// to print in its world-built log line.
func initProcessMetrics() {
	gps.Telemetry().GaugeFunc("gps_process_heap_bytes",
		"live heap allocation (runtime.MemStats.HeapAlloc)",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	gps.Telemetry().GaugeFunc("gps_process_goroutines",
		"current goroutine count",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
