package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"gps"
)

// demoWorld is the worker-side replica of gpsd's simulated universe. The
// coordinator broadcasts its 36-byte world header as the transport's
// world spec; every worker rebuilds the identical deterministic universe
// from it and steps churn forward epoch by epoch with the same seed+epoch
// recipe the in-process daemon uses — which is what makes a distributed
// run byte-identical to a single-process one.
type demoWorld struct {
	id    worldID
	epoch int
	u     *gps.Universe
}

// newDemoWorld is the worker's gps.ShardWorldFactory.
func newDemoWorld(spec []byte) (gps.ShardWorld, error) {
	id, err := parseWorldHeader(spec)
	if err != nil {
		return nil, fmt.Errorf("world spec: %v", err)
	}
	fmt.Printf("gpsd: worker building universe (seed=%d, %d /16s, density %.1f%%)\n",
		id.Seed, id.Prefixes, 100*id.Density)
	u := gps.GenerateUniverse(gps.DemoUniverseParams(id.Seed, id.Prefixes, id.Density))
	return &demoWorld{id: id, u: u}, nil
}

// UniverseAt returns the universe as of the given epoch. Epochs normally
// only move forward; a re-queued shard may rewind, in which case the base
// universe is regenerated and churn replayed (both deterministic).
func (w *demoWorld) UniverseAt(e int) (*gps.Universe, error) {
	if e < w.epoch {
		w.u = gps.GenerateUniverse(gps.DemoUniverseParams(w.id.Seed, w.id.Prefixes, w.id.Density))
		w.epoch = 0
	}
	for w.epoch < e {
		w.epoch++
		w.u = gps.ApplyChurn(w.u, gps.DefaultChurn(w.id.Seed+int64(w.epoch)))
	}
	return w.u, nil
}

// runWorker serves shard epochs until SIGINT/SIGTERM. The world comes
// from the coordinator's Init, so a worker needs no universe flags — just
// an address.
func runWorker(f daemonFlags) int {
	lis, err := net.Listen("tcp", f.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpsd: worker:", err)
		return 1
	}
	fmt.Printf("gpsd: worker listening on %s\n", lis.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("gpsd: worker %v — stopping\n", s)
		lis.Close()
	}()

	logf := func(format string, args ...any) {
		fmt.Printf("gpsd: worker "+format+"\n", args...)
	}
	if err := gps.ServeShardWorker(lis, newDemoWorld, &gps.ShardWorkerOptions{Logf: logf}); err != nil {
		fmt.Fprintln(os.Stderr, "gpsd: worker:", err)
		return 1
	}
	return 0
}
