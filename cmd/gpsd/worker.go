package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"gps"
)

// workerLog tags every worker-side line; the transport session's Logf
// feeds through it too, so migrations and drains land in the same
// structured stream.
var workerLog = gps.NewLogger("worker")

// demoWorld is the worker-side replica of gpsd's simulated universe. The
// coordinator broadcasts its 36-byte world header wrapped in the
// transport's partition envelope (the total shard count plus this
// worker's owned shards); the worker rebuilds only the owned partition
// of the deterministic universe — ~owned/N of the full-world memory —
// and steps churn forward epoch by epoch with the same seed+epoch recipe
// the in-process daemon uses. Partitioned generation and churn are
// subset-stable (every host is a pure function of seed and identity), so
// the distributed run stays byte-identical to a single-process one.
type demoWorld struct {
	id    worldID
	part  *gps.UniversePartition
	epoch int
	base  *gps.Universe // epoch-0 universe, cached so rewinds replay churn only
	u     *gps.Universe
	gens  int // universe generations performed, observed by tests
}

// parseWorkerSpec unwraps the partition envelope and the world header,
// cross-checking the two shard counts.
func parseWorkerSpec(spec []byte) (worldID, *gps.UniversePartition, error) {
	base, shards, owned, err := gps.SplitShardWorldSpec(spec)
	if err != nil {
		return worldID{}, nil, fmt.Errorf("world spec: %v", err)
	}
	id, err := parseWorldHeader(base)
	if err != nil {
		return worldID{}, nil, fmt.Errorf("world spec: %v", err)
	}
	if shards != id.Shards {
		return worldID{}, nil, fmt.Errorf("world spec: envelope says %d shards, header says %d", shards, id.Shards)
	}
	return id, &gps.UniversePartition{Count: shards, Owned: owned}, nil
}

// newDemoWorld is the worker's gps.ShardWorldFactory. Universe
// parameters arrive from the network, so they are validated
// (gps.NewUniverse), never trusted: a corrupt or crafted spec must
// surface as a `world spec rejected` RPC error, not crash the worker.
func newDemoWorld(spec []byte) (gps.ShardWorld, error) {
	id, part, err := parseWorkerSpec(spec)
	if err != nil {
		return nil, err
	}
	w := &demoWorld{id: id, part: part}
	base, err := w.generate(part)
	if err != nil {
		return nil, err
	}
	w.base, w.u = base, base
	w.logBuilt("built")
	return w, nil
}

// generate materializes one partition of the world at epoch 0.
func (w *demoWorld) generate(part *gps.UniversePartition) (*gps.Universe, error) {
	w.gens++
	p := gps.DemoUniverseParams(w.id.Seed, w.id.Prefixes, w.id.Density)
	p.Partition = part
	return gps.NewUniverse(p)
}

// logBuilt reports the world the worker now holds and publishes the
// world gauges. Heap moved to the gps_process_heap_bytes gauge on
// -debug-addr (sampled at scrape time, not at build time);
// scripts/distributed_e2e.sh now asserts the per-worker partition sizes
// against the coordinator's total via /v1/metricz instead of grepping
// this line.
func (w *demoWorld) logBuilt(how string) {
	setWorldGauges(w.u.NumHosts(), len(w.part.Owned), w.part.Count)
	workerLog.Infof("%s universe (seed=%d, %d /16s, density %.1f%%): owns %d/%d shards, %d hosts",
		how, w.id.Seed, w.id.Prefixes, 100*w.id.Density,
		len(w.part.Owned), w.part.Count, w.u.NumHosts())
}

// World gauges, resolved once at startup: setWorldGauges runs on every
// world (re)build — including re-queue extensions and migrations — and
// must not re-enter the telemetry registry each time.
var (
	worldHostsGauge = gps.Telemetry().Gauge("gps_world_hosts",
		"hosts materialized in this process's universe partition")
	worldOwnedShardsGauge = gps.Telemetry().Gauge("gps_world_owned_shards",
		"shards this process's universe partition covers")
	worldTotalShardsGauge = gps.Telemetry().Gauge("gps_world_total_shards",
		"total shards in the world's layout")
)

// setWorldGauges publishes the world this process materialized: how many
// hosts it holds and which share of the shard layout that covers. The
// single-process daemon and the seeding coordinator report the full
// world (owned == total).
func setWorldGauges(hosts, ownedShards, totalShards int) {
	worldHostsGauge.Set(float64(hosts))
	worldOwnedShardsGauge.Set(float64(ownedShards))
	worldTotalShardsGauge.Set(float64(totalShards))
}

// UniverseAt returns the universe as of the given epoch. Epochs normally
// only move forward; a re-queued shard may rewind, in which case churn
// replays from the cached epoch-0 base — the generator never runs again
// for a world the worker already built.
func (w *demoWorld) UniverseAt(e int) (*gps.Universe, error) {
	if e < w.epoch {
		w.u, w.epoch = w.base, 0
	}
	for w.epoch < e {
		w.epoch++
		w.u = gps.ApplyChurn(w.u, gps.DefaultChurn(w.id.Seed+int64(w.epoch)))
	}
	return w.u, nil
}

// Extend adopts a revised spec in place: same world, a grown owned-shard
// set — the shape a re-queued shard from a dead peer arrives in. Only
// the newly owned shards are generated (at epoch 0) and churn-replayed
// to the current epoch, then merged into the held universes; the
// partition the worker already holds is never regenerated. Any other
// revision (different world, shrunk ownership) returns an error and the
// transport falls back to a fresh factory build.
func (w *demoWorld) Extend(spec []byte) error {
	id, part, err := parseWorkerSpec(spec)
	if err != nil {
		return err
	}
	if id != w.id || part.Count != w.part.Count {
		return fmt.Errorf("world spec describes a different world (%+v, %d shards); holding (%+v, %d shards)",
			id, part.Count, w.id, w.part.Count)
	}
	var delta []int
	for _, s := range part.Owned {
		if !w.part.Contains(s) {
			delta = append(delta, s)
		}
	}
	if len(part.Owned) != len(w.part.Owned)+len(delta) {
		return fmt.Errorf("world spec shrinks the owned-shard set %v to %v", w.part.Owned, part.Owned)
	}
	if len(delta) == 0 {
		w.part = part
		return nil
	}
	dbase, err := w.generate(&gps.UniversePartition{Count: part.Count, Owned: delta})
	if err != nil {
		return err
	}
	base, err := gps.MergeUniverses(w.base, dbase)
	if err != nil {
		return err
	}
	// Churn is partition-stable, so replaying the delta partition alone
	// lands on exactly the hosts the full replay would.
	du := dbase
	for e := 1; e <= w.epoch; e++ {
		du = gps.ApplyChurn(du, gps.DefaultChurn(w.id.Seed+int64(e)))
	}
	u := base
	if w.epoch > 0 {
		if u, err = gps.MergeUniverses(w.u, du); err != nil {
			return err
		}
	}
	w.base, w.u, w.part = base, u, part
	w.logBuilt(fmt.Sprintf("extended (+%d shards)", len(delta)))
	return nil
}

// runWorker serves shard epochs until SIGINT/SIGTERM. The world comes
// from the coordinator's Init (or a migration offer), so a worker needs
// no universe flags — just an address. With -join ADDR the worker dials
// a running coordinator's -cluster listener instead of listening itself;
// with -leave a signal drains its shards back into the fleet before
// exit rather than dropping them.
func runWorker(f daemonFlags) int {
	gps.Tracing().SetProcess("worker")
	setProcessHealth(func(i *gps.HealthInfo) { i.Role = "worker" })
	if f.joinAddr != "" {
		return runJoiningWorker(f)
	}
	lis, err := net.Listen("tcp", f.listen)
	if err != nil {
		workerLog.Errorf("%v", err)
		return 1
	}
	workerLog.Infof("listening on %s", lis.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		workerLog.Infof("%v — stopping", s)
		lis.Close()
	}()

	logf := func(format string, args ...any) {
		workerLog.Infof(format, args...)
	}
	if err := gps.ServeShardWorker(lis, newDemoWorld, &gps.ShardWorkerOptions{Logf: logf}); err != nil {
		workerLog.Errorf("%v", err)
		return 1
	}
	return 0
}

// runJoiningWorker is the elastic-membership path: register with a
// running coordinator, adopt whatever shards it migrates over, and
// serve epochs until the coordinator shuts the session down. With
// -leave, the first SIGINT/SIGTERM raises the draining flag — the
// coordinator migrates this worker's shards away at the next epoch
// boundary and then releases the session, so the exit is lossless; a
// second signal forces an immediate exit. Without -leave a signal just
// exits (the coordinator re-queues the shards onto survivors).
func runJoiningWorker(f daemonFlags) int {
	if f.workerName != "" {
		gps.Tracing().SetProcess("worker:" + f.workerName)
	}
	var draining atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		if f.leave {
			workerLog.Infof("%v — draining: handing shards back before exit", s)
			draining.Store(true)
			setProcessHealth(func(i *gps.HealthInfo) { i.Draining = true })
			s = <-sig
		}
		workerLog.Warnf("%v — exiting now", s)
		os.Exit(1)
	}()

	name := f.workerName
	if name == "" {
		workerLog.Infof("joining %s", f.joinAddr)
	} else {
		workerLog.Infof("%q joining %s", name, f.joinAddr)
	}
	opts := &gps.ShardWorkerOptions{
		Draining: &draining,
		Logf: func(format string, args ...any) {
			workerLog.Infof(format, args...)
		},
	}
	if err := gps.JoinShardWorker(f.joinAddr, name, newDemoWorld, opts); err != nil {
		workerLog.Errorf("%v", err)
		return 1
	}
	workerLog.Infof("session ended cleanly")
	return 0
}
