package main

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"gps"
)

// testWorkerSpec builds the enveloped spec a coordinator would deliver
// to a worker owning the given shards of testWorldID(n)'s world.
func testWorkerSpec(t *testing.T, shards int, owned ...int) []byte {
	t.Helper()
	return gps.PartitionShardWorldSpec(testWorldID(shards).header(), shards, owned)
}

func buildDemoWorld(t *testing.T, shards int, owned ...int) *demoWorld {
	t.Helper()
	w, err := newDemoWorld(testWorkerSpec(t, shards, owned...))
	if err != nil {
		t.Fatal(err)
	}
	return w.(*demoWorld)
}

// TestDemoWorldRewindUsesCachedBase: a re-queued shard may ask for an
// epoch the world already stepped past; the rewind must replay churn
// from the cached base, not regenerate the universe.
func TestDemoWorldRewindUsesCachedBase(t *testing.T) {
	w := buildDemoWorld(t, 2, 0)
	if w.gens != 1 {
		t.Fatalf("world build ran the generator %d times; want 1", w.gens)
	}
	u3, err := w.UniverseAt(3)
	if err != nil {
		t.Fatal(err)
	}
	u1, err := w.UniverseAt(1) // rewind
	if err != nil {
		t.Fatal(err)
	}
	if w.gens != 1 {
		t.Fatalf("rewinding ran the generator again (%d invocations); want churn replay only", w.gens)
	}
	u3b, err := w.UniverseAt(3)
	if err != nil {
		t.Fatal(err)
	}
	if u1.NumHosts() <= u3.NumHosts() {
		t.Errorf("churn did not shrink hosts: epoch 1 %d, epoch 3 %d", u1.NumHosts(), u3.NumHosts())
	}
	if u3b.NumHosts() != u3.NumHosts() || u3b.NumServices() != u3.NumServices() {
		t.Errorf("replayed epoch 3 differs: %d/%d hosts, %d/%d services",
			u3b.NumHosts(), u3.NumHosts(), u3b.NumServices(), u3.NumServices())
	}
}

// TestDemoWorldPartitioned: the worker materializes only the owned
// partition, and it matches the full world restricted.
func TestDemoWorldPartitioned(t *testing.T) {
	full := buildDemoWorld(t, 4, 0, 1, 2, 3)
	sub := buildDemoWorld(t, 4, 1)
	if sub.u.NumHosts() >= full.u.NumHosts()/2 {
		t.Fatalf("1-of-4 partition holds %d of %d hosts; want ~1/4", sub.u.NumHosts(), full.u.NumHosts())
	}
	for _, h := range sub.u.Hosts() {
		fh, ok := full.u.HostAt(h.IP)
		if !ok || fh.NumServices() != h.NumServices() {
			t.Fatalf("partitioned host %v differs from full world", h.IP)
		}
	}
}

// TestDemoWorldExtend: a grown owned-shard set (a re-queued shard from a
// dead peer) must extend the held partition in place — generating only
// the delta — and land on exactly the world a fresh build of the grown
// set would hold, at the current epoch.
func TestDemoWorldExtend(t *testing.T) {
	w := buildDemoWorld(t, 4, 0)
	if _, err := w.UniverseAt(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Extend(testWorkerSpec(t, 4, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if w.gens != 2 {
		t.Errorf("extend ran the generator %d times total; want 2 (base + delta only)", w.gens)
	}

	want := buildDemoWorld(t, 4, 0, 2)
	wantU, err := want.UniverseAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if w.u.NumHosts() != wantU.NumHosts() || w.u.NumServices() != wantU.NumServices() {
		t.Fatalf("extended world holds %d hosts / %d services at epoch 2; fresh {0,2} build holds %d / %d",
			w.u.NumHosts(), w.u.NumServices(), wantU.NumHosts(), wantU.NumServices())
	}
	for _, h := range wantU.Hosts() {
		if _, ok := w.u.HostAt(h.IP); !ok {
			t.Fatalf("extended world missing host %v", h.IP)
		}
	}
	// The rewind cache must cover the extension too.
	u1, err := w.UniverseAt(1)
	if err != nil {
		t.Fatal(err)
	}
	want1, _ := want.UniverseAt(1)
	if w.gens != 2 || u1.NumHosts() != want1.NumHosts() {
		t.Errorf("post-extend rewind: gens %d (want 2), hosts %d (want %d)", w.gens, u1.NumHosts(), want1.NumHosts())
	}

	// Revisions Extend cannot adopt in place must error (the transport
	// then rebuilds via the factory).
	if err := w.Extend(testWorkerSpec(t, 4, 0)); err == nil {
		t.Error("Extend accepted a shrunk owned-shard set")
	}
	other := gps.PartitionShardWorldSpec(worldID{Seed: 99, Prefixes: 16, Density: 0.03, Shards: 4}.header(), 4, []int{0, 1})
	if err := w.Extend(other); err == nil {
		t.Error("Extend accepted a different world's spec")
	}
}

// TestNewDemoWorldRejectsBadSpecs: a crafted or corrupt spec must come
// back as an error (which the transport turns into a `world spec
// rejected` frame), never a panic that kills the worker process.
func TestNewDemoWorldRejectsBadSpecs(t *testing.T) {
	nanDensity := testWorldID(2)
	nanDensity.Density = math.NaN()
	hugePrefixes := testWorldID(2)
	hugePrefixes.Prefixes = 1 << 30

	cases := []struct {
		name string
		spec []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not a spec at all")},
		{"raw header without envelope", testWorldID(2).header()},
		{"truncated envelope", testWorkerSpec(t, 2, 0)[:6]},
		{"stale header magic", gps.PartitionShardWorldSpec(append([]byte("GPS3"), testWorldID(2).header()[4:]...), 2, []int{0})},
		{"shard count mismatch", gps.PartitionShardWorldSpec(testWorldID(3).header(), 2, []int{0})},
		{"owned shard out of range", gps.PartitionShardWorldSpec(testWorldID(2).header(), 2, []int{5})},
		{"NaN density", gps.PartitionShardWorldSpec(nanDensity.header(), 2, []int{0})},
		{"implausible prefix count", gps.PartitionShardWorldSpec(hugePrefixes.header(), 2, []int{0})},
	}
	for _, c := range cases {
		w, err := newDemoWorld(c.spec)
		if err == nil {
			t.Errorf("%s: newDemoWorld accepted the spec (world %v)", c.name, w)
		}
	}
}

// TestWorkerSpecRoundTrip pins the envelope + header composition the
// coordinator and worker agree on.
func TestWorkerSpecRoundTrip(t *testing.T) {
	id, part, err := parseWorkerSpec(testWorkerSpec(t, 4, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if id != testWorldID(4) {
		t.Errorf("world id = %+v; want %+v", id, testWorldID(4))
	}
	if part.Count != 4 || len(part.Owned) != 2 || part.Owned[0] != 0 || part.Owned[1] != 2 {
		t.Errorf("partition = %+v; want {Count: 4, Owned: [0 2]} (canonicalized ascending)", part)
	}
}

// TestWorkerSpecErrorNamesMagic: a worker handed an old-format world
// header must name the stale magic so the operator knows which side to
// upgrade.
func TestWorkerSpecErrorNamesMagic(t *testing.T) {
	old := append([]byte("GPS3"), make([]byte, 32)...)
	binary.BigEndian.PutUint64(old[4:], 3)
	_, _, err := parseWorkerSpec(gps.PartitionShardWorldSpec(old, 2, []int{0}))
	if err == nil || !strings.Contains(err.Error(), "GPS3") || !strings.Contains(err.Error(), checkpointMagic) {
		t.Errorf("stale-magic spec error %q does not name found and expected magic", err)
	}
}
