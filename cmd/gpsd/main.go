// Command gpsd runs GPS continuously: an epoch-driven daemon that
// re-verifies its known services, re-trains on what it sees, and spends a
// recurring probe budget on discovery, so its service inventory tracks a
// churning universe instead of decaying (§3 measures 9% of services gone
// within 10 days).
//
// Each epoch the daemon advances the synthetic universe one churn step
// (deterministically derived from -seed and the epoch number), runs one
// continuous-scanning epoch, and — when -checkpoint is set — atomically
// persists its state. Restarting with the same flags resumes from the
// checkpoint at exactly the state the previous process would have had.
//
// Usage:
//
//	gpsd [-seed N] [-prefixes N] [-density F] [-seed-fraction F]
//	     [-epochs N] [-budget N] [-reverify F] [-max-stale N]
//	     [-checkpoint FILE] [-interval DUR] [-workers N]
//
// -epochs 0 runs until SIGINT/SIGTERM; the daemon always finishes the
// epoch in flight before exiting so checkpoints stay consistent.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gps"
)

func main() {
	var (
		seed       = flag.Int64("seed", 42, "generator seed; also drives per-epoch churn")
		prefixes   = flag.Int("prefixes", 16, "announced /16 blocks in the universe")
		density    = flag.Float64("density", 0.03, "fraction of addresses hosting services")
		seedFrac   = flag.Float64("seed-fraction", 0.04, "initial seed sample as a fraction of the address space")
		epochs     = flag.Int("epochs", 10, "epochs to run (0 = until SIGINT)")
		budget     = flag.Uint64("budget", 0, "per-epoch probe budget (0 = unlimited)")
		reverify   = flag.Float64("reverify", 0.25, "fraction of the budget reserved for re-verification")
		maxStale   = flag.Int("max-stale", 2, "consecutive failed re-verifications before eviction")
		checkpoint = flag.String("checkpoint", "", "checkpoint file; written after every epoch, resumed on start")
		interval   = flag.Duration("interval", 0, "wall-clock pause between epochs")
		workers    = flag.Int("workers", 0, "compute parallelism (0 = all cores; 1 = fully deterministic)")
	)
	flag.Parse()

	params := gps.DemoUniverseParams(*seed, *prefixes, *density)
	world := worldID{Seed: *seed, Prefixes: *prefixes, Density: *density}

	fmt.Printf("gpsd: generating universe (seed=%d, %d /16s, density %.1f%%)\n",
		*seed, *prefixes, 100**density)
	u := gps.GenerateUniverse(params)
	fmt.Printf("gpsd: %d hosts, %d services, %d addresses\n",
		u.NumHosts(), u.NumServices(), u.SpaceSize())

	cfg := gps.ContinuousConfig{
		Budget:           *budget,
		ReverifyFraction: *reverify,
		MaxStale:         *maxStale,
		Pipeline:         gps.Config{Workers: *workers, Seed: *seed},
	}

	// Resume from a checkpoint when one exists; otherwise collect a
	// fresh seed sample.
	var runner *gps.Continuous
	if st := loadCheckpoint(*checkpoint, world); st != nil {
		fmt.Printf("gpsd: resuming from %s at epoch %d (%d known services)\n",
			*checkpoint, st.Epoch, len(st.Known))
		runner = gps.ResumeContinuous(st, cfg)
	} else {
		seedSet := gps.CollectSeed(u, *seedFrac, *seed^0x5eed)
		eligible := seedSet.EligiblePorts(2)
		seedSet = seedSet.FilterPorts(eligible)
		fmt.Printf("gpsd: seeded with %d services (%.2f%% sample, %d probes)\n",
			seedSet.NumServices(), 100**seedFrac, seedSet.CollectionProbes)
		runner = gps.NewContinuous(seedSet, cfg)
	}

	// Replay churn deterministically up to the resumed epoch: the churn
	// seed of epoch e is seed+e, so a resumed daemon sees the exact
	// universe the interrupted one would have.
	for e := 1; e <= runner.State().Epoch; e++ {
		u = gps.ApplyChurn(u, gps.DefaultChurn(*seed+int64(e)))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	for epoch := runner.State().Epoch + 1; *epochs == 0 || epoch <= *epochs; epoch++ {
		select {
		case s := <-sig:
			fmt.Printf("gpsd: %v — stopping cleanly\n", s)
			return
		default:
		}

		u = gps.ApplyChurn(u, gps.DefaultChurn(*seed+int64(epoch)))
		start := time.Now()
		stats, err := runner.Epoch(u)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpsd:", err)
			os.Exit(1)
		}
		fmt.Printf("gpsd: epoch %3d  known %6d  verified %6d  lost %5d  evicted %5d  new %5d  alive %5.1f%%  stale %4.1f%%  probes %d (%v)\n",
			stats.Epoch, stats.KnownSize, stats.Verified, stats.Lost, stats.Evicted,
			stats.NewFound, 100*stats.Freshness.AliveFrac(), 100*stats.Freshness.StaleRate(),
			stats.Probes(), time.Since(start).Round(time.Millisecond))

		if *checkpoint != "" {
			if err := saveCheckpoint(*checkpoint, world, runner.State()); err != nil {
				fmt.Fprintln(os.Stderr, "gpsd: checkpoint:", err)
				os.Exit(1)
			}
		}
		if *interval > 0 {
			select {
			case s := <-sig:
				fmt.Printf("gpsd: %v — stopping cleanly\n", s)
				return
			case <-time.After(*interval):
			}
		}
	}
	fmt.Printf("gpsd: done after epoch %d; %d services known\n",
		runner.State().Epoch, len(runner.State().Known))
}

// worldID pins a checkpoint to the flags that generated its universe.
// Resuming is only meaningful against the exact same deterministic world;
// a mismatch would silently evict the whole inventory against a universe
// it never scanned.
type worldID struct {
	Seed     int64
	Prefixes int
	Density  float64
}

// header renders the fixed-size checkpoint preamble gpsd writes before
// the continuous state.
func (w worldID) header() []byte {
	buf := make([]byte, 4+8+8+8)
	copy(buf, "GPSD")
	binary.BigEndian.PutUint64(buf[4:], uint64(w.Seed))
	binary.BigEndian.PutUint64(buf[12:], uint64(w.Prefixes))
	binary.BigEndian.PutUint64(buf[20:], math.Float64bits(w.Density))
	return buf
}

// loadCheckpoint reads a checkpoint file, returning nil when the file
// does not exist. A corrupt checkpoint — or one written for a different
// universe — is fatal rather than silently restarted from scratch.
func loadCheckpoint(path string, want worldID) *gps.ContinuousState {
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpsd:", err)
		os.Exit(1)
	}
	defer f.Close()
	hdr := make([]byte, len(want.header()))
	if _, err := io.ReadFull(f, hdr); err != nil {
		fmt.Fprintf(os.Stderr, "gpsd: corrupt checkpoint %s: %v\n", path, err)
		os.Exit(1)
	}
	if string(hdr[:4]) != "GPSD" {
		fmt.Fprintf(os.Stderr, "gpsd: %s is not a gpsd checkpoint\n", path)
		os.Exit(1)
	}
	got := worldID{
		Seed:     int64(binary.BigEndian.Uint64(hdr[4:])),
		Prefixes: int(binary.BigEndian.Uint64(hdr[12:])),
		Density:  math.Float64frombits(binary.BigEndian.Uint64(hdr[20:])),
	}
	if got != want {
		fmt.Fprintf(os.Stderr,
			"gpsd: checkpoint %s was written for -seed %d -prefixes %d -density %g; current flags say -seed %d -prefixes %d -density %g\n",
			path, got.Seed, got.Prefixes, got.Density, want.Seed, want.Prefixes, want.Density)
		os.Exit(1)
	}
	st, err := gps.ReadContinuousCheckpoint(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsd: corrupt checkpoint %s: %v\n", path, err)
		os.Exit(1)
	}
	return st
}

// saveCheckpoint writes the state to a temp file in the target directory
// and renames it into place, so a crash mid-write never corrupts the
// previous checkpoint.
func saveCheckpoint(path string, world worldID, st *gps.ContinuousState) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(world.header()); err != nil {
		tmp.Close()
		return err
	}
	if err := gps.WriteContinuousCheckpoint(tmp, st); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
