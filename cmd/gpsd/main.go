// Command gpsd runs GPS continuously: an epoch-driven daemon that
// re-verifies its known services, re-trains on what it sees, and spends a
// recurring probe budget on discovery, so its service inventory tracks a
// churning universe instead of decaying (§3 measures 9% of services gone
// within 10 days).
//
// With -shards N the daemon becomes a shard coordinator: the address
// space is hash-split into N stable partitions, each owned by an
// independent continuous runner with its own model and a 1/N slice of the
// epoch budget; the runners execute every epoch concurrently and their
// inventories merge into the single view the daemon reports. This is the
// in-process model of the paper's horizontal scale-out claim (§5.5).
//
// Each epoch the daemon advances the synthetic universe one churn step
// (deterministically derived from -seed and the epoch number), runs one
// continuous-scanning epoch, and — when -checkpoint is set — atomically
// persists its state (fsync before rename, so a crash mid-write can never
// leave a truncated checkpoint). Restarting with the same flags resumes
// from the checkpoint at exactly the state the previous process would
// have had.
//
// Usage:
//
//	gpsd [-seed N] [-prefixes N] [-density F] [-seed-fraction F]
//	     [-epochs N] [-budget N] [-reverify F] [-max-stale N] [-shards N]
//	     [-checkpoint FILE] [-interval DUR] [-workers N]
//
// -epochs 0 runs until SIGINT/SIGTERM; the daemon always finishes the
// epoch in flight before exiting so checkpoints stay consistent.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gps"
)

func main() {
	var (
		seed       = flag.Int64("seed", 42, "generator seed; also drives per-epoch churn")
		prefixes   = flag.Int("prefixes", 16, "announced /16 blocks in the universe")
		density    = flag.Float64("density", 0.03, "fraction of addresses hosting services")
		seedFrac   = flag.Float64("seed-fraction", 0.04, "initial seed sample as a fraction of the address space")
		epochs     = flag.Int("epochs", 10, "epochs to run (0 = until SIGINT)")
		budget     = flag.Uint64("budget", 0, "global per-epoch probe budget, split across shards (0 = unlimited)")
		reverify   = flag.Float64("reverify", 0.25, "fraction of each shard's budget reserved for re-verification")
		maxStale   = flag.Int("max-stale", 2, "consecutive failed re-verifications before eviction")
		shards     = flag.Int("shards", 1, "partition the scan into N hash-split shards run concurrently")
		checkpoint = flag.String("checkpoint", "", "checkpoint file; written after every epoch, resumed on start")
		interval   = flag.Duration("interval", 0, "wall-clock pause between epochs")
		workers    = flag.Int("workers", 0, "per-shard compute parallelism (0 = all cores; 1 = fully deterministic)")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "gpsd: -shards must be >= 1")
		os.Exit(2)
	}

	params := gps.DemoUniverseParams(*seed, *prefixes, *density)
	world := worldID{Seed: *seed, Prefixes: *prefixes, Density: *density, Shards: *shards}

	fmt.Printf("gpsd: generating universe (seed=%d, %d /16s, density %.1f%%)\n",
		*seed, *prefixes, 100**density)
	u := gps.GenerateUniverse(params)
	fmt.Printf("gpsd: %d hosts, %d services, %d addresses", u.NumHosts(), u.NumServices(), u.SpaceSize())
	if *shards > 1 {
		fmt.Printf("; %d shards", *shards)
	}
	fmt.Println()

	cfg := gps.ShardConfig{
		Shards: *shards,
		Continuous: gps.ContinuousConfig{
			Budget:           *budget,
			ReverifyFraction: *reverify,
			MaxStale:         *maxStale,
			Pipeline:         gps.Config{Workers: *workers, Seed: *seed},
		},
	}

	// Resume from a checkpoint when one exists; otherwise collect a
	// fresh seed sample.
	var coord *gps.ShardCoordinator
	resumed := false
	if *checkpoint != "" {
		states, err := loadCheckpoint(*checkpoint, world)
		switch {
		case errors.Is(err, errNoCheckpoint):
			// Fresh start below.
		case err != nil:
			fmt.Fprintln(os.Stderr, "gpsd:", err)
			os.Exit(1)
		default:
			// Partitions are disjoint under the hash split, so the global
			// inventory size is just the sum — no need to merge-copy every
			// entry for a log line.
			known := 0
			for _, st := range states {
				known += len(st.Known)
			}
			fmt.Printf("gpsd: resuming from %s at epoch %d (%d known services across %d shards)\n",
				*checkpoint, states[0].Epoch, known, len(states))
			if coord, err = gps.ResumeShardCoordinator(states, cfg); err != nil {
				fmt.Fprintln(os.Stderr, "gpsd:", err)
				os.Exit(1)
			}
			resumed = true
		}
	}
	if coord == nil {
		seedSet := gps.CollectSeed(u, *seedFrac, *seed^0x5eed)
		eligible := seedSet.EligiblePorts(2)
		seedSet = seedSet.FilterPorts(eligible)
		fmt.Printf("gpsd: seeded with %d services (%.2f%% sample, %d probes)\n",
			seedSet.NumServices(), 100**seedFrac, seedSet.CollectionProbes)
		coord = gps.NewShardCoordinator(seedSet, cfg)
	}

	if empty := coord.EmptyShards(); len(empty) > 0 {
		// The shard count is pinned in the checkpoint header, so on
		// resume the only way out is a re-seed; only a fresh start can
		// adjust the flags.
		remedy := "lower -shards or enlarge -seed-fraction"
		if resumed {
			remedy = "restart without -checkpoint (or with a new file) to re-seed under a different layout"
		}
		fmt.Fprintf(os.Stderr,
			"gpsd: warning: shards %v own no services — their partitions will never be scanned; %s\n",
			empty, remedy)
	}

	// Replay churn deterministically up to the resumed epoch: the churn
	// seed of epoch e is seed+e, so a resumed daemon sees the exact
	// universe the interrupted one would have.
	for e := 1; e <= coord.EpochNumber(); e++ {
		u = gps.ApplyChurn(u, gps.DefaultChurn(*seed+int64(e)))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	for epoch := coord.EpochNumber() + 1; *epochs == 0 || epoch <= *epochs; epoch++ {
		select {
		case s := <-sig:
			fmt.Printf("gpsd: %v — stopping cleanly\n", s)
			return
		default:
		}

		u = gps.ApplyChurn(u, gps.DefaultChurn(*seed+int64(epoch)))
		start := time.Now()
		stats, err := coord.Epoch(u)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpsd:", err)
			os.Exit(1)
		}
		fmt.Printf("gpsd: epoch %3d  known %6d  verified %6d  lost %5d  evicted %5d  new %5d  alive %5.1f%%  stale %4.1f%%  probes %d (%v)\n",
			stats.Epoch, stats.KnownSize, stats.Verified, stats.Lost, stats.Evicted,
			stats.NewFound, 100*stats.Freshness.AliveFrac(), 100*stats.Freshness.StaleRate(),
			stats.Probes(), time.Since(start).Round(time.Millisecond))

		if *checkpoint != "" {
			if err := saveCheckpoint(*checkpoint, world, coord.States()); err != nil {
				fmt.Fprintln(os.Stderr, "gpsd: checkpoint:", err)
				os.Exit(1)
			}
		}
		if *interval > 0 {
			select {
			case s := <-sig:
				fmt.Printf("gpsd: %v — stopping cleanly\n", s)
				return
			case <-time.After(*interval):
			}
		}
	}
	known, conflicts := coord.Inventory()
	fmt.Printf("gpsd: done after epoch %d; %d services known", coord.EpochNumber(), len(known))
	if conflicts > 0 {
		fmt.Printf(" (%d cross-shard conflicts resolved)", conflicts)
	}
	fmt.Println()
}
