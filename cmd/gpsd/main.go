// Command gpsd runs GPS continuously: an epoch-driven daemon that
// re-verifies its known services, re-trains on what it sees, and spends a
// recurring probe budget on discovery, so its service inventory tracks a
// churning universe instead of decaying (§3 measures 9% of services gone
// within 10 days).
//
// With -shards N the daemon becomes a shard coordinator: the address
// space is hash-split into N stable partitions, each owned by an
// independent continuous runner with its own model and a 1/N slice of the
// epoch budget; the runners execute every epoch concurrently and their
// inventories merge into the single view the daemon reports. This is the
// in-process model of the paper's horizontal scale-out claim (§5.5).
//
// The same split also runs across processes and hosts. A worker process
// (-worker -listen addr) serves shard epochs over the GPS shard
// transport; a coordinator (-coordinator -workers addr,addr,...) dials
// the fleet, broadcasts the seed and the world spec, assigns shards
// round-robin, and folds the streamed per-epoch results into the same
// merged view — byte-identical to the in-process run, which CI enforces.
// -rebalance split|join doubles or halves a checkpoint's shard count
// without a rescan, so a fleet can grow or shrink between runs.
//
// Each epoch the daemon advances the synthetic universe one churn step
// (deterministically derived from -seed and the epoch number), runs one
// continuous-scanning epoch, and — when -checkpoint is set — atomically
// persists its state (fsync before rename, so a crash mid-write can never
// leave a truncated checkpoint). Restarting with the same flags resumes
// from the checkpoint at exactly the state the previous process would
// have had.
//
// With -serve ADDR the daemon additionally mounts the inventory query
// API (internal/serve) on ADDR, in both single-process and coordinator
// modes: at each epoch commit the merged inventory is indexed into an
// immutable snapshot and swapped in atomically, so readers query the
// last committed epoch without ever blocking the scan loop. With
// -serve-file FILE the daemon is pure read path: it loads a GPSV
// inventory file (-inventory output) and serves it until SIGINT/SIGTERM.
//
// A serving daemon is also a replication origin: every commit is diffed
// into a per-epoch delta (adds/updates/removes), retained in a bounded
// history (-feed-history) behind GET /v1/watch, and — with -feed ADDR —
// streamed to read replicas over the shard transport. A replica
// (gpsd -replica -upstream ADDR -serve ADDR) bootstraps from a full
// snapshot frame, applies deltas as epochs commit, and serves the whole
// /v1 API with responses byte-identical to the origin's; it can chain
// (-feed on a replica re-exports the stream) and re-bootstraps by itself
// when it falls behind the origin's retained history. gpsd -watch URL is
// the standalone feed consumer: it follows /v1/watch, folds events into
// a local inventory, and can persist it as a GPSV file.
//
// A coordinator started with -cluster ADDR also accepts workers that
// join after the run began: gpsd worker -join ADDR registers with the
// coordinator, which live-migrates shards (checkpointed state plus the
// partitioned world spec) onto the newcomer at the next epoch boundary.
// The same machinery runs in reverse for -leave (the worker drains its
// shards back into the fleet before exiting) and for the optional
// latency rebalancer (-rebalance-factor). GET /v1/cluster on the
// coordinator's -serve API reports membership, per-shard latency, and
// every migration; POST /v1/cluster/workers/{id}/drain (behind -admin)
// drains a worker remotely.
//
// Usage:
//
//	gpsd [-seed N] [-prefixes N] [-density F] [-seed-fraction F]
//	     [-epochs N] [-budget N] [-reverify F] [-max-stale N] [-shards N]
//	     [-checkpoint FILE] [-inventory FILE] [-interval DUR]
//	     [-parallelism N] [-exact-counts] [-serve ADDR]
//	gpsd worker -listen ADDR
//	gpsd worker -join ADDR [-name ID] [-leave]
//	gpsd coordinator -workers ADDR,ADDR,... [flags as above]
//	     [-rpc-timeout DUR] [-shard-checkpoints DIR]
//	     [-cluster ADDR] [-admin] [-rebalance-factor F]
//	gpsd rebalance split|join -checkpoint FILE
//	gpsd serve FILE -serve ADDR
//	gpsd [flags] -serve ADDR [-feed ADDR] [-feed-history N]
//	gpsd replica -upstream ADDR -serve ADDR [-feed ADDR]
//	gpsd watch URL [-epochs N] [-inventory FILE]
//
// The pre-subcommand spellings (-worker, -coordinator, -replica,
// -watch URL, -serve-file FILE, -rebalance MODE) keep working as
// deprecated aliases; each prints a one-line migration hint.
//
// -epochs 0 runs until SIGINT/SIGTERM; the daemon always finishes the
// epoch in flight before exiting, then flushes a final checkpoint and
// the -inventory file and shuts the query API down cleanly, so a served
// daemon restarts without losing the in-flight epoch. With -serve and a
// finite -epochs the daemon keeps serving after its last epoch until
// signalled.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gps"
)

// daemonFlags is every knob the daemon, coordinator, and worker modes
// share, parsed once in main.
type daemonFlags struct {
	seed       int64
	prefixes   int
	density    float64
	seedFrac   float64
	epochs     int
	budget     uint64
	reverify   float64
	maxStale   int
	shards     int
	checkpoint string
	inventory  string
	interval   time.Duration
	parallel   int
	exact      bool

	logJSON     bool
	workerMode  bool
	listen      string
	joinAddr    string
	workerName  string
	leave       bool
	coordinator bool
	workers     string
	cluster     string
	admin       bool
	rebalFactor float64
	rpcTimeout  time.Duration
	shardCkpts  string
	rebalance   string
	serve       string
	serveFile   string
	debugAddr   string

	feedAddr    string
	feedHistory int
	replicaMode bool
	upstream    string
	watchURL    string
}

// registerFlags binds every gpsd flag onto fs. One shared set serves
// all modes: the subcommand (or deprecated mode flag) decides which
// subset matters.
func registerFlags(fs *flag.FlagSet, f *daemonFlags) {
	fs.Int64Var(&f.seed, "seed", 42, "generator seed; also drives per-epoch churn")
	fs.IntVar(&f.prefixes, "prefixes", 16, "announced /16 blocks in the universe")
	fs.Float64Var(&f.density, "density", 0.03, "fraction of addresses hosting services")
	fs.Float64Var(&f.seedFrac, "seed-fraction", 0.04, "initial seed sample as a fraction of the address space")
	fs.IntVar(&f.epochs, "epochs", 10, "epochs to run (0 = until SIGINT)")
	fs.Uint64Var(&f.budget, "budget", 0, "global per-epoch probe budget, split across shards (0 = unlimited)")
	fs.Float64Var(&f.reverify, "reverify", 0.25, "fraction of each shard's budget reserved for re-verification")
	fs.IntVar(&f.maxStale, "max-stale", 2, "consecutive failed re-verifications before eviction")
	fs.IntVar(&f.shards, "shards", 1, "partition the scan into N hash-split shards")
	fs.StringVar(&f.checkpoint, "checkpoint", "", "checkpoint file; written after every epoch, resumed on start")
	fs.StringVar(&f.inventory, "inventory", "", "write the final merged inventory (canonical bytes) to this file")
	fs.DurationVar(&f.interval, "interval", 0, "wall-clock pause between epochs")
	fs.IntVar(&f.parallel, "parallelism", 0, "per-shard compute parallelism (0 = all cores; 1 = fully deterministic)")
	fs.BoolVar(&f.exact, "exact-counts", false, "account exact per-shard prefix-scan probe counts instead of the ideal 1/N share")

	fs.BoolVar(&f.logJSON, "log-json", false, "emit every log line as one JSON object instead of key=value text")
	fs.BoolVar(&f.workerMode, "worker", false, "deprecated alias of the 'worker' subcommand")
	fs.StringVar(&f.listen, "listen", "127.0.0.1:7600", "worker mode: address to listen on")
	fs.StringVar(&f.joinAddr, "join", "", "worker mode: join the running coordinator at this -cluster address instead of listening")
	fs.StringVar(&f.workerName, "name", "", "worker mode with -join: worker id to register as (default: coordinator assigns the remote address)")
	fs.BoolVar(&f.leave, "leave", false, "worker mode with -join: on SIGINT/SIGTERM, drain shards back to the fleet before exiting")
	fs.BoolVar(&f.coordinator, "coordinator", false, "deprecated alias of the 'coordinator' subcommand")
	fs.StringVar(&f.workers, "workers", "", "coordinator mode: comma-separated worker addresses")
	fs.StringVar(&f.cluster, "cluster", "", "coordinator mode: accept joining workers on this address (gpsd worker -join)")
	fs.BoolVar(&f.admin, "admin", false, "enable mutating /v1/cluster endpoints on -serve (default: read-only)")
	fs.Float64Var(&f.rebalFactor, "rebalance-factor", 0, "coordinator mode: migrate a shard off a worker whose epoch-latency EWMA exceeds the cluster median by this factor (0 = off)")
	fs.DurationVar(&f.rpcTimeout, "rpc-timeout", 2*time.Minute, "coordinator mode: per-RPC deadline (turns a wedged worker into an error)")
	fs.StringVar(&f.shardCkpts, "shard-checkpoints", "", "coordinator mode: also write per-shard checkpoints into this directory each epoch")
	fs.StringVar(&f.rebalance, "rebalance", "", "deprecated alias of the 'rebalance' subcommand: 'split' doubles -checkpoint's shard count, 'join' halves it")
	fs.StringVar(&f.serve, "serve", "", "serve the inventory query API on this address (e.g. 127.0.0.1:7080) alongside the daemon")
	fs.StringVar(&f.serveFile, "serve-file", "", "deprecated alias of the 'serve' subcommand: serve this GPSV inventory file on -serve")
	fs.StringVar(&f.debugAddr, "debug-addr", "", "serve /v1/metricz, /v1/healthz, and /debug/pprof on this address, in every mode")

	fs.StringVar(&f.feedAddr, "feed", "", "serve the replication feed on this address (requires -serve); replicas subscribe here")
	fs.IntVar(&f.feedHistory, "feed-history", 0, "epoch deltas to retain for replicas and /v1/watch (0 = default depth)")
	fs.BoolVar(&f.replicaMode, "replica", false, "deprecated alias of the 'replica' subcommand")
	fs.StringVar(&f.upstream, "upstream", "", "replica mode: origin feed address (the origin's -feed)")
	fs.StringVar(&f.watchURL, "watch", "", "deprecated alias of the 'watch' subcommand: follow this /v1/watch URL")
}

// mainLog is the daemon's structured logger: every line carries
// component=gpsd plus the trace id of the epoch in flight, so a slow
// log line can be pulled up as a waterfall in /v1/tracez. Info routes
// to stdout, warnings and errors to stderr.
var mainLog = gps.NewLogger("gpsd")

// deprecatedFlags maps each pre-subcommand mode flag to the spelling
// that replaces it. Using one prints a single migration hint; behavior
// is unchanged, and the alias test pins flag and subcommand to the same
// parsed configuration.
var deprecatedFlags = map[string]string{
	"worker":      "gpsd worker",
	"coordinator": "gpsd coordinator",
	"replica":     "gpsd replica",
	"watch":       "gpsd watch URL",
	"serve-file":  "gpsd serve FILE",
	"rebalance":   "gpsd rebalance split|join",
}

// parseArgs turns a gpsd command line into a daemonFlags. The first
// argument may be a subcommand (worker, coordinator, replica, watch,
// serve, rebalance); watch/serve/rebalance take one positional operand,
// accepted either right after the subcommand or after the flags.
// Everything else parses through the shared flag set, so a subcommand
// and its deprecated flag spelling resolve to identical configurations.
func parseArgs(args []string, stderr io.Writer) (daemonFlags, error) {
	var f daemonFlags
	fs := flag.NewFlagSet("gpsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	registerFlags(fs, &f)

	sub := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	switch sub {
	case "", "worker", "coordinator", "replica", "watch", "serve", "rebalance":
	default:
		return f, fmt.Errorf("unknown subcommand %q (worker|coordinator|replica|watch|serve|rebalance)", sub)
	}
	operand := ""
	wantsOperand := sub == "watch" || sub == "serve" || sub == "rebalance"
	if wantsOperand && len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		operand, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return f, err
	}
	if wantsOperand && operand == "" {
		if operand = fs.Arg(0); operand == "" {
			return f, fmt.Errorf("gpsd %s needs an operand (see gpsd -h)", sub)
		}
	}
	switch sub {
	case "worker":
		f.workerMode = true
	case "coordinator":
		f.coordinator = true
	case "replica":
		f.replicaMode = true
	case "watch":
		f.watchURL = operand
	case "serve":
		f.serveFile = operand
	case "rebalance":
		f.rebalance = operand
	}
	// Structured logging is live from this point on: the JSON switch is
	// applied before the first line (the deprecation hint below) so a
	// log shipper never sees a mixed stream.
	gps.SetLogJSON(f.logJSON)
	hintLog := mainLog.Output(nil, stderr)
	fs.Visit(func(fl *flag.Flag) {
		if repl, ok := deprecatedFlags[fl.Name]; ok {
			hintLog.Warnf("-%s is deprecated; use `%s` (same behavior)", fl.Name, repl)
		}
	})
	return f, nil
}

func main() {
	f, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "gpsd:", err)
		}
		os.Exit(2)
	}
	if f.shards < 1 {
		mainLog.Errorf("-shards must be >= 1")
		os.Exit(2)
	}
	if f.feedAddr != "" && f.serve == "" {
		mainLog.Errorf("-feed needs -serve ADDR (the feed streams what the query API serves)")
		os.Exit(2)
	}
	startDebugServer(f.debugAddr)

	switch {
	case f.workerMode:
		os.Exit(runWorker(f))
	case f.rebalance != "":
		os.Exit(runRebalance(f))
	case f.watchURL != "":
		os.Exit(runWatch(f))
	case f.replicaMode:
		if f.serve == "" || f.upstream == "" {
			mainLog.Errorf("replica mode needs -upstream ADDR and -serve ADDR")
			os.Exit(2)
		}
		os.Exit(runReplica(f))
	case f.serveFile != "":
		if f.serve == "" {
			mainLog.Errorf("gpsd serve FILE needs -serve ADDR to listen on")
			os.Exit(2)
		}
		os.Exit(runServeFile(f))
	case f.coordinator || f.workers != "":
		if !f.coordinator || f.workers == "" {
			mainLog.Errorf("coordinator mode needs -workers addr,addr,... (gpsd coordinator -workers ...)")
			os.Exit(2)
		}
		os.Exit(runCoordinator(f))
	}
	os.Exit(runDaemon(f))
}

// world derives the checkpoint/world-spec identity from the flags.
func (f daemonFlags) world() worldID {
	return worldID{Seed: f.seed, Prefixes: f.prefixes, Density: f.density, Shards: f.shards}
}

// shardConfig derives the coordinator configuration both the in-process
// and the distributed mode run, so the two produce identical epochs.
func (f daemonFlags) shardConfig() gps.ShardConfig {
	return gps.ShardConfig{
		Shards: f.shards,
		Continuous: gps.ContinuousConfig{
			Budget:           f.budget,
			ReverifyFraction: f.reverify,
			MaxStale:         f.maxStale,
			Pipeline: gps.Config{
				Workers:          f.parallel,
				Seed:             f.seed,
				ExactShardCounts: f.exact,
			},
		},
	}
}

// collectSeedSet gathers and filters the initial observation set.
func collectSeedSet(u *gps.Universe, f daemonFlags) *gps.Dataset {
	seedSet := gps.CollectSeed(u, f.seedFrac, f.seed^0x5eed)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	mainLog.Infof("seeded with %d services (%.2f%% sample, %d probes)",
		seedSet.NumServices(), 100*f.seedFrac, seedSet.CollectionProbes)
	return seedSet
}

// logEpoch emits the per-epoch progress report through the structured
// logger: the human-readable summary is the msg, the figures ride as
// fields so both text and -log-json modes stay greppable.
func logEpoch(stats gps.EpochStats, elapsed time.Duration) {
	mainLog.Log(gps.LogLevelInfo, "epoch complete",
		gps.LogInt("epoch", stats.Epoch),
		gps.LogInt("known", stats.KnownSize),
		gps.LogInt("verified", stats.Verified),
		gps.LogInt("lost", stats.Lost),
		gps.LogInt("evicted", stats.Evicted),
		gps.LogInt("new", stats.NewFound),
		gps.LogString("alive", fmt.Sprintf("%.1f%%", 100*stats.Freshness.AliveFrac())),
		gps.LogString("stale", fmt.Sprintf("%.1f%%", 100*stats.Freshness.StaleRate())),
		gps.LogString("probes", fmt.Sprintf("%d", stats.Probes())),
		gps.LogString("took", elapsed.Round(time.Millisecond).String()))
}

// checkpointSeconds times the atomic checkpoint save, the one epoch cost
// the phase histograms inside the scan layers cannot see.
var checkpointSeconds = gps.Telemetry().Histogram("gps_checkpoint_seconds",
	"time to persist the epoch checkpoint (fsync + rename)", nil)

// epochSummaryJSON is the machine-readable twin of logEpoch: one JSON
// object per line, stable field order, durations in seconds. Log
// shippers parse this; humans read the line above.
type epochSummaryJSON struct {
	Event           string  `json:"event"`
	Epoch           int     `json:"epoch"`
	Known           int     `json:"known"`
	Verified        int     `json:"verified"`
	Lost            int     `json:"lost"`
	Evicted         int     `json:"evicted"`
	New             int     `json:"new"`
	Refreshed       int     `json:"refreshed"`
	TrainSize       int     `json:"train_size"`
	ReverifyProbes  uint64  `json:"reverify_probes"`
	DiscoveryProbes uint64  `json:"discovery_probes"`
	AliveFrac       float64 `json:"alive_frac"`
	StaleRate       float64 `json:"stale_rate"`
	ReverifySec     float64 `json:"reverify_sec"`
	RetrainSec      float64 `json:"retrain_sec"`
	DiscoverSec     float64 `json:"discover_sec"`
	FoldSec         float64 `json:"fold_sec"`
	CheckpointSec   float64 `json:"checkpoint_sec"`
	EpochSec        float64 `json:"epoch_sec"`
}

// logEpochJSON emits the structured per-epoch summary. With concurrent
// shards the phase seconds are summed across shards (CPU-seconds);
// epoch_sec is wall time.
func logEpochJSON(stats gps.EpochStats, elapsed, ckpt time.Duration) {
	body, err := json.Marshal(epochSummaryJSON{
		Event: "epoch", Epoch: stats.Epoch, Known: stats.KnownSize,
		Verified: stats.Verified, Lost: stats.Lost, Evicted: stats.Evicted,
		New: stats.NewFound, Refreshed: stats.Refreshed, TrainSize: stats.TrainSize,
		ReverifyProbes: stats.ReverifyProbes, DiscoveryProbes: stats.DiscoveryProbes,
		AliveFrac: stats.Freshness.AliveFrac(), StaleRate: stats.Freshness.StaleRate(),
		ReverifySec:   stats.Phases.Reverify.Seconds(),
		RetrainSec:    stats.Phases.Retrain.Seconds(),
		DiscoverSec:   stats.Phases.Discover.Seconds(),
		FoldSec:       stats.Phases.Fold.Seconds(),
		CheckpointSec: ckpt.Seconds(), EpochSec: elapsed.Seconds(),
	})
	if err != nil {
		return
	}
	fmt.Println(string(body))
}

// writeInventoryFile dumps the merged inventory in its canonical byte
// encoding: the artifact the distributed CI gate diffs against the
// in-process run.
func writeInventoryFile(path string, inv map[gps.ServiceKey]*gps.KnownService) error {
	tmpf, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gps.WriteShardInventory(tmpf, inv); err != nil {
		tmpf.Close()
		return err
	}
	return tmpf.Close()
}

// warnEmptyShards reports partitions that own no services.
func warnEmptyShards(empty []int, resumed bool) {
	if len(empty) == 0 {
		return
	}
	// The shard count is pinned in the checkpoint header, so on resume
	// the only way out is a re-seed; only a fresh start can adjust the
	// flags.
	remedy := "lower -shards or enlarge -seed-fraction"
	if resumed {
		remedy = "restart without -checkpoint (or with a new file) to re-seed under a different layout"
	}
	mainLog.Warnf("shards %v own no services — their partitions will never be scanned; %s",
		empty, remedy)
}

// notifySignals returns the channel the epoch loops poll between epochs.
func notifySignals() chan os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return sig
}

// runDaemon is the single-process mode: N in-process shards (or one
// unsharded runner) driven epoch by epoch against the locally simulated
// universe.
func runDaemon(f daemonFlags) int {
	gps.Tracing().SetProcess("daemon")
	setProcessHealth(func(i *gps.HealthInfo) {
		i.Role = "origin"
		i.ShardsOwned = f.shards
	})
	params := gps.DemoUniverseParams(f.seed, f.prefixes, f.density)
	world := f.world()

	mainLog.Infof("generating universe (seed=%d, %d /16s, density %.1f%%)",
		f.seed, f.prefixes, 100*f.density)
	u, err := gps.NewUniverse(params)
	if err != nil {
		mainLog.Errorf("invalid universe flags: %v", err)
		return 2
	}
	setWorldGauges(u.NumHosts(), f.shards, f.shards)
	worldLine := fmt.Sprintf("%d hosts, %d services, %d addresses", u.NumHosts(), u.NumServices(), u.SpaceSize())
	if f.shards > 1 {
		worldLine += fmt.Sprintf("; %d shards", f.shards)
	}
	mainLog.Infof("%s", worldLine)

	cfg := f.shardConfig()

	// Resume from a checkpoint when one exists; otherwise collect a
	// fresh seed sample.
	var coord *gps.ShardCoordinator
	resumed := false
	if f.checkpoint != "" {
		states, _, err := loadCheckpoint(f.checkpoint, world)
		switch {
		case errors.Is(err, errNoCheckpoint):
			// Fresh start below.
		case err != nil:
			mainLog.Errorf("%v", err)
			return 1
		default:
			// Partitions are disjoint under the hash split, so the global
			// inventory size is just the sum — no need to merge-copy every
			// entry for a log line.
			known := 0
			for _, st := range states {
				known += len(st.Known)
			}
			mainLog.Infof("resuming from %s at epoch %d (%d known services across %d shards)",
				f.checkpoint, states[0].Epoch, known, len(states))
			if coord, err = gps.ResumeShardCoordinator(states, cfg); err != nil {
				mainLog.Errorf("%v", err)
				return 1
			}
			resumed = true
		}
	}
	if coord == nil {
		coord = gps.NewShardCoordinator(collectSeedSet(u, f), cfg)
	}
	warnEmptyShards(coord.EmptyShards(), resumed)

	var api *inventoryServer
	if f.serve != "" {
		var err error
		configure := func(api *gps.InventoryServer) {
			api.SetHealthSource(gps.HealthFunc(func() gps.HealthInfo {
				return gps.HealthInfo{Role: "origin", ShardsOwned: f.shards}
			}))
		}
		if api, err = startServing(f, coord, configure); err != nil {
			mainLog.Errorf("%v", err)
			return 1
		}
	}

	// Replay churn deterministically up to the resumed epoch: the churn
	// seed of epoch e is seed+e, so a resumed daemon sees the exact
	// universe the interrupted one would have.
	for e := 1; e <= coord.EpochNumber(); e++ {
		u = gps.ApplyChurn(u, gps.DefaultChurn(f.seed+int64(e)))
	}

	sig := notifySignals()
	stopped := false
	for epoch := coord.EpochNumber() + 1; !stopped && (f.epochs == 0 || epoch <= f.epochs); epoch++ {
		select {
		case s := <-sig:
			mainLog.Infof("%v — flushing and stopping cleanly", s)
			stopped = true
			continue
		default:
		}

		u = gps.ApplyChurn(u, gps.DefaultChurn(f.seed+int64(epoch)))
		start := time.Now()
		stats, err := coord.Epoch(u)
		if err != nil {
			mainLog.Errorf("%v", err)
			return 1
		}
		elapsed := time.Since(start)
		logEpoch(stats, elapsed)

		var ckpt time.Duration
		if f.checkpoint != "" {
			ckptStart := time.Now()
			if err := saveCheckpoint(f.checkpoint, world, localTopology(f.shards), coord.States()); err != nil {
				mainLog.Errorf("checkpoint: %v", err)
				return 1
			}
			ckpt = time.Since(ckptStart)
			checkpointSeconds.Observe(ckpt.Seconds())
		}
		logEpochJSON(stats, elapsed, ckpt)
		if f.interval > 0 && !stopped {
			select {
			case s := <-sig:
				mainLog.Infof("%v — flushing and stopping cleanly", s)
				stopped = true
			case <-time.After(f.interval):
			}
		}
	}
	// A serving daemon's job is not over when its scan is: keep
	// answering queries at the final epoch until signalled.
	serveUntilSignal(api, sig, stopped)
	return finishDaemon(f, world, localTopology(f.shards), coord.States(),
		coord.EpochNumber(), api, "", func() (map[gps.ServiceKey]*gps.KnownService, int) {
			return coord.Inventory()
		})
}

// finishDaemon is the clean-exit path both daemon modes share: flush a
// final checkpoint (idempotent — the state is the one the last epoch
// already saved, but a restart must find it even if the epoch loop never
// ran), write the merged -inventory artifact, drain and stop the query
// API, and report. Everything a restart needs is on disk before the
// process exits.
func finishDaemon(f daemonFlags, world worldID, topo topology, states []*gps.ContinuousState,
	epoch int, api *inventoryServer, suffix string,
	inventory func() (map[gps.ServiceKey]*gps.KnownService, int)) int {
	if f.checkpoint != "" {
		if err := saveCheckpoint(f.checkpoint, world, topo, states); err != nil {
			mainLog.Errorf("final checkpoint: %v", err)
			return 1
		}
	}
	known, conflicts := inventory()
	if f.inventory != "" {
		if err := writeInventoryFile(f.inventory, known); err != nil {
			mainLog.Errorf("inventory: %v", err)
			return 1
		}
	}
	api.shutdown()
	done := fmt.Sprintf("done after epoch %d; %d services known%s", epoch, len(known), suffix)
	if conflicts > 0 {
		done += fmt.Sprintf(" (%d cross-shard conflicts resolved)", conflicts)
	}
	mainLog.Infof("%s", done)
	return 0
}
