package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"gps"
)

// replicaLog tags the replica and watch modes' lines.
var replicaLog = gps.NewLogger("replica")

// runReplica is the stateless read-replica mode: subscribe to an origin
// daemon's replication feed (-upstream = the origin's -feed address),
// apply per-epoch deltas onto a local inventory, and serve the full /v1
// API — including /v1/watch — on -serve with responses byte-identical
// to the origin's. Nothing is persisted: a restart re-bootstraps from a
// full snapshot frame, and a replica that falls behind the origin's
// retained delta history re-bootstraps by itself. With -feed the
// replica re-exports the stream, so replicas chain into a fan-out tree.
func runReplica(f daemonFlags) int {
	gps.Tracing().SetProcess("replica")
	setProcessHealth(func(i *gps.HealthInfo) { i.Role = "replica" })
	rep := gps.NewReplicaServer(f.upstream, &gps.ReplicaOptions{
		FeedHistory: f.feedHistory,
		Logf: func(format string, args ...any) {
			replicaLog.Warnf(format, args...)
		},
	})

	lis, err := net.Listen("tcp", f.serve)
	if err != nil {
		replicaLog.Errorf("serve: %v", err)
		return 1
	}
	srv := gps.NewHTTPServer("",
		gps.NewInventoryServer(rep.Publisher()).
			EnableWatch(rep.Feed()).
			SetHealthSource(rep).
			Handler())
	go func() {
		if err := srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			replicaLog.Errorf("serve: %v", err)
		}
	}()
	replicaLog.Infof("replica of %s serving inventory API on http://%s/v1/",
		f.upstream, lis.Addr())

	var feedLis net.Listener
	feedDone := make(chan error, 1)
	if f.feedAddr != "" {
		if feedLis, err = net.Listen("tcp", f.feedAddr); err != nil {
			replicaLog.Errorf("feed: %v", err)
			return 1
		}
		go func() { feedDone <- gps.ServeInventoryFeed(feedLis, rep.Feed(), nil) }()
		replicaLog.Infof("re-exporting replication feed on %s", feedLis.Addr())
	}

	// Run applies the feed until signalled; it keeps serving the last
	// applied snapshot through any upstream outage, so the only exit is
	// ours.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		s := <-notifySignals()
		replicaLog.Infof("%v — draining and stopping cleanly", s)
		cancel()
	}()
	rep.Run(ctx)

	if feedLis != nil {
		feedLis.Close()
		if err := <-feedDone; err != nil {
			replicaLog.Errorf("feed: %v", err)
		}
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if srv.Shutdown(sctx) != nil {
		srv.Close()
	}
	replicaLog.Infof("replica done at epoch %d", rep.Epoch())
	return 0
}

// runWatch is the standalone change-feed consumer: follow a /v1/watch
// stream, fold every event into a local inventory with ApplyTo, and —
// proving the feed's central claim — persist an inventory byte-identical
// to the origin's -inventory artifact. With -epochs N it stops cleanly
// once epoch N is applied; otherwise it follows until signalled or the
// origin closes the stream.
func runWatch(f daemonFlags) int {
	gps.Tracing().SetProcess("watch")
	inv := make(map[gps.ServiceKey]*gps.KnownService)
	last := -1

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		s := <-notifySignals()
		replicaLog.Infof("%v — stopping cleanly", s)
		cancel()
	}()

	wc := &gps.WatchClient{URL: f.watchURL, Since: -1}
	err := wc.Follow(ctx, func(ev gps.WatchEvent) error {
		if err := ev.ApplyTo(inv); err != nil {
			return err
		}
		last = ev.Epoch
		replicaLog.Infof("watch: %s to epoch %d (%d services)", ev.Event, ev.Epoch, len(inv))
		if f.epochs > 0 && ev.Epoch >= f.epochs {
			return gps.ErrWatchDone
		}
		return nil
	})
	if err != nil && ctx.Err() == nil {
		replicaLog.Errorf("%v", err)
		return 1
	}
	if f.inventory != "" {
		if err := writeInventoryFile(f.inventory, inv); err != nil {
			replicaLog.Errorf("inventory: %v", err)
			return 1
		}
	}
	replicaLog.Infof("watch done at epoch %d; %d services held", last, len(inv))
	return 0
}
