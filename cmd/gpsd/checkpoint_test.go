package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gps"
)

// testStates builds a small two-shard coordinator state worth
// checkpointing.
func testStates(t *testing.T, shards int) []*gps.ContinuousState {
	t.Helper()
	u := gps.GenerateUniverse(gps.SmallUniverseParams(3))
	seedSet := gps.CollectSeed(u, 0.05, 3^0x5eed)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	cfg := gps.ShardConfig{
		Shards:     shards,
		Continuous: gps.ContinuousConfig{Pipeline: gps.Config{Workers: 1, Seed: 3}},
	}
	coord := gps.NewShardCoordinator(seedSet, cfg)
	if _, err := coord.Epoch(gps.ApplyChurn(u, gps.DefaultChurn(4))); err != nil {
		t.Fatal(err)
	}
	return coord.States()
}

func testWorldID(shards int) worldID {
	return worldID{Seed: 3, Prefixes: 16, Density: 0.03, Shards: shards}
}

func TestCheckpointRoundtrip(t *testing.T) {
	states := testStates(t, 2)
	path := filepath.Join(t.TempDir(), "gpsd.ckpt")
	world := testWorldID(2)
	if err := saveCheckpoint(path, world, states); err != nil {
		t.Fatal(err)
	}
	got, err := loadCheckpoint(path, world)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(states) {
		t.Fatalf("loaded %d shard states; want %d", len(got), len(states))
	}
	for i := range got {
		if got[i].Epoch != states[i].Epoch || len(got[i].Known) != len(states[i].Known) {
			t.Errorf("shard %d: epoch %d/%d known %d/%d",
				i, got[i].Epoch, states[i].Epoch, len(got[i].Known), len(states[i].Known))
		}
	}
	// No leftover temp files after a successful save.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d files; want 1", len(entries))
	}
}

func TestCheckpointMissingIsFreshStart(t *testing.T) {
	_, err := loadCheckpoint(filepath.Join(t.TempDir(), "absent"), testWorldID(1))
	if !errors.Is(err, errNoCheckpoint) {
		t.Errorf("missing checkpoint returned %v; want errNoCheckpoint", err)
	}
}

func TestCheckpointWorldMismatch(t *testing.T) {
	states := testStates(t, 2)
	path := filepath.Join(t.TempDir(), "gpsd.ckpt")
	if err := saveCheckpoint(path, testWorldID(2), states); err != nil {
		t.Fatal(err)
	}
	for _, want := range []worldID{
		{Seed: 4, Prefixes: 16, Density: 0.03, Shards: 2},  // different universe
		{Seed: 3, Prefixes: 16, Density: 0.03, Shards: 3},  // different shard layout
		{Seed: 3, Prefixes: 32, Density: 0.03, Shards: 2},  // different space
		{Seed: 3, Prefixes: 16, Density: 0.025, Shards: 2}, // different density
	} {
		if _, err := loadCheckpoint(path, want); err == nil || errors.Is(err, errNoCheckpoint) {
			t.Errorf("world %+v accepted a checkpoint for %+v", want, testWorldID(2))
		}
	}
}

// TestCheckpointTornWrite is the regression test for the fsync-before-
// rename fix: a checkpoint truncated at any point — the state a crash
// mid-write used to leave under the final name — must fail loudly rather
// than resume from partial state.
func TestCheckpointTornWrite(t *testing.T) {
	states := testStates(t, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "gpsd.ckpt")
	world := testWorldID(2)
	if err := saveCheckpoint(path, world, states); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 2, len(world.header()) - 1, len(world.header()) + 3, len(data) / 2, len(data) - 1} {
		torn := filepath.Join(dir, "torn.ckpt")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadCheckpoint(torn, world); err == nil || errors.Is(err, errNoCheckpoint) {
			t.Errorf("checkpoint truncated to %d of %d bytes loaded without error", cut, len(data))
		}
	}
}

// TestCheckpointStaleTmpIgnored models a crash between writing the temp
// file and renaming it: the abandoned temp file must not shadow or
// corrupt the last good checkpoint.
func TestCheckpointStaleTmpIgnored(t *testing.T) {
	states := testStates(t, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "gpsd.ckpt")
	world := testWorldID(1)
	if err := saveCheckpoint(path, world, states); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp12345", []byte("torn partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadCheckpoint(path, world)
	if err != nil {
		t.Fatalf("good checkpoint unreadable next to stale tmp: %v", err)
	}
	if len(got) != 1 || got[0].Epoch != states[0].Epoch {
		t.Error("stale tmp file corrupted the resumed state")
	}
}
