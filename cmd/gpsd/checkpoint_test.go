package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gps"
)

// testStates builds a small two-shard coordinator state worth
// checkpointing.
func testStates(t *testing.T, shards int) []*gps.ContinuousState {
	t.Helper()
	u := gps.GenerateUniverse(gps.SmallUniverseParams(3))
	seedSet := gps.CollectSeed(u, 0.05, 3^0x5eed)
	seedSet = seedSet.FilterPorts(seedSet.EligiblePorts(2))
	cfg := gps.ShardConfig{
		Shards:     shards,
		Continuous: gps.ContinuousConfig{Pipeline: gps.Config{Workers: 1, Seed: 3}},
	}
	coord := gps.NewShardCoordinator(seedSet, cfg)
	if _, err := coord.Epoch(gps.ApplyChurn(u, gps.DefaultChurn(4))); err != nil {
		t.Fatal(err)
	}
	return coord.States()
}

func testWorldID(shards int) worldID {
	return worldID{Seed: 3, Prefixes: 16, Density: 0.03, Shards: shards}
}

func TestCheckpointRoundtrip(t *testing.T) {
	states := testStates(t, 2)
	path := filepath.Join(t.TempDir(), "gpsd.ckpt")
	world := testWorldID(2)
	topo := topology{Workers: 3, Assign: []int{0, 2}}
	if err := saveCheckpoint(path, world, topo, states); err != nil {
		t.Fatal(err)
	}
	got, gotTopo, err := loadCheckpoint(path, world)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(states) {
		t.Fatalf("loaded %d shard states; want %d", len(got), len(states))
	}
	for i := range got {
		if got[i].Epoch != states[i].Epoch || len(got[i].Known) != len(states[i].Known) {
			t.Errorf("shard %d: epoch %d/%d known %d/%d",
				i, got[i].Epoch, states[i].Epoch, len(got[i].Known), len(states[i].Known))
		}
	}
	if gotTopo.Workers != topo.Workers || len(gotTopo.Assign) != 2 ||
		gotTopo.Assign[0] != 0 || gotTopo.Assign[1] != 2 {
		t.Errorf("topology did not round-trip: %+v", gotTopo)
	}
	// No leftover temp files after a successful save.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d files; want 1", len(entries))
	}
}

// An in-process checkpoint records no workers; every shard is unassigned
// and stays that way through a load.
func TestCheckpointLocalTopology(t *testing.T) {
	states := testStates(t, 2)
	path := filepath.Join(t.TempDir(), "gpsd.ckpt")
	world := testWorldID(2)
	if err := saveCheckpoint(path, world, localTopology(2), states); err != nil {
		t.Fatal(err)
	}
	_, topo, err := loadCheckpoint(path, world)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Workers != 0 || topo.Assign[0] != -1 || topo.Assign[1] != -1 {
		t.Errorf("local topology did not round-trip: %+v", topo)
	}
}

func TestCheckpointMissingIsFreshStart(t *testing.T) {
	_, _, err := loadCheckpoint(filepath.Join(t.TempDir(), "absent"), testWorldID(1))
	if !errors.Is(err, errNoCheckpoint) {
		t.Errorf("missing checkpoint returned %v; want errNoCheckpoint", err)
	}
}

func TestCheckpointWorldMismatch(t *testing.T) {
	states := testStates(t, 2)
	path := filepath.Join(t.TempDir(), "gpsd.ckpt")
	if err := saveCheckpoint(path, testWorldID(2), localTopology(2), states); err != nil {
		t.Fatal(err)
	}
	for _, want := range []worldID{
		{Seed: 4, Prefixes: 16, Density: 0.03, Shards: 2},  // different universe
		{Seed: 3, Prefixes: 16, Density: 0.03, Shards: 3},  // different shard layout
		{Seed: 3, Prefixes: 32, Density: 0.03, Shards: 2},  // different space
		{Seed: 3, Prefixes: 16, Density: 0.025, Shards: 2}, // different density
	} {
		if _, _, err := loadCheckpoint(path, want); err == nil || errors.Is(err, errNoCheckpoint) {
			t.Errorf("world %+v accepted a checkpoint for %+v", want, testWorldID(2))
		}
	}
}

// A checkpoint in an older format must name both the magic it found and
// the magic this binary expects, so stale-format failures are
// self-diagnosing.
func TestCheckpointStaleMagicHint(t *testing.T) {
	dir := t.TempDir()
	for _, stale := range []string{"GPSD", "GPS2", "GPS3"} {
		path := filepath.Join(dir, stale+".ckpt")
		data := append([]byte(stale), make([]byte, 64)...)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := loadCheckpoint(path, testWorldID(1))
		if err == nil {
			t.Fatalf("stale %s checkpoint loaded without error", stale)
		}
		if !strings.Contains(err.Error(), stale) || !strings.Contains(err.Error(), checkpointMagic) {
			t.Errorf("stale-format error %q does not name found magic %q and expected magic %q",
				err, stale, checkpointMagic)
		}
	}

	// Garbage that was never a gpsd checkpoint still names the expected
	// magic.
	path := filepath.Join(dir, "garbage")
	if err := os.WriteFile(path, append([]byte("ELF\x7f"), make([]byte, 64)...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := loadCheckpoint(path, testWorldID(1))
	if err == nil || !strings.Contains(err.Error(), checkpointMagic) {
		t.Errorf("garbage-file error %q does not name expected magic %q", err, checkpointMagic)
	}
}

// TestCheckpointTornWrite is the regression test for the fsync-before-
// rename fix: a checkpoint truncated at any point — the state a crash
// mid-write used to leave under the final name — must fail loudly rather
// than resume from partial state.
func TestCheckpointTornWrite(t *testing.T) {
	states := testStates(t, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "gpsd.ckpt")
	world := testWorldID(2)
	if err := saveCheckpoint(path, world, localTopology(2), states); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr := len(world.header())
	for _, cut := range []int{0, 2, hdr - 1, hdr + 3, hdr + 9, len(data) / 2, len(data) - 1} {
		torn := filepath.Join(dir, "torn.ckpt")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loadCheckpoint(torn, world); err == nil || errors.Is(err, errNoCheckpoint) {
			t.Errorf("checkpoint truncated to %d of %d bytes loaded without error", cut, len(data))
		}
	}
}

// TestCheckpointStaleTmpIgnored models a crash between writing the temp
// file and renaming it: the abandoned temp file must not shadow or
// corrupt the last good checkpoint.
func TestCheckpointStaleTmpIgnored(t *testing.T) {
	states := testStates(t, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "gpsd.ckpt")
	world := testWorldID(1)
	if err := saveCheckpoint(path, world, localTopology(1), states); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp12345", []byte("torn partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := loadCheckpoint(path, world)
	if err != nil {
		t.Fatalf("good checkpoint unreadable next to stale tmp: %v", err)
	}
	if len(got) != 1 || got[0].Epoch != states[0].Epoch {
		t.Error("stale tmp file corrupted the resumed state")
	}
}

// TestRebalanceCheckpointRoundTrip drives the -rebalance machinery at the
// file level: split doubles the recorded shard count, join restores it,
// and the final bytes equal the original — the "no rescan" contract.
func TestRebalanceCheckpointRoundTrip(t *testing.T) {
	states := testStates(t, 2)
	path := filepath.Join(t.TempDir(), "gpsd.ckpt")
	world := testWorldID(2)
	topo := topology{Workers: 2, Assign: []int{0, 1}}
	if err := saveCheckpoint(path, world, topo, states); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	f := daemonFlags{checkpoint: path, rebalance: "split"}
	if code := runRebalance(f); code != 0 {
		t.Fatalf("split exited %d", code)
	}
	w2, topo2, split, err := readCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Shards != 4 || len(split) != 4 {
		t.Fatalf("split checkpoint holds %d shards (header %d); want 4", len(split), w2.Shards)
	}
	// Successors inherit the parent's worker.
	if topo2.Assign[0] != 0 || topo2.Assign[1] != 1 || topo2.Assign[2] != 0 || topo2.Assign[3] != 1 {
		t.Errorf("split topology = %+v; successors should keep the parent's worker", topo2)
	}

	f.rebalance = "join"
	if code := runRebalance(f); code != 0 {
		t.Fatalf("join exited %d", code)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("split+join did not round-trip the checkpoint file byte-identically")
	}
}
