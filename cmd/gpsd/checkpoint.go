package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"gps"
)

// worldID pins a checkpoint to the flags that generated its universe and
// its shard layout. Resuming is only meaningful against the exact same
// deterministic world split the same way: a universe mismatch would
// silently evict the whole inventory against a world it never scanned, and
// a shard-count mismatch would strand hosts in partitions nothing scans.
//
// The same 36 bytes double as the transport's world spec: the coordinator
// broadcasts header() to its workers, which rebuild the identical universe
// from it (parseWorldHeader).
type worldID struct {
	Seed     int64
	Prefixes int
	Density  float64
	Shards   int
}

// checkpointMagic versions the daemon's checkpoint preamble. "GPSD" was
// the original single-runner format; "GPS2" added the shard count and the
// multi-state body; "GPS3" added the worker-topology record for
// distributed runs.
const checkpointMagic = "GPS3"

// magicHints names the checkpoint formats gpsd has ever written, so a
// stale-format failure is self-diagnosing.
var magicHints = map[string]string{
	"GPSD": "the pre-shard single-runner format",
	"GPS2": "the sharded format without the worker-topology record",
}

// header renders the fixed-size checkpoint preamble gpsd writes before
// the topology record and the per-shard states.
func (w worldID) header() []byte {
	buf := make([]byte, 4+8+8+8+8)
	copy(buf, checkpointMagic)
	binary.BigEndian.PutUint64(buf[4:], uint64(w.Seed))
	binary.BigEndian.PutUint64(buf[12:], uint64(w.Prefixes))
	binary.BigEndian.PutUint64(buf[20:], math.Float64bits(w.Density))
	binary.BigEndian.PutUint64(buf[28:], uint64(w.Shards))
	return buf
}

// parseWorldHeader decodes header() output, reporting the found-vs-
// expected magic when the bytes are from another (or no) gpsd format.
func parseWorldHeader(hdr []byte) (worldID, error) {
	var w worldID
	if len(hdr) != 36 {
		return w, fmt.Errorf("world header is %d bytes, want 36", len(hdr))
	}
	if got := string(hdr[:4]); got != checkpointMagic {
		if hint, ok := magicHints[got]; ok {
			return w, fmt.Errorf("found magic %q (%s), want %q; this checkpoint predates the current format and cannot be resumed — start fresh or keep the old binary", got, hint, checkpointMagic)
		}
		return w, fmt.Errorf("found magic %q, want %q (%q/%q are older gpsd formats; anything else is not a gpsd checkpoint)",
			got, checkpointMagic, "GPSD", "GPS2")
	}
	w.Seed = int64(binary.BigEndian.Uint64(hdr[4:]))
	w.Prefixes = int(binary.BigEndian.Uint64(hdr[12:]))
	w.Density = math.Float64frombits(binary.BigEndian.Uint64(hdr[20:]))
	w.Shards = int(binary.BigEndian.Uint64(hdr[28:]))
	return w, nil
}

// topology records which worker owned each shard when the checkpoint was
// written: the worker-fleet size plus one worker index per shard, with -1
// marking a shard not assigned to any worker (an in-process run, or a
// freshly re-balanced layout). Purely advisory on resume — the
// coordinator re-homes shards round-robin over whatever fleet it dials —
// but it makes checkpoints self-describing and survives split/join.
type topology struct {
	Workers int
	Assign  []int
}

// localTopology is the in-process daemon's topology: no workers.
func localTopology(shards int) topology {
	t := topology{Assign: make([]int, shards)}
	for i := range t.Assign {
		t.Assign[i] = -1
	}
	return t
}

const unassigned = ^uint32(0)

// encode renders the topology record; the shard count comes from the
// world header, so only the worker count and assignments are written.
func (t topology) encode() []byte {
	buf := make([]byte, 4+4*len(t.Assign))
	binary.BigEndian.PutUint32(buf, uint32(t.Workers))
	for i, w := range t.Assign {
		v := unassigned
		if w >= 0 {
			v = uint32(w)
		}
		binary.BigEndian.PutUint32(buf[4+4*i:], v)
	}
	return buf
}

func readTopology(r io.Reader, shards int) (topology, error) {
	buf := make([]byte, 4+4*shards)
	if _, err := io.ReadFull(r, buf); err != nil {
		return topology{}, fmt.Errorf("reading topology record: %w", err)
	}
	t := topology{Workers: int(binary.BigEndian.Uint32(buf)), Assign: make([]int, shards)}
	for i := range t.Assign {
		v := binary.BigEndian.Uint32(buf[4+4*i:])
		if v == unassigned {
			t.Assign[i] = -1
		} else {
			t.Assign[i] = int(v)
		}
	}
	return t, nil
}

// errNoCheckpoint distinguishes "no file yet" (fresh start) from a
// corrupt or mismatched checkpoint (fatal).
var errNoCheckpoint = os.ErrNotExist

// readCheckpointFile reads a checkpoint without validating the world —
// the re-balance subcommand operates on whatever layout the file holds.
// It returns errNoCheckpoint when the file does not exist.
func readCheckpointFile(path string) (worldID, topology, []*gps.ContinuousState, error) {
	var world worldID
	var topo topology
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return world, topo, nil, errNoCheckpoint
		}
		return world, topo, nil, err
	}
	defer f.Close()
	hdr := make([]byte, 36)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return world, topo, nil, fmt.Errorf("corrupt checkpoint %s: %v", path, err)
	}
	if world, err = parseWorldHeader(hdr); err != nil {
		return world, topo, nil, fmt.Errorf("checkpoint %s: %v", path, err)
	}
	if world.Shards < 1 || world.Shards > 1<<16 {
		return world, topo, nil, fmt.Errorf("corrupt checkpoint %s: implausible shard count %d", path, world.Shards)
	}
	if topo, err = readTopology(f, world.Shards); err != nil {
		return world, topo, nil, fmt.Errorf("corrupt checkpoint %s: %v", path, err)
	}
	states, err := gps.ReadShardCheckpoint(f)
	if err != nil {
		return world, topo, nil, fmt.Errorf("corrupt checkpoint %s: %v", path, err)
	}
	if len(states) != world.Shards {
		return world, topo, nil, fmt.Errorf("checkpoint %s holds %d shard states; header says %d", path, len(states), world.Shards)
	}
	return world, topo, states, nil
}

// loadCheckpoint reads a checkpoint file and returns the per-shard
// states in shard order plus the recorded worker topology. It returns
// errNoCheckpoint when the file does not exist; any other error means the
// checkpoint is corrupt or was written for a different world and must not
// be silently discarded.
func loadCheckpoint(path string, want worldID) ([]*gps.ContinuousState, topology, error) {
	got, topo, states, err := readCheckpointFile(path)
	if err != nil {
		return nil, topo, err
	}
	if got != want {
		return nil, topo, fmt.Errorf(
			"checkpoint %s was written for -seed %d -prefixes %d -density %g -shards %d; current flags say -seed %d -prefixes %d -density %g -shards %d",
			path, got.Seed, got.Prefixes, got.Density, got.Shards,
			want.Seed, want.Prefixes, want.Density, want.Shards)
	}
	return states, topo, nil
}

// saveCheckpoint writes the topology and per-shard states to a temp file
// in the target directory, fsyncs it, and renames it into place. The
// fsync before the rename is what makes the sequence crash-safe: without
// it the rename can land while the data blocks are still dirty, and a
// crash at that moment leaves a truncated checkpoint under the final
// name. The directory is also synced (best effort) so the rename itself
// survives a crash.
func saveCheckpoint(path string, world worldID, topo topology, states []*gps.ContinuousState) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(world.header()); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(topo.encode()); err != nil {
		tmp.Close()
		return err
	}
	if err := gps.WriteShardCheckpoint(tmp, states); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		// Directory sync is best effort: not every filesystem supports
		// it, and the file itself is already durable.
		d.Sync()
		d.Close()
	}
	return nil
}
