package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"gps"
)

// worldID pins a checkpoint to the flags that generated its universe and
// its shard layout. Resuming is only meaningful against the exact same
// deterministic world split the same way: a universe mismatch would
// silently evict the whole inventory against a world it never scanned, and
// a shard-count mismatch would strand hosts in partitions nothing scans.
type worldID struct {
	Seed     int64
	Prefixes int
	Density  float64
	Shards   int
}

// checkpointMagic versions the daemon's checkpoint preamble. "GPS2"
// replaced "GPSD" when the shard count joined the world identity and the
// body moved to the sharded multi-state format.
const checkpointMagic = "GPS2"

// header renders the fixed-size checkpoint preamble gpsd writes before
// the per-shard states.
func (w worldID) header() []byte {
	buf := make([]byte, 4+8+8+8+8)
	copy(buf, checkpointMagic)
	binary.BigEndian.PutUint64(buf[4:], uint64(w.Seed))
	binary.BigEndian.PutUint64(buf[12:], uint64(w.Prefixes))
	binary.BigEndian.PutUint64(buf[20:], math.Float64bits(w.Density))
	binary.BigEndian.PutUint64(buf[28:], uint64(w.Shards))
	return buf
}

// errNoCheckpoint distinguishes "no file yet" (fresh start) from a
// corrupt or mismatched checkpoint (fatal).
var errNoCheckpoint = os.ErrNotExist

// loadCheckpoint reads a checkpoint file and returns the per-shard
// states in shard order. It returns errNoCheckpoint when the file does
// not exist; any other error means the checkpoint is corrupt or was
// written for a different world and must not be silently discarded.
func loadCheckpoint(path string, want worldID) ([]*gps.ContinuousState, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errNoCheckpoint
		}
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, len(want.header()))
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("corrupt checkpoint %s: %v", path, err)
	}
	if string(hdr[:4]) != checkpointMagic {
		return nil, fmt.Errorf("%s is not a gpsd checkpoint (or predates the %q format)", path, checkpointMagic)
	}
	got := worldID{
		Seed:     int64(binary.BigEndian.Uint64(hdr[4:])),
		Prefixes: int(binary.BigEndian.Uint64(hdr[12:])),
		Density:  math.Float64frombits(binary.BigEndian.Uint64(hdr[20:])),
		Shards:   int(binary.BigEndian.Uint64(hdr[28:])),
	}
	if got != want {
		return nil, fmt.Errorf(
			"checkpoint %s was written for -seed %d -prefixes %d -density %g -shards %d; current flags say -seed %d -prefixes %d -density %g -shards %d",
			path, got.Seed, got.Prefixes, got.Density, got.Shards,
			want.Seed, want.Prefixes, want.Density, want.Shards)
	}
	states, err := gps.ReadShardCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("corrupt checkpoint %s: %v", path, err)
	}
	if len(states) != want.Shards {
		return nil, fmt.Errorf("checkpoint %s holds %d shard states; header says %d", path, len(states), want.Shards)
	}
	return states, nil
}

// saveCheckpoint writes the per-shard states to a temp file in the target
// directory, fsyncs it, and renames it into place. The fsync before the
// rename is what makes the sequence crash-safe: without it the rename can
// land while the data blocks are still dirty, and a crash at that moment
// leaves a truncated checkpoint under the final name. The directory is
// also synced (best effort) so the rename itself survives a crash.
func saveCheckpoint(path string, world worldID, states []*gps.ContinuousState) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(world.header()); err != nil {
		tmp.Close()
		return err
	}
	if err := gps.WriteShardCheckpoint(tmp, states); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		// Directory sync is best effort: not every filesystem supports
		// it, and the file itself is already durable.
		d.Sync()
		d.Close()
	}
	return nil
}
