// Command gpsgen generates a synthetic IPv4 universe and describes it:
// host and service counts, the autonomous system layout, port population,
// and (optionally) service churn over the paper's 10-day window. Useful
// for inspecting the ground-truth substrate before running experiments.
//
// Usage:
//
//	gpsgen [-seed N] [-prefixes N] [-density F] [-vendors N] [-top N] [-churn]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gps/internal/dataset"
	"gps/internal/netmodel"
	"gps/internal/stats"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "generator seed")
		prefixes = flag.Int("prefixes", 16, "announced /16 blocks")
		density  = flag.Float64("density", 0.03, "host density")
		vendors  = flag.Int("vendors", 120, "generated vendor fleets")
		top      = flag.Int("top", 20, "top ports to list")
		churn    = flag.Bool("churn", false, "also simulate 10-day churn")
	)
	flag.Parse()

	p := netmodel.DefaultParams(*seed)
	p.NumPrefix16 = *prefixes
	p.NumASes = maxInt(4, *prefixes/2)
	p.HostDensity = *density
	p.NumVendorModels = *vendors
	u, err := netmodel.GenerateChecked(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpsgen: invalid universe flags:", err)
		os.Exit(2)
	}

	fmt.Printf("universe seed=%d\n", u.Seed())
	fmt.Printf("  address space: %d addresses across %d /16 blocks\n", u.SpaceSize(), len(u.Prefixes()))
	fmt.Printf("  hosts:         %d (%.2f%% density)\n", u.NumHosts(),
		100*float64(u.NumHosts())/float64(u.SpaceSize()))
	fmt.Printf("  services:      %d (including pseudo blocks)\n", u.NumServices())

	fmt.Printf("\nautonomous systems:\n")
	for _, as := range u.ASes() {
		fmt.Printf("  %-8s %-12s %2d /16s\n", as.Num, as.Type, len(as.Prefixes))
	}

	pop := u.PortPopulation()
	type pc struct {
		port  int
		count int
	}
	var ports []pc
	openPorts := 0
	for port, c := range pop {
		if c > 0 {
			openPorts++
			ports = append(ports, pc{port, c})
		}
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i].count > ports[j].count })
	fmt.Printf("\nport population: %d distinct open ports\n", openPorts)
	n := minInt(*top, len(ports))
	for i := 0; i < n; i++ {
		fmt.Printf("  %5d: %d hosts\n", ports[i].port, ports[i].count)
	}

	fit := stats.FitZipf(pop)
	subnetCounts := make(map[uint32]float64)
	for _, h := range u.Hosts() {
		subnetCounts[uint32(h.IP)&0xfffff000]++ // per /20 pool
	}
	var subnetVals []float64
	for _, v := range subnetCounts {
		subnetVals = append(subnetVals, v)
	}
	fmt.Printf("\nstructure (the properties GPS exploits, per §4):\n")
	fmt.Printf("  port popularity: Zipf alpha %.2f (R2 %.2f), top-10 ports hold %.1f%% of services\n",
		fit.Alpha, fit.R2, 100*stats.TopShare(pop, 10))
	fmt.Printf("  subnet concentration: Gini %.2f across %d occupied /20 pools\n",
		stats.Gini(subnetVals), len(subnetVals))

	full := dataset.SnapshotCensys(u, 2000)
	fmt.Printf("\nfiltered (real-service) snapshot: %d services on %d ports\n",
		full.NumServices(), len(full.Ports))

	if *churn {
		after := netmodel.Churn(u, netmodel.DefaultChurn(*seed^0x10))
		lost := 0
		for _, h := range u.Hosts() {
			for port := range h.Services() {
				if !after.Responsive(h.IP, port) {
					lost++
				}
			}
		}
		fmt.Printf("\nafter 10-day churn: %d hosts remain, %d services lost\n",
			after.NumHosts(), lost)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
