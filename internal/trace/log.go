package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Structured logging that joins log lines to the flight recorder:
// every line carries component/shard/... fields plus the trace id of
// the epoch in flight (Tracer.CurrentTrace), so a slow line in the log
// can be looked up as a waterfall in /v1/tracez.
//
// Routing contract (pinned by a cmd/gpsd test): Debug and Info go to
// the stdout writer, Warn and Error to the stderr writer. Text mode
// emits logfmt-style key=value lines; SetLogJSON(true) switches every
// line to a single JSON object.

// Level is a log severity.
type Level int8

// Severity levels, in increasing order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name used in the level= field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

var (
	logMu   sync.Mutex
	logJSON bool
	logOut  io.Writer = os.Stdout
	logErr  io.Writer = os.Stderr
)

// SetLogJSON switches all loggers between logfmt text (false) and
// one-JSON-object-per-line (true).
func SetLogJSON(on bool) {
	logMu.Lock()
	logJSON = on
	logMu.Unlock()
}

// SetLogOutput redirects the process-wide log destinations: out
// receives Debug/Info lines, errw receives Warn/Error lines. A nil
// writer leaves that destination unchanged. Returns the previous pair
// so tests can restore it.
func SetLogOutput(out, errw io.Writer) (prevOut, prevErr io.Writer) {
	logMu.Lock()
	prevOut, prevErr = logOut, logErr
	if out != nil {
		logOut = out
	}
	if errw != nil {
		logErr = errw
	}
	logMu.Unlock()
	return prevOut, prevErr
}

// Logger emits leveled structured lines tagged with a component and a
// fixed field set. Loggers are cheap values; derive per-subsystem ones
// with With.
type Logger struct {
	component string
	fields    []Attr
	out, err  io.Writer // optional per-logger override (tests, parseArgs)
	tr        *Tracer
}

// NewLogger builds a logger for one component ("gpsd", "transport",
// "cluster", ...) with optional fixed fields.
func NewLogger(component string, fields ...Attr) *Logger {
	return &Logger{component: component, fields: fields, tr: Default}
}

// With returns a copy carrying extra fixed fields (e.g. shard=3).
func (l *Logger) With(fields ...Attr) *Logger {
	cp := *l
	cp.fields = append(append([]Attr(nil), l.fields...), fields...)
	return &cp
}

// Output returns a copy writing to the given writers instead of the
// process-wide destinations. A nil writer keeps the process-wide one.
func (l *Logger) Output(out, errw io.Writer) *Logger {
	cp := *l
	cp.out, cp.err = out, errw
	return &cp
}

// Debugf logs at debug level (stdout writer).
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level (stdout writer).
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level (stderr writer).
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level (stderr writer).
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// Log emits a message with per-line fields appended after the fixed
// ones.
func (l *Logger) Log(level Level, msg string, fields ...Attr) {
	l.emit(level, msg, fields)
}

func (l *Logger) logf(level Level, format string, args ...any) {
	l.emit(level, fmt.Sprintf(format, args...), nil)
}

// TraceID returns the current trace id formatted for a trace= field,
// or "" when no trace is in flight.
func TraceID(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}

func (l *Logger) emit(level Level, msg string, extra []Attr) {
	tr := l.tr
	if tr == nil {
		tr = Default
	}
	traceID := TraceID(tr.CurrentTrace())
	now := time.Now().UTC().Format(time.RFC3339Nano)

	logMu.Lock()
	defer logMu.Unlock()
	w := logOut
	if level >= LevelWarn {
		w = logErr
	}
	if level >= LevelWarn && l.err != nil {
		w = l.err
	} else if level < LevelWarn && l.out != nil {
		w = l.out
	}
	if w == nil {
		return
	}
	if logJSON {
		obj := make(map[string]any, len(l.fields)+len(extra)+5)
		for _, a := range l.fields {
			obj[a.Key] = a.Value
		}
		for _, a := range extra {
			obj[a.Key] = a.Value
		}
		obj["ts"] = now
		obj["level"] = level.String()
		obj["component"] = l.component
		if traceID != "" {
			obj["trace"] = traceID
		}
		obj["msg"] = msg
		line, err := json.Marshal(obj)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "%s\n", line)
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(now)
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" component=")
	b.WriteString(l.component)
	if traceID != "" {
		b.WriteString(" trace=")
		b.WriteString(traceID)
	}
	for _, a := range l.fields {
		writeField(&b, a)
	}
	for _, a := range extra {
		writeField(&b, a)
	}
	b.WriteString(" msg=")
	writeValue(&b, msg)
	b.WriteByte('\n')
	io.WriteString(w, b.String())
}

func writeField(b *strings.Builder, a Attr) {
	b.WriteByte(' ')
	b.WriteString(a.Key)
	b.WriteByte('=')
	writeValue(b, a.Value)
}

func writeValue(b *strings.Builder, v string) {
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		fmt.Fprintf(b, "%q", v)
		return
	}
	b.WriteString(v)
}
