package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"
)

// HTTP exposition: /v1/tracez renders the flight recorder (JSON by
// default, ?trace=ID for one stitched tree, ?format=text for a
// human-readable waterfall), and /v1/debugz bundles everything a bug
// report needs — build info, metrics, cluster doc, recent traces — as
// one NDJSON download.

// tracezNode is one span in a /v1/tracez?trace=ID tree.
type tracezNode struct {
	Span       string            `json:"span"`
	Parent     string            `json:"parent,omitempty"`
	Name       string            `json:"name"`
	Proc       string            `json:"proc,omitempty"`
	StartMS    float64           `json:"start_ms"` // offset from trace start
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*tracezNode     `json:"children,omitempty"`
}

type tracezSummary struct {
	Trace      string  `json:"trace"`
	Root       string  `json:"root,omitempty"`
	Proc       string  `json:"proc,omitempty"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
}

// Handler serves the tracer's flight recorder. GET/HEAD only.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		text := q.Get("format") == "text"
		if id := q.Get("trace"); id != "" {
			tid, err := strconv.ParseUint(id, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (expect hex)", http.StatusBadRequest)
				return
			}
			spans := t.TraceSpans(tid)
			if len(spans) == 0 {
				http.Error(w, "trace not found (evicted or never recorded)", http.StatusNotFound)
				return
			}
			if text {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				writeWaterfall(w, tid, spans)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			roots, start, dur := buildTree(spans)
			json.NewEncoder(w).Encode(map[string]any{
				"trace":       TraceID(tid),
				"start":       start.UTC().Format(time.RFC3339Nano),
				"duration_ms": durMS(dur),
				"span_count":  len(spans),
				"spans":       roots,
			})
			return
		}
		limit := 64
		if s := q.Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				limit = n
			}
		}
		sums := t.Summaries(limit)
		if text {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "tracez: %d recent traces (newest first); ?trace=ID&format=text for a waterfall\n", len(sums))
			for _, s := range sums {
				fmt.Fprintf(w, "%s  %-24s %9.2fms  %3d spans  %s\n",
					TraceID(s.TraceID), s.Root, durMS(s.Duration), s.Spans,
					s.Start.UTC().Format(time.RFC3339))
			}
			return
		}
		out := make([]tracezSummary, 0, len(sums))
		for _, s := range sums {
			out = append(out, tracezSummary{
				Trace:      TraceID(s.TraceID),
				Root:       s.Root,
				Proc:       s.Proc,
				Start:      s.Start.UTC().Format(time.RFC3339Nano),
				DurationMS: durMS(s.Duration),
				Spans:      s.Spans,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"traces": out})
	})
}

// Handler serves the Default tracer's flight recorder.
func Handler() http.Handler { return Default.Handler() }

func durMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// buildTree assembles flat records into parent→child trees. Spans
// whose parent is missing (evicted, or remote and never shipped) are
// promoted to roots so nothing recorded is hidden.
func buildTree(spans []SpanRecord) (roots []*tracezNode, start time.Time, total time.Duration) {
	start = spans[0].Start
	for _, s := range spans {
		if s.Start.Before(start) {
			start = s.Start
		}
	}
	var end time.Time
	nodes := make(map[uint64]*tracezNode, len(spans))
	for _, s := range spans {
		n := &tracezNode{
			Span:       fmt.Sprintf("%016x", s.SpanID),
			Name:       s.Name,
			Proc:       s.Proc,
			StartMS:    durMS(s.Start.Sub(start)),
			DurationMS: durMS(s.Duration),
		}
		if s.Parent != 0 {
			n.Parent = fmt.Sprintf("%016x", s.Parent)
		}
		if len(s.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[s.SpanID] = n
		if e := s.Start.Add(s.Duration); e.After(end) {
			end = e
		}
	}
	for _, s := range spans {
		n := nodes[s.SpanID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].StartMS < n.Children[j].StartMS })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].StartMS < roots[j].StartMS })
	return roots, start, end.Sub(start)
}

// writeWaterfall renders one trace as an indented text waterfall with
// a proportional time bar per span.
func writeWaterfall(w io.Writer, tid uint64, spans []SpanRecord) {
	roots, start, total := buildTree(spans)
	fmt.Fprintf(w, "trace %s  start=%s  duration=%.2fms  spans=%d\n",
		TraceID(tid), start.UTC().Format(time.RFC3339Nano), durMS(total), len(spans))
	const barWidth = 32
	totalMS := durMS(total)
	if totalMS <= 0 {
		totalMS = 1e-6
	}
	var walk func(n *tracezNode, depth int)
	walk = func(n *tracezNode, depth int) {
		lead := int(float64(barWidth) * n.StartMS / totalMS)
		fill := int(float64(barWidth) * n.DurationMS / totalMS)
		if fill < 1 {
			fill = 1
		}
		if lead+fill > barWidth {
			fill = barWidth - lead
			if fill < 1 {
				lead, fill = barWidth-1, 1
			}
		}
		bar := strings.Repeat(".", lead) + strings.Repeat("#", fill) +
			strings.Repeat(".", barWidth-lead-fill)
		label := strings.Repeat("  ", depth) + n.Name
		attrs := make([]string, 0, len(n.Attrs))
		for k, v := range n.Attrs {
			attrs = append(attrs, k+"="+v)
		}
		sort.Strings(attrs)
		tag := strings.Join(attrs, " ")
		if n.Proc != "" {
			tag = strings.TrimSpace("[" + n.Proc + "] " + tag)
		}
		fmt.Fprintf(w, "%10.3fms  [%s]  %-32s %9.3fms  %s\n",
			n.StartMS, bar, label, n.DurationMS, tag)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// DebugzOptions names the sections a /v1/debugz bundle snapshots.
// Every field is optional; absent sections are skipped rather than
// erroring, so the same handler serves every gpsd mode.
type DebugzOptions struct {
	Tracer      *Tracer                 // defaults to Default
	Metrics     func(w io.Writer) error // Prometheus text exposition
	Cluster     func() (any, bool)      // cluster doc, ok=false when not clustered
	TraceLimit  int                     // recent traces to include (default 32)
	ExtraBuild  map[string]string       // caller-supplied build facts (mode, version)
	HealthState func() (string, bool)   // optional health status string
}

// DebugzHandler serves the one-request bug-report bundle: NDJSON, one
// JSON object per line, each tagged with a "section" field.
func DebugzHandler(opts DebugzOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		tr := opts.Tracer
		if tr == nil {
			tr = Default
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Content-Disposition", `attachment; filename="gps-debugz.ndjson"`)
		enc := json.NewEncoder(w)

		build := map[string]any{
			"section":    "build",
			"go":         runtime.Version(),
			"os":         runtime.GOOS,
			"arch":       runtime.GOARCH,
			"pid":        os.Getpid(),
			"goroutines": runtime.NumGoroutine(),
			"proc":       tr.Process(),
			"captured":   time.Now().UTC().Format(time.RFC3339Nano),
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			build["module"] = bi.Main.Path
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					build["revision"] = s.Value
				}
			}
		}
		for k, v := range opts.ExtraBuild {
			build[k] = v
		}
		enc.Encode(build)

		if opts.HealthState != nil {
			if status, ok := opts.HealthState(); ok {
				enc.Encode(map[string]any{"section": "health", "status": status})
			}
		}
		if opts.Metrics != nil {
			var sb strings.Builder
			if err := opts.Metrics(&sb); err == nil {
				enc.Encode(map[string]any{"section": "metrics", "prometheus": sb.String()})
			} else {
				enc.Encode(map[string]any{"section": "metrics", "error": err.Error()})
			}
		}
		if opts.Cluster != nil {
			if doc, ok := opts.Cluster(); ok {
				enc.Encode(map[string]any{"section": "cluster", "doc": doc})
			}
		}
		limit := opts.TraceLimit
		if limit <= 0 {
			limit = 32
		}
		for _, s := range tr.Summaries(limit) {
			roots, start, dur := buildTree(tr.TraceSpans(s.TraceID))
			enc.Encode(map[string]any{
				"section":     "trace",
				"trace":       TraceID(s.TraceID),
				"root":        s.Root,
				"start":       start.UTC().Format(time.RFC3339Nano),
				"duration_ms": durMS(dur),
				"span_count":  s.Spans,
				"spans":       roots,
			})
		}
	})
}
