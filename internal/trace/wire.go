package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Wire encoding for trace context and span batches. These ride as
// OPTIONAL TRAILING FIELDS on existing GPST frames: the transport's
// decoders never require payload exhaustion, so a v2 peer built before
// tracing simply ignores the extra bytes, and a new peer treats their
// absence as "no trace". Nothing here bumps the wire version.

// ErrBadSpanBatch reports a span batch that failed to decode.
var ErrBadSpanBatch = errors.New("trace: malformed span batch")

// AppendContext appends a span context to buf as two uvarints
// (trace id, span id). Appending the zero context is allowed and
// decodes back to zero.
func AppendContext(buf []byte, ctx SpanContext) []byte {
	buf = binary.AppendUvarint(buf, ctx.TraceID)
	return binary.AppendUvarint(buf, ctx.SpanID)
}

// ReadContext decodes a span context produced by AppendContext from
// the front of buf, returning the remainder. A short or corrupt buffer
// yields the zero context — trace context is best-effort metadata and
// must never fail a frame.
func ReadContext(buf []byte) (SpanContext, []byte) {
	tid, n := binary.Uvarint(buf)
	if n <= 0 {
		return SpanContext{}, nil
	}
	buf = buf[n:]
	sid, n := binary.Uvarint(buf)
	if n <= 0 {
		return SpanContext{}, nil
	}
	return SpanContext{TraceID: tid, SpanID: sid}, buf[n:]
}

// maxWireSpans bounds a decoded batch so a corrupt length prefix
// cannot balloon allocation. An epoch ships ~1 span per phase per
// shard; 4096 is orders of magnitude above any honest batch.
const maxWireSpans = 4096

const maxWireString = 1 << 16

// EncodeSpans serializes a span batch for shipping across the wire
// (worker → coordinator on an epoch result). Returns nil for an empty
// batch so callers can gate the optional field on len() != 0.
func EncodeSpans(recs []SpanRecord) []byte {
	if len(recs) == 0 {
		return nil
	}
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(recs)))
	for _, r := range recs {
		b = binary.AppendUvarint(b, r.TraceID)
		b = binary.AppendUvarint(b, r.SpanID)
		b = binary.AppendUvarint(b, r.Parent)
		b = appendWireString(b, r.Name)
		b = appendWireString(b, r.Proc)
		b = binary.AppendVarint(b, r.Start.UnixNano())
		b = binary.AppendUvarint(b, uint64(r.Duration))
		b = binary.AppendUvarint(b, uint64(len(r.Attrs)))
		for _, a := range r.Attrs {
			b = appendWireString(b, a.Key)
			b = appendWireString(b, a.Value)
		}
	}
	return b
}

// DecodeSpans parses a batch produced by EncodeSpans.
func DecodeSpans(buf []byte) ([]SpanRecord, error) {
	r := bytes.NewReader(buf)
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadSpanBatch, err)
	}
	if n > maxWireSpans {
		return nil, fmt.Errorf("%w: %d spans exceeds limit %d", ErrBadSpanBatch, n, maxWireSpans)
	}
	recs := make([]SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var rec SpanRecord
		if rec.TraceID, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("%w: span %d trace id", ErrBadSpanBatch, i)
		}
		if rec.SpanID, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("%w: span %d span id", ErrBadSpanBatch, i)
		}
		if rec.Parent, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("%w: span %d parent", ErrBadSpanBatch, i)
		}
		if rec.Name, err = readWireString(r); err != nil {
			return nil, fmt.Errorf("%w: span %d name", ErrBadSpanBatch, i)
		}
		if rec.Proc, err = readWireString(r); err != nil {
			return nil, fmt.Errorf("%w: span %d proc", ErrBadSpanBatch, i)
		}
		startNS, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: span %d start", ErrBadSpanBatch, i)
		}
		rec.Start = time.Unix(0, startNS)
		dur, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: span %d duration", ErrBadSpanBatch, i)
		}
		rec.Duration = time.Duration(dur)
		na, err := binary.ReadUvarint(r)
		if err != nil || na > maxWireSpans {
			return nil, fmt.Errorf("%w: span %d attr count", ErrBadSpanBatch, i)
		}
		if na > 0 {
			rec.Attrs = make([]Attr, 0, na)
			for j := uint64(0); j < na; j++ {
				k, err := readWireString(r)
				if err != nil {
					return nil, fmt.Errorf("%w: span %d attr key", ErrBadSpanBatch, i)
				}
				v, err := readWireString(r)
				if err != nil {
					return nil, fmt.Errorf("%w: span %d attr value", ErrBadSpanBatch, i)
				}
				rec.Attrs = append(rec.Attrs, Attr{Key: k, Value: v})
			}
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readWireString(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxWireString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	if uint64(r.Len()) < n {
		return "", errors.New("truncated string")
	}
	buf := make([]byte, n)
	if _, err := r.Read(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
