package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeRecording(t *testing.T) {
	tr := NewTracer(64)
	root := tr.StartSpan(SpanContext{}, "epoch", Int("epoch", 7))
	if !root.Context().Valid() {
		t.Fatal("root has invalid context")
	}
	if got := tr.CurrentTrace(); got != root.Context().TraceID {
		t.Fatalf("CurrentTrace = %x, want root trace %x", got, root.Context().TraceID)
	}
	child := tr.StartSpan(root.Context(), "reverify")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child not in root's trace")
	}
	child.Finish()
	child.Finish() // double-finish is a no-op
	root.FinishErr(nil)
	if got := tr.CurrentTrace(); got != 0 {
		t.Fatalf("CurrentTrace = %x after root finish, want 0", got)
	}

	spans := tr.TraceSpans(root.Context().TraceID)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// TraceSpans is start-ordered: root started first.
	if spans[0].Name != "epoch" || spans[0].Parent != 0 {
		t.Fatalf("root record wrong: %+v", spans[0])
	}
	if spans[1].Parent != root.Context().SpanID {
		t.Fatalf("child parent = %x, want %x", spans[1].Parent, root.Context().SpanID)
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Attr{"epoch", "7"}) {
		t.Fatalf("root attrs wrong: %+v", spans[0].Attrs)
	}
}

func TestDisabledIsNil(t *testing.T) {
	tr := NewTracer(64)
	tr.SetEnabled(false)
	sp := tr.StartSpan(SpanContext{}, "epoch")
	if sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
	// Every method must be nil-safe.
	sp.SetAttr(Int("x", 1))
	sp.FinishErr(io.EOF)
	sp.Finish()
	if sp.Context().Valid() {
		t.Fatal("nil span has valid context")
	}
	if c := tr.Collect(123); c != nil {
		t.Fatal("disabled tracer returned a collector")
	}
	var c *Collector
	if got := c.Stop(); got != nil {
		t.Fatal("nil collector returned spans")
	}
	tr.SetEnabled(true)
	if tr.StartSpan(SpanContext{}, "epoch") == nil {
		t.Fatal("re-enabled tracer returned nil")
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.StartSpan(SpanContext{}, "s").Finish()
	}
	got := tr.Snapshot()
	if len(got) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(got))
	}
	// Oldest-first ordering across the wrap point.
	for i := 1; i < len(got); i++ {
		if got[i].Start.Before(got[i-1].Start) {
			t.Fatal("snapshot not oldest-first after wrap")
		}
	}
}

func TestCollector(t *testing.T) {
	tr := NewTracer(64)
	root := tr.StartSpan(SpanContext{}, "epoch")
	col := tr.Collect(root.Context().TraceID)
	other := tr.StartSpan(SpanContext{}, "unrelated")
	other.Finish()
	tr.StartSpan(root.Context(), "phase").Finish()
	root.Finish()
	recs := col.Stop()
	if len(recs) != 2 {
		t.Fatalf("collected %d spans, want 2 (phase+root)", len(recs))
	}
	for _, r := range recs {
		if r.TraceID != root.Context().TraceID {
			t.Fatalf("collected foreign span %+v", r)
		}
	}
	// After Stop, recording continues but nothing accumulates.
	tr.StartSpan(root.Context(), "late").Finish()
	if got := col.Stop(); got != nil {
		t.Fatalf("stopped collector captured %d spans", len(got))
	}
}

func TestWireContextRoundtrip(t *testing.T) {
	ctx := SpanContext{TraceID: 0xdeadbeefcafe, SpanID: 42}
	buf := AppendContext([]byte("prefix"), ctx)
	got, rest := ReadContext(buf[len("prefix"):])
	if got != ctx || len(rest) != 0 {
		t.Fatalf("roundtrip: got %+v rest %d bytes", got, len(rest))
	}
	// Zero context and truncated buffers decode to zero, never error.
	if z, _ := ReadContext(nil); z.Valid() {
		t.Fatal("nil buf produced valid context")
	}
	if z, _ := ReadContext(buf[:1]); z.Valid() {
		t.Fatal("truncated buf produced valid context")
	}
}

func TestWireSpansRoundtrip(t *testing.T) {
	start := time.Unix(1700000000, 123456789)
	in := []SpanRecord{
		{TraceID: 9, SpanID: 1, Name: "epoch", Proc: "worker:w1",
			Start: start, Duration: 250 * time.Millisecond,
			Attrs: []Attr{{"epoch", "3"}, {"shard", "1"}}},
		{TraceID: 9, SpanID: 2, Parent: 1, Name: "reverify",
			Start: start.Add(time.Millisecond), Duration: time.Millisecond},
	}
	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d spans", len(out))
	}
	if !out[0].Start.Equal(in[0].Start) || out[0].Duration != in[0].Duration {
		t.Fatalf("timing mangled: %+v", out[0])
	}
	if out[0].Name != "epoch" || out[0].Proc != "worker:w1" || len(out[0].Attrs) != 2 {
		t.Fatalf("fields mangled: %+v", out[0])
	}
	if out[1].Parent != 1 {
		t.Fatalf("parent mangled: %+v", out[1])
	}
	if EncodeSpans(nil) != nil {
		t.Fatal("empty batch should encode to nil")
	}
}

func TestWireSpansCorrupt(t *testing.T) {
	good := EncodeSpans([]SpanRecord{{TraceID: 1, SpanID: 2, Name: "x"}})
	for _, tc := range [][]byte{
		good[:1],
		good[:len(good)-1],
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // absurd count
	} {
		if _, err := DecodeSpans(tc); err == nil {
			t.Fatalf("corrupt batch %x decoded without error", tc)
		}
	}
}

func TestImportStitches(t *testing.T) {
	tr := NewTracer(64)
	root := tr.StartSpan(SpanContext{}, "epoch")
	rootCtx := root.Context()
	root.Finish()
	remote := []SpanRecord{{
		TraceID: rootCtx.TraceID, SpanID: 77, Parent: rootCtx.SpanID,
		Name: "shard-epoch", Proc: "worker:w2", Start: time.Now(),
	}}
	tr.Import(remote)
	spans := tr.TraceSpans(rootCtx.TraceID)
	if len(spans) != 2 {
		t.Fatalf("stitched trace has %d spans, want 2", len(spans))
	}
	sums := tr.Summaries(0)
	if len(sums) != 1 || sums[0].Spans != 2 {
		t.Fatalf("summaries: %+v", sums)
	}
}

func TestTracezHandler(t *testing.T) {
	tr := NewTracer(64)
	root := tr.StartSpan(SpanContext{}, "epoch", Int("epoch", 1))
	tr.StartSpan(root.Context(), "reverify").Finish()
	root.Finish()
	tid := TraceID(root.Context().TraceID)

	h := tr.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tracez", nil))
	var list struct {
		Traces []tracezSummary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Trace != tid || list.Traces[0].Spans != 2 {
		t.Fatalf("listing: %+v", list.Traces)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tracez?trace="+tid, nil))
	var tree struct {
		Trace string        `json:"trace"`
		Spans []*tracezNode `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
		t.Fatal(err)
	}
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "epoch" ||
		len(tree.Spans[0].Children) != 1 || tree.Spans[0].Children[0].Name != "reverify" {
		t.Fatalf("tree: %+v", tree.Spans)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tracez?trace="+tid+"&format=text", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "epoch") || !strings.Contains(body, "reverify") ||
		!strings.Contains(body, "#") {
		t.Fatalf("waterfall missing content:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tracez?trace=ffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/tracez", nil))
	if rec.Code != 405 {
		t.Fatalf("POST: status %d", rec.Code)
	}
}

func TestDebugzHandler(t *testing.T) {
	tr := NewTracer(64)
	tr.StartSpan(SpanContext{}, "epoch").Finish()
	h := DebugzHandler(DebugzOptions{
		Tracer:      tr,
		Metrics:     func(w io.Writer) error { _, err := io.WriteString(w, "gps_up 1\n"); return err },
		Cluster:     func() (any, bool) { return map[string]string{"epoch": "3"}, true },
		HealthState: func() (string, bool) { return "ok", true },
		ExtraBuild:  map[string]string{"mode": "test"},
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debugz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sections := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		sections[obj["section"].(string)]++
	}
	for _, want := range []string{"build", "health", "metrics", "cluster", "trace"} {
		if sections[want] == 0 {
			t.Fatalf("bundle missing section %q (got %v)", want, sections)
		}
	}
}

func TestLoggerRouting(t *testing.T) {
	var out, errw bytes.Buffer
	l := NewLogger("gpsd", String("mode", "test")).Output(&out, &errw)
	l.Infof("epoch %d done", 3)
	l.Warnf("deprecated flag")
	l.Errorf("boom")

	if !strings.Contains(out.String(), "level=info") ||
		!strings.Contains(out.String(), `msg="epoch 3 done"`) ||
		!strings.Contains(out.String(), "component=gpsd") ||
		!strings.Contains(out.String(), "mode=test") {
		t.Fatalf("stdout line wrong: %q", out.String())
	}
	if strings.Contains(out.String(), "deprecated") || strings.Contains(out.String(), "boom") {
		t.Fatalf("warn/error leaked to stdout: %q", out.String())
	}
	if !strings.Contains(errw.String(), "level=warn") || !strings.Contains(errw.String(), "level=error") {
		t.Fatalf("stderr lines wrong: %q", errw.String())
	}
}

func TestLoggerTraceField(t *testing.T) {
	var out bytes.Buffer
	l := NewLogger("gpsd").Output(&out, &out)
	sp := Default.StartSpan(SpanContext{}, "epoch")
	l.Infof("during epoch")
	sp.Finish()
	l.Infof("after epoch")
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	want := "trace=" + TraceID(sp.Context().TraceID)
	if !strings.Contains(lines[0], want) {
		t.Fatalf("in-flight line missing %s: %q", want, lines[0])
	}
	if strings.Contains(lines[1], "trace=") {
		t.Fatalf("post-epoch line still has trace field: %q", lines[1])
	}
}

func TestLoggerJSON(t *testing.T) {
	SetLogJSON(true)
	defer SetLogJSON(false)
	var out bytes.Buffer
	l := NewLogger("cluster", String("shard", "2")).Output(&out, &out)
	l.Log(LevelInfo, "migrated", String("to", "w4"))
	var obj map[string]any
	if err := json.Unmarshal(out.Bytes(), &obj); err != nil {
		t.Fatalf("not JSON: %q (%v)", out.String(), err)
	}
	if obj["level"] != "info" || obj["component"] != "cluster" ||
		obj["msg"] != "migrated" || obj["shard"] != "2" || obj["to"] != "w4" {
		t.Fatalf("JSON fields wrong: %v", obj)
	}
	if _, ok := obj["ts"]; !ok {
		t.Fatal("missing ts")
	}
}
