// Package trace is a dependency-free distributed tracing layer in the
// style of internal/telemetry: spans are cheap to create, recorded into
// a bounded per-process ring buffer (a flight recorder, not an
// exporter), and stitched across processes by propagating a (trace id,
// parent span id) pair over the GPST wire. The recorder answers "where
// did the last epoch's wall-clock go" without any collector
// infrastructure: scrape /v1/tracez and read the waterfall.
//
// Design constraints, in priority order:
//
//  1. Disabled means free. SetEnabled(false) must reduce every
//     instrumentation site to one atomic load and a nil return;
//     finished-span bookkeeping happens only when tracing is on.
//  2. Bounded memory. The ring keeps the most recent spans and evicts
//     the oldest; a trace older than the ring simply falls out.
//  3. No dependencies. Stdlib only, same as internal/telemetry.
package trace

import (
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies a position in a trace tree: the trace it
// belongs to and the span that new children should parent to. The zero
// value is "no context" (Valid() == false); starting a span under it
// begins a new trace.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// Attr is one key=value annotation on a span. Values are strings;
// helpers below convert the common cases.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{k, strconv.Itoa(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{k, strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{k, strconv.FormatBool(v)} }

// SpanRecord is a finished span as stored in the flight recorder and
// as shipped between processes. Proc names the process that recorded
// the span (set via SetProcess) so a stitched trace shows which side
// of the wire each span ran on.
type SpanRecord struct {
	TraceID  uint64
	SpanID   uint64
	Parent   uint64 // 0 for a root span
	Name     string
	Proc     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Span is an in-flight span. A nil *Span is a valid no-op (the
// disabled path returns nil), so instrumentation sites never need an
// enabled check of their own.
type Span struct {
	tr    *Tracer
	ctx   SpanContext
	par   uint64
	name  string
	start time.Time
	mu    sync.Mutex
	attrs []Attr
	done  bool
}

// Tracer owns the flight recorder: a fixed-capacity ring of finished
// spans plus the enabled flag and span-id generator. The package-level
// Default tracer is what all gps instrumentation uses; independent
// tracers exist for tests.
type Tracer struct {
	disabled atomic.Bool
	seq      atomic.Uint64 // id sequence, mixed through splitmix64
	seed     uint64
	current  atomic.Uint64 // trace id of the most recent local root

	mu    sync.Mutex
	ring  []SpanRecord // fixed capacity, next points at the eviction slot
	next  int
	count int // total spans ever recorded (ring occupancy = min(count, len))

	colMu      sync.Mutex
	collectors map[uint64][]*Collector
	collecting atomic.Int32 // fast-path guard around colMu

	proc atomic.Pointer[string]
}

// DefaultCapacity is the flight-recorder size for the Default tracer:
// large enough for hundreds of epochs of span trees, small enough that
// the recorder stays a few MB even with attribute-heavy spans.
const DefaultCapacity = 4096

// Default is the process-wide tracer used by all gps instrumentation.
var Default = NewTracer(DefaultCapacity)

// NewTracer builds a tracer whose ring holds up to capacity finished
// spans (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	t := &Tracer{ring: make([]SpanRecord, 0, capacity)}
	// Seed the id generator so ids are unique across processes: the
	// wall clock and pid differ between any two gpsd processes a trace
	// can span, and splitmix64 diffuses them through every id.
	t.seed = splitmix64(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
	return t
}

// SetEnabled turns recording on or off. Disabled, StartSpan returns
// nil and every nil-span method is a no-op, so the marginal cost at an
// instrumentation site is one atomic load.
func (t *Tracer) SetEnabled(on bool) { t.disabled.Store(!on) }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return !t.disabled.Load() }

// SetProcess labels spans recorded from now on with a process name
// (e.g. "worker:w3") so stitched traces show where each span ran.
func (t *Tracer) SetProcess(name string) { t.proc.Store(&name) }

// Process returns the current process label ("" if unset).
func (t *Tracer) Process() string {
	if p := t.proc.Load(); p != nil {
		return *p
	}
	return ""
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) newID() uint64 {
	id := splitmix64(t.seed ^ t.seq.Add(1))
	if id == 0 { // 0 is reserved for "absent"
		id = 1
	}
	return id
}

// StartSpan begins a span. With a valid parent context the span joins
// that trace as a child of parent.SpanID; with the zero context it
// starts a new trace and becomes its root. Returns nil when tracing is
// disabled — safe to use without checking.
func (t *Tracer) StartSpan(parent SpanContext, name string, attrs ...Attr) *Span {
	if t.disabled.Load() {
		return nil
	}
	s := &Span{
		tr:    t,
		name:  name,
		start: time.Now(),
		attrs: attrs,
	}
	if parent.Valid() {
		s.ctx = SpanContext{TraceID: parent.TraceID, SpanID: t.newID()}
		s.par = parent.SpanID
	} else {
		id := t.newID()
		s.ctx = SpanContext{TraceID: id, SpanID: id}
		t.current.Store(id)
	}
	return s
}

// CurrentTrace returns the trace id of the most recently started local
// root span, or 0. The structured logger uses it to join log lines to
// /v1/tracez; it is intentionally a single process-wide slot — gpsd
// runs one epoch loop, and "the trace of the epoch in flight" is the
// id a human wants on every log line emitted meanwhile.
func (t *Tracer) CurrentTrace() uint64 { return t.current.Load() }

// SetCurrentTrace overrides the logger-joined trace id; workers use it
// to adopt the coordinator's trace while serving an epoch RPC.
func (t *Tracer) SetCurrentTrace(id uint64) { t.current.Store(id) }

// Context returns the span's position for parenting children or for
// wire propagation. Zero context on a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetAttr adds an annotation to an in-flight span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// FinishErr finishes the span, tagging it with the error when err is
// non-nil.
func (s *Span) FinishErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr(String("error", err.Error()))
	}
	s.Finish()
}

// Finish records the span into the flight recorder. Finishing twice is
// a no-op.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	rec := SpanRecord{
		TraceID:  s.ctx.TraceID,
		SpanID:   s.ctx.SpanID,
		Parent:   s.par,
		Name:     s.name,
		Proc:     s.tr.Process(),
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	}
	s.tr.record(rec)
	// A finished local root releases the logger-joined trace id, but
	// only if no newer root has claimed the slot meanwhile.
	if s.par == 0 && s.ctx.TraceID == s.tr.current.Load() {
		s.tr.current.CompareAndSwap(s.ctx.TraceID, 0)
	}
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % len(t.ring)
	}
	t.count++
	t.mu.Unlock()
	if t.collecting.Load() > 0 {
		t.offerCollectors(rec)
	}
}

// Import splices span records from another process into this
// recorder — the coordinator calls it with the spans a worker shipped
// back on an epoch result, so the coordinator's /v1/tracez shows the
// stitched tree.
func (t *Tracer) Import(recs []SpanRecord) {
	if t.disabled.Load() {
		return
	}
	for _, r := range recs {
		t.record(r)
	}
}

// Reset discards all recorded spans (tests).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.count = 0
	t.mu.Unlock()
}

// Collector captures finished spans of one trace as they are recorded,
// independent of ring eviction. Workers use it to gather the spans of
// a remote-parented epoch so they can be shipped back on the result
// frame.
type Collector struct {
	tr    *Tracer
	trace uint64
	mu    sync.Mutex
	recs  []SpanRecord
}

// Collect begins capturing finished spans whose trace id matches.
// Returns nil when tracing is disabled. Always Stop() a collector.
func (t *Tracer) Collect(traceID uint64) *Collector {
	if t.disabled.Load() || traceID == 0 {
		return nil
	}
	c := &Collector{tr: t, trace: traceID}
	t.colMu.Lock()
	if t.collectors == nil {
		t.collectors = make(map[uint64][]*Collector)
	}
	t.collectors[traceID] = append(t.collectors[traceID], c)
	t.colMu.Unlock()
	t.collecting.Add(1)
	return c
}

func (t *Tracer) offerCollectors(rec SpanRecord) {
	t.colMu.Lock()
	cols := t.collectors[rec.TraceID]
	t.colMu.Unlock()
	for _, c := range cols {
		c.mu.Lock()
		c.recs = append(c.recs, rec)
		c.mu.Unlock()
	}
}

// Stop detaches the collector and returns the captured spans. Nil-safe.
func (c *Collector) Stop() []SpanRecord {
	if c == nil {
		return nil
	}
	t := c.tr
	t.colMu.Lock()
	cols := t.collectors[c.trace]
	for i, cc := range cols {
		if cc == c {
			cols = append(cols[:i], cols[i+1:]...)
			break
		}
	}
	if len(cols) == 0 {
		delete(t.collectors, c.trace)
	} else {
		t.collectors[c.trace] = cols
	}
	t.colMu.Unlock()
	t.collecting.Add(-1)
	c.mu.Lock()
	recs := c.recs
	c.recs = nil
	c.mu.Unlock()
	return recs
}

// Snapshot returns every span currently in the ring, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if t.count > len(t.ring) { // ring has wrapped; t.next is oldest
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// TraceSummary describes one trace for the /v1/tracez listing.
type TraceSummary struct {
	TraceID  uint64
	Root     string // name of the root span ("" if the root was evicted)
	Proc     string
	Start    time.Time
	Duration time.Duration
	Spans    int
}

// Summaries groups the ring's spans by trace and returns the most
// recently started traces first, up to limit (0 = all).
func (t *Tracer) Summaries(limit int) []TraceSummary {
	byTrace := make(map[uint64]*TraceSummary)
	for _, r := range t.Snapshot() {
		s := byTrace[r.TraceID]
		if s == nil {
			s = &TraceSummary{TraceID: r.TraceID, Start: r.Start}
			byTrace[r.TraceID] = s
		}
		s.Spans++
		if r.Start.Before(s.Start) {
			s.Start = r.Start
		}
		if end := r.Start.Add(r.Duration); end.After(s.Start.Add(s.Duration)) {
			s.Duration = end.Sub(s.Start)
		}
		if r.Parent == 0 {
			s.Root = r.Name
			s.Proc = r.Proc
		}
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for _, s := range byTrace {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// TraceSpans returns every recorded span of one trace, in start order.
func (t *Tracer) TraceSpans(traceID uint64) []SpanRecord {
	var out []SpanRecord
	for _, r := range t.Snapshot() {
		if r.TraceID == traceID {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Package-level conveniences on the Default tracer, mirroring
// telemetry's Default registry.

// StartSpan begins a span on the Default tracer.
func StartSpan(parent SpanContext, name string, attrs ...Attr) *Span {
	return Default.StartSpan(parent, name, attrs...)
}

// SetEnabled toggles the Default tracer.
func SetEnabled(on bool) { Default.SetEnabled(on) }

// Enabled reports the Default tracer's state.
func Enabled() bool { return Default.Enabled() }

// SetProcess labels the Default tracer's spans.
func SetProcess(name string) { Default.SetProcess(name) }
