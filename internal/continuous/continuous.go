// Package continuous runs GPS as a long-lived process instead of a
// one-shot batch. The paper measures that 9% of all services and 15% of
// normalized services disappear within 10 days (§3), so any single
// gps.Run snapshot goes stale almost immediately. This package maintains
// a living inventory of known services across epochs: each epoch it
// re-verifies previously-found services (the cheapest probes with the
// highest hit rate), spends the remaining budget on discovery through the
// regular priors/predict pipeline, folds everything it saw back into the
// training set, and re-trains the probability model so predictions track
// the current service population rather than the original seed.
//
// The subsystem is deliberately universe-agnostic: callers advance the
// world (netmodel.Churn for simulation, wall-clock time in a real
// deployment) and hand each epoch the universe to scan. State checkpoints
// through internal/store's binary dataset format so a daemon (cmd/gpsd)
// can stop and resume mid-run.
package continuous

import (
	"fmt"
	"sort"
	"time"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/lzr"
	"gps/internal/metrics"
	"gps/internal/netmodel"
	"gps/internal/pipeline"
	"gps/internal/scanner"
	"gps/internal/trace"
	"gps/internal/zgrab"
)

// Config parameterizes the continuous scanner.
type Config struct {
	// Budget is the probe budget of one epoch, split between
	// re-verification and discovery. 0 means unlimited.
	Budget uint64
	// ReverifyFraction is the share of the budget reserved for
	// re-verifying known services; 0 selects the default 0.25. With an
	// unlimited budget the whole known set is re-verified regardless.
	ReverifyFraction float64
	// MaxStale is how many consecutive failed re-verifications a known
	// service survives before eviction; 0 selects the default 2. A
	// service seen again before eviction resets its counter — this
	// tolerates transient unresponsiveness without forgetting slow hosts.
	MaxStale int
	// Pipeline configures the discovery phases. When Budget above is
	// set, its Budget field is overwritten each epoch with the epoch
	// budget remaining after re-verification; with an unlimited epoch
	// budget it is used as given, so a caller may still cap discovery
	// alone.
	Pipeline pipeline.Config
	// ShardIndex/ShardCount restrict the runner to one partition of an
	// n-way hash split of the address space: seeding drops records the
	// shard does not own, and every epoch's discovery pipeline scans only
	// the owned partition. The shard coordinator (internal/shard) runs
	// one such runner per partition and merges their inventories.
	// ShardCount <= 1 disables sharding.
	ShardIndex int
	ShardCount int
}

// owns reports whether this runner's shard owns ip.
func (c Config) owns(ip asndb.IP) bool {
	return asndb.ShardOwns(ip, c.ShardIndex, c.ShardCount)
}

func (c Config) reverifyFraction() float64 {
	if c.ReverifyFraction <= 0 || c.ReverifyFraction > 1 {
		return 0.25
	}
	return c.ReverifyFraction
}

func (c Config) maxStale() int {
	if c.MaxStale <= 0 {
		return 2
	}
	return c.MaxStale
}

// Entry is one tracked service: the record that trains the model plus its
// observation history.
type Entry struct {
	Rec dataset.Record
	// FirstSeen and LastSeen are the epochs the service was first and
	// most recently observed alive (0 = the initial seed).
	FirstSeen, LastSeen int
	// Stale counts consecutive failed re-verifications.
	Stale int
}

// EpochStats summarizes one epoch.
type EpochStats struct {
	Epoch int
	// ReverifyProbes and DiscoveryProbes split the epoch's bandwidth.
	ReverifyProbes  uint64
	DiscoveryProbes uint64
	// Verified known services answered their re-verification; Lost did
	// not; Evicted lost entries exceeded MaxStale and were dropped.
	Verified, Lost, Evicted int
	// NewFound services entered the known set this epoch; Refreshed
	// known services were re-found by the discovery scans.
	NewFound, Refreshed int
	// TrainSize is how many records the epoch's model re-trained on.
	TrainSize int
	// KnownSize is the inventory size after the epoch.
	KnownSize int
	// Freshness is the staleness accounting of the known set.
	Freshness metrics.Freshness
	// Phases is the epoch's wall-clock phase split. Observability only:
	// it is not checkpointed (see PhaseTimes), so resumed history reads
	// zero here.
	Phases PhaseTimes
}

// Probes returns the epoch's total bandwidth.
func (s EpochStats) Probes() uint64 { return s.ReverifyProbes + s.DiscoveryProbes }

// State is everything the continuous scanner knows between epochs; it is
// the unit of checkpointing.
type State struct {
	// Epoch is the last completed epoch (0 = only seeded).
	Epoch int
	// Known is the live service inventory.
	Known map[netmodel.Key]*Entry
	// History holds one EpochStats per completed epoch.
	History []EpochStats
}

// CommitHook observes each committed epoch: it runs synchronously at the
// end of Epoch with the epoch number and the post-epoch inventory. The
// map is the runner's live state — read it during the call, copy what
// must outlive it (serve.NewSnapshot does exactly that). This is how the
// serving layer learns about commits without the scan loop knowing the
// serving layer exists.
type CommitHook func(epoch int, known map[netmodel.Key]*Entry)

// Runner drives the continuous scan. It is not safe for concurrent use.
type Runner struct {
	cfg  Config
	st   *State
	hook CommitHook
	tel  *runnerTelemetry
	// tparent is the trace context the next Epoch's phase spans parent
	// to. A shard coordinator (or a transport worker relaying a remote
	// coordinator's context) sets it before each Epoch call; when unset,
	// Epoch starts its own root span.
	tparent trace.SpanContext
}

// New creates a runner seeded with an initial observation set (typically
// pipeline.CollectSeed output or the seed half of a dataset split). The
// seed records become the epoch-0 inventory and first training set.
func New(seed *dataset.Dataset, cfg Config) *Runner {
	st := &State{Known: make(map[netmodel.Key]*Entry, seed.NumServices())}
	for _, r := range seed.Records {
		if !cfg.owns(r.IP) {
			continue // another shard's runner tracks this host
		}
		k := r.Key()
		if _, ok := st.Known[k]; !ok {
			st.Known[k] = &Entry{Rec: r}
		}
	}
	return &Runner{cfg: cfg, st: st, tel: newRunnerTelemetry(cfg)}
}

// Resume creates a runner continuing from a checkpointed state.
func Resume(st *State, cfg Config) *Runner {
	if st.Known == nil {
		st.Known = make(map[netmodel.Key]*Entry)
	}
	return &Runner{cfg: cfg, st: st, tel: newRunnerTelemetry(cfg)}
}

// State exposes the runner's state (shared, not copied): read it for
// reporting, checkpoint it with WriteCheckpoint.
func (r *Runner) State() *State { return r.st }

// SetCommitHook registers the hook Epoch invokes after each commit; nil
// unregisters. Call it before the epoch loop starts, not concurrently
// with Epoch.
func (r *Runner) SetCommitHook(h CommitHook) { r.hook = h }

// SetTraceParent sets the span context the next Epoch's phase spans
// attach to — the per-shard span of a coordinator, or the RPC span id
// extracted from a remote epoch request, so phase timing lands in the
// coordinator's trace tree. The zero context restores standalone
// behavior (Epoch roots its own trace). Not safe concurrently with
// Epoch, like every Runner method.
func (r *Runner) SetTraceParent(ctx trace.SpanContext) { r.tparent = ctx }

// TrainingSet assembles the current training data: the records of every
// known service not carrying a stale mark, in the deterministic
// re-verification order (least recently seen first, ties by (IP, port)).
// This is the set the next epoch's model re-trains on — the live
// population as currently believed, not the original seed.
func (r *Runner) TrainingSet() *dataset.Dataset {
	d := &dataset.Dataset{Name: fmt.Sprintf("continuous-epoch%d", r.st.Epoch)}
	for _, k := range r.sortedKeys() {
		e := r.st.Known[k]
		if e.Stale == 0 {
			d.Records = append(d.Records, e.Rec)
		}
	}
	return d
}

// sortedKeys returns the known keys ordered for re-verification: least
// recently seen first (they are the most at risk of having churned), ties
// broken by (IP, port) so epochs are deterministic.
func (r *Runner) sortedKeys() []netmodel.Key {
	keys := make([]netmodel.Key, 0, len(r.st.Known))
	for k := range r.st.Known {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := r.st.Known[keys[i]], r.st.Known[keys[j]]
		if a.LastSeen != b.LastSeen {
			return a.LastSeen < b.LastSeen
		}
		if keys[i].IP != keys[j].IP {
			return keys[i].IP < keys[j].IP
		}
		return keys[i].Port < keys[j].Port
	})
	return keys
}

// Epoch runs one full epoch against the universe: re-verify, re-train,
// discover, fold back. The universe is whatever the world looks like now;
// callers advance it (e.g. netmodel.Churn) between epochs.
func (r *Runner) Epoch(u *netmodel.Universe) (EpochStats, error) {
	r.st.Epoch++
	e := r.st.Epoch
	stats := EpochStats{Epoch: e}
	// Phase spans attach under the coordinator-provided parent when one
	// is set (so a distributed trace shows them beneath the per-shard
	// RPC span); a standalone runner roots its own epoch trace.
	tparent := r.tparent
	var ownSpan *trace.Span
	if !tparent.Valid() {
		ownSpan = trace.StartSpan(trace.SpanContext{}, "epoch",
			trace.Int("epoch", e), trace.Int("shard", r.cfg.ShardIndex))
		tparent = ownSpan.Context()
	}
	phaseStart := time.Now()
	phaseSpan := trace.StartSpan(tparent, "reverify", trace.Int("epoch", e))

	// Phase 1: re-verify the known set, least recently seen first. One
	// SYN per known service is the cheapest bandwidth GPS can spend —
	// the hit rate is the survival rate (~91% over 10 days, §3), versus
	// a few services per million probes for blind scanning.
	sc := scanner.New(u)
	fp := lzr.New(u)
	reverifyBudget := uint64(0) // 0 = unlimited
	if r.cfg.Budget > 0 {
		reverifyBudget = uint64(r.cfg.reverifyFraction() * float64(r.cfg.Budget))
		if reverifyBudget == 0 {
			// A tiny budget must still be a budget: without the clamp a
			// truncated-to-zero share would read as "unlimited".
			reverifyBudget = 1
		}
	}
	for _, k := range r.sortedKeys() {
		if reverifyBudget > 0 && sc.Probes() >= reverifyBudget {
			break
		}
		ent := r.st.Known[k]
		alive := false
		if sc.Probe(k.IP, k.Port) {
			alive = fp.Fingerprint(k.IP, k.Port).Status == lzr.StatusService
		}
		stats.Freshness.Checked++
		if alive {
			ent.LastSeen = e
			ent.Stale = 0
			stats.Verified++
			stats.Freshness.Alive++
			continue
		}
		ent.Stale++
		stats.Lost++
		if ent.Stale >= r.cfg.maxStale() {
			delete(r.st.Known, k)
			stats.Evicted++
		}
	}
	stats.ReverifyProbes = sc.Probes()
	stats.Phases.Reverify = time.Since(phaseStart)
	phaseSpan.SetAttr(trace.Int64("probes", int64(stats.ReverifyProbes)),
		trace.Int("checked", stats.Freshness.Checked))
	phaseSpan.Finish()

	// Phase 2: re-train on the believed-live population and spend the
	// remaining budget on discovery through the regular pipeline.
	phaseStart = time.Now()
	phaseSpan = trace.StartSpan(tparent, "retrain")
	train := r.TrainingSet()
	stats.TrainSize = train.NumServices()
	stats.Phases.Retrain = time.Since(phaseStart)
	phaseSpan.SetAttr(trace.Int("train_size", stats.TrainSize))
	phaseSpan.Finish()
	discover := train.NumServices() > 0
	pcfg := r.cfg.Pipeline
	pcfg.ShardIndex, pcfg.ShardCount = r.cfg.ShardIndex, r.cfg.ShardCount
	if r.cfg.Budget > 0 {
		if stats.ReverifyProbes >= r.cfg.Budget {
			discover = false
		} else {
			pcfg.Budget = r.cfg.Budget - stats.ReverifyProbes
		}
	}
	if discover {
		phaseStart = time.Now()
		phaseSpan = trace.StartSpan(tparent, "discover")
		res, err := pipeline.Run(u, train, pcfg)
		if err != nil {
			phaseSpan.FinishErr(err)
			ownSpan.FinishErr(err)
			return stats, fmt.Errorf("continuous: epoch %d discovery: %w", e, err)
		}
		// The pipeline re-builds the model internally; that slice of its
		// wall time is retraining, the rest is discovery proper.
		stats.Phases.Retrain += res.Timings.Model
		stats.Phases.Discover = time.Since(phaseStart) - res.Timings.Model
		stats.DiscoveryProbes = res.TotalScanProbes()
		phaseSpan.SetAttr(trace.Int64("probes", int64(stats.DiscoveryProbes)),
			trace.Int64("model_us", res.Timings.Model.Microseconds()))
		phaseSpan.Finish()
		phaseStart = time.Now()
		phaseSpan = trace.StartSpan(tparent, "fold")
		r.fold(u, res, e, &stats)
		stats.Phases.Fold = time.Since(phaseStart)
		phaseSpan.SetAttr(trace.Int("new_found", stats.NewFound),
			trace.Int("refreshed", stats.Refreshed))
		phaseSpan.Finish()
	}

	stats.KnownSize = len(r.st.Known)
	stats.Freshness.Known = len(r.st.Known)
	for _, ent := range r.st.Known {
		if ent.LastSeen == e {
			stats.Freshness.Fresh++
		}
		if ent.Stale > 0 {
			stats.Freshness.Stale++
		}
	}
	r.st.History = append(r.st.History, stats)
	r.tel.record(stats)
	if r.hook != nil {
		r.hook(e, r.st.Known)
	}
	ownSpan.SetAttr(trace.Int("known", stats.KnownSize))
	ownSpan.Finish()
	return stats, nil
}

// fold merges a discovery run into the inventory. Priors-phase anchors
// carry full records already; predict-phase discoveries are grabbed for
// their application-layer features so they can train the next model.
func (r *Runner) fold(u *netmodel.Universe, res *pipeline.Result, epoch int, stats *EpochStats) {
	anchorRec := make(map[netmodel.Key]dataset.Record, len(res.Anchors))
	for _, a := range res.Anchors {
		anchorRec[a.Key()] = a
	}
	gr := zgrab.New(u)
	for _, d := range res.Discoveries {
		rec, ok := anchorRec[d.Key]
		if !ok {
			g, okG := gr.Grab(d.Key.IP, d.Key.Port)
			if !okG {
				continue // vanished between scan and grab
			}
			asn, _ := u.ASNOf(d.Key.IP)
			rec = dataset.Record{
				IP: d.Key.IP, Port: d.Key.Port, Proto: g.Proto,
				Feats: g.Feats, ASN: asn, TTL: g.TTL,
			}
		}
		if ent, known := r.st.Known[d.Key]; known {
			// Rediscovered: refresh the record (features may have
			// changed) and clear any stale mark.
			ent.Rec = rec
			ent.LastSeen = epoch
			ent.Stale = 0
			stats.Refreshed++
			continue
		}
		r.st.Known[d.Key] = &Entry{Rec: rec, FirstSeen: epoch, LastSeen: epoch}
		stats.NewFound++
	}
}
