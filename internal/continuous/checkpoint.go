package continuous

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"gps/internal/dataset"
	"gps/internal/metrics"
	"gps/internal/netmodel"
	"gps/internal/store"
)

// Checkpoint format:
//
//	magic "GPSC" | version u8
//	epoch uvarint
//	history: uvarint count, then per epoch the EpochStats counters as
//	  uvarints (epoch, reverifyProbes, discoveryProbes, verified, lost,
//	  evicted, newFound, refreshed, trainSize, knownSize, and the five
//	  Freshness counters)
//	known set: uvarint byte length + a store binary dataset holding the
//	  known records sorted by (IP, port)
//	per record, in dataset order: firstSeen, lastSeen, stale uvarints
//
// The known records reuse internal/store's compact dataset encoding
// (string-table interning of feature values), so checkpoints stay small
// no matter how many fleet hosts share identical banners. The dataset
// blob is length-prefixed so the surrounding reader keeps its position.

const (
	checkpointMagic   = "GPSC"
	checkpointVersion = 1
)

// WriteCheckpoint serializes the state.
func WriteCheckpoint(w io.Writer, st *State) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(checkpointMagic)
	bw.WriteByte(checkpointVersion)
	writeUvarint(bw, uint64(st.Epoch))

	writeUvarint(bw, uint64(len(st.History)))
	for _, h := range st.History {
		for _, v := range statsCounters(h) {
			writeUvarint(bw, v)
		}
	}

	// The known set as a store binary dataset, deterministically ordered.
	keys := sortedKnownKeys(st)
	d := &dataset.Dataset{Name: "continuous-checkpoint"}
	for _, k := range keys {
		d.Records = append(d.Records, st.Known[k].Rec)
	}
	var blob bytes.Buffer
	if _, err := store.WriteDatasetBinary(&blob, d); err != nil {
		return fmt.Errorf("continuous: encoding known set: %w", err)
	}
	writeUvarint(bw, uint64(blob.Len()))
	bw.Write(blob.Bytes())

	for _, k := range keys {
		e := st.Known[k]
		writeUvarint(bw, uint64(e.FirstSeen))
		writeUvarint(bw, uint64(e.LastSeen))
		writeUvarint(bw, uint64(e.Stale))
	}
	return bw.Flush()
}

// ReadCheckpoint parses WriteCheckpoint output.
func ReadCheckpoint(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("continuous: reading magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("continuous: bad checkpoint magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != checkpointVersion {
		return nil, fmt.Errorf("continuous: unsupported checkpoint version %d", ver)
	}

	st := &State{Known: make(map[netmodel.Key]*Entry)}
	epoch, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	st.Epoch = int(epoch)

	nHist, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nHist > 1<<24 {
		return nil, fmt.Errorf("continuous: implausible history length %d", nHist)
	}
	st.History = make([]EpochStats, nHist)
	for i := range st.History {
		var vals [15]uint64
		for j := range vals {
			if vals[j], err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		}
		st.History[i] = statsFromCounters(vals)
	}

	blobLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if blobLen > 1<<28 {
		return nil, fmt.Errorf("continuous: implausible known-set size %d", blobLen)
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, err
	}
	d, err := store.ReadDatasetBinary(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("continuous: decoding known set: %w", err)
	}

	for _, rec := range d.Records {
		first, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		last, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		stale, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		st.Known[rec.Key()] = &Entry{
			Rec: rec, FirstSeen: int(first), LastSeen: int(last), Stale: int(stale),
		}
	}
	return st, nil
}

func sortedKnownKeys(st *State) []netmodel.Key {
	keys := make([]netmodel.Key, 0, len(st.Known))
	for k := range st.Known {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].IP != keys[j].IP {
			return keys[i].IP < keys[j].IP
		}
		return keys[i].Port < keys[j].Port
	})
	return keys
}

// statsCounters flattens EpochStats for serialization; statsFromCounters
// is its inverse. Order matters and is frozen by checkpointVersion.
func statsCounters(h EpochStats) [15]uint64 {
	return [15]uint64{
		uint64(h.Epoch), h.ReverifyProbes, h.DiscoveryProbes,
		uint64(h.Verified), uint64(h.Lost), uint64(h.Evicted),
		uint64(h.NewFound), uint64(h.Refreshed),
		uint64(h.TrainSize), uint64(h.KnownSize),
		uint64(h.Freshness.Known), uint64(h.Freshness.Fresh),
		uint64(h.Freshness.Stale), uint64(h.Freshness.Checked),
		uint64(h.Freshness.Alive),
	}
}

func statsFromCounters(v [15]uint64) EpochStats {
	return EpochStats{
		Epoch: int(v[0]), ReverifyProbes: v[1], DiscoveryProbes: v[2],
		Verified: int(v[3]), Lost: int(v[4]), Evicted: int(v[5]),
		NewFound: int(v[6]), Refreshed: int(v[7]),
		TrainSize: int(v[8]), KnownSize: int(v[9]),
		Freshness: metrics.Freshness{
			Known: int(v[10]), Fresh: int(v[11]), Stale: int(v[12]),
			Checked: int(v[13]), Alive: int(v[14]),
		},
	}
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
