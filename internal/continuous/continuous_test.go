package continuous

import (
	"bytes"
	"reflect"
	"testing"

	"gps/internal/dataset"
	"gps/internal/netmodel"
	"gps/internal/pipeline"
)

// testWorld builds a small universe plus a seed split for fast tests.
func testWorld(t testing.TB, seed int64) (*netmodel.Universe, *dataset.Dataset) {
	t.Helper()
	u := netmodel.Generate(netmodel.TestParams(seed))
	full := dataset.SnapshotLZR(u, 0.3, seed^0x11)
	seedSet, _ := full.Split(0.04, seed^0x22)
	eligible := seedSet.EligiblePorts(2)
	return u, seedSet.FilterPorts(eligible)
}

func testConfig() Config {
	return Config{Pipeline: pipeline.Config{Workers: 1, Seed: 7}}
}

// churned advances the universe deterministically per epoch, the way the
// daemon and the experiments do.
func churned(u *netmodel.Universe, base int64, epoch int) *netmodel.Universe {
	return netmodel.Churn(u, netmodel.DefaultChurn(base+int64(epoch)))
}

func TestEpochTracksChurn(t *testing.T) {
	u, seedSet := testWorld(t, 3)
	r := New(seedSet, testConfig())
	if got := len(r.State().Known); got != seedSet.NumServices() {
		t.Fatalf("seeded known set = %d; want %d", got, seedSet.NumServices())
	}

	world := u
	for e := 1; e <= 3; e++ {
		world = churned(world, 100, e)
		stats, err := r.Epoch(world)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if stats.Epoch != e {
			t.Errorf("epoch counter = %d; want %d", stats.Epoch, e)
		}
		if stats.Verified == 0 {
			t.Errorf("epoch %d verified nothing; churn survival should dominate", e)
		}
		if e == 1 && stats.NewFound == 0 {
			// Churn only removes services, so only the first epoch is
			// guaranteed to find services the seed missed.
			t.Error("epoch 1 discovered nothing beyond the seed")
		}
		if stats.ReverifyProbes == 0 || stats.DiscoveryProbes == 0 {
			t.Errorf("epoch %d probes: reverify=%d discovery=%d; want both nonzero",
				e, stats.ReverifyProbes, stats.DiscoveryProbes)
		}
		// Every known entry must actually exist in the current world or
		// carry a stale mark from a failed check.
		for k, ent := range r.State().Known {
			if ent.LastSeen == e && !world.Responsive(k.IP, k.Port) {
				t.Fatalf("entry %v marked fresh but unresponsive", k)
			}
		}
	}
	if len(r.State().History) != 3 {
		t.Errorf("history length = %d; want 3", len(r.State().History))
	}
	// The paper's churn means some of the original inventory must have
	// died and been evicted or marked stale along the way.
	var lost int
	for _, h := range r.State().History {
		lost += h.Lost
	}
	if lost == 0 {
		t.Error("three churn epochs lost no services; churn model broken?")
	}
}

func TestEpochBudgetSplit(t *testing.T) {
	u, seedSet := testWorld(t, 5)
	space := u.SpaceSize()
	cfg := testConfig()
	cfg.Budget = 2 * space
	cfg.ReverifyFraction = 0.25
	r := New(seedSet, cfg)
	stats, err := r.Epoch(churned(u, 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Probes() > cfg.Budget+space {
		// Budget enforcement is per-target granular (a priors target may
		// finish its prefix), so allow one prefix of overshoot.
		t.Errorf("epoch spent %d probes; budget %d", stats.Probes(), cfg.Budget)
	}
	if stats.ReverifyProbes > uint64(float64(cfg.Budget)*0.25)+1 {
		t.Errorf("reverify spent %d; cap was %d", stats.ReverifyProbes, uint64(float64(cfg.Budget)*0.25))
	}

	// A budget so small its re-verify share truncates to zero must still
	// be enforced, not read as "unlimited".
	tiny := testConfig()
	tiny.Budget = 2
	rt := New(seedSet, tiny)
	tstats, err := rt.Epoch(u)
	if err != nil {
		t.Fatal(err)
	}
	if tstats.ReverifyProbes > 1 {
		t.Errorf("tiny budget: reverify spent %d probes; want at most 1", tstats.ReverifyProbes)
	}
	if tstats.Probes() > tiny.Budget+1<<16 {
		// Budget checks are per priors target, so one /16 of overshoot
		// is the documented granularity.
		t.Errorf("tiny budget: epoch spent %d probes against budget %d", tstats.Probes(), tiny.Budget)
	}
}

func TestStaleEviction(t *testing.T) {
	u, seedSet := testWorld(t, 7)
	cfg := testConfig()
	cfg.MaxStale = 1 // evict on first miss
	r := New(seedSet, cfg)
	// A fake entry that never existed in the universe must be evicted on
	// the first epoch.
	fake := netmodel.Key{IP: 1, Port: 1}
	r.State().Known[fake] = &Entry{Rec: dataset.Record{IP: 1, Port: 1}}
	if _, err := r.Epoch(u); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.State().Known[fake]; ok {
		t.Error("dead entry survived MaxStale=1 eviction")
	}

	// With MaxStale=2 a dead entry survives one miss with a stale mark.
	r2 := New(seedSet, testConfig())
	r2.State().Known[fake] = &Entry{Rec: dataset.Record{IP: 1, Port: 1}}
	if _, err := r2.Epoch(u); err != nil {
		t.Fatal(err)
	}
	ent, ok := r2.State().Known[fake]
	if !ok || ent.Stale != 1 {
		t.Errorf("dead entry: present=%v stale=%v; want retained with stale=1", ok, ent)
	}
	// Stale entries must not train the model.
	for _, rec := range r2.TrainingSet().Records {
		if rec.Key() == fake {
			t.Error("stale entry leaked into the training set")
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	u, seedSet := testWorld(t, 11)
	r := New(seedSet, testConfig())
	for e := 1; e <= 2; e++ {
		if _, err := r.Epoch(churned(u, 300, e)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, r.State()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(got, r.State()) {
		t.Error("checkpoint round trip changed the state")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("GPSX____"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Error("empty checkpoint accepted")
	}
}

// TestResumeIdentical is the checkpoint half of the acceptance criterion:
// running epochs 1..k+1 straight must equal running 1..k, checkpointing,
// resuming, and running k+1.
func TestResumeIdentical(t *testing.T) {
	mkWorlds := func() []*netmodel.Universe {
		u := netmodel.Generate(netmodel.TestParams(13))
		worlds := []*netmodel.Universe{}
		w := u
		for e := 1; e <= 3; e++ {
			w = churned(w, 400, e)
			worlds = append(worlds, w)
		}
		return worlds
	}
	_, seedSet := testWorld(t, 13)

	// Straight-through run.
	a := New(seedSet, testConfig())
	for _, w := range mkWorlds() {
		if _, err := a.Epoch(w); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoint after epoch 2, resume, run epoch 3.
	b := New(seedSet, testConfig())
	worlds := mkWorlds()
	for _, w := range worlds[:2] {
		if _, err := b.Epoch(w); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, b.State()); err != nil {
		t.Fatal(err)
	}
	st, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	c := Resume(st, testConfig())
	if _, err := c.Epoch(worlds[2]); err != nil {
		t.Fatal(err)
	}

	if !statesEqual(a.State(), c.State()) {
		t.Error("resumed epoch 3 state differs from straight-through run")
	}
}

func statesEqual(a, b *State) bool {
	if a.Epoch != b.Epoch || len(a.Known) != len(b.Known) || len(a.History) != len(b.History) {
		return false
	}
	for i := range a.History {
		// Phases is wall-clock observability, deliberately excluded from
		// checkpoints — nondeterministic, so not part of state identity.
		ha, hb := a.History[i], b.History[i]
		ha.Phases, hb.Phases = PhaseTimes{}, PhaseTimes{}
		if ha != hb {
			return false
		}
	}
	for k, ea := range a.Known {
		eb, ok := b.Known[k]
		if !ok || !reflect.DeepEqual(ea, eb) {
			return false
		}
	}
	return true
}

// TestCommitHook verifies the epoch-commit hook the serving layer hangs
// off: called once per epoch, in order, with the post-epoch inventory.
func TestCommitHook(t *testing.T) {
	u, seedSet := testWorld(t, 9)
	r := New(seedSet, testConfig())

	var epochs []int
	var lastSize int
	r.SetCommitHook(func(epoch int, known map[netmodel.Key]*Entry) {
		epochs = append(epochs, epoch)
		lastSize = len(known)
	})

	world := u
	for e := 1; e <= 2; e++ {
		world = churned(world, 400, e)
		if _, err := r.Epoch(world); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if len(epochs) != e || epochs[e-1] != e {
			t.Fatalf("after epoch %d hook saw %v", e, epochs)
		}
		if lastSize != len(r.State().Known) {
			t.Errorf("hook saw %d entries; state holds %d", lastSize, len(r.State().Known))
		}
	}

	// Unregistering stops the calls.
	r.SetCommitHook(nil)
	if _, err := r.Epoch(churned(world, 400, 3)); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 {
		t.Errorf("hook ran after unregistering: %v", epochs)
	}
}
