package continuous

import (
	"strconv"
	"time"

	"gps/internal/metrics"
	"gps/internal/telemetry"
)

// PhaseTimes is the wall-clock split of one epoch across its phases.
// It rides on EpochStats for the structured epoch log but is NOT
// checkpointed: resumed history and states that crossed the shard
// transport carry zeroes, and shard.MergeStats sums across concurrent
// shards, so merged values read as CPU-seconds, not wall time. The
// authoritative long-term record is the gps_epoch_phase_seconds
// histogram on the process that ran the phase.
type PhaseTimes struct {
	Reverify time.Duration // re-probing the known set
	Retrain  time.Duration // rebuilding the probability model
	Discover time.Duration // priors + prediction scans (pipeline minus retrain)
	Fold     time.Duration // merging discoveries back into the inventory
}

// runnerTelemetry is one runner's pre-registered metric handles, looked
// up once at construction so the epoch hot path only touches atomics.
// All series carry a shard label; an unsharded runner reports as shard
// "0" of 1.
type runnerTelemetry struct {
	phaseReverify *telemetry.Histogram
	phaseRetrain  *telemetry.Histogram
	phaseDiscover *telemetry.Histogram
	phaseFold     *telemetry.Histogram

	reverifyProbes  *telemetry.Counter
	discoveryProbes *telemetry.Counter

	verified  *telemetry.Counter
	lost      *telemetry.Counter
	evicted   *telemetry.Counter
	newFound  *telemetry.Counter
	refreshed *telemetry.Counter

	known     *telemetry.Gauge
	fresh     *telemetry.Gauge
	stale     *telemetry.Gauge
	aliveFrac *telemetry.Gauge
}

func newRunnerTelemetry(cfg Config) *runnerTelemetry {
	shard := strconv.Itoa(cfg.ShardIndex)
	if cfg.ShardCount <= 1 {
		shard = "0"
	}
	r := telemetry.Default
	phase := func(name string) *telemetry.Histogram {
		return r.Histogram("gps_epoch_phase_seconds",
			"wall-clock time of one continuous-epoch phase",
			nil, "phase", name, "shard", shard)
	}
	event := func(name string) *telemetry.Counter {
		return r.Counter("gps_epoch_services_total",
			"inventory transitions observed by epochs",
			"event", name, "shard", shard)
	}
	invGauge := func(state string) *telemetry.Gauge {
		return r.Gauge("gps_inventory_services",
			"known-service inventory size by freshness state",
			"state", state, "shard", shard)
	}
	return &runnerTelemetry{
		phaseReverify: phase("reverify"),
		phaseRetrain:  phase("retrain"),
		phaseDiscover: phase("discover"),
		phaseFold:     phase("fold"),
		reverifyProbes: r.Counter("gps_epoch_probes_total",
			"probe bandwidth spent by epochs, split by budget side",
			"kind", "reverify", "shard", shard),
		discoveryProbes: r.Counter("gps_epoch_probes_total",
			"probe bandwidth spent by epochs, split by budget side",
			"kind", "discovery", "shard", shard),
		verified:  event("verified"),
		lost:      event("lost"),
		evicted:   event("evicted"),
		newFound:  event("new"),
		refreshed: event("refreshed"),
		known:     invGauge("known"),
		fresh:     invGauge("fresh"),
		stale:     invGauge("stale"),
		aliveFrac: r.Gauge("gps_inventory_alive_frac",
			"fraction of re-verified services still alive this epoch (survival rate)",
			"shard", shard),
	}
}

// record publishes one committed epoch's stats.
func (t *runnerTelemetry) record(stats EpochStats) {
	t.phaseReverify.Observe(stats.Phases.Reverify.Seconds())
	t.phaseRetrain.Observe(stats.Phases.Retrain.Seconds())
	t.phaseDiscover.Observe(stats.Phases.Discover.Seconds())
	t.phaseFold.Observe(stats.Phases.Fold.Seconds())
	t.reverifyProbes.Add(stats.ReverifyProbes)
	t.discoveryProbes.Add(stats.DiscoveryProbes)
	t.verified.Add(uint64(stats.Verified))
	t.lost.Add(uint64(stats.Lost))
	t.evicted.Add(uint64(stats.Evicted))
	t.newFound.Add(uint64(stats.NewFound))
	t.refreshed.Add(uint64(stats.Refreshed))
	t.setFreshness(stats.Freshness)
}

// setFreshness wires the existing evaluation-side freshness accounting
// into the runtime gauges.
func (t *runnerTelemetry) setFreshness(f metrics.Freshness) {
	t.known.Set(float64(f.Known))
	t.fresh.Set(float64(f.Fresh))
	t.stale.Set(float64(f.Stale))
	t.aliveFrac.Set(f.AliveFrac())
}
