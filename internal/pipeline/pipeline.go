// Package pipeline implements the GPS batch pipeline: phases 2-4 of the
// paper (model, priors scan, prediction scan) executed once against a
// frozen universe snapshot. The root gps package re-exports everything
// here as its public API; the continuous subsystem drives the same
// pipeline epoch after epoch against an evolving universe.
package pipeline

import (
	"fmt"
	"math/rand"
	"time"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/engine"
	"gps/internal/features"
	"gps/internal/lzr"
	"gps/internal/netmodel"
	"gps/internal/predict"
	"gps/internal/priors"
	"gps/internal/probmodel"
	"gps/internal/scanner"
	"gps/internal/zgrab"
)

// Config parameterizes a GPS run. The zero value is usable: it scans with
// a /16 step size, every feature family, the paper's probability floor,
// and full parallelism.
type Config struct {
	// StepBits is the scanning step size (§5.3): the prefix length GPS
	// exhaustively scans around each seed service. Smaller prefixes
	// (larger StepBits) are more precise but recall less. 0 means the
	// default /16.
	StepBits uint8
	// StepZero forces a /0 step (whole-space scans per port); needed
	// because StepBits == 0 selects the default.
	StepZero bool
	// Workers caps parallelism; 0 uses every core. Workers=1 reproduces
	// the paper's single-core measurements (§6.5).
	Workers int
	// Families selects the conditional-probability families (default
	// all four).
	Families probmodel.FamilySet
	// Floor overrides the 1e-5 probability floor; negative disables it.
	Floor float64
	// MinSupport overrides the minimum seed-host support a pattern needs
	// (default 2); negative disables the requirement.
	MinSupport int
	// AppKeys restricts the application-layer features used; nil allows
	// all 25 features of Table 1.
	AppKeys []features.Key
	// Budget caps the probes spent on the priors and prediction scans
	// (the bandwidth constraint of Equation 3); 0 means unlimited.
	Budget uint64
	// Seed drives scan-order randomization.
	Seed int64
	// RandomPriorsOrder shuffles the priors scan list instead of
	// visiting it in maximal-coverage order. Ablation only: it isolates
	// how much of GPS's early precision comes from the §5.3 ordering.
	RandomPriorsOrder bool
	// ShardIndex/ShardCount restrict the scan phases to one partition of
	// an n-way hash split of the address space (asndb.ShardOf): the run
	// probes, fingerprints, and predicts only the addresses its shard
	// owns, spending ~1/ShardCount of the bandwidth. Model training uses
	// the seed set as given — the coordinator (internal/shard) decides
	// whether to broadcast the full seed or partition it. ShardCount <= 1
	// disables sharding.
	ShardIndex int
	ShardCount int
	// ExactShardCounts makes a sharded run's prefix scans account the
	// exact number of addresses the shard owns instead of the ideal
	// 1/ShardCount share, so per-shard probe counters sum exactly to the
	// unsharded run's. Costs one hash pass per distinct prefix (memoized).
	ExactShardCounts bool
}

// EffectiveStep resolves the configured step size: StepZero wins, then an
// explicit StepBits, then the default /16.
func (c Config) EffectiveStep() uint8 {
	if c.StepZero {
		return 0
	}
	if c.StepBits == 0 {
		return 16
	}
	return c.StepBits
}

// engine derives the compute-engine configuration. A sharded run pins the
// shuffle fan-out to the global shard count — each of the N nodes runs the
// same warehouse shape, so per-shard engine stats stay comparable across
// shard counts instead of drifting with the local worker count.
func (c Config) engine() engine.Config {
	eng := engine.Config{Workers: c.Workers}
	if c.sharded() {
		eng.Shards = c.ShardCount
	}
	return eng
}

// sharded reports whether the run is restricted to one shard.
func (c Config) sharded() bool { return c.ShardCount > 1 }

// owns reports whether this run's shard owns ip. Unsharded runs own
// everything.
func (c Config) owns(ip asndb.IP) bool {
	return asndb.ShardOwns(ip, c.ShardIndex, c.ShardCount)
}

// Phase identifies which scan phase discovered a service.
type Phase uint8

// Scan phases.
const (
	PhasePriors Phase = iota
	PhasePredict
)

var phaseNames = [...]string{"priors", "predict"}

// String names the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Discovery is one service found by the scans, annotated with the
// cumulative probe count at the moment of discovery: the raw material of
// every coverage-vs-bandwidth curve in the evaluation.
type Discovery struct {
	Key    netmodel.Key
	Phase  Phase
	Probes uint64 // cumulative scan probes when found (excludes seed collection)
	P      float64
}

// Timings records wall time per pipeline stage (Table 2's rows).
type Timings struct {
	Model       time.Duration // building conditional probabilities
	PriorsList  time.Duration // computing the priors scan list
	PriorsScan  time.Duration // executing the priors scan (simulated)
	MPF         time.Duration // building the most-predictive-features list
	Predictions time.Duration // computing the predictions list
	PredictScan time.Duration // executing the prediction scan (simulated)
}

// Compute returns the purely computational time: the part BigQuery
// parallelizes (model + priors list + MPF + predictions).
func (t Timings) Compute() time.Duration {
	return t.Model + t.PriorsList + t.MPF + t.Predictions
}

// Result is everything a GPS run produces.
type Result struct {
	Model       *probmodel.Model
	PriorsList  priors.List
	Anchors     []dataset.Record      // services found by the priors scan
	Predictions []predict.Prediction  // ordered predictions list
	Discoveries []Discovery           // ordered discovery log
	Found       map[netmodel.Key]bool // every service discovered by the scans

	SeedProbes    uint64 // bandwidth the seed collection cost (if fresh)
	PriorsProbes  uint64 // bandwidth of the priors scan
	PredictProbes uint64 // bandwidth of the prediction scan
	Middleboxes   int    // responses LZR discarded as middleboxes
	Timings       Timings
}

// TotalScanProbes returns priors + prediction scan bandwidth.
func (r *Result) TotalScanProbes() uint64 { return r.PriorsProbes + r.PredictProbes }

// CollectSeed gathers a fresh seed set: a uniform random sample of the
// address space scanned across all 65K ports (§5.1). The returned
// dataset's CollectionProbes records the bandwidth this cost.
func CollectSeed(u *netmodel.Universe, fraction float64, seed int64) *dataset.Dataset {
	d := dataset.SnapshotLZR(u, fraction, seed)
	d.Name = "seed"
	return d
}

// Run executes phases 2-4 of GPS against the universe, training on
// seedSet. The seed set is typically either CollectSeed output or the seed
// half of a dataset split (§6.1).
func Run(u *netmodel.Universe, seedSet *dataset.Dataset, cfg Config) (*Result, error) {
	if seedSet.NumServices() == 0 {
		return nil, fmt.Errorf("gps: empty seed set")
	}
	if cfg.sharded() && (cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount) {
		// An out-of-range index owns nothing: the run would spend its
		// probe share and silently find zero services.
		return nil, fmt.Errorf("gps: shard index %d out of range [0, %d)", cfg.ShardIndex, cfg.ShardCount)
	}
	eng := cfg.engine()
	res := &Result{
		Found:      make(map[netmodel.Key]bool),
		SeedProbes: seedSet.CollectionProbes,
	}
	hosts := seedSet.ByHost()

	// Phase 2: the probabilistic model.
	start := time.Now()
	res.Model = probmodel.Build(probmodel.Config{
		Families:   cfg.Families,
		Floor:      cfg.Floor,
		AppKeys:    cfg.AppKeys,
		MinSupport: cfg.MinSupport,
		Engine:     eng,
	}, hosts)
	res.Timings.Model = time.Since(start)

	// Phase 3a: the priors scan list.
	start = time.Now()
	res.PriorsList = priors.Build(res.Model, hosts, cfg.EffectiveStep(), eng)
	if cfg.RandomPriorsOrder {
		rng := rand.New(rand.NewSource(cfg.Seed))
		rng.Shuffle(len(res.PriorsList.Targets), func(i, j int) {
			res.PriorsList.Targets[i], res.PriorsList.Targets[j] =
				res.PriorsList.Targets[j], res.PriorsList.Targets[i]
		})
	}
	res.Timings.PriorsList = time.Since(start)

	// Phase 3b: execute the priors scan, fingerprint, and grab features.
	// A sharded run probes only the addresses its partition owns; the
	// scanner enforces the split and accounts the proportional bandwidth.
	start = time.Now()
	sc := scanner.NewSharded(u, cfg.ShardIndex, cfg.ShardCount)
	sc.SetExactShardCounts(cfg.ExactShardCounts)
	fp := lzr.New(u)
	gr := zgrab.New(u)
	for _, tgt := range res.PriorsList.Targets {
		if cfg.Budget > 0 && sc.Probes() >= cfg.Budget {
			break
		}
		// Clamp the step to announced space: a /0 step means "scan the
		// whole announced Internet on this port", not all 2^32.
		var responders []asndb.IP
		for _, sub := range u.AnnouncedWithin(tgt.Subnet) {
			responders = append(responders, sc.ScanPrefixFast(sub, tgt.Port, cfg.Seed)...)
		}
		for _, ip := range responders {
			r := fp.Fingerprint(ip, tgt.Port)
			if r.Status == lzr.StatusMiddlebox {
				res.Middleboxes++
				continue
			}
			if r.Status != lzr.StatusService {
				continue
			}
			g, ok := gr.Grab(ip, tgt.Port)
			if !ok {
				continue
			}
			k := netmodel.Key{IP: ip, Port: tgt.Port}
			if res.Found[k] {
				continue
			}
			res.Found[k] = true
			asn, _ := u.ASNOf(ip)
			res.Anchors = append(res.Anchors, dataset.Record{
				IP: ip, Port: tgt.Port, Proto: g.Proto, Feats: g.Feats,
				ASN: asn, TTL: g.TTL,
			})
			res.Discoveries = append(res.Discoveries, Discovery{
				Key: k, Phase: PhasePriors, Probes: sc.Probes(),
			})
		}
	}
	res.PriorsProbes = sc.Probes()
	res.Timings.PriorsScan = time.Since(start)

	// Phase 4a: the most-predictive-feature-values list.
	start = time.Now()
	mpf := predict.BuildMPF(res.Model, hosts, eng)
	res.Timings.MPF = time.Since(start)

	// Phase 4b: the predictions list.
	start = time.Now()
	res.Predictions = predict.Predict(res.Model, mpf, res.Anchors,
		func(k netmodel.Key) bool { return res.Found[k] }, eng)
	res.Timings.Predictions = time.Since(start)

	// Phase 4c: scan the predictions in descending probability.
	start = time.Now()
	for _, p := range res.Predictions {
		if cfg.Budget > 0 && sc.Probes() >= cfg.Budget {
			break
		}
		// Predictions inherit their anchor's IP, so a sharded run's
		// predictions are owned by construction; the guard matters only
		// when a caller hands Run anchors from another shard's seed.
		if !cfg.owns(p.IP) {
			continue
		}
		k := p.Key()
		if res.Found[k] {
			continue
		}
		if !sc.Probe(p.IP, p.Port) {
			continue
		}
		r := fp.Fingerprint(p.IP, p.Port)
		if r.Status == lzr.StatusMiddlebox {
			res.Middleboxes++
			continue
		}
		if r.Status != lzr.StatusService {
			continue
		}
		res.Found[k] = true
		res.Discoveries = append(res.Discoveries, Discovery{
			Key: k, Phase: PhasePredict, Probes: sc.Probes(), P: p.P,
		})
	}
	res.PredictProbes = sc.Probes() - res.PriorsProbes
	res.Timings.PredictScan = time.Since(start)
	return res, nil
}
