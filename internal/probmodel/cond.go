// Package probmodel implements GPS's probabilistic model (§5.2): the four
// families of conditional probabilities between an open port and the
// features of another service on the same host.
//
//	Expression 4:  P(PortA | PortB)                      transport
//	Expression 5:  P(PortA | PortB, App_PortB)           transport+application
//	Expression 6:  P(PortA | PortB, Net_IP)              transport+network
//	Expression 7:  P(PortA | PortB, App_PortB, Net_IP)   all three
//
// Each probability is a simple ratio of host counts: of the hosts in the
// seed set exhibiting the condition, what fraction also had PortA open.
// The model is built with one parallel map/shuffle/reduce pass over seed
// hosts (the computation GPS runs on BigQuery).
package probmodel

import (
	"fmt"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/features"
)

// Family identifies one of the four conditional-probability families.
type Family uint8

// The families, bit-encodable for configuration.
const (
	FamilyT   Family = iota // Expression 4: port only
	FamilyTA                // Expression 5: port + application feature
	FamilyTN                // Expression 6: port + network feature
	FamilyTAN               // Expression 7: port + application + network
	numFamilies
)

var familyNames = [...]string{"T", "TA", "TN", "TAN"}

// String names the family.
func (f Family) String() string {
	if int(f) < len(familyNames) {
		return familyNames[f]
	}
	return "invalid"
}

// FamilySet is a bitmask of enabled families.
type FamilySet uint8

// Has reports whether the family is enabled.
func (s FamilySet) Has(f Family) bool { return s&(1<<f) != 0 }

// With returns the set with f enabled.
func (s FamilySet) With(f Family) FamilySet { return s | 1<<f }

// AllFamilies enables every family (GPS's default configuration).
const AllFamilies = FamilySet(1<<FamilyT | 1<<FamilyTA | 1<<FamilyTN | 1<<FamilyTAN)

// TransportOnly enables only Expression 4; used by the ablation study.
const TransportOnly = FamilySet(1 << FamilyT)

// Cond is one condition tuple: the right-hand side of a conditional
// probability. Port is always present (PortB); the application and network
// slots are optional and determine the family.
type Cond struct {
	Port   uint16
	AppKey features.Key // KeyNone when the family has no application slot
	AppVal string
	NetKey features.Key // KeyNone when the family has no network slot
	NetVal string
}

// Family derives the family from which slots are filled.
func (c Cond) Family() Family {
	switch {
	case c.AppKey != features.KeyNone && c.NetKey != features.KeyNone:
		return FamilyTAN
	case c.AppKey != features.KeyNone:
		return FamilyTA
	case c.NetKey != features.KeyNone:
		return FamilyTN
	default:
		return FamilyT
	}
}

// String renders the condition in the paper's tuple notation.
func (c Cond) String() string {
	switch c.Family() {
	case FamilyTA:
		return fmt.Sprintf("(%d, %s=%s)", c.Port, c.AppKey, c.AppVal)
	case FamilyTN:
		return fmt.Sprintf("(%d, %s=%s)", c.Port, c.NetKey, c.NetVal)
	case FamilyTAN:
		return fmt.Sprintf("(%d, %s=%s, %s=%s)", c.Port, c.AppKey, c.AppVal, c.NetKey, c.NetVal)
	default:
		return fmt.Sprintf("(%d)", c.Port)
	}
}

// TupleKind identifies the feature-key shape of a condition without its
// concrete values — e.g., "(Port, Port_Protocol)" or "(Port, Port_ASN,
// Port_HTTP-Body-Hash)". Table 3 aggregates predictions by tuple kind.
type TupleKind struct {
	AppKey features.Key
	NetKey features.Key
}

// Kind returns the condition's tuple kind.
func (c Cond) Kind() TupleKind { return TupleKind{AppKey: c.AppKey, NetKey: c.NetKey} }

// String renders the kind in Table 3's style.
func (k TupleKind) String() string {
	switch {
	case k.AppKey != features.KeyNone && k.NetKey != features.KeyNone:
		return fmt.Sprintf("(Port, Port_%s, Port_%s)", k.NetKey, k.AppKey)
	case k.AppKey != features.KeyNone:
		return fmt.Sprintf("(Port, Port_%s)", k.AppKey)
	case k.NetKey != features.KeyNone:
		return fmt.Sprintf("(Port, Port_%s)", k.NetKey)
	default:
		return "Port"
	}
}

// DefaultNetKeys is GPS's production network feature set: Appendix C finds
// the /16 subnetwork and the ASN most predictive and drops the rest.
func DefaultNetKeys() []features.Key {
	return []features.Key{features.KeySubnet16, features.KeyASN}
}

// NetFeatures computes the requested network-layer feature values for a
// record's address.
func NetFeatures(r dataset.Record, netKeys []features.Key) []features.Value {
	out := make([]features.Value, 0, len(netKeys))
	for _, k := range netKeys {
		if bits, ok := k.SubnetBits(); ok {
			out = append(out, features.Value{Key: k, Val: asndb.SubnetOf(r.IP, bits).String()})
		} else if k == features.KeyASN {
			out = append(out, features.Value{Key: k, Val: r.ASN.String()})
		}
	}
	return out
}

// CondsOf enumerates every condition tuple a record contributes, filtered
// to the enabled families and feature keys. enabledKeys may be nil to
// allow all application features; nets carries the precomputed
// network-layer values for the record's address.
func CondsOf(r dataset.Record, fams FamilySet, enabledKeys map[features.Key]bool, nets []features.Value) []Cond {
	apps := r.Feats.Values()
	if enabledKeys != nil {
		kept := apps[:0]
		for _, v := range apps {
			if enabledKeys[v.Key] {
				kept = append(kept, v)
			}
		}
		apps = kept
	}
	out := make([]Cond, 0, (1+len(apps))*(1+len(nets)))
	if fams.Has(FamilyT) {
		out = append(out, Cond{Port: r.Port})
	}
	if fams.Has(FamilyTA) {
		for _, a := range apps {
			out = append(out, Cond{Port: r.Port, AppKey: a.Key, AppVal: a.Val})
		}
	}
	if fams.Has(FamilyTN) {
		for _, n := range nets {
			out = append(out, Cond{Port: r.Port, NetKey: n.Key, NetVal: n.Val})
		}
	}
	if fams.Has(FamilyTAN) {
		for _, a := range apps {
			for _, n := range nets {
				out = append(out, Cond{Port: r.Port, AppKey: a.Key, AppVal: a.Val,
					NetKey: n.Key, NetVal: n.Val})
			}
		}
	}
	return out
}
