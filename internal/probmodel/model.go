package probmodel

import (
	"gps/internal/dataset"
	"gps/internal/engine"
	"gps/internal/features"
)

// DefaultFloor is the probability below which GPS discards a pattern
// (§5.4): 1e-5 is roughly the hit rate of randomly probing the majority of
// ports, so predictions below it are no better than random probing.
const DefaultFloor = 1e-5

// Config controls model construction.
type Config struct {
	// Families selects which conditional-probability families to model;
	// defaults to AllFamilies.
	Families FamilySet
	// Floor is the minimum probability a pattern must reach to be used;
	// defaults to DefaultFloor. Set negative to disable the floor
	// (ablation).
	Floor float64
	// AppKeys restricts which application-layer features are used; nil
	// allows all of Table 1.
	AppKeys []features.Key
	// NetKeys selects the network-layer features; nil uses GPS's
	// production pair (/16 subnet + ASN). Appendix C's candidate sweep
	// passes features.CandidateNetworkKeys().
	NetKeys []features.Key
	// MinSupport is the minimum number of seed hosts a condition must be
	// observed on before its probabilities count; defaults to 2. A
	// pattern seen on a single host cannot generalize — this is the
	// paper's "at least two responsive IP addresses to train from"
	// premise. Set negative to disable (ablation).
	MinSupport int
	// Engine configures the parallel compute substrate.
	Engine engine.Config
}

func (c Config) withDefaults() Config {
	if c.Families == 0 {
		c.Families = AllFamilies
	}
	if c.Floor == 0 {
		c.Floor = DefaultFloor
	} else if c.Floor < 0 {
		c.Floor = 0
	}
	if c.NetKeys == nil {
		c.NetKeys = DefaultNetKeys()
	}
	if c.MinSupport == 0 {
		c.MinSupport = 2
	} else if c.MinSupport < 0 {
		c.MinSupport = 1
	}
	return c
}

// pairKey is the shuffle key for co-occurrence counting: a condition from
// service B paired with another open port A on the same host.
type pairKey struct {
	cond Cond
	port uint16
}

// Model holds the trained conditional probabilities. It is immutable after
// Build and safe for concurrent queries.
type Model struct {
	cfg        Config
	condHosts  map[Cond]uint64    // hosts exhibiting each condition
	pairHosts  map[pairKey]uint64 // hosts exhibiting cond AND port A open
	hostsSeen  int
	enabledKey map[features.Key]bool // nil = all
	stats      engine.Stats
}

// Build trains the model over seed hosts with one parallel
// map/shuffle/reduce pass (per count family).
func Build(cfg Config, hosts []dataset.HostGroup) *Model {
	cfg = cfg.withDefaults()
	m := &Model{cfg: cfg, hostsSeen: len(hosts)}
	if cfg.AppKeys != nil {
		m.enabledKey = make(map[features.Key]bool, len(cfg.AppKeys))
		for _, k := range cfg.AppKeys {
			m.enabledKey[k] = true
		}
	}

	// Pass 1: count hosts per condition. A condition is counted once per
	// host no matter how many ports it predicts from there.
	m.condHosts = engine.GroupCount(cfg.Engine, &m.stats, hosts,
		func(h dataset.HostGroup, emit engine.Emit[Cond, uint64]) {
			for _, r := range h.Records {
				for _, c := range m.CondsOf(r) {
					emit(c, 1)
				}
			}
		})

	// Pass 2: count hosts per (condition, other open port). Only hosts
	// with at least two services contribute pairs.
	m.pairHosts = engine.GroupCount(cfg.Engine, &m.stats, hosts,
		func(h dataset.HostGroup, emit engine.Emit[pairKey, uint64]) {
			if len(h.Records) < 2 {
				return
			}
			for _, rb := range h.Records {
				conds := m.CondsOf(rb)
				for _, ra := range h.Records {
					if ra.Port == rb.Port {
						continue
					}
					for _, c := range conds {
						emit(pairKey{cond: c, port: ra.Port}, 1)
					}
				}
			}
		})
	return m
}

// CondsOf enumerates the condition tuples a record contributes under this
// model's configuration.
func (m *Model) CondsOf(r dataset.Record) []Cond {
	return CondsOf(r, m.cfg.Families, m.enabledKey, NetFeatures(r, m.cfg.NetKeys))
}

// Floor returns the configured probability floor.
func (m *Model) Floor() float64 { return m.cfg.Floor }

// Families returns the enabled family set.
func (m *Model) Families() FamilySet { return m.cfg.Families }

// EnabledKeys returns the application-feature restriction (nil = all).
func (m *Model) EnabledKeys() map[features.Key]bool { return m.enabledKey }

// HostsSeen returns how many seed hosts the model was trained on.
func (m *Model) HostsSeen() int { return m.hostsSeen }

// NumConds returns the number of distinct conditions observed.
func (m *Model) NumConds() int { return len(m.condHosts) }

// NumPairs returns the number of distinct (condition, port) pairs.
func (m *Model) NumPairs() int { return len(m.pairHosts) }

// Stats exposes the engine work counters accumulated during Build.
func (m *Model) Stats() (recordsIn, pairsEmitted uint64) {
	return m.stats.RecordsIn.Load(), m.stats.PairsEmitted.Load()
}

// CondHosts returns how many seed hosts exhibited the condition.
func (m *Model) CondHosts(c Cond) uint64 { return m.condHosts[c] }

// Prob returns P(portA open | cond), applying the configured floor:
// probabilities below the floor return 0 because GPS treats them as no
// better than random probing.
func (m *Model) Prob(c Cond, portA uint16) float64 {
	denom := m.condHosts[c]
	if denom == 0 || denom < uint64(m.cfg.MinSupport) {
		return 0
	}
	num := m.pairHosts[pairKey{cond: c, port: portA}]
	p := float64(num) / float64(denom)
	if p < m.cfg.Floor {
		return 0
	}
	return p
}

// BestCond returns the condition among cands maximizing P(portA | cond),
// with the probability; ok is false when every candidate is below the
// floor. Ties break toward the earlier candidate, which CondsOf orders by
// family (T, TA, TN, TAN) so simpler conditions win ties.
func (m *Model) BestCond(cands []Cond, portA uint16) (best Cond, p float64, ok bool) {
	for _, c := range cands {
		if q := m.Prob(c, portA); q > p {
			best, p, ok = c, q, true
		}
	}
	return best, p, ok
}

// BestCondForHost scans every other service on the host and returns the
// condition most predictive of portA — the inner step of both the priors
// algorithm (§5.3) and the prediction algorithm (§5.4).
func (m *Model) BestCondForHost(h dataset.HostGroup, portA uint16) (best Cond, p float64, ok bool) {
	for _, rb := range h.Records {
		if rb.Port == portA {
			continue
		}
		c, q, found := m.BestCond(m.CondsOf(rb), portA)
		if found && q > p {
			best, p, ok = c, q, true
		}
	}
	return best, p, ok
}
