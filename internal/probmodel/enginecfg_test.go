package probmodel

import "gps/internal/engine"

func engineCfg(workers int) engine.Config { return engine.Config{Workers: workers} }
