package probmodel

import (
	"math"
	"testing"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/features"
)

// handHosts builds a tiny hand-checkable population:
//
//	3 hosts in 10.0.0.0/16 (AS1): ports {80, 443}, HTTP server "fleetA"
//	2 hosts in 10.0.0.0/16 (AS1): ports {80}       HTTP server "fleetA"
//	2 hosts in 11.0.0.0/16 (AS2): ports {22, 8080}, SSH banner "fleetB"
//
// So: P(443 | 80) = 3/5, P(443 | 80, server=fleetA) = 3/5,
// P(8080 | 22) = 1, P(80 | 443) = 1.
func handHosts() []dataset.HostGroup {
	var hosts []dataset.HostGroup
	mk := func(ipS string, asn asndb.ASN, recs ...dataset.Record) {
		ip := asndb.MustParseIP(ipS)
		for i := range recs {
			recs[i].IP = ip
			recs[i].ASN = asn
		}
		hosts = append(hosts, dataset.HostGroup{IP: ip, Records: recs})
	}
	web := func(port uint16) dataset.Record {
		return dataset.Record{Port: port, Proto: features.ProtocolHTTP,
			Feats: features.Set{features.KeyProtocol: "http", features.KeyHTTPServer: "fleetA"}}
	}
	tls := func() dataset.Record {
		return dataset.Record{Port: 443, Proto: features.ProtocolTLS,
			Feats: features.Set{features.KeyProtocol: "tls"}}
	}
	ssh := func() dataset.Record {
		return dataset.Record{Port: 22, Proto: features.ProtocolSSH,
			Feats: features.Set{features.KeyProtocol: "ssh", features.KeySSHBanner: "fleetB"}}
	}
	alt := func() dataset.Record {
		return dataset.Record{Port: 8080, Proto: features.ProtocolHTTP,
			Feats: features.Set{features.KeyProtocol: "http"}}
	}
	mk("10.0.0.1", 1, web(80), tls())
	mk("10.0.0.2", 1, web(80), tls())
	mk("10.0.0.3", 1, web(80), tls())
	mk("10.0.0.4", 1, web(80))
	mk("10.0.0.5", 1, web(80))
	mk("11.0.0.1", 2, ssh(), alt())
	mk("11.0.0.2", 2, ssh(), alt())
	return hosts
}

func TestProbHandComputed(t *testing.T) {
	m := Build(Config{Floor: -1, MinSupport: -1}, handHosts())
	cases := []struct {
		cond Cond
		port uint16
		want float64
	}{
		{Cond{Port: 80}, 443, 3.0 / 5},
		{Cond{Port: 443}, 80, 1},
		{Cond{Port: 22}, 8080, 1},
		{Cond{Port: 8080}, 22, 1},
		{Cond{Port: 80, AppKey: features.KeyHTTPServer, AppVal: "fleetA"}, 443, 3.0 / 5},
		{Cond{Port: 80, NetKey: features.KeySubnet16, NetVal: "10.0.0.0/16"}, 443, 3.0 / 5},
		{Cond{Port: 80, NetKey: features.KeyASN, NetVal: "AS1"}, 443, 3.0 / 5},
		{Cond{Port: 80}, 22, 0},   // never co-occurs
		{Cond{Port: 9999}, 80, 0}, // unseen condition
	}
	for _, c := range cases {
		if got := m.Prob(c.cond, c.port); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%d | %v) = %f; want %f", c.port, c.cond, got, c.want)
		}
	}
	if m.HostsSeen() != 7 {
		t.Errorf("HostsSeen = %d; want 7", m.HostsSeen())
	}
}

func TestCondHostCounts(t *testing.T) {
	m := Build(Config{Floor: -1, MinSupport: -1}, handHosts())
	if got := m.CondHosts(Cond{Port: 80}); got != 5 {
		t.Errorf("CondHosts(80) = %d; want 5", got)
	}
	if got := m.CondHosts(Cond{Port: 22, AppKey: features.KeySSHBanner, AppVal: "fleetB"}); got != 2 {
		t.Errorf("CondHosts(22, banner) = %d; want 2", got)
	}
}

func TestFloorDiscards(t *testing.T) {
	// With a floor above 3/5, the 80->443 pattern must vanish.
	m := Build(Config{Floor: 0.7, MinSupport: -1}, handHosts())
	if got := m.Prob(Cond{Port: 80}, 443); got != 0 {
		t.Errorf("floored P = %f; want 0", got)
	}
	if got := m.Prob(Cond{Port: 443}, 80); got != 1 {
		t.Errorf("P above floor = %f; want 1", got)
	}
}

func TestMinSupport(t *testing.T) {
	// A condition seen on one host only must not predict with default
	// MinSupport=2.
	hosts := handHosts()
	hosts = append(hosts, dataset.HostGroup{
		IP: asndb.MustParseIP("12.0.0.1"),
		Records: []dataset.Record{
			{IP: asndb.MustParseIP("12.0.0.1"), Port: 7777, ASN: 3,
				Feats: features.Set{features.KeyProtocol: "http"}},
			{IP: asndb.MustParseIP("12.0.0.1"), Port: 8888, ASN: 3,
				Feats: features.Set{features.KeyProtocol: "http"}},
		},
	})
	m := Build(Config{Floor: -1}, hosts) // default MinSupport 2
	if got := m.Prob(Cond{Port: 7777}, 8888); got != 0 {
		t.Errorf("singleton condition predicted with P=%f; want 0", got)
	}
	m2 := Build(Config{Floor: -1, MinSupport: -1}, hosts)
	if got := m2.Prob(Cond{Port: 7777}, 8888); got != 1 {
		t.Errorf("with support disabled P=%f; want 1", got)
	}
}

func TestFamilyFiltering(t *testing.T) {
	m := Build(Config{Families: TransportOnly, Floor: -1, MinSupport: -1}, handHosts())
	if got := m.Prob(Cond{Port: 80, AppKey: features.KeyHTTPServer, AppVal: "fleetA"}, 443); got != 0 {
		t.Errorf("TA condition active in transport-only model: %f", got)
	}
	if got := m.Prob(Cond{Port: 80}, 443); got != 3.0/5 {
		t.Errorf("T condition missing: %f", got)
	}
}

func TestAppKeyRestriction(t *testing.T) {
	m := Build(Config{Floor: -1, MinSupport: -1,
		AppKeys: []features.Key{features.KeyProtocol}}, handHosts())
	if got := m.Prob(Cond{Port: 80, AppKey: features.KeyHTTPServer, AppVal: "fleetA"}, 443); got != 0 {
		t.Errorf("disabled app key still active: %f", got)
	}
	if got := m.Prob(Cond{Port: 80, AppKey: features.KeyProtocol, AppVal: "http"}, 443); got == 0 {
		t.Error("enabled app key inactive")
	}
}

func TestBestCondForHost(t *testing.T) {
	m := Build(Config{Floor: -1, MinSupport: -1}, handHosts())
	h := handHosts()[0] // 10.0.0.1 with 80 and 443
	best, p, ok := m.BestCondForHost(h, 443)
	if !ok {
		t.Fatal("no condition found")
	}
	if best.Port != 80 {
		t.Errorf("best anchor port = %d; want 80", best.Port)
	}
	if p != 3.0/5 {
		t.Errorf("best P = %f; want 0.6", p)
	}
	// Predicting 80 from 443 yields probability 1.
	_, p80, _ := m.BestCondForHost(h, 80)
	if p80 != 1 {
		t.Errorf("P(80 | 443-cond) = %f; want 1", p80)
	}
}

func TestCondsOfFamiliesAndCounts(t *testing.T) {
	r := dataset.Record{
		IP: asndb.MustParseIP("10.0.0.1"), Port: 80, ASN: 7,
		Feats: features.Set{features.KeyProtocol: "http", features.KeyHTTPServer: "x"},
	}
	nets := NetFeatures(r, DefaultNetKeys())
	conds := CondsOf(r, AllFamilies, nil, nets)
	// 1 (T) + 2 (TA) + 2 (TN) + 4 (TAN) = 9.
	if len(conds) != 9 {
		t.Fatalf("CondsOf produced %d conditions; want 9", len(conds))
	}
	counts := map[Family]int{}
	for _, c := range conds {
		counts[c.Family()]++
		if c.Port != 80 {
			t.Error("condition port wrong")
		}
	}
	if counts[FamilyT] != 1 || counts[FamilyTA] != 2 || counts[FamilyTN] != 2 || counts[FamilyTAN] != 4 {
		t.Errorf("family counts = %v", counts)
	}
}

func TestNetFeaturesCandidates(t *testing.T) {
	r := dataset.Record{IP: asndb.MustParseIP("10.1.2.3"), ASN: 9}
	vals := NetFeatures(r, features.CandidateNetworkKeys())
	if len(vals) != 9 {
		t.Fatalf("candidate net features = %d; want 9 (ASN + /16../23)", len(vals))
	}
	for _, v := range vals {
		if bits, ok := v.Key.SubnetBits(); ok {
			want := asndb.SubnetOf(r.IP, bits).String()
			if v.Val != want {
				t.Errorf("%v = %q; want %q", v.Key, v.Val, want)
			}
		} else if v.Key == features.KeyASN && v.Val != "AS9" {
			t.Errorf("ASN value %q", v.Val)
		}
	}
}

func TestCondStringAndKind(t *testing.T) {
	c := Cond{Port: 80, AppKey: features.KeyHTTPServer, AppVal: "x",
		NetKey: features.KeyASN, NetVal: "AS1"}
	if c.Family() != FamilyTAN {
		t.Error("family detection wrong")
	}
	if c.Kind() != (TupleKind{AppKey: features.KeyHTTPServer, NetKey: features.KeyASN}) {
		t.Error("Kind wrong")
	}
	if (Cond{Port: 80}).String() != "(80)" {
		t.Errorf("T cond string: %q", Cond{Port: 80}.String())
	}
	if (TupleKind{}).String() != "Port" {
		t.Errorf("plain kind string: %q", TupleKind{}.String())
	}
}

func TestFamilySetOps(t *testing.T) {
	s := FamilySet(0).With(FamilyT).With(FamilyTAN)
	if !s.Has(FamilyT) || !s.Has(FamilyTAN) || s.Has(FamilyTA) || s.Has(FamilyTN) {
		t.Error("FamilySet bit ops wrong")
	}
	for _, f := range []Family{FamilyT, FamilyTA, FamilyTN, FamilyTAN} {
		if !AllFamilies.Has(f) {
			t.Errorf("AllFamilies missing %v", f)
		}
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	hosts := handHosts()
	a := Build(Config{Floor: -1, MinSupport: -1, Engine: engineCfg(1)}, hosts)
	b := Build(Config{Floor: -1, MinSupport: -1, Engine: engineCfg(8)}, hosts)
	if a.NumConds() != b.NumConds() || a.NumPairs() != b.NumPairs() {
		t.Fatalf("parallel build differs: %d/%d vs %d/%d",
			a.NumConds(), a.NumPairs(), b.NumConds(), b.NumPairs())
	}
	probe := []Cond{{Port: 80}, {Port: 443}, {Port: 22}}
	for _, c := range probe {
		for _, port := range []uint16{22, 80, 443, 8080} {
			if a.Prob(c, port) != b.Prob(c, port) {
				t.Errorf("P(%d | %v) differs between worker counts", port, c)
			}
		}
	}
}
