package metrics

// Freshness measures how well a continuously-maintained service inventory
// tracks the live population at one epoch. The paper's churn measurement
// (§3: 9% of services gone within 10 days) makes any one-shot inventory
// decay immediately; a continuous scanner is judged by how much of its
// known set is still alive and how much has gone stale.
type Freshness struct {
	// Known is the number of services tracked at the end of the epoch.
	Known int
	// Fresh is how many of them were observed alive this epoch (either
	// re-verified or newly discovered).
	Fresh int
	// Stale is how many are retained despite missing their latest
	// re-verification (stale counter > 0).
	Stale int
	// Checked is how many previously-known services were re-verified
	// this epoch.
	Checked int
	// Alive is how many of the Checked services still answered.
	Alive int
}

// AliveFrac returns the fraction of re-verified services still alive: the
// empirical per-epoch survival rate of the known set.
func (f Freshness) AliveFrac() float64 {
	if f.Checked == 0 {
		return 0
	}
	return float64(f.Alive) / float64(f.Checked)
}

// StaleRate returns the fraction of the known set carrying a non-zero
// stale counter.
func (f Freshness) StaleRate() float64 {
	if f.Known == 0 {
		return 0
	}
	return float64(f.Stale) / float64(f.Known)
}

// FreshFrac returns the fraction of the known set observed alive this
// epoch.
func (f Freshness) FreshFrac() float64 {
	if f.Known == 0 {
		return 0
	}
	return float64(f.Fresh) / float64(f.Known)
}
