package metrics

import "testing"

func TestFreshnessRatios(t *testing.T) {
	f := Freshness{Known: 200, Fresh: 150, Stale: 50, Checked: 100, Alive: 90}
	if got := f.AliveFrac(); got != 0.9 {
		t.Errorf("AliveFrac = %v; want 0.9", got)
	}
	if got := f.StaleRate(); got != 0.25 {
		t.Errorf("StaleRate = %v; want 0.25", got)
	}
	if got := f.FreshFrac(); got != 0.75 {
		t.Errorf("FreshFrac = %v; want 0.75", got)
	}
}

func TestFreshnessZeroValue(t *testing.T) {
	var f Freshness
	if f.AliveFrac() != 0 || f.StaleRate() != 0 || f.FreshFrac() != 0 {
		t.Error("zero-value Freshness must not divide by zero")
	}
}
