// Package metrics implements the paper's evaluation metrics (§3):
//
//   - Fraction of services (Equation 1): services found over services in
//     ground truth. Biased toward popular ports.
//   - Normalized services (Equation 2): per-port recall averaged over all
//     ports, weighing an uncommon port's services equally with a popular
//     port's.
//   - Precision: ground-truth services found per probe sent (§6.3).
//
// A Tracker consumes an ordered discovery stream annotated with cumulative
// probe counts and produces the coverage-vs-bandwidth curves of Figures
// 2-6.
package metrics

import (
	"math"
	"sort"

	"gps/internal/dataset"
	"gps/internal/netmodel"
)

// GroundTruth is the reference service set (the held-out test split of a
// 100% or 1% scan, per §6.1).
type GroundTruth struct {
	keys    map[netmodel.Key]bool
	portIPs map[uint16]int
	total   int
}

// NewGroundTruth indexes a dataset as ground truth.
func NewGroundTruth(d *dataset.Dataset) *GroundTruth {
	g := &GroundTruth{
		keys:    make(map[netmodel.Key]bool, len(d.Records)),
		portIPs: make(map[uint16]int),
	}
	for _, r := range d.Records {
		k := r.Key()
		if g.keys[k] {
			continue
		}
		g.keys[k] = true
		g.portIPs[r.Port]++
		g.total++
	}
	return g
}

// Contains reports whether (ip, port) is a ground-truth service.
func (g *GroundTruth) Contains(k netmodel.Key) bool { return g.keys[k] }

// Total returns the number of ground-truth services.
func (g *GroundTruth) Total() int { return g.total }

// NumPorts returns |P|: the number of ports with at least one service.
func (g *GroundTruth) NumPorts() int { return len(g.portIPs) }

// PortCount returns #IP_p: the ground-truth service count on port p.
func (g *GroundTruth) PortCount(p uint16) int { return g.portIPs[p] }

// Point is one sample of the coverage curves: after Probes probes, the
// tracker had found Found ground-truth services.
type Point struct {
	Probes     uint64
	Found      int
	FracAll    float64 // Equation 1
	FracNorm   float64 // Equation 2
	Precision  float64 // Found / Probes
	ScansUnits float64 // Probes expressed in "# of 100% scans"
}

// Tracker accumulates discoveries against a ground truth and samples the
// coverage curves. It is not safe for concurrent use.
type Tracker struct {
	gt        *GroundTruth
	spaceSize uint64
	found     map[netmodel.Key]bool
	foundPort map[uint16]int
	normAcc   float64 // running sum of 1/#IP_p per found service
	points    []Point
	probes    uint64
}

// NewTracker creates a tracker; spaceSize converts probes to 100%-scan
// units.
func NewTracker(gt *GroundTruth, spaceSize uint64) *Tracker {
	return &Tracker{
		gt:        gt,
		spaceSize: spaceSize,
		found:     make(map[netmodel.Key]bool),
		foundPort: make(map[uint16]int),
	}
}

// Spend advances the probe counter without a discovery.
func (t *Tracker) Spend(probes uint64) { t.probes += probes }

// Probes returns cumulative probes spent.
func (t *Tracker) Probes() uint64 { return t.probes }

// Record registers a discovered service. It returns true when the service
// is a new ground-truth hit.
func (t *Tracker) Record(k netmodel.Key) bool {
	if !t.gt.Contains(k) || t.found[k] {
		return false
	}
	t.found[k] = true
	t.foundPort[k.Port]++
	t.normAcc += 1 / float64(t.gt.PortCount(k.Port))
	return true
}

// Found returns the number of distinct ground-truth services found.
func (t *Tracker) Found() int { return len(t.found) }

// FracAll returns Equation 1 at the current state.
func (t *Tracker) FracAll() float64 {
	if t.gt.total == 0 {
		return 0
	}
	return float64(len(t.found)) / float64(t.gt.total)
}

// FracNorm returns Equation 2 at the current state.
func (t *Tracker) FracNorm() float64 {
	if t.gt.NumPorts() == 0 {
		return 0
	}
	return t.normAcc / float64(t.gt.NumPorts())
}

// Precision returns ground-truth services found per probe.
func (t *Tracker) Precision() float64 {
	if t.probes == 0 {
		return 0
	}
	return float64(len(t.found)) / float64(t.probes)
}

// Snapshot appends the current state to the curve and returns it.
func (t *Tracker) Snapshot() Point {
	p := Point{
		Probes:    t.probes,
		Found:     len(t.found),
		FracAll:   t.FracAll(),
		FracNorm:  t.FracNorm(),
		Precision: t.Precision(),
	}
	if t.spaceSize > 0 {
		p.ScansUnits = float64(t.probes) / float64(t.spaceSize)
	}
	t.points = append(t.points, p)
	return p
}

// Curve returns the sampled points in probe order.
func (t *Tracker) Curve() Curve { return Curve(t.points) }

// Curve is an ordered sequence of samples.
type Curve []Point

// BandwidthFor returns the probe count at which the curve first reaches
// the given fraction of all services, or (0, false) if it never does.
func (c Curve) BandwidthFor(fracAll float64) (uint64, bool) {
	for _, p := range c {
		if p.FracAll >= fracAll {
			return p.Probes, true
		}
	}
	return 0, false
}

// BandwidthForNorm is BandwidthFor against the normalized metric.
func (c Curve) BandwidthForNorm(fracNorm float64) (uint64, bool) {
	for _, p := range c {
		if p.FracNorm >= fracNorm {
			return p.Probes, true
		}
	}
	return 0, false
}

// Final returns the last point (zero Point for an empty curve).
func (c Curve) Final() Point {
	if len(c) == 0 {
		return Point{}
	}
	return c[len(c)-1]
}

// PrecisionAt interpolates precision at a given fraction of services
// found. Used by Figure 3's "204x more precise at the 94th percentile"
// comparison.
func (c Curve) PrecisionAt(fracAll float64) (float64, bool) {
	i := sort.Search(len(c), func(i int) bool { return c[i].FracAll >= fracAll })
	if i == len(c) {
		return 0, false
	}
	return c[i].Precision, true
}

// SavingsVs returns how many times less bandwidth this curve needs than
// other to reach the same fraction of all services (>1 means this curve is
// cheaper). Returns NaN when either curve never reaches the fraction.
func (c Curve) SavingsVs(other Curve, fracAll float64) float64 {
	a, okA := c.BandwidthFor(fracAll)
	b, okB := other.BandwidthFor(fracAll)
	if !okA || !okB || a == 0 {
		return math.NaN()
	}
	return float64(b) / float64(a)
}
