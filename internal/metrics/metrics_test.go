package metrics

import (
	"math"
	"testing"

	"gps/internal/dataset"
	"gps/internal/netmodel"
)

func tinyDataset() *dataset.Dataset {
	// Port 80: 4 services; port 9999: 1 service. |P| = 2.
	return &dataset.Dataset{Records: []dataset.Record{
		{IP: 1, Port: 80}, {IP: 2, Port: 80}, {IP: 3, Port: 80}, {IP: 4, Port: 80},
		{IP: 5, Port: 9999},
	}}
}

func TestGroundTruthCounts(t *testing.T) {
	gt := NewGroundTruth(tinyDataset())
	if gt.Total() != 5 {
		t.Errorf("Total = %d; want 5", gt.Total())
	}
	if gt.NumPorts() != 2 {
		t.Errorf("NumPorts = %d; want 2", gt.NumPorts())
	}
	if gt.PortCount(80) != 4 || gt.PortCount(9999) != 1 {
		t.Error("PortCount wrong")
	}
	if !gt.Contains(netmodel.Key{IP: 1, Port: 80}) {
		t.Error("Contains missed a service")
	}
	if gt.Contains(netmodel.Key{IP: 1, Port: 81}) {
		t.Error("Contains invented a service")
	}
}

func TestGroundTruthDedup(t *testing.T) {
	d := &dataset.Dataset{Records: []dataset.Record{
		{IP: 1, Port: 80}, {IP: 1, Port: 80},
	}}
	gt := NewGroundTruth(d)
	if gt.Total() != 1 || gt.PortCount(80) != 1 {
		t.Error("duplicate records double-counted")
	}
}

func TestTrackerMetrics(t *testing.T) {
	gt := NewGroundTruth(tinyDataset())
	tr := NewTracker(gt, 1000)

	tr.Spend(500)
	if !tr.Record(netmodel.Key{IP: 1, Port: 80}) {
		t.Error("first record not counted")
	}
	if tr.Record(netmodel.Key{IP: 1, Port: 80}) {
		t.Error("duplicate record counted")
	}
	if tr.Record(netmodel.Key{IP: 99, Port: 80}) {
		t.Error("non-GT record counted")
	}
	tr.Record(netmodel.Key{IP: 5, Port: 9999})

	// Eq 1: 2/5. Eq 2: (1/4 + 1/1) / 2 = 0.625.
	if got := tr.FracAll(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("FracAll = %f; want 0.4", got)
	}
	if got := tr.FracNorm(); math.Abs(got-0.625) > 1e-12 {
		t.Errorf("FracNorm = %f; want 0.625", got)
	}
	if got := tr.Precision(); math.Abs(got-2.0/500) > 1e-12 {
		t.Errorf("Precision = %f; want 0.004", got)
	}
	p := tr.Snapshot()
	if p.ScansUnits != 0.5 {
		t.Errorf("ScansUnits = %f; want 0.5", p.ScansUnits)
	}
	if p.Found != 2 || p.Probes != 500 {
		t.Errorf("snapshot = %+v", p)
	}
}

func TestNormalizedWeighsPortsEqually(t *testing.T) {
	gt := NewGroundTruth(tinyDataset())
	tr := NewTracker(gt, 1000)
	// Finding the single rare-port service moves Eq 2 by 1/2 but Eq 1 by
	// only 1/5 — the normalized metric's entire point (§3).
	tr.Record(netmodel.Key{IP: 5, Port: 9999})
	if tr.FracNorm() != 0.5 {
		t.Errorf("FracNorm = %f; want 0.5", tr.FracNorm())
	}
	if tr.FracAll() != 0.2 {
		t.Errorf("FracAll = %f; want 0.2", tr.FracAll())
	}
}

func buildCurve() Curve {
	gt := NewGroundTruth(tinyDataset())
	tr := NewTracker(gt, 1000)
	tr.Snapshot()
	tr.Spend(100)
	tr.Record(netmodel.Key{IP: 1, Port: 80})
	tr.Snapshot()
	tr.Spend(100)
	tr.Record(netmodel.Key{IP: 2, Port: 80})
	tr.Record(netmodel.Key{IP: 3, Port: 80})
	tr.Snapshot()
	tr.Spend(800)
	tr.Record(netmodel.Key{IP: 4, Port: 80})
	tr.Record(netmodel.Key{IP: 5, Port: 9999})
	tr.Snapshot()
	return tr.Curve()
}

func TestCurveQueries(t *testing.T) {
	c := buildCurve()
	if bw, ok := c.BandwidthFor(0.6); !ok || bw != 200 {
		t.Errorf("BandwidthFor(0.6) = %d,%v; want 200,true", bw, ok)
	}
	if bw, ok := c.BandwidthFor(1.0); !ok || bw != 1000 {
		t.Errorf("BandwidthFor(1.0) = %d,%v", bw, ok)
	}
	if _, ok := c.BandwidthFor(1.1); ok {
		t.Error("BandwidthFor beyond max succeeded")
	}
	if bw, ok := c.BandwidthForNorm(1.0); !ok || bw != 1000 {
		t.Errorf("BandwidthForNorm(1.0) = %d,%v", bw, ok)
	}
	if got := c.Final(); got.Found != 5 {
		t.Errorf("Final().Found = %d", got.Found)
	}
	if (Curve{}).Final() != (Point{}) {
		t.Error("empty curve Final not zero")
	}
	if p, ok := c.PrecisionAt(0.6); !ok || p != 3.0/200 {
		t.Errorf("PrecisionAt(0.6) = %f,%v; want 0.015", p, ok)
	}
}

func TestSavingsVs(t *testing.T) {
	cheap := buildCurve()
	// An "expensive" curve: same discoveries at 10x the probes.
	gt := NewGroundTruth(tinyDataset())
	tr := NewTracker(gt, 1000)
	tr.Spend(2000)
	tr.Record(netmodel.Key{IP: 1, Port: 80})
	tr.Record(netmodel.Key{IP: 2, Port: 80})
	tr.Record(netmodel.Key{IP: 3, Port: 80})
	tr.Snapshot()
	expensive := tr.Curve()

	s := cheap.SavingsVs(expensive, 0.6)
	if s != 10 {
		t.Errorf("SavingsVs = %f; want 10", s)
	}
	if !math.IsNaN(cheap.SavingsVs(expensive, 0.9)) {
		t.Error("SavingsVs beyond the other curve's reach must be NaN")
	}
}

func TestTrackerZeroGT(t *testing.T) {
	gt := NewGroundTruth(&dataset.Dataset{})
	tr := NewTracker(gt, 0)
	if tr.FracAll() != 0 || tr.FracNorm() != 0 || tr.Precision() != 0 {
		t.Error("empty ground truth must yield zero metrics")
	}
	p := tr.Snapshot()
	if p.ScansUnits != 0 {
		t.Error("zero space must yield zero scan units")
	}
}
