package predict

import (
	"testing"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/engine"
	"gps/internal/features"
	"gps/internal/netmodel"
	"gps/internal/probmodel"
)

// fleetHosts: hosts with a vendor banner on 222 always also serve 80 and
// 8443; unrelated hosts serve 80 alone.
func fleetHosts() []dataset.HostGroup {
	var hosts []dataset.HostGroup
	mk := func(ipS string, recs ...dataset.Record) {
		ip := asndb.MustParseIP(ipS)
		for i := range recs {
			recs[i].IP = ip
			recs[i].ASN = 1
		}
		hosts = append(hosts, dataset.HostGroup{IP: ip, Records: recs})
	}
	web := dataset.Record{Port: 80, Proto: features.ProtocolHTTP,
		Feats: features.Set{features.KeyProtocol: "http"}}
	alt := dataset.Record{Port: 8443, Proto: features.ProtocolTLS,
		Feats: features.Set{features.KeyProtocol: "tls"}}
	ssh := dataset.Record{Port: 222, Proto: features.ProtocolSSH,
		Feats: features.Set{features.KeyProtocol: "ssh", features.KeySSHBanner: "vendor"}}
	tls := dataset.Record{Port: 443, Proto: features.ProtocolTLS,
		Feats: features.Set{features.KeyProtocol: "tls"}}
	mk("10.0.1.1", web, alt, ssh)
	mk("10.0.1.2", web, alt, ssh)
	mk("10.0.1.3", web, alt, ssh)
	mk("10.0.2.1", web)
	mk("10.0.2.2", web)
	mk("10.0.2.3", web)
	// An 8443 host without 80: P(80 | 8443) = 3/4 < P(80 | 222) = 1, so
	// the vendor port is the strongest anchor for the fleet.
	mk("10.0.3.1", alt, tls)
	return hosts
}

func buildModel(t *testing.T) (*probmodel.Model, []dataset.HostGroup) {
	t.Helper()
	hosts := fleetHosts()
	return probmodel.Build(probmodel.Config{Floor: -1, MinSupport: -1}, hosts), hosts
}

func TestBuildMPFCoversSeedServices(t *testing.T) {
	m, hosts := buildModel(t)
	mpf := BuildMPF(m, hosts, engine.Config{})
	if mpf.Len() == 0 || mpf.NumConds() == 0 {
		t.Fatal("empty MPF")
	}
	// Every multi-service seed service must be predictable through some
	// rule: check that a rule predicting 8443 via the 222 anchor exists.
	found80, found8443 := false, false
	for _, e := range mpf.Entries() {
		if e.Cond.Port == 222 && e.Port == 8443 && e.P == 1 {
			found8443 = true
		}
		if e.Cond.Port == 222 && e.Port == 80 && e.P == 1 {
			found80 = true
		}
	}
	if !found80 || !found8443 {
		t.Errorf("MPF missing the vendor rules: 80=%v 8443=%v", found80, found8443)
	}
	// Entries are sorted by descending probability.
	es := mpf.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].P < es[i].P {
			t.Fatal("Entries not sorted by probability")
		}
	}
}

func TestPredictFromAnchor(t *testing.T) {
	m, hosts := buildModel(t)
	mpf := BuildMPF(m, hosts, engine.Config{})
	// A fresh host discovered on port 222 with the vendor banner must
	// receive predictions for 80 and 8443.
	anchor := dataset.Record{
		IP: asndb.MustParseIP("10.0.9.9"), Port: 222, ASN: 1,
		Proto: features.ProtocolSSH,
		Feats: features.Set{features.KeyProtocol: "ssh", features.KeySSHBanner: "vendor"},
	}
	preds := Predict(m, mpf, []dataset.Record{anchor}, nil, engine.Config{})
	want := map[uint16]bool{80: true, 8443: true}
	got := map[uint16]bool{}
	for _, p := range preds {
		if p.IP != anchor.IP {
			t.Errorf("prediction for wrong IP %v", p.IP)
		}
		if p.Port == 222 {
			t.Error("predicted the anchor's own port")
		}
		got[p.Port] = true
	}
	for port := range want {
		if !got[port] {
			t.Errorf("missing prediction for port %d", port)
		}
	}
}

func TestPredictKnownFilter(t *testing.T) {
	m, hosts := buildModel(t)
	mpf := BuildMPF(m, hosts, engine.Config{})
	anchor := dataset.Record{
		IP: asndb.MustParseIP("10.0.9.9"), Port: 222, ASN: 1,
		Feats: features.Set{features.KeyProtocol: "ssh", features.KeySSHBanner: "vendor"},
	}
	known := func(k netmodel.Key) bool { return k.Port == 80 }
	preds := Predict(m, mpf, []dataset.Record{anchor}, known, engine.Config{})
	for _, p := range preds {
		if p.Port == 80 {
			t.Error("known service predicted again")
		}
	}
}

func TestPredictOrderingAndDedup(t *testing.T) {
	m, hosts := buildModel(t)
	mpf := BuildMPF(m, hosts, engine.Config{})
	// Two anchors on the same host: dedup (IP, port) keeping max P.
	ip := asndb.MustParseIP("10.0.9.9")
	anchors := []dataset.Record{
		{IP: ip, Port: 222, ASN: 1,
			Feats: features.Set{features.KeyProtocol: "ssh", features.KeySSHBanner: "vendor"}},
		{IP: ip, Port: 80, ASN: 1,
			Feats: features.Set{features.KeyProtocol: "http"}},
	}
	preds := Predict(m, mpf, anchors, nil, engine.Config{})
	seen := map[netmodel.Key]int{}
	for i, p := range preds {
		seen[p.Key()]++
		if i > 0 && preds[i-1].P < p.P {
			t.Fatal("predictions not sorted by descending P")
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("key %v predicted %d times", k, n)
		}
	}
}

func TestPredictParallelMatchesSerial(t *testing.T) {
	m, hosts := buildModel(t)
	mpf := BuildMPF(m, hosts, engine.Config{})
	anchors := []dataset.Record{}
	for _, h := range hosts {
		anchors = append(anchors, h.Records...)
	}
	a := Predict(m, mpf, anchors, nil, engine.Config{Workers: 1})
	b := Predict(m, mpf, anchors, nil, engine.Config{Workers: 8})
	if len(a) != len(b) {
		t.Fatalf("parallel predict differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPredictionKey(t *testing.T) {
	p := Prediction{IP: 9, Port: 80, P: 0.5}
	if p.Key() != (netmodel.Key{IP: 9, Port: 80}) {
		t.Error("Key() wrong")
	}
}
