// Package predict implements GPS's fourth phase (§5.4): predicting every
// remaining service once each host has at least one discovered anchor
// service. It builds the "most predictive feature values" (MPF) list —
// for every seed service, the feature tuple that best predicts it — and
// then maps each anchor service's feature values through that list to emit
// an ordered predictions list of (IP, port) pairs to scan.
package predict

import (
	"sort"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/engine"
	"gps/internal/netmodel"
	"gps/internal/probmodel"
)

// mpfKey pairs a condition with the port it predicts.
type mpfKey struct {
	cond probmodel.Cond
	port uint16
}

// Entry is one MPF rule: when a discovered service matches Cond, predict
// Port on the same host with probability P.
type Entry struct {
	Cond probmodel.Cond
	Port uint16
	P    float64
}

// MPF is the most-predictive-feature-values list, indexed by condition for
// prediction-time lookup.
type MPF struct {
	byCond map[probmodel.Cond][]Entry
	n      int
}

// BuildMPF runs §5.4 step 1 over the seed hosts: for each seed service
// (IP, PortA) on a multi-service host, find the feature tuple with maximum
// P(PortA) and record (tuple → PortA). Probabilities below the model's
// floor were already discarded by the model. Because *every* seed service
// contributes its best rule, every predictable pattern seen in the seed is
// guaranteed representation — the property §5.4 calls crucial.
func BuildMPF(m *probmodel.Model, hosts []dataset.HostGroup, cfg engine.Config) *MPF {
	// Shuffle on the (cond, port) pair; reduce keeps the probability
	// (identical by construction since P is a pure function of the pair).
	pairs := engine.MapReduce(cfg, nil, hosts,
		func(h dataset.HostGroup, emit engine.Emit[mpfKey, float64]) {
			if len(h.Records) < 2 {
				return
			}
			for _, ra := range h.Records {
				best, p, ok := m.BestCondForHost(h, ra.Port)
				if !ok {
					continue
				}
				emit(mpfKey{cond: best, port: ra.Port}, p)
			}
		},
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})

	out := &MPF{byCond: make(map[probmodel.Cond][]Entry), n: len(pairs)}
	for k, p := range pairs {
		out.byCond[k.cond] = append(out.byCond[k.cond], Entry{Cond: k.cond, Port: k.port, P: p})
	}
	for _, entries := range out.byCond {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].P != entries[j].P {
				return entries[i].P > entries[j].P
			}
			return entries[i].Port < entries[j].Port
		})
	}
	return out
}

// Len returns the number of MPF rules.
func (m *MPF) Len() int { return m.n }

// RulesFor returns the rules keyed on a condition, ordered by descending
// probability. Callers must not modify the slice.
func (m *MPF) RulesFor(c probmodel.Cond) []Entry { return m.byCond[c] }

// NumConds returns the number of distinct conditions in the list.
func (m *MPF) NumConds() int { return len(m.byCond) }

// Entries returns every rule, ordered by descending probability. Used by
// the Table 3 analysis of which features predict the most services.
func (m *MPF) Entries() []Entry {
	out := make([]Entry, 0, m.n)
	for _, es := range m.byCond {
		out = append(out, es...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		if out[i].Port != out[j].Port {
			return out[i].Port < out[j].Port
		}
		return out[i].Cond.String() < out[j].Cond.String()
	})
	return out
}

// Prediction is one (IP, port) pair GPS will probe, with the probability
// that justified it. The predictions list is scanned in descending P so
// the most predictable services are found first (§6.3).
type Prediction struct {
	IP   asndb.IP
	Port uint16
	P    float64
}

// Key returns the (IP, port) identity.
func (p Prediction) Key() netmodel.Key { return netmodel.Key{IP: p.IP, Port: p.Port} }

// Predict runs §5.4 steps 2-3: for every anchor service discovered by the
// priors scan, extract its feature values, look each resulting condition
// up in the MPF list, and emit the predicted ports on that host. Duplicate
// (IP, port) predictions keep their maximum probability. known filters out
// services already discovered (no point re-probing them); it may be nil.
func Predict(m *probmodel.Model, mpf *MPF, anchors []dataset.Record, known func(netmodel.Key) bool, cfg engine.Config) []Prediction {
	preds := engine.MapReduce(cfg, nil, anchors,
		func(r dataset.Record, emit engine.Emit[netmodel.Key, float64]) {
			for _, c := range m.CondsOf(r) {
				for _, e := range m2entries(mpf, c) {
					if e.Port == r.Port {
						continue
					}
					k := netmodel.Key{IP: r.IP, Port: e.Port}
					if known != nil && known(k) {
						continue
					}
					emit(k, e.P)
				}
			}
		},
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})

	out := make([]Prediction, 0, len(preds))
	for k, p := range preds {
		out = append(out, Prediction{IP: k.IP, Port: k.Port, P: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		if out[i].IP != out[j].IP {
			return out[i].IP < out[j].IP
		}
		return out[i].Port < out[j].Port
	})
	return out
}

func m2entries(mpf *MPF, c probmodel.Cond) []Entry { return mpf.byCond[c] }
