package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gps/internal/netmodel"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty sample not zero")
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.P99 != 7 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestFitZipfRecoversExponent(t *testing.T) {
	// Synthesize an exact power law f(r) = 1e6 * r^-1.2.
	counts := make([]int, 500)
	for r := 1; r <= len(counts); r++ {
		counts[r-1] = int(1e6 * math.Pow(float64(r), -1.2))
	}
	fit := FitZipf(counts)
	if math.Abs(fit.Alpha-1.2) > 0.05 {
		t.Errorf("alpha = %.3f; want ~1.2", fit.Alpha)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %.3f on an exact power law", fit.R2)
	}
}

func TestFitZipfDegenerate(t *testing.T) {
	if f := FitZipf([]int{5}); f.Ranks != 1 || f.Alpha != 0 {
		t.Errorf("degenerate fit = %+v", f)
	}
	if f := FitZipf(nil); f.Ranks != 0 {
		t.Errorf("empty fit = %+v", f)
	}
	// Uniform counts: alpha ~ 0.
	if f := FitZipf([]int{10, 10, 10, 10, 10}); math.Abs(f.Alpha) > 1e-9 {
		t.Errorf("uniform alpha = %f; want 0", f.Alpha)
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]int{1, 1, 1, 1}); math.Abs(h-2) > 1e-12 {
		t.Errorf("uniform-4 entropy = %f; want 2 bits", h)
	}
	if h := Entropy([]int{10}); h != 0 {
		t.Errorf("point-mass entropy = %f; want 0", h)
	}
	if Entropy(nil) != 0 {
		t.Error("empty entropy nonzero")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-9 {
		t.Errorf("equal gini = %f; want 0", g)
	}
	// Total concentration in one of many values approaches 1 - 1/n.
	vals := make([]float64, 100)
	vals[0] = 1000
	if g := Gini(vals); g < 0.95 {
		t.Errorf("concentrated gini = %f; want ~0.99", g)
	}
	if Gini(nil) != 0 {
		t.Error("empty gini nonzero")
	}
}

// TestGiniBoundsQuick property: Gini of any non-negative sample lies in
// [0, 1).
func TestGiniBoundsQuick(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%50) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		g := Gini(vals)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopShare(t *testing.T) {
	counts := []int{50, 30, 10, 5, 5}
	if s := TopShare(counts, 2); math.Abs(s-0.8) > 1e-12 {
		t.Errorf("TopShare = %f; want 0.8", s)
	}
	if TopShare(nil, 3) != 0 {
		t.Error("empty TopShare nonzero")
	}
}

// TestUniversePortLawIsHeavyTailed validates the §4 substrate property:
// port popularity in the generated universe follows a heavy-tailed law
// with a dominant head.
func TestUniversePortLawIsHeavyTailed(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(91))
	pop := u.PortPopulation()
	fit := FitZipf(pop)
	if fit.Alpha < 0.5 {
		t.Errorf("port popularity alpha = %.2f; want a heavy tail (>0.5)", fit.Alpha)
	}
	top10 := TopShare(pop, 10)
	if top10 < 0.3 {
		t.Errorf("top-10 ports hold %.2f of services; expected a dominant head", top10)
	}
	// And a genuine tail: the top 10 must not hold everything.
	if top10 > 0.99 {
		t.Errorf("top-10 ports hold %.2f; the long tail is missing", top10)
	}
}
