// Package stats provides the distribution analysis used to validate the
// synthetic universe against the structural claims of §4: port popularity
// follows a heavy-tailed (Zipf-like) law, services concentrate in a small
// share of subnets, and feature values vary widely in entropy. The gpsgen
// command and the netmodel tests use these to check that the substrate
// actually has the statistics GPS exploits.
package stats

import (
	"math"
	"sort"
)

// Summary holds basic order statistics of a sample.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	Median   float64
	P90, P99 float64
	StdDev   float64
}

// Summarize computes order statistics; it returns the zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: quantile(sorted, 0.5),
		P90:    quantile(sorted, 0.9),
		P99:    quantile(sorted, 0.99),
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var varSum float64
	for _, x := range sorted {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(s.N))
	return s
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ZipfFit estimates the exponent of a rank-frequency power law
// f(r) ∝ r^(-alpha) by least squares on log-log coordinates. Counts are
// sorted descending internally; zero counts are dropped. R2 reports the
// fit quality in log-log space.
type ZipfFit struct {
	Alpha float64
	R2    float64
	Ranks int
}

// FitZipf fits the rank-frequency exponent.
func FitZipf(counts []int) ZipfFit {
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			cs = append(cs, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cs)))
	if len(cs) < 3 {
		return ZipfFit{Ranks: len(cs)}
	}
	// Least squares on (log rank, log count).
	n := float64(len(cs))
	var sx, sy, sxx, sxy float64
	for i, c := range cs {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return ZipfFit{Ranks: len(cs)}
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	// R^2.
	meanY := sy / n
	var ssRes, ssTot float64
	for i, c := range cs {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c))
		pred := intercept + slope*x
		ssRes += (y - pred) * (y - pred)
		ssTot += (y - meanY) * (y - meanY)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return ZipfFit{Alpha: -slope, R2: r2, Ranks: len(cs)}
}

// Entropy computes the Shannon entropy (bits) of a discrete distribution
// given as counts.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Gini computes the Gini coefficient of a sample of non-negative values:
// 0 for perfect equality, approaching 1 for total concentration. Used to
// quantify how concentrated services are across subnets.
func Gini(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cum, total float64
	n := float64(len(sorted))
	for i, v := range sorted {
		cum += v * float64(len(sorted)-i)
		total += v
	}
	if total == 0 {
		return 0
	}
	return (n + 1 - 2*cum/total) / n
}

// TopShare returns the fraction of the total mass held by the top-k
// values: "the top 10 ports hold 5% of all services" style statements.
func TopShare(counts []int, k int) float64 {
	cs := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(cs)))
	var total, top int
	for i, c := range cs {
		total += c
		if i < k {
			top += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}
