package serve

import (
	"bytes"
	"sync"

	"gps/internal/continuous"
	"gps/internal/netmodel"
	"gps/internal/shard"
)

// defaultFeedHistory is how many epoch deltas a feed retains when the
// caller does not say. A replica whose subscription epoch has aged out
// of the ring re-bootstraps from a full snapshot, so the depth is the
// "K epochs behind" threshold: at ~9%-per-10-days churn (§3) even a
// modest ring covers any realistic replica outage, while bounding the
// feed's memory to history × churn.
const defaultFeedHistory = 64

// feedDelta is one retained epoch transition: the decoded delta (the
// watch endpoint re-serializes it as JSON) and its canonical GPSE wire
// bytes (what replica sessions stream).
type feedDelta struct {
	delta *shard.Delta
	wire  []byte
}

// Feed is the change-feed hub between the commit path and the
// replication/watch consumers. The commit hook calls Commit with each
// epoch's merged inventory; the feed diffs it against the previous
// epoch's retained view, keeps the delta in a bounded history ring, and
// wakes every waiting subscriber. It implements the transport layer's
// FeedSource contract structurally (Head/Snapshot/Delta/Wait) and backs
// GET /v1/watch through the same history.
//
// All methods are safe for concurrent use.
type Feed struct {
	mu      sync.Mutex
	closed  bool
	epoch   int // last committed epoch; -1 before the first commit
	inv     map[netmodel.Key]*continuous.Entry
	invWire []byte // lazy canonical GPSV bytes of inv
	hist    []feedDelta
	history int
	notify  chan struct{} // closed and replaced on every commit
}

// NewFeed returns a feed retaining up to history epoch deltas;
// history <= 0 selects the default depth.
func NewFeed(history int) *Feed {
	if history <= 0 {
		history = defaultFeedHistory
	}
	return &Feed{epoch: -1, history: history, notify: make(chan struct{})}
}

// Commit records a newly committed epoch and its merged inventory. The
// map becomes the feed's to keep (the commit-hook contract: coordinators
// build it fresh per commit) and must not be mutated afterwards.
// Non-monotonic epochs are ignored, mirroring Publisher.Publish.
func (f *Feed) Commit(epoch int, inv map[netmodel.Key]*continuous.Entry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || epoch <= f.epoch {
		return
	}
	if f.epoch >= 0 {
		f.retain(shard.ComputeDelta(f.inv, inv, f.epoch, epoch), nil)
	}
	f.adopt(epoch, inv)
}

// CommitDelta records an epoch transition whose delta is already known —
// the replica path, where the delta arrived over the wire and inv is the
// result of applying it. Passing the original wire bytes (nil re-encodes)
// lets a replica re-export the feed without re-serialization. Both the
// delta and the map become the feed's to keep.
func (f *Feed) CommitDelta(d *shard.Delta, wire []byte, inv map[netmodel.Key]*continuous.Entry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || d.Epoch <= f.epoch {
		return
	}
	if f.epoch >= 0 && d.BaseEpoch == f.epoch {
		f.retain(d, wire)
	}
	f.adopt(d.Epoch, inv)
}

// retain appends one transition to the history ring. Callers hold f.mu.
func (f *Feed) retain(d *shard.Delta, wire []byte) {
	if wire == nil {
		var buf bytes.Buffer
		if err := shard.WriteDelta(&buf, d); err != nil {
			return // never fails on an in-memory buffer; drop defensively
		}
		wire = buf.Bytes()
	}
	f.hist = append(f.hist, feedDelta{delta: d, wire: wire})
	if len(f.hist) > f.history {
		f.hist = f.hist[len(f.hist)-f.history:]
	}
}

// adopt swaps in the new inventory and wakes waiters. Callers hold f.mu.
func (f *Feed) adopt(epoch int, inv map[netmodel.Key]*continuous.Entry) {
	f.epoch = epoch
	f.inv = inv
	f.invWire = nil
	feedHeadEpoch.Set(float64(epoch))
	feedHistoryDepth.Set(float64(len(f.hist)))
	close(f.notify)
	f.notify = make(chan struct{})
}

// Head returns the latest committed epoch, -1 before the first commit.
func (f *Feed) Head() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Snapshot returns the current epoch and its inventory as canonical
// GPSV bytes, serializing at most once per commit.
func (f *Feed) Snapshot() (int, []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.invWire == nil {
		var buf bytes.Buffer
		if err := shard.WriteInventory(&buf, f.inv); err == nil {
			f.invWire = buf.Bytes()
		}
	}
	return f.epoch, f.invWire
}

// SnapshotInventory returns the current epoch and a reference to the
// retained inventory. The map is as-committed and must be treated as
// immutable; it backs the watch endpoint's bootstrap frames.
func (f *Feed) SnapshotInventory() (int, map[netmodel.Key]*continuous.Entry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch, f.inv
}

// Delta returns the GPSE wire bytes advancing epoch from to the returned
// next epoch, or ok=false when from has aged out of the history (the
// subscriber must re-bootstrap from Snapshot).
func (f *Feed) Delta(from int) ([]byte, int, bool) {
	fd, ok := f.lookup(from)
	if !ok {
		return nil, 0, false
	}
	return fd.wire, fd.delta.Epoch, true
}

// DeltaAt is Delta for consumers that want the decoded form (the watch
// endpoint re-serializes it as JSON). The returned delta is shared and
// must be treated as immutable.
func (f *Feed) DeltaAt(from int) (*shard.Delta, bool) {
	fd, ok := f.lookup(from)
	if !ok {
		return nil, false
	}
	return fd.delta, true
}

func (f *Feed) lookup(from int) (feedDelta, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fd := range f.hist {
		if fd.delta.BaseEpoch == from {
			return fd, true
		}
	}
	return feedDelta{}, false
}

// Wait blocks until the head epoch exceeds epoch, cancel fires, or the
// feed closes. It returns false only when the feed closed for good;
// callers distinguish a cancel by checking their own channel.
func (f *Feed) Wait(epoch int, cancel <-chan struct{}) bool {
	f.mu.Lock()
	for {
		if f.closed {
			f.mu.Unlock()
			return false
		}
		if f.epoch > epoch {
			f.mu.Unlock()
			return true
		}
		ch := f.notify
		f.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			return true
		}
		f.mu.Lock()
	}
}

// Close ends the feed: every Wait returns false and subscriber sessions
// shut down cleanly. Further commits are ignored.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	close(f.notify)
	f.notify = make(chan struct{})
}
