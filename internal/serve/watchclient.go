package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// WatchEntry is one service in a watch event, mirroring the wire shape
// (watchEntryJSON): every GPSV serving field, numerically.
type WatchEntry struct {
	IP        string `json:"ip"`
	Port      uint16 `json:"port"`
	Proto     uint8  `json:"proto"`
	ASN       uint32 `json:"asn"`
	TTL       uint8  `json:"ttl"`
	FirstSeen int    `json:"first_seen"`
	LastSeen  int    `json:"last_seen"`
	Stale     int    `json:"stale"`
}

// WatchKey names one removed service.
type WatchKey struct {
	IP   string `json:"ip"`
	Port uint16 `json:"port"`
}

// WatchEvent is one line of a /v1/watch stream: Event is "snapshot"
// (Services holds the full inventory as of Epoch) or "delta" (Adds/
// Updates/Removes advance BaseEpoch to Epoch).
type WatchEvent struct {
	Event     string       `json:"event"`
	Epoch     int          `json:"epoch"`
	BaseEpoch int          `json:"base_epoch"`
	Services  []WatchEntry `json:"services"`
	Adds      []WatchEntry `json:"adds"`
	Updates   []WatchEntry `json:"updates"`
	Removes   []WatchKey   `json:"removes"`
}

func (e WatchEntry) entry() (netmodel.Key, *continuous.Entry, error) {
	k, err := ipKey(e.IP, e.Port)
	if err != nil {
		return netmodel.Key{}, nil, err
	}
	return k, &continuous.Entry{
		Rec: dataset.Record{
			IP: k.IP, Port: e.Port,
			Proto: features.Protocol(e.Proto), ASN: asndb.ASN(e.ASN), TTL: e.TTL,
		},
		FirstSeen: e.FirstSeen, LastSeen: e.LastSeen, Stale: e.Stale,
	}, nil
}

// ApplyTo folds the event into inv: a snapshot replaces its contents, a
// delta applies adds/updates/removes strictly (an add that exists or an
// update/remove that does not means inv diverged from the stream's
// base, and errors with inv partially updated). A consumer that starts
// from an empty map and applies every event in order holds exactly the
// origin's inventory after each event.
func (ev WatchEvent) ApplyTo(inv map[netmodel.Key]*continuous.Entry) error {
	switch ev.Event {
	case "snapshot":
		for k := range inv {
			delete(inv, k)
		}
		for _, s := range ev.Services {
			k, e, err := s.entry()
			if err != nil {
				return fmt.Errorf("serve: watch snapshot: %w", err)
			}
			inv[k] = e
		}
		return nil
	case "delta":
		for _, a := range ev.Adds {
			k, e, err := a.entry()
			if err != nil {
				return fmt.Errorf("serve: watch delta: %w", err)
			}
			if _, ok := inv[k]; ok {
				return fmt.Errorf("serve: watch delta %d→%d adds %v/%d, which is already held",
					ev.BaseEpoch, ev.Epoch, a.IP, a.Port)
			}
			inv[k] = e
		}
		for _, u := range ev.Updates {
			k, e, err := u.entry()
			if err != nil {
				return fmt.Errorf("serve: watch delta: %w", err)
			}
			if _, ok := inv[k]; !ok {
				return fmt.Errorf("serve: watch delta %d→%d updates %v/%d, which is not held",
					ev.BaseEpoch, ev.Epoch, u.IP, u.Port)
			}
			inv[k] = e
		}
		for _, r := range ev.Removes {
			k, err := ipKey(r.IP, r.Port)
			if err != nil {
				return fmt.Errorf("serve: watch delta: %w", err)
			}
			if _, ok := inv[k]; !ok {
				return fmt.Errorf("serve: watch delta %d→%d removes %v/%d, which is not held",
					ev.BaseEpoch, ev.Epoch, r.IP, r.Port)
			}
			delete(inv, k)
		}
		return nil
	default:
		return fmt.Errorf("serve: unknown watch event %q", ev.Event)
	}
}

// ErrWatchDone stops WatchClient.Follow from inside the callback;
// Follow returns nil.
var ErrWatchDone = errors.New("serve: watch done")

// WatchClient follows a /v1/watch stream.
type WatchClient struct {
	// URL is the watch endpoint, e.g. http://host:port/v1/watch.
	URL string
	// Since resumes after an epoch the consumer already holds; -1 (or
	// any epoch out of the origin's history) starts with a snapshot.
	Since int
	// Client overrides the HTTP client; nil uses http.DefaultClient
	// (whose zero timeout is what an endless stream needs).
	Client *http.Client
}

// Follow connects and invokes fn for each event, in stream order, until
// the context ends, fn returns an error (ErrWatchDone for a clean
// stop), or the stream ends. A non-200 response is decoded into the
// error envelope and returned as an error.
func (c *WatchClient) Follow(ctx context.Context, fn func(WatchEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.URL+"?since="+strconv.Itoa(c.Since), nil)
	if err != nil {
		return fmt.Errorf("serve: watch: %w", err)
	}
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("serve: watch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error errorJSON `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope) == nil && envelope.Error.Code != "" {
			return fmt.Errorf("serve: watch: %s (%s)", envelope.Error.Message, envelope.Error.Code)
		}
		return fmt.Errorf("serve: watch: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	// A snapshot line carries the whole inventory; the scanner's default
	// 64 KiB line cap would truncate it.
	sc.Buffer(make([]byte, 0, 1<<16), 1<<28)
	for sc.Scan() {
		var ev WatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("serve: watch: undecodable event: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, ErrWatchDone) {
				return nil
			}
			return err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("serve: watch: %w", err)
	}
	return nil
}
