package serve

import (
	"net/http"
	"time"
)

// HTTP server timeout defaults. The read path is public: without a
// header timeout a client that dials and then trickles bytes (or sends
// nothing at all) pins a connection and its goroutine forever — enough
// of them and the inventory API is down without a single malformed
// request (slow-loris). Every response here is a small JSON body built
// from an in-memory snapshot, so the write bound is generous.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 10 * time.Second
	DefaultWriteTimeout      = 30 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
)

// NewHTTPServer returns an http.Server for the public read path with the
// slow-client timeouts set. Callers that need different bounds can
// adjust the returned server before ListenAndServe.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}
