package serve

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strings"

	"gps/internal/shard/transport"
)

// ClusterSource is the control-plane view behind GET /v1/cluster and
// the drain endpoint. *transport.Coordinator implements it directly.
type ClusterSource interface {
	// Status returns the live membership document: workers, per-shard
	// assignment and latency, and recent migrations.
	Status() transport.ClusterStatus
	// RequestDrain queues a worker's shards for migration away at the
	// next epoch boundary.
	RequestDrain(id string) error
}

// EnableCluster attaches the cluster control plane to the server:
//
//	GET  /v1/cluster                     live membership + migrations
//	POST /v1/cluster/workers/{id}/drain  migrate a worker's shards away
//
// Reads are always allowed. Mutations require admin=true (the daemon's
// -admin flag); without it the drain endpoint answers 403
// admin_disabled, so exposing the read view never implies granting
// control. Without a source both paths answer 404 cluster_unavailable.
// Returns s for chaining.
func (s *Server) EnableCluster(src ClusterSource, admin bool) *Server {
	s.cluster = src
	s.admin = admin
	return s
}

// handleCluster serves the membership document. The doc is live mutable
// state — it changes at every epoch boundary and the instant a worker
// registers — so it is explicitly uncacheable and carries no ETag.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed, "GET or HEAD only")
		return
	}
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, errClusterUnavailable,
			"this server fronts no coordinator; /v1/cluster is only served by a coordinator daemon")
		return
	}
	doc := s.cluster.Status()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	body, err := json.Marshal(doc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, err.Error())
		return
	}
	w.Write(append(body, '\n'))
}

// handleClusterOp routes the /v1/cluster/ subtree. The only operation
// is workers/{id}/drain; anything else is the structured 404. Worker
// ids are opaque path segments ("w4", "127.0.0.1:9411") and arrive
// percent-decoded.
func (s *Server) handleClusterOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/cluster/")
	parts := strings.Split(rest, "/")
	if len(parts) != 3 || parts[0] != "workers" || parts[2] != "drain" || parts[1] == "" {
		s.handleNotFound(w, r)
		return
	}
	id, err := url.PathUnescape(parts[1])
	if err != nil {
		s.handleNotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed, "POST only")
		return
	}
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, errClusterUnavailable,
			"this server fronts no coordinator; /v1/cluster is only served by a coordinator daemon")
		return
	}
	if !s.admin {
		writeError(w, http.StatusForbidden, errAdminDisabled,
			"mutating cluster endpoints are disabled; start the daemon with -admin to enable them")
		return
	}
	if err := s.cluster.RequestDrain(id); err != nil {
		code, status := errDrainRejected, http.StatusConflict
		if strings.Contains(err.Error(), "unknown worker") {
			code, status = errUnknownWorker, http.StatusNotFound
		}
		writeError(w, status, code, err.Error())
		return
	}
	// 202, not 200: the drain is queued, and the shards move at the
	// next epoch boundary. Poll GET /v1/cluster for the handoff.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	body, _ := json.Marshal(struct {
		Status string `json:"status"`
		Worker string `json:"worker"`
	}{Status: "draining", Worker: id})
	w.Write(append(body, '\n'))
}
