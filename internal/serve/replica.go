package serve

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gps/internal/continuous"
	"gps/internal/netmodel"
	"gps/internal/shard"
	"gps/internal/shard/transport"
	"gps/internal/trace"
)

// ReplicaOptions tunes a ReplicaServer.
type ReplicaOptions struct {
	// FeedHistory is the depth of the replica's own re-export feed
	// (replicas chain: a replica serves /v1/watch and can feed further
	// replicas); 0 selects the default.
	FeedHistory int
	// Backoff is the initial reconnect delay after a feed failure,
	// doubling to 16× per attempt; 0 selects 250ms.
	Backoff time.Duration
	// Dial carries the feed connection's timeouts; nil selects the
	// transport defaults.
	Dial *transport.Options
	// Logf receives one line per replica event; nil discards.
	Logf func(format string, args ...any)
}

func (o *ReplicaOptions) backoff() time.Duration {
	if o == nil || o.Backoff <= 0 {
		return 250 * time.Millisecond
	}
	return o.Backoff
}

func (o *ReplicaOptions) logf(format string, args ...any) {
	if o != nil && o.Logf != nil {
		o.Logf(format, args...)
	}
}

// ReplicaServer is a stateless read replica: it subscribes to an origin
// daemon's replication feed, applies epoch deltas onto a local
// inventory, and publishes each resulting epoch through its own
// Publisher — so a Server over that publisher serves the full /v1 API
// with ETags identical to the origin's (the ETag is a pure function of
// the epoch, and the bodies are pure functions of the inventory).
//
// "Stateless" is literal: nothing is persisted. A replica that starts,
// restarts, or falls behind the origin's delta history bootstraps from
// a full snapshot frame and catches up; its subscription epoch rides
// the feed protocol, so a live replica only ever transfers the churn.
type ReplicaServer struct {
	upstream string
	opts     *ReplicaOptions
	pub      *Publisher
	feed     *Feed
	epoch    atomic.Int64 // last applied epoch; -1 before bootstrap
	lag      atomic.Int64 // origin head minus applied epoch, per last event

	// inv is the replica's current inventory, touched only by Run.
	// Deltas apply to a clone, so every map ever handed to the feed or
	// the publisher stays frozen.
	inv map[netmodel.Key]*continuous.Entry
}

// NewReplicaServer prepares a replica of the origin feed at upstream
// (host:port of the origin's -feed listener). Run starts it; Publisher
// and Feed are live immediately (serving 503s until the bootstrap).
func NewReplicaServer(upstream string, opts *ReplicaOptions) *ReplicaServer {
	r := &ReplicaServer{
		upstream: upstream,
		opts:     opts,
		pub:      &Publisher{},
		feed:     NewFeed(opts.feedHistory()),
	}
	r.epoch.Store(-1)
	return r
}

func (o *ReplicaOptions) feedHistory() int {
	if o == nil {
		return 0
	}
	return o.FeedHistory
}

// Publisher returns the replica's snapshot publisher; wrap it in a
// Server to serve the /v1 API.
func (r *ReplicaServer) Publisher() *Publisher { return r.pub }

// Feed returns the replica's re-export feed: it carries every epoch the
// replica applies, backing a local /v1/watch (and, chained through
// transport.ServeFeed, further replicas).
func (r *ReplicaServer) Feed() *Feed { return r.feed }

// Epoch returns the last applied epoch, -1 before the first bootstrap.
func (r *ReplicaServer) Epoch() int { return int(r.epoch.Load()) }

// Health implements HealthSource: a replica is "starting" until its
// first bootstrap frame lands, and reports how many epochs it trails
// the origin after that.
func (r *ReplicaServer) Health() HealthInfo {
	return HealthInfo{
		Role:          "replica",
		Bootstrapping: r.Epoch() < 0,
		FeedLag:       int(r.lag.Load()),
	}
}

// Run subscribes and applies the feed until ctx ends, redialing with
// backoff across origin restarts and connection failures. It always
// returns nil after ctx ends; the replica keeps serving its last
// applied snapshot throughout any upstream outage.
func (r *ReplicaServer) Run(ctx context.Context) error {
	defer r.feed.Close()
	delay := r.opts.backoff()
	since := r.Epoch()
	for ctx.Err() == nil {
		fc, err := transport.DialFeed(r.upstream, since, r.opts.dialOpts())
		if err != nil {
			r.opts.logf("replica: dialing %s: %v", r.upstream, err)
			if !r.sleep(ctx, delay) {
				return nil
			}
			delay = r.nextDelay(delay)
			replicaReconnects.Inc()
			continue
		}
		// A dead context must unblock Recv: close the connection under it.
		stop := context.AfterFunc(ctx, func() { fc.Close() })
		before := r.Epoch()
		since = r.consume(ctx, fc)
		stop()
		fc.Close()
		if r.Epoch() != before {
			// The connection made progress; don't punish the next dial
			// for an origin restart that happened epochs later.
			delay = r.opts.backoff()
		}
		if ctx.Err() != nil {
			return nil
		}
		if !r.sleep(ctx, delay) {
			return nil
		}
		delay = r.nextDelay(delay)
		replicaReconnects.Inc()
	}
	return nil
}

// consume drains one feed connection until it fails or desyncs,
// returning the epoch the next subscription should resume from.
func (r *ReplicaServer) consume(ctx context.Context, fc *transport.FeedConn) int {
	for {
		ev, err := fc.Recv()
		if err != nil {
			if ctx.Err() == nil {
				r.opts.logf("replica: feed from %s ended: %v", r.upstream, err)
			}
			return r.Epoch()
		}
		switch ev.Kind {
		case transport.FeedSnapshot:
			inv, err := shard.ReadInventory(bytes.NewReader(ev.Payload))
			if err != nil {
				r.opts.logf("replica: undecodable snapshot for epoch %d: %v", ev.Epoch, err)
				return -1 // refuse the stream; re-bootstrap from scratch
			}
			r.adopt(ev, inv)
			r.feed.Commit(ev.Epoch, inv)
			replicaBootstraps.Inc()
			r.opts.logf("replica: bootstrapped at epoch %d (%d services)", ev.Epoch, len(inv))
		case transport.FeedDelta:
			applySpan := trace.StartSpan(trace.SpanContext{}, "replica.apply",
				trace.Int("epoch", ev.Epoch), trace.Int("delta_bytes", len(ev.Payload)))
			d, err := shard.ReadDelta(bytes.NewReader(ev.Payload))
			if err != nil || d.BaseEpoch != r.Epoch() {
				if err == nil {
					err = fmt.Errorf("delta base epoch %d does not match replica epoch %d", d.BaseEpoch, r.Epoch())
				}
				applySpan.FinishErr(err)
				r.opts.logf("replica: delta for epoch %d unusable: %v", ev.Epoch, err)
				return -1
			}
			next := shard.CloneInventory(r.inv)
			if err := shard.ApplyDelta(next, d); err != nil {
				applySpan.FinishErr(err)
				r.opts.logf("replica: applying delta %d→%d: %v", d.BaseEpoch, d.Epoch, err)
				return -1
			}
			r.adopt(ev, next)
			r.feed.CommitDelta(d, ev.Payload, next)
			replicaDeltasApplied.Inc()
			applySpan.SetAttr(trace.Int("services", len(next)))
			applySpan.Finish()
		}
	}
}

// adopt installs a new inventory view and publishes its snapshot.
func (r *ReplicaServer) adopt(ev transport.FeedEvent, inv map[netmodel.Key]*continuous.Entry) {
	r.inv = inv
	r.epoch.Store(int64(ev.Epoch))
	r.lag.Store(int64(ev.Head - ev.Epoch))
	r.pub.Publish(NewSnapshot(ev.Epoch, inv))
	replicaLag.Set(float64(ev.Head - ev.Epoch))
}

func (r *ReplicaServer) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (r *ReplicaServer) nextDelay(d time.Duration) time.Duration {
	if max := 16 * r.opts.backoff(); d >= max {
		return max
	}
	return 2 * d
}

func (o *ReplicaOptions) dialOpts() *transport.Options {
	if o == nil {
		return nil
	}
	return o.Dial
}
