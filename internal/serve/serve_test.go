package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// testInventory builds a hand-laid inventory with known structure:
//   - 10.0.x.y hosts in AS 100, 10.1.x.y hosts in AS 200
//   - n services spread over ports 22, 80, 443 round-robin
//   - every third entry stale, every entry seen at `seen`
func testInventory(n, seen int) map[netmodel.Key]*continuous.Entry {
	ports := []uint16{22, 80, 443}
	protos := []features.Protocol{features.ProtocolSSH, features.ProtocolHTTP, features.ProtocolTLS}
	inv := make(map[netmodel.Key]*continuous.Entry, n)
	for i := 0; i < n; i++ {
		var ip asndb.IP
		asn := asndb.ASN(100)
		if i%2 == 0 {
			ip = asndb.MustParseIP("10.0.0.1") + asndb.IP(i)
		} else {
			ip = asndb.MustParseIP("10.1.0.1") + asndb.IP(i)
			asn = 200
		}
		k := netmodel.Key{IP: ip, Port: ports[i%3]}
		e := &continuous.Entry{
			Rec:       dataset.Record{IP: ip, Port: k.Port, Proto: protos[i%3], ASN: asn, TTL: 64},
			FirstSeen: 1, LastSeen: seen,
		}
		if i%3 == 2 {
			e.Stale = 1
		}
		inv[k] = e
	}
	return inv
}

func TestSnapshotIndexes(t *testing.T) {
	const n, epoch = 30, 5
	inv := testInventory(n, epoch)
	snap := NewSnapshot(epoch, inv)

	if snap.Epoch() != epoch || snap.NumServices() != n {
		t.Fatalf("snapshot epoch %d size %d; want %d %d", snap.Epoch(), snap.NumServices(), epoch, n)
	}
	st := snap.Stats()
	if st.Services != n || st.Freshness.Known != n {
		t.Errorf("stats services %d known %d; want %d", st.Services, st.Freshness.Known, n)
	}
	if st.Freshness.Fresh != n {
		t.Errorf("stats fresh %d; want %d (every entry seen at the snapshot epoch)", st.Freshness.Fresh, n)
	}
	if want := n / 3; st.Freshness.Stale != want {
		t.Errorf("stats stale %d; want %d", st.Freshness.Stale, want)
	}
	if st.ASNs != 2 || st.Prefixes != 2 {
		t.Errorf("stats asns %d prefixes %d; want 2 2", st.ASNs, st.Prefixes)
	}

	// Every lookup path must agree with a brute-force scan of the input.
	for _, port := range []uint16{22, 80, 443} {
		want := 0
		for k := range inv {
			if k.Port == port {
				want++
			}
		}
		svcs, total := snap.Port(port, 0, -1)
		if total != want || len(svcs) != want {
			t.Errorf("port %d: total %d len %d; want %d", port, total, len(svcs), want)
		}
		for _, s := range svcs {
			if s.Port != port {
				t.Fatalf("port %d query returned %v", port, s.Key())
			}
		}
	}
	for _, asn := range []asndb.ASN{100, 200} {
		want := 0
		for _, e := range inv {
			if e.Rec.ASN == asn {
				want++
			}
		}
		if _, total := snap.ASN(asn, 0, -1); total != want {
			t.Errorf("asn %d: total %d; want %d", asn, total, want)
		}
	}
	pfxSvcs, pfxTotal := snap.Prefix16(asndb.MustParseIP("10.0.123.45"), 0, -1)
	want := 0
	for k := range inv {
		if asndb.SubnetOf(k.IP, 16) == asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 16) {
			want++
		}
	}
	if pfxTotal != want || len(pfxSvcs) != want {
		t.Errorf("prefix 10.0/16: total %d; want %d", pfxTotal, want)
	}
	for k := range inv {
		found := false
		for _, s := range snap.Host(k.IP) {
			if s.Key() == k {
				found = true
			}
		}
		if !found {
			t.Fatalf("host %v does not list %v", k.IP, k)
		}
	}

	// The per-port aggregate sums back to the inventory size.
	sum := 0
	for _, pc := range snap.Ports() {
		sum += pc.Services
	}
	if sum != n {
		t.Errorf("ports aggregate sums to %d; want %d", sum, n)
	}
}

func TestSnapshotPagination(t *testing.T) {
	snap := NewSnapshot(3, testInventory(30, 3))
	_, total := snap.Port(80, 0, -1)
	if total == 0 {
		t.Fatal("no services on port 80")
	}

	// Walking pages must reconstruct the full result exactly once.
	var walked []Service
	for off := 0; ; off += 4 {
		page, tot := snap.Port(80, off, 4)
		if tot != total {
			t.Fatalf("total changed mid-walk: %d then %d", total, tot)
		}
		if len(page) == 0 {
			break
		}
		walked = append(walked, page...)
	}
	full, _ := snap.Port(80, 0, -1)
	if len(walked) != len(full) {
		t.Fatalf("pagination walked %d services; want %d", len(walked), len(full))
	}
	for i := range full {
		if walked[i] != full[i] {
			t.Fatalf("page walk diverges at %d: %v != %v", i, walked[i], full[i])
		}
	}

	// Out-of-range and clamped windows stay well-formed.
	if page, _ := snap.Port(80, total+10, 4); len(page) != 0 {
		t.Errorf("offset beyond total returned %d services", len(page))
	}
	if page, _ := snap.Port(80, -5, 2); len(page) != 2 {
		t.Errorf("negative offset returned %d services; want 2", len(page))
	}
}

func TestPublisherMonotonic(t *testing.T) {
	var pub Publisher
	if pub.Current() != nil {
		t.Fatal("fresh publisher holds a snapshot")
	}
	if !pub.Publish(NewSnapshot(3, nil)) {
		t.Fatal("first publish refused")
	}
	if pub.Publish(NewSnapshot(3, nil)) {
		t.Error("same-epoch publish accepted")
	}
	if pub.Publish(NewSnapshot(2, nil)) {
		t.Error("older-epoch publish accepted")
	}
	if !pub.Publish(NewSnapshot(4, nil)) {
		t.Error("newer-epoch publish refused")
	}
	if got := pub.Current().Epoch(); got != 4 {
		t.Errorf("current epoch %d; want 4", got)
	}
}

// get performs one request against the server and decodes the JSON body.
func get(t *testing.T, h http.Handler, path string, hdr map[string]string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var body map[string]any
	if rr.Body.Len() > 0 && rr.Header().Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, rr.Body.String(), err)
		}
	}
	return rr, body
}

func TestServerEndpoints(t *testing.T) {
	var pub Publisher
	h := NewServer(&pub).Handler()

	// Before the first publish everything but healthz's shape is 503.
	if rr, _ := get(t, h, "/v1/stats", nil); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("stats before publish: %d; want 503", rr.Code)
	}
	if rr, body := get(t, h, "/v1/healthz", nil); rr.Code != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("healthz before publish: %d %v", rr.Code, body)
	}

	const n, epoch = 30, 7
	pub.Publish(NewSnapshot(epoch, testInventory(n, epoch)))

	rr, body := get(t, h, "/v1/healthz", nil)
	if rr.Code != http.StatusOK || body["status"] != "ok" || body["epoch"] != float64(epoch) {
		t.Fatalf("healthz: %d %v", rr.Code, body)
	}
	rr, body = get(t, h, "/v1/stats", nil)
	if rr.Code != http.StatusOK || body["services"] != float64(n) || body["epoch"] != float64(epoch) {
		t.Fatalf("stats: %d %v", rr.Code, body)
	}
	etag := rr.Header().Get("ETag")
	if etag == "" {
		t.Fatal("stats response has no ETag")
	}

	// Conditional revalidation: the epoch ETag turns polls into 304s.
	if rr, _ := get(t, h, "/v1/stats", map[string]string{"If-None-Match": etag}); rr.Code != http.StatusNotModified {
		t.Errorf("If-None-Match with current ETag: %d; want 304", rr.Code)
	}
	if rr, _ := get(t, h, "/v1/stats", map[string]string{"If-None-Match": `"gps-epoch-1"`}); rr.Code != http.StatusOK {
		t.Errorf("If-None-Match with stale ETag: %d; want 200", rr.Code)
	}

	// A snapshot swap changes the ETag and the answers.
	pub.Publish(NewSnapshot(epoch+1, testInventory(n+3, epoch+1)))
	rr, body = get(t, h, "/v1/stats", map[string]string{"If-None-Match": etag})
	if rr.Code != http.StatusOK || body["services"] != float64(n+3) {
		t.Fatalf("stats after swap: %d %v", rr.Code, body)
	}

	rr, body = get(t, h, "/v1/port/80?limit=4", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("port query: %d", rr.Code)
	}
	if body["count"] != float64(4) || body["total"].(float64) <= 4 {
		t.Errorf("port page: count %v total %v", body["count"], body["total"])
	}
	if _, body = get(t, h, "/v1/asn/200", nil); body["total"].(float64) == 0 {
		t.Error("asn query found nothing")
	}
	if _, body = get(t, h, "/v1/asn/AS200", nil); body["total"].(float64) == 0 {
		t.Error("AS-prefixed asn query found nothing")
	}
	if _, body = get(t, h, "/v1/prefix/10.1.99.99", nil); body["total"].(float64) == 0 {
		t.Error("prefix query found nothing")
	}
	if _, body = get(t, h, "/v1/host/10.0.0.1", nil); body["total"].(float64) == 0 {
		t.Error("host query found nothing")
	}
	if _, body = get(t, h, "/v1/ports", nil); body["total"].(float64) != 3 {
		t.Errorf("ports aggregate total %v; want 3", body["total"])
	}

	// A non-canonical spelling of the same query must serve the exact
	// bytes of the canonical one (they share a cache entry, so the body
	// must be a pure function of the parsed values).
	canon, _ := get(t, h, "/v1/port/80?limit=4", nil)
	padded, _ := get(t, h, "/v1/port/0080?limit=4", nil)
	if canon.Body.String() != padded.Body.String() {
		t.Errorf("port 80 and 0080 serve different bytes:\n%s\n%s", canon.Body.String(), padded.Body.String())
	}

	// A malformed URL is a 400 even when the client presents the current
	// ETag: preconditions only apply to requests that could 200.
	cur := canon.Header().Get("ETag")
	if rr, _ := get(t, h, "/v1/port/garbage", map[string]string{"If-None-Match": cur}); rr.Code != http.StatusBadRequest {
		t.Errorf("bad port with current ETag: %d; want 400", rr.Code)
	}

	// Malformed inputs are 400s, wrong methods 405s, unknown paths 404s.
	for _, path := range []string{
		"/v1/host/not-an-ip", "/v1/port/99999", "/v1/asn/x",
		"/v1/prefix/300.1.2.3", "/v1/port/80?offset=-1", "/v1/port/80?limit=x",
	} {
		if rr, _ := get(t, h, path, nil); rr.Code != http.StatusBadRequest {
			t.Errorf("GET %s: %d; want 400", path, rr.Code)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST stats: %d; want 405", rec.Code)
	}
	if rr, _ := get(t, h, "/v1/nope", nil); rr.Code != http.StatusNotFound {
		t.Errorf("unknown path: %d; want 404", rr.Code)
	}
}

// TestServerDeterministicBodies pins the serving contract the distributed
// CI gate relies on: two servers over equal inventories — whatever
// publisher or cache state they went through — serve byte-identical list
// bodies.
func TestServerDeterministicBodies(t *testing.T) {
	inv := testInventory(40, 9)
	var pubA, pubB Publisher
	hA, hB := NewServer(&pubA).Handler(), NewServer(&pubB).Handler()
	pubA.Publish(NewSnapshot(9, inv))
	pubB.Publish(NewSnapshot(5, testInventory(7, 5))) // warm B's cache on other data
	pubB.Publish(NewSnapshot(9, inv))

	for _, path := range []string{
		"/v1/port/80?limit=10", "/v1/port/80?offset=4&limit=10",
		"/v1/asn/100", "/v1/prefix/10.0.0.0", "/v1/host/10.0.0.1", "/v1/ports",
	} {
		rrA, _ := get(t, hA, path, nil)
		rrB, _ := get(t, hB, path, nil)
		// Twice against A: the second hit comes from the cache.
		rrA2, _ := get(t, hA, path, nil)
		if rrA.Body.String() != rrB.Body.String() {
			t.Errorf("GET %s: servers disagree:\n%s\n%s", path, rrA.Body.String(), rrB.Body.String())
		}
		if rrA.Body.String() != rrA2.Body.String() {
			t.Errorf("GET %s: cached body differs from first render", path)
		}
	}
}

func TestQueryCache(t *testing.T) {
	c := newQueryCache(2)
	c.put(1, "a", []byte("A"))
	c.put(1, "b", []byte("B"))
	if body, ok := c.get(1, "a"); !ok || string(body) != "A" {
		t.Fatalf("get a: %q %v", body, ok)
	}
	// Capacity 2: inserting c evicts the oldest (a).
	c.put(1, "c", []byte("C"))
	if _, ok := c.get(1, "a"); ok {
		t.Error("a survived FIFO eviction")
	}
	if _, ok := c.get(1, "b"); !ok {
		t.Error("b evicted out of order")
	}
	// An epoch bump empties everything.
	if _, ok := c.get(2, "b"); ok {
		t.Error("b survived an epoch swap")
	}
	// A stale writer (still holding the old snapshot) must not poison
	// the new epoch.
	c.put(1, "d", []byte("D"))
	if _, ok := c.get(2, "d"); ok {
		t.Error("stale-epoch put landed in the new epoch")
	}

	// A stale reader (ditto) must miss without rolling the cache back and
	// wiping the current epoch's entries.
	c.put(2, "e", []byte("E"))
	if _, ok := c.get(1, "e"); ok {
		t.Error("stale-epoch get served a new-epoch body")
	}
	if body, ok := c.get(2, "e"); !ok || string(body) != "E" {
		t.Error("stale-epoch get wiped the current epoch's cache")
	}
}

// TestMatchesETag pins If-None-Match comparison to RFC 9110 §13.1.2's
// weak comparison: a weak validator (`W/"..."`) — the form caches and
// proxies hand back after weakening a response in transit — must match
// its strong original, lists must match any member, and `*` matches
// everything. Before the fix a client echoing W/"gps-epoch-7" was denied
// its 304 forever.
func TestMatchesETag(t *testing.T) {
	etag := epochETag(7) // `"gps-epoch-7"`
	cases := []struct {
		name        string
		ifNoneMatch string
		want        bool
	}{
		{"strong match", `"gps-epoch-7"`, true},
		{"weak validator matches strong", `W/"gps-epoch-7"`, true},
		{"star matches anything", `*`, true},
		{"star with spaces", `  *  `, true},
		{"stale strong", `"gps-epoch-6"`, false},
		{"stale weak", `W/"gps-epoch-6"`, false},
		{"list with match", `"gps-epoch-5", "gps-epoch-7"`, true},
		{"list with weak match", `"gps-epoch-5", W/"gps-epoch-7"`, true},
		{"list without match", `"gps-epoch-5", W/"gps-epoch-6"`, false},
		{"unquoted is not a validator", `gps-epoch-7`, false},
		{"lowercase w is not a weak prefix", `w/"gps-epoch-7"`, false},
		{"empty candidate", ``, false},
	}
	for _, c := range cases {
		if got := matchesETag(c.ifNoneMatch, etag); got != c.want {
			t.Errorf("%s: matchesETag(%q, %q) = %v; want %v", c.name, c.ifNoneMatch, etag, got, c.want)
		}
	}
}

// TestServerWeakETagRevalidation drives the weak-comparison fix through
// the HTTP layer: a proxy-weakened validator earns the 304.
func TestServerWeakETagRevalidation(t *testing.T) {
	var pub Publisher
	h := NewServer(&pub).Handler()
	pub.Publish(NewSnapshot(7, testInventory(10, 7)))

	rr, _ := get(t, h, "/v1/stats", map[string]string{"If-None-Match": `W/"gps-epoch-7"`})
	if rr.Code != http.StatusNotModified {
		t.Errorf("weak If-None-Match: %d; want 304", rr.Code)
	}
	if rr, _ := get(t, h, "/v1/stats", map[string]string{"If-None-Match": `W/"gps-epoch-6"`}); rr.Code != http.StatusOK {
		t.Errorf("stale weak If-None-Match: %d; want 200", rr.Code)
	}
	if rr, _ := get(t, h, "/v1/stats", map[string]string{"If-None-Match": `*`}); rr.Code != http.StatusNotModified {
		t.Errorf("If-None-Match *: %d; want 304", rr.Code)
	}
}

// request is get for arbitrary methods.
func request(t *testing.T, h http.Handler, method, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var body map[string]any
	if rr.Body.Len() > 0 && rr.Header().Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rr.Body.String(), err)
		}
	}
	return rr, body
}

// errEnvelope digs the error object out of a response body, failing the
// test if the envelope shape is wrong.
func errEnvelope(t *testing.T, method, path string, body map[string]any) map[string]any {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("%s %s: no error envelope in %v", method, path, body)
	}
	if _, ok := e["code"].(string); !ok {
		t.Fatalf("%s %s: envelope has no code: %v", method, path, e)
	}
	if msg, ok := e["message"].(string); !ok || msg == "" {
		t.Fatalf("%s %s: envelope has no message: %v", method, path, e)
	}
	return e
}

// TestErrorEnvelope pins the structured error contract across every
// failure class: one JSON shape, machine-readable stable codes, and the
// status-specific extras (Retry-After on 503, a fresh cursor on 410).
func TestErrorEnvelope(t *testing.T) {
	var empty Publisher
	cold := NewServer(&empty).Handler() // nothing published: 503 land

	var pub Publisher
	pub.Publish(NewSnapshot(7, testInventory(30, 7)))
	plain := NewServer(&pub).Handler() // no feed: /v1/watch is 404

	feed := NewFeed(4)
	defer feed.Close()
	watch := NewServer(&pub).EnableWatch(feed).Handler()

	cases := []struct {
		name     string
		h        http.Handler
		method   string
		path     string
		wantCode int
		wantErr  string
	}{
		{"stats before publish", cold, "GET", "/v1/stats", 503, "no_snapshot"},
		{"list before publish", cold, "GET", "/v1/port/80", 503, "no_snapshot"},
		{"bad ip", plain, "GET", "/v1/host/not-an-ip", 400, "bad_ip"},
		{"bad prefix ip", plain, "GET", "/v1/prefix/300.1.2.3", 400, "bad_ip"},
		{"bad port text", plain, "GET", "/v1/port/garbage", 400, "bad_port"},
		{"bad port range", plain, "GET", "/v1/port/99999", 400, "bad_port"},
		{"bad asn", plain, "GET", "/v1/asn/x", 400, "bad_asn"},
		{"bad offset", plain, "GET", "/v1/port/80?offset=-1", 400, "bad_page"},
		{"bad limit", plain, "GET", "/v1/port/80?limit=x", 400, "bad_page"},
		{"cursor with offset", plain, "GET", "/v1/port/80?cursor=abc&offset=2", 400, "bad_page"},
		{"undecodable cursor", plain, "GET", "/v1/port/80?cursor=%21%21%21", 400, "bad_cursor"},
		{"unknown path", plain, "GET", "/v1/nope", 404, "not_found"},
		{"root path", plain, "GET", "/", 404, "not_found"},
		{"watch without feed", plain, "GET", "/v1/watch", 404, "watch_unavailable"},
		{"bad since", watch, "GET", "/v1/watch?since=x", 400, "bad_since"},
		{"post stats", plain, "POST", "/v1/stats", 405, "method_not_allowed"},
		{"post list", plain, "POST", "/v1/port/80", 405, "method_not_allowed"},
		{"post watch", watch, "POST", "/v1/watch", 405, "method_not_allowed"},
	}
	for _, c := range cases {
		rr, body := request(t, c.h, c.method, c.path)
		if rr.Code != c.wantCode {
			t.Errorf("%s: %d; want %d", c.name, rr.Code, c.wantCode)
			continue
		}
		e := errEnvelope(t, c.method, c.path, body)
		if e["code"] != c.wantErr {
			t.Errorf("%s: code %v; want %q", c.name, e["code"], c.wantErr)
		}
		if c.wantCode == 503 && rr.Header().Get("Retry-After") == "" {
			t.Errorf("%s: 503 without Retry-After", c.name)
		}
	}

	// healthz keeps its probe-friendly body shape rather than the
	// envelope, but matches the 503 Retry-After behavior.
	rr, body := request(t, cold, "GET", "/v1/healthz")
	if rr.Code != 503 || body["status"] != "starting" || rr.Header().Get("Retry-After") == "" {
		t.Errorf("cold healthz: %d %v Retry-After %q", rr.Code, body, rr.Header().Get("Retry-After"))
	}
}

// TestCursorPagination walks a list query page by page on the cursor and
// pins the rotation contract: a cursor outlives its epoch as a 410 with
// a fresh restart cursor, never as silently spliced pages.
func TestCursorPagination(t *testing.T) {
	var pub Publisher
	h := NewServer(&pub).Handler()
	pub.Publish(NewSnapshot(7, testInventory(30, 7)))

	services := func(body map[string]any) []any {
		svcs, _ := body["services"].([]any)
		return svcs
	}

	// The full result in one shot is the oracle.
	_, full := get(t, h, "/v1/port/80?limit=1000", nil)
	total := int(full["total"].(float64))
	if total < 8 {
		t.Fatalf("need several pages; total %d", total)
	}

	var walked []any
	path := "/v1/port/80?limit=4"
	for hops := 0; ; hops++ {
		if hops > total {
			t.Fatal("cursor walk does not terminate")
		}
		rr, body := get(t, h, path, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s: %d", path, rr.Code)
		}
		walked = append(walked, services(body)...)
		next, _ := body["next_cursor"].(string)
		if next == "" {
			break
		}
		path = "/v1/port/80?cursor=" + next
	}
	if len(walked) != total {
		t.Fatalf("cursor walk collected %d services; want %d", len(walked), total)
	}
	for i, s := range services(full) {
		a, _ := json.Marshal(s)
		b, _ := json.Marshal(walked[i])
		if string(a) != string(b) {
			t.Fatalf("cursor walk diverges from offset walk at %d: %s != %s", i, a, b)
		}
	}

	// The last page carries no cursor; neither does an exhaustive one.
	if _, body := get(t, h, "/v1/port/80?limit=1000", nil); body["next_cursor"] != nil {
		t.Error("exhaustive page still carries next_cursor")
	}

	// Same query by cursor and by offset serve byte-identical pages (the
	// cache key canonicalizes the resolved window, not the spelling).
	byCursor, _ := get(t, h, "/v1/port/80?cursor="+encodeCursor(7, 4), nil)
	byOffset, _ := get(t, h, "/v1/port/80?offset=4", nil)
	if byCursor.Body.String() != byOffset.Body.String() {
		t.Errorf("cursor and offset spellings serve different bytes:\n%s\n%s",
			byCursor.Body.String(), byOffset.Body.String())
	}

	// Rotation: the snapshot swaps, the old cursor answers 410 with a
	// fresh first-page cursor for the new epoch.
	stale := encodeCursor(7, 4)
	pub.Publish(NewSnapshot(8, testInventory(33, 8)))
	rr, body := get(t, h, "/v1/port/80?cursor="+stale, nil)
	if rr.Code != http.StatusGone {
		t.Fatalf("stale cursor: %d; want 410", rr.Code)
	}
	e := errEnvelope(t, "GET", "stale cursor", body)
	if e["code"] != "snapshot_rotated" {
		t.Fatalf("stale cursor code %v", e["code"])
	}
	fresh, _ := e["cursor"].(string)
	if fresh == "" {
		t.Fatal("410 carries no restart cursor")
	}
	if rr, _ := get(t, h, "/v1/port/80?cursor="+fresh, nil); rr.Code != http.StatusOK {
		t.Fatalf("restart cursor: %d; want 200", rr.Code)
	}
}
