package serve

import (
	"sync/atomic"
	"time"
)

// Publisher is the single synchronization point between the producer loop
// and the readers: one atomic pointer to the current Snapshot. The
// producer calls Publish at each epoch commit; any number of readers call
// Current concurrently. Neither side ever takes a lock or waits for the
// other — a reader mid-query keeps the snapshot it loaded alive (the GC
// reclaims superseded snapshots once the last reader drops them), and the
// producer's swap is a single pointer store.
//
// The zero value is ready to use and holds no snapshot.
type Publisher struct {
	cur atomic.Pointer[Snapshot]
}

// Current returns the most recently published snapshot, or nil before the
// first Publish. The result is immutable and remains valid indefinitely.
func (p *Publisher) Current() *Snapshot {
	return p.cur.Load()
}

// Publish swaps s in as the current snapshot and reports whether the swap
// happened. Epochs must advance: a snapshot at or behind the current
// epoch is refused (false), so a late or replayed commit can never roll
// visible reads backward — the monotonicity readers rely on.
func (p *Publisher) Publish(s *Snapshot) bool {
	for {
		old := p.cur.Load()
		if old != nil && s.epoch <= old.epoch {
			return false
		}
		if p.cur.CompareAndSwap(old, s) {
			snapshotEpoch.Set(float64(s.epoch))
			snapshotPublishes.Inc()
			lastPublishNanos.Store(time.Now().UnixNano())
			return true
		}
	}
}
