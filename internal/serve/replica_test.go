package serve

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"gps/internal/continuous"
	"gps/internal/netmodel"
	"gps/internal/shard"
	"gps/internal/shard/transport"
)

// The feed hub must satisfy the transport layer's subscription contract
// structurally; this is the only place the dependency is pinned.
var _ transport.FeedSource = (*Feed)(nil)

// invWire renders an inventory to canonical GPSV bytes — the byte-level
// equality oracle for replication.
func invWire(t *testing.T, inv map[netmodel.Key]*continuous.Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := shard.WriteInventory(&buf, inv); err != nil {
		t.Fatalf("WriteInventory: %v", err)
	}
	return buf.Bytes()
}

// startOriginFeed serves f over the wire on a loopback port.
func startOriginFeed(t *testing.T, f *Feed) (addr string, shutdown func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- transport.ServeFeed(lis, f, &transport.Options{Timeout: 5 * time.Second}) }()
	return lis.Addr().String(), func() {
		lis.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeFeed: %v", err)
		}
	}
}

// waitReplicaEpoch polls until the replica has applied epoch.
func waitReplicaEpoch(t *testing.T, r *ReplicaServer, epoch int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.Epoch() < epoch {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at epoch %d; want %d", r.Epoch(), epoch)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func fastReplicaOpts() *ReplicaOptions {
	return &ReplicaOptions{
		Backoff: 5 * time.Millisecond,
		Dial:    &transport.Options{Timeout: 5 * time.Second, DialTimeout: 5 * time.Second},
	}
}

// TestFeedAsFeedSource pins the hub's FeedSource behavior against a real
// commit sequence: deltas for retained bases, aged-out bases falling back
// to a snapshot, and canonical bytes on both paths.
func TestFeedAsFeedSource(t *testing.T) {
	f := NewFeed(2)
	defer f.Close()
	if f.Head() != -1 {
		t.Fatalf("fresh feed head %d; want -1", f.Head())
	}

	invs := make(map[int]map[netmodel.Key]*continuous.Entry)
	for e := 0; e <= 5; e++ {
		invs[e] = testInventory(20+3*e, e)
		f.Commit(e, invs[e])
	}
	if f.Head() != 5 {
		t.Fatalf("head %d; want 5", f.Head())
	}

	// The snapshot is the canonical GPSV rendering of the head inventory.
	epoch, snap := f.Snapshot()
	if epoch != 5 || !bytes.Equal(snap, invWire(t, invs[5])) {
		t.Fatalf("snapshot epoch %d (%d bytes); want canonical epoch-5 bytes", epoch, len(snap))
	}

	// History depth 2 retains bases 3 and 4; earlier bases aged out.
	for _, base := range []int{0, 1, 2} {
		if _, _, ok := f.Delta(base); ok {
			t.Errorf("delta for aged-out base %d still served", base)
		}
	}
	for _, base := range []int{3, 4} {
		wire, next, ok := f.Delta(base)
		if !ok || next != base+1 {
			t.Fatalf("delta from %d: next %d ok %v; want %d true", base, next, ok, base+1)
		}
		// Applying the served delta must land exactly on the next epoch.
		got := shard.CloneInventory(invs[base])
		d, err := shard.ReadDelta(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("delta from %d undecodable: %v", base, err)
		}
		if err := shard.ApplyDelta(got, d); err != nil {
			t.Fatalf("applying delta from %d: %v", base, err)
		}
		if !bytes.Equal(invWire(t, got), invWire(t, invs[base+1])) {
			t.Errorf("delta from %d does not reproduce epoch %d", base, base+1)
		}
	}

	// A non-monotonic commit is ignored, mirroring Publisher.Publish.
	f.Commit(4, testInventory(1, 4))
	if f.Head() != 5 {
		t.Errorf("stale commit moved head to %d", f.Head())
	}

	// Wait: an old epoch returns immediately; cancel unblocks; close
	// returns false.
	if !f.Wait(4, nil) {
		t.Error("Wait(4) with head 5 returned false")
	}
	cancel := make(chan struct{})
	close(cancel)
	if !f.Wait(5, cancel) {
		t.Error("canceled Wait returned false (reserved for close)")
	}
	f.Close()
	if f.Wait(5, nil) {
		t.Error("Wait on a closed feed returned true")
	}
}

// TestReplicaBootstrapAndFollow runs the full replication path in
// process: a replica bootstraps from a snapshot frame, rides deltas
// epoch by epoch, and at every step its inventory bytes — and the /v1
// bodies and ETags served over it — are identical to the origin's.
func TestReplicaBootstrapAndFollow(t *testing.T) {
	origin := NewFeed(8)
	defer origin.Close()
	var originPub Publisher
	originH := NewServer(&originPub).Handler()

	commit := func(epoch, n int) {
		inv := testInventory(n, epoch)
		originPub.Publish(NewSnapshot(epoch, inv))
		origin.Commit(epoch, inv)
	}
	commit(0, 20)

	addr, shutdown := startOriginFeed(t, origin)
	defer shutdown()

	rep := NewReplicaServer(addr, fastReplicaOpts())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(ctx) }()
	defer func() { cancel(); <-done }()

	repH := NewServer(rep.Publisher()).Handler()
	sizes := map[int]int{0: 20, 1: 26, 2: 23, 3: 30} // adds, removes, updates
	for epoch := 0; epoch <= 3; epoch++ {
		if epoch > 0 {
			commit(epoch, sizes[epoch])
		}
		waitReplicaEpoch(t, rep, epoch)

		oe, ow := origin.Snapshot()
		re, rw := rep.Feed().Snapshot()
		if oe != epoch || re != epoch || !bytes.Equal(ow, rw) {
			t.Fatalf("epoch %d: origin %d vs replica %d inventories differ (%d vs %d bytes)",
				epoch, oe, re, len(ow), len(rw))
		}

		// The replica's /v1 answers are indistinguishable from the origin's.
		for _, path := range []string{"/v1/stats", "/v1/port/80?limit=8", "/v1/ports"} {
			ro, _ := get(t, originH, path, nil)
			rr, _ := get(t, repH, path, nil)
			if ro.Body.String() != rr.Body.String() {
				t.Errorf("epoch %d GET %s: origin and replica bodies differ:\n%s\n%s",
					epoch, path, ro.Body.String(), rr.Body.String())
			}
			if oTag, rTag := ro.Header().Get("ETag"), rr.Header().Get("ETag"); oTag != rTag || oTag == "" {
				t.Errorf("epoch %d GET %s: ETags %q vs %q", epoch, path, oTag, rTag)
			}
		}
	}

	if rep.Epoch() != 3 || rep.Publisher().Current().Epoch() != 3 {
		t.Fatalf("replica epoch %d published %d; want 3", rep.Epoch(), rep.Publisher().Current().Epoch())
	}
}

// TestReplicaRestartConverges kills a replica mid-stream and starts a
// fresh one (a replica is stateless — a restart has no disk to resume
// from): the newcomer bootstraps at the current head and converges to
// byte-identical inventories as further epochs land.
func TestReplicaRestartConverges(t *testing.T) {
	origin := NewFeed(8)
	defer origin.Close()
	invs := make(map[int]map[netmodel.Key]*continuous.Entry)
	commit := func(epoch, n int) {
		invs[epoch] = testInventory(n, epoch)
		origin.Commit(epoch, invs[epoch])
	}
	commit(0, 18)
	commit(1, 24)

	addr, shutdown := startOriginFeed(t, origin)
	defer shutdown()

	first := NewReplicaServer(addr, fastReplicaOpts())
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() { defer close(done1); first.Run(ctx1) }()
	waitReplicaEpoch(t, first, 1)
	cancel1()
	<-done1

	// The origin moves on while the replica is down.
	commit(2, 21)
	commit(3, 27)

	second := NewReplicaServer(addr, fastReplicaOpts())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan struct{})
	go func() { defer close(done2); second.Run(ctx2) }()
	defer func() { cancel2(); <-done2 }()
	waitReplicaEpoch(t, second, 3)

	// One more epoch proves the restarted replica is live, not frozen on
	// its bootstrap snapshot.
	commit(4, 25)
	waitReplicaEpoch(t, second, 4)

	_, ow := origin.Snapshot()
	_, rw := second.Feed().Snapshot()
	if !bytes.Equal(ow, rw) {
		t.Fatalf("restarted replica diverged: %d vs %d bytes", len(ow), len(rw))
	}
	if !bytes.Equal(rw, invWire(t, invs[4])) {
		t.Fatal("converged bytes are not the committed epoch-4 inventory")
	}
}

// TestReplicaResumesAcrossOriginRestart bounces the origin out from
// under a live replica: the feed closes (clean EOF), the replica redials
// with its retained epoch against the restarted origin on the same
// address, and resumes without losing its inventory.
func TestReplicaResumesAcrossOriginRestart(t *testing.T) {
	inv0 := testInventory(20, 0)
	feedA := NewFeed(8)
	feedA.Commit(0, inv0)

	addr, shutdownA := startOriginFeed(t, feedA)

	rep := NewReplicaServer(addr, fastReplicaOpts())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(ctx) }()
	defer func() { cancel(); <-done }()
	waitReplicaEpoch(t, rep, 0)

	reconnectsBefore := replicaReconnects.Value()
	feedA.Close()
	shutdownA()

	// The restarted origin carries the same history forward one epoch;
	// the replica's ?since=0 subscription lands on the retained delta.
	feedB := NewFeed(8)
	feedB.Commit(0, shard.CloneInventory(inv0))
	inv1 := testInventory(26, 1)
	feedB.Commit(1, inv1)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding origin address: %v", err)
	}
	doneB := make(chan error, 1)
	go func() { doneB <- transport.ServeFeed(lis, feedB, &transport.Options{Timeout: 5 * time.Second}) }()
	defer func() {
		lis.Close()
		if err := <-doneB; err != nil {
			t.Errorf("ServeFeed: %v", err)
		}
	}()
	defer feedB.Close()

	waitReplicaEpoch(t, rep, 1)
	_, rw := rep.Feed().Snapshot()
	if !bytes.Equal(rw, invWire(t, inv1)) {
		t.Fatal("replica did not converge on the restarted origin's inventory")
	}
	if got := replicaReconnects.Value(); got <= reconnectsBefore {
		t.Errorf("reconnect counter did not move: %d then %d", reconnectsBefore, got)
	}
}

// TestReplicaRebootstrapsWhenBehind pins the K-epochs-behind contract
// end to end: an origin restart leaves the replica's epoch outside the
// new feed's history, so the session re-bootstraps from a full snapshot
// instead of failing on an unservable delta chain.
func TestReplicaRebootstrapsWhenBehind(t *testing.T) {
	feedA := NewFeed(8)
	feedA.Commit(0, testInventory(20, 0))

	addr, shutdownA := startOriginFeed(t, feedA)

	rep := NewReplicaServer(addr, fastReplicaOpts())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(ctx) }()
	defer func() { cancel(); <-done }()
	waitReplicaEpoch(t, rep, 0)

	bootstrapsBefore := replicaBootstraps.Value()
	feedA.Close()
	shutdownA()

	// The restarted origin retains only the 5→6 transition: epoch 0 is
	// more than K epochs behind.
	feedB := NewFeed(1)
	var last map[netmodel.Key]*continuous.Entry
	for e := 5; e <= 6; e++ {
		last = testInventory(30+e, e)
		feedB.Commit(e, last)
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding origin address: %v", err)
	}
	doneB := make(chan error, 1)
	go func() { doneB <- transport.ServeFeed(lis, feedB, &transport.Options{Timeout: 5 * time.Second}) }()
	defer func() {
		lis.Close()
		if err := <-doneB; err != nil {
			t.Errorf("ServeFeed: %v", err)
		}
	}()
	defer feedB.Close()

	waitReplicaEpoch(t, rep, 6)
	_, rw := rep.Feed().Snapshot()
	if !bytes.Equal(rw, invWire(t, last)) {
		t.Fatal("lagged replica did not converge after re-bootstrap")
	}
	if got := replicaBootstraps.Value(); got <= bootstrapsBefore {
		t.Errorf("bootstrap counter did not move: %d then %d", bootstrapsBefore, got)
	}
}
