// Package serve is the read path of the continuous inventory: a
// lock-free snapshot query engine that turns the producer loop's merged
// inventory into something millions of users can query without ever
// touching the scan.
//
// The paper's end product is a continuously-refreshed service inventory;
// everything up to here *produces* it (pipeline, continuous epochs, shard
// merge, distributed transport), and this package *serves* it. The two
// sides meet at exactly one point: at each epoch commit the producer
// builds an immutable Snapshot — the merged inventory plus secondary
// indexes by port, /16 prefix, and ASN, and precomputed freshness
// aggregates — and swaps it into a Publisher with a single atomic pointer
// store. Readers load the pointer, query the immutable structure, and
// never block the scan loop (and the scan loop never blocks them): there
// is no lock anywhere on the read path.
//
// Server wraps a Publisher in an HTTP API (/v1/host, /v1/port, /v1/asn,
// /v1/prefix, /v1/ports, /v1/stats, /v1/healthz) with pagination, ETags
// keyed on the epoch, and a bounded per-epoch query-result cache that
// invalidates itself on snapshot swap. cmd/gpsd mounts it next to the
// daemon (-serve), next to the distributed coordinator, or standalone
// over a GPSV inventory file (-serve-file).
package serve

import (
	"sort"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/features"
	"gps/internal/metrics"
	"gps/internal/netmodel"
)

// Service is one inventory entry as served: the (IP, port) identity, the
// record fields the secondary indexes answer on, and the observation
// history the freshness aggregates are computed from.
type Service struct {
	IP        asndb.IP
	Port      uint16
	Proto     features.Protocol
	ASN       asndb.ASN
	FirstSeen int
	LastSeen  int
	Stale     int
}

// Key returns the (IP, port) identity of the service.
func (s Service) Key() netmodel.Key { return netmodel.Key{IP: s.IP, Port: s.Port} }

// Stats is the snapshot's precomputed aggregate view: how big the
// inventory is, how it spreads over the address space, and how fresh it
// is. Computing it once at build time keeps /v1/stats O(1).
type Stats struct {
	// Epoch is the epoch the snapshot was committed at.
	Epoch int
	// Services, Hosts, Ports, Prefixes, and ASNs count the distinct
	// values the inventory covers (Prefixes counts /16 networks).
	Services, Hosts, Ports, Prefixes, ASNs int
	// Freshness is the inventory-derivable staleness accounting: Known,
	// Fresh (observed alive at the snapshot epoch), and Stale (carrying a
	// missed re-verification). Checked/Alive are per-epoch scan counters
	// that live in EpochStats, not in the inventory, and stay zero here.
	Freshness metrics.Freshness
}

// PortCount is one row of the per-port coverage aggregate.
type PortCount struct {
	Port     uint16
	Services int
}

// Snapshot is one immutable, fully-indexed view of the inventory at a
// committed epoch. All methods are safe for unlimited concurrent use; a
// Snapshot is never mutated after NewSnapshot returns, which is what lets
// the Publisher swap it under readers with a single atomic store.
type Snapshot struct {
	epoch    int
	services []Service // sorted by (IP, port): the canonical order
	byIP     map[asndb.IP][]int32
	byPort   map[uint16][]int32
	byPrefix map[asndb.IP][]int32 // key: /16 network address
	byASN    map[asndb.ASN][]int32
	ports    []PortCount // sorted by port
	stats    Stats
}

// NewSnapshot indexes a merged inventory (shard.MergeInventories output,
// a single runner's Known map, or shard.ReadInventory of a GPSV file) as
// of the given committed epoch. The input map is read, never retained:
// the snapshot copies what it serves, so the producer may keep mutating
// its inventory the moment this returns.
func NewSnapshot(epoch int, inv map[netmodel.Key]*continuous.Entry) *Snapshot {
	keys := make([]netmodel.Key, 0, len(inv))
	for k := range inv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].IP != keys[j].IP {
			return keys[i].IP < keys[j].IP
		}
		return keys[i].Port < keys[j].Port
	})

	s := &Snapshot{
		epoch:    epoch,
		services: make([]Service, len(keys)),
		byIP:     make(map[asndb.IP][]int32),
		byPort:   make(map[uint16][]int32),
		byPrefix: make(map[asndb.IP][]int32),
		byASN:    make(map[asndb.ASN][]int32),
	}
	for i, k := range keys {
		e := inv[k]
		s.services[i] = Service{
			IP: k.IP, Port: k.Port,
			Proto: e.Rec.Proto, ASN: e.Rec.ASN,
			FirstSeen: e.FirstSeen, LastSeen: e.LastSeen, Stale: e.Stale,
		}
		id := int32(i)
		s.byIP[k.IP] = append(s.byIP[k.IP], id)
		s.byPort[k.Port] = append(s.byPort[k.Port], id)
		pfx := k.IP & asndb.Mask(16)
		s.byPrefix[pfx] = append(s.byPrefix[pfx], id)
		s.byASN[e.Rec.ASN] = append(s.byASN[e.Rec.ASN], id)

		if e.LastSeen == epoch {
			s.stats.Freshness.Fresh++
		}
		if e.Stale > 0 {
			s.stats.Freshness.Stale++
		}
	}
	s.stats.Epoch = epoch
	s.stats.Services = len(s.services)
	s.stats.Hosts = len(s.byIP)
	s.stats.Ports = len(s.byPort)
	s.stats.Prefixes = len(s.byPrefix)
	s.stats.ASNs = len(s.byASN)
	s.stats.Freshness.Known = len(s.services)

	s.ports = make([]PortCount, 0, len(s.byPort))
	for p, ids := range s.byPort {
		s.ports = append(s.ports, PortCount{Port: p, Services: len(ids)})
	}
	sort.Slice(s.ports, func(i, j int) bool { return s.ports[i].Port < s.ports[j].Port })
	return s
}

// Epoch returns the committed epoch the snapshot reflects.
func (s *Snapshot) Epoch() int { return s.epoch }

// Stats returns the precomputed aggregates.
func (s *Snapshot) Stats() Stats { return s.stats }

// NumServices returns the inventory size.
func (s *Snapshot) NumServices() int { return len(s.services) }

// Services returns every service in canonical (IP, port) order. The
// returned slice is the snapshot's own: read-only by contract.
func (s *Snapshot) Services() []Service { return s.services }

// Ports returns the per-port coverage aggregate, sorted by port. The
// returned slice is the snapshot's own: read-only by contract.
func (s *Snapshot) Ports() []PortCount { return s.ports }

// Host returns every service on one address, in port order.
func (s *Snapshot) Host(ip asndb.IP) []Service {
	ids := s.byIP[ip]
	out, _ := s.page(ids, 0, -1)
	return out
}

// Port returns one page of the services on a port, in canonical order,
// plus the unpaginated total. offset clamps into [0, total]; a negative
// limit means "the rest".
func (s *Snapshot) Port(port uint16, offset, limit int) ([]Service, int) {
	return s.page(s.byPort[port], offset, limit)
}

// ASN returns one page of the services announced by an AS, plus the
// total.
func (s *Snapshot) ASN(asn asndb.ASN, offset, limit int) ([]Service, int) {
	return s.page(s.byASN[asn], offset, limit)
}

// Prefix16 returns one page of the services inside ip's /16 subnetwork —
// GPS's network feature (Table 1) — plus the total.
func (s *Snapshot) Prefix16(ip asndb.IP, offset, limit int) ([]Service, int) {
	return s.page(s.byPrefix[ip&asndb.Mask(16)], offset, limit)
}

// page materializes one window of a postings list. The result is a fresh
// slice (callers may append or sort it freely); the total is the full
// postings length.
func (s *Snapshot) page(ids []int32, offset, limit int) ([]Service, int) {
	total := len(ids)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit >= 0 && offset+limit < end {
		end = offset + limit
	}
	out := make([]Service, 0, end-offset)
	for _, id := range ids[offset:end] {
		out = append(out, s.services[id])
	}
	return out, total
}
