package serve

import (
	"net"
	"net/http"
	"testing"
	"time"
)

func TestNewHTTPServerTimeouts(t *testing.T) {
	srv := NewHTTPServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-loris clients pin connections forever")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset")
	}
	if srv.WriteTimeout <= 0 {
		t.Error("WriteTimeout unset")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset")
	}
}

// TestSlowLorisDisconnected proves the defense end to end: a client that
// dials and never finishes its request headers is cut off once
// ReadHeaderTimeout elapses, instead of holding the connection open.
func TestSlowLorisDisconnected(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer("", http.NewServeMux())
	srv.ReadHeaderTimeout = 50 * time.Millisecond
	srv.ReadTimeout = 50 * time.Millisecond
	go srv.Serve(lis)
	defer srv.Close()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then silence: the server must hang up.
	if _, err := conn.Write([]byte("GET /v1/heal")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // connection closed (or reset) by the server — defended
		}
	}
}
