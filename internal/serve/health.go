package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// HealthInfo is one process's role-specific readiness, folded into the
// /v1/healthz document next to the snapshot-derived fields. Every field
// is optional: a plain file server has no role source at all and serves
// the classic {"status","epoch","services"} body unchanged.
type HealthInfo struct {
	// Role names what this process is in the deployment: "origin",
	// "coordinator", "worker", "replica", or "file".
	Role string
	// ShardsOwned is the number of shards this process currently
	// computes (coordinator: total; worker: its session's share).
	ShardsOwned int
	// Draining is true once the process has begun migrating its work
	// away; healthz answers 503 so load balancers stop routing to it.
	Draining bool
	// Bootstrapping is true before the process holds servable state
	// (replica before its first snapshot frame); healthz answers 503.
	Bootstrapping bool
	// FeedLag is how many epochs this process trails its upstream
	// (replicas only; 0 everywhere else).
	FeedLag int
}

// HealthSource supplies live readiness for the healthz document.
// *ReplicaServer implements it; daemons wire their own via HealthFunc.
type HealthSource interface {
	Health() HealthInfo
}

// HealthFunc adapts a closure to HealthSource.
type HealthFunc func() HealthInfo

// Health implements HealthSource.
func (f HealthFunc) Health() HealthInfo { return f() }

// SetHealthSource attaches role-specific readiness to the server's
// /v1/healthz document. Returns s for chaining.
func (s *Server) SetHealthSource(hs HealthSource) *Server {
	s.health = hs
	return s
}

// healthJSON is the healthz body. The first three fields predate the
// role-aware document and keep their exact shape — probes and scripts
// grep for "status":"ok" — while the role fields only appear when a
// HealthSource is attached.
type healthJSON struct {
	Status      string `json:"status"`
	Epoch       int    `json:"epoch"`
	Services    int    `json:"services"`
	Role        string `json:"role,omitempty"`
	ShardsOwned int    `json:"shards_owned,omitempty"`
	FeedLag     int    `json:"feed_lag,omitempty"`
	Draining    bool   `json:"draining,omitempty"`
}

// writeHealth renders one readiness document. Any status but "ok" is a
// 503 with Retry-After — "starting" resolves when state arrives,
// "draining" tells the balancer to route elsewhere while the process
// hands its shards off. ?format=text swaps the JSON for the bare status
// word, so shell probes can `curl -f` or string-compare without jq.
func writeHealth(w http.ResponseWriter, r *http.Request, doc healthJSON) {
	code := http.StatusOK
	if doc.Status != "ok" {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(code)
		fmt.Fprintln(w, doc.Status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(doc)
	w.Write(append(body, '\n'))
}

// healthDoc merges the snapshot view with the attached HealthSource
// into the served document.
func (s *Server) healthDoc() healthJSON {
	doc := healthJSON{Status: "ok"}
	if s.health != nil {
		info := s.health.Health()
		doc.Role = info.Role
		doc.ShardsOwned = info.ShardsOwned
		doc.FeedLag = info.FeedLag
		doc.Draining = info.Draining
		if info.Bootstrapping {
			doc.Status = "starting"
		}
		if info.Draining {
			doc.Status = "draining"
		}
	}
	if snap := s.pub.Current(); snap != nil {
		doc.Epoch = snap.Epoch()
		doc.Services = snap.NumServices()
	} else {
		doc.Status = "starting"
	}
	return doc
}

// HealthHandler is a standalone /v1/healthz endpoint for processes that
// serve no inventory — a worker's debug mux has readiness but no
// Publisher. Same document and text mode, minus the snapshot fields.
func HealthHandler(hs HealthSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed, "GET or HEAD only")
			return
		}
		info := hs.Health()
		doc := healthJSON{
			Status: "ok", Role: info.Role,
			ShardsOwned: info.ShardsOwned, FeedLag: info.FeedLag,
			Draining: info.Draining,
		}
		if info.Bootstrapping {
			doc.Status = "starting"
		}
		if info.Draining {
			doc.Status = "draining"
		}
		writeHealth(w, r, doc)
	})
}
