package serve

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"gps/internal/telemetry"
	"gps/internal/trace"
)

// Serving-layer metrics. The publisher is a zero-value type with no
// constructor, so its gauges are package-level: one process serves one
// inventory, published through however many Publisher values exist.
var (
	cacheHits = telemetry.Default.Counter("gps_query_cache_total",
		"query-cache lookups by result", "result", "hit")
	cacheMisses = telemetry.Default.Counter("gps_query_cache_total",
		"query-cache lookups by result", "result", "miss")

	snapshotEpoch = telemetry.Default.Gauge("gps_snapshot_epoch",
		"epoch of the currently served inventory snapshot")
	snapshotPublishes = telemetry.Default.Counter("gps_snapshot_publishes_total",
		"inventory snapshots accepted for serving")
	// lastPublishNanos feeds the age gauge below; 0 = nothing published.
	lastPublishNanos atomic.Int64

	feedHeadEpoch = telemetry.Default.Gauge("gps_feed_head_epoch",
		"latest epoch committed to the change feed (-1 before the first)")
	feedHistoryDepth = telemetry.Default.Gauge("gps_feed_history_depth",
		"epoch deltas currently retained by the change feed")

	replicaLag = telemetry.Default.Gauge("gps_replica_lag_epochs",
		"epochs this replica trails its upstream origin")
	replicaDeltasApplied = telemetry.Default.Counter("gps_replica_deltas_applied_total",
		"epoch deltas applied onto this replica's inventory")
	replicaBootstraps = telemetry.Default.Counter("gps_replica_bootstraps_total",
		"full-snapshot bootstraps this replica performed")
	replicaReconnects = telemetry.Default.Counter("gps_replica_reconnects_total",
		"times this replica re-dialed its upstream after a feed failure")

	watchSessions = telemetry.Default.Gauge("gps_watch_sessions",
		"GET /v1/watch streams currently connected")
	watchEventsSent = telemetry.Default.Counter("gps_watch_events_total",
		"events pushed to /v1/watch consumers", "event", "delta")
	watchSnapshotsSent = telemetry.Default.Counter("gps_watch_events_total",
		"events pushed to /v1/watch consumers", "event", "snapshot")
)

func init() {
	telemetry.Default.GaugeFunc("gps_snapshot_age_seconds",
		"seconds since the served snapshot was published (-1 before the first publish)",
		func() float64 {
			ns := lastPublishNanos.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
}

// httpBuckets trims the default buckets to the sub-second range a local
// snapshot read actually spans.
var httpBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// endpointMetrics is one route's pre-registered handles. The common
// response codes are pre-registered so the per-request path is purely
// atomic; an uncommon code falls back to a registry lookup.
type endpointMetrics struct {
	latency  *telemetry.Histogram
	byCode   map[int]*telemetry.Counter
	endpoint string
}

func newEndpointMetrics(endpoint string) *endpointMetrics {
	r := telemetry.Default
	m := &endpointMetrics{
		latency: r.Histogram("gps_http_request_seconds",
			"inventory API request latency", httpBuckets, "endpoint", endpoint),
		byCode:   make(map[int]*telemetry.Counter),
		endpoint: endpoint,
	}
	for _, code := range []int{200, 304, 400, 404, 405, 503} {
		m.byCode[code] = m.codeCounter(code)
	}
	return m
}

func (m *endpointMetrics) codeCounter(code int) *telemetry.Counter {
	// The common codes are pre-registered by newEndpointMetrics; this
	// re-enters the registry only for an uncommon status code, a
	// documented cold-path fallback (see endpointMetrics).
	//gpslint:ignore spanfinish cold-path fallback for uncommon status codes; common codes are pre-registered in newEndpointMetrics
	return telemetry.Default.Counter("gps_http_responses_total",
		"inventory API responses by endpoint and status code",
		"endpoint", m.endpoint, "code", strconv.Itoa(code))
}

// statusRecorder captures the response code written by a handler.
// Default 200: Write without WriteHeader implies it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush/SetWriteDeadline — the watch stream needs both.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a route handler with latency and response-code
// accounting plus a per-request trace span keyed by endpoint, so a
// slow request shows up in /v1/tracez with its path and status.
func instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	m := newEndpointMetrics(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		reqSpan := trace.StartSpan(trace.SpanContext{}, "http."+endpoint,
			trace.String("method", r.Method), trace.String("path", r.URL.Path))
		sp := telemetry.StartSpan(m.latency)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		sp.End()
		reqSpan.SetAttr(trace.Int("status", rec.code))
		reqSpan.Finish()
		c, ok := m.byCode[rec.code]
		if !ok {
			c = m.codeCounter(rec.code)
		}
		c.Inc()
	}
}
