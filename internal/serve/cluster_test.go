package serve

import (
	"errors"
	"net/http"
	"strings"
	"testing"

	"gps/internal/shard/transport"
)

// fakeCluster is a canned ClusterSource: a fixed status document plus a
// scripted drain response, recording what ids were drained.
type fakeCluster struct {
	doc      transport.ClusterStatus
	drainErr error
	drained  []string
}

func (f *fakeCluster) Status() transport.ClusterStatus { return f.doc }

func (f *fakeCluster) RequestDrain(id string) error {
	if f.drainErr != nil {
		return f.drainErr
	}
	f.drained = append(f.drained, id)
	return nil
}

func testClusterDoc() transport.ClusterStatus {
	return transport.ClusterStatus{
		Epoch:  7,
		Shards: 4,
		Workers: []transport.WorkerStatus{
			{ID: "w0", Addr: "127.0.0.1:9001", State: transport.WorkerAlive, ShardCount: 2, Shards: []int{0, 1}},
			{ID: "w1", Addr: "127.0.0.1:9002", State: transport.WorkerAlive, ShardCount: 2, Shards: []int{2, 3}},
		},
	}
}

func TestClusterEndpointDisabled(t *testing.T) {
	var pub Publisher
	h := NewServer(&pub).Handler()

	rr, body := get(t, h, "/v1/cluster", nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("GET /v1/cluster without source: %d", rr.Code)
	}
	if e := errEnvelope(t, "GET", "/v1/cluster", body); e["code"] != "cluster_unavailable" {
		t.Fatalf("code %v; want cluster_unavailable", e["code"])
	}
	rr, body = request(t, h, http.MethodPost, "/v1/cluster/workers/w0/drain")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("POST drain without source: %d", rr.Code)
	}
	if e := errEnvelope(t, "POST", "drain", body); e["code"] != "cluster_unavailable" {
		t.Fatalf("code %v; want cluster_unavailable", e["code"])
	}
}

func TestClusterEndpointRead(t *testing.T) {
	var pub Publisher
	src := &fakeCluster{doc: testClusterDoc()}
	h := NewServer(&pub).EnableCluster(src, false).Handler()

	rr, body := get(t, h, "/v1/cluster", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /v1/cluster: %d %v", rr.Code, body)
	}
	if cc := rr.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control %q; want no-store", cc)
	}
	if body["epoch"] != float64(7) || body["shards"] != float64(4) {
		t.Errorf("doc header: %v", body)
	}
	workers, ok := body["workers"].([]any)
	if !ok || len(workers) != 2 {
		t.Fatalf("workers: %v", body["workers"])
	}
	w0 := workers[0].(map[string]any)
	if w0["id"] != "w0" || w0["state"] != "alive" || w0["shard_count"] != float64(2) {
		t.Errorf("worker row: %v", w0)
	}

	// The doc is live state: methods beyond GET/HEAD are refused.
	if rr, _ := request(t, h, http.MethodPost, "/v1/cluster"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/cluster: %d; want 405", rr.Code)
	}
}

func TestClusterDrainAdminGate(t *testing.T) {
	var pub Publisher
	src := &fakeCluster{doc: testClusterDoc()}

	// Admin off (the default): reads work, mutations are forbidden.
	h := NewServer(&pub).EnableCluster(src, false).Handler()
	rr, body := request(t, h, http.MethodPost, "/v1/cluster/workers/w0/drain")
	if rr.Code != http.StatusForbidden {
		t.Fatalf("drain without -admin: %d %v", rr.Code, body)
	}
	if e := errEnvelope(t, "POST", "drain", body); e["code"] != "admin_disabled" {
		t.Fatalf("code %v; want admin_disabled", e["code"])
	}
	if len(src.drained) != 0 {
		t.Fatalf("drain reached the source despite the gate: %v", src.drained)
	}

	// Admin on: the drain is accepted and queued.
	h = NewServer(&pub).EnableCluster(src, true).Handler()
	rr, body = request(t, h, http.MethodPost, "/v1/cluster/workers/w0/drain")
	if rr.Code != http.StatusAccepted || body["status"] != "draining" || body["worker"] != "w0" {
		t.Fatalf("drain: %d %v", rr.Code, body)
	}
	if len(src.drained) != 1 || src.drained[0] != "w0" {
		t.Fatalf("source saw drains %v; want [w0]", src.drained)
	}

	// Worker ids are opaque segments; host:port and percent-encoded
	// forms both resolve.
	rr, body = request(t, h, http.MethodPost, "/v1/cluster/workers/127.0.0.1:9002/drain")
	if rr.Code != http.StatusAccepted || body["worker"] != "127.0.0.1:9002" {
		t.Fatalf("addr-id drain: %d %v", rr.Code, body)
	}
	rr, body = request(t, h, http.MethodPost, "/v1/cluster/workers/w%32/drain")
	if rr.Code != http.StatusAccepted || body["worker"] != "w2" {
		t.Fatalf("escaped-id drain: %d %v", rr.Code, body)
	}

	// GET on the drain path is a 405 with the POST allowance, not 404.
	rr, _ = get(t, h, "/v1/cluster/workers/w0/drain", nil)
	if rr.Code != http.StatusMethodNotAllowed || rr.Header().Get("Allow") != "POST" {
		t.Errorf("GET drain: %d Allow %q", rr.Code, rr.Header().Get("Allow"))
	}

	// Unknown subtree paths fall through to the structured 404.
	for _, path := range []string{
		"/v1/cluster/workers", "/v1/cluster/workers/w0",
		"/v1/cluster/workers/w0/restart", "/v1/cluster/nope/w0/drain",
	} {
		rr, body := request(t, h, http.MethodPost, path)
		if rr.Code != http.StatusNotFound {
			t.Errorf("POST %s: %d; want 404", path, rr.Code)
			continue
		}
		if e := errEnvelope(t, "POST", path, body); e["code"] != "not_found" {
			t.Errorf("POST %s: code %v; want not_found", path, e["code"])
		}
	}
}

func TestClusterDrainErrors(t *testing.T) {
	var pub Publisher
	src := &fakeCluster{doc: testClusterDoc()}
	h := NewServer(&pub).EnableCluster(src, true).Handler()

	src.drainErr = errors.New(`transport: unknown worker "ghost"`)
	rr, body := request(t, h, http.MethodPost, "/v1/cluster/workers/ghost/drain")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown worker drain: %d %v", rr.Code, body)
	}
	if e := errEnvelope(t, "POST", "drain", body); e["code"] != "unknown_worker" {
		t.Fatalf("code %v; want unknown_worker", e["code"])
	}

	src.drainErr = errors.New(`transport: worker "w0" is already drained`)
	rr, body = request(t, h, http.MethodPost, "/v1/cluster/workers/w0/drain")
	if rr.Code != http.StatusConflict {
		t.Fatalf("conflicting drain: %d %v", rr.Code, body)
	}
	if e := errEnvelope(t, "POST", "drain", body); e["code"] != "drain_rejected" {
		t.Fatalf("code %v; want drain_rejected", e["code"])
	}
}

func TestHealthzRoleDocument(t *testing.T) {
	var pub Publisher
	draining := false
	s := NewServer(&pub).SetHealthSource(HealthFunc(func() HealthInfo {
		return HealthInfo{Role: "coordinator", ShardsOwned: 4, Draining: draining}
	}))
	h := s.Handler()

	// No snapshot yet: starting, 503, role still reported.
	rr, body := get(t, h, "/v1/healthz", nil)
	if rr.Code != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("cold healthz: %d %v", rr.Code, body)
	}
	if body["role"] != "coordinator" {
		t.Errorf("cold healthz role: %v", body)
	}

	pub.Publish(NewSnapshot(3, nil))
	rr, body = get(t, h, "/v1/healthz", nil)
	if rr.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", rr.Code, body)
	}
	if body["role"] != "coordinator" || body["shards_owned"] != float64(4) || body["epoch"] != float64(3) {
		t.Errorf("healthz doc: %v", body)
	}
	if _, present := body["draining"]; present {
		t.Errorf("draining=false should be omitted: %v", body)
	}

	// Text mode: the bare status word, probe-friendly.
	rr, _ = get(t, h, "/v1/healthz?format=text", nil)
	if rr.Code != http.StatusOK || strings.TrimSpace(rr.Body.String()) != "ok" {
		t.Fatalf("text healthz: %d %q", rr.Code, rr.Body.String())
	}

	// Draining flips the doc to 503 so balancers route away, even
	// though the snapshot still serves.
	draining = true
	rr, body = get(t, h, "/v1/healthz", nil)
	if rr.Code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining healthz: %d %v", rr.Code, body)
	}
	if body["draining"] != true || rr.Header().Get("Retry-After") == "" {
		t.Errorf("draining healthz doc: %v Retry-After %q", body, rr.Header().Get("Retry-After"))
	}
	rr, _ = get(t, h, "/v1/healthz?format=text", nil)
	if rr.Code != http.StatusServiceUnavailable || strings.TrimSpace(rr.Body.String()) != "draining" {
		t.Errorf("draining text healthz: %d %q", rr.Code, rr.Body.String())
	}
}

func TestHealthHandlerStandalone(t *testing.T) {
	boot := true
	h := HealthHandler(HealthFunc(func() HealthInfo {
		return HealthInfo{Role: "worker", ShardsOwned: 2, Bootstrapping: boot}
	}))

	rr, body := get(t, h, "/v1/healthz", nil)
	if rr.Code != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("bootstrapping worker healthz: %d %v", rr.Code, body)
	}
	boot = false
	rr, body = get(t, h, "/v1/healthz", nil)
	if rr.Code != http.StatusOK || body["status"] != "ok" || body["role"] != "worker" {
		t.Fatalf("worker healthz: %d %v", rr.Code, body)
	}
	if body["shards_owned"] != float64(2) {
		t.Errorf("worker healthz doc: %v", body)
	}
	if rr, _ := request(t, h, http.MethodPost, "/v1/healthz"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST healthz: %d; want 405", rr.Code)
	}
}
