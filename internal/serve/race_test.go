package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotSwapConcurrent hammers readers while a committer publishes
// epoch after epoch — the exact interleaving gpsd -serve lives under. Run
// with -race (CI does). Each published snapshot carries a self-describing
// invariant: at epoch e the inventory holds sizeAt(e) services, every one
// of them seen at e. A reader observing any snapshot where the aggregates
// disagree with each other, or where its epoch sequence moves backward,
// proves a torn read or a non-atomic swap.
func TestSnapshotSwapConcurrent(t *testing.T) {
	const (
		epochs  = 60
		readers = 4
	)
	sizeAt := func(epoch int) int { return 20 + epoch }

	var pub Publisher
	srv := NewServer(&pub)
	h := srv.Handler()
	var done atomic.Bool
	var torn atomic.Int32

	check := func(lastEpoch int) int {
		snap := pub.Current()
		if snap == nil {
			return lastEpoch
		}
		e := snap.Epoch()
		if e < lastEpoch {
			t.Errorf("epoch went backward: %d after %d", e, lastEpoch)
			torn.Add(1)
		}
		st := snap.Stats()
		want := sizeAt(e)
		if st.Services != want || snap.NumServices() != want ||
			st.Freshness.Known != want || st.Freshness.Fresh != want {
			t.Errorf("epoch %d: inconsistent aggregates %+v; want %d services, all fresh", e, st, want)
			torn.Add(1)
		}
		sum := 0
		for _, pc := range snap.Ports() {
			sum += pc.Services
		}
		if sum != want {
			t.Errorf("epoch %d: port aggregate sums to %d; want %d", e, sum, want)
			torn.Add(1)
		}
		return e
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := 0
			for i := 0; !done.Load() && torn.Load() == 0; i++ {
				last = check(last)
				if i%8 != 0 {
					continue
				}
				// Every so often go through the full HTTP path (ETag,
				// cache, JSON render) instead of the raw snapshot.
				req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, req)
				if rr.Code == http.StatusServiceUnavailable {
					continue
				}
				var body struct {
					Epoch    int `json:"epoch"`
					Services int `json:"services"`
					Fresh    int `json:"fresh"`
				}
				if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
					t.Errorf("reader %d: bad stats body: %v", r, err)
					torn.Add(1)
					return
				}
				if body.Epoch < last {
					t.Errorf("served epoch went backward: %d after %d", body.Epoch, last)
					torn.Add(1)
				}
				if want := sizeAt(body.Epoch); body.Services != want || body.Fresh != want {
					t.Errorf("served epoch %d: %d services %d fresh; want %d", body.Epoch, body.Services, body.Fresh, want)
					torn.Add(1)
				}
				last = body.Epoch
			}
		}(r)
	}

	for e := 1; e <= epochs && torn.Load() == 0; e++ {
		if !pub.Publish(NewSnapshot(e, testInventory(sizeAt(e), e))) {
			t.Errorf("publish of epoch %d refused", e)
		}
	}
	done.Store(true)
	wg.Wait()

	if got := pub.Current().Epoch(); got != epochs && torn.Load() == 0 {
		t.Errorf("final epoch %d; want %d", got, epochs)
	}
}
