package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"gps/internal/asndb"
	"gps/internal/telemetry"
	"gps/internal/trace"
)

// Pagination and cache bounds. The limits keep one request's work bounded
// no matter how large the inventory grows; the cache bound keeps the
// server's memory footprint independent of query diversity.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
	cacheEntries     = 256
)

// Server is the HTTP query API over a Publisher. Every handler is a pure
// reader: it loads the current snapshot once, answers entirely from it,
// and tags the response with an ETag derived from the snapshot epoch so
// pollers revalidate with If-None-Match for free 304s between commits.
//
//	GET /v1/healthz          liveness + current epoch (503 until first publish)
//	GET /v1/stats            precomputed aggregates (services, hosts, freshness)
//	GET /v1/ports            per-port service counts
//	GET /v1/host/{ip}        every service on one address
//	GET /v1/port/{port}      services on a port       (?offset=&limit=)
//	GET /v1/asn/{asn}        services in an AS        (?offset=&limit=)
//	GET /v1/prefix/{ip}      services in ip's /16     (?offset=&limit=)
//
// List bodies are pure functions of the inventory (the epoch travels in
// the ETag and /v1/stats only), so two servers holding byte-identical
// inventories serve byte-identical list responses — the distributed CI
// gate curls a live coordinator and a standalone file server and diffs.
type Server struct {
	pub     *Publisher
	cache   *queryCache
	feed    *Feed         // change feed behind GET /v1/watch; nil disables it
	cluster ClusterSource // control plane behind /v1/cluster; nil disables it
	admin   bool          // mutating cluster endpoints enabled
	health  HealthSource  // role-specific readiness for /v1/healthz; nil = plain
}

// NewServer wraps a Publisher. Multiple servers may share one publisher;
// each keeps its own query cache.
func NewServer(pub *Publisher) *Server {
	return &Server{pub: pub, cache: newQueryCache(cacheEntries)}
}

// EnableWatch attaches a change feed to the server: GET /v1/watch then
// streams per-epoch delta JSON from it (see watch.go). Without a feed
// the endpoint answers 404 watch_unavailable. Returns s for chaining.
func (s *Server) EnableWatch(f *Feed) *Server {
	s.feed = f
	return s
}

// Handler returns the API's routing handler, ready to mount on an
// http.Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/v1/stats", instrument("stats", s.handleStats))
	mux.HandleFunc("/v1/ports", instrument("ports", s.handlePorts))
	mux.HandleFunc("/v1/host/", instrument("host", s.handleHost))
	mux.HandleFunc("/v1/port/", instrument("port", s.handlePort))
	mux.HandleFunc("/v1/asn/", instrument("asn", s.handleASN))
	mux.HandleFunc("/v1/prefix/", instrument("prefix", s.handlePrefix))
	mux.HandleFunc("/v1/watch", instrument("watch", s.handleWatch))
	mux.HandleFunc("/v1/cluster", instrument("cluster", s.handleCluster))
	mux.HandleFunc("/v1/cluster/", instrument("cluster_op", s.handleClusterOp))
	mux.Handle("/v1/metricz", telemetry.Handler())
	mux.Handle("/v1/tracez", trace.Handler())
	mux.Handle("/v1/debugz", trace.DebugzHandler(trace.DebugzOptions{
		Metrics: func(w io.Writer) error { _, err := telemetry.Default.WriteTo(w); return err },
		Cluster: func() (any, bool) {
			if s.cluster == nil {
				return nil, false
			}
			return s.cluster.Status(), true
		},
	}))
	// Everything else is a structured 404, not the mux's plain-text
	// default: clients get the same error envelope on a typo'd path as
	// on any other failure.
	mux.HandleFunc("/", instrument("notfound", s.handleNotFound))
	return mux
}

// JSON shapes. Fields marshal in declaration order, so bodies are
// byte-deterministic for a given inventory.

type serviceJSON struct {
	IP        string `json:"ip"`
	Port      uint16 `json:"port"`
	Proto     string `json:"proto"`
	ASN       uint32 `json:"asn"`
	FirstSeen int    `json:"first_seen"`
	LastSeen  int    `json:"last_seen"`
	Stale     int    `json:"stale"`
}

type listJSON struct {
	Query  string `json:"query"`
	Total  int    `json:"total"`
	Offset int    `json:"offset"`
	Count  int    `json:"count"`
	// NextCursor resumes the query at the next page on this same
	// snapshot epoch; absent on the last page. See decodeCursor.
	NextCursor string        `json:"next_cursor,omitempty"`
	Services   []serviceJSON `json:"services"`
}

type statsJSON struct {
	Epoch     int     `json:"epoch"`
	Services  int     `json:"services"`
	Hosts     int     `json:"hosts"`
	Ports     int     `json:"ports"`
	Prefixes  int     `json:"prefixes"`
	ASNs      int     `json:"asns"`
	Fresh     int     `json:"fresh"`
	Stale     int     `json:"stale"`
	FreshFrac float64 `json:"fresh_frac"`
	StaleRate float64 `json:"stale_rate"`
}

type portCountJSON struct {
	Port     uint16 `json:"port"`
	Services int    `json:"services"`
}

type portsJSON struct {
	Total int             `json:"total"`
	Ports []portCountJSON `json:"ports"`
}

func toServiceJSON(svcs []Service) []serviceJSON {
	out := make([]serviceJSON, len(svcs))
	for i, v := range svcs {
		out[i] = serviceJSON{
			IP: v.IP.String(), Port: v.Port,
			Proto: v.Proto.String(), ASN: uint32(v.ASN),
			FirstSeen: v.FirstSeen, LastSeen: v.LastSeen, Stale: v.Stale,
		}
	}
	return out
}

// snapshot is the per-request preamble: method gate and the current
// snapshot (or 503 before the first publish). A false return means the
// response is already written. Conditional revalidation happens in
// respond, after the handler validated its inputs — a malformed URL must
// 400, not 304, whatever ETag the client waves around.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) (*Snapshot, bool) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed, "GET or HEAD only")
		return nil, false
	}
	snap := s.pub.Current()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, errNoSnapshot, "no inventory snapshot published yet")
		return nil, false
	}
	return snap, true
}

// epochETag derives the strong validator every response carries: the
// inventory can only change by snapshot swap, and a swap always advances
// the epoch, so the epoch alone identifies the response bytes.
func epochETag(epoch int) string { return fmt.Sprintf("%q", "gps-epoch-"+strconv.Itoa(epoch)) }

// matchesETag implements If-None-Match per RFC 9110 §13.1.2: weak
// comparison, so a candidate's `W/` prefix is ignored. Caches and
// proxies routinely weaken validators in transit (nginx does on gzip),
// and a client echoing `W/"gps-epoch-7"` back means "I hold epoch 7" as
// surely as the strong form — denying it the 304 would re-send the full
// body forever.
func matchesETag(ifNoneMatch, etag string) bool {
	if strings.TrimSpace(ifNoneMatch) == "*" {
		return true
	}
	for _, c := range strings.Split(ifNoneMatch, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == strings.TrimPrefix(etag, "W/") {
			return true
		}
	}
	return false
}

// Machine-readable error codes. Every non-2xx/304 response carries one
// in the error envelope; the set is part of the v1 contract.
const (
	errMethodNotAllowed = "method_not_allowed" // 405
	errNoSnapshot       = "no_snapshot"        // 503: nothing published yet
	errNotFound         = "not_found"          // 404: no such endpoint
	errBadIP            = "bad_ip"             // 400
	errBadPort          = "bad_port"           // 400
	errBadASN           = "bad_asn"            // 400
	errBadPage          = "bad_page"           // 400: offset/limit malformed or mixed with cursor
	errBadCursor        = "bad_cursor"         // 400: cursor undecodable
	errBadSince         = "bad_since"          // 400: ?since= malformed
	errSnapshotRotated  = "snapshot_rotated"   // 410: cursor's epoch was swapped out
	errWatchUnavailable = "watch_unavailable"  // 404: server runs without a change feed
	errInternal         = "internal"           // 500

	// Cluster control-plane codes (see cluster.go).
	errClusterUnavailable = "cluster_unavailable" // 404: no coordinator behind this server
	errAdminDisabled      = "admin_disabled"      // 403: mutation without -admin
	errUnknownWorker      = "unknown_worker"      // 404: drain target not in the fleet
	errDrainRejected      = "drain_rejected"      // 409: target already drained or dead
)

// errorJSON is the stable error envelope every /v1 failure returns:
//
//	{"error":{"code":"bad_port","message":"...","cursor":"..."}}
//
// Code is machine-readable and stable; Message is for humans; Cursor is
// only present on snapshot_rotated, carrying a fresh first-page cursor
// for the current epoch.
type errorJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Cursor  string `json:"cursor,omitempty"`
}

func writeErrorEnvelope(w http.ResponseWriter, status int, e errorJSON) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		// The snapshot appears as soon as the producer commits (or the
		// replica bootstraps); tell pollers to come back, not give up.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	body, _ := json.Marshal(struct {
		Error errorJSON `json:"error"`
	}{e})
	w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeErrorEnvelope(w, status, errorJSON{Code: code, Message: msg})
}

// Cursor pagination. A cursor is an opaque resume token for one list
// query: base64url over "v1:EPOCH:OFFSET". Binding the epoch in lets the
// server detect a snapshot swap mid-pagination — the offsets a client
// walked no longer mean the same rows — and answer 410 snapshot_rotated
// (with a fresh first-page cursor) instead of silently splicing two
// different inventories together. ?offset=&limit= remain accepted for
// one-shot queries; cursor and offset are mutually exclusive.

func encodeCursor(epoch, offset int) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(fmt.Sprintf("v1:%d:%d", epoch, offset)))
}

func decodeCursor(token string) (epoch, offset int, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return 0, 0, fmt.Errorf("bad cursor %q", token)
	}
	parts := strings.Split(string(raw), ":")
	if len(parts) != 3 || parts[0] != "v1" {
		return 0, 0, fmt.Errorf("bad cursor %q", token)
	}
	if epoch, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("bad cursor %q", token)
	}
	if offset, err = strconv.Atoi(parts[2]); err != nil || offset < 0 {
		return 0, 0, fmt.Errorf("bad cursor %q", token)
	}
	return epoch, offset, nil
}

// nextCursor returns the resume token for the page after [offset,
// offset+count) of total rows, or "" on the last page.
func nextCursor(epoch, offset, count, total int) string {
	if offset+count >= total {
		return ""
	}
	return encodeCursor(epoch, offset+count)
}

// respond finishes one validated query: ETag revalidation (free 304s for
// pollers between commits), then a cacheable JSON body — cache hit by
// (epoch, key), or build + marshal + store. The key canonicalizes
// everything the body depends on besides the snapshot itself.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, snap *Snapshot, key string, build func() any) {
	etag := epochETag(snap.Epoch())
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && matchesETag(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, ok := s.cache.get(snap.Epoch(), key)
	if ok {
		cacheHits.Inc()
	} else {
		cacheMisses.Inc()
		var err error
		if body, err = json.Marshal(build()); err != nil {
			writeError(w, http.StatusInternalServerError, errInternal, err.Error())
			return
		}
		body = append(body, '\n')
		s.cache.put(snap.Epoch(), key, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// pageParams parses ?offset= and ?limit= with bounds. limit caps at
// maxPageLimit so one request's work stays bounded.
func pageParams(r *http.Request) (offset, limit int, err error) {
	q := r.URL.Query()
	offset, limit = 0, defaultPageLimit
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("bad offset %q", v)
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	return offset, limit, nil
}

// listPage resolves a list query's paging inputs — ?cursor= or
// ?offset=&limit= — against the served snapshot. A false return means
// the error response (bad_page, bad_cursor, or snapshot_rotated) is
// already written.
func (s *Server) listPage(w http.ResponseWriter, r *http.Request, snap *Snapshot) (offset, limit int, ok bool) {
	offset, limit, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadPage, err.Error())
		return 0, 0, false
	}
	q := r.URL.Query()
	token := q.Get("cursor")
	if token == "" {
		return offset, limit, true
	}
	if q.Get("offset") != "" {
		writeError(w, http.StatusBadRequest, errBadPage, "cursor and offset are mutually exclusive")
		return 0, 0, false
	}
	epoch, coff, err := decodeCursor(token)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadCursor, err.Error())
		return 0, 0, false
	}
	if epoch != snap.Epoch() {
		// The inventory rotated under the client's pagination: its
		// offsets no longer name the same rows. 410 with a fresh
		// first-page cursor beats silently splicing two epochs.
		writeErrorEnvelope(w, http.StatusGone, errorJSON{
			Code: errSnapshotRotated,
			Message: fmt.Sprintf("cursor is for epoch %d; the served snapshot is now epoch %d — restart from the attached cursor",
				epoch, snap.Epoch()),
			Cursor: encodeCursor(snap.Epoch(), 0),
		})
		return 0, 0, false
	}
	return coff, limit, true
}

// handleHealthz is the readiness probe. Not the error envelope: health
// checks key on the status field, and "starting"/"draining" are states,
// not request failures. The classic fields keep their exact shape while
// an attached HealthSource (role, shards owned, feed lag, draining)
// extends the document; any non-"ok" status is a 503 with Retry-After.
// See health.go for the merge and the ?format=text probe mode.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed, "GET or HEAD only")
		return
	}
	writeHealth(w, r, s.healthDoc())
}

// handleNotFound is the mux fallback: any path outside the API answers
// the structured envelope instead of the default plain-text 404.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, errNotFound,
		fmt.Sprintf("no such endpoint %q; see /v1/{healthz,stats,ports,host,port,asn,prefix,watch,cluster,metricz,tracez,debugz}", r.URL.Path))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	s.respond(w, r, snap, "stats", func() any {
		st := snap.Stats()
		return statsJSON{
			Epoch: st.Epoch, Services: st.Services, Hosts: st.Hosts,
			Ports: st.Ports, Prefixes: st.Prefixes, ASNs: st.ASNs,
			Fresh: st.Freshness.Fresh, Stale: st.Freshness.Stale,
			FreshFrac: st.Freshness.FreshFrac(), StaleRate: st.Freshness.StaleRate(),
		}
	})
}

func (s *Server) handlePorts(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	s.respond(w, r, snap, "ports", func() any {
		pcs := snap.Ports()
		out := portsJSON{Total: len(pcs), Ports: make([]portCountJSON, len(pcs))}
		for i, pc := range pcs {
			out.Ports[i] = portCountJSON{Port: pc.Port, Services: pc.Services}
		}
		return out
	})
}

func (s *Server) handleHost(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/host/")
	ip, err := asndb.ParseIP(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadIP, fmt.Sprintf("bad ip %q", raw))
		return
	}
	s.respond(w, r, snap, "host|"+strconv.FormatUint(uint64(ip), 10), func() any {
		svcs := snap.Host(ip)
		return listJSON{
			Query: "host " + ip.String(), Total: len(svcs), Offset: 0,
			Count: len(svcs), Services: toServiceJSON(svcs),
		}
	})
}

func (s *Server) handlePort(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/port/")
	port, err := strconv.ParseUint(raw, 10, 16)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadPort, fmt.Sprintf("bad port %q", raw))
		return
	}
	offset, limit, ok := s.listPage(w, r, snap)
	if !ok {
		return
	}
	key := fmt.Sprintf("port|%d|%d|%d", port, offset, limit)
	s.respond(w, r, snap, key, func() any {
		svcs, total := snap.Port(uint16(port), offset, limit)
		return listJSON{
			// The canonical spelling, not the raw path segment: the body
			// must be a pure function of the cache key ("0443" and "443"
			// share one).
			Query: fmt.Sprintf("port %d", port), Total: total, Offset: offset,
			Count:      len(svcs),
			NextCursor: nextCursor(snap.Epoch(), offset, len(svcs), total),
			Services:   toServiceJSON(svcs),
		}
	})
}

func (s *Server) handleASN(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/asn/")
	asn, err := strconv.ParseUint(strings.TrimPrefix(raw, "AS"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadASN, fmt.Sprintf("bad asn %q", raw))
		return
	}
	offset, limit, ok := s.listPage(w, r, snap)
	if !ok {
		return
	}
	key := fmt.Sprintf("asn|%d|%d|%d", asn, offset, limit)
	s.respond(w, r, snap, key, func() any {
		svcs, total := snap.ASN(asndb.ASN(asn), offset, limit)
		return listJSON{
			Query: fmt.Sprintf("asn AS%d", asn), Total: total, Offset: offset,
			Count:      len(svcs),
			NextCursor: nextCursor(snap.Epoch(), offset, len(svcs), total),
			Services:   toServiceJSON(svcs),
		}
	})
}

func (s *Server) handlePrefix(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/prefix/")
	ip, err := asndb.ParseIP(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadIP, fmt.Sprintf("bad prefix address %q", raw))
		return
	}
	offset, limit, ok := s.listPage(w, r, snap)
	if !ok {
		return
	}
	pfx := ip & asndb.Mask(16)
	key := fmt.Sprintf("prefix|%d|%d|%d", pfx, offset, limit)
	s.respond(w, r, snap, key, func() any {
		svcs, total := snap.Prefix16(ip, offset, limit)
		return listJSON{
			Query: "prefix " + asndb.Subnet16(ip), Total: total, Offset: offset,
			Count:      len(svcs),
			NextCursor: nextCursor(snap.Epoch(), offset, len(svcs), total),
			Services:   toServiceJSON(svcs),
		}
	})
}
