package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"gps/internal/asndb"
	"gps/internal/telemetry"
)

// Pagination and cache bounds. The limits keep one request's work bounded
// no matter how large the inventory grows; the cache bound keeps the
// server's memory footprint independent of query diversity.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
	cacheEntries     = 256
)

// Server is the HTTP query API over a Publisher. Every handler is a pure
// reader: it loads the current snapshot once, answers entirely from it,
// and tags the response with an ETag derived from the snapshot epoch so
// pollers revalidate with If-None-Match for free 304s between commits.
//
//	GET /v1/healthz          liveness + current epoch (503 until first publish)
//	GET /v1/stats            precomputed aggregates (services, hosts, freshness)
//	GET /v1/ports            per-port service counts
//	GET /v1/host/{ip}        every service on one address
//	GET /v1/port/{port}      services on a port       (?offset=&limit=)
//	GET /v1/asn/{asn}        services in an AS        (?offset=&limit=)
//	GET /v1/prefix/{ip}      services in ip's /16     (?offset=&limit=)
//
// List bodies are pure functions of the inventory (the epoch travels in
// the ETag and /v1/stats only), so two servers holding byte-identical
// inventories serve byte-identical list responses — the distributed CI
// gate curls a live coordinator and a standalone file server and diffs.
type Server struct {
	pub   *Publisher
	cache *queryCache
}

// NewServer wraps a Publisher. Multiple servers may share one publisher;
// each keeps its own query cache.
func NewServer(pub *Publisher) *Server {
	return &Server{pub: pub, cache: newQueryCache(cacheEntries)}
}

// Handler returns the API's routing handler, ready to mount on an
// http.Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/v1/stats", instrument("stats", s.handleStats))
	mux.HandleFunc("/v1/ports", instrument("ports", s.handlePorts))
	mux.HandleFunc("/v1/host/", instrument("host", s.handleHost))
	mux.HandleFunc("/v1/port/", instrument("port", s.handlePort))
	mux.HandleFunc("/v1/asn/", instrument("asn", s.handleASN))
	mux.HandleFunc("/v1/prefix/", instrument("prefix", s.handlePrefix))
	mux.Handle("/v1/metricz", telemetry.Handler())
	return mux
}

// JSON shapes. Fields marshal in declaration order, so bodies are
// byte-deterministic for a given inventory.

type serviceJSON struct {
	IP        string `json:"ip"`
	Port      uint16 `json:"port"`
	Proto     string `json:"proto"`
	ASN       uint32 `json:"asn"`
	FirstSeen int    `json:"first_seen"`
	LastSeen  int    `json:"last_seen"`
	Stale     int    `json:"stale"`
}

type listJSON struct {
	Query    string        `json:"query"`
	Total    int           `json:"total"`
	Offset   int           `json:"offset"`
	Count    int           `json:"count"`
	Services []serviceJSON `json:"services"`
}

type statsJSON struct {
	Epoch     int     `json:"epoch"`
	Services  int     `json:"services"`
	Hosts     int     `json:"hosts"`
	Ports     int     `json:"ports"`
	Prefixes  int     `json:"prefixes"`
	ASNs      int     `json:"asns"`
	Fresh     int     `json:"fresh"`
	Stale     int     `json:"stale"`
	FreshFrac float64 `json:"fresh_frac"`
	StaleRate float64 `json:"stale_rate"`
}

type portCountJSON struct {
	Port     uint16 `json:"port"`
	Services int    `json:"services"`
}

type portsJSON struct {
	Total int             `json:"total"`
	Ports []portCountJSON `json:"ports"`
}

func toServiceJSON(svcs []Service) []serviceJSON {
	out := make([]serviceJSON, len(svcs))
	for i, v := range svcs {
		out[i] = serviceJSON{
			IP: v.IP.String(), Port: v.Port,
			Proto: v.Proto.String(), ASN: uint32(v.ASN),
			FirstSeen: v.FirstSeen, LastSeen: v.LastSeen, Stale: v.Stale,
		}
	}
	return out
}

// snapshot is the per-request preamble: method gate and the current
// snapshot (or 503 before the first publish). A false return means the
// response is already written. Conditional revalidation happens in
// respond, after the handler validated its inputs — a malformed URL must
// 400, not 304, whatever ETag the client waves around.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) (*Snapshot, bool) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET or HEAD only")
		return nil, false
	}
	snap := s.pub.Current()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no inventory snapshot published yet")
		return nil, false
	}
	return snap, true
}

// epochETag derives the strong validator every response carries: the
// inventory can only change by snapshot swap, and a swap always advances
// the epoch, so the epoch alone identifies the response bytes.
func epochETag(epoch int) string { return fmt.Sprintf("%q", "gps-epoch-"+strconv.Itoa(epoch)) }

// matchesETag implements If-None-Match per RFC 9110 §13.1.2: weak
// comparison, so a candidate's `W/` prefix is ignored. Caches and
// proxies routinely weaken validators in transit (nginx does on gzip),
// and a client echoing `W/"gps-epoch-7"` back means "I hold epoch 7" as
// surely as the strong form — denying it the 304 would re-send the full
// body forever.
func matchesETag(ifNoneMatch, etag string) bool {
	if strings.TrimSpace(ifNoneMatch) == "*" {
		return true
	}
	for _, c := range strings.Split(ifNoneMatch, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == strings.TrimPrefix(etag, "W/") {
			return true
		}
	}
	return false
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(append(body, '\n'))
}

// respond finishes one validated query: ETag revalidation (free 304s for
// pollers between commits), then a cacheable JSON body — cache hit by
// (epoch, key), or build + marshal + store. The key canonicalizes
// everything the body depends on besides the snapshot itself.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, snap *Snapshot, key string, build func() any) {
	etag := epochETag(snap.Epoch())
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && matchesETag(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, ok := s.cache.get(snap.Epoch(), key)
	if ok {
		cacheHits.Inc()
	} else {
		cacheMisses.Inc()
		var err error
		if body, err = json.Marshal(build()); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		body = append(body, '\n')
		s.cache.put(snap.Epoch(), key, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// pageParams parses ?offset= and ?limit= with bounds. limit caps at
// maxPageLimit so one request's work stays bounded.
func pageParams(r *http.Request) (offset, limit int, err error) {
	q := r.URL.Query()
	offset, limit = 0, defaultPageLimit
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("bad offset %q", v)
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	return offset, limit, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET or HEAD only")
		return
	}
	type health struct {
		Status   string `json:"status"`
		Epoch    int    `json:"epoch"`
		Services int    `json:"services"`
	}
	snap := s.pub.Current()
	w.Header().Set("Content-Type", "application/json")
	if snap == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		body, _ := json.Marshal(health{Status: "starting"})
		w.Write(append(body, '\n'))
		return
	}
	body, _ := json.Marshal(health{Status: "ok", Epoch: snap.Epoch(), Services: snap.NumServices()})
	w.Write(append(body, '\n'))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	s.respond(w, r, snap, "stats", func() any {
		st := snap.Stats()
		return statsJSON{
			Epoch: st.Epoch, Services: st.Services, Hosts: st.Hosts,
			Ports: st.Ports, Prefixes: st.Prefixes, ASNs: st.ASNs,
			Fresh: st.Freshness.Fresh, Stale: st.Freshness.Stale,
			FreshFrac: st.Freshness.FreshFrac(), StaleRate: st.Freshness.StaleRate(),
		}
	})
}

func (s *Server) handlePorts(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	s.respond(w, r, snap, "ports", func() any {
		pcs := snap.Ports()
		out := portsJSON{Total: len(pcs), Ports: make([]portCountJSON, len(pcs))}
		for i, pc := range pcs {
			out.Ports[i] = portCountJSON{Port: pc.Port, Services: pc.Services}
		}
		return out
	})
}

func (s *Server) handleHost(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/host/")
	ip, err := asndb.ParseIP(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad ip %q", raw))
		return
	}
	s.respond(w, r, snap, "host|"+strconv.FormatUint(uint64(ip), 10), func() any {
		svcs := snap.Host(ip)
		return listJSON{
			Query: "host " + ip.String(), Total: len(svcs), Offset: 0,
			Count: len(svcs), Services: toServiceJSON(svcs),
		}
	})
}

func (s *Server) handlePort(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/port/")
	port, err := strconv.ParseUint(raw, 10, 16)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad port %q", raw))
		return
	}
	offset, limit, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := fmt.Sprintf("port|%d|%d|%d", port, offset, limit)
	s.respond(w, r, snap, key, func() any {
		svcs, total := snap.Port(uint16(port), offset, limit)
		return listJSON{
			// The canonical spelling, not the raw path segment: the body
			// must be a pure function of the cache key ("0443" and "443"
			// share one).
			Query: fmt.Sprintf("port %d", port), Total: total, Offset: offset,
			Count: len(svcs), Services: toServiceJSON(svcs),
		}
	})
}

func (s *Server) handleASN(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/asn/")
	asn, err := strconv.ParseUint(strings.TrimPrefix(raw, "AS"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad asn %q", raw))
		return
	}
	offset, limit, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := fmt.Sprintf("asn|%d|%d|%d", asn, offset, limit)
	s.respond(w, r, snap, key, func() any {
		svcs, total := snap.ASN(asndb.ASN(asn), offset, limit)
		return listJSON{
			Query: fmt.Sprintf("asn AS%d", asn), Total: total, Offset: offset,
			Count: len(svcs), Services: toServiceJSON(svcs),
		}
	})
}

func (s *Server) handlePrefix(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/prefix/")
	ip, err := asndb.ParseIP(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad prefix address %q", raw))
		return
	}
	offset, limit, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	pfx := ip & asndb.Mask(16)
	key := fmt.Sprintf("prefix|%d|%d|%d", pfx, offset, limit)
	s.respond(w, r, snap, key, func() any {
		svcs, total := snap.Prefix16(ip, offset, limit)
		return listJSON{
			Query: "prefix " + asndb.Subnet16(ip), Total: total, Offset: offset,
			Count: len(svcs), Services: toServiceJSON(svcs),
		}
	})
}
