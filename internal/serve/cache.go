package serve

import "sync"

// queryCache memoizes rendered response bodies for one snapshot epoch.
// List queries pay a page-copy plus a JSON marshal per request; popular
// queries (the same dashboard poll from a million users) hit the cache
// instead. The cache is bounded (FIFO eviction) and keyed by the
// canonicalized query, and it self-invalidates: every lookup and store
// carries the requester's snapshot epoch, and an epoch change empties the
// cache wholesale — a swap is the only way results change, so per-entry
// invalidation would be wasted bookkeeping.
//
// The mutex makes the cache the one shared-mutable structure on the read
// path; critical sections are map lookups and appends only (never a
// marshal or a page copy), so it stays cheap under contention — and a
// cache miss costs exactly what an uncached server would have paid.
type queryCache struct {
	mu      sync.Mutex
	epoch   int
	max     int
	entries map[string][]byte
	order   []string // insertion order, for FIFO eviction
}

func newQueryCache(max int) *queryCache {
	return &queryCache{max: max, entries: make(map[string][]byte)}
}

// get returns the cached body for key as rendered at epoch. A newer
// epoch empties the cache and misses; a reader still holding a
// superseded snapshot just misses — rolling the cache back for it would
// wipe the current epoch's entries on every old/new reader interleaving
// around a swap.
func (c *queryCache) get(epoch int, key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		if epoch > c.epoch {
			c.reset(epoch)
		}
		return nil, false
	}
	body, ok := c.entries[key]
	return body, ok
}

// put stores a rendered body, evicting the oldest entry at capacity. A
// body rendered from a snapshot the cache has already moved past is
// dropped rather than poisoning the newer epoch.
func (c *queryCache) put(epoch int, key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		if epoch < c.epoch {
			return
		}
		c.reset(epoch)
	}
	if _, ok := c.entries[key]; ok {
		return
	}
	if len(c.order) >= c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = body
	c.order = append(c.order, key)
}

// reset empties the cache for a new epoch. Caller holds mu.
func (c *queryCache) reset(epoch int) {
	c.epoch = epoch
	c.entries = make(map[string][]byte)
	c.order = c.order[:0]
}
