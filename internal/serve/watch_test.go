package serve

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"gps/internal/continuous"
	"gps/internal/netmodel"
)

// TestWatchStream drives GET /v1/watch end to end over a real HTTP
// server: a consumer starting from nothing gets a snapshot event, then
// one delta per commit, and folding them into an empty map with ApplyTo
// reconstructs the origin inventory byte-for-byte at every epoch.
func TestWatchStream(t *testing.T) {
	feed := NewFeed(8)
	var pub Publisher
	invs := make(map[int]map[netmodel.Key]*continuous.Entry)
	commit := func(epoch, n int) {
		invs[epoch] = testInventory(n, epoch)
		pub.Publish(NewSnapshot(epoch, invs[epoch]))
		feed.Commit(epoch, invs[epoch])
	}
	commit(0, 20)

	ts := httptest.NewServer(NewServer(&pub).EnableWatch(feed).Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type step struct {
		event string
		epoch int
		wire  []byte // reconstructed inventory after the event
	}
	events := make(chan step, 16)
	mirror := make(map[netmodel.Key]*continuous.Entry)
	wc := &WatchClient{URL: ts.URL + "/v1/watch", Since: -1}
	followErr := make(chan error, 1)
	go func() {
		followErr <- wc.Follow(ctx, func(ev WatchEvent) error {
			if err := ev.ApplyTo(mirror); err != nil {
				return err
			}
			events <- step{ev.Event, ev.Epoch, invWire(t, mirror)}
			return nil
		})
	}()

	next := func() step {
		select {
		case s := <-events:
			return s
		case <-time.After(10 * time.Second):
			t.Fatal("no watch event arrived")
			return step{}
		}
	}

	// Bootstrap: a full snapshot of the current epoch.
	if s := next(); s.event != "snapshot" || s.epoch != 0 || !bytes.Equal(s.wire, invWire(t, invs[0])) {
		t.Fatalf("first event %q epoch %d; want matching snapshot of epoch 0", s.event, s.epoch)
	}

	// Each commit lands as one delta, and the folded view tracks the
	// origin exactly — adds, updates, and removes (26 → 23 shrinks).
	for i, n := range []int{26, 23, 30} {
		epoch := i + 1
		commit(epoch, n)
		s := next()
		if s.event != "delta" || s.epoch != epoch {
			t.Fatalf("event %d: %q epoch %d; want delta to %d", epoch, s.event, s.epoch, epoch)
		}
		if !bytes.Equal(s.wire, invWire(t, invs[epoch])) {
			t.Fatalf("after delta to %d the consumer inventory diverges", epoch)
		}
	}

	// Closing the feed ends the stream cleanly: Follow returns nil.
	feed.Close()
	select {
	case err := <-followErr:
		if err != nil {
			t.Fatalf("Follow: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Follow did not return after feed close")
	}
}

// TestWatchResume pins ?since=: a consumer holding a retained epoch gets
// deltas with no snapshot, and one holding an aged-out epoch is
// re-bootstrapped.
func TestWatchResume(t *testing.T) {
	feed := NewFeed(2)
	defer feed.Close()
	var pub Publisher
	var last map[netmodel.Key]*continuous.Entry
	for e := 0; e <= 4; e++ {
		last = testInventory(20+2*e, e)
		pub.Publish(NewSnapshot(e, last))
		feed.Commit(e, last)
	}

	ts := httptest.NewServer(NewServer(&pub).EnableWatch(feed).Handler())
	defer ts.Close()

	follow := func(since int) []WatchEvent {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var got []WatchEvent
		wc := &WatchClient{URL: ts.URL + "/v1/watch", Since: since}
		err := wc.Follow(ctx, func(ev WatchEvent) error {
			got = append(got, ev)
			if ev.Epoch == 4 {
				return ErrWatchDone
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Follow(since=%d): %v", since, err)
		}
		return got
	}

	// History depth 2 retains bases 2 and 3: a since=2 consumer rides
	// deltas only.
	got := follow(2)
	if len(got) != 2 || got[0].Event != "delta" || got[0].Epoch != 3 || got[1].Event != "delta" || got[1].Epoch != 4 {
		t.Fatalf("since=2 events = %+v; want deltas to 3 then 4", got)
	}

	// since=0 aged out: the stream must re-bootstrap with a snapshot.
	got = follow(0)
	if len(got) != 1 || got[0].Event != "snapshot" || got[0].Epoch != 4 {
		t.Fatalf("since=0 events = %+v; want one snapshot at 4", got)
	}
	mirror := make(map[netmodel.Key]*continuous.Entry)
	if err := got[0].ApplyTo(mirror); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(invWire(t, mirror), invWire(t, last)) {
		t.Fatal("re-bootstrap snapshot does not reconstruct the head inventory")
	}
}
