package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/netmodel"
	"gps/internal/shard"
)

// GET /v1/watch streams the change feed as newline-delimited JSON: one
// event object per line, pushed as epochs commit, until the client
// disconnects or the feed closes. ?since=EPOCH resumes after an epoch
// the client already holds; omitted (or any epoch outside the feed's
// retained history) the stream opens with a full snapshot event, then
// continues with deltas. The event entries carry the numeric protocol
// and the TTL — unlike the human-facing list endpoints, this is a
// machine feed, and a consumer accumulating events must be able to
// reconstruct the origin inventory exactly (WatchEvent.ApplyTo does).

// watchKeyJSON names one removed service.
type watchKeyJSON struct {
	IP   string `json:"ip"`
	Port uint16 `json:"port"`
}

// watchEntryJSON is one added/updated/snapshot service with every
// GPSV serving field, numerically — lossless, unlike serviceJSON.
type watchEntryJSON struct {
	IP        string `json:"ip"`
	Port      uint16 `json:"port"`
	Proto     uint8  `json:"proto"`
	ASN       uint32 `json:"asn"`
	TTL       uint8  `json:"ttl"`
	FirstSeen int    `json:"first_seen"`
	LastSeen  int    `json:"last_seen"`
	Stale     int    `json:"stale"`
}

type watchSnapshotJSON struct {
	Event    string           `json:"event"` // "snapshot"
	Epoch    int              `json:"epoch"`
	Services []watchEntryJSON `json:"services"`
}

type watchDeltaJSON struct {
	Event     string           `json:"event"` // "delta"
	BaseEpoch int              `json:"base_epoch"`
	Epoch     int              `json:"epoch"`
	Adds      []watchEntryJSON `json:"adds"`
	Updates   []watchEntryJSON `json:"updates"`
	Removes   []watchKeyJSON   `json:"removes"`
}

func toWatchEntry(k netmodel.Key, e *continuous.Entry) watchEntryJSON {
	return watchEntryJSON{
		IP: k.IP.String(), Port: k.Port,
		Proto: uint8(e.Rec.Proto), ASN: uint32(e.Rec.ASN), TTL: e.Rec.TTL,
		FirstSeen: e.FirstSeen, LastSeen: e.LastSeen, Stale: e.Stale,
	}
}

func toWatchDelta(d *shard.Delta) watchDeltaJSON {
	out := watchDeltaJSON{
		Event: "delta", BaseEpoch: d.BaseEpoch, Epoch: d.Epoch,
		Adds:    make([]watchEntryJSON, 0, len(d.Adds)),
		Updates: make([]watchEntryJSON, 0, len(d.Updates)),
		Removes: make([]watchKeyJSON, 0, len(d.Removes)),
	}
	for _, a := range d.Adds {
		out.Adds = append(out.Adds, toWatchEntry(a.Key, &a.Entry))
	}
	for _, u := range d.Updates {
		out.Updates = append(out.Updates, toWatchEntry(u.Key, &u.Entry))
	}
	for _, k := range d.Removes {
		out.Removes = append(out.Removes, watchKeyJSON{IP: k.IP.String(), Port: k.Port})
	}
	return out
}

func toWatchSnapshot(epoch int, inv map[netmodel.Key]*continuous.Entry) watchSnapshotJSON {
	keys := make([]netmodel.Key, 0, len(inv))
	for k := range inv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].IP != keys[j].IP {
			return keys[i].IP < keys[j].IP
		}
		return keys[i].Port < keys[j].Port
	})
	out := watchSnapshotJSON{Event: "snapshot", Epoch: epoch,
		Services: make([]watchEntryJSON, 0, len(inv))}
	for _, k := range keys {
		out.Services = append(out.Services, toWatchEntry(k, inv[k]))
	}
	return out
}

// watchWriteTimeout bounds one event line's write+flush. A consumer that
// cannot drain an epoch's delta within it is disconnected (it can
// resume with ?since=). Also the per-write deadline extension that keeps
// the HTTP server's WriteTimeout — sized for request/response bodies —
// from killing an arbitrarily long-lived stream.
const watchWriteTimeout = 30 * time.Second

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed, "GET only")
		return
	}
	if s.feed == nil {
		writeError(w, http.StatusNotFound, errWatchUnavailable,
			"this server runs without a change feed; /v1/watch is served by daemons and replicas, not -serve-file")
		return
	}
	since := -1
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, errBadSince,
				"bad since "+strconv.Quote(v)+"; want an epoch number")
			return
		}
		since = n
	}

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc.Flush()

	watchSessions.Add(1)
	defer watchSessions.Add(-1)

	writeLine := func(v any) bool {
		body, err := json.Marshal(v)
		if err != nil {
			return false
		}
		rc.SetWriteDeadline(time.Now().Add(watchWriteTimeout))
		if _, err := w.Write(append(body, '\n')); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	// The session mirrors a feed replica's: deltas while the client's
	// epoch is in history, a full snapshot when it is not, Wait between
	// commits. r.Context() is done when the client disconnects.
	cancel := r.Context().Done()
	cur := since
	for {
		head := s.feed.Head()
		if head < 0 || cur == head {
			if !s.feed.Wait(head, cancel) {
				return // feed closed: clean end of stream
			}
			select {
			case <-cancel:
				return
			default:
			}
			continue
		}
		if d, ok := s.feed.DeltaAt(cur); ok {
			if !writeLine(toWatchDelta(d)) {
				return
			}
			watchEventsSent.Inc()
			cur = d.Epoch
			continue
		}
		epoch, inv := s.feed.SnapshotInventory()
		if !writeLine(toWatchSnapshot(epoch, inv)) {
			return
		}
		watchSnapshotsSent.Inc()
		cur = epoch
	}
}

// ipKey parses a watch event's textual IP back into an inventory key.
func ipKey(ip string, port uint16) (netmodel.Key, error) {
	parsed, err := asndb.ParseIP(ip)
	if err != nil {
		return netmodel.Key{}, err
	}
	return netmodel.Key{IP: parsed, Port: port}, nil
}
