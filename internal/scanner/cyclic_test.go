package scanner

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		97: true, 65537: true, 4294967311: true,
	}
	composites := []uint64{0, 1, 4, 6, 9, 15, 21, 25, 100, 65536, 4294967296}
	for p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

// TestIsPrimeQuick property: IsPrime agrees with trial division for small n.
func TestIsPrimeQuick(t *testing.T) {
	trial := func(n uint64) bool {
		if n < 2 {
			return false
		}
		for d := uint64(2); d*d <= n; d++ {
			if n%d == 0 {
				return false
			}
		}
		return true
	}
	f := func(raw uint32) bool {
		n := uint64(raw % 100000)
		return IsPrime(n) == trial(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCyclicIteratorFullPermutation(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 10, 100, 1023, 65536} {
		it, err := NewCyclicIterator(n, 42)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := make([]bool, n)
		count := uint64(0)
		for {
			idx, ok := it.Next()
			if !ok {
				break
			}
			if idx >= n {
				t.Fatalf("n=%d: index %d out of range", n, idx)
			}
			if seen[idx] {
				t.Fatalf("n=%d: index %d emitted twice", n, idx)
			}
			seen[idx] = true
			count++
		}
		if count != n {
			t.Errorf("n=%d: emitted %d indexes", n, count)
		}
	}
}

// TestCyclicIteratorQuick property: any (n, seed) pair yields a complete
// permutation of [0, n).
func TestCyclicIteratorQuick(t *testing.T) {
	f := func(rawN uint16, seed int64) bool {
		n := uint64(rawN)%5000 + 1
		it, err := NewCyclicIterator(n, seed)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, n)
		for {
			idx, ok := it.Next()
			if !ok {
				break
			}
			if idx >= n || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return uint64(len(seen)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCyclicIteratorSeedsDiffer(t *testing.T) {
	a, _ := NewCyclicIterator(1000, 1)
	b, _ := NewCyclicIterator(1000, 2)
	same := true
	for i := 0; i < 10; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical order")
	}
}

func TestCyclicIteratorReset(t *testing.T) {
	it, _ := NewCyclicIterator(100, 9)
	var first []uint64
	for {
		idx, ok := it.Next()
		if !ok {
			break
		}
		first = append(first, idx)
	}
	it.Reset()
	for i := 0; ; i++ {
		idx, ok := it.Next()
		if !ok {
			if i != len(first) {
				t.Errorf("second pass emitted %d; want %d", i, len(first))
			}
			break
		}
		if idx != first[i] {
			t.Fatalf("Reset changed order at %d", i)
		}
	}
}

func TestCyclicIteratorErrors(t *testing.T) {
	if _, err := NewCyclicIterator(0, 1); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := NewCyclicIterator(1<<62, 1); err == nil {
		t.Error("oversized space accepted")
	}
}

func TestMulmodPowmod(t *testing.T) {
	// Values chosen to overflow 64-bit multiplication; math/big is the
	// reference.
	const p = 4294967311 // prime > 2^32
	a, b := uint64(4294967290), uint64(4294967280)
	want := new(big.Int).Mul(big.NewInt(int64(a)), big.NewInt(int64(b)))
	want.Mod(want, big.NewInt(p))
	if got := mulmod(a, b, p); got != want.Uint64() {
		t.Errorf("mulmod = %d; want %d", got, want.Uint64())
	}
	if powmod(2, 10, 1000000007) != 1024 {
		t.Error("powmod small case wrong")
	}
	// Fermat: a^(p-1) = 1 mod p for prime p.
	if powmod(12345, p-1, p) != 1 {
		t.Error("powmod violates Fermat's little theorem")
	}
}

// TestMulmodQuick property: mulmod agrees with math/big for random inputs.
func TestMulmodQuick(t *testing.T) {
	f := func(a, b uint64, m32 uint32) bool {
		m := uint64(m32) + 2 // modulus >= 2
		want := new(big.Int).SetUint64(a)
		want.Mul(want, new(big.Int).SetUint64(b))
		want.Mod(want, new(big.Int).SetUint64(m))
		return mulmod(a, b, m) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
