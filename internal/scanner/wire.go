package scanner

import (
	"fmt"
	"sync/atomic"

	"gps/internal/asndb"
	"gps/internal/packet"
)

// TTLSource is an optional interface a Responder may implement to report
// the TTL its responses would carry (netmodel services carry per-service
// TTLs, which LZR uses to detect port forwarding).
type TTLSource interface {
	ResponseTTL(ip asndb.IP, port uint16) (uint8, bool)
}

// WireScanner drives probes through the full packet codec: every probe is
// serialized as a real SYN frame, the peer's answer is synthesized as a
// real SYN-ACK or RST frame, and the response is parsed and validated with
// ZMap's stateless token scheme. It is the high-fidelity (and slower) mode
// of the scan simulator; results are identical to Scanner.Probe by
// construction, which the tests verify.
type WireScanner struct {
	inner   *Scanner
	v       *packet.Validator
	src     asndb.IP
	srcPort uint16
	txBytes atomic.Uint64
	rxBytes atomic.Uint64
}

// NewWireScanner wraps a scanner with the packet codec. src is the
// scanning host's address; secret isolates this scan's validation tokens.
func NewWireScanner(inner *Scanner, src asndb.IP, secret uint64) *WireScanner {
	return &WireScanner{inner: inner, v: packet.NewValidator(secret), src: src, srcPort: 54321}
}

// Inner returns the wrapped scanner (for probe counts and blocklist).
func (w *WireScanner) Inner() *Scanner { return w.inner }

// TxBytes and RxBytes return the on-wire byte counts.
func (w *WireScanner) TxBytes() uint64 { return w.txBytes.Load() }
func (w *WireScanner) RxBytes() uint64 { return w.rxBytes.Load() }

// Probe sends one fully-encoded SYN and classifies the fully-encoded
// response. It returns whether the target acknowledged with a validated
// SYN-ACK, mirroring Scanner.Probe exactly.
func (w *WireScanner) Probe(ip asndb.IP, port uint16) (bool, error) {
	if w.inner.block.Blocked(ip) {
		return false, nil
	}
	var probeBuf [packet.IPv4HeaderLen + packet.TCPHeaderLen]byte
	n, err := packet.BuildSYN(probeBuf[:], w.v, w.src, ip, w.srcPort, port)
	if err != nil {
		return false, fmt.Errorf("scanner: building probe: %w", err)
	}
	w.txBytes.Add(uint64(n))
	w.inner.probes.Add(1)

	// Parse our own probe back, exactly as the network would deliver it
	// to the peer; this keeps the simulation honest about what is
	// actually on the wire.
	ipHdr, tcpSeg, err := packet.ParseIPv4(probeBuf[:n])
	if err != nil {
		return false, fmt.Errorf("scanner: probe does not parse: %w", err)
	}
	syn, _, err := packet.ParseTCP(tcpSeg, ipHdr.Src, ipHdr.Dst)
	if err != nil {
		return false, fmt.Errorf("scanner: probe TCP does not parse: %w", err)
	}

	// Synthesize the peer's answer.
	ttl := uint8(48)
	if ts, ok := w.inner.target.(TTLSource); ok {
		if t, okT := ts.ResponseTTL(ip, port); okT {
			ttl = t
		}
	}
	var respBuf [packet.IPv4HeaderLen + packet.TCPHeaderLen]byte
	var rn int
	if w.inner.target.Responsive(ip, port) {
		rn, err = packet.BuildSYNACK(respBuf[:], ip, w.src, port, w.srcPort, syn.Seq, ttl)
	} else {
		rn, err = packet.BuildRST(respBuf[:], ip, w.src, port, w.srcPort, syn.Seq, ttl)
	}
	if err != nil {
		return false, fmt.Errorf("scanner: building response: %w", err)
	}
	w.rxBytes.Add(uint64(rn))

	_, _, ok, err := packet.ParseResponse(respBuf[:rn], w.v)
	if err != nil {
		return false, fmt.Errorf("scanner: response does not parse: %w", err)
	}
	if ok {
		w.inner.hits.Add(1)
	}
	return ok, nil
}
