package scanner

import (
	"testing"

	"gps/internal/asndb"
	"gps/internal/netmodel"
)

func TestWireScannerMatchesFastPath(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(77))
	plain := New(u)
	wire := NewWireScanner(New(u), asndb.MustParseIP("192.0.2.1"), 0xabc)

	pfx := u.Prefixes()[0]
	sub := asndb.Prefix{Addr: pfx.Addr, Bits: 22}
	mismatches := 0
	for off := asndb.IP(0); off < asndb.IP(sub.Size()); off++ {
		ip := sub.Addr + off
		for _, port := range []uint16{80, 22, 7547, 2323} {
			want := plain.Probe(ip, port)
			got, err := wire.Probe(ip, port)
			if err != nil {
				t.Fatalf("wire probe %v:%d: %v", ip, port, err)
			}
			if got != want {
				mismatches++
			}
		}
	}
	if mismatches != 0 {
		t.Errorf("%d probes disagreed between wire and fast paths", mismatches)
	}
	if wire.Inner().Probes() != plain.Probes() {
		t.Errorf("probe accounting differs: %d vs %d", wire.Inner().Probes(), plain.Probes())
	}
	// Every probe is a 40-byte frame on each direction.
	wantBytes := wire.Inner().Probes() * 40
	if wire.TxBytes() != wantBytes || wire.RxBytes() != wantBytes {
		t.Errorf("byte accounting: tx=%d rx=%d; want %d", wire.TxBytes(), wire.RxBytes(), wantBytes)
	}
}

func TestWireScannerBlocklist(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(77))
	wire := NewWireScanner(New(u), asndb.MustParseIP("192.0.2.1"), 1)
	pfx := u.Prefixes()[0]
	wire.Inner().Blocklist().Add(pfx)
	// Find a live host inside the blocked prefix.
	var target asndb.IP
	var port uint16
	for _, h := range u.Hosts() {
		if pfx.Contains(h.IP) && len(h.Ports()) > 0 {
			target, port = h.IP, h.Ports()[0]
			break
		}
	}
	if target == 0 {
		t.Skip("no host in first prefix")
	}
	ok, err := wire.Probe(target, port)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("blocked host responded through wire scanner")
	}
	if wire.TxBytes() != 0 {
		t.Error("bytes sent to blocked space")
	}
}

func TestWireScannerForwardedTTL(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(77))
	// Find a forwarded service and confirm the universe reports a
	// different TTL for it than the host's regular services.
	for _, h := range u.Hosts() {
		var fwdPort, regPort uint16
		var haveFwd, haveReg bool
		for port, svc := range h.Services() {
			if svc.Forwarded {
				fwdPort, haveFwd = port, true
			} else {
				regPort, haveReg = port, true
			}
		}
		if !haveFwd || !haveReg {
			continue
		}
		fwdTTL, _ := u.ResponseTTL(h.IP, fwdPort)
		regTTL, _ := u.ResponseTTL(h.IP, regPort)
		if fwdTTL == regTTL {
			t.Errorf("forwarded service TTL %d equals regular %d on %v", fwdTTL, regTTL, h.IP)
		}
		return
	}
	t.Skip("no host with both forwarded and regular services")
}
