package scanner

import (
	"fmt"
	"math/rand"
	"testing"

	"gps/internal/asndb"
)

// syntheticBlocklist builds n disjoint /24 blocks spread over the space.
func syntheticBlocklist(n int) *Blocklist {
	b := &Blocklist{}
	for i := 0; i < n; i++ {
		// Stride /24s across different /16s so the trie actually fans out.
		addr := asndb.IP(uint32(10+i%64)<<24 | uint32(i%256)<<16 | uint32(i/256%256)<<8)
		b.Add(asndb.MustPrefix(addr, 24))
	}
	return b
}

// TestBlocklistTrieMatchesLinear cross-checks the trie-backed Blocked
// against a straightforward linear scan over the same prefixes.
func TestBlocklistTrieMatchesLinear(t *testing.T) {
	b := syntheticBlocklist(500)
	linear := func(ip asndb.IP) bool {
		for _, p := range b.prefixes {
			if p.Contains(ip) {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(1))
	hits := 0
	for i := 0; i < 20000; i++ {
		ip := asndb.IP(rng.Uint32())
		if i%3 == 0 {
			// Bias a third of the samples into blocked space so both
			// branches are exercised.
			p := b.prefixes[rng.Intn(len(b.prefixes))]
			ip = p.First() + asndb.IP(rng.Intn(int(p.Size())))
		}
		got, want := b.Blocked(ip), linear(ip)
		if got != want {
			t.Fatalf("Blocked(%v) = %v; linear scan says %v", ip, got, want)
		}
		if got {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no sampled address hit the blocklist; test is vacuous")
	}
}

func TestBlocklistNested(t *testing.T) {
	b := &Blocklist{}
	b.Add(asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 8))
	b.Add(asndb.MustPrefix(asndb.MustParseIP("10.1.0.0"), 16)) // nested inside the /8
	if !b.Blocked(asndb.MustParseIP("10.1.2.3")) || !b.Blocked(asndb.MustParseIP("10.200.0.1")) {
		t.Error("nested blocklist entries must both block")
	}
	if b.Blocked(asndb.MustParseIP("11.0.0.1")) {
		t.Error("address outside all prefixes reported blocked")
	}
}

// BenchmarkBlocklistBlocked shows the point of the trie: per-probe
// blocklist checks stay flat as the blocklist grows (formerly an O(n)
// scan per probe, which made large opt-out lists a per-probe tax).
func BenchmarkBlocklistBlocked(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("%d-prefixes", n), func(b *testing.B) {
			bl := syntheticBlocklist(n)
			rng := rand.New(rand.NewSource(2))
			ips := make([]asndb.IP, 1024)
			for i := range ips {
				ips[i] = asndb.IP(rng.Uint32())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = bl.Blocked(ips[i&1023])
			}
		})
	}
}
