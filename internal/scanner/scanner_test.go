package scanner

import (
	"testing"
	"time"

	"gps/internal/asndb"
)

// fakeNet is a trivial Responder: a fixed set of (ip, port) services.
type fakeNet map[asndb.IP]map[uint16]bool

func (f fakeNet) Responsive(ip asndb.IP, port uint16) bool { return f[ip][port] }

// fakeNetFast adds the PrefixResponder fast path.
type fakeNetFast struct{ fakeNet }

func (f fakeNetFast) ResponsiveIn(p asndb.Prefix, port uint16) []asndb.IP {
	var out []asndb.IP
	for ip, ports := range f.fakeNet {
		if p.Contains(ip) && ports[port] {
			out = append(out, ip)
		}
	}
	sortIPs(out)
	return out
}

func sortIPs(ips []asndb.IP) {
	for i := 1; i < len(ips); i++ {
		for j := i; j > 0 && ips[j-1] > ips[j]; j-- {
			ips[j-1], ips[j] = ips[j], ips[j-1]
		}
	}
}

func testNet() fakeNet {
	return fakeNet{
		asndb.MustParseIP("10.0.0.1"): {80: true, 22: true},
		asndb.MustParseIP("10.0.0.5"): {80: true},
		asndb.MustParseIP("10.0.1.1"): {443: true},
		asndb.MustParseIP("11.0.0.1"): {80: true},
	}
}

func TestProbeCounting(t *testing.T) {
	s := New(testNet())
	if !s.Probe(asndb.MustParseIP("10.0.0.1"), 80) {
		t.Error("probe to live service failed")
	}
	if s.Probe(asndb.MustParseIP("10.0.0.2"), 80) {
		t.Error("probe to empty address succeeded")
	}
	if s.Probes() != 2 || s.Hits() != 1 {
		t.Errorf("probes=%d hits=%d; want 2/1", s.Probes(), s.Hits())
	}
	s.ResetCounters()
	if s.Probes() != 0 || s.Hits() != 0 {
		t.Error("ResetCounters did not zero")
	}
}

func TestBlocklist(t *testing.T) {
	s := New(testNet())
	s.Blocklist().Add(asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 24))
	if s.Probe(asndb.MustParseIP("10.0.0.1"), 80) {
		t.Error("probe to blocked space succeeded")
	}
	if s.Probes() != 0 {
		t.Error("blocked probe was counted as sent")
	}
	if !s.Probe(asndb.MustParseIP("10.0.1.1"), 443) {
		t.Error("probe outside blocklist failed")
	}
	if s.Blocklist().Len() != 1 {
		t.Error("blocklist length wrong")
	}
}

func TestScanPrefix(t *testing.T) {
	s := New(testNet())
	p := asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 24)
	got := s.ScanPrefix(p, 80, 7)
	if len(got) != 2 {
		t.Fatalf("found %d responders; want 2", len(got))
	}
	if s.Probes() != 256 {
		t.Errorf("probes = %d; want 256 (full /24)", s.Probes())
	}
}

func TestScanPrefixFastEquivalence(t *testing.T) {
	slow := New(testNet())
	fast := New(fakeNetFast{testNet()})
	p := asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 23)

	a := slow.ScanPrefix(p, 80, 3)
	b := fast.ScanPrefixFast(p, 80, 3)
	sortIPs(a)
	if len(a) != len(b) {
		t.Fatalf("fast path found %d; slow found %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("result %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if slow.Probes() != fast.Probes() {
		t.Errorf("probe accounting differs: %d vs %d", slow.Probes(), fast.Probes())
	}
}

func TestScanPrefixFastBlocklist(t *testing.T) {
	fast := New(fakeNetFast{testNet()})
	fast.Blocklist().Add(asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 24))
	p := asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 23)
	got := fast.ScanPrefixFast(p, 80, 3)
	if len(got) != 0 {
		t.Errorf("blocked /24 still returned %d responders", len(got))
	}
	// Only the unblocked half of the /23 is counted.
	if fast.Probes() != 256 {
		t.Errorf("probes = %d; want 256", fast.Probes())
	}
}

func TestScanIPs(t *testing.T) {
	s := New(testNet())
	ips := []asndb.IP{
		asndb.MustParseIP("10.0.0.1"),
		asndb.MustParseIP("10.0.0.2"),
		asndb.MustParseIP("11.0.0.1"),
	}
	got := s.ScanIPs(ips, 80)
	if len(got) != 2 {
		t.Errorf("ScanIPs found %d; want 2", len(got))
	}
	if s.Probes() != 3 {
		t.Errorf("probes = %d; want 3", s.Probes())
	}
}

func TestRateMath(t *testing.T) {
	r := Rate{Gbps: 1}
	pps := r.PPS()
	// 1 Gb/s over 84-byte frames ~ 1.488M pps.
	if pps < 1.4e6 || pps > 1.6e6 {
		t.Errorf("PPS = %f; want ~1.49M", pps)
	}
	d := r.Duration(uint64(pps))
	if d < 990*time.Millisecond || d > 1010*time.Millisecond {
		t.Errorf("Duration(1s of probes) = %v", d)
	}
	if (Rate{}).Duration(1000) != 0 {
		t.Error("zero rate must yield zero duration")
	}
}

func TestBandwidthUnits(t *testing.T) {
	b := Bandwidth{Probes: 2000, SpaceSize: 1000}
	if b.Scans() != 2 {
		t.Errorf("Scans() = %f; want 2", b.Scans())
	}
	if (Bandwidth{Probes: 5}).Scans() != 0 {
		t.Error("zero space must yield 0")
	}
}

func TestProbeIPIDFingerprint(t *testing.T) {
	// The fingerprint constant is part of GPS's blockability contract;
	// a change would break operator firewall rules.
	if ProbeIPID != 54321 {
		t.Errorf("ProbeIPID = %d; the paper fixes it at 54321", ProbeIPID)
	}
}

func TestShardedPrefixScan(t *testing.T) {
	net := fakeNetFast{testNet()}
	pfx := asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 16)
	const n = 4

	full := New(net).ScanPrefixFast(pfx, 80, 1)

	// Each responder must be returned by exactly the shard that owns it,
	// and the per-shard probe accounting must sum to the full prefix.
	var merged []asndb.IP
	var probes uint64
	for i := 0; i < n; i++ {
		sc := NewSharded(net, i, n)
		part := sc.ScanPrefixFast(pfx, 80, 1)
		for _, ip := range part {
			if asndb.ShardOf(ip, n) != i {
				t.Errorf("shard %d returned %v owned by shard %d", i, ip, asndb.ShardOf(ip, n))
			}
		}
		merged = append(merged, part...)
		probes += sc.Probes()
	}
	sortIPs(merged)
	if len(merged) != len(full) {
		t.Fatalf("merged %d responders; unsharded found %d", len(merged), len(full))
	}
	for i := range full {
		if merged[i] != full[i] {
			t.Errorf("merged[%d] = %v; want %v", i, merged[i], full[i])
		}
	}
	if probes != pfx.Size() {
		t.Errorf("shard probe shares sum to %d; want %d", probes, pfx.Size())
	}

	// The slow path (no PrefixResponder) must partition identically.
	var slowMerged []asndb.IP
	for i := 0; i < n; i++ {
		sc := NewSharded(testNet(), i, n)
		slowMerged = append(slowMerged, sc.ScanPrefix(pfx, 80, 1)...)
	}
	sortIPs(slowMerged)
	if len(slowMerged) != len(full) {
		t.Fatalf("slow-path merged %d responders; want %d", len(slowMerged), len(full))
	}

	// count <= 1 must behave exactly like an unsharded scanner.
	if got := NewSharded(net, 0, 1).ScanPrefixFast(pfx, 80, 1); len(got) != len(full) {
		t.Errorf("NewSharded(_, 0, 1) filtered responders: %d != %d", len(got), len(full))
	}
}

func TestShardedBlocklistAccounting(t *testing.T) {
	net := fakeNetFast{testNet()}
	pfx := asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 16)
	const n = 4
	var probes uint64
	for i := 0; i < n; i++ {
		sc := NewSharded(net, i, n)
		sc.Blocklist().Add(asndb.MustPrefix(asndb.MustParseIP("10.0.128.0"), 17))
		sc.ScanPrefixFast(pfx, 80, 1)
		probes += sc.Probes()
	}
	if want := pfx.Size() / 2; probes != want {
		t.Errorf("blocked shard shares sum to %d; want %d", probes, want)
	}
}

func TestNewShardedRejectsBadIndex(t *testing.T) {
	for _, idx := range []int{-1, 4, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSharded(_, %d, 4) did not panic", idx)
				}
			}()
			NewSharded(testNet(), idx, 4)
		}()
	}
}
