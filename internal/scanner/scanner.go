package scanner

import (
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/asndb"
)

// ProbeIPID is the IP identification field GPS stamps on every SYN probe.
// The fixed value gives network operators a one-line firewall rule to block
// GPS scans (§3, Ethics; §5.5), which is a deliberate design choice.
const ProbeIPID = 54321

// ProbeBytes is the on-wire size of one SYN probe frame (Ethernet + IPv4 +
// TCP), used to convert probe counts to link bandwidth.
const ProbeBytes = 84

// Responder answers simulated SYN probes; *netmodel.Universe implements it.
type Responder interface {
	Responsive(ip asndb.IP, port uint16) bool
}

// Blocklist excludes prefixes from scanning, honoring operators who have
// blocked the GPS fingerprint. Probes to blocked space are never sent (and
// never counted). Membership checks run against a binary trie, so Blocked
// costs O(32) bit steps regardless of how many operators have opted out —
// it sits on the per-probe hot path.
type Blocklist struct {
	prefixes []asndb.Prefix
	trie     asndb.Table
}

// Add appends a prefix to the blocklist.
func (b *Blocklist) Add(p asndb.Prefix) {
	b.prefixes = append(b.prefixes, p)
	b.trie.Insert(p, 0)
}

// Blocked reports whether ip falls in any blocked prefix.
func (b *Blocklist) Blocked(ip asndb.IP) bool {
	_, blocked := b.trie.Lookup(ip)
	return blocked
}

// Len returns the number of blocked prefixes.
func (b *Blocklist) Len() int { return len(b.prefixes) }

// Scanner is the probe engine. It is safe for concurrent use: probe
// accounting is atomic, and the Responder contract requires concurrent
// reads to be safe.
type Scanner struct {
	target Responder
	block  *Blocklist
	probes atomic.Uint64
	hits   atomic.Uint64
	// shardIdx/shardCnt restrict prefix scans to the addresses this
	// scanner's shard owns (asndb.ShardOf); shardCnt <= 1 disables it.
	shardIdx, shardCnt int

	// exact switches prefix-scan fast paths from the ideal 1/count probe
	// share to the exact owned-address count; census memoizes the count
	// per prefix so each prefix is hashed at most once.
	exact    bool
	censusMu sync.Mutex
	census   map[asndb.Prefix]uint64
}

// New creates a scanner against the given responder.
func New(target Responder) *Scanner {
	return &Scanner{target: target, block: &Blocklist{}}
}

// NewSharded creates a scanner that owns one partition of an n-way
// hash-split of the address space: prefix scans probe (and account) only
// the addresses with asndb.ShardOf(ip, count) == index. Targeted probes
// (Probe, ScanIPs) are unrestricted — callers direct those explicitly.
// count <= 1 yields a regular unsharded scanner; an index outside
// [0, count) panics, since such a scanner would own nothing while still
// accounting its probe share.
func NewSharded(target Responder, index, count int) *Scanner {
	s := New(target)
	if count > 1 {
		if index < 0 || index >= count {
			panic("scanner: shard index out of range")
		}
		s.shardIdx, s.shardCnt = index, count
	}
	return s
}

// owns reports whether ip belongs to this scanner's shard.
func (s *Scanner) owns(ip asndb.IP) bool {
	return asndb.ShardOwns(ip, s.shardIdx, s.shardCnt)
}

// shardShare returns the slice of n probes this shard accounts for a
// prefix scan: the ideal 1/count share with the remainder spread over the
// low shard indexes, so shares sum exactly to n across all shards. The
// hash split owns approximately this many addresses; accounting the ideal
// share keeps per-shard bandwidth deterministic without hashing every
// address in the prefix.
func (s *Scanner) shardShare(n uint64) uint64 {
	if s.shardCnt <= 1 {
		return n
	}
	share := n / uint64(s.shardCnt)
	if uint64(s.shardIdx) < n%uint64(s.shardCnt) {
		share++
	}
	return share
}

// SetExactShardCounts switches a sharded scanner's prefix-scan fast path
// from accounting the ideal 1/count probe share to the exact number of
// addresses its shard owns. The ideal share differs from the owned count
// only by hash-split sampling noise, but that noise is what keeps the sum
// of per-shard probe counters from matching the unsharded run exactly;
// exact mode removes it at the cost of hashing every address of each
// distinct prefix once (the count is memoized per prefix). A no-op on
// unsharded scanners, where the share already is the prefix size.
func (s *Scanner) SetExactShardCounts(on bool) {
	s.exact = on && s.shardCnt > 1
}

// ownedInPrefix returns the exact number of addresses in p this scanner's
// shard owns, memoized per prefix.
func (s *Scanner) ownedInPrefix(p asndb.Prefix) uint64 {
	s.censusMu.Lock()
	if n, ok := s.census[p]; ok {
		s.censusMu.Unlock()
		return n
	}
	s.censusMu.Unlock()
	var n uint64
	for off := uint64(0); off < p.Size(); off++ {
		if s.owns(p.First() + asndb.IP(off)) {
			n++
		}
	}
	s.censusMu.Lock()
	if s.census == nil {
		s.census = make(map[asndb.Prefix]uint64)
	}
	s.census[p] = n
	s.censusMu.Unlock()
	return n
}

// ownedUnblocked returns the exact number of addresses in p this
// scanner's shard owns that are not blocklisted. Not memoized: the
// blocklist is mutable, so a cached count could go stale.
func (s *Scanner) ownedUnblocked(p asndb.Prefix) uint64 {
	var n uint64
	for off := uint64(0); off < p.Size(); off++ {
		ip := p.First() + asndb.IP(off)
		if s.owns(ip) && !s.block.Blocked(ip) {
			n++
		}
	}
	return n
}

// Blocklist returns the scanner's mutable blocklist.
func (s *Scanner) Blocklist() *Blocklist { return s.block }

// Probe sends one SYN to (ip, port) and reports whether it was ACKed.
// Probes to blocklisted space return false without being sent.
func (s *Scanner) Probe(ip asndb.IP, port uint16) bool {
	if s.block.Blocked(ip) {
		return false
	}
	s.probes.Add(1)
	if s.target.Responsive(ip, port) {
		s.hits.Add(1)
		return true
	}
	return false
}

// Probes returns the number of probes sent so far.
func (s *Scanner) Probes() uint64 { return s.probes.Load() }

// Hits returns the number of positive responses so far.
func (s *Scanner) Hits() uint64 { return s.hits.Load() }

// ResetCounters zeroes the probe and hit counters.
func (s *Scanner) ResetCounters() {
	s.probes.Store(0)
	s.hits.Store(0)
}

// ScanPrefix probes every address in the prefix on one port, in ZMap's
// pseudorandom order, and returns the responsive addresses. A sharded
// scanner probes only the addresses its shard owns.
func (s *Scanner) ScanPrefix(p asndb.Prefix, port uint16, seed int64) []asndb.IP {
	n := p.Size()
	it, err := NewCyclicIterator(n, seed)
	if err != nil {
		return nil
	}
	var out []asndb.IP
	for {
		idx, ok := it.Next()
		if !ok {
			break
		}
		ip := p.First() + asndb.IP(idx)
		if !s.owns(ip) {
			continue
		}
		if s.Probe(ip, port) {
			out = append(out, ip)
		}
	}
	return out
}

// PrefixResponder is an optional fast path a Responder may implement:
// enumerate the responsive addresses of a whole prefix directly.
// *netmodel.Universe implements it.
type PrefixResponder interface {
	ResponsiveIn(p asndb.Prefix, port uint16) []asndb.IP
}

// ScanPrefixFast scans a prefix on one port like ScanPrefix, but uses the
// responder's PrefixResponder fast path when available. The probe counter
// still advances by the full prefix size — the bandwidth is identical, only
// the simulation is cheaper. Blocklisted addresses are removed from both
// the results and the accounting. A sharded scanner returns only the
// responders its shard owns and accounts the ideal 1/count share of the
// prefix — or, with SetExactShardCounts, the exact owned count (memoized
// per prefix, so the hashing cost is paid once; without it the hash split
// makes the two agree only to within sampling noise).
func (s *Scanner) ScanPrefixFast(p asndb.Prefix, port uint16, seed int64) []asndb.IP {
	pr, ok := s.target.(PrefixResponder)
	if !ok {
		return s.ScanPrefix(p, port, seed)
	}
	if len(s.block.prefixes) == 0 {
		if s.exact {
			s.probes.Add(s.ownedInPrefix(p))
		} else {
			s.probes.Add(s.shardShare(p.Size()))
		}
		hits := pr.ResponsiveIn(p, port)
		if s.shardCnt > 1 {
			hits = s.filterOwned(hits)
		}
		s.hits.Add(uint64(len(hits)))
		return hits
	}
	// With a blocklist, count the unblocked fraction precisely.
	if s.exact {
		s.probes.Add(s.ownedUnblocked(p))
	} else {
		var blocked uint64
		for _, b := range s.block.prefixes {
			if b.Bits >= p.Bits && p.Contains(b.First()) {
				blocked += b.Size()
			} else if b.Contains(p.First()) {
				blocked = p.Size()
				break
			}
		}
		if blocked > p.Size() {
			blocked = p.Size()
		}
		s.probes.Add(s.shardShare(p.Size() - blocked))
	}
	var out []asndb.IP
	for _, ip := range pr.ResponsiveIn(p, port) {
		if !s.block.Blocked(ip) && s.owns(ip) {
			out = append(out, ip)
			s.hits.Add(1)
		}
	}
	return out
}

// filterOwned returns the addresses this scanner's shard owns. The input
// comes from the responder and must not be mutated, so a fresh slice is
// built.
func (s *Scanner) filterOwned(ips []asndb.IP) []asndb.IP {
	var owned []asndb.IP
	for _, ip := range ips {
		if s.owns(ip) {
			owned = append(owned, ip)
		}
	}
	return owned
}

// ScanIPs probes a target list on one port and returns the responders.
func (s *Scanner) ScanIPs(ips []asndb.IP, port uint16) []asndb.IP {
	var out []asndb.IP
	for _, ip := range ips {
		if s.Probe(ip, port) {
			out = append(out, ip)
		}
	}
	return out
}

// Rate describes a scanning rate for wall-time estimates.
type Rate struct {
	// Gbps is the link rate dedicated to probing.
	Gbps float64
}

// PPS returns the probe rate in packets per second.
func (r Rate) PPS() float64 { return r.Gbps * 1e9 / (ProbeBytes * 8) }

// Duration converts a probe count to wall time at this rate. This is the
// "Time (H) at 1 Gb/s" axis of Figure 2.
func (r Rate) Duration(probes uint64) time.Duration {
	if r.Gbps <= 0 {
		return 0
	}
	sec := float64(probes) / r.PPS()
	return time.Duration(sec * float64(time.Second))
}

// Bandwidth expresses a probe count in the paper's bandwidth unit:
// the number of full one-port passes over the scannable address space
// ("# of 100% scans", Figure 2's x-axis).
type Bandwidth struct {
	Probes    uint64
	SpaceSize uint64
}

// Scans returns the bandwidth in units of 100% scans.
func (b Bandwidth) Scans() float64 {
	if b.SpaceSize == 0 {
		return 0
	}
	return float64(b.Probes) / float64(b.SpaceSize)
}
