package scanner

import (
	"testing"

	"gps/internal/asndb"
)

// bruteOwned counts the addresses of p that shard (index, count) owns by
// hashing every address — the ground truth exact accounting must match.
func bruteOwned(p asndb.Prefix, index, count int) uint64 {
	var n uint64
	for off := uint64(0); off < p.Size(); off++ {
		if asndb.ShardOf(p.First()+asndb.IP(off), count) == index {
			n++
		}
	}
	return n
}

func TestExactShardCounts(t *testing.T) {
	net := fakeNetFast{testNet()}
	pfx := asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 20)
	const n = 4

	var exactSum, idealSum uint64
	for i := 0; i < n; i++ {
		exact := NewSharded(net, i, n)
		exact.SetExactShardCounts(true)
		exact.ScanPrefixFast(pfx, 80, 1)
		if want := bruteOwned(pfx, i, n); exact.Probes() != want {
			t.Errorf("shard %d exact accounting = %d probes; brute-force owned count = %d",
				i, exact.Probes(), want)
		}
		exactSum += exact.Probes()

		ideal := NewSharded(net, i, n)
		ideal.ScanPrefixFast(pfx, 80, 1)
		idealSum += ideal.Probes()
	}
	// Both modes sum exactly to the prefix size across shards; only exact
	// mode also matches per shard.
	if exactSum != pfx.Size() || idealSum != pfx.Size() {
		t.Errorf("shard sums exact=%d ideal=%d; want %d", exactSum, idealSum, pfx.Size())
	}

	// The memoized census must return the same count on a second scan.
	sc := NewSharded(net, 1, n)
	sc.SetExactShardCounts(true)
	sc.ScanPrefixFast(pfx, 80, 1)
	first := sc.Probes()
	sc.ScanPrefixFast(pfx, 80, 1)
	if sc.Probes() != 2*first {
		t.Errorf("second scan accounted %d probes; memoized count should repeat %d",
			sc.Probes()-first, first)
	}
}

func TestExactShardCountsBlocklist(t *testing.T) {
	net := fakeNetFast{testNet()}
	pfx := asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 20)
	blocked := asndb.MustPrefix(asndb.MustParseIP("10.0.8.0"), 21)
	const n = 4

	var sum uint64
	for i := 0; i < n; i++ {
		sc := NewSharded(net, i, n)
		sc.SetExactShardCounts(true)
		sc.Blocklist().Add(blocked)
		sc.ScanPrefixFast(pfx, 80, 1)
		// Per shard: exactly the owned, unblocked addresses.
		want := bruteOwned(pfx, i, n) - bruteOwned(blocked, i, n)
		if sc.Probes() != want {
			t.Errorf("shard %d accounted %d probes with blocklist; want %d", i, sc.Probes(), want)
		}
		sum += sc.Probes()
	}
	if want := pfx.Size() - blocked.Size(); sum != want {
		t.Errorf("blocked shard sums = %d; want %d", sum, want)
	}
}

// Exact mode on an unsharded scanner is a no-op: the share already is the
// full prefix.
func TestExactShardCountsUnsharded(t *testing.T) {
	net := fakeNetFast{testNet()}
	pfx := asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 20)
	sc := New(net)
	sc.SetExactShardCounts(true)
	sc.ScanPrefixFast(pfx, 80, 1)
	if sc.Probes() != pfx.Size() {
		t.Errorf("unsharded exact mode accounted %d probes; want %d", sc.Probes(), pfx.Size())
	}
}
