// Package scanner simulates the probe layer of the GPS pipeline: a
// ZMap-style stateless SYN scanner (§5.5) that visits addresses in a
// pseudorandom permutation, counts every probe, and converts probe counts
// into the paper's bandwidth ("# of 100% scans") and wall-time units.
package scanner

import (
	"fmt"
	"math/bits"
)

// mulmod computes (a*b) mod m without overflow for m < 2^63.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powmod computes a^e mod m.
func powmod(a, e, m uint64) uint64 {
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, a, m)
		}
		a = mulmod(a, a, m)
		e >>= 1
	}
	return result
}

// millerRabinBases is sufficient for deterministic primality testing of all
// 64-bit integers.
var millerRabinBases = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime (deterministic for uint64).
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	for _, a := range millerRabinBases {
		x := powmod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// nextPrime returns the smallest prime >= n.
func nextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n&1 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// primeFactors returns the distinct prime factors of n by trial division.
func primeFactors(n uint64) []uint64 {
	var out []uint64
	for _, p := range []uint64{2, 3} {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	for f := uint64(5); f*f <= n; f += 2 {
		if n%f == 0 {
			out = append(out, f)
			for n%f == 0 {
				n /= f
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// findGenerator returns a generator of the multiplicative group mod prime p,
// starting the search at a seed-derived candidate so different scans use
// different permutations (ZMap picks a fresh generator per scan).
func findGenerator(p uint64, seed uint64) uint64 {
	if p <= 3 {
		// Z_2^* = {1} (generator 1); Z_3^* = {1,2} (generator 2).
		return p - 1
	}
	factors := primeFactors(p - 1)
	start := 2 + seed%(p-3)
	for i := uint64(0); i < p; i++ {
		g := start + i
		if g >= p {
			g = 2 + (g - p)
		}
		ok := true
		for _, q := range factors {
			if powmod(g, (p-1)/q, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
	panic("scanner: no generator found") // unreachable for prime p
}

// CyclicIterator walks the index space [0, n) in pseudorandom order by
// iterating the multiplicative cyclic group of a prime p >= n+1, exactly as
// ZMap permutes the IPv4 space. Every index is visited exactly once per
// cycle; state is one integer, so the scanner stays stateless per probe.
type CyclicIterator struct {
	n     uint64 // size of the index space
	p     uint64 // prime modulus > n
	g     uint64 // generator of Z_p^*
	cur   uint64 // current group element
	first uint64 // starting element, to detect cycle completion
	done  bool
}

// NewCyclicIterator creates an iterator over [0, n) seeded by seed.
func NewCyclicIterator(n uint64, seed int64) (*CyclicIterator, error) {
	if n == 0 {
		return nil, fmt.Errorf("scanner: empty index space")
	}
	if n >= 1<<62 {
		return nil, fmt.Errorf("scanner: index space too large: %d", n)
	}
	p := nextPrime(n + 1)
	g := findGenerator(p, uint64(seed))
	// Start at a seed-derived element of the group.
	first := powmod(g, 1+uint64(seed)%(p-1), p)
	return &CyclicIterator{n: n, p: p, g: g, cur: first, first: first}, nil
}

// Next returns the next index in the permutation. ok is false once the full
// cycle has been emitted.
func (it *CyclicIterator) Next() (idx uint64, ok bool) {
	for !it.done {
		v := it.cur
		it.cur = mulmod(it.cur, it.g, it.p)
		if it.cur == it.first {
			it.done = true
		}
		if v-1 < it.n { // group elements are 1..p-1; indexes are 0..n-1
			return v - 1, true
		}
	}
	return 0, false
}

// Reset rewinds the iterator to the start of its cycle.
func (it *CyclicIterator) Reset() {
	it.cur = it.first
	it.done = false
}

// Len returns the size of the index space.
func (it *CyclicIterator) Len() uint64 { return it.n }
