package shard

import (
	"bytes"
	"testing"

	"gps/internal/continuous"
)

// TestStateRoundTrip proves EncodeState/DecodeState is lossless at the
// byte level: a state survives a round trip bit-for-bit, which is what
// lets a migrated shard's state stand in for a checkpointed one.
func TestStateRoundTrip(t *testing.T) {
	u, seedSet := testWorld(t, 11)
	cfg := continuous.Config{
		Budget:     4000,
		ShardIndex: 0,
		ShardCount: 2,
	}
	cfg.Pipeline.Workers = 1
	cfg.Pipeline.Seed = 11
	r := continuous.New(seedSet, cfg)
	for e := 0; e < 2; e++ {
		if _, err := r.Epoch(u); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}

	blob, err := EncodeState(r.State())
	if err != nil {
		t.Fatalf("EncodeState: %v", err)
	}
	st, err := DecodeState(blob)
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if st.Epoch != r.State().Epoch {
		t.Fatalf("round-tripped epoch %d, want %d", st.Epoch, r.State().Epoch)
	}
	if len(st.Known) != len(r.State().Known) {
		t.Fatalf("round-tripped %d known services, want %d", len(st.Known), len(r.State().Known))
	}
	again, err := EncodeState(st)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("EncodeState is not byte-stable across a round trip")
	}

	if _, err := DecodeState([]byte("not a checkpoint")); err == nil {
		t.Fatal("DecodeState accepted garbage")
	}
}
