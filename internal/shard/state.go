package shard

import (
	"bytes"
	"fmt"

	"gps/internal/continuous"
)

// Per-shard state extraction. A single shard's continuous state has
// always been serializable — the whole-file checkpoint (WriteCheckpoint)
// is a sequence of them — but until live migration there was no reason
// to move one shard's state on its own. These helpers make the single
// shard the unit of serialization: EncodeState produces a standalone
// blob (exactly one continuous checkpoint), DecodeState parses it back.
// The transport's migration envelopes (msgState), resume inits, and
// epoch results all ship this blob, so a migrated shard's state is
// byte-compatible with a checkpointed one.

// EncodeState serializes one shard's continuous state as a standalone
// blob — the unit of live migration and of per-shard resume.
func EncodeState(st *continuous.State) ([]byte, error) {
	var buf bytes.Buffer
	if err := continuous.WriteCheckpoint(&buf, st); err != nil {
		return nil, fmt.Errorf("shard: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState parses EncodeState output.
func DecodeState(blob []byte) (*continuous.State, error) {
	st, err := continuous.ReadCheckpoint(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("shard: decoding state: %w", err)
	}
	return st, nil
}
