package shard

import (
	"fmt"
	"sync"
	"time"

	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/netmodel"
	"gps/internal/trace"
)

// Config parameterizes the sharded continuous coordinator.
type Config struct {
	// Shards is the partition count; <= 1 runs a single unsharded runner.
	// Keep it small relative to the seed size: a shard whose partition
	// owns no seed records has nothing to train on and can never
	// discover, leaving its slice of the address space unscanned. Check
	// Coordinator.EmptyShards after construction when the seed is small.
	Shards int
	// Continuous is the per-shard template. Its Budget is interpreted as
	// the GLOBAL per-epoch budget and sliced evenly across shards; its
	// ShardIndex/ShardCount fields are overwritten per shard.
	Continuous continuous.Config
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// shardConfig derives shard i's runner configuration.
func (c Config) shardConfig(i int, budgets []uint64) continuous.Config {
	sc := c.Continuous
	sc.Budget = budgets[i]
	sc.ShardIndex, sc.ShardCount = i, c.shards()
	return sc
}

// Coordinator drives N continuous runners, one per partition, running
// their epochs concurrently and folding their per-shard inventories into
// one global view on demand. Each runner owns its partition exclusively:
// its model retrains on its own inventory, its discovery pipeline scans
// only its addresses, and its probe budget is a 1/N slice of the global
// epoch budget. The coordinator itself is not safe for concurrent use.
type Coordinator struct {
	cfg     Config
	runners []*continuous.Runner
	hook    CommitHook
	tel     *coordTelemetry
}

// CommitHook observes each committed coordinator epoch. It runs
// synchronously at the end of Epoch, after every shard finished, with the
// epoch number and the freshly merged (MergeInventories) global
// inventory. The map is the hook's to keep: it is built per call and
// shares nothing with shard state, so the serving layer can index it
// without copying again.
type CommitHook func(epoch int, inv map[netmodel.Key]*continuous.Entry)

// NewCoordinator creates a coordinator seeded with an initial observation
// set. The seed is handed to every runner; each keeps only the records its
// partition owns, so the union of the shard inventories is exactly the
// seeded set.
func NewCoordinator(seed *dataset.Dataset, cfg Config) *Coordinator {
	n := cfg.shards()
	budgets := SliceBudget(cfg.Continuous.Budget, n)
	c := &Coordinator{cfg: cfg, runners: make([]*continuous.Runner, n), tel: newCoordTelemetry(n)}
	for i := range c.runners {
		c.runners[i] = continuous.New(seed, cfg.shardConfig(i, budgets))
	}
	return c
}

// ResumeCoordinator recreates a coordinator from checkpointed per-shard
// states, one per partition in shard order. The state count must match
// cfg.Shards — resuming under a different shard count would strand every
// host in a partition that no longer scans it.
func ResumeCoordinator(states []*continuous.State, cfg Config) (*Coordinator, error) {
	n := cfg.shards()
	if len(states) != n {
		return nil, fmt.Errorf("shard: checkpoint holds %d shard states; config says %d shards", len(states), n)
	}
	budgets := SliceBudget(cfg.Continuous.Budget, n)
	c := &Coordinator{cfg: cfg, runners: make([]*continuous.Runner, n), tel: newCoordTelemetry(n)}
	for i := range c.runners {
		c.runners[i] = continuous.Resume(states[i], cfg.shardConfig(i, budgets))
	}
	return c, nil
}

// Shards returns the partition count.
func (c *Coordinator) Shards() int { return len(c.runners) }

// SetCommitHook registers the hook Epoch invokes after each commit; nil
// unregisters. Call it before the epoch loop starts, not concurrently
// with Epoch.
func (c *Coordinator) SetCommitHook(h CommitHook) { c.hook = h }

// EmptyShards returns the indexes of shards with an empty inventory.
// After construction these are the partitions that received no seed
// records: they cannot train a model or discover services, so their
// slice of the address space goes unscanned. A non-empty result means
// the shard count is too large for the seed (or, after epochs, that a
// partition's population died out).
func (c *Coordinator) EmptyShards() []int {
	var out []int
	for i, r := range c.runners {
		if len(r.State().Known) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// EpochNumber returns the last completed epoch (shards advance in
// lockstep).
func (c *Coordinator) EpochNumber() int { return c.runners[0].State().Epoch }

// States exposes the per-shard states in shard order (shared, not
// copied): read them for reporting, checkpoint them with WriteCheckpoint.
func (c *Coordinator) States() []*continuous.State {
	out := make([]*continuous.State, len(c.runners))
	for i, r := range c.runners {
		out[i] = r.State()
	}
	return out
}

// Epoch runs one epoch on every shard concurrently against the universe
// and returns the merged stats: counters summed, freshness folded. The
// per-shard stats remain available in each shard state's History.
func (c *Coordinator) Epoch(u *netmodel.Universe) (continuous.EpochStats, error) {
	root := trace.StartSpan(trace.SpanContext{}, "epoch",
		trace.Int("epoch", c.EpochNumber()+1), trace.Int("shards", len(c.runners)))
	stats := make([]continuous.EpochStats, len(c.runners))
	errs := make([]error, len(c.runners))
	var wg sync.WaitGroup
	for i, r := range c.runners {
		wg.Add(1)
		go func(i int, r *continuous.Runner) {
			defer wg.Done()
			ssp := trace.StartSpan(root.Context(), "shard-epoch", trace.Int("shard", i))
			r.SetTraceParent(ssp.Context())
			start := time.Now()
			stats[i], errs[i] = r.Epoch(u)
			c.tel.observeShard(i, time.Since(start))
			r.SetTraceParent(trace.SpanContext{})
			ssp.FinishErr(errs[i])
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			root.FinishErr(err)
			return continuous.EpochStats{}, fmt.Errorf("shard: shard %d/%d: %w", i, len(c.runners), err)
		}
	}
	c.tel.commit(c.EpochNumber())
	if c.hook != nil {
		inv, _ := MergeInventories(c.States())
		c.hook(c.EpochNumber(), inv)
	}
	root.Finish()
	return MergeStats(stats), nil
}

// MergeStats folds per-shard epoch stats into one global summary: probe
// and service counters sum, the freshness accounting folds component-wise.
func MergeStats(stats []continuous.EpochStats) continuous.EpochStats {
	var m continuous.EpochStats
	for _, s := range stats {
		m.Epoch = s.Epoch // lockstep: identical across shards
		m.ReverifyProbes += s.ReverifyProbes
		m.DiscoveryProbes += s.DiscoveryProbes
		m.Verified += s.Verified
		m.Lost += s.Lost
		m.Evicted += s.Evicted
		m.NewFound += s.NewFound
		m.Refreshed += s.Refreshed
		m.TrainSize += s.TrainSize
		m.KnownSize += s.KnownSize
		m.Freshness.Known += s.Freshness.Known
		m.Freshness.Fresh += s.Freshness.Fresh
		m.Freshness.Stale += s.Freshness.Stale
		m.Freshness.Checked += s.Freshness.Checked
		m.Freshness.Alive += s.Freshness.Alive
		// Shards run concurrently, so these sums read as CPU-seconds of
		// phase work, not wall time (see continuous.PhaseTimes).
		m.Phases.Reverify += s.Phases.Reverify
		m.Phases.Retrain += s.Phases.Retrain
		m.Phases.Discover += s.Phases.Discover
		m.Phases.Fold += s.Phases.Fold
	}
	return m
}

// Inventory returns the merged global inventory with cross-shard conflict
// resolution, plus how many conflicts were resolved. Under the hash split
// partitions are disjoint and conflicts are zero; they arise when resumed
// states overlap (e.g. hand-assembled checkpoints). Resolution prefers
// the shard that saw the host most recently (larger LastSeen), then the
// fresher entry (smaller Stale), then the longer-tracked one (smaller
// FirstSeen); entries are copied, so mutating the result does not corrupt
// shard state.
func (c *Coordinator) Inventory() (map[netmodel.Key]*continuous.Entry, int) {
	return MergeInventories(c.States())
}

// MergeInventories implements Inventory over raw checkpoint states.
func MergeInventories(states []*continuous.State) (map[netmodel.Key]*continuous.Entry, int) {
	merged := make(map[netmodel.Key]*continuous.Entry)
	conflicts := 0
	for _, st := range states {
		for k, e := range st.Known {
			cp := *e
			old, ok := merged[k]
			if !ok {
				merged[k] = &cp
				continue
			}
			conflicts++
			if betterEntry(&cp, old) {
				merged[k] = &cp
			}
		}
	}
	return merged, conflicts
}

// betterEntry reports whether a should replace b in a merged inventory.
func betterEntry(a, b *continuous.Entry) bool {
	if a.LastSeen != b.LastSeen {
		return a.LastSeen > b.LastSeen
	}
	if a.Stale != b.Stale {
		return a.Stale < b.Stale
	}
	return a.FirstSeen < b.FirstSeen
}
