package shard

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// Epoch-delta format ("GPSE", version 1):
//
//	magic "GPSE" | version u8
//	baseEpoch varint | epoch varint
//	addCount uvarint    | adds    (sorted by (IP, port))
//	updateCount uvarint | updates (sorted by (IP, port))
//	removeCount uvarint | removes (sorted by (IP, port))
//	per add/update entry:
//	  IP u32 | port u16 (big-endian)
//	  proto, asn, ttl, firstSeen, lastSeen, stale uvarints
//	per remove:
//	  IP u32 | port u16 (big-endian)
//
// A delta carries exactly the GPSV serving fields, so a chain of deltas
// applied to a GPSV bootstrap reconstructs the origin's inventory
// byte-identically under WriteInventory — the contract the replication
// CI gate diffs. Churn is ~9% per 10 days (§3), so a delta is roughly an
// order of magnitude smaller than the full snapshot it advances.
const (
	deltaMagic   = "GPSE"
	deltaVersion = 1
)

// DeltaEntry is one added or updated service in a delta: the (IP, port)
// key plus the GPSV serving fields (Entry.Rec.Feats is not part of the
// format and stays empty).
type DeltaEntry struct {
	Key   netmodel.Key
	Entry continuous.Entry
}

// Delta is the inventory difference between two committed epochs:
// services that appeared (Adds), changed serving fields or observation
// counters (Updates), and disappeared (Removes), each sorted by
// (IP, port) so equal diffs always encode to equal bytes. Applying a
// delta to the BaseEpoch inventory yields the Epoch inventory exactly.
type Delta struct {
	BaseEpoch int
	Epoch     int
	Adds      []DeltaEntry
	Updates   []DeltaEntry
	Removes   []netmodel.Key
}

// Size returns the number of changes the delta carries.
func (d *Delta) Size() int { return len(d.Adds) + len(d.Updates) + len(d.Removes) }

// servedEqual reports whether two entries agree on every field the GPSV
// format (and therefore the serving layer and the replication feed)
// carries. Application-layer features are deliberately excluded: they
// never cross the inventory formats, so a feature-only change must not
// produce a delta entry.
func servedEqual(a, b *continuous.Entry) bool {
	return a.Rec.Proto == b.Rec.Proto && a.Rec.ASN == b.Rec.ASN && a.Rec.TTL == b.Rec.TTL &&
		a.FirstSeen == b.FirstSeen && a.LastSeen == b.LastSeen && a.Stale == b.Stale
}

// servedEntry copies the GPSV-visible fields of e for key k.
func servedEntry(k netmodel.Key, e *continuous.Entry) continuous.Entry {
	return continuous.Entry{
		Rec: dataset.Record{
			IP: k.IP, Port: k.Port,
			Proto: e.Rec.Proto, ASN: e.Rec.ASN, TTL: e.Rec.TTL,
		},
		FirstSeen: e.FirstSeen, LastSeen: e.LastSeen, Stale: e.Stale,
	}
}

// ComputeDelta diffs two merged inventories (the views MergeInventories
// builds at consecutive epoch commits) into the canonical delta that
// advances base to next. Neither input is retained or mutated.
func ComputeDelta(base, next map[netmodel.Key]*continuous.Entry, baseEpoch, epoch int) *Delta {
	d := &Delta{BaseEpoch: baseEpoch, Epoch: epoch}
	for k, e := range next {
		old, ok := base[k]
		switch {
		case !ok:
			d.Adds = append(d.Adds, DeltaEntry{Key: k, Entry: servedEntry(k, e)})
		case !servedEqual(old, e):
			d.Updates = append(d.Updates, DeltaEntry{Key: k, Entry: servedEntry(k, e)})
		}
	}
	for k := range base {
		if _, ok := next[k]; !ok {
			d.Removes = append(d.Removes, k)
		}
	}
	sortDeltaEntries(d.Adds)
	sortDeltaEntries(d.Updates)
	sort.Slice(d.Removes, func(i, j int) bool { return keyLess(d.Removes[i], d.Removes[j]) })
	return d
}

func sortDeltaEntries(es []DeltaEntry) {
	sort.Slice(es, func(i, j int) bool { return keyLess(es[i].Key, es[j].Key) })
}

// ApplyDelta applies a delta to an inventory in place: adds must be new
// keys, updates and removes must hit existing ones — a mismatch means
// the delta was derived against a different base than inv and returns an
// error with inv partially updated (apply to a CloneInventory copy when
// the original must survive a failure). ApplyDelta(ComputeDelta(A, B), A)
// reproduces B exactly on the GPSV serving fields.
func ApplyDelta(inv map[netmodel.Key]*continuous.Entry, d *Delta) error {
	for _, a := range d.Adds {
		if _, ok := inv[a.Key]; ok {
			return fmt.Errorf("shard: delta %d→%d adds %v, which the base already holds", d.BaseEpoch, d.Epoch, a.Key)
		}
		e := a.Entry
		inv[a.Key] = &e
	}
	for _, u := range d.Updates {
		if _, ok := inv[u.Key]; !ok {
			return fmt.Errorf("shard: delta %d→%d updates %v, which the base does not hold", d.BaseEpoch, d.Epoch, u.Key)
		}
		e := u.Entry
		inv[u.Key] = &e
	}
	for _, k := range d.Removes {
		if _, ok := inv[k]; !ok {
			return fmt.Errorf("shard: delta %d→%d removes %v, which the base does not hold", d.BaseEpoch, d.Epoch, k)
		}
		delete(inv, k)
	}
	return nil
}

// CloneInventory copies an inventory map and its entries: the copy can
// be mutated (or handed to ApplyDelta) without touching the original.
func CloneInventory(inv map[netmodel.Key]*continuous.Entry) map[netmodel.Key]*continuous.Entry {
	out := make(map[netmodel.Key]*continuous.Entry, len(inv))
	for k, e := range inv {
		cp := *e
		out[k] = &cp
	}
	return out
}

// DeltaMagicError reports bytes that are not a GPSE delta at all, or a
// GPSE version this reader does not speak.
type DeltaMagicError struct {
	// Found is the magic encountered; Version is the declared version
	// when the magic matched (0 otherwise).
	Found   string
	Version uint8
}

func (e *DeltaMagicError) Error() string {
	if e.Found != deltaMagic {
		return fmt.Sprintf("shard: bad delta magic %q, want %q", e.Found, deltaMagic)
	}
	return fmt.Sprintf("shard: unsupported delta version %d, want %d", e.Version, deltaVersion)
}

// DeltaTruncatedError reports a delta cut short mid-stream.
type DeltaTruncatedError struct {
	// Section names the part being decoded ("header", "add", "update",
	// "remove"); Entry is the 0-based index within the section, or -1 for
	// the header.
	Section string
	Entry   int
	Err     error
}

func (e *DeltaTruncatedError) Error() string {
	if e.Entry < 0 {
		return fmt.Sprintf("shard: truncated delta header: %v", e.Err)
	}
	return fmt.Sprintf("shard: truncated delta at %s %d: %v", e.Section, e.Entry, e.Err)
}

func (e *DeltaTruncatedError) Unwrap() error { return e.Err }

// WriteDelta serializes a delta canonically. Entries and removes are
// written in their slice order; ComputeDelta output is already sorted,
// so equal diffs produce equal bytes.
func WriteDelta(w io.Writer, d *Delta) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(deltaMagic)
	bw.WriteByte(deltaVersion)
	writeVarint(bw, int64(d.BaseEpoch))
	writeVarint(bw, int64(d.Epoch))
	writeUvarint(bw, uint64(len(d.Adds)))
	for _, a := range d.Adds {
		writeDeltaEntry(bw, a)
	}
	writeUvarint(bw, uint64(len(d.Updates)))
	for _, u := range d.Updates {
		writeDeltaEntry(bw, u)
	}
	writeUvarint(bw, uint64(len(d.Removes)))
	for _, k := range d.Removes {
		writeDeltaKey(bw, k)
	}
	return bw.Flush()
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeDeltaKey(bw *bufio.Writer, k netmodel.Key) {
	var kb [6]byte
	binary.BigEndian.PutUint32(kb[:4], uint32(k.IP))
	binary.BigEndian.PutUint16(kb[4:6], k.Port)
	bw.Write(kb[:])
}

func writeDeltaEntry(bw *bufio.Writer, de DeltaEntry) {
	writeDeltaKey(bw, de.Key)
	e := de.Entry
	writeUvarint(bw, uint64(e.Rec.Proto))
	writeUvarint(bw, uint64(e.Rec.ASN))
	writeUvarint(bw, uint64(e.Rec.TTL))
	writeUvarint(bw, uint64(e.FirstSeen))
	writeUvarint(bw, uint64(e.LastSeen))
	writeUvarint(bw, uint64(e.Stale))
}

// ReadDelta parses WriteDelta output. Errors are typed: *DeltaMagicError
// for foreign or wrong-version bytes, *DeltaTruncatedError for a stream
// cut short; other corruption (implausible counts, trailing bytes)
// returns a plain error.
func ReadDelta(r io.Reader) (*Delta, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(deltaMagic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, &DeltaTruncatedError{Section: "header", Entry: -1, Err: err}
	}
	if string(hdr[:len(deltaMagic)]) != deltaMagic {
		return nil, &DeltaMagicError{Found: string(hdr[:len(deltaMagic)])}
	}
	if hdr[len(deltaMagic)] != deltaVersion {
		return nil, &DeltaMagicError{Found: deltaMagic, Version: hdr[len(deltaMagic)]}
	}
	d := &Delta{}
	var err error
	if d.BaseEpoch, err = readDeltaVarint(br); err != nil {
		return nil, &DeltaTruncatedError{Section: "header", Entry: -1, Err: err}
	}
	if d.Epoch, err = readDeltaVarint(br); err != nil {
		return nil, &DeltaTruncatedError{Section: "header", Entry: -1, Err: err}
	}
	if d.Adds, err = readDeltaEntries(br, "add"); err != nil {
		return nil, err
	}
	if d.Updates, err = readDeltaEntries(br, "update"); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, &DeltaTruncatedError{Section: "remove", Entry: -1, Err: eofToUnexpected(err)}
	}
	if n > maxInventoryEntries {
		return nil, fmt.Errorf("shard: implausible delta remove count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		k, err := readDeltaKey(br)
		if err != nil {
			return nil, &DeltaTruncatedError{Section: "remove", Entry: int(i), Err: err}
		}
		d.Removes = append(d.Removes, k)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("shard: trailing data after delta %d→%d", d.BaseEpoch, d.Epoch)
	}
	return d, nil
}

func readDeltaEntries(br *bufio.Reader, section string) ([]DeltaEntry, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, &DeltaTruncatedError{Section: section, Entry: -1, Err: eofToUnexpected(err)}
	}
	if n > maxInventoryEntries {
		return nil, fmt.Errorf("shard: implausible delta %s count %d", section, n)
	}
	var out []DeltaEntry
	for i := uint64(0); i < n; i++ {
		k, err := readDeltaKey(br)
		if err != nil {
			return nil, &DeltaTruncatedError{Section: section, Entry: int(i), Err: err}
		}
		var vals [6]uint64
		for j := range vals {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, &DeltaTruncatedError{Section: section, Entry: int(i), Err: eofToUnexpected(err)}
			}
			vals[j] = v
		}
		out = append(out, DeltaEntry{
			Key: k,
			Entry: continuous.Entry{
				Rec: dataset.Record{
					IP: k.IP, Port: k.Port,
					Proto: features.Protocol(vals[0]),
					ASN:   asndb.ASN(vals[1]),
					TTL:   uint8(vals[2]),
				},
				FirstSeen: int(vals[3]),
				LastSeen:  int(vals[4]),
				Stale:     int(vals[5]),
			},
		})
	}
	return out, nil
}

func readDeltaKey(br *bufio.Reader) (netmodel.Key, error) {
	var kb [6]byte
	if _, err := io.ReadFull(br, kb[:]); err != nil {
		return netmodel.Key{}, eofToUnexpected(err)
	}
	return netmodel.Key{
		IP:   asndb.IP(binary.BigEndian.Uint32(kb[:4])),
		Port: binary.BigEndian.Uint16(kb[4:6]),
	}, nil
}

func readDeltaVarint(br *bufio.Reader) (int, error) {
	v, err := binary.ReadVarint(br)
	return int(v), eofToUnexpected(err)
}

// eofToUnexpected maps a clean EOF mid-structure to ErrUnexpectedEOF:
// inside a declared delta any end-of-stream is a truncation.
func eofToUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
