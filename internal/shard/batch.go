package shard

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"gps/internal/dataset"
	"gps/internal/netmodel"
	"gps/internal/pipeline"
)

// Merged is the single global view folded from per-shard pipeline results:
// one inventory, one anchor set, one discovery log, with the per-shard
// bandwidth both summed (total cost) and maxed (the bottleneck shard that
// sets wall-clock time in a real deployment).
type Merged struct {
	// Shards is how many partitions produced this view.
	Shards int
	// Results holds the per-shard results, indexed by shard.
	Results []*pipeline.Result

	// Found is the merged inventory: every service any shard discovered.
	Found map[netmodel.Key]bool
	// Anchors is the union of the shards' priors-scan anchors, sorted by
	// (IP, port).
	Anchors []dataset.Record
	// Discoveries is the union of the shards' discovery logs, sorted by
	// (IP, port); Probes inside each entry remains the *shard-local*
	// cumulative count at discovery time.
	Discoveries []pipeline.Discovery

	// SeedProbes is the seed collection cost under the broadcast-seed
	// workflow Run uses (every shard trains on the same seed snapshot, so
	// the cost is counted once as the max across shards). Callers who
	// instead trained each shard on a disjoint Partition slice should sum
	// their slices' CollectionProbes themselves — the merge cannot tell
	// the two workflows apart.
	SeedProbes uint64
	// PriorsProbes and PredictProbes sum the shards' scan bandwidth.
	PriorsProbes, PredictProbes uint64
	// MaxShardProbes is the bottleneck shard's scan bandwidth: total
	// wall-clock in a real deployment is set by this, not the sum.
	MaxShardProbes uint64
	// Middleboxes sums the responses LZR discarded across shards.
	Middleboxes int
	// Conflicts counts keys reported by more than one shard. Zero under
	// the hash split; non-zero means overlapping custom filters, and the
	// first (lowest-index) shard's observation won.
	Conflicts int
	// MergeTime is how long the cross-shard fold took.
	MergeTime time.Duration
}

// TotalScanProbes returns the summed priors + prediction bandwidth.
func (m *Merged) TotalScanProbes() uint64 { return m.PriorsProbes + m.PredictProbes }

// Run executes one batch GPS run partitioned over n shards: n independent
// pipeline.Run calls, each owning one hash partition of the address space
// with its own model, MPF, and 1/n slice of the probe budget, folded into
// one Merged view. The seed set is broadcast to every shard — the model
// computation is cheap and replicating it keeps every shard's predictions
// consistent with the unsharded run (each shard trains an identical model
// instance, as independent nodes would from a shared seed snapshot).
// n <= 1 degenerates to a plain unsharded run.
//
// With cfg.Budget == 0 the merged inventory is byte-identical to the
// unsharded run's. A finite budget is sliced 1/n per shard, and each
// shard cuts its scan where its own slice runs out rather than where the
// single global probe ordering would — the merged inventory then only
// approximates the budgeted unsharded run.
func Run(u *netmodel.Universe, seedSet *dataset.Dataset, cfg pipeline.Config, n int) (*Merged, error) {
	if n < 1 {
		n = 1
	}
	budgets := SliceBudget(cfg.Budget, n)
	results := make([]*pipeline.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scfg := cfg
			scfg.ShardIndex, scfg.ShardCount = i, n
			scfg.Budget = budgets[i]
			results[i], errs[i] = pipeline.Run(u, seedSet, scfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d/%d: %w", i, n, err)
		}
	}
	return MergeResults(results), nil
}

// MergeResults folds per-shard pipeline results into one global view.
// Shards are visited in index order, so conflict resolution (a key
// reported by more than one shard) deterministically keeps the
// lowest-index shard's observation.
func MergeResults(results []*pipeline.Result) *Merged {
	start := time.Now()
	m := &Merged{
		Shards:  len(results),
		Results: results,
		Found:   make(map[netmodel.Key]bool),
	}
	seenAnchor := make(map[netmodel.Key]bool)
	seenDisc := make(map[netmodel.Key]bool)
	for _, r := range results {
		if r.SeedProbes > m.SeedProbes {
			m.SeedProbes = r.SeedProbes
		}
		m.PriorsProbes += r.PriorsProbes
		m.PredictProbes += r.PredictProbes
		m.Middleboxes += r.Middleboxes
		if scan := r.TotalScanProbes(); scan > m.MaxShardProbes {
			m.MaxShardProbes = scan
		}
		for k := range r.Found {
			if m.Found[k] {
				m.Conflicts++
				continue
			}
			m.Found[k] = true
		}
		for _, a := range r.Anchors {
			if k := a.Key(); !seenAnchor[k] {
				seenAnchor[k] = true
				m.Anchors = append(m.Anchors, a)
			}
		}
		for _, d := range r.Discoveries {
			if !seenDisc[d.Key] {
				seenDisc[d.Key] = true
				m.Discoveries = append(m.Discoveries, d)
			}
		}
	}
	sort.Slice(m.Anchors, func(i, j int) bool { return keyLess(m.Anchors[i].Key(), m.Anchors[j].Key()) })
	sort.Slice(m.Discoveries, func(i, j int) bool { return keyLess(m.Discoveries[i].Key, m.Discoveries[j].Key) })
	m.MergeTime = time.Since(start)
	return m
}

func keyLess(a, b netmodel.Key) bool {
	if a.IP != b.IP {
		return a.IP < b.IP
	}
	return a.Port < b.Port
}

// inventoryMagic heads WriteInventory output.
const inventoryMagic = "GPSI"

// WriteInventory serializes the merged inventory canonically: the sorted
// (IP, port) key set, 6 bytes per key. Two runs that discovered the same
// services produce byte-identical output whatever the shard count — the
// determinism contract the shards experiment asserts.
func (m *Merged) WriteInventory(w io.Writer) error {
	keys := make([]netmodel.Key, 0, len(m.Found))
	for k := range m.Found {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	if _, err := io.WriteString(w, inventoryMagic); err != nil {
		return err
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(len(keys)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	for _, k := range keys {
		binary.BigEndian.PutUint32(buf[:4], uint32(k.IP))
		binary.BigEndian.PutUint16(buf[4:6], k.Port)
		if _, err := w.Write(buf[:6]); err != nil {
			return err
		}
	}
	return nil
}
