package shard

import (
	"fmt"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/netmodel"
)

// Re-balancing splits a checkpointed shard in two (or rejoins two halves)
// without rescanning anything, by exploiting a property of the hash split:
// ShardOf is h(ip) mod n, so an address owned by shard i under an n-way
// split is owned by either shard i or shard i+n under a 2n-way split
// (h = qn + i, and h mod 2n is i or i+n by the parity of q). Doubling the
// shard count therefore partitions each shard's inventory cleanly into
// two successor shards, and halving it is the exact inverse — no host
// ever migrates to a shard that did not descend from its old owner.

// SplitStates doubles the shard count: state i of an n-way split is
// partitioned into states i (the lower half) and i+n (the upper half) of
// a 2n-way split, by re-hashing each inventory entry under the doubled
// count. Entries are copied, so mutating the result does not corrupt the
// input. The parent's epoch history stays with the lower half — it
// describes epochs the shards ran as one — and the upper half starts with
// an empty history at the same epoch, so JoinStates can reverse the split
// byte-identically.
//
// An entry that hashes to neither successor is a foreign entry (the input
// was not a hash-split layout) and aborts the split: re-balancing such a
// state would silently strand the host in a partition nothing scans.
func SplitStates(states []*continuous.State) ([]*continuous.State, error) {
	n := len(states)
	if n == 0 {
		return nil, fmt.Errorf("shard: split of zero states")
	}
	out := make([]*continuous.State, 2*n)
	for i, st := range states {
		lo := &continuous.State{
			Epoch:   st.Epoch,
			Known:   make(map[netmodel.Key]*continuous.Entry),
			History: st.History,
		}
		hi := &continuous.State{
			Epoch: st.Epoch,
			Known: make(map[netmodel.Key]*continuous.Entry),
		}
		for k, e := range st.Known {
			cp := *e
			switch asndb.ShardOf(k.IP, 2*n) {
			case i:
				lo.Known[k] = &cp
			case i + n:
				hi.Known[k] = &cp
			default:
				return nil, fmt.Errorf(
					"shard: entry %v in shard %d/%d hashes to shard %d under the doubled layout; not a hash-split checkpoint",
					k, i, n, asndb.ShardOf(k.IP, 2*n))
			}
		}
		out[i], out[i+n] = lo, hi
	}
	return out, nil
}

// JoinStates halves the shard count, inverting SplitStates: states i and
// i+n/2 of an n-way split merge into state i of an n/2-way split. The
// halves must be at the same epoch (joining shards that ran different
// numbers of epochs has no consistent merged history), own only addresses
// that hash to the merged shard, and not both claim the same service —
// violations mean the input is not two halves of one hash-split layout.
// Histories concatenate lower-then-upper; after a pure split the upper
// history is empty, so split followed by join reproduces the input
// byte-for-byte.
func JoinStates(states []*continuous.State) ([]*continuous.State, error) {
	n := len(states)
	if n == 0 || n%2 != 0 {
		return nil, fmt.Errorf("shard: join needs an even shard count, got %d", n)
	}
	h := n / 2
	out := make([]*continuous.State, h)
	for i := 0; i < h; i++ {
		lo, hi := states[i], states[i+h]
		if lo.Epoch != hi.Epoch {
			return nil, fmt.Errorf("shard: joining shards %d (epoch %d) and %d (epoch %d): epochs differ",
				i, lo.Epoch, i+h, hi.Epoch)
		}
		m := &continuous.State{
			Epoch:   lo.Epoch,
			Known:   make(map[netmodel.Key]*continuous.Entry, len(lo.Known)+len(hi.Known)),
			History: append(lo.History[:len(lo.History):len(lo.History)], hi.History...),
		}
		for _, half := range []*continuous.State{lo, hi} {
			for k, e := range half.Known {
				if got := asndb.ShardOf(k.IP, h); got != i {
					return nil, fmt.Errorf(
						"shard: entry %v in shard %d/%d hashes to shard %d under the halved layout; not a hash-split checkpoint",
						k, i, n, got)
				}
				if _, dup := m.Known[k]; dup {
					return nil, fmt.Errorf("shard: shards %d and %d both track %v; halves overlap", i, i+h, k)
				}
				cp := *e
				m.Known[k] = &cp
			}
		}
		out[i] = m
	}
	return out, nil
}
