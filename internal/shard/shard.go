// Package shard partitions the GPS scan universe into N deterministic
// shards and merges their results back into one global view. The paper's
// systems claim (§5.5, Table 2) is that GPS's computation is embarrassingly
// parallel; this package supplies the horizontal analogue of that claim:
// the *scan* itself decomposes over an n-way hash split of the address
// space, because every phase of the pipeline is per-address — the priors
// scan probes addresses independently, and predictions always target the
// anchor's own IP (§5.4). Each shard therefore runs the full pipeline
// against only the addresses it owns, spending ~1/N of the bandwidth,
// and — under an unlimited probe budget — the union of the shards'
// inventories equals the unsharded run exactly. A finite budget weakens
// this to approximate: each shard stops at its own 1/N slice, which cuts
// the scan in different places than the single global ordering would.
//
// The split is a pure hash of the IP (asndb.ShardOf): stable across
// processes and churn, so checkpoints resume without hosts migrating
// between shards, and so re-sharding is an explicit operation rather than
// an accident of iteration order.
//
// Two coordinators are provided: Run fans one batch pipeline.Run out over
// N shards (the scale-out analogue of Table 2), and Coordinator drives N
// continuous runners epoch by epoch, each owning one partition of the
// inventory.
package shard

import (
	"gps/internal/asndb"
	"gps/internal/dataset"
)

// Filter selects one partition of an n-way hash split of the address
// space. The zero value owns everything.
type Filter struct {
	// Index identifies the owned partition, in [0, Count).
	Index int
	// Count is the total partition count; <= 1 disables sharding.
	Count int
}

// Enabled reports whether the filter restricts to a real partition.
func (f Filter) Enabled() bool { return f.Count > 1 }

// Owns reports whether ip belongs to this filter's partition.
func (f Filter) Owns(ip asndb.IP) bool {
	return asndb.ShardOwns(ip, f.Index, f.Count)
}

// Partition splits a dataset into n shard-local datasets by IP hash.
// Records keep their relative order inside each partition; the union of
// the partitions is the input. Each partition inherits the dataset's
// metadata, with CollectionProbes split exactly (the slices always sum
// to the input's — this is cost accounting for probes already spent, so
// unlike SliceBudget there is no minimum-one clamp).
func Partition(d *dataset.Dataset, n int) []*dataset.Dataset {
	if n < 1 {
		n = 1
	}
	each := d.CollectionProbes / uint64(n)
	rem := d.CollectionProbes % uint64(n)
	out := make([]*dataset.Dataset, n)
	for i := range out {
		probes := each
		if uint64(i) < rem {
			probes++
		}
		out[i] = &dataset.Dataset{
			Name:             d.Name,
			SpaceSize:        d.SpaceSize,
			SampleFraction:   d.SampleFraction,
			Ports:            d.Ports,
			CollectionProbes: probes,
		}
	}
	for _, r := range d.Records {
		s := asndb.ShardOf(r.IP, n)
		out[s].Records = append(out[s].Records, r)
	}
	return out
}

// SliceBudget splits a global probe budget into n per-shard slices that
// sum exactly to the total, with the remainder spread over the low shard
// indexes. A zero total (unlimited) yields unlimited slices. Exception:
// a nonzero total smaller than n is rounded up to one probe per shard —
// summing to n, oversubscribing the stated budget — because a zero slice
// would read as "unlimited" downstream, which is far worse.
func SliceBudget(total uint64, n int) []uint64 {
	if n < 1 {
		n = 1
	}
	out := make([]uint64, n)
	if total == 0 {
		return out
	}
	each := total / uint64(n)
	rem := total % uint64(n)
	for i := range out {
		out[i] = each
		if uint64(i) < rem {
			out[i]++
		}
		if out[i] == 0 {
			// A tiny budget must still be a budget: a zero slice would
			// read as "unlimited" downstream.
			out[i] = 1
		}
	}
	return out
}
