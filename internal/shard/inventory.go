package shard

import (
	"bufio"
	"encoding/binary"
	"io"
	"sort"

	"gps/internal/continuous"
	"gps/internal/netmodel"
)

// stateInventoryMagic heads WriteInventory output. (The batch pipeline's
// key-set dump under "GPSI" lives in batch.go; this format additionally
// carries the per-entry observation history a continuous inventory holds.)
const stateInventoryMagic = "GPSV"

// WriteInventory serializes a merged continuous inventory canonically:
// the sorted (IP, port) key set, each key followed by its entry's
// FirstSeen/LastSeen/Stale counters. Two coordinators that tracked the
// same services through the same epochs produce byte-identical output
// whatever their shard layout or transport — the determinism contract the
// distributed CI gate diffs.
func WriteInventory(w io.Writer, inv map[netmodel.Key]*continuous.Entry) error {
	keys := make([]netmodel.Key, 0, len(inv))
	for k := range inv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	bw := bufio.NewWriter(w)
	bw.WriteString(stateInventoryMagic)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(keys)))
	bw.Write(hdr[:])
	for _, k := range keys {
		var kb [6]byte
		binary.BigEndian.PutUint32(kb[:4], uint32(k.IP))
		binary.BigEndian.PutUint16(kb[4:6], k.Port)
		bw.Write(kb[:])
		e := inv[k]
		writeUvarint(bw, uint64(e.FirstSeen))
		writeUvarint(bw, uint64(e.LastSeen))
		writeUvarint(bw, uint64(e.Stale))
	}
	return bw.Flush()
}
