package shard

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// Inventory format ("GPSV", version 2):
//
//	magic "GPSV" | version u8
//	entry count u64 big-endian
//	per entry, sorted by (IP, port):
//	  IP u32 | port u16 (big-endian)
//	  proto, asn, ttl uvarints
//	  firstSeen, lastSeen, stale uvarints
//
// Version 1 had no version byte and carried only the observation
// counters; version 2 adds the record fields the serving layer indexes on
// (protocol, ASN, TTL), so a GPSV file is a self-contained serving
// artifact — gpsd -serve-file answers /v1/asn queries from it without the
// checkpoint. Application-layer features stay in checkpoints only.
//
// (The batch pipeline's key-set dump under "GPSI" lives in batch.go.)
const (
	stateInventoryMagic   = "GPSV"
	stateInventoryVersion = 2
	// maxInventoryEntries bounds the entry count a file may declare,
	// mirroring the implausibility guards of the checkpoint readers.
	maxInventoryEntries = 1 << 28
)

// InventoryMagicError reports bytes that are not a GPSV inventory at all,
// or a GPSV version this reader does not speak.
type InventoryMagicError struct {
	// Found is the magic encountered; Version is the declared version
	// when the magic matched (0 otherwise).
	Found   string
	Version uint8
}

func (e *InventoryMagicError) Error() string {
	if e.Found != stateInventoryMagic {
		return fmt.Sprintf("shard: bad inventory magic %q, want %q", e.Found, stateInventoryMagic)
	}
	return fmt.Sprintf("shard: unsupported inventory version %d, want %d (version-1 files predate the serving fields and must be rewritten)",
		e.Version, stateInventoryVersion)
}

// InventoryTruncatedError reports an inventory cut short mid-stream: the
// header or an entry ended before its declared size was read.
type InventoryTruncatedError struct {
	// Entry is the 0-based index of the entry being decoded, or -1 when
	// the header itself was short.
	Entry int
	Err   error
}

func (e *InventoryTruncatedError) Error() string {
	if e.Entry < 0 {
		return fmt.Sprintf("shard: truncated inventory header: %v", e.Err)
	}
	return fmt.Sprintf("shard: truncated inventory at entry %d: %v", e.Entry, e.Err)
}

func (e *InventoryTruncatedError) Unwrap() error { return e.Err }

// WriteInventory serializes a merged continuous inventory canonically:
// the sorted (IP, port) key set, each key followed by its entry's record
// fields and FirstSeen/LastSeen/Stale counters. Two coordinators that
// tracked the same services through the same epochs produce
// byte-identical output whatever their shard layout or transport — the
// determinism contract the distributed CI gate diffs.
func WriteInventory(w io.Writer, inv map[netmodel.Key]*continuous.Entry) error {
	keys := make([]netmodel.Key, 0, len(inv))
	for k := range inv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	bw := bufio.NewWriter(w)
	bw.WriteString(stateInventoryMagic)
	bw.WriteByte(stateInventoryVersion)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(keys)))
	bw.Write(hdr[:])
	for _, k := range keys {
		var kb [6]byte
		binary.BigEndian.PutUint32(kb[:4], uint32(k.IP))
		binary.BigEndian.PutUint16(kb[4:6], k.Port)
		bw.Write(kb[:])
		e := inv[k]
		writeUvarint(bw, uint64(e.Rec.Proto))
		writeUvarint(bw, uint64(e.Rec.ASN))
		writeUvarint(bw, uint64(e.Rec.TTL))
		writeUvarint(bw, uint64(e.FirstSeen))
		writeUvarint(bw, uint64(e.LastSeen))
		writeUvarint(bw, uint64(e.Stale))
	}
	return bw.Flush()
}

// ReadInventory parses WriteInventory output back into a merged
// inventory. The reconstructed entries carry the key, the serving fields
// (protocol, ASN, TTL), and the observation counters; application-layer
// features are not part of the format and come back empty. Errors are
// typed: *InventoryMagicError for foreign or wrong-version bytes,
// *InventoryTruncatedError for a stream cut short; other corruption (an
// implausible entry count, trailing bytes) returns a plain error.
func ReadInventory(r io.Reader) (map[netmodel.Key]*continuous.Entry, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+1+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, &InventoryTruncatedError{Entry: -1, Err: err}
	}
	if string(hdr[:4]) != stateInventoryMagic {
		return nil, &InventoryMagicError{Found: string(hdr[:4])}
	}
	if hdr[4] != stateInventoryVersion {
		return nil, &InventoryMagicError{Found: stateInventoryMagic, Version: hdr[4]}
	}
	n := binary.BigEndian.Uint64(hdr[5:])
	if n > maxInventoryEntries {
		return nil, fmt.Errorf("shard: implausible inventory entry count %d", n)
	}

	// The capacity hint trusts the header only up to a point: a crafted
	// 13-byte file may declare any count under the cap, and the bytes
	// backing real entries are only proven to exist as the loop reads
	// them — so a short file must fail with a truncation error, not an
	// up-front multi-gigabyte allocation.
	hint := n
	if hint > 1<<20 {
		hint = 1 << 20
	}
	inv := make(map[netmodel.Key]*continuous.Entry, hint)
	var kb [6]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, kb[:]); err != nil {
			return nil, &InventoryTruncatedError{Entry: int(i), Err: err}
		}
		k := netmodel.Key{
			IP:   asndb.IP(binary.BigEndian.Uint32(kb[:4])),
			Port: binary.BigEndian.Uint16(kb[4:6]),
		}
		var vals [6]uint64
		for j := range vals {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = io.ErrUnexpectedEOF
				}
				return nil, &InventoryTruncatedError{Entry: int(i), Err: err}
			}
			vals[j] = v
		}
		inv[k] = &continuous.Entry{
			Rec: dataset.Record{
				IP: k.IP, Port: k.Port,
				Proto: features.Protocol(vals[0]),
				ASN:   asndb.ASN(vals[1]),
				TTL:   uint8(vals[2]),
			},
			FirstSeen: int(vals[3]),
			LastSeen:  int(vals[4]),
			Stale:     int(vals[5]),
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("shard: trailing data after %d inventory entries", n)
	}
	return inv, nil
}
