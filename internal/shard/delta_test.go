package shard

import (
	"bytes"
	"errors"
	"testing"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// invBytes is the equality the replication path is judged on: the
// canonical GPSV serialization. Two inventories that agree on every
// serving field produce identical bytes.
func invBytes(t *testing.T, inv map[netmodel.Key]*continuous.Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteInventory(&buf, inv); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeltaProperty pins the delta contract across a real multi-epoch
// churn run: for every consecutive pair of committed inventories,
// apply(delta(A, B), A) == B byte-for-byte under GPSV, and chaining all
// deltas from the seeded inventory reconstructs the final epoch exactly.
func TestDeltaProperty(t *testing.T) {
	u, seedSet := testWorld(t, 29)
	c := NewCoordinator(seedSet, coordConfig(3))

	var views []map[netmodel.Key]*continuous.Entry
	seeded, _ := c.Inventory()
	views = append(views, seeded)
	c.SetCommitHook(func(epoch int, inv map[netmodel.Key]*continuous.Entry) {
		views = append(views, inv)
	})

	world := u
	for e := 1; e <= 4; e++ {
		world = netmodel.Churn(world, netmodel.DefaultChurn(300+int64(e)))
		if _, err := c.Epoch(world); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	if len(views) != 5 {
		t.Fatalf("captured %d inventory views; want 5", len(views))
	}

	// Pairwise: each delta advances its base to its target exactly.
	chain := CloneInventory(views[0])
	var sawChanges bool
	for e := 1; e < len(views); e++ {
		d := ComputeDelta(views[e-1], views[e], e-1, e)
		if d.BaseEpoch != e-1 || d.Epoch != e {
			t.Fatalf("delta epochs %d→%d; want %d→%d", d.BaseEpoch, d.Epoch, e-1, e)
		}
		if d.Size() > 0 {
			sawChanges = true
		}
		applied := CloneInventory(views[e-1])
		if err := ApplyDelta(applied, d); err != nil {
			t.Fatalf("apply %d→%d: %v", e-1, e, err)
		}
		if !bytes.Equal(invBytes(t, applied), invBytes(t, views[e])) {
			t.Fatalf("apply(delta(%d,%d)) diverges from the committed epoch %d inventory", e-1, e, e)
		}
		// The chained replica view advances through the same delta.
		if err := ApplyDelta(chain, d); err != nil {
			t.Fatalf("chain apply %d→%d: %v", e-1, e, err)
		}
	}
	if !sawChanges {
		t.Fatal("churn run produced no delta changes; property test is vacuous")
	}
	if !bytes.Equal(invBytes(t, chain), invBytes(t, views[len(views)-1])) {
		t.Fatal("chained deltas from the seed diverge from the final inventory")
	}

	// An empty diff is representable and a no-op.
	empty := ComputeDelta(views[1], views[1], 1, 1)
	if empty.Size() != 0 {
		t.Fatalf("self-delta carries %d changes", empty.Size())
	}
	if err := ApplyDelta(CloneInventory(views[1]), empty); err != nil {
		t.Fatalf("applying an empty delta: %v", err)
	}
}

// TestDeltaIgnoresFeatures pins that application-layer features — which
// the GPSV format drops — never produce delta traffic: a replica
// bootstrapped from GPSV (feature-less) must see empty deltas when only
// features changed upstream.
func TestDeltaIgnoresFeatures(t *testing.T) {
	k := netmodel.Key{IP: asndb.MustParseIP("10.0.0.1"), Port: 443}
	base := map[netmodel.Key]*continuous.Entry{k: {
		Rec:       dataset.Record{IP: k.IP, Port: 443, Proto: features.ProtocolTLS, ASN: 64500, TTL: 64},
		FirstSeen: 1, LastSeen: 3,
	}}
	next := CloneInventory(base)
	next[k].Rec.Feats = features.Set{features.KeyProtocol: "https"}
	if d := ComputeDelta(base, next, 1, 2); d.Size() != 0 {
		t.Fatalf("feature-only change produced %d delta entries; want 0", d.Size())
	}
}

func TestApplyDeltaBaseMismatch(t *testing.T) {
	k := netmodel.Key{IP: asndb.MustParseIP("10.0.0.1"), Port: 80}
	k2 := netmodel.Key{IP: asndb.MustParseIP("10.0.0.2"), Port: 80}
	entry := func() *continuous.Entry {
		return &continuous.Entry{Rec: dataset.Record{IP: k.IP, Port: 80}, LastSeen: 1}
	}
	have := map[netmodel.Key]*continuous.Entry{k: entry()}

	add := &Delta{Adds: []DeltaEntry{{Key: k, Entry: *entry()}}}
	if err := ApplyDelta(CloneInventory(have), add); err == nil {
		t.Error("adding an existing key succeeded; want a base-mismatch error")
	}
	upd := &Delta{Updates: []DeltaEntry{{Key: k2, Entry: *entry()}}}
	if err := ApplyDelta(CloneInventory(have), upd); err == nil {
		t.Error("updating a missing key succeeded; want a base-mismatch error")
	}
	rm := &Delta{Removes: []netmodel.Key{k2}}
	if err := ApplyDelta(CloneInventory(have), rm); err == nil {
		t.Error("removing a missing key succeeded; want a base-mismatch error")
	}
}

// TestCloneInventory pins that clones share nothing with the original:
// the replica applies deltas to a clone while the feed retains the
// as-committed view, so aliasing would corrupt the feed's base.
func TestCloneInventory(t *testing.T) {
	k := netmodel.Key{IP: asndb.MustParseIP("10.0.0.1"), Port: 22}
	orig := map[netmodel.Key]*continuous.Entry{k: {LastSeen: 5}}
	cp := CloneInventory(orig)
	cp[k].LastSeen = 9
	cp[netmodel.Key{IP: k.IP, Port: 23}] = &continuous.Entry{}
	if orig[k].LastSeen != 5 || len(orig) != 1 {
		t.Error("mutating the clone reached the original inventory")
	}
}

// TestDeltaWireRoundTrip pins the GPSE write→read contract and its
// canonical-bytes property, mirroring the GPSV round trip.
func TestDeltaWireRoundTrip(t *testing.T) {
	states := rebalanceStates(t, 2)
	inv, _ := MergeInventories(states)
	next := CloneInventory(inv)
	// Manufacture all three change kinds against a real inventory.
	var removed, updated netmodel.Key
	i := 0
	for k := range next {
		switch i {
		case 0:
			removed = k
			delete(next, k)
		case 1:
			updated = k
			next[k].LastSeen += 3
			next[k].Stale = 0
		}
		i++
		if i > 1 {
			break
		}
	}
	addKey := netmodel.Key{IP: asndb.MustParseIP("203.0.113.9"), Port: 8443}
	next[addKey] = &continuous.Entry{
		Rec:       dataset.Record{IP: addKey.IP, Port: addKey.Port, Proto: features.ProtocolTLS, ASN: 64499, TTL: 57},
		FirstSeen: 2, LastSeen: 6, Stale: 1,
	}

	d := ComputeDelta(inv, next, 4, 5)
	if len(d.Adds) != 1 || len(d.Updates) != 1 || len(d.Removes) != 1 {
		t.Fatalf("delta shape adds=%d updates=%d removes=%d; want 1/1/1",
			len(d.Adds), len(d.Updates), len(d.Removes))
	}
	if d.Adds[0].Key != addKey || d.Updates[0].Key != updated || d.Removes[0] != removed {
		t.Fatal("delta attributed changes to the wrong keys")
	}

	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	got, err := ReadDelta(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseEpoch != 4 || got.Epoch != 5 {
		t.Fatalf("round trip epochs %d→%d; want 4→5", got.BaseEpoch, got.Epoch)
	}
	// Applying the parsed delta must land exactly where the original does.
	applied := CloneInventory(inv)
	if err := ApplyDelta(applied, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(invBytes(t, applied), invBytes(t, next)) {
		t.Fatal("parsed delta applies differently than the computed one")
	}

	var again bytes.Buffer
	if err := WriteDelta(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, again.Bytes()) {
		t.Error("re-serializing the parsed delta changed the bytes")
	}

	// Negative base epochs (the bootstrap sentinel) must survive the wire.
	neg := &Delta{BaseEpoch: -1, Epoch: 0}
	buf.Reset()
	if err := WriteDelta(&buf, neg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDelta(&buf)
	if err != nil || back.BaseEpoch != -1 || back.Epoch != 0 {
		t.Fatalf("negative-epoch round trip: %+v, %v", back, err)
	}
}

// TestReadDeltaTypedErrors mirrors the GPSV reader's error contract:
// foreign magic and unknown versions are *DeltaMagicError, every
// truncation point is *DeltaTruncatedError, trailing bytes are refused.
func TestReadDeltaTypedErrors(t *testing.T) {
	mk := func(i int) netmodel.Key {
		return netmodel.Key{IP: asndb.IP(0x0a000001 + uint32(i)), Port: 443}
	}
	ent := func(i int) continuous.Entry {
		return continuous.Entry{
			Rec:       dataset.Record{IP: mk(i).IP, Port: 443, Proto: features.ProtocolTLS, ASN: 64500, TTL: 64},
			FirstSeen: 1, LastSeen: 2 + i, Stale: i % 2,
		}
	}
	d := &Delta{
		BaseEpoch: 3, Epoch: 4,
		Adds:    []DeltaEntry{{Key: mk(0), Entry: ent(0)}, {Key: mk(1), Entry: ent(1)}},
		Updates: []DeltaEntry{{Key: mk(2), Entry: ent(2)}},
		Removes: []netmodel.Key{mk(3)},
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	var magicErr *DeltaMagicError
	if _, err := ReadDelta(bytes.NewReader([]byte("GPSXxxxxxxxx"))); !errors.As(err, &magicErr) || magicErr.Found != "GPSX" {
		t.Errorf("foreign magic: %v; want *DeltaMagicError{Found: GPSX}", err)
	}
	future := append([]byte(deltaMagic), 99, 0, 0)
	if _, err := ReadDelta(bytes.NewReader(future)); !errors.As(err, &magicErr) || magicErr.Version != 99 {
		t.Errorf("future version: %v; want *DeltaMagicError{Version: 99}", err)
	}

	for cut := 0; cut < len(wire); cut++ {
		_, err := ReadDelta(bytes.NewReader(wire[:cut]))
		var truncErr *DeltaTruncatedError
		if cut >= len(deltaMagic) {
			if !errors.As(err, &truncErr) {
				t.Fatalf("cut at %d: %v; want *DeltaTruncatedError", cut, err)
			}
			continue
		}
		// Inside the magic a cut is still a (header) truncation.
		if !errors.As(err, &truncErr) || truncErr.Section != "header" {
			t.Fatalf("cut at %d: %v; want header truncation", cut, err)
		}
	}

	if _, err := ReadDelta(bytes.NewReader(append(append([]byte{}, wire...), 0xFF))); err == nil {
		t.Error("trailing data accepted")
	}
}
