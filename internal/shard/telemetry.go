package shard

import (
	"strconv"
	"time"

	"gps/internal/telemetry"
)

// coordTelemetry holds the coordinator's pre-registered handles. The
// per-shard epoch-latency histogram and its EWMA are the load signal
// elastic shard membership (ROADMAP) will key off: a shard whose
// smoothed epoch latency drifts above its peers is the one to split or
// move.
type coordTelemetry struct {
	epochs   *telemetry.Counter
	epoch    *telemetry.Gauge
	shardLat []*telemetry.Histogram
	shardEw  []*telemetry.EWMA
}

// ewmaAlpha smooths per-shard epoch latency: ~0.3 weights the last few
// epochs without whiplashing on one slow scan.
const ewmaAlpha = 0.3

func newCoordTelemetry(shards int) *coordTelemetry {
	r := telemetry.Default
	t := &coordTelemetry{
		epochs: r.Counter("gps_coordinator_epochs_total",
			"coordinator epochs committed across all shards"),
		epoch: r.Gauge("gps_coordinator_epoch",
			"last committed coordinator epoch"),
		shardLat: make([]*telemetry.Histogram, shards),
		shardEw:  make([]*telemetry.EWMA, shards),
	}
	for i := range t.shardLat {
		shard := strconv.Itoa(i)
		t.shardLat[i] = r.Histogram("gps_shard_epoch_seconds",
			"wall-clock time of one shard's epoch",
			nil, "shard", shard)
		t.shardEw[i] = r.EWMA("gps_shard_epoch_ewma_seconds",
			"exponentially smoothed shard epoch latency (membership signal)",
			ewmaAlpha, "shard", shard)
	}
	return t
}

// observeShard records one shard's epoch wall time.
func (t *coordTelemetry) observeShard(i int, d time.Duration) {
	t.shardLat[i].Observe(d.Seconds())
	t.shardEw[i].Update(d.Seconds())
}

// commit records a completed coordinator epoch.
func (t *coordTelemetry) commit(epoch int) {
	t.epochs.Inc()
	t.epoch.Set(float64(epoch))
}
