package shard

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// fuzzEntry builds a serving-field entry for key k, the only fields the
// GPSV and GPSE formats carry.
func fuzzEntry(k netmodel.Key, proto features.Protocol, asn asndb.ASN, ttl uint8, first, last, stale int) *continuous.Entry {
	return &continuous.Entry{
		Rec: dataset.Record{
			IP: k.IP, Port: k.Port,
			Proto: proto, ASN: asn, TTL: ttl,
		},
		FirstSeen: first, LastSeen: last, Stale: stale,
	}
}

// fuzzBaseInventory is the fixed base every FuzzApplyDelta input is
// applied against.
func fuzzBaseInventory() map[netmodel.Key]*continuous.Entry {
	inv := make(map[netmodel.Key]*continuous.Entry)
	for i, port := range []uint16{22, 443, 8080} {
		k := netmodel.Key{IP: asndb.IP(0x0a000001 + uint32(i)), Port: port}
		inv[k] = fuzzEntry(k, features.Protocol(i+1), asndb.ASN(64500+i), uint8(60+i), 1, 4, i)
	}
	return inv
}

// typedShardError accepts the documented decode failure modes of the
// GPSV/GPSE readers: the typed magic and truncation errors, plus the
// descriptive "shard:" corruption errors (implausible counts, trailing
// bytes). Anything else is an undocumented failure.
func typedShardError(err error) bool {
	var im *InventoryMagicError
	var it *InventoryTruncatedError
	var dm *DeltaMagicError
	var dt *DeltaTruncatedError
	return errors.As(err, &im) || errors.As(err, &it) ||
		errors.As(err, &dm) || errors.As(err, &dt) ||
		strings.HasPrefix(err.Error(), "shard:")
}

// FuzzReadInventory drives arbitrary bytes through the GPSV reader. No
// input may panic; failures must be the documented typed errors; and an
// accepted inventory must survive a canonical write/read round trip.
func FuzzReadInventory(f *testing.F) {
	base := fuzzBaseInventory()
	var ok bytes.Buffer
	if err := WriteInventory(&ok, base); err != nil {
		f.Fatalf("seeding inventory: %v", err)
	}
	var empty bytes.Buffer
	if err := WriteInventory(&empty, nil); err != nil {
		f.Fatalf("seeding empty inventory: %v", err)
	}
	f.Add(ok.Bytes())
	f.Add(empty.Bytes())
	f.Add(ok.Bytes()[:7])          // cut mid-header
	f.Add([]byte("GPSX\x02junk"))  // foreign magic
	f.Add(append(ok.Bytes(), 0x0)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		inv, err := ReadInventory(bytes.NewReader(data))
		if err != nil {
			if !typedShardError(err) {
				t.Fatalf("ReadInventory: untyped error %T: %v", err, err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteInventory(&buf, inv); err != nil {
			t.Fatalf("re-encoding accepted inventory: %v", err)
		}
		inv2, err := ReadInventory(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading canonical bytes: %v", err)
		}
		diffInventories(t, inv, inv2)
	})
}

// FuzzApplyDelta drives arbitrary bytes through the GPSE reader and the
// delta application path. An accepted, applicable delta must agree with
// the canonical delta recomputed from its own effect: applying
// ComputeDelta(base, applied) to a fresh clone reproduces the same
// inventory.
func FuzzApplyDelta(f *testing.F) {
	base := fuzzBaseInventory()
	next := CloneInventory(base)
	addKey := netmodel.Key{IP: asndb.IP(0x0a0000ff), Port: 9000}
	next[addKey] = fuzzEntry(addKey, 2, 64999, 55, 3, 5, 0)
	for k := range base {
		if k.Port == 22 {
			delete(next, k)
		} else if k.Port == 443 {
			next[k].Stale++
		}
	}
	var ok bytes.Buffer
	if err := WriteDelta(&ok, ComputeDelta(base, next, 4, 5)); err != nil {
		f.Fatalf("seeding delta: %v", err)
	}
	var empty bytes.Buffer
	if err := WriteDelta(&empty, ComputeDelta(base, base, 5, 6)); err != nil {
		f.Fatalf("seeding empty delta: %v", err)
	}
	f.Add(ok.Bytes())
	f.Add(empty.Bytes())
	f.Add(ok.Bytes()[:6])         // cut mid-header
	f.Add([]byte("GPSX\x01junk")) // foreign magic

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDelta(bytes.NewReader(data))
		if err != nil {
			if !typedShardError(err) {
				t.Fatalf("ReadDelta: untyped error %T: %v", err, err)
			}
			return
		}
		applied := CloneInventory(base)
		if err := ApplyDelta(applied, d); err != nil {
			// A structurally valid delta against the wrong base: the
			// documented mismatch error, with no panic.
			if !typedShardError(err) {
				t.Fatalf("ApplyDelta: untyped error %T: %v", err, err)
			}
			return
		}
		canonical := ComputeDelta(base, applied, d.BaseEpoch, d.Epoch)
		replay := CloneInventory(base)
		if err := ApplyDelta(replay, canonical); err != nil {
			t.Fatalf("replaying canonical delta: %v", err)
		}
		diffInventories(t, applied, replay)
	})
}

// diffInventories fails the test unless a and b agree on the
// serving-visible fields of every key.
func diffInventories(t *testing.T, a, b map[netmodel.Key]*continuous.Entry) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("inventories diverge: %d entries vs %d", len(a), len(b))
	}
	for k, ea := range a {
		eb, ok := b[k]
		if !ok {
			t.Fatalf("inventories diverge: %v missing", k)
		}
		if !servedEqual(ea, eb) {
			t.Fatalf("inventories diverge at %v: %+v vs %+v", k, ea, eb)
		}
	}
}
