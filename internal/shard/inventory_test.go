package shard

import (
	"bytes"
	"errors"
	"testing"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// TestInventoryRoundTrip pins the write→read contract: everything the
// GPSV format carries (key, proto, ASN, TTL, observation counters) comes
// back exactly, and re-serializing the parsed inventory reproduces the
// input bytes — so a served file is as authoritative as the run that
// wrote it.
func TestInventoryRoundTrip(t *testing.T) {
	states := rebalanceStates(t, 2)
	inv, _ := MergeInventories(states)
	if len(inv) == 0 {
		t.Fatal("empty test inventory")
	}

	var buf bytes.Buffer
	if err := WriteInventory(&buf, inv); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	got, err := ReadInventory(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inv) {
		t.Fatalf("round trip returned %d entries; want %d", len(got), len(inv))
	}
	for k, e := range inv {
		g, ok := got[k]
		if !ok {
			t.Fatalf("round trip lost %v", k)
		}
		if g.FirstSeen != e.FirstSeen || g.LastSeen != e.LastSeen || g.Stale != e.Stale {
			t.Errorf("%v counters: got %d/%d/%d, want %d/%d/%d",
				k, g.FirstSeen, g.LastSeen, g.Stale, e.FirstSeen, e.LastSeen, e.Stale)
		}
		if g.Rec.IP != k.IP || g.Rec.Port != k.Port ||
			g.Rec.Proto != e.Rec.Proto || g.Rec.ASN != e.Rec.ASN || g.Rec.TTL != e.Rec.TTL {
			t.Errorf("%v serving fields: got %v/%v/%d, want %v/%v/%d",
				k, g.Rec.Proto, g.Rec.ASN, g.Rec.TTL, e.Rec.Proto, e.Rec.ASN, e.Rec.TTL)
		}
	}

	var again bytes.Buffer
	if err := WriteInventory(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, again.Bytes()) {
		t.Error("re-serializing the parsed inventory changed the bytes")
	}
}

func TestReadInventoryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInventory(&buf, nil); err != nil {
		t.Fatal(err)
	}
	inv, err := ReadInventory(&buf)
	if err != nil || len(inv) != 0 {
		t.Fatalf("empty inventory round trip: %d entries, %v", len(inv), err)
	}
}

func TestReadInventoryTypedErrors(t *testing.T) {
	// A small hand-built inventory: the truncation sweep below parses a
	// prefix of the wire for every cut point, so the file must stay tiny
	// for the test to stay O(bytes²)-cheap.
	inv := make(map[netmodel.Key]*continuous.Entry)
	for i := 0; i < 4; i++ {
		ip := asndb.IP(0x0a000001 + uint32(i))
		inv[netmodel.Key{IP: ip, Port: 443}] = &continuous.Entry{
			Rec:       dataset.Record{IP: ip, Port: 443, Proto: features.ProtocolTLS, ASN: 64500, TTL: 64},
			FirstSeen: 1, LastSeen: 2 + i, Stale: i % 2,
		}
	}
	var buf bytes.Buffer
	if err := WriteInventory(&buf, inv); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	// Foreign bytes: a magic error naming what was found.
	var magicErr *InventoryMagicError
	_, err := ReadInventory(bytes.NewReader([]byte("GPSXxxxxxxxxxxxx")))
	if !errors.As(err, &magicErr) || magicErr.Found != "GPSX" {
		t.Errorf("foreign magic: %v; want *InventoryMagicError{Found: GPSX}", err)
	}

	// A version-1 file (no version byte: the count's high 0x00 byte lands
	// where the version lives) must fail loudly, not misparse.
	v1 := append([]byte(stateInventoryMagic), make([]byte, 9)...)
	_, err = ReadInventory(bytes.NewReader(v1))
	if !errors.As(err, &magicErr) || magicErr.Found != stateInventoryMagic || magicErr.Version == stateInventoryVersion {
		t.Errorf("version-1 bytes: %v; want a version mismatch", err)
	}

	// Every possible truncation point yields a typed truncation error
	// (never a silent short inventory, never a panic).
	for cut := 0; cut < len(wire); cut++ {
		_, err := ReadInventory(bytes.NewReader(wire[:cut]))
		var truncErr *InventoryTruncatedError
		if cut < 5+8 {
			if !errors.As(err, &truncErr) || truncErr.Entry != -1 {
				t.Fatalf("cut at %d: %v; want header truncation", cut, err)
			}
			continue
		}
		if !errors.As(err, &truncErr) {
			t.Fatalf("cut at %d: %v; want *InventoryTruncatedError", cut, err)
		}
		if truncErr.Entry < 0 || truncErr.Entry >= len(inv) {
			t.Fatalf("cut at %d: entry index %d out of range", cut, truncErr.Entry)
		}
	}

	// Trailing garbage after the declared entries is corruption too.
	_, err = ReadInventory(bytes.NewReader(append(append([]byte{}, wire...), 0xFF)))
	if err == nil {
		t.Error("trailing data accepted")
	}
}
