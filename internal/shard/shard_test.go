package shard

import (
	"bytes"
	"testing"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/netmodel"
	"gps/internal/pipeline"
)

// testWorld builds a small universe plus a filtered seed split.
func testWorld(t testing.TB, seed int64) (*netmodel.Universe, *dataset.Dataset) {
	t.Helper()
	u := netmodel.Generate(netmodel.TestParams(seed))
	full := dataset.SnapshotLZR(u, 0.3, seed^0x11)
	seedSet, _ := full.Split(0.04, seed^0x22)
	eligible := seedSet.EligiblePorts(2)
	return u, seedSet.FilterPorts(eligible)
}

func TestFilterOwns(t *testing.T) {
	var zero Filter
	if zero.Enabled() {
		t.Error("zero filter enabled")
	}
	if !zero.Owns(asndb.MustParseIP("10.0.0.1")) {
		t.Error("zero filter must own everything")
	}
	const n = 4
	ip := asndb.MustParseIP("10.0.0.1")
	owners := 0
	for i := 0; i < n; i++ {
		if (Filter{Index: i, Count: n}).Owns(ip) {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("%d shards own %v; want exactly 1", owners, ip)
	}
}

func TestPartitionDisjointUnion(t *testing.T) {
	_, seedSet := testWorld(t, 5)
	const n = 4
	parts := Partition(seedSet, n)
	if len(parts) != n {
		t.Fatalf("got %d partitions; want %d", len(parts), n)
	}
	total := 0
	var probes uint64
	for i, p := range parts {
		total += p.NumServices()
		probes += p.CollectionProbes
		for _, r := range p.Records {
			if asndb.ShardOf(r.IP, n) != i {
				t.Errorf("partition %d holds %v owned by shard %d", i, r.Key(), asndb.ShardOf(r.IP, n))
			}
		}
	}
	if total != seedSet.NumServices() {
		t.Errorf("partitions hold %d records; input had %d", total, seedSet.NumServices())
	}
	if probes != seedSet.CollectionProbes {
		t.Errorf("partition collection probes sum to %d; want %d", probes, seedSet.CollectionProbes)
	}
}

func TestSliceBudget(t *testing.T) {
	slices := SliceBudget(103, 4)
	var sum uint64
	for _, s := range slices {
		if s == 0 {
			t.Error("zero slice would read as unlimited")
		}
		sum += s
	}
	if sum != 103 {
		t.Errorf("slices sum to %d; want 103", sum)
	}
	for _, s := range SliceBudget(0, 4) {
		if s != 0 {
			t.Errorf("unlimited budget sliced to %d; want 0 (unlimited)", s)
		}
	}
	// A budget smaller than the shard count still gives every shard a
	// minimal budget rather than an accidental unlimited one.
	for _, s := range SliceBudget(2, 4) {
		if s != 1 {
			t.Errorf("tiny budget slice = %d; want 1", s)
		}
	}
}

// TestMergedInventoryByteIdentical is the determinism contract of the
// whole subsystem: partitioning the scan across N shards and merging must
// reproduce the 1-shard run's inventory byte for byte. It holds because
// the split is per-address, predictions never cross hosts, and every
// shard trains on the same broadcast seed.
func TestMergedInventoryByteIdentical(t *testing.T) {
	u, seedSet := testWorld(t, 7)
	cfg := pipeline.Config{Seed: 7}

	single, err := Run(u, seedSet, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Found) == 0 {
		t.Fatal("1-shard run discovered nothing; test world too small")
	}
	var want bytes.Buffer
	if err := single.WriteInventory(&want); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 4, 8} {
		merged, err := Run(u, seedSet, cfg, n)
		if err != nil {
			t.Fatalf("%d shards: %v", n, err)
		}
		if merged.Conflicts != 0 {
			t.Errorf("%d shards: %d conflicts; hash split must be disjoint", n, merged.Conflicts)
		}
		var got bytes.Buffer
		if err := merged.WriteInventory(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%d-shard merged inventory differs from the 1-shard run (%d vs %d services)",
				n, len(merged.Found), len(single.Found))
		}
		if len(merged.Anchors) != len(single.Anchors) {
			t.Errorf("%d shards: %d anchors; want %d", n, len(merged.Anchors), len(single.Anchors))
		}
		for i := range merged.Anchors {
			if merged.Anchors[i].Key() != single.Anchors[i].Key() {
				t.Errorf("%d shards: anchor %d = %v; want %v", n, i, merged.Anchors[i].Key(), single.Anchors[i].Key())
				break
			}
		}
		// With an unlimited budget the shards' bandwidth sums to exactly
		// the unsharded run's, and the bottleneck shard carries ~1/n.
		if got, want := merged.TotalScanProbes(), single.TotalScanProbes(); got != want {
			t.Errorf("%d shards: total scan probes %d; want %d", n, got, want)
		}
		if merged.MaxShardProbes >= single.TotalScanProbes() {
			t.Errorf("%d shards: bottleneck shard spent %d probes, no better than unsharded %d",
				n, merged.MaxShardProbes, single.TotalScanProbes())
		}
	}
}

// TestShardWorkScalesDown checks the linear-scaling claim: the bottleneck
// shard's bandwidth drops roughly as 1/n.
func TestShardWorkScalesDown(t *testing.T) {
	u, seedSet := testWorld(t, 9)
	cfg := pipeline.Config{Seed: 9}
	single, err := Run(u, seedSet, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	merged, err := Run(u, seedSet, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	// Allow 50% slack over the ideal share for hash-split imbalance.
	ideal := single.TotalScanProbes() / n
	if merged.MaxShardProbes > ideal+ideal/2 {
		t.Errorf("bottleneck shard spent %d probes; ideal 1/%d share is %d", merged.MaxShardProbes, n, ideal)
	}
}

func TestMergeResultsConflict(t *testing.T) {
	// Two hand-built results reporting the same key: the merge must keep
	// one copy and count the conflict.
	k := netmodel.Key{IP: asndb.MustParseIP("10.0.0.1"), Port: 80}
	mk := func() *pipeline.Result {
		return &pipeline.Result{
			Found:       map[netmodel.Key]bool{k: true},
			Anchors:     []dataset.Record{{IP: k.IP, Port: k.Port}},
			Discoveries: []pipeline.Discovery{{Key: k}},
		}
	}
	m := MergeResults([]*pipeline.Result{mk(), mk()})
	if m.Conflicts != 1 {
		t.Errorf("conflicts = %d; want 1", m.Conflicts)
	}
	if len(m.Found) != 1 || len(m.Anchors) != 1 || len(m.Discoveries) != 1 {
		t.Errorf("merged sizes found=%d anchors=%d discoveries=%d; want 1/1/1",
			len(m.Found), len(m.Anchors), len(m.Discoveries))
	}
}

// TestRunFreshSeedConcurrent hands Run a seed dataset whose lazy index
// was never built, with a multi-shard count FIRST — the fan-out shares
// the dataset across N goroutines, so every accessor on that path must
// be a pure read (regression for a ByHost data race; run under -race).
func TestRunFreshSeedConcurrent(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(29))
	fresh := dataset.SnapshotLZR(u, 0.3, 31) // never indexed, never split
	m, err := Run(u, fresh, pipeline.Config{Seed: 29}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Found) == 0 {
		t.Error("8-shard run on a fresh seed found nothing")
	}
}

func TestPartitionTinyProbes(t *testing.T) {
	d := &dataset.Dataset{CollectionProbes: 2}
	var sum uint64
	for _, p := range Partition(d, 4) {
		sum += p.CollectionProbes
	}
	// Unlike SliceBudget, partition accounting has no minimum-one clamp:
	// these are probes already spent, and the slices must sum exactly.
	if sum != 2 {
		t.Errorf("partition CollectionProbes sum to %d; want 2", sum)
	}
}
