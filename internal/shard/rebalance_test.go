package shard

import (
	"bytes"
	"strings"
	"testing"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/netmodel"
)

// rebalanceStates runs a small coordinator for two epochs and returns its
// per-shard states: a realistic hash-split layout worth re-balancing.
func rebalanceStates(t *testing.T, n int) []*continuous.State {
	t.Helper()
	u, seedSet := testWorld(t, 17)
	c := NewCoordinator(seedSet, coordConfig(n))
	world := u
	for e := 1; e <= 2; e++ {
		world = netmodel.Churn(world, netmodel.DefaultChurn(200+int64(e)))
		if _, err := c.Epoch(world); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	return c.States()
}

func checkpointBytes(t *testing.T, states []*continuous.State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, states); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSplitJoinRoundTrip(t *testing.T) {
	const n = 2
	states := rebalanceStates(t, n)
	before := checkpointBytes(t, states)

	split, err := SplitStates(states)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 2*n {
		t.Fatalf("split produced %d states; want %d", len(split), 2*n)
	}
	// Every successor shard owns exactly its partition under the doubled
	// layout, and the split loses no entries.
	total := 0
	for i, st := range split {
		if st.Epoch != states[i%n].Epoch {
			t.Errorf("split shard %d at epoch %d; parent at %d", i, st.Epoch, states[i%n].Epoch)
		}
		for k := range st.Known {
			if got := asndb.ShardOf(k.IP, 2*n); got != i {
				t.Errorf("split shard %d tracks %v owned by shard %d", i, k, got)
			}
		}
		total += len(st.Known)
	}
	want := 0
	for _, st := range states {
		want += len(st.Known)
	}
	if total != want {
		t.Errorf("split tracks %d entries; parents tracked %d", total, want)
	}

	joined, err := JoinStates(split)
	if err != nil {
		t.Fatal(err)
	}
	if after := checkpointBytes(t, joined); !bytes.Equal(before, after) {
		t.Error("split+join did not round-trip the checkpoint byte-identically")
	}
}

// A split layout must keep scanning correctly: resuming a coordinator on
// the doubled shard count and running an epoch is the "no rescan" half of
// the re-balancing contract.
func TestSplitStatesResumeAndRun(t *testing.T) {
	const n = 2
	states := rebalanceStates(t, n)
	split, err := SplitStates(states)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ResumeCoordinator(split, coordConfig(2*n))
	if err != nil {
		t.Fatal(err)
	}
	u, _ := testWorld(t, 17)
	world := u
	for e := 1; e <= 3; e++ {
		world = netmodel.Churn(world, netmodel.DefaultChurn(200+int64(e)))
		if e <= 2 {
			continue // replay the churn the states already saw
		}
		if _, err := c.Epoch(world); err != nil {
			t.Fatalf("post-split epoch: %v", err)
		}
	}
	if _, conflicts := c.Inventory(); conflicts != 0 {
		t.Errorf("post-split inventory has %d conflicts; want 0", conflicts)
	}
}

func TestJoinRejectsBadInput(t *testing.T) {
	states := rebalanceStates(t, 2)

	if _, err := JoinStates(states[:1]); err == nil {
		t.Error("join accepted an odd shard count")
	}
	if _, err := SplitStates(nil); err == nil {
		t.Error("split accepted zero states")
	}

	split, err := SplitStates(states)
	if err != nil {
		t.Fatal(err)
	}
	// Mismatched epochs across a pair of halves must be rejected.
	split[2].Epoch++
	if _, err := JoinStates(split); err == nil || !strings.Contains(err.Error(), "epochs differ") {
		t.Errorf("join of mismatched epochs returned %v", err)
	}
	split[2].Epoch--

	// A foreign entry (wrong hash partition) must abort both directions.
	var foreign netmodel.Key
	for ip := asndb.IP(0x0a000000); ; ip++ {
		if asndb.ShardOf(ip, 4) == 3 {
			foreign = netmodel.Key{IP: ip, Port: 80}
			break
		}
	}
	split[0].Known[foreign] = &continuous.Entry{}
	if _, err := JoinStates(split); err == nil {
		t.Error("join accepted a foreign entry")
	}
	// Treating the first two quarters as a 2-way layout re-hashes the
	// shard-3 entry to shard 3 of 4 — outside {0, 2} — so the split must
	// detect it.
	if _, err := SplitStates(split[:2]); err == nil {
		t.Error("split accepted a foreign entry")
	}
}

func TestWriteInventoryCanonical(t *testing.T) {
	states := rebalanceStates(t, 2)
	inv, _ := MergeInventories(states)

	var a, b bytes.Buffer
	if err := WriteInventory(&a, inv); err != nil {
		t.Fatal(err)
	}
	if err := WriteInventory(&b, inv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of the same inventory differ")
	}
	if !bytes.HasPrefix(a.Bytes(), []byte(stateInventoryMagic)) {
		t.Errorf("inventory missing %q magic", stateInventoryMagic)
	}

	// A split layout merges to the same inventory bytes: re-balancing
	// must not change what the fleet believes it knows.
	split, err := SplitStates(states)
	if err != nil {
		t.Fatal(err)
	}
	splitInv, conflicts := MergeInventories(split)
	if conflicts != 0 {
		t.Fatalf("split inventory has %d conflicts", conflicts)
	}
	var c bytes.Buffer
	if err := WriteInventory(&c, splitInv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("split layout serialized a different inventory")
	}
}
