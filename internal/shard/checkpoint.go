package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"gps/internal/continuous"
)

// Sharded checkpoint format:
//
//	magic "GPSS" | version u8
//	shard count uvarint
//	per shard, in shard order: uvarint byte length + one continuous
//	  checkpoint blob (continuous.WriteCheckpoint output)
//
// Each shard's state reuses the single-runner checkpoint encoding
// unchanged, so a 1-shard sharded checkpoint embeds exactly one regular
// checkpoint and the two formats stay mutually convertible.

const (
	checkpointMagic   = "GPSS"
	checkpointVersion = 1
	// maxShardBlob bounds one shard's state blob; matches the
	// implausibility guard inside the continuous checkpoint reader.
	maxShardBlob = 1 << 28
	// maxShards bounds the shard count a checkpoint may declare.
	maxShards = 1 << 16
)

// WriteCheckpoint serializes per-shard continuous states in shard order.
func WriteCheckpoint(w io.Writer, states []*continuous.State) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(checkpointMagic)
	bw.WriteByte(checkpointVersion)
	writeUvarint(bw, uint64(len(states)))
	var blob bytes.Buffer
	for i, st := range states {
		blob.Reset()
		if err := continuous.WriteCheckpoint(&blob, st); err != nil {
			return fmt.Errorf("shard: encoding shard %d: %w", i, err)
		}
		writeUvarint(bw, uint64(blob.Len()))
		bw.Write(blob.Bytes())
	}
	return bw.Flush()
}

// ReadCheckpoint parses WriteCheckpoint output.
func ReadCheckpoint(r io.Reader) ([]*continuous.State, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shard: reading magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("shard: bad checkpoint magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != checkpointVersion {
		return nil, fmt.Errorf("shard: unsupported checkpoint version %d", ver)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxShards {
		return nil, fmt.Errorf("shard: implausible shard count %d", n)
	}
	states := make([]*continuous.State, n)
	for i := range states {
		blobLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if blobLen > maxShardBlob {
			return nil, fmt.Errorf("shard: implausible shard %d state size %d", i, blobLen)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, fmt.Errorf("shard: reading shard %d state: %w", i, err)
		}
		st, err := continuous.ReadCheckpoint(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("shard: decoding shard %d state: %w", i, err)
		}
		states[i] = st
	}
	return states, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
