package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gps/internal/continuous"
	"gps/internal/trace"
)

// frameBytes builds a seed corpus entry through the package's own
// writer, so every seed is a genuine wire frame.
func frameBytes(tb testing.TB, typ uint8, payload []byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, typ, payload); err != nil {
		tb.Fatalf("seeding frame %d: %v", typ, err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame drives arbitrary bytes through readFrame and every
// typed payload decoder. The invariants under test: no decoder panics
// on any input, readFrame failures are the documented typed errors, and
// a successfully read frame re-encodes to the exact bytes it was read
// from (the canonical-bytes contract).
func FuzzDecodeFrame(f *testing.F) {
	cfg := continuous.Config{Budget: 64, ShardCount: 4}
	spec := EncodeWorldSpec([]byte("world"), 4, []int{0, 2})
	seeds := [][]byte{
		frameBytes(f, msgInit, encodeInit(initMsg{Shard: 1, Cfg: cfg, WorldSpec: spec, Mode: initSeedRef})),
		frameBytes(f, msgEpoch, encodeEpochReq(3, 17, trace.SpanContext{TraceID: 7, SpanID: 9})),
		frameBytes(f, msgEpochResult, encodeEpochResult(3, []byte("state"), true, []byte("spans"))),
		frameBytes(f, msgOffer, encodeOffer(offerMsg{Shard: 2, Cfg: cfg, WorldSpec: spec})),
		frameBytes(f, msgJoin, encodeJoin(joinMsg{ID: "worker-a"})),
		frameBytes(f, msgAck, encodeShardAck(5)),
		frameBytes(f, msgState, encodeShardState(2, []byte("blob"), trace.SpanContext{})),
		{},                             // clean EOF
		{msgInit, 0, 0},                // cut mid-header
		{0xff, 0xff, 0xff, 0xff, 0xff}, // implausible length prefix
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			var fse *FrameSizeError
			if !errors.Is(err, ErrTruncated) && !errors.As(err, &fse) && !errors.Is(err, io.EOF) {
				t.Fatalf("readFrame: untyped error %T: %v", err, err)
			}
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encoding a read frame: %v", err)
		}
		if want := data[:5+len(payload)]; !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("frame round-trip changed bytes:\n got %x\nwant %x", buf.Bytes(), want)
		}
		// Every payload decoder must tolerate every payload: errors are
		// fine, panics and runaway allocations are not.
		decodeInit(payload)
		decodeEpochReq(payload)
		decodeEpochResult(payload)
		decodeShardAck(payload)
		decodeShardState(payload)
		decodeOffer(payload)
		decodeJoin(payload)
		DecodeWorldSpec(payload)
	})
}
