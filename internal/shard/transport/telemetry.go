package transport

import (
	"strconv"

	"gps/internal/telemetry"
)

// Link-level counters for the GPST framed protocol, split by which side
// of the wire this process is on. Registered at package init: the names
// are fixed, and a registration conflict should crash at startup, not
// mid-epoch.
var (
	coordFramesSent = telemetry.Default.Counter("gps_rpc_frames_total",
		"GPST frames moved, by side and direction", "side", "coordinator", "dir", "sent")
	coordFramesRecv = telemetry.Default.Counter("gps_rpc_frames_total",
		"GPST frames moved, by side and direction", "side", "coordinator", "dir", "recv")
	coordBytesSent = telemetry.Default.Counter("gps_rpc_bytes_total",
		"GPST payload bytes moved (including the 5-byte frame header), by side and direction",
		"side", "coordinator", "dir", "sent")
	coordBytesRecv = telemetry.Default.Counter("gps_rpc_bytes_total",
		"GPST payload bytes moved (including the 5-byte frame header), by side and direction",
		"side", "coordinator", "dir", "recv")
	workerFramesSent = telemetry.Default.Counter("gps_rpc_frames_total",
		"GPST frames moved, by side and direction", "side", "worker", "dir", "sent")
	workerFramesRecv = telemetry.Default.Counter("gps_rpc_frames_total",
		"GPST frames moved, by side and direction", "side", "worker", "dir", "recv")
	workerBytesSent = telemetry.Default.Counter("gps_rpc_bytes_total",
		"GPST payload bytes moved (including the 5-byte frame header), by side and direction",
		"side", "worker", "dir", "sent")
	workerBytesRecv = telemetry.Default.Counter("gps_rpc_bytes_total",
		"GPST payload bytes moved (including the 5-byte frame header), by side and direction",
		"side", "worker", "dir", "recv")

	dialRetries = telemetry.Default.Counter("gps_rpc_dial_retries_total",
		"worker dials that had to be retried (worker not listening yet)")
	workerFailures = telemetry.Default.Counter("gps_rpc_worker_failures_total",
		"workers declared dead by the coordinator")
	shardRequeues = telemetry.Default.Counter("gps_rpc_shard_requeues_total",
		"shards re-queued from a dead worker to a survivor")

	// Dynamic-membership instruments (coordinator side). Migrations are
	// labeled by what triggered them — a worker joining, a drain, or the
	// EWMA rebalance policy — because the three have very different
	// operational meanings (growth, shrinkage, hotspot healing).
	migrationsJoin = telemetry.Default.Counter("gps_shard_migrations_total",
		"live shard migrations completed, by trigger", "reason", "join")
	migrationsDrain = telemetry.Default.Counter("gps_shard_migrations_total",
		"live shard migrations completed, by trigger", "reason", "drain")
	migrationsRebalance = telemetry.Default.Counter("gps_shard_migrations_total",
		"live shard migrations completed, by trigger", "reason", "rebalance")
	migrationSeconds = telemetry.Default.Histogram("gps_shard_migration_seconds",
		"duration of one live shard migration (offer through state ack)", nil)
	migrationRejects = telemetry.Default.Counter("gps_shard_migration_rejects_total",
		"live migrations refused or failed before the assignment re-pointed")
	clusterJoins = telemetry.Default.Counter("gps_cluster_joins_total",
		"workers admitted to a running coordinator via the join listener")
	clusterJoinRejects = telemetry.Default.Counter("gps_cluster_join_rejects_total",
		"join attempts refused (version skew, bad registration)")
	clusterDrains = telemetry.Default.Counter("gps_cluster_drains_total",
		"workers drained out of a running coordinator")
	clusterWorkersAlive = telemetry.Default.Gauge("gps_cluster_workers",
		"fleet size by state", "state", "alive")
	clusterWorkersDraining = telemetry.Default.Gauge("gps_cluster_workers",
		"fleet size by state", "state", "draining")
	clusterWorkersPending = telemetry.Default.Gauge("gps_cluster_workers",
		"fleet size by state", "state", "pending")

	workerSessions = telemetry.Default.Counter("gps_worker_sessions_total",
		"coordinator sessions accepted by this worker")
	workerEpochs = telemetry.Default.Counter("gps_worker_epochs_total",
		"shard epochs executed by this worker")
	workerShardsOwned = telemetry.Default.Gauge("gps_worker_shards_owned",
		"shards currently assigned to this worker's session")
	workerMigrationsIn = telemetry.Default.Counter("gps_worker_migrations_in_total",
		"shards this worker adopted through a live migration")

	feedSessions = telemetry.Default.Counter("gps_feed_sessions_total",
		"replica subscriptions accepted by this origin's feed listener")
	feedSubscribers = telemetry.Default.Gauge("gps_feed_subscribers",
		"replica subscriptions currently connected to this origin")
	feedSnapshotsSent = telemetry.Default.Counter("gps_feed_snapshots_sent_total",
		"full-inventory bootstrap frames pushed to replicas")
	feedDeltasSent = telemetry.Default.Counter("gps_feed_deltas_sent_total",
		"epoch-delta frames pushed to replicas")
	feedEventsRecv = telemetry.Default.Counter("gps_feed_events_recv_total",
		"feed events (snapshots + deltas) received by this replica")
)

// frameOverhead is the GPST frame header size added to every payload.
const frameOverhead = 5

// rpcTelemetry is the coordinator's per-shard RPC latency handles,
// registered at Dial when the shard count is known. The RPC latency
// includes the worker's epoch compute, so its EWMA is the remote twin of
// shard.Coordinator's in-process membership signal.
type rpcTelemetry struct {
	shardLat []*telemetry.Histogram
	shardEw  []*telemetry.EWMA
}

func newRPCTelemetry(shards int) *rpcTelemetry {
	r := telemetry.Default
	t := &rpcTelemetry{
		shardLat: make([]*telemetry.Histogram, shards),
		shardEw:  make([]*telemetry.EWMA, shards),
	}
	for i := range t.shardLat {
		shard := strconv.Itoa(i)
		t.shardLat[i] = r.Histogram("gps_rpc_shard_epoch_seconds",
			"round-trip time of one shard's remote epoch (includes worker compute)",
			nil, "shard", shard)
		t.shardEw[i] = r.EWMA("gps_rpc_shard_epoch_ewma_seconds",
			"exponentially smoothed remote shard epoch latency (membership signal)",
			0.3, "shard", shard)
	}
	return t
}

// newWorkerShardsGauge registers the per-worker shard-count gauge once
// per cluster membership; publishStatus then updates the cached handle
// every epoch without re-entering the registry.
func newWorkerShardsGauge(id string) *telemetry.Gauge {
	return telemetry.Default.Gauge("gps_cluster_worker_shards",
		"shards assigned to each worker", "worker", id)
}
