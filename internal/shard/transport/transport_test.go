package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/netmodel"
	"gps/internal/pipeline"
	"gps/internal/shard"
)

// simWorld is the test World: a deterministic universe from TestParams,
// with epoch e's churn seeded seed+e — the exact recipe the in-process
// reference below uses, so both sides scan identical worlds. It builds
// only the partition the coordinator's spec envelope says this worker
// owns: the in-process reference runs against the full universe, so the
// byte-identical gates below also prove partitioned == full-restricted
// end to end.
type simWorld struct {
	seed  int64
	epoch int
	base  *netmodel.Universe // epoch-0 universe, cached for rewinds
	u     *netmodel.Universe
}

func newSimWorld(spec []byte) (World, error) {
	base, shards, owned, err := DecodeWorldSpec(spec)
	if err != nil {
		return nil, err
	}
	if len(base) != 8 {
		return nil, fmt.Errorf("sim world spec is %d bytes, want 8", len(base))
	}
	seed := int64(binary.BigEndian.Uint64(base))
	p := netmodel.TestParams(seed)
	p.Partition = &netmodel.Partition{Count: shards, Owned: owned}
	u, err := netmodel.GenerateChecked(p)
	if err != nil {
		return nil, err
	}
	return &simWorld{seed: seed, base: u, u: u}, nil
}

func (w *simWorld) UniverseAt(e int) (*netmodel.Universe, error) {
	if e < w.epoch {
		w.u, w.epoch = w.base, 0
	}
	for w.epoch < e {
		w.epoch++
		w.u = netmodel.Churn(w.u, netmodel.DefaultChurn(w.seed+int64(w.epoch)))
	}
	return w.u, nil
}

func worldSpec(seed int64) []byte {
	spec := make([]byte, 8)
	binary.BigEndian.PutUint64(spec, uint64(seed))
	return spec
}

// testWorker is one worker process stand-in: a Serve loop whose listener
// and live connections the test can kill to simulate a crash.
type testWorker struct {
	lis   net.Listener
	done  chan struct{}
	mu    sync.Mutex
	conns []net.Conn
}

type trackingListener struct {
	net.Listener
	tw *testWorker
}

func (l *trackingListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err == nil {
		l.tw.mu.Lock()
		l.tw.conns = append(l.tw.conns, conn)
		l.tw.mu.Unlock()
	}
	return conn, err
}

func startWorker(t *testing.T) *testWorker {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tw := &testWorker{lis: lis, done: make(chan struct{})}
	go func() {
		defer close(tw.done)
		Serve(&trackingListener{Listener: lis, tw: tw}, newSimWorld, nil)
	}()
	t.Cleanup(func() { tw.kill() })
	return tw
}

func (tw *testWorker) addr() string { return tw.lis.Addr().String() }

// kill closes the listener and every live connection: the worker is gone
// mid-stream, as a crashed process would be.
func (tw *testWorker) kill() {
	tw.lis.Close()
	tw.mu.Lock()
	for _, c := range tw.conns {
		c.Close()
	}
	tw.conns = nil
	tw.mu.Unlock()
	<-tw.done
}

// testSeed builds the universe's seed split, mirroring the shard package
// tests.
func testSeed(seed int64) (*netmodel.Universe, *dataset.Dataset) {
	u := netmodel.Generate(netmodel.TestParams(seed))
	full := dataset.SnapshotLZR(u, 0.3, seed^0x11)
	seedSet, _ := full.Split(0.04, seed^0x22)
	return u, seedSet.FilterPorts(seedSet.EligiblePorts(2))
}

func testConfig(n int) shard.Config {
	return shard.Config{
		Shards: n,
		Continuous: continuous.Config{
			Budget:   50000,
			Pipeline: pipeline.Config{Workers: 1, Seed: 7, ExactShardCounts: true},
		},
	}
}

// inProcessRun drives the reference in-process coordinator for the given
// epochs and returns its states.
func inProcessRun(t *testing.T, worldSeed int64, n, epochs int) []*continuous.State {
	t.Helper()
	u, seedSet := testSeed(worldSeed)
	c := shard.NewCoordinator(seedSet, testConfig(n))
	world := u
	for e := 1; e <= epochs; e++ {
		world = netmodel.Churn(world, netmodel.DefaultChurn(worldSeed+int64(e)))
		if _, err := c.Epoch(world); err != nil {
			t.Fatalf("in-process epoch %d: %v", e, err)
		}
	}
	return c.States()
}

func stateBytes(t *testing.T, states []*continuous.State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := shard.WriteCheckpoint(&buf, states); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func inventoryBytes(t *testing.T, states []*continuous.State) []byte {
	t.Helper()
	inv, _ := shard.MergeInventories(states)
	var buf bytes.Buffer
	if err := shard.WriteInventory(&buf, inv); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testOptions() *Options {
	return &Options{Timeout: 30 * time.Second, DialTimeout: 5 * time.Second}
}

// TestTransportDistributedMatchesInProcess is the acceptance gate: a
// 4-worker distributed run over the test universe must produce per-shard
// states — and therefore a merged inventory — byte-identical to the
// 1-process, 4-shard coordinator run.
func TestTransportDistributedMatchesInProcess(t *testing.T) {
	const worldSeed, n, epochs = 21, 4, 3

	var addrs []string
	for i := 0; i < n; i++ {
		addrs = append(addrs, startWorker(t).addr())
	}
	c, err := Dial(addrs, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The serving layer hangs off this hook; it must observe every
	// committed epoch in order with the post-commit merged inventory.
	var hookEpochs []int
	var hookInv map[netmodel.Key]*continuous.Entry
	c.SetCommitHook(func(epoch int, inv map[netmodel.Key]*continuous.Entry) {
		hookEpochs = append(hookEpochs, epoch)
		hookInv = inv
	})

	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	ref := inProcessRun(t, worldSeed, n, epochs)
	for e := 1; e <= epochs; e++ {
		stats, err := c.Epoch()
		if err != nil {
			t.Fatalf("distributed epoch %d: %v", e, err)
		}
		if stats.Epoch != e || c.EpochNumber() != e {
			t.Errorf("epoch counters %d/%d; want %d", stats.Epoch, c.EpochNumber(), e)
		}
	}
	if len(hookEpochs) != epochs || hookEpochs[0] != 1 || hookEpochs[epochs-1] != epochs {
		t.Errorf("commit hook saw epochs %v; want 1..%d", hookEpochs, epochs)
	}
	var hookBytes bytes.Buffer
	if err := shard.WriteInventory(&hookBytes, hookInv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hookBytes.Bytes(), inventoryBytes(t, c.States())) {
		t.Error("final commit-hook inventory differs from the merged states")
	}

	if !bytes.Equal(stateBytes(t, c.States()), stateBytes(t, ref)) {
		t.Error("distributed shard states differ from the in-process run")
	}
	if !bytes.Equal(inventoryBytes(t, c.States()), inventoryBytes(t, ref)) {
		t.Error("distributed merged inventory differs from the in-process run")
	}
	if len(c.Failures()) != 0 {
		t.Errorf("healthy run recorded failures: %v", c.Failures())
	}
}

// TestTransportWorkerFailureRequeues kills one of two workers between
// epochs: the next epoch must succeed with the dead worker's shards
// re-queued to the survivor, the failure must surface as a typed
// *WorkerError, and the final states must still match the in-process run
// (re-running a shard's epoch elsewhere is deterministic).
func TestTransportWorkerFailureRequeues(t *testing.T) {
	const worldSeed, n, epochs = 21, 4, 2

	w0, w1 := startWorker(t), startWorker(t)
	c, err := Dial([]string{w0.addr(), w1.addr()}, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}

	w0.kill()
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 2 after worker death: %v", err)
	}
	if c.AliveWorkers() != 1 {
		t.Errorf("AliveWorkers = %d; want 1", c.AliveWorkers())
	}
	fails := c.Failures()
	if len(fails) == 0 {
		t.Fatal("worker death recorded no failures")
	}
	var we *WorkerError
	if !errors.As(error(fails[0]), &we) || we.Addr != w0.addr() {
		t.Errorf("failure = %v; want *WorkerError from %s", fails[0], w0.addr())
	}
	// Every shard now lives on the survivor.
	for s, wi := range c.Assignment() {
		if c.WorkerAddrs()[wi] != w1.addr() {
			t.Errorf("shard %d still assigned to %s", s, c.WorkerAddrs()[wi])
		}
	}

	ref := inProcessRun(t, worldSeed, n, epochs)
	if !bytes.Equal(inventoryBytes(t, c.States()), inventoryBytes(t, ref)) {
		t.Error("post-failover inventory differs from the in-process run")
	}
}

// TestTransportAllWorkersDead: with no survivor to take the re-queued
// shard, Epoch must return a typed error promptly — not hang.
func TestTransportAllWorkersDead(t *testing.T) {
	const worldSeed = 21
	w := startWorker(t)
	opts := testOptions()
	opts.Timeout = 2 * time.Second
	c, err := Dial([]string{w.addr()}, testConfig(2), worldSpec(worldSeed), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	w.kill()

	done := make(chan error, 1)
	go func() {
		_, err := c.Epoch()
		done <- err
	}()
	select {
	case err := <-done:
		var we *WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("Epoch with no live workers returned %v; want *WorkerError", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Epoch hung after all workers died")
	}
}

// A deterministic remote rejection (here: a world spec the worker's
// factory refuses) must abort the operation with the remote cause — not
// cascade into marking healthy workers dead and re-queueing a request
// that would fail identically everywhere.
func TestTransportRemoteRejectionDoesNotCascade(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(lis, func(spec []byte) (World, error) {
			return nil, errors.New("unsupported world")
		}, nil)
	}()
	defer func() {
		lis.Close()
		<-done
	}()

	c, err := Dial([]string{lis.Addr().String()}, testConfig(2), worldSpec(21), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, seedSet := testSeed(21)
	err = c.Seed(seedSet)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Seed against a rejecting factory returned %v; want a *RemoteError cause", err)
	}
	if c.AliveWorkers() != 1 {
		t.Errorf("AliveWorkers = %d after a request-level rejection; the healthy worker was torn down", c.AliveWorkers())
	}
}

// TestTransportBadWorldSpecRejected: a crafted or corrupt world spec
// must surface as a typed `world spec rejected` RemoteError — and the
// worker must survive to serve a good spec afterwards, not die mid-init.
func TestTransportBadWorldSpecRejected(t *testing.T) {
	w := startWorker(t)
	_, seedSet := testSeed(21)

	for _, bad := range [][]byte{
		[]byte("bogus"),   // not even 8 bytes of seed
		make([]byte, 3),   // truncated
		make([]byte, 100), // wrong length entirely
	} {
		c, err := Dial([]string{w.addr()}, testConfig(2), bad, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		err = c.Seed(seedSet)
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("Seed with bad spec %q returned %v; want *RemoteError", bad, err)
		}
		if !bytes.Contains([]byte(re.Msg), []byte("world spec rejected")) {
			t.Errorf("rejection %q does not say 'world spec rejected'", re.Msg)
		}
		c.Close()
	}

	// The worker process must still be alive and fully functional.
	c, err := Dial([]string{w.addr()}, testConfig(2), worldSpec(21), testOptions())
	if err != nil {
		t.Fatalf("worker did not survive bad specs: %v", err)
	}
	defer c.Close()
	if err := c.Seed(seedSet); err != nil {
		t.Fatalf("good seed after bad specs: %v", err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch after bad specs: %v", err)
	}
}

// TestTransportFactoryPanicContained: a factory that panics on a spec
// (the old netmodel.Generate behavior on invalid params) must produce a
// reject frame, not a dead worker process.
func TestTransportFactoryPanicContained(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var calls atomic.Int32
	go func() {
		defer close(done)
		Serve(lis, func(spec []byte) (World, error) {
			if calls.Add(1) == 1 {
				panic("corrupt spec blew up the generator")
			}
			return newSimWorld(spec)
		}, nil)
	}()
	defer func() {
		lis.Close()
		<-done
	}()

	c, err := Dial([]string{lis.Addr().String()}, testConfig(1), worldSpec(21), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, seedSet := testSeed(21)
	err = c.Seed(seedSet)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Seed against a panicking factory returned %v; want *RemoteError", err)
	}
	c.Close()

	// Second session: the worker survived the panic and serves normally.
	c2, err := Dial([]string{lis.Addr().String()}, testConfig(1), worldSpec(21), testOptions())
	if err != nil {
		t.Fatalf("worker did not survive the factory panic: %v", err)
	}
	defer c2.Close()
	if err := c2.Seed(seedSet); err != nil {
		t.Fatalf("seed after factory panic: %v", err)
	}
}

// extSimWorld is a simWorld that adopts grown specs in place, counting
// how it was asked to change.
type extSimWorld struct {
	*simWorld
	extends *atomic.Int32
}

func (w *extSimWorld) Extend(spec []byte) error {
	base, shards, owned, err := DecodeWorldSpec(spec)
	if err != nil {
		return err
	}
	if len(base) != 8 || int64(binary.BigEndian.Uint64(base)) != w.seed {
		return errors.New("different world")
	}
	p := netmodel.TestParams(w.seed)
	p.Partition = &netmodel.Partition{Count: shards, Owned: owned}
	u, err := netmodel.GenerateChecked(p)
	if err != nil {
		return err
	}
	w.base, w.u, w.epoch = u, u, 0
	w.extends.Add(1)
	return nil
}

// TestTransportRequeueExtendsWorld: when a dead worker's shards land on
// a survivor, the survivor's session sees a grown spec; a world
// implementing ExtendableWorld must be extended in place — the factory
// runs once per session, not once per re-queue — and the result must
// still match the in-process run byte for byte.
func TestTransportRequeueExtendsWorld(t *testing.T) {
	const worldSeed, n, epochs = 21, 4, 2

	var builds, extends atomic.Int32
	factory := func(spec []byte) (World, error) {
		w, err := newSimWorld(spec)
		if err != nil {
			return nil, err
		}
		builds.Add(1)
		return &extSimWorld{simWorld: w.(*simWorld), extends: &extends}, nil
	}
	start := func() *testWorker {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tw := &testWorker{lis: lis, done: make(chan struct{})}
		go func() {
			defer close(tw.done)
			Serve(&trackingListener{Listener: lis, tw: tw}, factory, nil)
		}()
		t.Cleanup(func() { tw.kill() })
		return tw
	}

	w0, w1 := start(), start()
	c, err := Dial([]string{w0.addr(), w1.addr()}, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}
	w0.kill()
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 2 after worker death: %v", err)
	}

	if got := builds.Load(); got != 2 {
		t.Errorf("factory built %d worlds; want 2 (one per worker session, re-queues extend instead)", got)
	}
	if extends.Load() == 0 {
		t.Error("re-queued shards never extended the survivor's world")
	}
	ref := inProcessRun(t, worldSeed, n, epochs)
	if !bytes.Equal(inventoryBytes(t, c.States()), inventoryBytes(t, ref)) {
		t.Error("post-extend inventory differs from the in-process run")
	}
}

func TestTransportEpochBeforeSeed(t *testing.T) {
	w := startWorker(t)
	c, err := Dial([]string{w.addr()}, testConfig(1), worldSpec(21), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Epoch(); err == nil {
		t.Error("Epoch before Seed/Resume succeeded")
	}
}

// TestTransportResume round-trips a distributed run through checkpointed
// states: resuming a fresh fleet from epoch-1 states and running epoch 2
// must equal the uninterrupted two-epoch run.
func TestTransportResume(t *testing.T) {
	const worldSeed, n = 21, 2

	// Uninterrupted reference.
	ref := inProcessRun(t, worldSeed, n, 2)

	// Distributed: one epoch, checkpoint, new coordinator + fleet, resume.
	w := startWorker(t)
	c, err := Dial([]string{w.addr()}, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}
	mid := stateBytes(t, c.States())
	c.Close()

	states, err := shard.ReadCheckpoint(bytes.NewReader(mid))
	if err != nil {
		t.Fatal(err)
	}
	w2 := startWorker(t)
	c2, err := Dial([]string{w2.addr()}, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Resume(states); err != nil {
		t.Fatal(err)
	}
	if c2.EpochNumber() != 1 {
		t.Fatalf("resumed at epoch %d; want 1", c2.EpochNumber())
	}
	if _, err := c2.Epoch(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stateBytes(t, c2.States()), stateBytes(t, ref)) {
		t.Error("resumed distributed run differs from the uninterrupted reference")
	}
}
