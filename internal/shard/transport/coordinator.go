package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/netmodel"
	"gps/internal/shard"
	"gps/internal/telemetry"
	"gps/internal/trace"
)

// Options tunes the coordinator's client side.
type Options struct {
	// Timeout bounds one RPC round trip, including the worker's epoch
	// compute; 0 selects 2 minutes. This is what turns a wedged worker
	// into a typed error instead of a hang.
	Timeout time.Duration
	// DialTimeout bounds how long Dial waits for each worker to start
	// listening (it retries with backoff, so workers may be launched
	// concurrently with the coordinator); 0 selects 15 seconds.
	DialTimeout time.Duration
	// RebalanceFactor arms the telemetry-driven migration policy: when
	// the hottest worker's summed per-shard EWMA epoch latency exceeds
	// the cluster median by this factor, its slowest shard migrates to
	// the least-loaded worker at the next epoch boundary. 0 (the
	// default) disables the policy; joins and drains still migrate.
	RebalanceFactor float64
	// Logf receives one line per coordinator event; nil discards.
	Logf func(format string, args ...any)
}

func (o *Options) timeout() time.Duration {
	if o == nil || o.Timeout <= 0 {
		return 2 * time.Minute
	}
	return o.Timeout
}

func (o *Options) dialTimeout() time.Duration {
	if o == nil || o.DialTimeout <= 0 {
		return 15 * time.Second
	}
	return o.DialTimeout
}

func (o *Options) rebalanceFactor() float64 {
	if o == nil {
		return 0
	}
	return o.RebalanceFactor
}

func (o *Options) logf(format string, args ...any) {
	if o != nil && o.Logf != nil {
		o.Logf(format, args...)
	}
}

// workerLink is one worker connection — dialed at startup or admitted
// through the join listener. RPCs on a link are strictly sequential
// request/response; concurrency comes from running links in parallel.
// After admission a link is touched only by the epoch-loop thread.
type workerLink struct {
	id     string // cluster identity: the dial address, or the joiner's -name
	addr   string
	conn   net.Conn
	alive  bool
	joined bool // arrived via AcceptJoins, not Dial

	// wantsDrain is set when the worker's epoch result carries the
	// draining flag (worker-initiated leave); draining marks a drain in
	// progress; drained marks a clean departure.
	wantsDrain bool
	draining   bool
	drained    bool

	// shardsGauge is this worker's pre-registered
	// gps_cluster_worker_shards handle: publishStatus runs every epoch,
	// so the labeled lookup happens once per membership, not per epoch.
	shardsGauge *telemetry.Gauge
}

// newWorkerLink builds a live link and registers its per-worker gauges.
func newWorkerLink(id, addr string, conn net.Conn, joined bool) *workerLink {
	return &workerLink{
		id: id, addr: addr, conn: conn, alive: true, joined: joined,
		shardsGauge: newWorkerShardsGauge(id),
	}
}

// rpc performs one framed round trip under the deadline. An msgError
// frame becomes a RemoteError; any transport failure becomes a
// DisconnectError.
func (w *workerLink) rpc(timeout time.Duration, typ uint8, payload []byte, want uint8) ([]byte, error) {
	w.conn.SetDeadline(time.Now().Add(timeout))
	coordFramesSent.Inc()
	coordBytesSent.Add(uint64(len(payload) + frameOverhead))
	if err := writeFrame(w.conn, typ, payload); err != nil {
		var fse *FrameSizeError
		if errors.As(err, &fse) {
			// A local refusal (payload too large), not a link failure.
			return nil, err
		}
		return nil, &DisconnectError{Addr: w.addr, Err: err}
	}
	got, resp, err := readFrame(w.conn)
	if err != nil {
		return nil, &DisconnectError{Addr: w.addr, Err: err}
	}
	coordFramesRecv.Inc()
	coordBytesRecv.Add(uint64(len(resp) + frameOverhead))
	if got == msgError {
		d := newDec(resp)
		msg := d.bytes()
		if d.err != nil {
			return nil, &DisconnectError{Addr: w.addr, Err: d.err}
		}
		return nil, &RemoteError{Msg: string(msg)}
	}
	if got != want {
		return nil, &DisconnectError{Addr: w.addr, Err: fmt.Errorf("frame type %d in reply, want %d", got, want)}
	}
	return resp, nil
}

// Coordinator drives N shards across remote worker processes, mirroring
// the in-process shard.Coordinator API: Seed or Resume, then Epoch in a
// loop, with States/Inventory folding the per-shard results through the
// same merge code. Shard ownership of addresses is the asndb.ShardOf hash
// (enforced worker-side by the continuous runner's shard filter); shards
// map to workers round-robin, re-queued to survivors when a worker fails.
// The coordinator is not safe for concurrent use.
type Coordinator struct {
	cfg       shard.Config
	worldSpec []byte // caller's base spec; wrapped per worker by specFor
	opts      *Options

	workers []*workerLink
	assign  []int  // shard → index into workers
	inited  []bool // shard is initialized on its currently assigned worker
	states  []*continuous.State
	budgets []uint64
	hook    shard.CommitHook
	tel     *rpcTelemetry

	failures []*WorkerError

	// epochTrace is the in-flight epoch's root span context; set for
	// the duration of Epoch so maintain-time work (migrations, drains)
	// parents its spans under the epoch that absorbed it. Only the
	// epoch-loop thread touches it.
	epochTrace trace.SpanContext

	// Dynamic membership (cluster.go). Everything below mu is shared
	// with the join listener's goroutines and HTTP handlers; the live
	// fleet above is epoch-loop-thread only.
	joinLis    net.Listener
	migrations []MigrationStatus

	mu       sync.Mutex
	pending  []*workerLink // joined, admitted at the next epoch boundary
	drainReq map[string]bool
	status   ClusterStatus
}

// Dial connects to the worker fleet. Each address is retried with backoff
// until Options.DialTimeout so workers may still be starting; a worker
// that never appears fails the whole Dial (start with the fleet you mean
// to run — shards re-balance onto survivors only after a worker that did
// join dies).
//
// worldSpec is the caller's base world description. The coordinator
// never broadcasts it raw: every Init wraps it with the receiving
// worker's current owned-shard set (EncodeWorldSpec), so a worker can
// materialize only the partition of the world its shards scan. Worker
// factories unwrap with DecodeWorldSpec.
func Dial(addrs []string, cfg shard.Config, worldSpec []byte, opts *Options) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: no worker addresses")
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	cfg.Shards = n
	c := &Coordinator{
		cfg:       cfg,
		worldSpec: worldSpec,
		opts:      opts,
		assign:    make([]int, n),
		inited:    make([]bool, n),
		budgets:   shard.SliceBudget(cfg.Continuous.Budget, n),
		tel:       newRPCTelemetry(n),
		drainReq:  make(map[string]bool),
	}
	for _, addr := range addrs {
		conn, err := dialRetry(addr, opts.dialTimeout())
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: dialing worker %s: %w", addr, err)
		}
		conn.SetDeadline(time.Now().Add(opts.timeout()))
		if err := writeHandshake(conn); err != nil {
			conn.Close()
			c.Close()
			return nil, &DisconnectError{Addr: addr, Err: err}
		}
		if err := readHandshake(conn); err != nil {
			conn.Close()
			c.Close()
			return nil, fmt.Errorf("transport: handshake with worker %s: %w", addr, err)
		}
		c.workers = append(c.workers, newWorkerLink(addr, addr, conn, false))
	}
	for s := range c.assign {
		c.assign[s] = s % len(c.workers)
	}
	c.publishStatus()
	return c, nil
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	delay := 50 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(delay).After(deadline) {
			return nil, err
		}
		dialRetries.Inc()
		time.Sleep(delay)
		if delay < time.Second {
			delay *= 2
		}
	}
}

// fatalRPC reports whether an RPC failure is deterministic — a remote
// rejection or a local payload-size refusal that would fail identically
// against any worker — rather than a link failure worth failing over.
func fatalRPC(err error) bool {
	var re *RemoteError
	var fse *FrameSizeError
	return errors.As(err, &re) || errors.As(err, &fse)
}

// shardCfg derives shard s's runner configuration, mirroring the
// in-process coordinator: the global budget is pre-sliced, the shard
// filter pinned.
func (c *Coordinator) shardCfg(s int) continuous.Config {
	sc := c.cfg.Continuous
	sc.Budget = c.budgets[s]
	sc.ShardIndex, sc.ShardCount = s, c.cfg.Shards
	return sc
}

// specFor wraps the base world spec with worker wi's current owned-shard
// set. The set is read from the live assignment, so a shard re-queued
// off a dead worker changes the survivor's spec — the worker notices the
// new bytes on the shard's Init and extends (or rebuilds) its partition
// to cover the adopted shard.
func (c *Coordinator) specFor(wi int) []byte {
	var owned []int
	for s, w := range c.assign {
		if w == wi {
			owned = append(owned, s)
		}
	}
	return EncodeWorldSpec(c.worldSpec, c.cfg.Shards, owned)
}

// Seed initializes every shard from one broadcast seed set, exactly like
// the in-process coordinator: the full set is sent to every worker once
// (msgSeed), and each shard's Init then references it — the worker's
// runner keeps only the records its partition owns, so a worker serving
// k shards still receives and decodes the seed exactly once. The
// coordinator keeps a local replica of each seeded state (continuous.New
// is deterministic, so replica and worker agree) for
// States/Inventory/failover.
func (c *Coordinator) Seed(seed *dataset.Dataset) error {
	blob, err := encodeSeed(seed)
	if err != nil {
		return err
	}
	var e enc
	e.bytes(blob)
	payload := e.payload()
	for _, w := range c.workers {
		if !w.alive {
			continue
		}
		if _, err := w.rpc(c.opts.timeout(), msgSeed, payload, msgSeedOK); err != nil {
			if fatalRPC(err) {
				return fmt.Errorf("transport: seeding worker %s: %w", w.addr, err)
			}
			// The worker died before taking any shard; its shards fail
			// over during initAll, landing on workers that did get the
			// seed.
			c.workerFailed(-1, w, err)
		}
	}
	c.states = make([]*continuous.State, c.cfg.Shards)
	for s := range c.states {
		c.states[s] = continuous.New(seed, c.shardCfg(s)).State()
	}
	return c.initAll(func(s int) (uint8, []byte) { return initSeedRef, nil })
}

// Resume initializes every shard from checkpointed states, one per shard
// in shard order.
func (c *Coordinator) Resume(states []*continuous.State) error {
	if len(states) != c.cfg.Shards {
		return fmt.Errorf("transport: %d shard states for %d shards", len(states), c.cfg.Shards)
	}
	c.states = states
	blobs := make([][]byte, len(states))
	for s, st := range states {
		blob, err := shard.EncodeState(st)
		if err != nil {
			return fmt.Errorf("transport: shard %d: %w", s, err)
		}
		blobs[s] = blob
	}
	return c.initAll(func(s int) (uint8, []byte) { return initResume, blobs[s] })
}

// initAll pushes every shard to its assigned worker, failing over to
// survivors when a worker dies mid-initialization. A RemoteError is not
// a worker failure — the connection is healthy and the request was
// rejected deterministically (bad world spec, undecodable state), so
// retrying it on every other worker would only tear the fleet down — it
// aborts the initialization instead.
func (c *Coordinator) initAll(payload func(s int) (mode uint8, blob []byte)) error {
	for s := range c.assign {
		for {
			w, err := c.liveWorker(s)
			if err != nil {
				return err
			}
			mode, blob := payload(s)
			m := initMsg{Shard: s, Cfg: c.shardCfg(s), WorldSpec: c.specFor(c.assign[s]), Mode: mode, Blob: blob}
			if _, err := w.rpc(c.opts.timeout(), msgInit, encodeInit(m), msgInitOK); err != nil {
				if fatalRPC(err) {
					return fmt.Errorf("transport: init shard %d on %s: %w", s, w.addr, err)
				}
				c.workerFailed(s, w, err)
				continue
			}
			c.inited[s] = true
			break
		}
	}
	return nil
}

// liveWorker returns shard s's assigned worker, re-assigning to the next
// living worker (round-robin from the previous owner) if the assignment
// is dead. Draining workers are passed over when any other live worker
// exists — handing a shard to a worker on its way out just migrates it
// twice — but taken as a last resort. With no survivors it returns the
// most recent failure.
func (c *Coordinator) liveWorker(s int) (*workerLink, error) {
	w := c.workers[c.assign[s]]
	if w.alive {
		return w, nil
	}
	for pass := 0; pass < 2; pass++ {
		for off := 1; off <= len(c.workers); off++ {
			i := (c.assign[s] + off) % len(c.workers)
			cand := c.workers[i]
			if !cand.alive {
				continue
			}
			if pass == 0 && (cand.draining || cand.wantsDrain) {
				continue
			}
			c.opts.logf("transport: re-queueing shard %d from dead %s to %s", s, w.addr, cand.addr)
			shardRequeues.Inc()
			c.assign[s] = i
			c.inited[s] = false
			return cand, nil
		}
	}
	if n := len(c.failures); n > 0 {
		return nil, fmt.Errorf("transport: no live worker for shard %d: %w", s, c.failures[n-1])
	}
	return nil, fmt.Errorf("transport: no live worker for shard %d", s)
}

// workerFailed marks a worker dead and records the typed failure.
func (c *Coordinator) workerFailed(s int, w *workerLink, err error) {
	we := &WorkerError{Addr: w.addr, Shard: s, Err: err}
	c.failures = append(c.failures, we)
	workerFailures.Inc()
	w.alive = false
	w.conn.Close()
	c.opts.logf("transport: %v", we)
}

// Epoch runs the next epoch on every shard across the worker fleet:
// workers execute in parallel (their shards sequentially on one
// connection), stream back their post-epoch states, and the merged stats
// fold exactly as in process. A worker failure re-queues its unfinished
// shards to survivors — re-running a shard's epoch elsewhere is safe
// because the epoch is a deterministic function of (state, universe,
// config) and the coordinator still holds the pre-epoch state. A
// RemoteError (the worker is healthy, the request failed — e.g. the
// shard's epoch itself errored) aborts the epoch instead: it would fail
// the same way on every worker, so re-queueing it would only tear the
// fleet down. Epoch returns a *WorkerError only when a shard has nowhere
// left to run.
//
// State commits are all-or-nothing: c.states advances only when every
// shard finished the epoch, so after an error the coordinator still
// holds the consistent pre-epoch layout (checkpointable, retryable).
func (c *Coordinator) Epoch() (continuous.EpochStats, error) {
	if c.states == nil {
		return continuous.EpochStats{}, fmt.Errorf("transport: Epoch before Seed or Resume")
	}
	// The epoch root span opens before maintain so membership work —
	// migrations, drains, admissions — shows up as children of the
	// epoch that absorbed it.
	root := trace.StartSpan(trace.SpanContext{}, "epoch", trace.Int("shards", c.cfg.Shards))
	c.epochTrace = root.Context()
	defer func() { c.epochTrace = trace.SpanContext{} }()
	// The epoch boundary: every queued membership change — admissions,
	// drains, policy migrations — lands here, before any shard starts
	// the epoch, so the fan-out below always sees a settled assignment.
	c.maintain()
	epoch := c.EpochNumber() + 1
	root.SetAttr(trace.Int("epoch", epoch))
	n := c.cfg.Shards
	completed := make(map[int]*continuous.State, n)
	for len(completed) < n {
		// Re-home shards whose worker died (in a previous round or a
		// previous epoch) before fanning out.
		byWorker := make(map[int][]int)
		for s := 0; s < n; s++ {
			if _, ok := completed[s]; ok {
				continue
			}
			if _, err := c.liveWorker(s); err != nil {
				root.FinishErr(err)
				return continuous.EpochStats{}, err
			}
			byWorker[c.assign[s]] = append(byWorker[c.assign[s]], s)
		}

		type outcome struct {
			states map[int]*continuous.State
			failed map[int]error // shard → link failure on this worker
			abort  error         // deterministic failure; no re-queue
		}
		results := make(map[int]*outcome, len(byWorker))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for wi, shards := range byWorker {
			wg.Add(1)
			go func(wi int, shards []int) {
				defer wg.Done()
				out := &outcome{states: make(map[int]*continuous.State), failed: make(map[int]error)}
				w := c.workers[wi]
				for _, s := range shards {
					start := time.Now()
					st, err := c.runShardEpoch(w, s, epoch, root.Context())
					if err == nil {
						d := time.Since(start).Seconds()
						c.tel.shardLat[s].Observe(d)
						c.tel.shardEw[s].Update(d)
					}
					switch {
					case err == nil:
						out.states[s] = st
						continue
					case fatalRPC(err):
						out.abort = fmt.Errorf("transport: epoch %d, shard %d on %s: %w", epoch, s, w.addr, err)
					default:
						// The link is poisoned: every later shard on
						// this worker fails over too.
						for _, rest := range shards[indexOf(shards, s):] {
							out.failed[rest] = err
						}
					}
					break
				}
				mu.Lock()
				results[wi] = out
				mu.Unlock()
			}(wi, shards)
		}
		wg.Wait()

		for wi, out := range results {
			for s, st := range out.states {
				completed[s] = st
			}
			for s, err := range out.failed {
				if c.workers[wi].alive {
					c.workerFailed(s, c.workers[wi], err)
				} else {
					c.failures = append(c.failures, &WorkerError{Addr: c.workers[wi].addr, Shard: s, Err: err})
				}
			}
		}
		for _, out := range results {
			if out.abort != nil {
				// Workers whose shards did complete have advanced past
				// c.states; force a re-init from the retained pre-epoch
				// states so a retried Epoch starts consistent.
				for i := range c.inited {
					c.inited[i] = false
				}
				root.FinishErr(out.abort)
				return continuous.EpochStats{}, out.abort
			}
		}
	}

	stats := make([]continuous.EpochStats, 0, n)
	for s := 0; s < n; s++ {
		c.states[s] = completed[s]
		if st := completed[s]; len(st.History) > 0 {
			stats = append(stats, st.History[len(st.History)-1])
		}
	}
	if c.hook != nil {
		// The commit is all-or-nothing (above), so the hook only ever
		// observes a fully consistent post-epoch layout — exactly like
		// the in-process coordinator's.
		inv, _ := shard.MergeInventories(c.states)
		c.hook(epoch, inv)
	}
	c.publishStatus()
	root.Finish()
	return shard.MergeStats(stats), nil
}

// runShardEpoch initializes the shard on w if needed, runs one epoch, and
// decodes the returned state. The RPC span it opens under parent is the
// trace context shipped to the worker, so the worker's phase spans —
// returned on the result frame and imported below — land directly
// beneath it in the stitched tree.
func (c *Coordinator) runShardEpoch(w *workerLink, s, epoch int, parent trace.SpanContext) (*continuous.State, error) {
	if !c.inited[s] {
		blob, err := shard.EncodeState(c.states[s])
		if err != nil {
			return nil, err
		}
		m := initMsg{Shard: s, Cfg: c.shardCfg(s), WorldSpec: c.specFor(c.assign[s]), Mode: initResume, Blob: blob}
		if _, err := w.rpc(c.opts.timeout(), msgInit, encodeInit(m), msgInitOK); err != nil {
			return nil, err
		}
		c.inited[s] = true
	}
	rpcSpan := trace.StartSpan(parent, "rpc.epoch",
		trace.Int("shard", s), trace.String("worker", w.id))
	resp, err := w.rpc(c.opts.timeout(), msgEpoch, encodeEpochReq(s, epoch, rpcSpan.Context()), msgEpochResult)
	if err != nil {
		rpcSpan.FinishErr(err)
		return nil, err
	}
	gotShard, blob, draining, remoteSpans, err := decodeEpochResult(resp)
	if len(remoteSpans) > 0 {
		if recs, derr := trace.DecodeSpans(remoteSpans); derr == nil {
			trace.Default.Import(recs)
		}
	}
	rpcSpan.FinishErr(err)
	if err != nil {
		return nil, err
	}
	if draining && !w.wantsDrain {
		// Worker-initiated leave: the flag rides the result, the drain
		// itself happens at the next epoch boundary (maintain). Safe to
		// set from this worker's fan-out goroutine — each worker's link
		// is owned by exactly one goroutine per epoch, and maintain
		// reads it only after the fan-out joins.
		w.wantsDrain = true
		c.opts.logf("transport: worker %q reports draining; migrating its shards at the next boundary", w.id)
	}
	if gotShard != s {
		return nil, fmt.Errorf("worker answered for shard %d, asked about %d", gotShard, s)
	}
	st, err := shard.DecodeState(blob)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s, err)
	}
	if st.Epoch != epoch {
		return nil, fmt.Errorf("shard %d state returned at epoch %d, want %d", s, st.Epoch, epoch)
	}
	return st, nil
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}

// Shards returns the partition count.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// SetCommitHook registers the hook Epoch invokes after each all-or-
// nothing state commit, mirroring the in-process coordinator; nil
// unregisters. Call it before the epoch loop starts, not concurrently
// with Epoch.
func (c *Coordinator) SetCommitHook(h shard.CommitHook) { c.hook = h }

// EpochNumber returns the last completed epoch (shards advance in
// lockstep).
func (c *Coordinator) EpochNumber() int {
	if len(c.states) == 0 {
		return 0
	}
	return c.states[0].Epoch
}

// States exposes the coordinator's authoritative per-shard states in
// shard order: after every Epoch they mirror the worker-side states
// exactly (workers stream them back), so checkpointing the coordinator
// checkpoints the fleet.
func (c *Coordinator) States() []*continuous.State { return c.states }

// Inventory returns the merged global inventory with cross-shard conflict
// resolution, identical to the in-process coordinator's.
func (c *Coordinator) Inventory() (map[netmodel.Key]*continuous.Entry, int) {
	return shard.MergeInventories(c.states)
}

// EmptyShards returns the indexes of shards with an empty inventory (see
// shard.Coordinator.EmptyShards).
func (c *Coordinator) EmptyShards() []int {
	var out []int
	for i, st := range c.states {
		if len(st.Known) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Assignment returns the current shard → worker-index mapping.
func (c *Coordinator) Assignment() []int {
	out := make([]int, len(c.assign))
	copy(out, c.assign)
	return out
}

// WorkerAddrs returns the dialed worker addresses in worker order.
func (c *Coordinator) WorkerAddrs() []string {
	out := make([]string, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.addr
	}
	return out
}

// AliveWorkers counts workers still serving shards.
func (c *Coordinator) AliveWorkers() int {
	n := 0
	for _, w := range c.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// Failures returns every worker failure observed so far, in order. Each
// is a *WorkerError naming the worker, the shard it was serving, and the
// underlying cause; a non-empty result with a nil Epoch error means the
// affected shards were re-queued successfully.
func (c *Coordinator) Failures() []*WorkerError { return c.failures }

// Close shuts the fleet down: the join listener stops accepting, then a
// best-effort shutdown frame goes to each living worker — including
// joiners still waiting in the pending set, so a worker that registered
// but was never admitted exits cleanly too — then the connections.
func (c *Coordinator) Close() error {
	if c.joinLis != nil {
		c.joinLis.Close()
	}
	c.mu.Lock()
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, w := range append(pending, c.workers...) {
		if w.alive {
			w.conn.SetDeadline(time.Now().Add(time.Second))
			writeFrame(w.conn, msgShutdown, nil)
		}
		w.conn.Close()
	}
	return nil
}
