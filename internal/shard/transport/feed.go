package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// The replication feed puts the epoch-delta stream on the wire: an
// origin process (the daemon that commits epochs) listens with
// ServeFeed, and any number of read replicas subscribe with DialFeed.
// A session is one msgSubscribe frame carrying the epoch the replica
// already holds, answered by an endless push stream: msgDelta frames
// while the subscriber's epoch is still in the origin's delta history,
// a msgSnapshot bootstrap (full GPSV inventory) when it is not —
// first contact, a restart from scratch, or a replica that fell more
// than the history depth behind. After a snapshot the stream continues
// with deltas from the snapshot's epoch. msgShutdown ends the stream
// cleanly when the origin closes.
//
// Unlike the coordinator↔worker protocol, feed sessions are concurrent:
// one origin serves N replicas, each on its own connection.

// FeedSource is what an origin serves: the current epoch and inventory,
// the retained per-epoch deltas, and a way to wait for the next commit.
// internal/serve.Feed implements it; the interface lives here (as a
// structural contract) so the transport stays importable on its own.
//
// Implementations must be safe for concurrent use — every replica
// session calls from its own goroutine.
type FeedSource interface {
	// Head returns the latest committed epoch, -1 before the first.
	Head() int
	// Snapshot returns the current epoch and its full inventory as
	// canonical GPSV bytes.
	Snapshot() (epoch int, inv []byte)
	// Delta returns the encoded GPSE delta advancing epoch from to the
	// returned next epoch, or ok=false when from is no longer in the
	// retained history (the subscriber must re-bootstrap).
	Delta(from int) (payload []byte, next int, ok bool)
	// Wait blocks until Head exceeds epoch, cancel fires, or the source
	// closes; it returns false only when the source closed for good.
	Wait(epoch int, cancel <-chan struct{}) bool
}

// ServeFeed accepts replica subscriptions on lis and streams src to
// each until the listener closes (which makes ServeFeed return nil) or
// src closes (which ends each session with a clean shutdown frame).
// Sessions are independent: a slow or dead replica only stalls itself —
// each write carries Options.Timeout as its deadline, and a replica
// that cannot drain an epoch within it is disconnected (it will redial
// and, if it fell out of history, re-bootstrap).
func ServeFeed(lis net.Listener, src FeedSource, opts *Options) error {
	if src == nil {
		return fmt.Errorf("transport: ServeFeed needs a FeedSource")
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
		}
		feedSessions.Inc()
		feedSubscribers.Add(1)
		go func(conn net.Conn) {
			defer feedSubscribers.Add(-1)
			defer conn.Close()
			if err := serveFeedSession(conn, src, opts); err != nil {
				opts.logf("transport: feed session from %s ended: %v", conn.RemoteAddr(), err)
			}
		}(conn)
	}
}

// serveFeedSession runs one replica's subscription to completion.
func serveFeedSession(conn net.Conn, src FeedSource, opts *Options) error {
	conn.SetDeadline(time.Now().Add(opts.timeout()))
	if err := writeHandshake(conn); err != nil {
		return err
	}
	if err := readHandshake(conn); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != msgSubscribe {
		var e enc
		e.bytes([]byte(fmt.Sprintf("expected subscribe frame, got type %d", typ)))
		writeFrame(conn, msgError, e.payload())
		return fmt.Errorf("transport: feed client opened with frame type %d", typ)
	}
	d := newDec(payload)
	since := int(d.varint())
	if d.err != nil {
		return d.err
	}

	// The client sends nothing after the subscribe, so a pending read
	// only ever completes when the connection dies — which is exactly
	// the signal Wait needs to stop blocking for a gone replica.
	conn.SetDeadline(time.Time{})
	cancel := make(chan struct{})
	go func() {
		defer close(cancel)
		io.Copy(io.Discard, conn)
	}()

	cur := since
	for {
		head := src.Head()
		if head < 0 || cur == head {
			// Nothing to send (yet): wait for the next commit.
			if !src.Wait(head, cancel) {
				writeFeedFrame(conn, opts, msgShutdown, nil)
				return nil
			}
			select {
			case <-cancel:
				return nil
			default:
			}
			continue
		}
		if blob, next, ok := src.Delta(cur); ok {
			var e enc
			e.varint(int64(src.Head()))
			e.varint(int64(next))
			e.bytes(blob)
			if err := writeFeedFrame(conn, opts, msgDelta, e.payload()); err != nil {
				return err
			}
			feedDeltasSent.Inc()
			cur = next
			continue
		}
		// Out of history (first contact, or the replica lagged past the
		// retention window): restart it from a full snapshot.
		epoch, blob := src.Snapshot()
		var e enc
		e.varint(int64(epoch))
		e.bytes(blob)
		if err := writeFeedFrame(conn, opts, msgSnapshot, e.payload()); err != nil {
			return err
		}
		feedSnapshotsSent.Inc()
		cur = epoch
	}
}

// writeFeedFrame sends one frame under a per-write deadline: a replica
// that cannot drain within Options.Timeout is cut loose instead of
// pinning this session's goroutine.
func writeFeedFrame(conn net.Conn, opts *Options, typ uint8, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(opts.timeout()))
	err := writeFrame(conn, typ, payload)
	conn.SetWriteDeadline(time.Time{})
	return err
}

// FeedEventKind discriminates FeedEvent payloads.
type FeedEventKind uint8

const (
	// FeedSnapshot carries a full GPSV inventory; the replica replaces
	// its state with it.
	FeedSnapshot FeedEventKind = iota + 1
	// FeedDelta carries one GPSE epoch delta; the replica applies it.
	FeedDelta
)

// FeedEvent is one origin push: a bootstrap snapshot or an epoch delta.
type FeedEvent struct {
	Kind FeedEventKind
	// Epoch is the epoch this event lands the replica on.
	Epoch int
	// Head is the origin's latest epoch when the event was sent;
	// Head - Epoch is the replica's lag in epochs.
	Head int
	// Payload holds GPSV bytes (FeedSnapshot) or GPSE bytes (FeedDelta).
	Payload []byte
}

// FeedConn is a replica's live subscription to an origin feed.
type FeedConn struct {
	addr string
	conn net.Conn
}

// DialFeed subscribes to the origin feed at addr, resuming after epoch
// since (-1 subscribes from scratch; the first event is then a
// snapshot). The dial retries with backoff until Options.DialTimeout,
// so replicas may start before their origin.
func DialFeed(addr string, since int, opts *Options) (*FeedConn, error) {
	conn, err := dialRetry(addr, opts.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("transport: dialing feed %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	conn.SetDeadline(time.Now().Add(opts.timeout()))
	if err := writeHandshake(conn); err != nil {
		conn.Close()
		return nil, &DisconnectError{Addr: addr, Err: err}
	}
	if err := readHandshake(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake with feed %s: %w", addr, err)
	}
	var e enc
	e.varint(int64(since))
	if err := writeFrame(conn, msgSubscribe, e.payload()); err != nil {
		conn.Close()
		return nil, &DisconnectError{Addr: addr, Err: err}
	}
	conn.SetDeadline(time.Time{})
	return &FeedConn{addr: addr, conn: conn}, nil
}

// Recv blocks for the next origin push. It returns io.EOF on a clean
// origin shutdown, a *RemoteError when the origin rejected the
// subscription, and a *DisconnectError when the connection died.
func (f *FeedConn) Recv() (FeedEvent, error) {
	typ, payload, err := readFrame(f.conn)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, ErrTruncated) {
			return FeedEvent{}, &DisconnectError{Addr: f.addr, Err: err}
		}
		return FeedEvent{}, err
	}
	feedEventsRecv.Inc()
	d := newDec(payload)
	switch typ {
	case msgSnapshot:
		ev := FeedEvent{Kind: FeedSnapshot}
		ev.Epoch = int(d.varint())
		ev.Head = ev.Epoch
		ev.Payload = d.bytes()
		return ev, d.err
	case msgDelta:
		ev := FeedEvent{Kind: FeedDelta}
		ev.Head = int(d.varint())
		ev.Epoch = int(d.varint())
		ev.Payload = d.bytes()
		return ev, d.err
	case msgShutdown:
		return FeedEvent{}, io.EOF
	case msgError:
		msg := d.bytes()
		if d.err != nil {
			return FeedEvent{}, d.err
		}
		return FeedEvent{}, &RemoteError{Msg: string(msg)}
	default:
		return FeedEvent{}, fmt.Errorf("transport: unexpected feed frame type %d", typ)
	}
}

// Close tears the subscription down; a blocked Recv returns.
func (f *FeedConn) Close() error { return f.conn.Close() }
