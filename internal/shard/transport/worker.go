package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/netmodel"
	gpsshard "gps/internal/shard"
	"gps/internal/store"
	"gps/internal/trace"
)

// World is a worker's deterministic replica of the scanned universe.
// UniverseAt returns the world as of the given epoch (all churn through
// that epoch applied). It is called with non-decreasing epochs within one
// session, except after a shard is re-queued from a failed worker, when
// the new owner may be asked for an epoch it has already stepped past —
// implementations must support rewinding (regenerating from the base
// parameters is always correct, since the whole world is a pure function
// of spec and epoch).
type World interface {
	UniverseAt(epoch int) (*netmodel.Universe, error)
}

// WorldFactory builds a World from the coordinator's spec blob. The
// coordinator always delivers the caller's base spec wrapped in the
// partition envelope (EncodeWorldSpec: total shard count + this worker's
// owned shards); factories unwrap with DecodeWorldSpec and may build
// only the owned partition of the world. The base spec format is the
// caller's own — cmd/gpsd uses its checkpoint world header, tests encode
// whatever their generator needs. Returning an error rejects the
// coordinator's Init (e.g. a spec for a world this worker cannot or will
// not simulate); a panic inside the factory is contained and rejected
// the same way, so a corrupt spec can never take the worker process
// down.
type WorldFactory func(spec []byte) (World, error)

// ExtendableWorld is an optional World extension for partitioned
// worlds: when a session's spec changes — typically because a shard
// re-queued off a dead worker landed here and the owned-shard set grew —
// the session first offers the new spec to the existing world's Extend.
// A nil return adopts the spec in place (the world materializes just the
// newly owned partition instead of being rebuilt from scratch); an error
// falls back to a fresh factory build.
type ExtendableWorld interface {
	World
	Extend(spec []byte) error
}

// WorkerOptions tunes Serve and Join.
type WorkerOptions struct {
	// Logf receives one line per session event; nil discards.
	Logf func(format string, args ...any)
	// Draining, when set and true, makes the worker leave gracefully:
	// epoch results carry the draining flag, the coordinator migrates
	// this worker's shards away at the next epoch boundary, and the
	// worker refuses new shard offers meanwhile. Serve returns after
	// the current session ends instead of waiting for the next
	// coordinator. The caller flips the bool from its signal handler.
	Draining *atomic.Bool
	// DialTimeout bounds how long Join waits for the coordinator's
	// cluster listener (retried with backoff); 0 selects 15 seconds.
	DialTimeout time.Duration
}

func (o *WorkerOptions) logf(format string, args ...any) {
	if o != nil && o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o *WorkerOptions) draining() bool {
	return o != nil && o.Draining != nil && o.Draining.Load()
}

func (o *WorkerOptions) joinDialTimeout() time.Duration {
	if o == nil || o.DialTimeout <= 0 {
		return 15 * time.Second
	}
	return o.DialTimeout
}

// Serve runs a shard worker: it accepts coordinator sessions on lis (one
// at a time — a worker's shards belong to exactly one coordinator) and
// serves Init/Epoch requests until the listener closes. Request-level
// failures (unknown shard, epoch mismatch, a failed epoch) are reported
// to the coordinator as error frames and the session continues;
// connection-level failures end the session and the worker waits for the
// next coordinator. Closing the listener makes Serve return nil.
func Serve(lis net.Listener, factory WorldFactory, opts *WorkerOptions) error {
	if factory == nil {
		return fmt.Errorf("transport: Serve needs a WorldFactory")
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		// Idle sessions are normal (the coordinator may pause between
		// epochs), so there is no read deadline — aggressive keepalive
		// is what reaps a half-open connection to a crashed or
		// partitioned coordinator, freeing the worker for the next one.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
		}
		workerSessions.Inc()
		s := newSession(factory, opts)
		if err := s.serve(conn); err != nil {
			opts.logf("transport: session from %s ended: %v", conn.RemoteAddr(), err)
		}
		conn.Close()
		// A draining worker leaves the fleet when its session ends —
		// waiting for another coordinator would undo the drain.
		if opts.draining() {
			opts.logf("transport: drained; leaving the fleet")
			return nil
		}
	}
}

// Join registers with a running coordinator's cluster listener (the
// coordinator side of -join): dial, handshake, introduce ourselves with
// msgJoin, then serve the same session protocol a dialed worker serves,
// on the same connection. The coordinator admits the worker at its next
// epoch boundary and live-migrates shards onto it. Join returns nil
// when the coordinator shuts the session down cleanly (including after
// a drain); a version-skewed coordinator surfaces as a *VersionError,
// a refused registration as a *RemoteError.
func Join(addr, id string, factory WorldFactory, opts *WorkerOptions) error {
	if factory == nil {
		return fmt.Errorf("transport: Join needs a WorldFactory")
	}
	conn, err := dialRetry(addr, opts.joinDialTimeout())
	if err != nil {
		return fmt.Errorf("transport: joining coordinator %s: %w", addr, err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	conn.SetDeadline(time.Now().Add(opts.joinDialTimeout()))
	if err := writeHandshake(conn); err != nil {
		return &DisconnectError{Addr: addr, Err: err}
	}
	if err := readHandshake(conn); err != nil {
		return fmt.Errorf("transport: handshake with coordinator %s: %w", addr, err)
	}
	if err := writeFrame(conn, msgJoin, encodeJoin(joinMsg{ID: id})); err != nil {
		return &DisconnectError{Addr: addr, Err: err}
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return &DisconnectError{Addr: addr, Err: err}
	}
	switch typ {
	case msgJoinOK:
	case msgError:
		d := newDec(payload)
		msg := d.bytes()
		if d.err != nil {
			return &DisconnectError{Addr: addr, Err: d.err}
		}
		return &RemoteError{Msg: string(msg)}
	default:
		return &DisconnectError{Addr: addr, Err: fmt.Errorf("frame type %d in join reply, want %d", typ, msgJoinOK)}
	}
	// Registered. Idle stretches between epochs are normal, so clear
	// the registration deadline and rely on keepalive, like Serve.
	conn.SetDeadline(time.Time{})
	workerSessions.Inc()
	opts.logf("transport: joined coordinator %s as %q", addr, id)
	s := newSession(factory, opts)
	if err := s.loop(conn); err != nil {
		opts.logf("transport: session with %s ended: %v", addr, err)
		return err
	}
	return nil
}

// session is one coordinator's tenure on a worker: the shards it assigned
// and the world they scan.
type session struct {
	factory WorldFactory
	opts    *WorkerOptions

	world     World
	worldSpec []byte
	seed      *dataset.Dataset // session seed set, broadcast once by msgSeed
	runners   map[int]*continuous.Runner
	offered   map[int]continuous.Config // migration offers awaiting their msgState
}

func newSession(factory WorldFactory, opts *WorkerOptions) *session {
	return &session{
		factory: factory,
		opts:    opts,
		runners: make(map[int]*continuous.Runner),
		offered: make(map[int]continuous.Config),
	}
}

func (s *session) serve(conn net.Conn) error {
	if err := writeHandshake(conn); err != nil {
		return err
	}
	if err := readHandshake(conn); err != nil {
		return err
	}
	return s.loop(conn)
}

// loop serves framed requests until shutdown or a connection failure.
// Join enters here directly — its handshake happened during
// registration, on the same connection.
func (s *session) loop(conn net.Conn) error {
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, ErrTruncated) {
				return &DisconnectError{Addr: conn.RemoteAddr().String(), Err: err}
			}
			return err
		}
		workerFramesRecv.Inc()
		workerBytesRecv.Add(uint64(len(payload) + frameOverhead))
		switch typ {
		case msgSeed:
			err = s.handleSeed(conn, payload)
		case msgInit:
			err = s.handleInit(conn, payload)
		case msgEpoch:
			err = s.handleEpoch(conn, payload)
		case msgOffer:
			err = s.handleOffer(conn, payload)
		case msgState:
			err = s.handleState(conn, payload)
		case msgShutdown:
			return nil
		default:
			err = s.reject(conn, fmt.Errorf("unexpected frame type %d", typ))
		}
		if err != nil {
			return err
		}
	}
}

// send is writeFrame plus link accounting; every session response goes
// through it.
func (s *session) send(conn net.Conn, typ uint8, payload []byte) error {
	workerFramesSent.Inc()
	workerBytesSent.Add(uint64(len(payload) + frameOverhead))
	return writeFrame(conn, typ, payload)
}

// reject reports a request failure to the coordinator; the session
// continues. Only a conn write failure is returned.
func (s *session) reject(conn net.Conn, cause error) error {
	var e enc
	e.bytes([]byte(cause.Error()))
	return s.send(conn, msgError, e.payload())
}

// buildWorld resolves a changed world spec: an existing extendable world
// gets first refusal (the cheap path — a re-queued shard only grows the
// owned partition), then the factory builds fresh. Both paths contain
// panics: a crafted or corrupt spec must surface as a reject frame, not
// kill the worker process.
func (s *session) buildWorld(spec []byte) (w World, err error) {
	defer func() {
		if r := recover(); r != nil {
			w, err = nil, fmt.Errorf("world build panicked: %v", r)
		}
	}()
	if ew, ok := s.world.(ExtendableWorld); ok {
		extErr := ew.Extend(spec)
		if extErr == nil {
			return ew, nil
		}
		// The world could not adopt the spec in place (different base
		// world, shrunk ownership): rebuild from scratch below. An
		// unexpected refusal here means paying a full-world rebuild the
		// extend path exists to avoid, so the reason must not vanish.
		s.opts.logf("transport: world declined to extend (%v); rebuilding via factory", extErr)
	}
	return s.factory(spec)
}

// handleSeed stores the session's broadcast seed set: it arrives once
// per worker, however many of the worker's shards later reference it.
func (s *session) handleSeed(conn net.Conn, payload []byte) error {
	d := newDec(payload)
	blob := d.bytes()
	if d.err != nil {
		return s.reject(conn, d.err)
	}
	seed, err := store.ReadDatasetBinary(bytes.NewReader(blob))
	if err != nil {
		return s.reject(conn, fmt.Errorf("decoding seed dataset: %w", err))
	}
	s.seed = seed
	return s.send(conn, msgSeedOK, nil)
}

func (s *session) handleInit(conn net.Conn, payload []byte) error {
	m, err := decodeInit(payload)
	if err != nil {
		return s.reject(conn, err)
	}
	if s.world == nil || !bytes.Equal(s.worldSpec, m.WorldSpec) {
		w, err := s.buildWorld(m.WorldSpec)
		if err != nil {
			return s.reject(conn, fmt.Errorf("world spec rejected: %w", err))
		}
		s.world, s.worldSpec = w, m.WorldSpec
	}
	switch m.Mode {
	case initSeedRef:
		if s.seed == nil {
			return s.reject(conn, fmt.Errorf("shard %d references the session seed, but none was broadcast", m.Shard))
		}
		s.runners[m.Shard] = continuous.New(s.seed, m.Cfg)
	case initResume:
		st, err := gpsshard.DecodeState(m.Blob)
		if err != nil {
			return s.reject(conn, err)
		}
		s.runners[m.Shard] = continuous.Resume(st, m.Cfg)
	default:
		return s.reject(conn, fmt.Errorf("unknown init mode %d", m.Mode))
	}
	s.opts.logf("transport: adopted shard %d/%d (%d known services)",
		m.Shard, m.Cfg.ShardCount, len(s.runners[m.Shard].State().Known))
	workerShardsOwned.Set(float64(len(s.runners)))
	return s.send(conn, msgInitOK, encodeShardAck(m.Shard))
}

func (s *session) handleEpoch(conn net.Conn, payload []byte) error {
	shard, epoch, tc, err := decodeEpochReq(payload)
	if err != nil {
		return s.reject(conn, err)
	}
	r, ok := s.runners[shard]
	if !ok {
		return s.reject(conn, fmt.Errorf("shard %d was never assigned to this worker", shard))
	}
	if want := r.State().Epoch + 1; epoch != want {
		return s.reject(conn, fmt.Errorf("shard %d is at epoch %d; cannot run epoch %d (want %d)",
			shard, r.State().Epoch, epoch, want))
	}
	u, err := s.world.UniverseAt(epoch)
	if err != nil {
		return s.reject(conn, fmt.Errorf("advancing world to epoch %d: %w", epoch, err))
	}
	// A trace context on the request is the coordinator's per-shard RPC
	// span: parent the runner's phase spans directly under it, collect
	// everything this trace records here, and ship the batch back on
	// the result so the coordinator stitches one tree. Local log lines
	// emitted meanwhile join the same trace id.
	var col *trace.Collector
	if tc.Valid() {
		col = trace.Default.Collect(tc.TraceID)
		trace.Default.SetCurrentTrace(tc.TraceID)
		r.SetTraceParent(tc)
	}
	_, eerr := r.Epoch(u)
	var spanBlob []byte
	if tc.Valid() {
		r.SetTraceParent(trace.SpanContext{})
		trace.Default.SetCurrentTrace(0)
		spanBlob = trace.EncodeSpans(col.Stop())
	}
	if eerr != nil {
		return s.reject(conn, fmt.Errorf("epoch %d on shard %d: %w", epoch, shard, eerr))
	}
	workerEpochs.Inc()
	blob, err := gpsshard.EncodeState(r.State())
	if err != nil {
		return s.reject(conn, fmt.Errorf("encoding shard %d state: %w", shard, err))
	}
	// The draining flag rides every epoch result: it is how a worker
	// asks the coordinator to migrate its shards away before it leaves.
	return s.send(conn, msgEpochResult, encodeEpochResult(shard, blob, s.opts.draining(), spanBlob))
}

// handleOffer is the first migration leg: the coordinator proposes that
// this worker adopt a shard, shipping the prospective world spec (our
// current owned set plus the offered shard). We build or extend the
// world partition now — the expensive, rejectable part — and ack; the
// shard's state follows in msgState. A draining worker refuses: it is
// on its way out, and accepting would migrate the shard twice.
func (s *session) handleOffer(conn net.Conn, payload []byte) error {
	m, err := decodeOffer(payload)
	if err != nil {
		return s.reject(conn, err)
	}
	if s.opts.draining() {
		return s.reject(conn, fmt.Errorf("shard %d offer refused: worker is draining", m.Shard))
	}
	// Joining the coordinator's migration trace: our accept-side span
	// records how long the world build took on this end of the wire.
	acceptSpan := trace.StartSpan(m.Trace, "migrate.accept", trace.Int("shard", m.Shard))
	if s.world == nil || !bytes.Equal(s.worldSpec, m.WorldSpec) {
		w, err := s.buildWorld(m.WorldSpec)
		if err != nil {
			acceptSpan.FinishErr(err)
			return s.reject(conn, fmt.Errorf("world spec rejected: %w", err))
		}
		s.world, s.worldSpec = w, m.WorldSpec
	}
	s.offered[m.Shard] = m.Cfg
	acceptSpan.Finish()
	s.opts.logf("transport: offered shard %d/%d; world partition ready", m.Shard, m.Cfg.ShardCount)
	return s.send(conn, msgAck, encodeShardAck(m.Shard))
}

// handleState is the second migration leg: the offered shard's current
// state arrives, the worker resumes a runner on it, and from the ack
// onward this worker is the shard's owner.
func (s *session) handleState(conn net.Conn, payload []byte) error {
	sh, blob, tc, err := decodeShardState(payload)
	if err != nil {
		return s.reject(conn, err)
	}
	cfg, ok := s.offered[sh]
	if !ok {
		return s.reject(conn, fmt.Errorf("state for shard %d arrived without a prior offer", sh))
	}
	adoptSpan := trace.StartSpan(tc, "migrate.adopt",
		trace.Int("shard", sh), trace.Int("state_bytes", len(blob)))
	st, err := gpsshard.DecodeState(blob)
	if err != nil {
		adoptSpan.FinishErr(err)
		return s.reject(conn, err)
	}
	delete(s.offered, sh)
	s.runners[sh] = continuous.Resume(st, cfg)
	adoptSpan.Finish()
	workerMigrationsIn.Inc()
	workerShardsOwned.Set(float64(len(s.runners)))
	s.opts.logf("transport: migrated in shard %d at epoch %d (%d known services)",
		sh, st.Epoch, len(st.Known))
	return s.send(conn, msgAck, encodeShardAck(sh))
}

// encodeSeed serializes a seed dataset for broadcast.
func encodeSeed(seed *dataset.Dataset) ([]byte, error) {
	var blob bytes.Buffer
	if _, err := store.WriteDatasetBinary(&blob, seed); err != nil {
		return nil, fmt.Errorf("transport: encoding seed set: %w", err)
	}
	return blob.Bytes(), nil
}
