package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"gps/internal/continuous"
	"gps/internal/features"
	"gps/internal/pipeline"
	"gps/internal/trace"
)

func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello shards")
	if err := writeFrame(&buf, msgEpoch, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil || typ != msgEpoch || !bytes.Equal(got, payload) {
		t.Fatalf("readFrame = (%d, %q, %v); want (%d, %q, nil)", typ, got, err, msgEpoch, payload)
	}
	// A cleanly exhausted stream is io.EOF, not a truncation.
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Errorf("empty stream returned %v; want io.EOF", err)
	}
}

func TestWireTruncatedFrame(t *testing.T) {
	// A header promising 100 payload bytes backed by only 10.
	var buf bytes.Buffer
	hdr := [5]byte{msgInit}
	binary.BigEndian.PutUint32(hdr[1:], 100)
	buf.Write(hdr[:])
	buf.Write(make([]byte, 10))
	if _, _, err := readFrame(&buf); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated payload returned %v; want ErrTruncated", err)
	}

	// A stream cut inside the 5-byte header itself.
	if _, _, err := readFrame(bytes.NewReader(hdr[:3])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated header returned %v; want ErrTruncated", err)
	}
}

func TestWireOversizedLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	hdr := [5]byte{msgEpochResult}
	binary.BigEndian.PutUint32(hdr[1:], maxFrame+1)
	buf.Write(hdr[:])

	_, _, err := readFrame(&buf)
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("oversized length prefix returned %v; want *FrameSizeError", err)
	}
	if fse.Size != maxFrame+1 || fse.Max != maxFrame || fse.Type != msgEpochResult {
		t.Errorf("FrameSizeError = %+v; want size %d max %d type %d", fse, maxFrame+1, maxFrame, msgEpochResult)
	}
}

// An oversized payload must be refused at the sender, before any bytes
// hit the wire: past the u32 range the length prefix would wrap and
// desync the stream.
func TestWireOversizedWriteRefused(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, msgSeed, make([]byte, maxFrame+1))
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("oversized write returned %v; want *FrameSizeError", err)
	}
	if buf.Len() != 0 {
		t.Errorf("refused frame still wrote %d bytes", buf.Len())
	}
}

func TestWireVersionMismatch(t *testing.T) {
	preamble := append([]byte(Magic), Version+1)
	err := readHandshake(bytes.NewReader(preamble))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("future-version preamble returned %v; want *VersionError", err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Errorf("VersionError = %+v; want got %d want %d", ve, Version+1, Version)
	}
}

func TestWireBadMagic(t *testing.T) {
	err := readHandshake(bytes.NewReader([]byte("HTTP1")))
	var me *MagicError
	if !errors.As(err, &me) {
		t.Fatalf("non-transport stream returned %v; want *MagicError", err)
	}
	if !errors.Is(readHandshake(bytes.NewReader([]byte("GP"))), ErrTruncated) {
		t.Error("preamble cut mid-magic did not return ErrTruncated")
	}
}

// A worker that dies between accepting a request and answering it must
// surface as a typed DisconnectError on the coordinator's side.
func TestWireMidStreamDisconnect(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		writeHandshake(conn)
		readHandshake(conn)
		readFrame(conn) // swallow the request...
		conn.Close()    // ...and die without answering
	}()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHandshake(conn); err != nil {
		t.Fatal(err)
	}
	if err := readHandshake(conn); err != nil {
		t.Fatal(err)
	}
	w := &workerLink{addr: lis.Addr().String(), conn: conn, alive: true}
	_, err = w.rpc(5*time.Second, msgEpoch, encodeEpochReq(0, 1, trace.SpanContext{}), msgEpochResult)
	var de *DisconnectError
	if !errors.As(err, &de) {
		t.Fatalf("mid-stream disconnect returned %v; want *DisconnectError", err)
	}
	if de.Addr != lis.Addr().String() {
		t.Errorf("DisconnectError.Addr = %q; want %q", de.Addr, lis.Addr().String())
	}
}

func TestWireConfigRoundTrip(t *testing.T) {
	in := continuous.Config{
		Budget:           12345,
		ReverifyFraction: 0.375,
		MaxStale:         3,
		ShardIndex:       2,
		ShardCount:       4,
		Pipeline: pipeline.Config{
			StepBits:          24,
			StepZero:          true,
			Workers:           1,
			Families:          5,
			Floor:             -1,
			MinSupport:        -1,
			AppKeys:           []features.Key{1, 3, 7},
			Budget:            999,
			Seed:              -42,
			RandomPriorsOrder: true,
			ExactShardCounts:  true,
		},
	}
	var e enc
	encodeConfig(&e, in)
	d := newDec(e.payload())
	out := decodeConfig(d)
	if d.err != nil {
		t.Fatal(d.err)
	}
	if out.Budget != in.Budget || out.ReverifyFraction != in.ReverifyFraction ||
		out.MaxStale != in.MaxStale || out.ShardIndex != in.ShardIndex ||
		out.ShardCount != in.ShardCount {
		t.Errorf("continuous fields did not round-trip: %+v", out)
	}
	op, ip := out.Pipeline, in.Pipeline
	if op.StepBits != ip.StepBits || op.StepZero != ip.StepZero || op.Workers != ip.Workers ||
		op.Families != ip.Families || op.Floor != ip.Floor || op.MinSupport != ip.MinSupport ||
		op.Budget != ip.Budget || op.Seed != ip.Seed ||
		op.RandomPriorsOrder != ip.RandomPriorsOrder || op.ExactShardCounts != ip.ExactShardCounts {
		t.Errorf("pipeline fields did not round-trip: %+v", op)
	}
	if len(op.AppKeys) != len(ip.AppKeys) {
		t.Fatalf("AppKeys did not round-trip: %v", op.AppKeys)
	}
	for i := range ip.AppKeys {
		if op.AppKeys[i] != ip.AppKeys[i] {
			t.Errorf("AppKeys[%d] = %d; want %d", i, op.AppKeys[i], ip.AppKeys[i])
		}
	}
}

func TestWireInitTruncatedPayload(t *testing.T) {
	m := initMsg{Shard: 1, WorldSpec: []byte("spec"), Mode: initResume, Blob: bytes.Repeat([]byte("x"), 64)}
	full := encodeInit(m)
	for _, cut := range []int{0, 1, len(full) / 2, len(full) - 1} {
		if _, err := decodeInit(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("init payload cut to %d/%d bytes returned %v; want ErrTruncated", cut, len(full), err)
		}
	}
	if got, err := decodeInit(full); err != nil || got.Shard != 1 || !bytes.Equal(got.Blob, m.Blob) {
		t.Errorf("full init payload = (%+v, %v)", got, err)
	}
}

// TestWireWorldSpecEnvelope round-trips the partition envelope and pins
// its canonicalization: equal ownership must yield equal bytes whatever
// order the owned set was listed in, because the worker session decides
// "same world?" by comparing spec bytes.
func TestWireWorldSpecEnvelope(t *testing.T) {
	base := []byte("opaque base spec")
	spec := EncodeWorldSpec(base, 8, []int{5, 1, 3})
	gotBase, shards, owned, err := DecodeWorldSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBase, base) || shards != 8 {
		t.Fatalf("DecodeWorldSpec = (%q, %d); want (%q, 8)", gotBase, shards, base)
	}
	if len(owned) != 3 || owned[0] != 1 || owned[1] != 3 || owned[2] != 5 {
		t.Fatalf("owned = %v; want [1 3 5] ascending", owned)
	}
	if !bytes.Equal(spec, EncodeWorldSpec(base, 8, []int{1, 3, 5})) {
		t.Error("ownership order changed the spec bytes; envelope must canonicalize")
	}
	// An empty base (no inner spec) still round-trips.
	if _, _, _, err := DecodeWorldSpec(EncodeWorldSpec(nil, 2, []int{0})); err != nil {
		t.Errorf("empty base spec failed to round-trip: %v", err)
	}
}

// TestWireWorldSpecEnvelopeRejects: every malformed envelope maps to an
// error, never a misparse.
func TestWireWorldSpecEnvelopeRejects(t *testing.T) {
	good := EncodeWorldSpec([]byte("base"), 4, []int{0, 2})
	cases := map[string][]byte{
		"empty":            nil,
		"bad magic":        []byte("GPSX rest"),
		"raw base":         []byte("base"),
		"truncated":        good[:len(good)-3],
		"zero shards":      EncodeWorldSpec([]byte("b"), 0, nil),
		"out-of-range own": append(append([]byte{}, "GPSP"...), 4, 1, 9, 1, 'b'),
		"descending owned": append(append([]byte{}, "GPSP"...), 4, 2, 2, 0, 1, 'b'),
		"owns more than n": append(append([]byte{}, "GPSP"...), 2, 3, 0, 1, 1, 1, 'b'),
	}
	for name, spec := range cases {
		if _, _, _, err := DecodeWorldSpec(spec); err == nil {
			t.Errorf("%s: DecodeWorldSpec accepted %q", name, spec)
		}
	}
	var me *MagicError
	if _, _, _, err := DecodeWorldSpec([]byte("nope-not-a-spec")); !errors.As(err, &me) {
		t.Errorf("foreign bytes returned %v; want *MagicError", err)
	}
}
