package transport

import (
	"bytes"
	"testing"

	"gps/internal/trace"
)

func spanAttr(r trace.SpanRecord, key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTransportTraceStitching runs one distributed epoch and asserts
// the coordinator's flight recorder holds the stitched tree: an epoch
// root, one rpc.epoch child per shard, and under each of those the
// phase spans the worker shipped back on the result frame.
func TestTransportTraceStitching(t *testing.T) {
	const worldSeed, n = 21, 2
	trace.Default.Reset()
	trace.SetEnabled(true)

	var addrs []string
	for i := 0; i < n; i++ {
		addrs = append(addrs, startWorker(t).addr())
	}
	c, err := Dial(addrs, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}

	var root trace.SpanRecord
	roots := 0
	for _, r := range trace.Default.Snapshot() {
		if r.Parent == 0 && r.Name == "epoch" {
			root, roots = r, roots+1
		}
	}
	if roots != 1 {
		t.Fatalf("recorded %d epoch roots; want exactly 1", roots)
	}

	// The test runs worker and coordinator in one process sharing the
	// Default recorder, so shipped-back spans appear both as the worker's
	// local record and as the coordinator's import: dedup by span id.
	spans := make(map[uint64]trace.SpanRecord)
	for _, r := range trace.Default.TraceSpans(root.TraceID) {
		spans[r.SpanID] = r
	}

	rpcShards := make(map[string]uint64) // shard attr -> span id
	for id, r := range spans {
		if r.Name == "rpc.epoch" && r.Parent == root.SpanID {
			rpcShards[spanAttr(r, "shard")] = id
		}
	}
	if len(rpcShards) != n {
		t.Fatalf("epoch root has %d rpc.epoch children (%v); want one per shard (%d)",
			len(rpcShards), rpcShards, n)
	}

	phases := make(map[string]map[string]bool) // shard -> phase names seen
	for _, r := range spans {
		for shard, rpcID := range rpcShards {
			if r.Parent == rpcID {
				if phases[shard] == nil {
					phases[shard] = make(map[string]bool)
				}
				phases[shard][r.Name] = true
			}
		}
	}
	for shard, id := range rpcShards {
		got := phases[shard]
		for _, want := range []string{"reverify", "retrain", "discover", "fold"} {
			if !got[want] {
				t.Errorf("shard %s (rpc span %016x): phase %q missing from stitched tree; got %v",
					shard, id, want, got)
			}
		}
	}
}

// TestTransportTraceContextSkew pins wire compatibility with peers that
// predate the trailing trace-context fields. GPST decoders never
// require payload exhaustion, so the fields are compatible both ways
// without a version bump: an old peer's shorter frames decode with a
// zero context, and a new peer with tracing off emits byte-identical
// old frames.
func TestTransportTraceContextSkew(t *testing.T) {
	// Old coordinator -> new worker: the request ends after the epoch.
	var oldReq enc
	oldReq.varint(3)
	oldReq.varint(9)
	shard, epoch, tc, err := decodeEpochReq(oldReq.payload())
	if err != nil || shard != 3 || epoch != 9 || tc.Valid() {
		t.Fatalf("old epoch request decoded to (%d, %d, %+v, %v); want (3, 9, zero ctx, nil)",
			shard, epoch, tc, err)
	}
	// New coordinator without a trace emits exactly the old frame.
	if !bytes.Equal(encodeEpochReq(3, 9, trace.SpanContext{}), oldReq.payload()) {
		t.Error("untraced epoch request differs from the pre-trace wire format")
	}
	// With a trace the old fields stay a prefix, so an old worker's
	// decoder reads them and ignores the tail.
	traced := encodeEpochReq(3, 9, trace.SpanContext{TraceID: 0xabc, SpanID: 0xdef})
	if !bytes.HasPrefix(traced, oldReq.payload()) {
		t.Error("trace context must trail the v2 epoch-request fields")
	}

	// Old worker -> new coordinator: the result ends after the draining
	// flag; the span batch comes back nil.
	var oldRes enc
	oldRes.varint(1)
	oldRes.bytes([]byte("state"))
	oldRes.bool(true)
	rShard, state, draining, spans, err := decodeEpochResult(oldRes.payload())
	if err != nil || rShard != 1 || string(state) != "state" || !draining || spans != nil {
		t.Fatalf("old epoch result decoded to (%d, %q, %v, %v, %v)", rShard, state, draining, spans, err)
	}
	if !bytes.Equal(encodeEpochResult(1, []byte("state"), true, nil), oldRes.payload()) {
		t.Error("spanless epoch result differs from the pre-trace wire format")
	}

	// Migration legs: offer and state frames without the trailing
	// context decode to a zero context, and zero-context encodes match.
	cfg := testConfig(1).Continuous
	var oldOffer enc
	oldOffer.varint(2)
	encodeConfig(&oldOffer, cfg)
	oldOffer.bytes([]byte("spec"))
	m, err := decodeOffer(oldOffer.payload())
	if err != nil || m.Shard != 2 || m.Trace.Valid() {
		t.Fatalf("old offer decoded to (%+v, %v)", m, err)
	}
	if !bytes.Equal(encodeOffer(offerMsg{Shard: 2, Cfg: cfg, WorldSpec: []byte("spec")}), oldOffer.payload()) {
		t.Error("untraced offer differs from the pre-trace wire format")
	}
	var oldState enc
	oldState.varint(2)
	oldState.bytes([]byte("blob"))
	sShard, blob, stc, err := decodeShardState(oldState.payload())
	if err != nil || sShard != 2 || string(blob) != "blob" || stc.Valid() {
		t.Fatalf("old shard state decoded to (%d, %q, %+v, %v)", sShard, blob, stc, err)
	}
	if !bytes.Equal(encodeShardState(2, []byte("blob"), trace.SpanContext{}), oldState.payload()) {
		t.Error("untraced shard state differs from the pre-trace wire format")
	}

	// End to end with tracing disabled the wire carries exactly the old
	// frames: a full epoch must still run, and record nothing.
	trace.SetEnabled(false)
	defer trace.SetEnabled(true)
	trace.Default.Reset()
	w := startWorker(t)
	c, err := Dial([]string{w.addr()}, testConfig(1), worldSpec(21), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, seedSet := testSeed(21)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch with tracing disabled: %v", err)
	}
	if got := trace.Default.Snapshot(); len(got) != 0 {
		t.Errorf("disabled tracer recorded %d spans", len(got))
	}
}
