// Package transport runs the shard coordinator across process and host
// boundaries. The in-process coordinator (internal/shard) proved the shard
// boundary is serialization-friendly — pure-hash ownership, broadcastable
// seed, per-shard checkpoint blobs — and this package puts a wire on it: a
// coordinator dials N worker processes, broadcasts the seed set, assigns
// shard ownership (addresses map to shards via asndb.ShardOf; shards map
// to workers round-robin), streams per-epoch shard results back, and folds
// them through the same MergeStats/MergeInventories the in-process
// coordinator uses. Because every shard epoch is a deterministic function
// of (state, universe, config), and workers replicate the universe
// deterministically from a world spec, the distributed merged inventory is
// byte-identical to the in-process coordinator's — the contract the CI
// gate diffs.
//
// The wire protocol is deliberately small: a 5-byte preamble ("GPST" plus
// a version byte) in each direction, then length-prefixed frames of
//
//	type u8 | payload length u32 big-endian | payload
//
// Payloads are uvarint/zigzag scalars plus length-prefixed blobs that
// reuse the existing on-disk encodings (store binary datasets for the
// seed, continuous checkpoints for shard state), so the transport inherits
// their compactness and their compatibility story. Every malformed input
// maps to a typed error — MagicError, VersionError, FrameSizeError,
// ErrTruncated — never a silent misparse or a hang.
package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"gps/internal/continuous"
	"gps/internal/features"
	"gps/internal/probmodel"
	"gps/internal/trace"
)

const (
	// Magic opens every transport stream in both directions.
	Magic = "GPST"
	// Version is the wire-protocol version; peers must match exactly.
	// Version 2 added dynamic membership: the join handshake
	// (msgJoin/msgJoinOK), the live-migration envelopes
	// (msgOffer/msgState/msgAck), and the draining flag on epoch
	// results. A v1 worker dialing a v2 join listener (or vice versa)
	// gets a typed VersionError on both sides — the listener logs and
	// keeps accepting, the worker reports and exits — never a misparse.
	Version = 2
	// maxFrame bounds one frame's payload; matches the checkpoint
	// readers' implausibility guards.
	maxFrame = 1 << 28
)

// Frame types.
const (
	msgInit        = 1 // coordinator → worker: adopt a shard (seed or resume)
	msgInitOK      = 2 // worker → coordinator: shard adopted
	msgEpoch       = 3 // coordinator → worker: run one epoch on a shard
	msgEpochResult = 4 // worker → coordinator: post-epoch shard state
	msgShutdown    = 5 // coordinator → worker: close the session cleanly
	msgError       = 6 // worker → coordinator: request failed remotely
	msgSeed        = 7 // coordinator → worker: session seed set, sent once
	msgSeedOK      = 8 // worker → coordinator: seed stored

	// Replication feed frames (feed.go). The feed reuses the GPST
	// preamble and framing; a replica subscribes once, then the origin
	// pushes snapshot/delta frames for as long as the session lives.
	msgSubscribe = 9  // replica → origin: start streaming after an epoch
	msgSnapshot  = 10 // origin → replica: full GPSV inventory (bootstrap)
	msgDelta     = 11 // origin → replica: one GPSE epoch delta

	// Dynamic-membership frames (wire v2). A worker started with -join
	// dials the coordinator's cluster listener and registers with
	// msgJoin; once admitted it serves the same session protocol as a
	// dialed worker, on the same connection. Live migration is a
	// two-phase offer/state exchange, each leg confirmed by msgAck, and
	// the assignment re-points only after both acks — so a rejection or
	// death anywhere leaves the shard on its donor.
	msgJoin   = 12 // worker → coordinator: register with the cluster
	msgJoinOK = 13 // coordinator → worker: registered; session follows
	msgOffer  = 14 // coordinator → worker: prepare to adopt a shard (world spec)
	msgState  = 15 // coordinator → worker: the offered shard's current state
	msgAck    = 16 // worker → coordinator: offer/state leg confirmed
)

// MagicError reports a stream that did not open with the transport magic:
// the peer is not a GPS transport endpoint.
type MagicError struct {
	Got []byte
}

func (e *MagicError) Error() string {
	return fmt.Sprintf("transport: bad stream magic %q, want %q", e.Got, Magic)
}

// VersionError reports a wire-protocol version mismatch between peers.
type VersionError struct {
	Got, Want uint8
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("transport: peer speaks protocol version %d, want %d", e.Got, e.Want)
}

// FrameSizeError reports a length prefix larger than the protocol allows:
// either a corrupt stream or a peer trying to make the reader allocate.
type FrameSizeError struct {
	Type uint8
	Size uint64
	Max  uint64
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("transport: frame type %d declares %d-byte payload, limit %d", e.Type, e.Size, e.Max)
}

// ErrTruncated reports a stream that ended mid-frame (or mid-preamble):
// the peer died or the connection was cut between a length prefix and its
// payload.
var ErrTruncated = errors.New("transport: truncated frame")

// RemoteError carries a failure the worker reported over the wire (an
// msgError frame): the connection is healthy, the request failed.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// DisconnectError reports a connection that failed mid-conversation.
type DisconnectError struct {
	Addr string
	Err  error
}

func (e *DisconnectError) Error() string {
	return fmt.Sprintf("transport: worker %s disconnected: %v", e.Addr, e.Err)
}

func (e *DisconnectError) Unwrap() error { return e.Err }

// WorkerError is the coordinator-level failure type: which worker failed,
// which shard it was serving (-1 when the failure was not tied to one
// shard, e.g. during the seed broadcast), and why. The coordinator
// re-queues the shard to a surviving worker; Epoch returns a WorkerError
// only when no worker is left to take it.
type WorkerError struct {
	Addr  string
	Shard int
	Err   error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("transport: worker %s (shard %d): %v", e.Addr, e.Shard, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// writeHandshake sends this side's stream preamble.
func writeHandshake(w io.Writer) error {
	_, err := w.Write(append([]byte(Magic), Version))
	return err
}

// readHandshake consumes and validates the peer's stream preamble.
func readHandshake(r io.Reader) error {
	buf := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: stream closed during handshake", ErrTruncated)
		}
		return err
	}
	if string(buf[:len(Magic)]) != Magic {
		return &MagicError{Got: buf[:len(Magic)]}
	}
	if buf[len(Magic)] != Version {
		return &VersionError{Got: buf[len(Magic)], Want: Version}
	}
	return nil
}

// writeFrame sends one frame, rejecting oversized payloads locally — a
// clear error at the sender beats a FrameSizeError surfacing as a
// mysterious disconnect on the peer (and past 4 GiB the u32 length
// prefix would silently wrap and desync the stream).
func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	if uint64(len(payload)) > maxFrame {
		return &FrameSizeError{Type: typ, Size: uint64(len(payload)), Max: maxFrame}
	}
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. A stream that ends cleanly between frames
// returns io.EOF; one cut mid-frame returns ErrTruncated; an implausible
// length prefix returns FrameSizeError before any allocation.
func readFrame(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: stream closed mid-header", ErrTruncated)
		}
		return 0, nil, err
	}
	typ := hdr[0]
	size := uint64(binary.BigEndian.Uint32(hdr[1:]))
	if size > maxFrame {
		return typ, nil, &FrameSizeError{Type: typ, Size: size, Max: maxFrame}
	}
	payload := make([]byte, size)
	if n, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return typ, nil, fmt.Errorf("%w: stream closed %d bytes into a %d-byte payload",
				ErrTruncated, n, size)
		}
		return typ, nil, err
	}
	return typ, payload, nil
}

// enc builds frame payloads.
type enc struct {
	buf bytes.Buffer
}

func (e *enc) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	e.buf.Write(b[:binary.PutUvarint(b[:], v)])
}

func (e *enc) varint(v int64) {
	var b [binary.MaxVarintLen64]byte
	e.buf.Write(b[:binary.PutVarint(b[:], v)])
}

func (e *enc) u8(v uint8)      { e.buf.WriteByte(v) }
func (e *enc) f64(v float64)   { e.uvarint(math.Float64bits(v)) }
func (e *enc) bool(v bool)     { e.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *enc) bytes(b []byte)  { e.uvarint(uint64(len(b))); e.buf.Write(b) }
func (e *enc) payload() []byte { return e.buf.Bytes() }

// dec parses frame payloads; the first malformed field poisons every
// subsequent read so call sites check err once at the end.
type dec struct {
	r   *bytes.Reader
	err error
}

func newDec(payload []byte) *dec { return &dec{r: bytes.NewReader(payload)} }

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: payload ended mid-field", ErrTruncated)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.fail()
	}
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.fail()
	}
	return v
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	v, err := d.r.ReadByte()
	if err != nil {
		d.fail()
	}
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.uvarint()) }
func (d *dec) bool() bool   { return d.u8() != 0 }

func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxFrame || n > uint64(d.r.Len()) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	io.ReadFull(d.r, b) // length checked against the remaining payload above
	return b
}

// Optional trailing trace context. Decoders in this package never
// require payload exhaustion, so appending (trace id, span id) to the
// END of an existing payload is wire-compatible in both directions
// without a version bump: a pre-trace v2 peer ignores the extra bytes,
// and a post-trace peer treats their absence as "no trace". The
// encoder emits nothing for an invalid context, so with tracing
// disabled the wire bytes are identical to the pre-trace protocol.
func (e *enc) traceCtx(ctx trace.SpanContext) {
	if !ctx.Valid() {
		return
	}
	e.uvarint(ctx.TraceID)
	e.uvarint(ctx.SpanID)
}

// traceCtx reads an optional trailing trace context. Best-effort by
// contract: absence, truncation, or garbage all yield the zero context
// and never poison the decoder — trace metadata must not fail a frame.
func (d *dec) traceCtx() trace.SpanContext {
	if d.err != nil || d.r.Len() == 0 {
		return trace.SpanContext{}
	}
	tid, err1 := binary.ReadUvarint(d.r)
	sid, err2 := binary.ReadUvarint(d.r)
	if err1 != nil || err2 != nil {
		return trace.SpanContext{}
	}
	return trace.SpanContext{TraceID: tid, SpanID: sid}
}

// optBytes reads an optional trailing length-prefixed blob, nil when
// the payload is already exhausted (pre-trace peer).
func (d *dec) optBytes() []byte {
	if d.err != nil || d.r.Len() == 0 {
		return nil
	}
	return d.bytes()
}

// encodeConfig serializes a per-shard continuous configuration. The field
// order is frozen by Version.
func encodeConfig(e *enc, c continuous.Config) {
	e.uvarint(c.Budget)
	e.f64(c.ReverifyFraction)
	e.varint(int64(c.MaxStale))
	e.varint(int64(c.ShardIndex))
	e.varint(int64(c.ShardCount))
	p := c.Pipeline
	e.u8(p.StepBits)
	e.bool(p.StepZero)
	e.varint(int64(p.Workers))
	e.u8(uint8(p.Families))
	e.f64(p.Floor)
	e.varint(int64(p.MinSupport))
	keys := make([]byte, len(p.AppKeys))
	for i, k := range p.AppKeys {
		keys[i] = byte(k)
	}
	e.bytes(keys)
	e.uvarint(p.Budget)
	e.varint(p.Seed)
	e.bool(p.RandomPriorsOrder)
	e.bool(p.ExactShardCounts)
}

func decodeConfig(d *dec) continuous.Config {
	var c continuous.Config
	c.Budget = d.uvarint()
	c.ReverifyFraction = d.f64()
	c.MaxStale = int(d.varint())
	c.ShardIndex = int(d.varint())
	c.ShardCount = int(d.varint())
	c.Pipeline.StepBits = d.u8()
	c.Pipeline.StepZero = d.bool()
	c.Pipeline.Workers = int(d.varint())
	c.Pipeline.Families = probmodel.FamilySet(d.u8())
	c.Pipeline.Floor = d.f64()
	c.Pipeline.MinSupport = int(d.varint())
	if keys := d.bytes(); len(keys) > 0 {
		c.Pipeline.AppKeys = make([]features.Key, len(keys))
		for i, k := range keys {
			c.Pipeline.AppKeys[i] = features.Key(k)
		}
	}
	c.Pipeline.Budget = d.uvarint()
	c.Pipeline.Seed = d.varint()
	c.Pipeline.RandomPriorsOrder = d.bool()
	c.Pipeline.ExactShardCounts = d.bool()
	return c
}

// Init modes: what the Init blob holds.
const (
	initResume  = 1 // continuous checkpoint; worker adopts it verbatim
	initSeedRef = 2 // empty; seed from the session's msgSeed broadcast
)

// initMsg is the decoded form of an msgInit payload.
type initMsg struct {
	Shard     int
	Cfg       continuous.Config
	WorldSpec []byte
	Mode      uint8
	Blob      []byte
}

func encodeInit(m initMsg) []byte {
	var e enc
	e.varint(int64(m.Shard))
	encodeConfig(&e, m.Cfg)
	e.bytes(m.WorldSpec)
	e.u8(m.Mode)
	e.bytes(m.Blob)
	return e.payload()
}

func decodeInit(payload []byte) (initMsg, error) {
	d := newDec(payload)
	var m initMsg
	m.Shard = int(d.varint())
	m.Cfg = decodeConfig(d)
	m.WorldSpec = d.bytes()
	m.Mode = d.u8()
	m.Blob = d.bytes()
	return m, d.err
}

// encodeEpochReq frames an epoch request; tc, when valid, is the
// coordinator's per-shard RPC span, appended as an optional trailing
// field so the worker can parent its phase spans under it.
func encodeEpochReq(shard, epoch int, tc trace.SpanContext) []byte {
	var e enc
	e.varint(int64(shard))
	e.varint(int64(epoch))
	e.traceCtx(tc)
	return e.payload()
}

func decodeEpochReq(payload []byte) (shard, epoch int, tc trace.SpanContext, err error) {
	d := newDec(payload)
	shard = int(d.varint())
	epoch = int(d.varint())
	tc = d.traceCtx()
	return shard, epoch, tc, d.err
}

// encodeEpochResult carries a shard's post-epoch state back to the
// coordinator. The trailing draining flag (wire v2) is how a worker
// asks to leave: set once the process has been told to drain, it makes
// the coordinator migrate the worker's shards away at the next epoch
// boundary instead of waiting for the connection to die.
// spans is the optional trailing span batch (trace.EncodeSpans): the
// worker's phase spans for this epoch, shipped back so the
// coordinator can stitch them into its own flight recorder. Only sent
// when the request carried a trace context.
func encodeEpochResult(shard int, state []byte, draining bool, spans []byte) []byte {
	var e enc
	e.varint(int64(shard))
	e.bytes(state)
	e.bool(draining)
	if len(spans) > 0 {
		e.bytes(spans)
	}
	return e.payload()
}

func decodeEpochResult(payload []byte) (shard int, state []byte, draining bool, spans []byte, err error) {
	d := newDec(payload)
	shard = int(d.varint())
	state = d.bytes()
	draining = d.bool()
	spans = d.optBytes()
	return shard, state, draining, spans, d.err
}

func encodeShardAck(shard int) []byte {
	var e enc
	e.varint(int64(shard))
	return e.payload()
}

func decodeShardAck(payload []byte) (int, error) {
	d := newDec(payload)
	shard := int(d.varint())
	return shard, d.err
}

// joinMsg is the decoded form of an msgJoin payload: how a -join worker
// introduces itself on the coordinator's cluster listener.
type joinMsg struct {
	ID string // worker's self-chosen cluster identity (-name)
}

func encodeJoin(m joinMsg) []byte {
	var e enc
	e.bytes([]byte(m.ID))
	return e.payload()
}

func decodeJoin(payload []byte) (joinMsg, error) {
	d := newDec(payload)
	var m joinMsg
	m.ID = string(d.bytes())
	return m, d.err
}

// offerMsg is the decoded form of an msgOffer payload: the first leg of
// a live migration. It carries everything the recipient needs to
// prepare for ownership except the state itself — the shard index, its
// runner config, and the prospective world spec (the recipient's
// current owned set plus the offered shard), which the recipient
// builds or extends before acking. The state follows in msgState only
// after the offer is confirmed, so a rejection costs no state bytes.
type offerMsg struct {
	Shard     int
	Cfg       continuous.Config
	WorldSpec []byte
	// Trace is the optional migration span context (trailing wire
	// field): the recipient parents its accept/build spans under it so
	// both sides of the handshake share one trace.
	Trace trace.SpanContext
}

func encodeOffer(m offerMsg) []byte {
	var e enc
	e.varint(int64(m.Shard))
	encodeConfig(&e, m.Cfg)
	e.bytes(m.WorldSpec)
	e.traceCtx(m.Trace)
	return e.payload()
}

func decodeOffer(payload []byte) (offerMsg, error) {
	d := newDec(payload)
	var m offerMsg
	m.Shard = int(d.varint())
	m.Cfg = decodeConfig(d)
	m.WorldSpec = d.bytes()
	m.Trace = d.traceCtx()
	return m, d.err
}

// encodeShardState frames a shard's serialized state for msgState, the
// second migration leg. tc carries the migration span context.
func encodeShardState(shard int, state []byte, tc trace.SpanContext) []byte {
	var e enc
	e.varint(int64(shard))
	e.bytes(state)
	e.traceCtx(tc)
	return e.payload()
}

func decodeShardState(payload []byte) (shard int, state []byte, tc trace.SpanContext, err error) {
	d := newDec(payload)
	shard = int(d.varint())
	state = d.bytes()
	tc = d.traceCtx()
	return shard, state, tc, d.err
}

// World-spec partition envelope. The coordinator never sends a caller's
// world spec raw: it wraps it with the receiving worker's owned-shard
// set ("GPSP" + shard count + owned shard indexes + the base spec), so
// a worker can build only the partition of the world its shards scan —
// ~1/N of the full-world memory — instead of replicating the entire
// universe. The owned set is per worker and grows when a re-queued
// shard lands (the worker sees a changed spec and extends its world;
// see ExtendableWorld in worker.go).
const specMagic = "GPSP"

// maxSpecShards bounds the envelope's shard count against corrupt or
// hostile specs; matches the checkpoint readers' implausibility guard.
const maxSpecShards = 1 << 16

// EncodeWorldSpec wraps a base world spec with the partition envelope:
// the total shard count and the owned shard indexes (canonicalized to
// ascending order, so equal ownership always yields equal bytes).
func EncodeWorldSpec(base []byte, shards int, owned []int) []byte {
	sorted := make([]int, len(owned))
	copy(sorted, owned)
	sort.Ints(sorted)
	var e enc
	e.buf.WriteString(specMagic)
	e.uvarint(uint64(shards))
	e.uvarint(uint64(len(sorted)))
	for _, s := range sorted {
		e.uvarint(uint64(s))
	}
	e.bytes(base)
	return e.payload()
}

// DecodeWorldSpec unwraps EncodeWorldSpec output into the base spec, the
// total shard count, and the owned shard indexes (ascending). Every
// malformed input — wrong magic, implausible counts, out-of-range or
// unsorted indexes, truncation — returns a typed or descriptive error,
// never a misparse.
func DecodeWorldSpec(spec []byte) (base []byte, shards int, owned []int, err error) {
	if len(spec) < len(specMagic) || string(spec[:len(specMagic)]) != specMagic {
		got := spec
		if len(got) > len(specMagic) {
			got = got[:len(specMagic)]
		}
		return nil, 0, nil, &MagicError{Got: got}
	}
	d := newDec(spec[len(specMagic):])
	n := d.uvarint()
	if d.err == nil && (n < 1 || n > maxSpecShards) {
		return nil, 0, nil, fmt.Errorf("transport: world spec declares %d shards, limit %d", n, maxSpecShards)
	}
	k := d.uvarint()
	if d.err == nil && k > n {
		return nil, 0, nil, fmt.Errorf("transport: world spec owns %d of %d shards", k, n)
	}
	owned = make([]int, 0, k)
	for i := uint64(0); i < k && d.err == nil; i++ {
		s := d.uvarint()
		if s >= n {
			return nil, 0, nil, fmt.Errorf("transport: world spec owns shard %d of %d", s, n)
		}
		if len(owned) > 0 && int(s) <= owned[len(owned)-1] {
			return nil, 0, nil, fmt.Errorf("transport: world spec owned-shard list not strictly ascending")
		}
		owned = append(owned, int(s))
	}
	base = d.bytes()
	if d.err != nil {
		return nil, 0, nil, d.err
	}
	return base, int(n), owned, nil
}
