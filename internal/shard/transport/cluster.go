package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"gps/internal/shard"
	"gps/internal/trace"
)

// Dynamic membership: the coordinator half of -join/-leave.
//
// A fleet used to be fixed at Dial: workers that died lost their shards
// to survivors, but nothing could ever take load back. This file makes
// membership elastic. Workers register on a join listener (AcceptJoins)
// and wait in a pending set; an operator or the worker itself can ask
// for a drain (RequestDrain, or the draining flag on epoch results).
// All of it is *applied* in exactly one place — maintain(), called at
// the top of every Epoch — so the assignment only ever changes at an
// epoch boundary, the same all-or-nothing point the dead-worker
// re-queue path uses. Between boundaries the cluster document
// (Status) is the only thing other goroutines may touch, and it is a
// copy under a mutex.
//
// A migration is a two-phase exchange: msgOffer ships the recipient's
// prospective world spec (its owned partition plus the migrating
// shard), and only after the recipient has built or extended that
// partition and acked does msgState ship the shard's current state.
// The assignment re-points after the second ack. Any rejection,
// death, or timeout before that leaves the shard exactly where it was
// — on its donor, whose runner never stopped being valid.

// Worker lifecycle states reported in WorkerStatus.State.
const (
	WorkerPending  = "pending"  // joined, admitted at the next epoch boundary
	WorkerAlive    = "alive"    // serving shards
	WorkerDraining = "draining" // drain requested; shards migrating away
	WorkerDrained  = "drained"  // drained cleanly and disconnected
	WorkerDead     = "dead"     // failed; shards were re-queued
)

// WorkerStatus is one worker's row in the cluster document.
type WorkerStatus struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	State  string `json:"state"`
	Joined bool   `json:"joined"` // arrived via the join listener, not Dial

	ShardCount int   `json:"shard_count"`
	Shards     []int `json:"shards,omitempty"`

	// LoadEWMASeconds sums the EWMA epoch latencies of the worker's
	// shards — the load signal the rebalance policy compares against
	// the cluster median.
	LoadEWMASeconds float64 `json:"load_ewma_seconds"`
}

// ShardStatus is one shard's epoch-latency summary.
type ShardStatus struct {
	Shard       int     `json:"shard"`
	Worker      string  `json:"worker"`
	Epochs      uint64  `json:"epochs"`
	EWMASeconds float64 `json:"ewma_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
}

// MigrationStatus describes one live migration, completed or in flight.
type MigrationStatus struct {
	Shard   int     `json:"shard"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Reason  string  `json:"reason"` // join | drain | rebalance
	Epoch   int     `json:"epoch"`  // last committed epoch when it ran
	Seconds float64 `json:"seconds"`
}

// ClusterStatus is the coordinator's live membership document — what
// GET /v1/cluster serves. Every membership event (join, admission,
// migration, drain, death) rebuilds it.
type ClusterStatus struct {
	Epoch           int     `json:"epoch"`
	Shards          int     `json:"shards"`
	RebalanceFactor float64 `json:"rebalance_factor"`

	Workers        []WorkerStatus    `json:"workers"`
	ShardLatencies []ShardStatus     `json:"shard_latencies"`
	Migrations     []MigrationStatus `json:"migrations,omitempty"`
	InFlight       *MigrationStatus  `json:"in_flight_migration,omitempty"`
}

// maxMigrationHistory bounds the migration list the document retains.
const maxMigrationHistory = 64

// AcceptJoins starts admitting joining workers on lis, which the
// coordinator owns from here on (Close closes it). Each accepted
// connection handshakes, registers with msgJoin, and parks in the
// pending set; the next Epoch admits it and live-migrates shards onto
// it. Version-skewed or malformed joiners are rejected with a typed
// error on their side of the wire and a log line on ours — the
// listener keeps accepting.
func (c *Coordinator) AcceptJoins(lis net.Listener) {
	c.joinLis = lis
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				if !errors.Is(err, net.ErrClosed) {
					c.opts.logf("transport: join listener: %v", err)
				}
				return
			}
			go c.handleJoin(conn)
		}
	}()
}

// handleJoin registers one joining worker. It runs concurrently with
// the epoch loop and touches only mutex-guarded state (the pending set
// and the published document) — never the live fleet.
func (c *Coordinator) handleJoin(conn net.Conn) {
	addr := conn.RemoteAddr().String()
	reject := func(why error) {
		clusterJoinRejects.Inc()
		c.opts.logf("transport: join from %s rejected: %v", addr, why)
		conn.Close()
	}
	conn.SetDeadline(time.Now().Add(c.opts.dialTimeout()))
	if err := writeHandshake(conn); err != nil {
		reject(err)
		return
	}
	if err := readHandshake(conn); err != nil {
		// The usual failure here is version skew: an old worker dialed
		// a new cluster listener (or a fuzzer dialed anything). Our
		// preamble already went out, so the peer holds a typed
		// VersionError of its own; we log, count, and keep accepting.
		reject(err)
		return
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		reject(err)
		return
	}
	if typ != msgJoin {
		reject(fmt.Errorf("frame type %d before registration, want %d", typ, msgJoin))
		return
	}
	m, err := decodeJoin(payload)
	if err != nil {
		reject(err)
		return
	}
	if m.ID == "" {
		m.ID = addr
	}

	c.mu.Lock()
	taken := false
	for _, ws := range c.status.Workers {
		if ws.ID == m.ID && ws.State != WorkerDead && ws.State != WorkerDrained {
			taken = true
			break
		}
	}
	if !taken {
		for _, p := range c.pending {
			if p.id == m.ID {
				taken = true
				break
			}
		}
	}
	if taken {
		c.mu.Unlock()
		var e enc
		e.bytes([]byte(fmt.Sprintf("worker id %q is already in the fleet", m.ID)))
		writeFrame(conn, msgError, e.payload())
		reject(fmt.Errorf("worker id %q already taken", m.ID))
		return
	}
	w := newWorkerLink(m.ID, addr, conn, true)
	c.pending = append(c.pending, w)
	clusterWorkersPending.Set(float64(len(c.pending)))
	c.mu.Unlock()

	if err := writeFrame(conn, msgJoinOK, nil); err != nil {
		c.opts.logf("transport: join from %s: %v", addr, err)
		c.removePending(w)
		conn.Close()
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	conn.SetDeadline(time.Time{}) // per-RPC deadlines take over after admission
	c.opts.logf("transport: worker %q (%s) joined; admitting at the next epoch boundary", m.ID, addr)
}

// removePending drops a registration that failed before admission.
func (c *Coordinator) removePending(w *workerLink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range c.pending {
		if p == w {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	clusterWorkersPending.Set(float64(len(c.pending)))
}

// RequestDrain asks the coordinator to drain worker id at the next
// epoch boundary: migrate its shards to the rest of the fleet, then
// disconnect it. Safe for concurrent use (POST
// /v1/cluster/workers/{id}/drain lands here from HTTP goroutines); it
// only records the request — maintain applies it. Draining a worker
// that owns no shards is a clean removal with zero migrations.
func (c *Coordinator) RequestDrain(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ws := range c.status.Workers {
		if ws.ID != id {
			continue
		}
		switch ws.State {
		case WorkerDead, WorkerDrained:
			return fmt.Errorf("transport: worker %q is already %s", id, ws.State)
		}
		c.drainReq[id] = true
		return nil
	}
	for _, p := range c.pending {
		if p.id == id {
			c.drainReq[id] = true
			return nil
		}
	}
	return fmt.Errorf("transport: unknown worker %q", id)
}

// Status returns a copy of the live cluster document. Workers still in
// the pending set are folded in here (state "pending") rather than at
// publish time, so a join is visible the moment it registers — not one
// epoch later.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.status
	out.Workers = append([]WorkerStatus(nil), c.status.Workers...)
	for i := range out.Workers {
		out.Workers[i].Shards = append([]int(nil), c.status.Workers[i].Shards...)
	}
	for _, p := range c.pending {
		out.Workers = append(out.Workers, WorkerStatus{
			ID: p.id, Addr: p.addr, State: WorkerPending, Joined: true,
		})
	}
	out.ShardLatencies = append([]ShardStatus(nil), c.status.ShardLatencies...)
	out.Migrations = append([]MigrationStatus(nil), c.status.Migrations...)
	if c.status.InFlight != nil {
		in := *c.status.InFlight
		out.InFlight = &in
	}
	return out
}

// maintain applies every membership change queued since the last epoch
// boundary: admit pending workers, drain workers that asked (via the
// API or their epoch-result draining flag), and run the rebalance
// policy. It runs on the epoch-loop thread at the top of Epoch — the
// one place assignments may change — and never fails the epoch: a
// migration that cannot complete leaves its shard on the donor and is
// retried at the next boundary.
func (c *Coordinator) maintain() {
	c.mu.Lock()
	admitted := c.pending
	c.pending = nil
	clusterWorkersPending.Set(0)
	c.mu.Unlock()

	for _, w := range admitted {
		c.workers = append(c.workers, w)
		clusterJoins.Inc()
		trace.StartSpan(c.epochTrace, "join",
			trace.String("worker", w.id), trace.String("addr", w.addr)).Finish()
		c.opts.logf("transport: admitted worker %q (%s); fleet is %d live", w.id, w.addr, c.AliveWorkers())
	}
	if len(admitted) > 0 {
		c.balanceCounts("join")
	}
	c.drainAll()
	c.rebalanceOnce()
	c.publishStatus()
}

// wantsDrainNow reports whether w should drain at this boundary,
// folding the worker-initiated flag with API requests.
func (c *Coordinator) wantsDrainNow(w *workerLink) bool {
	if w.wantsDrain {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainReq[w.id]
}

// drainAll migrates every draining worker's shards away and removes the
// worker from the fleet. A worker whose shards cannot all be placed
// (no live non-draining target, or every target refused) keeps the
// remainder and stays draining — it is retried at the next boundary
// rather than dropped with shards attached.
func (c *Coordinator) drainAll() {
	for wi, w := range c.workers {
		if !w.alive || w.drained || !c.wantsDrainNow(w) {
			continue
		}
		w.draining = true
		drainSpan := trace.StartSpan(c.epochTrace, "drain", trace.String("worker", w.id))
		moved, kept := 0, 0
		for s := 0; s < c.cfg.Shards; s++ {
			if c.assign[s] != wi || !w.alive {
				continue
			}
			if err := c.migrateAnywhere(s, "drain"); err != nil {
				c.opts.logf("transport: drain %q: shard %d stays: %v", w.id, s, err)
				kept++
			} else {
				moved++
			}
		}
		drainSpan.SetAttr(trace.Int("moved", moved), trace.Int("kept", kept))
		drainSpan.Finish()
		if kept > 0 || !w.alive {
			continue
		}
		// All shards placed (or there were none): disconnect cleanly.
		w.conn.SetDeadline(time.Now().Add(time.Second))
		writeFrame(w.conn, msgShutdown, nil)
		w.conn.Close()
		w.alive = false
		w.drained = true
		clusterDrains.Inc()
		c.mu.Lock()
		delete(c.drainReq, w.id)
		c.mu.Unlock()
		c.opts.logf("transport: drained worker %q (%d shards migrated)", w.id, moved)
	}
}

// migrateAnywhere migrates shard s to the least-loaded eligible target,
// falling back through the remaining targets if one refuses or dies.
func (c *Coordinator) migrateAnywhere(s int, reason string) error {
	var last error
	for _, to := range c.migrationTargets(s) {
		if err := c.migrate(s, to, reason); err != nil {
			last = err
			continue
		}
		return nil
	}
	if last == nil {
		last = fmt.Errorf("transport: no eligible migration target for shard %d", s)
	}
	return last
}

// migrationTargets returns eligible recipient worker indexes — alive,
// not draining, not the current owner — least-loaded (by shard count,
// ties to lower index) first.
func (c *Coordinator) migrationTargets(s int) []int {
	counts := make(map[int]int)
	for sh, wi := range c.assign {
		_ = sh
		counts[wi]++
	}
	var out []int
	for wi, w := range c.workers {
		if !w.alive || w.draining || w.wantsDrain || wi == c.assign[s] {
			continue
		}
		out = append(out, wi)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if counts[out[a]] != counts[out[b]] {
			return counts[out[a]] < counts[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}

// balanceCounts levels per-worker shard counts after admissions: while
// the spread between the fullest and emptiest eligible worker exceeds
// one shard, migrate the fullest worker's highest shard to the
// emptiest. On a join this is what moves load onto the new worker;
// the loop is bounded by the shard count and stops at the first
// migration failure (retried at the next boundary).
func (c *Coordinator) balanceCounts(reason string) {
	for guard := 0; guard < c.cfg.Shards; guard++ {
		counts := make(map[int]int)
		for _, wi := range c.assign {
			counts[wi]++
		}
		maxW, minW := -1, -1
		for wi, w := range c.workers {
			if !w.alive || w.draining || w.wantsDrain {
				continue
			}
			if maxW == -1 || counts[wi] > counts[maxW] {
				maxW = wi
			}
			if minW == -1 || counts[wi] < counts[minW] {
				minW = wi
			}
		}
		if maxW == -1 || minW == -1 || counts[maxW]-counts[minW] <= 1 {
			return
		}
		moved := -1
		for s := c.cfg.Shards - 1; s >= 0; s-- {
			if c.assign[s] == maxW {
				moved = s
				break
			}
		}
		if moved == -1 {
			return
		}
		if err := c.migrate(moved, minW, reason); err != nil {
			c.opts.logf("transport: balance: shard %d stays on %q: %v",
				moved, c.workers[maxW].id, err)
			return
		}
	}
}

// rebalanceOnce is the telemetry-driven policy: when the hottest
// worker's load (the sum of its shards' EWMA epoch latencies) exceeds
// the cluster median by Options.RebalanceFactor, its slowest shard
// migrates to the least-loaded worker. At most one migration per
// boundary — the EWMAs need an epoch on the new layout before the
// signal means anything again. Factor 0 disables the policy.
func (c *Coordinator) rebalanceOnce() {
	factor := c.opts.rebalanceFactor()
	if factor <= 0 {
		return
	}
	loads := make(map[int]float64)
	var eligible []int
	for wi, w := range c.workers {
		if w.alive && !w.draining && !w.wantsDrain {
			eligible = append(eligible, wi)
			loads[wi] = 0
		}
	}
	if len(eligible) < 2 {
		return
	}
	for s, wi := range c.assign {
		if _, ok := loads[wi]; ok {
			loads[wi] += c.tel.shardEw[s].Value()
		}
	}
	sorted := append([]int(nil), eligible...)
	sort.Slice(sorted, func(a, b int) bool { return loads[sorted[a]] < loads[sorted[b]] })
	median := loads[sorted[len(sorted)/2]]
	hot, cold := sorted[len(sorted)-1], sorted[0]
	if median <= 0 || loads[hot] <= factor*median || hot == cold {
		return
	}
	// Move the hot worker's slowest shard — but only if it keeps at
	// least one (moving a 1-shard worker's only shard just relocates
	// the hotspot).
	slowest, slowLat, owned := -1, 0.0, 0
	for s, wi := range c.assign {
		if wi != hot {
			continue
		}
		owned++
		if lat := c.tel.shardEw[s].Value(); slowest == -1 || lat > slowLat {
			slowest, slowLat = s, lat
		}
	}
	if owned < 2 || slowest == -1 {
		return
	}
	c.opts.logf("transport: rebalance: worker %q load %.3fs > %.1f× median %.3fs; migrating shard %d to %q",
		c.workers[hot].id, loads[hot], factor, median, slowest, c.workers[cold].id)
	if err := c.migrate(slowest, cold, "rebalance"); err != nil {
		c.opts.logf("transport: rebalance: %v", err)
	}
}

// migrate live-migrates shard s to worker index `to`: offer (the
// recipient builds/extends its world partition), then state (the
// recipient resumes a runner), then — only after both acks — the
// assignment re-points. Every failure path leaves the shard on its
// donor: a rejection (RemoteError) is counted and returned; a link
// failure additionally marks the recipient dead, exactly as if it had
// died serving an epoch.
func (c *Coordinator) migrate(s, to int, reason string) error {
	w := c.workers[to]
	from := c.assign[s]
	start := time.Now()
	// The migration span parents under the in-flight epoch when one is
	// open (migrations land at epoch boundaries, inside Epoch); a
	// boundary-less migration roots its own trace. Its context rides
	// both handshake legs so the recipient's adopt spans join it.
	migSpan := trace.StartSpan(c.epochTrace, "migrate",
		trace.Int("shard", s), trace.String("from", c.workers[from].id),
		trace.String("to", w.id), trace.String("reason", reason))
	c.setInFlight(&MigrationStatus{
		Shard: s, From: c.workers[from].id, To: w.id,
		Reason: reason, Epoch: c.EpochNumber(),
	})
	defer c.setInFlight(nil)

	fail := func(err error) error {
		migrationRejects.Inc()
		if !fatalRPC(err) {
			c.workerFailed(s, w, err)
		}
		migSpan.FinishErr(err)
		return err
	}
	spec := EncodeWorldSpec(c.worldSpec, c.cfg.Shards, append(c.ownedBy(to), s))
	offer := offerMsg{Shard: s, Cfg: c.shardCfg(s), WorldSpec: spec, Trace: migSpan.Context()}
	legSpan := trace.StartSpan(migSpan.Context(), "migrate.offer")
	_, err := w.rpc(c.opts.timeout(), msgOffer, encodeOffer(offer), msgAck)
	legSpan.FinishErr(err)
	if err != nil {
		return fail(fmt.Errorf("transport: shard %d offer to %q: %w", s, w.id, err))
	}
	blob, err := shard.EncodeState(c.states[s])
	if err != nil {
		migrationRejects.Inc()
		migSpan.FinishErr(err)
		return err
	}
	legSpan = trace.StartSpan(migSpan.Context(), "migrate.state",
		trace.Int("state_bytes", len(blob)))
	_, err = w.rpc(c.opts.timeout(), msgState, encodeShardState(s, blob, migSpan.Context()), msgAck)
	legSpan.FinishErr(err)
	if err != nil {
		return fail(fmt.Errorf("transport: shard %d state to %q: %w", s, w.id, err))
	}

	c.assign[s] = to
	c.inited[s] = true
	sec := time.Since(start).Seconds()
	migrationSeconds.Observe(sec)
	switch reason {
	case "join":
		migrationsJoin.Inc()
	case "drain":
		migrationsDrain.Inc()
	default:
		migrationsRebalance.Inc()
	}
	c.recordMigration(MigrationStatus{
		Shard: s, From: c.workers[from].id, To: w.id,
		Reason: reason, Epoch: c.EpochNumber(), Seconds: sec,
	})
	c.opts.logf("transport: migrated shard %d from %q to %q (%s, %.3fs)",
		s, c.workers[from].id, w.id, reason, sec)
	migSpan.Finish()
	return nil
}

// ownedBy returns the shards currently assigned to worker index wi.
func (c *Coordinator) ownedBy(wi int) []int {
	var out []int
	for s, w := range c.assign {
		if w == wi {
			out = append(out, s)
		}
	}
	return out
}

func (c *Coordinator) setInFlight(m *MigrationStatus) {
	c.mu.Lock()
	c.status.InFlight = m
	c.mu.Unlock()
}

func (c *Coordinator) recordMigration(m MigrationStatus) {
	c.mu.Lock()
	c.migrations = append(c.migrations, m)
	if len(c.migrations) > maxMigrationHistory {
		c.migrations = c.migrations[len(c.migrations)-maxMigrationHistory:]
	}
	c.mu.Unlock()
}

// publishStatus rebuilds the cluster document from the live fleet. It
// runs on the epoch-loop thread (the only writer of workers/assign)
// and swaps the document under the mutex for concurrent readers.
func (c *Coordinator) publishStatus() {
	doc := ClusterStatus{
		Epoch:           c.EpochNumber(),
		Shards:          c.cfg.Shards,
		RebalanceFactor: c.opts.rebalanceFactor(),
	}
	alive, draining := 0, 0
	for wi, w := range c.workers {
		ws := WorkerStatus{ID: w.id, Addr: w.addr, Joined: w.joined}
		switch {
		case w.drained:
			ws.State = WorkerDrained
		case !w.alive:
			ws.State = WorkerDead
		case w.draining || w.wantsDrain:
			ws.State = WorkerDraining
			draining++
		default:
			ws.State = WorkerAlive
			alive++
		}
		if w.alive {
			ws.Shards = c.ownedBy(wi)
			ws.ShardCount = len(ws.Shards)
			for _, s := range ws.Shards {
				ws.LoadEWMASeconds += c.tel.shardEw[s].Value()
			}
		}
		w.shardsGauge.Set(float64(ws.ShardCount))
		doc.Workers = append(doc.Workers, ws)
	}
	for s := 0; s < c.cfg.Shards; s++ {
		doc.ShardLatencies = append(doc.ShardLatencies, ShardStatus{
			Shard:       s,
			Worker:      c.workers[c.assign[s]].id,
			Epochs:      c.tel.shardLat[s].Count(),
			EWMASeconds: c.tel.shardEw[s].Value(),
			P50Seconds:  c.tel.shardLat[s].P50(),
			P99Seconds:  c.tel.shardLat[s].P99(),
		})
	}
	clusterWorkersAlive.Set(float64(alive))
	clusterWorkersDraining.Set(float64(draining))

	c.mu.Lock()
	doc.Migrations = append([]MigrationStatus(nil), c.migrations...)
	doc.InFlight = c.status.InFlight
	c.status = doc
	c.mu.Unlock()
}
