package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// testFeedSource is a scripted FeedSource: epochs commit via push, each
// carrying opaque snapshot/delta payloads the test asserts on verbatim.
type testFeedSource struct {
	mu     sync.Mutex
	epoch  int
	snap   []byte
	deltas map[int][]byte // base epoch → delta payload
	keep   int            // history depth; older deltas age out
	notify chan struct{}
	closed bool
}

func newTestFeedSource(keep int) *testFeedSource {
	return &testFeedSource{epoch: -1, keep: keep, deltas: make(map[int][]byte), notify: make(chan struct{})}
}

func (s *testFeedSource) push(epoch int, snap, delta []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch >= 0 && delta != nil {
		s.deltas[s.epoch] = delta
		for base := range s.deltas {
			if base < epoch-s.keep {
				delete(s.deltas, base)
			}
		}
	}
	s.epoch, s.snap = epoch, snap
	close(s.notify)
	s.notify = make(chan struct{})
}

func (s *testFeedSource) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	close(s.notify)
	s.notify = make(chan struct{})
}

func (s *testFeedSource) Head() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func (s *testFeedSource) Snapshot() (int, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch, s.snap
}

func (s *testFeedSource) Delta(from int) ([]byte, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.deltas[from]
	return d, from + 1, ok
}

func (s *testFeedSource) Wait(epoch int, cancel <-chan struct{}) bool {
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return false
		}
		if s.epoch > epoch {
			s.mu.Unlock()
			return true
		}
		ch := s.notify
		s.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			return true
		}
		s.mu.Lock()
	}
}

func startFeed(t *testing.T, src FeedSource) (addr string, shutdown func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeFeed(lis, src, &Options{Timeout: 5 * time.Second}) }()
	return lis.Addr().String(), func() {
		lis.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeFeed: %v", err)
		}
	}
}

func recvEvent(t *testing.T, fc *FeedConn) FeedEvent {
	t.Helper()
	type result struct {
		ev  FeedEvent
		err error
	}
	ch := make(chan result, 1)
	go func() {
		ev, err := fc.Recv()
		ch <- result{ev, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Recv: %v", r.err)
		}
		return r.ev
	case <-time.After(10 * time.Second):
		t.Fatal("Recv never returned")
		return FeedEvent{}
	}
}

// TestFeedBootstrapThenDeltas pins the session shape: a subscriber with
// no epoch bootstraps from a snapshot, then rides deltas as commits
// land, each tagged with the origin head for lag accounting.
func TestFeedBootstrapThenDeltas(t *testing.T) {
	src := newTestFeedSource(8)
	src.push(0, []byte("snap0"), nil)
	addr, shutdown := startFeed(t, src)
	defer shutdown()

	fc, err := DialFeed(addr, -1, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	ev := recvEvent(t, fc)
	if ev.Kind != FeedSnapshot || ev.Epoch != 0 || ev.Head != 0 || !bytes.Equal(ev.Payload, []byte("snap0")) {
		t.Fatalf("first event = %+v; want snapshot of epoch 0", ev)
	}

	src.push(1, []byte("snap1"), []byte("delta0to1"))
	ev = recvEvent(t, fc)
	if ev.Kind != FeedDelta || ev.Epoch != 1 || ev.Head != 1 || !bytes.Equal(ev.Payload, []byte("delta0to1")) {
		t.Fatalf("second event = %+v; want delta to epoch 1", ev)
	}

	src.push(2, []byte("snap2"), []byte("delta1to2"))
	ev = recvEvent(t, fc)
	if ev.Kind != FeedDelta || ev.Epoch != 2 || !bytes.Equal(ev.Payload, []byte("delta1to2")) {
		t.Fatalf("third event = %+v; want delta to epoch 2", ev)
	}
}

// TestFeedResumeInHistory pins that a subscriber holding a retained
// epoch gets deltas immediately — no snapshot, no full transfer.
func TestFeedResumeInHistory(t *testing.T) {
	src := newTestFeedSource(8)
	src.push(0, []byte("snap0"), nil)
	src.push(1, []byte("snap1"), []byte("delta0to1"))
	src.push(2, []byte("snap2"), []byte("delta1to2"))
	addr, shutdown := startFeed(t, src)
	defer shutdown()

	fc, err := DialFeed(addr, 0, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	for want := 1; want <= 2; want++ {
		ev := recvEvent(t, fc)
		if ev.Kind != FeedDelta || ev.Epoch != want {
			t.Fatalf("resume event = %+v; want delta to epoch %d", ev, want)
		}
	}
}

// TestFeedRebootstrapWhenBehind pins the K-epochs-behind contract: a
// subscriber whose epoch aged out of the origin's history is restarted
// from a snapshot instead of a delta chain the origin no longer holds.
func TestFeedRebootstrapWhenBehind(t *testing.T) {
	src := newTestFeedSource(2)
	src.push(0, []byte("snap0"), nil)
	for e := 1; e <= 6; e++ {
		src.push(e, []byte("snap"+string(rune('0'+e))), []byte("delta"))
	}
	addr, shutdown := startFeed(t, src)
	defer shutdown()

	// Epoch 1 fell out of the 2-deep history → snapshot at head.
	fc, err := DialFeed(addr, 1, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	ev := recvEvent(t, fc)
	if ev.Kind != FeedSnapshot || ev.Epoch != 6 {
		t.Fatalf("lagged subscriber got %+v; want a snapshot at epoch 6", ev)
	}
}

// TestFeedConcurrentSubscribers pins that sessions are independent: two
// replicas at different epochs each get their own stream.
func TestFeedConcurrentSubscribers(t *testing.T) {
	src := newTestFeedSource(8)
	src.push(0, []byte("snap0"), nil)
	src.push(1, []byte("snap1"), []byte("delta0to1"))
	addr, shutdown := startFeed(t, src)
	defer shutdown()

	fresh, err := DialFeed(addr, -1, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	caught, err := DialFeed(addr, 0, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer caught.Close()

	if ev := recvEvent(t, fresh); ev.Kind != FeedSnapshot || ev.Epoch != 1 {
		t.Fatalf("fresh subscriber got %+v; want snapshot at 1", ev)
	}
	if ev := recvEvent(t, caught); ev.Kind != FeedDelta || ev.Epoch != 1 {
		t.Fatalf("caught-up subscriber got %+v; want delta to 1", ev)
	}
}

// TestFeedCloseShutsDownCleanly pins the shutdown path: closing the
// source ends every session with a clean EOF, not a cut connection.
func TestFeedCloseShutsDownCleanly(t *testing.T) {
	src := newTestFeedSource(8)
	src.push(0, []byte("snap0"), nil)
	addr, shutdown := startFeed(t, src)
	defer shutdown()

	fc, err := DialFeed(addr, -1, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	recvEvent(t, fc) // the bootstrap snapshot

	src.close()
	if _, err := fc.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("Recv after source close: %v; want io.EOF", err)
	}
}

// TestFeedSubscriberDisconnect pins that a vanished replica does not
// wedge the origin: its session ends and later commits still serve the
// survivors.
func TestFeedSubscriberDisconnect(t *testing.T) {
	src := newTestFeedSource(8)
	src.push(0, []byte("snap0"), nil)
	addr, shutdown := startFeed(t, src)
	defer shutdown()

	gone, err := DialFeed(addr, -1, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	recvEvent(t, gone)
	gone.Close()

	stay, err := DialFeed(addr, 0, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer stay.Close()
	src.push(1, []byte("snap1"), []byte("delta0to1"))
	if ev := recvEvent(t, stay); ev.Kind != FeedDelta || ev.Epoch != 1 {
		t.Fatalf("survivor got %+v; want delta to 1", ev)
	}
}

// TestFeedRejectsNonSubscribe pins the session opening contract.
func TestFeedRejectsNonSubscribe(t *testing.T) {
	src := newTestFeedSource(8)
	addr, shutdown := startFeed(t, src)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeHandshake(conn); err != nil {
		t.Fatal(err)
	}
	if err := readHandshake(conn); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, msgEpoch, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readFrame(conn)
	if err != nil || typ != msgError {
		t.Fatalf("frame %d, err %v; want an msgError reply", typ, err)
	}
}
