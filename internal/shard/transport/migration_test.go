package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// startJoinListener arms a coordinator's cluster listener and returns
// its address.
func startJoinListener(t *testing.T, c *Coordinator) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.AcceptJoins(lis)
	return lis.Addr().String()
}

// waitForWorker polls the cluster document until worker id reaches the
// wanted state.
func waitForWorker(t *testing.T, c *Coordinator, id, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, w := range c.Status().Workers {
			if w.ID == id && w.State == state {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker %q never reached state %q; cluster: %+v", id, state, c.Status().Workers)
}

func findWorker(t *testing.T, c *Coordinator, id string) WorkerStatus {
	t.Helper()
	for _, w := range c.Status().Workers {
		if w.ID == id {
			return w
		}
	}
	t.Fatalf("worker %q not in cluster document", id)
	return WorkerStatus{}
}

// TestMigrationJoinDrainLeaveCycle is the full elastic-membership
// lifecycle at transport level, mirroring the e2e churn phase: a
// 2-worker fleet gains a joiner (live migration onto it), loses a
// dialed worker to an API drain, then loses the joiner to a
// worker-initiated leave — and the 5-epoch result is byte-identical to
// the in-process run, proving every migrated state arrived intact.
func TestMigrationJoinDrainLeaveCycle(t *testing.T) {
	const worldSeed, n, epochs = 21, 4, 5

	joinBase, drainBase := migrationsJoin.Value(), migrationsDrain.Value()

	w0, w1 := startWorker(t), startWorker(t)
	c, err := Dial([]string{w0.addr(), w1.addr()}, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	joinAddr := startJoinListener(t, c)

	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}

	// Join a third worker mid-run. It must show as pending immediately,
	// then be admitted — with shards live-migrated onto it — at the
	// epoch-2 boundary.
	var leaving atomic.Bool
	joinDone := make(chan error, 1)
	go func() {
		joinDone <- Join(joinAddr, "w3", newSimWorld, &WorkerOptions{Draining: &leaving})
	}()
	waitForWorker(t, c, "w3", WorkerPending)

	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 2: %v", err)
	}
	w3 := findWorker(t, c, "w3")
	if w3.State != WorkerAlive || !w3.Joined || w3.ShardCount == 0 {
		t.Fatalf("after admission w3 = %+v; want alive, joined, owning shards", w3)
	}
	if got := migrationsJoin.Value() - joinBase; got == 0 {
		t.Error("join admission completed no migrations")
	}

	// Drain the first dialed worker through the API path; its shards
	// must migrate away at the epoch-3 boundary.
	if err := c.RequestDrain(w0.addr()); err != nil {
		t.Fatalf("RequestDrain: %v", err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 3: %v", err)
	}
	if got := findWorker(t, c, w0.addr()); got.State != WorkerDrained {
		t.Fatalf("after drain %s = %+v; want drained", w0.addr(), got)
	}
	if got := migrationsDrain.Value() - drainBase; got == 0 {
		t.Error("drain completed no migrations")
	}
	for s, wi := range c.Assignment() {
		if c.workers[wi].id == w0.addr() {
			t.Errorf("shard %d still assigned to the drained worker", s)
		}
	}

	// Worker-initiated leave: w3 flips its draining flag, which rides
	// the epoch-4 results; the epoch-5 boundary migrates its shards
	// away and shuts it down, so Join returns nil.
	leaving.Store(true)
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 4: %v", err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 5: %v", err)
	}
	if got := findWorker(t, c, "w3"); got.State != WorkerDrained {
		t.Fatalf("after leave w3 = %+v; want drained", got)
	}
	select {
	case err := <-joinDone:
		if err != nil {
			t.Fatalf("Join returned %v after a clean leave; want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("joined worker did not exit after its drain")
	}

	// Every shard ended on w1, and the run is byte-identical to the
	// in-process reference despite two live migrations per shard path.
	ref := inProcessRun(t, worldSeed, n, epochs)
	if !bytes.Equal(stateBytes(t, c.States()), stateBytes(t, ref)) {
		t.Error("post-churn shard states differ from the in-process run")
	}
	if !bytes.Equal(inventoryBytes(t, c.States()), inventoryBytes(t, ref)) {
		t.Error("post-churn merged inventory differs from the in-process run")
	}
	doc := c.Status()
	if doc.Epoch != epochs || doc.Shards != n {
		t.Errorf("document header %d/%d; want %d/%d", doc.Epoch, doc.Shards, epochs, n)
	}
	if len(doc.Migrations) == 0 {
		t.Error("document retains no migration history")
	}
	if len(doc.ShardLatencies) != n {
		t.Errorf("document has %d shard latency rows; want %d", len(doc.ShardLatencies), n)
	}
}

// TestMigrationOfferRejected: a joiner whose factory refuses the world
// spec rejects the offer; the assignment must be unchanged (the shard
// stays on its donor), the epoch must still succeed, and the run must
// stay byte-identical — a failed migration is invisible to the data.
func TestMigrationOfferRejected(t *testing.T) {
	const worldSeed, n, epochs = 21, 2, 2
	rejectBase := migrationRejects.Value()

	w0 := startWorker(t)
	c, err := Dial([]string{w0.addr()}, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	joinAddr := startJoinListener(t, c)

	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}

	joinDone := make(chan error, 1)
	go func() {
		joinDone <- Join(joinAddr, "refuser", func(spec []byte) (World, error) {
			return nil, errors.New("will not simulate this world")
		}, nil)
	}()
	waitForWorker(t, c, "refuser", WorkerPending)

	before := c.Assignment()
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 2 with a refusing joiner: %v", err)
	}
	after := c.Assignment()
	for s := range before {
		if before[s] != after[s] {
			t.Errorf("shard %d re-pointed %d → %d after a rejected offer", s, before[s], after[s])
		}
	}
	if got := findWorker(t, c, "refuser"); got.ShardCount != 0 {
		t.Errorf("refusing joiner owns %d shards; want 0", got.ShardCount)
	}
	if migrationRejects.Value() == rejectBase {
		t.Error("rejected offer not counted")
	}
	ref := inProcessRun(t, worldSeed, n, epochs)
	if !bytes.Equal(inventoryBytes(t, c.States()), inventoryBytes(t, ref)) {
		t.Error("inventory diverged after a rejected migration")
	}
	c.Close()
	<-joinDone
}

// TestMigrationDeathMidTransfer: a joiner that acks the offer and dies
// before the state leg leaves the shard on its donor — the assignment
// never re-points to a worker that did not confirm the state.
func TestMigrationDeathMidTransfer(t *testing.T) {
	const worldSeed, n = 21, 2

	w0 := startWorker(t)
	c, err := Dial([]string{w0.addr()}, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	joinAddr := startJoinListener(t, c)

	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}

	// A hand-rolled joiner: register, ack the offer, die before the
	// state arrives.
	conn, err := net.Dial("tcp", joinAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHandshake(conn); err != nil {
		t.Fatal(err)
	}
	if err := readHandshake(conn); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, msgJoin, encodeJoin(joinMsg{ID: "flaky"})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readFrame(conn); err != nil || typ != msgJoinOK {
		t.Fatalf("join reply type %d err %v; want %d", typ, err, msgJoinOK)
	}
	waitForWorker(t, c, "flaky", WorkerPending)

	epochDone := make(chan error, 1)
	go func() {
		_, err := c.Epoch()
		epochDone <- err
	}()
	typ, payload, err := readFrame(conn)
	if err != nil || typ != msgOffer {
		t.Fatalf("expected an offer, got type %d err %v", typ, err)
	}
	m, err := decodeOffer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, msgAck, encodeShardAck(m.Shard)); err != nil {
		t.Fatal(err)
	}
	conn.Close() // death between offer ack and state ack

	if err := <-epochDone; err != nil {
		t.Fatalf("epoch 2 after mid-transfer death: %v", err)
	}
	for s, wi := range c.Assignment() {
		if c.workers[wi].id != w0.addr() {
			t.Errorf("shard %d re-pointed off the donor despite the death", s)
		}
	}
	if got := findWorker(t, c, "flaky"); got.State != WorkerDead {
		t.Errorf("mid-transfer casualty state %q; want %q", got.State, WorkerDead)
	}
	// The fleet still works: another epoch on the donor.
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 3: %v", err)
	}
	ref := inProcessRun(t, worldSeed, n, 3)
	if !bytes.Equal(inventoryBytes(t, c.States()), inventoryBytes(t, ref)) {
		t.Error("inventory diverged after a mid-transfer death")
	}
}

// TestMigrationVersionSkewRejected covers both directions of version
// skew on the join path: an old worker dialing a new cluster listener
// is rejected without disturbing the listener, and a new worker dialing
// an old coordinator surfaces a typed *VersionError from Join.
func TestMigrationVersionSkewRejected(t *testing.T) {
	const worldSeed = 21
	rejectBase := clusterJoinRejects.Value()

	w0 := startWorker(t)
	c, err := Dial([]string{w0.addr()}, testConfig(1), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	joinAddr := startJoinListener(t, c)

	// Old worker → new listener: speak version 1. The listener's
	// preamble must still be ours (so the old side can build its own
	// VersionError), and the connection must then close without a
	// msgJoinOK.
	conn, err := net.Dial("tcp", joinAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append([]byte(Magic), 1)); err != nil {
		t.Fatal(err)
	}
	pre := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(conn, pre); err != nil {
		t.Fatal(err)
	}
	if string(pre[:len(Magic)]) != Magic || pre[len(Magic)] != Version {
		t.Fatalf("listener preamble %q/%d; want %q/%d", pre[:len(Magic)], pre[len(Magic)], Magic, Version)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("version-skewed join was answered instead of closed")
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for clusterJoinRejects.Value() == rejectBase && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if clusterJoinRejects.Value() == rejectBase {
		t.Error("version-skewed join not counted as a rejection")
	}

	// The listener survived: a correct-version joiner still registers.
	joinDone := make(chan error, 1)
	go func() {
		joinDone <- Join(joinAddr, "postskew", newSimWorld, nil)
	}()
	waitForWorker(t, c, "postskew", WorkerPending)

	// New worker → old coordinator: a fake listener speaking version 1.
	oldLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer oldLis.Close()
	go func() {
		for {
			oc, err := oldLis.Accept()
			if err != nil {
				return
			}
			oc.Write(append([]byte(Magic), 1))
			io.Copy(io.Discard, oc)
			oc.Close()
		}
	}()
	err = Join(oldLis.Addr().String(), "newworker", newSimWorld, &WorkerOptions{DialTimeout: 2 * time.Second})
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Join against a v1 coordinator returned %v; want *VersionError", err)
	}
	if ve.Got != 1 || ve.Want != Version {
		t.Errorf("VersionError %d/%d; want 1/%d", ve.Got, ve.Want, Version)
	}

	c.Close()
	<-joinDone
}

// TestClusterDrainZeroShardsNoop: draining a worker that owns no shards
// must be a clean removal — zero migrations, assignment untouched, the
// worker disconnected — not an error and not a stall.
func TestClusterDrainZeroShardsNoop(t *testing.T) {
	const worldSeed, n = 21, 2
	drainBase := migrationsDrain.Value()

	// Three workers, two shards: round-robin leaves worker 2 idle.
	w0, w1, w2 := startWorker(t), startWorker(t), startWorker(t)
	c, err := Dial([]string{w0.addr(), w1.addr(), w2.addr()}, testConfig(n), worldSpec(worldSeed), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, seedSet := testSeed(worldSeed)
	if err := c.Seed(seedSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}
	if got := findWorker(t, c, w2.addr()); got.ShardCount != 0 {
		t.Fatalf("worker 2 owns %d shards; want 0 for this test", got.ShardCount)
	}

	if err := c.RequestDrain(w2.addr()); err != nil {
		t.Fatalf("RequestDrain: %v", err)
	}
	before := c.Assignment()
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("epoch 2: %v", err)
	}
	if got := findWorker(t, c, w2.addr()); got.State != WorkerDrained {
		t.Fatalf("idle worker state %q after drain; want %q", got.State, WorkerDrained)
	}
	if got := migrationsDrain.Value() - drainBase; got != 0 {
		t.Errorf("drain of an idle worker performed %d migrations; want 0", got)
	}
	after := c.Assignment()
	for s := range before {
		if before[s] != after[s] {
			t.Errorf("shard %d moved %d → %d during an idle drain", s, before[s], after[s])
		}
	}
	if c.AliveWorkers() != 2 {
		t.Errorf("AliveWorkers = %d; want 2", c.AliveWorkers())
	}

	// Unknown workers are typed errors, not silent no-ops.
	if err := c.RequestDrain("no-such-worker"); err == nil {
		t.Error("RequestDrain accepted an unknown worker id")
	}
}
