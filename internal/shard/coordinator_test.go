package shard

import (
	"bytes"
	"strings"
	"testing"

	"gps/internal/asndb"
	"gps/internal/continuous"
	"gps/internal/netmodel"
	"gps/internal/pipeline"
)

func coordConfig(n int) Config {
	return Config{
		Shards:     n,
		Continuous: continuous.Config{Pipeline: pipeline.Config{Workers: 1, Seed: 7}},
	}
}

func TestCoordinatorEpochLockstep(t *testing.T) {
	u, seedSet := testWorld(t, 11)
	const n = 3
	c := NewCoordinator(seedSet, coordConfig(n))
	if c.Shards() != n {
		t.Fatalf("Shards() = %d; want %d", c.Shards(), n)
	}

	// Seeding partitions the seed set: the merged inventory is exactly
	// the seeded services, disjoint across shards.
	inv, conflicts := c.Inventory()
	if conflicts != 0 {
		t.Errorf("seeded inventory has %d conflicts; want 0", conflicts)
	}
	seeded := make(map[netmodel.Key]bool)
	for _, r := range seedSet.Records {
		seeded[r.Key()] = true
	}
	if len(inv) != len(seeded) {
		t.Errorf("merged seeded inventory holds %d services; seed set had %d distinct", len(inv), len(seeded))
	}

	world := u
	for e := 1; e <= 2; e++ {
		world = netmodel.Churn(world, netmodel.DefaultChurn(100+int64(e)))
		stats, err := c.Epoch(world)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if stats.Epoch != e || c.EpochNumber() != e {
			t.Errorf("epoch counters %d/%d; want %d", stats.Epoch, c.EpochNumber(), e)
		}
		// Merged stats must equal the sum of the per-shard histories.
		var wantKnown, wantVerified int
		for _, st := range c.States() {
			h := st.History[len(st.History)-1]
			wantKnown += h.KnownSize
			wantVerified += h.Verified
		}
		if stats.KnownSize != wantKnown || stats.Verified != wantVerified {
			t.Errorf("epoch %d merged known=%d verified=%d; shard sums %d/%d",
				e, stats.KnownSize, stats.Verified, wantKnown, wantVerified)
		}
	}

	// Every entry lands in the shard that owns its IP, and the merge is
	// conflict-free.
	for i, st := range c.States() {
		for k := range st.Known {
			if asndb.ShardOf(k.IP, n) != i {
				t.Errorf("shard %d tracks %v owned by shard %d", i, k, asndb.ShardOf(k.IP, n))
			}
		}
	}
	if _, conflicts := c.Inventory(); conflicts != 0 {
		t.Errorf("inventory conflicts = %d; want 0 under hash split", conflicts)
	}
}

func TestCoordinatorBudgetSlices(t *testing.T) {
	u, seedSet := testWorld(t, 13)
	const n = 2
	budget := 6 * u.SpaceSize()
	cfg := coordConfig(n)
	cfg.Continuous.Budget = budget
	c := NewCoordinator(seedSet, cfg)
	world := netmodel.Churn(u, netmodel.DefaultChurn(101))
	stats, err := c.Epoch(world)
	if err != nil {
		t.Fatal(err)
	}
	// Each shard respects its slice, so the global epoch spend stays at
	// (or marginally over, from the final in-flight target) the budget.
	if got := stats.Probes(); got > budget+budget/10 {
		t.Errorf("epoch spent %d probes against a global budget of %d", got, budget)
	}
}

func TestMergeInventoriesConflictResolution(t *testing.T) {
	k := netmodel.Key{IP: asndb.MustParseIP("10.0.0.1"), Port: 443}
	stale := &continuous.State{Known: map[netmodel.Key]*continuous.Entry{
		k: {LastSeen: 3, Stale: 2, FirstSeen: 1},
	}}
	fresh := &continuous.State{Known: map[netmodel.Key]*continuous.Entry{
		k: {LastSeen: 5, Stale: 0, FirstSeen: 2},
	}}
	merged, conflicts := MergeInventories([]*continuous.State{stale, fresh})
	if conflicts != 1 {
		t.Errorf("conflicts = %d; want 1", conflicts)
	}
	if got := merged[k]; got.LastSeen != 5 || got.Stale != 0 {
		t.Errorf("conflict kept %+v; want the fresher observation", *got)
	}
	// Order independence: the same winner whichever shard is visited first.
	merged2, _ := MergeInventories([]*continuous.State{fresh, stale})
	if merged2[k].LastSeen != 5 {
		t.Error("conflict resolution depends on shard order")
	}
	// Mutating the merged entry must not corrupt shard state.
	merged[k].Stale = 99
	if fresh.Known[k].Stale == 99 {
		t.Error("merged inventory aliases shard state")
	}
}

func TestShardedCheckpointResume(t *testing.T) {
	u, seedSet := testWorld(t, 17)
	const n = 3
	c := NewCoordinator(seedSet, coordConfig(n))
	world := netmodel.Churn(u, netmodel.DefaultChurn(201))
	if _, err := c.Epoch(world); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c.States()); err != nil {
		t.Fatal(err)
	}
	states, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCoordinator(states, coordConfig(n))
	if err != nil {
		t.Fatal(err)
	}

	// The resumed coordinator must continue exactly where the original
	// would: one more epoch on both yields identical inventories.
	world = netmodel.Churn(world, netmodel.DefaultChurn(202))
	if _, err := c.Epoch(world); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Epoch(world); err != nil {
		t.Fatal(err)
	}
	invA, _ := c.Inventory()
	invB, _ := resumed.Inventory()
	if len(invA) != len(invB) {
		t.Fatalf("resumed inventory %d services; original %d", len(invB), len(invA))
	}
	for k, a := range invA {
		b, ok := invB[k]
		if !ok {
			t.Fatalf("resumed inventory missing %v", k)
		}
		if a.LastSeen != b.LastSeen || a.Stale != b.Stale || a.FirstSeen != b.FirstSeen {
			t.Errorf("entry %v diverged after resume: %+v vs %+v", k, *a, *b)
		}
	}

	// Shard-count mismatch is an error, not a silent re-shard.
	if _, err := ResumeCoordinator(states, coordConfig(n+1)); err == nil {
		t.Error("resuming 3 shard states under 4 shards succeeded")
	}
}

func TestReadCheckpointCorrupt(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("not a checkpoint")); err == nil {
		t.Error("garbage accepted as sharded checkpoint")
	}
	u, seedSet := testWorld(t, 19)
	_ = u
	c := NewCoordinator(seedSet, coordConfig(2))
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c.States()); err != nil {
		t.Fatal(err)
	}
	// Every truncation point must fail loudly, never return partial state.
	data := buf.Bytes()
	for _, cut := range []int{3, 5, 8, len(data) / 2, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		if _, err := ReadCheckpoint(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncated checkpoint (%d of %d bytes) accepted", cut, len(data))
		}
	}
}

func TestEmptyShardsDetected(t *testing.T) {
	_, seedSet := testWorld(t, 23)
	c := NewCoordinator(seedSet, coordConfig(2))
	if empty := c.EmptyShards(); len(empty) != 0 {
		t.Errorf("2-way split of %d seed records left shards %v empty", seedSet.NumServices(), empty)
	}
	// A shard count far beyond the seed size must be detectable: with
	// one seed record, at most one of many shards can be non-empty.
	one := *seedSet
	one.Records = seedSet.Records[:1]
	big := NewCoordinator(&one, coordConfig(8))
	if empty := big.EmptyShards(); len(empty) != 7 {
		t.Errorf("8-way split of 1 record reports %d empty shards; want 7", len(empty))
	}
}

// TestCoordinatorCommitHook verifies the hook fires after each epoch's
// shards all finish, carrying the same merged inventory Inventory()
// reports — the contract the serving layer snapshots on.
func TestCoordinatorCommitHook(t *testing.T) {
	u, seedSet := testWorld(t, 13)
	c := NewCoordinator(seedSet, coordConfig(2))

	var epochs []int
	var hookInv map[netmodel.Key]*continuous.Entry
	c.SetCommitHook(func(epoch int, inv map[netmodel.Key]*continuous.Entry) {
		epochs = append(epochs, epoch)
		hookInv = inv
	})

	world := netmodel.Churn(u, netmodel.DefaultChurn(101))
	if _, err := c.Epoch(world); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || epochs[0] != 1 {
		t.Fatalf("hook saw epochs %v; want [1]", epochs)
	}
	want, _ := c.Inventory()
	if len(hookInv) != len(want) {
		t.Fatalf("hook inventory holds %d entries; Inventory() reports %d", len(hookInv), len(want))
	}
	for k, e := range want {
		g, ok := hookInv[k]
		if !ok || g.FirstSeen != e.FirstSeen || g.LastSeen != e.LastSeen ||
			g.Stale != e.Stale || g.Rec.Key() != e.Rec.Key() {
			t.Fatalf("hook inventory disagrees with Inventory() at %v", k)
		}
	}
}
