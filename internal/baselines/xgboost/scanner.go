package xgboost

import (
	"sort"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/metrics"
	"gps/internal/netmodel"
)

// DefaultSequence is the optimal port scanning order used in §6.4: the 19
// TCP ports Sarabi et al. evaluate, most popular first, so each model can
// use the responses of every earlier scan as features.
var DefaultSequence = []uint16{
	80, 443, 22, 21, 23, 25, 8080, 445, 3306, 993,
	587, 110, 143, 995, 465, 7547, 5432, 8888, 2323,
}

// ScanConfig configures a sequential XGBoost-scanner run.
type ScanConfig struct {
	// Sequence is the port scanning order (DefaultSequence if nil).
	Sequence []uint16
	// Coverage is the per-port fraction of ground-truth services the
	// scanner probes for before moving on (the paper benchmarks at the
	// coverage GPS reaches, ~98.8% on average).
	Coverage float64
	// CoveragePerPort overrides Coverage for specific ports.
	CoveragePerPort map[uint16]float64
	Params          Params
}

// PortOutcome reports the bandwidth accounting for one port, the data
// behind Figures 4a and 4b.
type PortOutcome struct {
	Port uint16
	// PriorProbes is the bandwidth spent scanning every earlier port in
	// the sequence — the cost of collecting this model's input features
	// (Figure 4a's "minimum set of predictive services").
	PriorProbes uint64
	// ScanProbes is the bandwidth spent on this port to reach the
	// coverage target (Figure 4b's "remaining services").
	ScanProbes uint64
	Found      int
	GT         int
}

// Result is a full sequential run.
type Result struct {
	Ports []PortOutcome
	// Curve tracks normalized coverage against cumulative bandwidth
	// (Figure 4c's XGBoost series).
	Curve metrics.Curve
	// TotalProbes is the cumulative bandwidth of every port scan.
	TotalProbes uint64
}

// Universe is the slice of netmodel.Universe the scanner needs.
type Universe interface {
	Responsive(ip asndb.IP, port uint16) bool
	Prefixes() []asndb.Prefix
	SpaceSize() uint64
}

// RunSequential trains and deploys one model per port in sequence order,
// exactly mirroring the paper's description of the XGBoost scanner: each
// model consumes the responses of all previous port scans plus
// network-layer density features, and the scanner probes addresses in
// descending model score until it covers the target fraction of the
// port's ground-truth services.
func RunSequential(u Universe, seedSet, testSet *dataset.Dataset, cfg ScanConfig) *Result {
	seq := cfg.Sequence
	if seq == nil {
		seq = DefaultSequence
	}
	if cfg.Coverage == 0 {
		cfg.Coverage = 0.988
	}
	if cfg.Params.Trees == 0 {
		cfg.Params = DefaultParams()
	}

	gt := metrics.NewGroundTruth(testSet)
	tracker := metrics.NewTracker(gt, u.SpaceSize())
	gtByPort := make(map[uint16]map[asndb.IP]bool)
	for _, r := range testSet.Records {
		m := gtByPort[r.Port]
		if m == nil {
			m = make(map[asndb.IP]bool)
			gtByPort[r.Port] = m
		}
		m[r.IP] = true
	}

	feats := newFeatureSpace(seq, seedSet)
	known := make(map[asndb.IP]uint32) // bitmask over sequence positions
	res := &Result{}
	tracker.Snapshot()

	var prior uint64
	for pos, port := range seq {
		model := feats.train(pos, port, cfg.Params)
		target := cfg.Coverage
		if c, ok := cfg.CoveragePerPort[port]; ok {
			target = c
		}
		gtSet := gtByPort[port]
		want := int(float64(len(gtSet))*target + 0.5)

		probes, found := scanPort(u, model, feats, known, pos, port, gtSet, want, tracker)
		res.Ports = append(res.Ports, PortOutcome{
			Port: port, PriorProbes: prior, ScanProbes: probes,
			Found: found, GT: len(gtSet),
		})
		tracker.Snapshot()
		prior += probes
	}
	res.TotalProbes = prior
	res.Curve = tracker.Curve()
	return res
}

// scanPort probes addresses in descending model score until the coverage
// target is met or the space is exhausted. Returns probes spent and
// ground-truth services found.
func scanPort(u Universe, model *Model, fs *featureSpace, known map[asndb.IP]uint32,
	pos int, port uint16, gtSet map[asndb.IP]bool, want int, tracker *metrics.Tracker) (uint64, int) {

	// Score every known responder individually; their response bitmask
	// distinguishes them from the anonymous crowd.
	type scored struct {
		ip asndb.IP
		s  float64
	}
	respondersList := make([]scored, 0, len(known))
	x := make([]float32, fs.dim())
	for ip, mask := range known {
		fs.fill(x, ip, mask, pos, port)
		respondersList = append(respondersList, scored{ip, model.Score(x)})
	}
	sort.Slice(respondersList, func(i, j int) bool {
		if respondersList[i].s != respondersList[j].s {
			return respondersList[i].s > respondersList[j].s
		}
		return respondersList[i].ip < respondersList[j].ip
	})

	// Unknown addresses share a score per /16 (their features are the
	// network features alone), so rank whole blocks.
	prefixes := u.Prefixes()
	blockScores := make([]scored, len(prefixes))
	for i, pfx := range prefixes {
		fs.fill(x, pfx.Addr, 0, pos, port)
		blockScores[i] = scored{pfx.Addr, model.Score(x)}
	}
	sort.Slice(blockScores, func(i, j int) bool {
		if blockScores[i].s != blockScores[j].s {
			return blockScores[i].s > blockScores[j].s
		}
		return blockScores[i].ip < blockScores[j].ip
	})

	var probes uint64
	found := 0
	probed := make(map[asndb.IP]bool, len(respondersList))
	probe := func(ip asndb.IP) bool {
		probes++
		tracker.Spend(1)
		if u.Responsive(ip, port) {
			if cur, ok := known[ip]; ok {
				known[ip] = cur | 1<<uint(pos)
			} else {
				known[ip] = 1 << uint(pos)
			}
			tracker.Record(netmodel.Key{IP: ip, Port: port})
			if gtSet[ip] {
				found++
			}
			return true
		}
		return false
	}

	for _, r := range respondersList {
		if found >= want {
			return probes, found
		}
		probed[r.ip] = true
		probe(r.ip)
	}
	for _, b := range blockScores {
		pfx := asndb.MustPrefix(b.ip, 16)
		for off := uint32(0); off < 65536; off++ {
			if found >= want {
				return probes, found
			}
			ip := pfx.Addr + asndb.IP(off)
			if probed[ip] {
				continue
			}
			probe(ip)
		}
	}
	return probes, found
}
