package xgboost

import (
	"testing"

	"gps/internal/dataset"
	"gps/internal/netmodel"
)

func setup(t *testing.T) (*netmodel.Universe, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	u := netmodel.Generate(netmodel.TestParams(23))
	full := dataset.SnapshotCensys(u, 100)
	seed, test := full.Split(0.03, 12)
	return u, seed, test
}

func TestRunSequentialShape(t *testing.T) {
	u, seed, test := setup(t)
	seq := []uint16{80, 443, 22, 7547}
	res := RunSequential(u, seed, test, ScanConfig{Sequence: seq, Coverage: 0.9})
	if len(res.Ports) != len(seq) {
		t.Fatalf("got %d port outcomes; want %d", len(res.Ports), len(seq))
	}
	// Prior bandwidth is cumulative: the first port has none, later
	// ports accumulate everything before them.
	if res.Ports[0].PriorProbes != 0 {
		t.Errorf("first port prior probes = %d; want 0", res.Ports[0].PriorProbes)
	}
	var cum uint64
	for i, p := range res.Ports {
		if p.Port != seq[i] {
			t.Errorf("outcome %d port %d; want %d", i, p.Port, seq[i])
		}
		if p.PriorProbes != cum {
			t.Errorf("port %d prior = %d; want %d", p.Port, p.PriorProbes, cum)
		}
		cum += p.ScanProbes
		if p.GT > 0 && p.Found == 0 {
			t.Errorf("port %d found nothing of %d GT services", p.Port, p.GT)
		}
	}
	if res.TotalProbes != cum {
		t.Errorf("TotalProbes = %d; want %d", res.TotalProbes, cum)
	}
	if len(res.Curve) == 0 {
		t.Error("no curve points")
	}
}

func TestRunSequentialReachesCoverage(t *testing.T) {
	u, seed, test := setup(t)
	res := RunSequential(u, seed, test, ScanConfig{Sequence: []uint16{80, 443}, Coverage: 0.85})
	for _, p := range res.Ports {
		if p.GT == 0 {
			continue
		}
		cov := float64(p.Found) / float64(p.GT)
		if cov < 0.85 {
			t.Errorf("port %d coverage %.3f below target (space may be exhausted)", p.Port, cov)
		}
	}
}

func TestRunSequentialBeatsRandomOnLaterPorts(t *testing.T) {
	u, seed, test := setup(t)
	res := RunSequential(u, seed, test, ScanConfig{Sequence: []uint16{80, 443, 22}, Coverage: 0.9})
	// Port 22 (third in sequence) has port-response features available;
	// its probes-per-found must be far better than random probing, which
	// needs space/GT probes per service.
	p := res.Ports[2]
	if p.Found == 0 || p.GT == 0 {
		t.Skip("no SSH services in this split")
	}
	perFound := float64(p.ScanProbes) / float64(p.Found)
	randomPerFound := float64(u.SpaceSize()) / float64(p.GT)
	if perFound > randomPerFound/1.25 {
		t.Errorf("sequential model barely beats random: %.0f vs %.0f probes/service",
			perFound, randomPerFound)
	}
}

func TestCoveragePerPortOverride(t *testing.T) {
	u, seed, test := setup(t)
	res := RunSequential(u, seed, test, ScanConfig{
		Sequence:        []uint16{80},
		Coverage:        0.99,
		CoveragePerPort: map[uint16]float64{80: 0.5},
	})
	p := res.Ports[0]
	if p.GT > 10 {
		cov := float64(p.Found) / float64(p.GT)
		if cov > 0.7 {
			t.Errorf("override ignored: coverage %.2f with 0.5 target", cov)
		}
	}
}
