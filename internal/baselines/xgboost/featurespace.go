package xgboost

import (
	"gps/internal/asndb"
	"gps/internal/dataset"
)

// featureSpace derives model inputs for the sequential scanner. The
// feature vector for predicting port p at sequence position `pos` is:
//
//	[0, pos)   binary: the address responded on sequence[j]
//	pos+0      the /16's seed density on port p
//	pos+1      the /16's overall seed responsiveness
//
// Training instances come from the seed set, where all port responses are
// known; deployment instances use the responses the scanner itself has
// collected so far (the sequential dependency that makes the system
// unparallelizable, per §2).
type featureSpace struct {
	seq     []uint16
	seqPos  map[uint16]int
	seedIPs []asndb.IP
	// seedPorts[i] is the bitmask of sequence ports open on seedIPs[i].
	seedPorts []uint32
	// seedHas[port] marks seed hosts with the port open, for labels.
	seedHas map[uint16]map[asndb.IP]bool
	// subnetPortDensity is the fraction of a /16's seed hosts with a
	// port open, keyed by subnet16<<16 | port; netDensity is the /16's
	// seed host count. These are the network-layer features.
	subnetPortDensity map[uint64]float32
	netDensity        map[asndb.IP]float32
}

func newFeatureSpace(seq []uint16, seedSet *dataset.Dataset) *featureSpace {
	fs := &featureSpace{
		seq:               seq,
		seqPos:            make(map[uint16]int, len(seq)),
		seedHas:           make(map[uint16]map[asndb.IP]bool),
		subnetPortDensity: make(map[uint64]float32),
		netDensity:        make(map[asndb.IP]float32),
	}
	for i, p := range seq {
		fs.seqPos[p] = i
		fs.seedHas[p] = make(map[asndb.IP]bool)
	}

	hostMask := make(map[asndb.IP]uint32)
	subnetHosts := make(map[asndb.IP]int)
	subnetPort := make(map[uint64]int)
	seen := make(map[asndb.IP]bool)
	for _, r := range seedSet.Records {
		if !seen[r.IP] {
			seen[r.IP] = true
			subnetHosts[asndb.SubnetOf(r.IP, 16).Addr]++
			hostMask[r.IP] = 0
		}
		if pos, ok := fs.seqPos[r.Port]; ok {
			hostMask[r.IP] |= 1 << uint(pos)
			fs.seedHas[r.Port][r.IP] = true
			sub := asndb.SubnetOf(r.IP, 16).Addr
			subnetPort[uint64(sub)<<16|uint64(r.Port)]++
		}
	}
	for ip, mask := range hostMask {
		fs.seedIPs = append(fs.seedIPs, ip)
		fs.seedPorts = append(fs.seedPorts, mask)
	}
	for sub, n := range subnetHosts {
		fs.netDensity[sub] = float32(n)
	}
	for key, c := range subnetPort {
		sub := asndb.IP(key >> 16)
		if n := fs.netDensity[sub]; n > 0 {
			fs.subnetPortDensity[key] = float32(c) / n
		}
	}
	return fs
}

func (fs *featureSpace) dim() int { return len(fs.seq) + 2 }

// fill writes the feature vector for an address with known response mask
// `mask`, predicting `port` at sequence position `pos`. Features for
// positions >= pos are zeroed (those scans have not happened yet).
func (fs *featureSpace) fill(x []float32, ip asndb.IP, mask uint32, pos int, port uint16) {
	for j := range fs.seq {
		if j < pos && mask&(1<<uint(j)) != 0 {
			x[j] = 1
		} else {
			x[j] = 0
		}
	}
	sub := asndb.SubnetOf(ip, 16).Addr
	x[len(fs.seq)] = fs.subnetPortDensity[uint64(sub)<<16|uint64(port)]
	x[len(fs.seq)+1] = fs.netDensity[sub]
}

// train builds the matrix for one port from the seed set and fits a model.
func (fs *featureSpace) train(pos int, port uint16, p Params) *Model {
	X := make([][]float32, len(fs.seedIPs))
	y := make([]bool, len(fs.seedIPs))
	has := fs.seedHas[port]
	for i, ip := range fs.seedIPs {
		x := make([]float32, fs.dim())
		fs.fill(x, ip, fs.seedPorts[i], pos, port)
		X[i] = x
		y[i] = has[ip]
	}
	return Train(X, y, p)
}
