// Package xgboost reimplements the paper's machine-learning comparison
// point (§6.4): Sarabi et al.'s "Smart Internet Probing" scanner, built on
// an XGBoost classifier. Their system treats each port as a class, trains
// one gradient-boosted-tree model per port in a fixed scanning sequence,
// and uses responses on previously scanned ports (plus network features)
// as input features. Because their code is closed source, this package
// provides a from-scratch gradient-boosted decision tree learner with
// logistic loss and second-order (Newton) leaf weights — the same
// algorithmic core as XGBoost — plus the sequential per-port scanner
// around it.
package xgboost

import (
	"math"
	"sort"
)

// Params are the boosting hyperparameters.
type Params struct {
	Trees        int     // number of boosting rounds
	Depth        int     // maximum tree depth
	LearningRate float64 // shrinkage per round
	Lambda       float64 // L2 regularization on leaf weights
	Gamma        float64 // minimum gain to split
	MinChild     float64 // minimum hessian sum per child
}

// DefaultParams returns a configuration adequate for the port-prediction
// task: shallow trees, moderate rounds.
func DefaultParams() Params {
	return Params{Trees: 30, Depth: 4, LearningRate: 0.3, Lambda: 1, Gamma: 0, MinChild: 1}
}

// node is one tree node in a flat array; leaves carry the weight.
type node struct {
	feat        int
	thresh      float32
	left, right int32
	leaf        bool
	weight      float64
}

type tree struct{ nodes []node }

func (t *tree) score(x []float32) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.leaf {
			return n.weight
		}
		if x[n.feat] < n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a trained boosted ensemble for binary classification.
type Model struct {
	trees []tree
	base  float64 // initial log-odds
	p     Params
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Train fits a model on a dense feature matrix X (rows are instances) and
// binary labels y. It panics when X is empty or ragged.
func Train(X [][]float32, y []bool, p Params) *Model {
	if len(X) == 0 || len(X) != len(y) {
		panic("xgboost: bad training input")
	}
	nFeat := len(X[0])
	pos := 0
	for _, v := range y {
		if v {
			pos++
		}
	}
	// Initial prediction: the prior log-odds, clamped away from
	// degenerate all-one/all-zero labels.
	prior := (float64(pos) + 0.5) / (float64(len(y)) + 1)
	m := &Model{base: math.Log(prior / (1 - prior)), p: p}

	score := make([]float64, len(X))
	for i := range score {
		score[i] = m.base
	}
	grad := make([]float64, len(X))
	hess := make([]float64, len(X))
	idx := make([]int, len(X))

	for round := 0; round < p.Trees; round++ {
		for i := range X {
			pr := sigmoid(score[i])
			t := 0.0
			if y[i] {
				t = 1
			}
			grad[i] = pr - t
			hess[i] = pr * (1 - pr)
		}
		for i := range idx {
			idx[i] = i
		}
		t := buildTree(X, grad, hess, idx, nFeat, p)
		m.trees = append(m.trees, t)
		for i := range X {
			score[i] += p.LearningRate * t.score(X[i])
		}
	}
	return m
}

// buildTree grows one regression tree greedily on the gradient statistics.
func buildTree(X [][]float32, grad, hess []float64, idx []int, nFeat int, p Params) tree {
	var t tree
	var grow func(idx []int, depth int) int32
	grow = func(idx []int, depth int) int32 {
		var G, H float64
		for _, i := range idx {
			G += grad[i]
			H += hess[i]
		}
		me := int32(len(t.nodes))
		t.nodes = append(t.nodes, node{})
		leafWeight := -G / (H + p.Lambda)

		if depth >= p.Depth || len(idx) < 2 {
			t.nodes[me] = node{leaf: true, weight: leafWeight}
			return me
		}
		bestGain := p.Gamma
		bestFeat, bestThresh := -1, float32(0)
		parentObj := G * G / (H + p.Lambda)
		for f := 0; f < nFeat; f++ {
			for _, thr := range thresholds(X, idx, f) {
				var GL, HL float64
				for _, i := range idx {
					if X[i][f] < thr {
						GL += grad[i]
						HL += hess[i]
					}
				}
				GR, HR := G-GL, H-HL
				if HL < p.MinChild || HR < p.MinChild {
					continue
				}
				gain := 0.5 * (GL*GL/(HL+p.Lambda) + GR*GR/(HR+p.Lambda) - parentObj)
				if gain > bestGain {
					bestGain, bestFeat, bestThresh = gain, f, thr
				}
			}
		}
		if bestFeat < 0 {
			t.nodes[me] = node{leaf: true, weight: leafWeight}
			return me
		}
		var lIdx, rIdx []int
		for _, i := range idx {
			if X[i][bestFeat] < bestThresh {
				lIdx = append(lIdx, i)
			} else {
				rIdx = append(rIdx, i)
			}
		}
		l := grow(lIdx, depth+1)
		r := grow(rIdx, depth+1)
		t.nodes[me] = node{feat: bestFeat, thresh: bestThresh, left: l, right: r}
		return me
	}
	grow(idx, 0)
	return t
}

// thresholds returns up to 15 candidate split points for a feature over
// the instance subset: midpoints between adjacent distinct quantile
// values. Binary features yield the single candidate 0.5.
func thresholds(X [][]float32, idx []int, f int) []float32 {
	const maxSamples = 256
	vals := make([]float32, 0, maxSamples)
	stride := len(idx)/maxSamples + 1
	for i := 0; i < len(idx); i += stride {
		vals = append(vals, X[idx[i]][f])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	uniq := vals[:0]
	for i, v := range vals {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	const maxCand = 15
	var out []float32
	step := (len(uniq) - 1) / maxCand
	if step < 1 {
		step = 1
	}
	for i := 1; i < len(uniq); i += step {
		out = append(out, (uniq[i-1]+uniq[i])/2)
	}
	return out
}

// Score returns the raw log-odds for one instance.
func (m *Model) Score(x []float32) float64 {
	s := m.base
	for i := range m.trees {
		s += m.p.LearningRate * m.trees[i].score(x)
	}
	return s
}

// Predict returns the probability estimate for one instance.
func (m *Model) Predict(x []float32) float64 { return sigmoid(m.Score(x)) }

// NumTrees returns the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }
