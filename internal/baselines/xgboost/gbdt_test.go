package xgboost

import (
	"math/rand"
	"testing"
)

func TestTrainLearnsConjunction(t *testing.T) {
	// y = x0 AND x1: requires at least depth-2 trees.
	rng := rand.New(rand.NewSource(1))
	var X [][]float32
	var y []bool
	for i := 0; i < 400; i++ {
		a, b := float32(rng.Intn(2)), float32(rng.Intn(2))
		X = append(X, []float32{a, b, float32(rng.Intn(2))})
		y = append(y, a == 1 && b == 1)
	}
	m := Train(X, y, DefaultParams())
	correct := 0
	for i := range X {
		pred := m.Predict(X[i]) > 0.5
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.98 {
		t.Errorf("accuracy %.3f on a noiseless conjunction; want ~1", acc)
	}
	if m.NumTrees() != DefaultParams().Trees {
		t.Errorf("NumTrees = %d", m.NumTrees())
	}
}

func TestTrainLearnsContinuousThreshold(t *testing.T) {
	// y = x0 > 0.6: requires continuous split finding.
	rng := rand.New(rand.NewSource(2))
	var X [][]float32
	var y []bool
	for i := 0; i < 500; i++ {
		v := rng.Float32()
		X = append(X, []float32{v})
		y = append(y, v > 0.6)
	}
	m := Train(X, y, DefaultParams())
	correct := 0
	for i := range X {
		if (m.Predict(X[i]) > 0.5) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Errorf("accuracy %.3f on a threshold task", acc)
	}
}

func TestTrainImbalancedBaseRate(t *testing.T) {
	// All-negative labels: the model must predict a low probability
	// everywhere, not blow up.
	X := [][]float32{{0}, {1}, {0}, {1}}
	y := []bool{false, false, false, false}
	m := Train(X, y, DefaultParams())
	if p := m.Predict([]float32{1}); p > 0.4 {
		t.Errorf("all-negative training predicted %f", p)
	}
}

func TestScoreMonotoneInSignal(t *testing.T) {
	// Positive correlation with x0: the positive instance must outscore
	// the negative one.
	rng := rand.New(rand.NewSource(3))
	var X [][]float32
	var y []bool
	for i := 0; i < 300; i++ {
		a := float32(rng.Intn(2))
		X = append(X, []float32{a})
		y = append(y, a == 1 && rng.Float64() < 0.9 || a == 0 && rng.Float64() < 0.1)
	}
	m := Train(X, y, DefaultParams())
	if m.Score([]float32{1}) <= m.Score([]float32{0}) {
		t.Error("score not monotone in the predictive feature")
	}
}

func TestTrainPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Train with empty input did not panic")
		}
	}()
	Train(nil, nil, DefaultParams())
}
