// Package exhaustive implements the paper's two reference probing
// strategies (§6.2):
//
//   - Optimal port-order probing: exhaustively scan the whole address
//     space one port at a time, visiting ports in descending ground-truth
//     popularity. This is the tightest non-predictive baseline — the
//     minimum set of whole-port scans that maximizes services found per
//     probe.
//   - Oracle: a predictor with perfect knowledge that spends exactly one
//     probe per service. This lower-bounds the bandwidth of any scanner.
package exhaustive

import (
	"sort"

	"gps/internal/dataset"
	"gps/internal/metrics"
	"gps/internal/netmodel"
)

// OptimalOrder returns the dataset's ports in descending service count
// (ties toward the lower port), the order an omniscient exhaustive scanner
// would choose.
func OptimalOrder(d *dataset.Dataset) []uint16 {
	pop := d.PortPopulation()
	type pc struct {
		port  uint16
		count int
	}
	var all []pc
	for p, c := range pop {
		if c > 0 {
			all = append(all, pc{uint16(p), c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].port < all[j].port
	})
	out := make([]uint16, len(all))
	for i, e := range all {
		out[i] = e.port
	}
	return out
}

// Curve returns the coverage-vs-bandwidth curve of optimal port-order
// probing against the test dataset: each step costs one full pass over
// the address space (spaceSize probes) and finds every ground-truth
// service on that port.
func Curve(test *dataset.Dataset, spaceSize uint64) metrics.Curve {
	gt := metrics.NewGroundTruth(test)
	tr := metrics.NewTracker(gt, spaceSize)
	byPort := make(map[uint16][]netmodel.Key)
	for _, r := range test.Records {
		byPort[r.Port] = append(byPort[r.Port], r.Key())
	}
	tr.Snapshot()
	for _, port := range OptimalOrder(test) {
		tr.Spend(spaceSize)
		for _, k := range byPort[port] {
			tr.Record(k)
		}
		tr.Snapshot()
	}
	return tr.Curve()
}

// OracleCurve returns the oracle's curve: one probe per ground-truth
// service, sampled at `points` evenly spaced steps. The oracle visits
// ports in optimal order too, so its normalized curve is comparable.
func OracleCurve(test *dataset.Dataset, spaceSize uint64, points int) metrics.Curve {
	gt := metrics.NewGroundTruth(test)
	tr := metrics.NewTracker(gt, spaceSize)
	byPort := make(map[uint16][]netmodel.Key)
	for _, r := range test.Records {
		byPort[r.Port] = append(byPort[r.Port], r.Key())
	}
	var ordered []netmodel.Key
	for _, port := range OptimalOrder(test) {
		ordered = append(ordered, byPort[port]...)
	}
	if points < 1 {
		points = 1
	}
	step := len(ordered) / points
	if step < 1 {
		step = 1
	}
	tr.Snapshot()
	for i, k := range ordered {
		tr.Spend(1)
		tr.Record(k)
		if (i+1)%step == 0 || i == len(ordered)-1 {
			tr.Snapshot()
		}
	}
	return tr.Curve()
}
