package exhaustive

import (
	"testing"

	"gps/internal/dataset"
)

func tiny() *dataset.Dataset {
	return &dataset.Dataset{Records: []dataset.Record{
		{IP: 1, Port: 80}, {IP: 2, Port: 80}, {IP: 3, Port: 80},
		{IP: 1, Port: 443}, {IP: 2, Port: 443},
		{IP: 9, Port: 7777},
	}}
}

func TestOptimalOrder(t *testing.T) {
	order := OptimalOrder(tiny())
	want := []uint16{80, 443, 7777}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %d; want %d", i, order[i], want[i])
		}
	}
}

func TestCurveSemantics(t *testing.T) {
	const space = 1000
	c := Curve(tiny(), space)
	// One initial point plus one per port.
	if len(c) != 4 {
		t.Fatalf("curve has %d points; want 4", len(c))
	}
	// After the first scan: 3/6 services, 1000 probes.
	if c[1].Found != 3 || c[1].Probes != space {
		t.Errorf("point 1 = %+v", c[1])
	}
	// Final: everything found at 3 full scans.
	if f := c.Final(); f.Found != 6 || f.Probes != 3*space || f.FracAll != 1 {
		t.Errorf("final = %+v", f)
	}
	// Normalized after port 80 only: (3/3)/3 = 1/3.
	if got := c[1].FracNorm; got < 0.33 || got > 0.34 {
		t.Errorf("norm after first port = %f", got)
	}
}

func TestOracleCurve(t *testing.T) {
	const space = 1000
	c := OracleCurve(tiny(), space, 3)
	f := c.Final()
	if f.Found != 6 || f.Probes != 6 {
		t.Errorf("oracle final = %+v; want 6 services in 6 probes", f)
	}
	if f.Precision != 1 {
		t.Errorf("oracle precision = %f; want 1", f.Precision)
	}
}

func TestOracleAlwaysCheaper(t *testing.T) {
	ex := Curve(tiny(), 1000)
	or := OracleCurve(tiny(), 1000, 6)
	for _, frac := range []float64{0.3, 0.6, 1.0} {
		eb, okE := ex.BandwidthFor(frac)
		ob, okO := or.BandwidthFor(frac)
		if !okE || !okO {
			t.Fatalf("curves did not reach %.1f", frac)
		}
		if ob > eb {
			t.Errorf("oracle spent more than exhaustive at %.1f: %d vs %d", frac, ob, eb)
		}
	}
}
