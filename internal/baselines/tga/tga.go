// Package tga implements a Target Generation Algorithm baseline in the
// style of Entropy/IP and EIP, adapted to IPv4 as §2 of the GPS paper
// does: the model learns the structure of the addresses known to respond
// on a port (one octet at a time instead of one IPv6 nibble) and generates
// candidate addresses with similar structure. The paper finds TGAs
// recover only ~19% of services because (1) they need a separate model per
// port, (2) most ports lack enough training addresses, and (3) address
// structure alone is weakly predictive on uncommon ports. This package
// reproduces that negative result.
package tga

import (
	"math/rand"
	"sort"

	"gps/internal/asndb"
	"gps/internal/dataset"
)

// Model is a first-order Markov chain over address octets: P(o1) and
// P(o_k | o_{k-1}) for k in 2..4, learned from a port's responsive
// addresses. This captures the same prefix-structure signal Entropy/IP's
// Bayesian network mines, in a compact form.
type Model struct {
	first [256]float64
	trans [3][256][256]float64
}

// TrainPort fits the model on the addresses responsive on one port.
func TrainPort(ips []asndb.IP) *Model {
	m := &Model{}
	var firstCount [256]int
	var transCount [3][256][256]int
	for _, ip := range ips {
		o := [4]byte{ip.Octet(0), ip.Octet(1), ip.Octet(2), ip.Octet(3)}
		firstCount[o[0]]++
		for k := 0; k < 3; k++ {
			transCount[k][o[k]][o[k+1]]++
		}
	}
	n := len(ips)
	for v, c := range firstCount {
		if n > 0 {
			m.first[v] = float64(c) / float64(n)
		}
	}
	for k := 0; k < 3; k++ {
		for prev := 0; prev < 256; prev++ {
			total := 0
			for _, c := range transCount[k][prev] {
				total += c
			}
			if total == 0 {
				continue
			}
			for v, c := range transCount[k][prev] {
				m.trans[k][prev][v] = float64(c) / float64(total)
			}
		}
	}
	return m
}

func sample(dist *[256]float64, rng *rand.Rand) (byte, bool) {
	r := rng.Float64()
	acc := 0.0
	for v := 0; v < 256; v++ {
		acc += dist[v]
		if r < acc {
			return byte(v), true
		}
	}
	return 0, acc > 0
}

// exploreRate is the per-octet probability of sampling uniformly instead
// of from the learned distribution, rising toward the low octets. This
// mirrors Entropy/IP's generation of novel values inside high-entropy
// segments: without it, a chain trained on a handful of addresses can only
// re-emit (recombinations of) its training set.
var exploreRate = [4]float64{0.0, 0.02, 0.15, 0.35}

// Generate produces up to n distinct candidate addresses by sampling the
// octet chain.
func (m *Model) Generate(n int, rng *rand.Rand) []asndb.IP {
	seen := make(map[asndb.IP]bool, n)
	out := make([]asndb.IP, 0, n)
	// Cap attempts: sparse chains may not support n distinct addresses.
	for attempts := 0; attempts < n*8 && len(out) < n; attempts++ {
		var o0 byte
		var ok bool
		o0, ok = sample(&m.first, rng)
		if !ok {
			break
		}
		ip := uint32(o0) << 24
		prev := o0
		valid := true
		for k := 0; k < 3; k++ {
			var v byte
			if rng.Float64() < exploreRate[k+1] {
				v = byte(rng.Intn(256))
			} else {
				v, ok = sample(&m.trans[k][prev], rng)
				if !ok {
					valid = false
					break
				}
			}
			ip |= uint32(v) << (16 - 8*k)
			prev = v
		}
		if !valid {
			continue
		}
		addr := asndb.IP(ip)
		if !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	return out
}

// Universe is the probe target.
type Universe interface {
	Responsive(ip asndb.IP, port uint16) bool
}

// Config parameterizes a TGA evaluation run.
type Config struct {
	// CandidatesPerPort is how many addresses each per-port model
	// generates (the paper uses 1M per port; scale to the universe).
	CandidatesPerPort int
	// MinTrainIPs is the minimum responsive addresses needed to train a
	// port's model; ports below it are skipped, as they would be in a
	// real deployment (Entropy/IP needs ~1,000 addresses).
	MinTrainIPs int
	Seed        int64
}

// Result aggregates the evaluation.
type Result struct {
	PortsTrained int
	PortsSkipped int
	Probes       uint64
	Found        int
	GTTotal      int
	FracAll      float64
	FracNorm     float64
}

// Run trains one model per eligible port on the seed set, generates and
// probes candidates, and measures coverage of the test set.
func Run(u Universe, seedSet, testSet *dataset.Dataset, cfg Config) *Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	seedByPort := make(map[uint16][]asndb.IP)
	for _, r := range seedSet.Records {
		seedByPort[r.Port] = append(seedByPort[r.Port], r.IP)
	}
	gtByPort := make(map[uint16]map[asndb.IP]bool)
	for _, r := range testSet.Records {
		m := gtByPort[r.Port]
		if m == nil {
			m = make(map[asndb.IP]bool)
			gtByPort[r.Port] = m
		}
		m[r.IP] = true
	}

	res := &Result{GTTotal: testSet.NumServices()}
	ports := make([]uint16, 0, len(seedByPort))
	for p := range seedByPort {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })

	var normAcc float64
	normPorts := len(gtByPort)
	for _, port := range ports {
		train := seedByPort[port]
		if len(train) < cfg.MinTrainIPs {
			res.PortsSkipped++
			continue
		}
		res.PortsTrained++
		model := TrainPort(train)
		foundThisPort := 0
		for _, ip := range model.Generate(cfg.CandidatesPerPort, rng) {
			res.Probes++
			if u.Responsive(ip, port) && gtByPort[port][ip] {
				delete(gtByPort[port], ip) // count each service once
				res.Found++
				foundThisPort++
			}
		}
		if gtTotal := foundThisPort + len(gtByPort[port]); gtTotal > 0 {
			normAcc += float64(foundThisPort) / float64(gtTotal)
		}
	}
	if res.GTTotal > 0 {
		res.FracAll = float64(res.Found) / float64(res.GTTotal)
	}
	if normPorts > 0 {
		res.FracNorm = normAcc / float64(normPorts)
	}
	return res
}
