package tga

import (
	"math/rand"
	"testing"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/netmodel"
)

func TestTrainPortAndGenerate(t *testing.T) {
	// Train on a tight /24 population: generated candidates must stay
	// mostly within the learned prefix structure.
	var ips []asndb.IP
	for i := 0; i < 100; i++ {
		ips = append(ips, asndb.MustParseIP("10.1.2.0")+asndb.IP(i))
	}
	m := TrainPort(ips)
	rng := rand.New(rand.NewSource(1))
	cands := m.Generate(200, rng)
	if len(cands) == 0 {
		t.Fatal("no candidates generated")
	}
	inPrefix := 0
	p := asndb.MustPrefix(asndb.MustParseIP("10.1.0.0"), 16)
	for _, c := range cands {
		if p.Contains(c) {
			inPrefix++
		}
	}
	// The exploration noise sends some candidates astray, but the bulk
	// must respect the learned structure.
	if frac := float64(inPrefix) / float64(len(cands)); frac < 0.6 {
		t.Errorf("only %.2f of candidates inside the trained /16", frac)
	}
}

func TestGenerateDedupes(t *testing.T) {
	ips := []asndb.IP{asndb.MustParseIP("10.0.0.1")}
	m := TrainPort(ips)
	rng := rand.New(rand.NewSource(2))
	cands := m.Generate(1000, rng)
	seen := map[asndb.IP]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatal("duplicate candidate emitted")
		}
		seen[c] = true
	}
}

func TestGenerateEmptyModel(t *testing.T) {
	m := TrainPort(nil)
	rng := rand.New(rand.NewSource(3))
	if got := m.Generate(10, rng); len(got) != 0 {
		t.Errorf("untrained model generated %d candidates", len(got))
	}
}

func TestRunUnderperformsGPSShape(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(21))
	full := dataset.SnapshotCensys(u, 100)
	seed, test := full.Split(0.05, 22)
	res := Run(u, seed, test, Config{
		CandidatesPerPort: int(u.SpaceSize() / 50),
		MinTrainIPs:       8,
		Seed:              23,
	})
	if res.PortsTrained == 0 {
		t.Fatal("no ports trained")
	}
	if res.PortsSkipped == 0 {
		t.Error("no ports skipped; the training-data gate should bite")
	}
	if res.FracAll <= 0 {
		t.Error("TGA found nothing at all; the structure signal should recover some services")
	}
	if res.FracAll > 0.5 {
		t.Errorf("TGA found %.2f of services; the paper's point is that TGAs perform poorly", res.FracAll)
	}
	if res.FracNorm >= res.FracAll {
		t.Error("TGA normalized coverage should trail overall coverage (it only finds dense ports)")
	}
}
