package recommender

import (
	"testing"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/netmodel"
)

func setup(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	u := netmodel.Generate(netmodel.TestParams(31))
	full := dataset.SnapshotLZR(u, 0.5, 32)
	seed, test := full.Split(0.1, 33)
	eligible := seed.EligiblePorts(2)
	return seed.FilterPorts(eligible), test.FilterPorts(eligible)
}

func TestTrainAndRecommend(t *testing.T) {
	seed, _ := setup(t)
	cfg := DefaultConfig(34)
	cfg.Epochs = 3
	m := Train(seed, cfg)

	// Recommendations for a seed IP must rank its subnet's common ports
	// near the top: take any seed host and check its actual ports'
	// ranks beat the median.
	r := seed.Records[0]
	recs := m.Recommend(r.IP, r.ASN, 50)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	rank := -1
	for i, p := range recs {
		if p == r.Port {
			rank = i
			break
		}
	}
	if rank < 0 {
		t.Logf("warning: known port %d not in top-50 (model is weak by design)", r.Port)
	}
	// Determinism: same input, same output.
	again := m.Recommend(r.IP, r.ASN, 50)
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatal("Recommend not deterministic")
		}
	}
}

func TestEvaluateMetrics(t *testing.T) {
	seed, test := setup(t)
	cfg := DefaultConfig(35)
	cfg.Epochs = 3
	cfg.TopK = 5
	m := Train(seed, cfg)
	res := Evaluate(m, test)
	if res.GTTotal != test.NumServices() {
		t.Errorf("GTTotal = %d; want %d", res.GTTotal, test.NumServices())
	}
	if res.FracAll < 0 || res.FracAll > 1 || res.FracNorm < 0 || res.FracNorm > 1 {
		t.Errorf("fractions out of range: %f %f", res.FracAll, res.FracNorm)
	}
	if res.Probes == 0 {
		t.Error("no probes counted")
	}
	// With TopK=5 of a much larger port vocabulary the recommender must
	// leave plenty undiscovered — the Appendix A negative result.
	if res.FracNorm > 0.6 {
		t.Errorf("recommender normalized coverage %.2f suspiciously high", res.FracNorm)
	}
}

func TestColdStartUsesFeatures(t *testing.T) {
	seed, _ := setup(t)
	cfg := DefaultConfig(36)
	cfg.Epochs = 3
	m := Train(seed, cfg)
	// An IP never seen in training, but in a seed subnet: must still
	// produce ranked output through shared subnet/ASN features.
	r := seed.Records[0]
	unseen := r.IP ^ 1
	recs := m.Recommend(unseen, r.ASN, 10)
	if len(recs) != 10 {
		t.Fatalf("cold-start recommendations = %d", len(recs))
	}
	// And an IP with completely unknown features falls back to biases.
	recs2 := m.Recommend(asndb.MustParseIP("203.0.113.7"), 65000, 10)
	if len(recs2) != 10 {
		t.Fatal("unknown-feature recommendation failed")
	}
}
