// Package recommender implements the hybrid recommendation-system baseline
// of Appendix A: a LightFM-style matrix factorization model that treats IP
// addresses as users, ports as items, and learns latent embeddings as sums
// of feature embeddings (so unseen test IPs are scored through their
// network features — the cold-start path). Trained with a BPR-style
// pairwise ranking loss over (IP, port) positives with sampled negatives.
//
// The paper finds this approach caps out at ~47% of all services and ~1.5%
// of normalized services because recommenders cannot attach features to
// the (IP, port) *interaction*, which is where GPS's application-layer
// signal lives. This package reproduces that negative result.
package recommender

import (
	"math"
	"math/rand"
	"sort"

	"gps/internal/asndb"
	"gps/internal/dataset"
)

// Config are the model hyperparameters.
type Config struct {
	Dim     int     // embedding dimensionality
	Epochs  int     // training passes over positives
	LR      float64 // SGD learning rate
	Reg     float64 // L2 regularization
	TopK    int     // ports recommended per IP at evaluation
	Seed    int64
	Workers int // unused; training is inherently sequential SGD
}

// DefaultConfig mirrors the appendix's setup: 100 recommendations per IP.
func DefaultConfig(seed int64) Config {
	return Config{Dim: 16, Epochs: 8, LR: 0.05, Reg: 1e-5, TopK: 100, Seed: seed}
}

// userFeatures derives the feature tokens of an IP: its /16, /20 and ASN,
// exactly the network-layer features Appendix A experiments with.
func userFeatures(ip asndb.IP, asn asndb.ASN) []string {
	return []string{
		"sub16:" + asndb.SubnetOf(ip, 16).String(),
		"sub20:" + asndb.SubnetOf(ip, 20).String(),
		"asn:" + asn.String(),
	}
}

// iana is a tiny registry of IANA-assigned ports used for the binary item
// feature the appendix describes.
var iana = map[uint16]bool{
	21: true, 22: true, 23: true, 25: true, 53: true, 80: true, 110: true,
	119: true, 143: true, 443: true, 445: true, 465: true, 554: true,
	587: true, 623: true, 993: true, 995: true, 1433: true, 1723: true,
	3306: true, 3389: true, 5432: true, 5900: true, 8080: true, 11211: true,
}

// Model is the trained factorization model.
type Model struct {
	cfg      Config
	featIdx  map[string]int
	featEmb  [][]float64 // user-side feature embeddings
	itemEmb  [][]float64 // per-port identity embeddings
	itemBias []float64
	assigned []float64 // embedding for the "IANA assigned" item feature
	ports    []uint16  // ports seen at training, the candidate set
}

// Train fits the model on the seed set's (IP, port) positives.
func Train(seedSet *dataset.Dataset, cfg Config) *Model {
	if cfg.Dim == 0 {
		cfg = DefaultConfig(cfg.Seed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg, featIdx: make(map[string]int)}

	// Collect vocabulary: user features and ports.
	type pos struct {
		feats []int
		port  int // index into m.ports
	}
	portIdx := make(map[uint16]int)
	var positives []pos
	for _, r := range seedSet.Records {
		pi, ok := portIdx[r.Port]
		if !ok {
			pi = len(m.ports)
			portIdx[r.Port] = pi
			m.ports = append(m.ports, r.Port)
		}
		var fidx []int
		for _, f := range userFeatures(r.IP, r.ASN) {
			id, ok := m.featIdx[f]
			if !ok {
				id = len(m.featIdx)
				m.featIdx[f] = id
			}
			fidx = append(fidx, id)
		}
		positives = append(positives, pos{feats: fidx, port: pi})
	}

	initVec := func() []float64 {
		v := make([]float64, cfg.Dim)
		for i := range v {
			v[i] = (rng.Float64() - 0.5) / float64(cfg.Dim)
		}
		return v
	}
	m.featEmb = make([][]float64, len(m.featIdx))
	for i := range m.featEmb {
		m.featEmb[i] = initVec()
	}
	m.itemEmb = make([][]float64, len(m.ports))
	for i := range m.itemEmb {
		m.itemEmb[i] = initVec()
	}
	m.itemBias = make([]float64, len(m.ports))
	m.assigned = initVec()

	userVec := make([]float64, cfg.Dim)
	grad := make([]float64, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(positives), func(i, j int) { positives[i], positives[j] = positives[j], positives[i] })
		for _, p := range positives {
			m.userInto(userVec, p.feats)
			neg := rng.Intn(len(m.ports))
			if neg == p.port {
				continue
			}
			sPos := m.scoreIdx(userVec, p.port)
			sNeg := m.scoreIdx(userVec, neg)
			// BPR: maximize sigma(sPos - sNeg).
			z := 1 / (1 + math.Exp(sPos-sNeg)) // d loss / d (sPos - sNeg), negated
			ip, in := m.itemEmb[p.port], m.itemEmb[neg]
			for d := 0; d < cfg.Dim; d++ {
				grad[d] = z * (m.itemVecAt(p.port, d) - m.itemVecAt(neg, d))
			}
			for d := 0; d < cfg.Dim; d++ {
				du := grad[d]
				di := z * userVec[d]
				ip[d] += cfg.LR * (di - cfg.Reg*ip[d])
				in[d] += cfg.LR * (-di - cfg.Reg*in[d])
				for _, f := range p.feats {
					m.featEmb[f][d] += cfg.LR * (du - cfg.Reg*m.featEmb[f][d])
				}
			}
			m.itemBias[p.port] += cfg.LR * z
			m.itemBias[neg] -= cfg.LR * z
		}
	}
	return m
}

// itemVecAt returns dimension d of an item's effective embedding (identity
// plus the assigned-flag feature embedding).
func (m *Model) itemVecAt(pi, d int) float64 {
	v := m.itemEmb[pi][d]
	if iana[m.ports[pi]] {
		v += m.assigned[d]
	}
	return v
}

// userInto writes the user embedding (mean of feature embeddings) into dst.
func (m *Model) userInto(dst []float64, feats []int) {
	for d := range dst {
		dst[d] = 0
	}
	if len(feats) == 0 {
		return
	}
	for _, f := range feats {
		for d, v := range m.featEmb[f] {
			dst[d] += v
		}
	}
	inv := 1 / float64(len(feats))
	for d := range dst {
		dst[d] *= inv
	}
}

func (m *Model) scoreIdx(userVec []float64, pi int) float64 {
	s := m.itemBias[pi]
	for d, v := range userVec {
		s += v * m.itemVecAt(pi, d)
	}
	return s
}

// Recommend returns the top-K ports for an IP, scored through its network
// features (cold start for unseen IPs).
func (m *Model) Recommend(ip asndb.IP, asn asndb.ASN, k int) []uint16 {
	var fidx []int
	for _, f := range userFeatures(ip, asn) {
		if id, ok := m.featIdx[f]; ok {
			fidx = append(fidx, id)
		}
	}
	userVec := make([]float64, m.cfg.Dim)
	m.userInto(userVec, fidx)
	type scored struct {
		port uint16
		s    float64
	}
	all := make([]scored, len(m.ports))
	for pi := range m.ports {
		all[pi] = scored{m.ports[pi], m.scoreIdx(userVec, pi)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].port < all[j].port
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint16, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].port
	}
	return out
}

// Result summarizes an evaluation run.
type Result struct {
	Probes   uint64
	Found    int
	GTTotal  int
	FracAll  float64
	FracNorm float64
}

// Evaluate recommends TopK ports for every test IP and measures how many
// test services the recommendations would discover.
func Evaluate(m *Model, testSet *dataset.Dataset) *Result {
	gtByIP := make(map[asndb.IP]map[uint16]bool)
	asnOf := make(map[asndb.IP]asndb.ASN)
	portGT := make(map[uint16]int)
	for _, r := range testSet.Records {
		g := gtByIP[r.IP]
		if g == nil {
			g = make(map[uint16]bool)
			gtByIP[r.IP] = g
		}
		g[r.Port] = true
		asnOf[r.IP] = r.ASN
		portGT[r.Port]++
	}
	res := &Result{GTTotal: testSet.NumServices()}
	portFound := make(map[uint16]int)
	for ip, g := range gtByIP {
		for _, port := range m.Recommend(ip, asnOf[ip], m.cfg.TopK) {
			res.Probes++
			if g[port] {
				res.Found++
				portFound[port]++
			}
		}
	}
	if res.GTTotal > 0 {
		res.FracAll = float64(res.Found) / float64(res.GTTotal)
	}
	var normAcc float64
	for port, total := range portGT {
		normAcc += float64(portFound[port]) / float64(total)
	}
	if len(portGT) > 0 {
		res.FracNorm = normAcc / float64(len(portGT))
	}
	return res
}
