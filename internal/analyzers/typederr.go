package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// typedErrPkgs are the packages whose API contract promises typed,
// matchable errors: the transport documents MagicError/VersionError/
// FrameSizeError/... (PR 3) and serve promises stable error codes over
// HTTP and typed errors from its readers (PR 4/7).
var typedErrPkgs = []string{
	"gps/internal/shard/transport",
	"gps/internal/serve",
	"gps/internal/shard",
}

// Typederr enforces the typed-error contract in API-bearing packages.
var Typederr = &Analyzer{
	Name: "typederr",
	Doc: `enforce typed, wrappable errors in API-contract packages

In internal/shard{,/transport} and internal/serve:

fmt.Errorf calls that interpolate an error value without %w are
flagged — the cause becomes unreachable to errors.Is/As, breaking the
typed-error promise the transport and serving APIs document. Format
with %w (or a typed wrapper with Unwrap) instead.

Unexported package-level errors.New sentinels are flagged: callers in
other packages cannot errors.Is-match what they cannot name. Export
the sentinel (documented API surface, like ErrTruncated) or define a
typed error.`,
	Run: runTypederr,
}

func runTypederr(pass *Pass) {
	if !pathMatches(pass.Pkg.Path, typedErrPkgs) {
		return
	}
	checkErrorfWrapping(pass)
	checkSentinels(pass)
}

// checkErrorfWrapping flags fmt.Errorf calls with an error-typed
// argument but no %w verb in a constant format string.
func checkErrorfWrapping(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Name() != "Errorf" || funcPkgPath(fn) != "fmt" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			format, ok := constStringValue(info, call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := info.TypeOf(arg)
				if t == nil {
					continue
				}
				if types.Implements(t, errorInterface) || types.Implements(types.NewPointer(t), errorInterface) {
					pass.Reportf(call.Pos(),
						"fmt.Errorf interpolates an error without %%w: the cause is invisible to errors.Is/As; wrap it")
					return true
				}
			}
			return true
		})
	}
}

// errorInterface is the universe error type.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// constStringValue extracts a compile-time string value.
func constStringValue(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

// checkSentinels flags unexported package-level errors.New variables.
func checkSentinels(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, name := range vs.Names {
					if name.IsExported() || i >= len(vs.Values) {
						continue
					}
					call, ok := vs.Values[i].(*ast.CallExpr)
					if !ok {
						continue
					}
					fn := calleeFunc(info, call)
					if fn != nil && fn.Name() == "New" && funcPkgPath(fn) == "errors" {
						pass.Reportf(name.Pos(),
							"unexported errors.New sentinel %s: callers cannot errors.Is-match it; export it or define a typed error", name.Name)
					}
				}
			}
		}
	}
}
