package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
)

const (
	tracePkgPath     = "gps/internal/trace"
	telemetryPkgPath = "gps/internal/telemetry"
)

// finishers maps the span-producing package to the method(s) that
// retire a span from it.
var finishers = map[string]map[string]bool{
	tracePkgPath:     {"Finish": true, "FinishErr": true},
	telemetryPkgPath: {"End": true},
}

// ctorNameRe names the contexts where telemetry registration may run:
// init functions and new*/New* constructors. Everything else is a hot
// or repeated path where registration takes the registry lock (and, on
// a help-string conflict, panics at the worst possible time instead of
// at startup).
var ctorNameRe = regexp.MustCompile(`(?i)^(new|init)`)

// Spanfinish enforces span lifecycle and registration-at-init.
var Spanfinish = &Analyzer{
	Name: "spanfinish",
	Doc: `require every started span to finish and telemetry to register at init

Every trace.StartSpan / Tracer.StartSpan result must reach Finish or
FinishErr in its enclosing function (defer or explicit), be returned,
stored, or passed on — a dropped span never lands in the flight
recorder, so the epoch it timed silently vanishes from /v1/tracez
(PR 9). telemetry.StartSpan results must likewise reach End.

Calls that register metrics (Registry.Counter/Gauge/GaugeFunc/
Histogram/EWMA) may only run in package-level var initializers, init
functions, or new* constructors: the registry promises conflicts panic
at init (PR 6), which is only true if registration happens at init.`,
	Run: runSpanfinish,
}

func runSpanfinish(pass *Pass) {
	checkSpanLifecycles(pass)
	checkRegistrationSites(pass)
}

// spanProducer reports which span package a call produces a span for,
// "" if it is not a span start.
func spanProducer(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "StartSpan" {
		return ""
	}
	if p := funcPkgPath(fn); p == tracePkgPath || p == telemetryPkgPath {
		return p
	}
	return ""
}

// checkSpanLifecycles walks every function and verifies each started
// span is finished or escapes.
func checkSpanLifecycles(pass *Pass) {
	info := pass.Info()
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		if decl.Body == nil {
			return
		}
		// First pass: find span starts and how their results bind.
		type tracked struct {
			obj  types.Object
			pos  ast.Node
			pkg  string
			name string
		}
		var spans []tracked
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if spanProducer(info, call) != "" {
						pass.Reportf(call.Pos(),
							"span started and immediately discarded: it can never be finished")
					}
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != len(st.Lhs) {
					break // StartSpan returns one value; no multi-bind form
				}
				for i, rhs := range st.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					pkg := spanProducer(info, call)
					if pkg == "" {
						continue
					}
					id, isIdent := unparen(st.Lhs[i]).(*ast.Ident)
					if !isIdent {
						// Stored straight into a field/index: escapes.
						continue
					}
					if id.Name == "_" {
						pass.Reportf(call.Pos(),
							"span assigned to _: it can never be finished")
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil {
						spans = append(spans, tracked{obj: obj, pos: call, pkg: pkg, name: id.Name})
					}
				}
			}
			return true
		})
		// Second pass: for each tracked span object, look for a
		// finishing call or an escape anywhere in the declaration
		// (deferred closures included).
		for _, sp := range spans {
			if spanRetired(info, decl.Body, sp.obj, finishers[sp.pkg]) {
				continue
			}
			pass.Reportf(sp.pos.Pos(),
				"span %s is started but never finished on any path: add a defer %s.Finish() (or FinishErr/End), return it, or hand it off",
				sp.name, sp.name)
		}
	})
}

// spanRetired reports whether obj reaches a finisher method or escapes
// the function (returned, passed as an argument, stored, or
// re-assigned) anywhere under body.
func spanRetired(info *types.Info, body *ast.BlockStmt, obj types.Object, finish map[string]bool) bool {
	retired := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if retired {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		// How is this use embedded?
		for i := len(stack) - 2; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.SelectorExpr:
				if p.X == id || containsPos(p.X, id.Pos()) {
					// sp.Something — a finisher retires it; any other
					// method (SetAttr, Context) does not.
					if finish[p.Sel.Name] {
						retired = true
					}
					return !retired
				}
			case *ast.CallExpr:
				// Passed as an argument: handed off.
				if !containsPos(p.Fun, id.Pos()) {
					retired = true
					return false
				}
			case *ast.ReturnStmt:
				retired = true
				return false
			case *ast.CompositeLit, *ast.KeyValueExpr:
				retired = true
				return false
			case *ast.AssignStmt:
				// Re-assigned somewhere else (field, another var):
				// only counts as an escape when the span is on the
				// right-hand side.
				for _, r := range p.Rhs {
					if containsPos(r, id.Pos()) {
						retired = true
						return false
					}
				}
				return true
			case *ast.ExprStmt, *ast.BlockStmt, *ast.DeferStmt, *ast.GoStmt:
				return true
			}
		}
		return true
	})
	return retired
}

// checkRegistrationSites flags registry registrations outside
// constructor scope.
func checkRegistrationSites(pass *Pass) {
	info := pass.Info()
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		if decl.Body == nil || ctorNameRe.MatchString(decl.Name.Name) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || funcPkgPath(fn) != telemetryPkgPath || recvTypeName(fn) != "Registry" {
				return true
			}
			switch fn.Name() {
			case "Counter", "Gauge", "GaugeFunc", "Histogram", "EWMA":
				pass.Reportf(call.Pos(),
					"telemetry registration (Registry.%s) in %s: register in an init func, a new* constructor, or a package-level var so conflicts panic at startup, not mid-serve",
					fn.Name(), decl.Name.Name)
			}
			return true
		})
	})
}
