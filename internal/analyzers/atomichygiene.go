package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Atomichygiene catches mixed atomic/plain access to the same field.
var Atomichygiene = &Analyzer{
	Name: "atomichygiene",
	Doc: `require fields touched by sync/atomic to be atomic everywhere

A struct field passed by address to any sync/atomic function
(atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&s.v), ...) must be
accessed through sync/atomic at every other site in the package. A
plain read races the atomic writers — a torn read the race detector
only surfaces under the right interleaving and load, which is exactly
when it is hardest to debug. Plain access inside new*/make*
constructors (pre-publication initialization) and composite literals
is exempt. Prefer the typed atomic.Uint64/Int64/Pointer wrappers,
which make mixed access unrepresentable; this check exists for the
address-based style that does not.`,
	Run: runAtomichygiene,
}

// atomicFnRe matches the address-taking sync/atomic operations.
var atomicFnRe = regexp.MustCompile(`^(Add|Load|Store|Swap|CompareAndSwap|Or|And)`)

// ctorFuncRe names functions where plain initialization of atomic
// fields is fine: the value is not yet shared.
var ctorFuncRe = regexp.MustCompile(`(?i)^(new|make|init)`)

func runAtomichygiene(pass *Pass) {
	info := pass.Info()

	// Pass 1: every field object whose address feeds a sync/atomic call.
	atomicFields := make(map[types.Object]string) // field -> atomic fn name seen
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || recvTypeName(fn) != "" ||
				!atomicFnRe.MatchString(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj, ok := info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
					if _, seen := atomicFields[obj]; !seen {
						atomicFields[obj] = "atomic." + fn.Name()
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other selector use of those fields must itself be
	// under a sync/atomic call (or constructor / composite-literal
	// initialization).
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		if decl.Body == nil || ctorFuncRe.MatchString(decl.Name.Name) {
			return
		}
		var stack []ast.Node
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok {
				return true
			}
			via, tracked := atomicFields[obj]
			if !tracked || selectorUnderAtomic(info, stack) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to field %s, which is accessed via %s elsewhere: every access must go through sync/atomic (torn-read hazard)",
				obj.Name(), via)
			return true
		})
	})
}

// selectorUnderAtomic reports whether the innermost enclosing call in
// the ancestor stack is a sync/atomic function — i.e. the selector is
// the &s.f argument of an atomic op.
func selectorUnderAtomic(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, p)
			return fn != nil && funcPkgPath(fn) == "sync/atomic"
		case *ast.UnaryExpr, *ast.ParenExpr, *ast.SelectorExpr:
			continue
		default:
			return false
		}
	}
	return false
}
