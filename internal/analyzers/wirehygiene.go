package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// wirePkgs are the packages that speak the GPST wire protocol.
var wirePkgs = []string{
	"gps/internal/shard/transport",
}

// msgConstRe names the frame-type constants the pairing rule governs.
var msgConstRe = regexp.MustCompile(`^msg[A-Z]`)

// decoderFuncRe names the functions the exhaustion rule governs.
var decoderFuncRe = regexp.MustCompile(`(?i)^(decode|read)`)

// Wirehygiene pins the transport's two-way-compatibility rules.
var Wirehygiene = &Analyzer{
	Name: "wirehygiene",
	Doc: `enforce GPST wire-protocol hygiene

Every msg* frame constant must have both an encode site (passed to a
call, typically writeFrame) and a decode site (a switch case or ==/!=
comparison in a dispatch path): a frame only one side understands is a
protocol skew waiting for a version bump nobody made.

Decode*/read* functions must never assert exact payload exhaustion
(len(...) ==/!= comparisons): PR 9 stitched tracing over the live
protocol precisely because decoders tolerate trailing bytes, which is
what lets the wire grow optional trailing fields without a version
bump. Minimum-length guards (<, >=) remain fine.`,
	Run: runWirehygiene,
}

func runWirehygiene(pass *Pass) {
	if !pathMatches(pass.Pkg.Path, wirePkgs) {
		return
	}
	checkFramePairing(pass)
	checkExhaustionAsserts(pass)
}

// checkFramePairing verifies every msg* constant is consumed on both
// the encode and the decode side.
func checkFramePairing(pass *Pass) {
	info := pass.Info()

	// The frame constants declared in this package, keyed by object.
	type usage struct {
		decl      *ast.Ident
		encodeUse bool
		decodeUse bool
	}
	consts := make(map[types.Object]*usage)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					if msgConstRe.MatchString(name.Name) {
						if obj := info.Defs[name]; obj != nil {
							consts[obj] = &usage{decl: name}
						}
					}
				}
			}
		}
	}
	if len(consts) == 0 {
		return
	}

	// Classify every use. A use inside a switch-case list or an ==/!=
	// comparison is a decode (dispatch) site; a use as a call argument
	// is an encode site.
	for _, f := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			u, tracked := consts[info.Uses[id]]
			if !tracked {
				return true
			}
			switch classifyUse(info, stack) {
			case useDecode:
				u.decodeUse = true
			case useEncode:
				u.encodeUse = true
			}
			return true
		})
	}

	for _, u := range consts {
		switch {
		case !u.decodeUse && !u.encodeUse:
			pass.Reportf(u.decl.Pos(),
				"frame constant %s is declared but has neither an encode nor a decode site", u.decl.Name)
		case !u.decodeUse:
			pass.Reportf(u.decl.Pos(),
				"frame constant %s has no decode site: no switch case or comparison dispatches it", u.decl.Name)
		case !u.encodeUse:
			pass.Reportf(u.decl.Pos(),
				"frame constant %s has no encode site: it is never passed to a frame writer", u.decl.Name)
		}
	}
}

type useKind int

const (
	useOther useKind = iota
	useEncode
	useDecode
)

// expectParamRe names call parameters that carry an expected reply
// type: a constant passed to one is dispatched (compared) inside the
// helper, so the use is a decode site by proxy.
var expectParamRe = regexp.MustCompile(`(?i)^(want|expect|reply)`)

// classifyUse inspects the ancestor chain of an identifier use.
func classifyUse(info *types.Info, stack []ast.Node) useKind {
	// stack[len-1] is the ident itself; walk outward.
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CaseClause:
			return useDecode
		case *ast.BinaryExpr:
			if p.Op == token.EQL || p.Op == token.NEQ {
				return useDecode
			}
		case *ast.CallExpr:
			// An argument (not the callee) of a call: the constant is
			// being written — unless the parameter it binds to is an
			// expected-reply slot (rpc's `want`), which compares it
			// against an incoming frame.
			if containsPos(p.Fun, stack[len(stack)-1].Pos()) {
				return useOther
			}
			if name := paramNameForArg(info, p, stack[len(stack)-1].Pos()); expectParamRe.MatchString(name) {
				return useDecode
			}
			return useEncode
		case *ast.ValueSpec, *ast.GenDecl:
			return useOther
		}
	}
	return useOther
}

// paramNameForArg returns the name of the callee parameter the argument
// containing pos binds to ("" when unresolvable).
func paramNameForArg(info *types.Info, call *ast.CallExpr, pos token.Pos) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	for i, arg := range call.Args {
		if !containsPos(arg, pos) {
			continue
		}
		if i >= sig.Params().Len() {
			i = sig.Params().Len() - 1 // variadic tail
		}
		if i < 0 {
			return ""
		}
		return sig.Params().At(i).Name()
	}
	return ""
}

func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// checkExhaustionAsserts flags exact payload-length comparisons inside
// decoder functions.
func checkExhaustionAsserts(pass *Pass) {
	info := pass.Info()
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		if decl.Body == nil || !decoderFuncRe.MatchString(decl.Name.Name) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isLenCall(info, be.X) && !isLenCall(info, be.Y) {
				return true
			}
			// len(magic)-style comparisons of two constants are not
			// exhaustion asserts; require one side to involve the
			// decoded input (heuristically: a non-constant operand).
			if isConstExpr(info, be.X) && isConstExpr(info, be.Y) {
				return true
			}
			pass.Reportf(be.Pos(),
				"decoder %s asserts exact payload length: decoders must tolerate trailing bytes (two-way compatibility, PR 9); use a minimum-length guard",
				decl.Name.Name)
			return true
		})
	})
}

// isLenCall reports whether e is a call to the len builtin.
func isLenCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "len" && info.Uses[id] == types.Universe.Lookup("len")
}

// isConstExpr reports whether the type checker folded e to a constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
