// Package analyzers is gpslint: a suite of project-specific static
// analyzers that turn the repo's load-bearing conventions — deterministic
// generation, canonical wire encoders, typed transport errors, finished
// spans, registration-at-init telemetry, coherent atomics — from review
// folklore into a compile-time contract. The suite is dependency-free by
// necessity and by policy: it is built on go/ast and go/types with a
// `go list`-driven package loader, mirroring the golang.org/x/tools
// go/analysis API shape (Analyzer, Pass, Diagnostic) without importing
// it, so each analyzer reads like a standard vet check and could be
// ported to a real multichecker mechanically if the dependency ever
// lands.
package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path analyzers match their scope rules
	// against. Fixture loading may set it to a masqueraded repo path.
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// dependencies pulled in only for type information).
	Target bool
}

// Loader loads packages by shelling out to `go list` for file lists and
// type-checking everything from source in dependency order. It exists
// because the repo is dependency-free: golang.org/x/tools/go/packages is
// not available, and the stdlib importers cannot resolve module-local
// import paths. A Loader is safe for use from one goroutine.
type Loader struct {
	// Dir is the module directory `go list` runs in.
	Dir  string
	Fset *token.FileSet

	pkgs map[string]*Package // keyed by effective import path
	meta map[string]*listPkg
}

// NewLoader returns a Loader rooted at the module directory dir
// (empty = current directory).
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:  dir,
		Fset: token.NewFileSet(),
		pkgs: make(map[string]*Package),
		meta: make(map[string]*listPkg),
	}
}

// goList runs `go list -json -deps` over the patterns and records the
// metadata of every package in the transitive closure. CGO is disabled
// so the file lists are the pure-Go build variants the type checker can
// digest without a C toolchain.
func (l *Loader) goList(patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var ordered []*listPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if prev, ok := l.meta[p.ImportPath]; ok {
			// Seen in an earlier Load; a pattern can re-name a package
			// that was previously dep-only.
			if p.DepOnly {
				p.DepOnly = prev.DepOnly
			}
		}
		l.meta[p.ImportPath] = p
		ordered = append(ordered, p)
	}
	return ordered, nil
}

// Load loads, parses, and type-checks the packages named by the
// patterns plus their transitive dependencies, returning only the
// pattern-named packages in `go list` order. Dependencies are cached
// across calls.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	ordered, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	// -deps output is dependency-ordered: by the time a package is
	// checked, every import is in the cache.
	for _, m := range ordered {
		p, err := l.checkPackage(m)
		if err != nil {
			return nil, err
		}
		if !m.DepOnly {
			p.Target = true
			targets = append(targets, p)
		}
	}
	return targets, nil
}

// importPkg resolves one import path during type checking, loading it
// (and its dependencies) on demand when a fixture pulls in a package no
// earlier Load saw.
func (l *Loader) importPkg(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: "unsafe", Name: "unsafe", Types: types.Unsafe}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	m, ok := l.meta[path]
	if !ok {
		ordered, err := l.goList(path)
		if err != nil {
			return nil, err
		}
		for _, dm := range ordered {
			if _, err := l.checkPackage(dm); err != nil {
				return nil, err
			}
		}
		m = l.meta[path]
		if m == nil {
			return nil, fmt.Errorf("loader: go list resolved nothing for %q", path)
		}
	}
	return l.checkPackage(m)
}

// checkPackage parses and type-checks one listed package, memoized.
func (l *Loader) checkPackage(m *listPkg) (*Package, error) {
	if p, ok := l.pkgs[m.ImportPath]; ok {
		return p, nil
	}
	if m.ImportPath == "unsafe" {
		p := &Package{Path: "unsafe", Name: "unsafe", Types: types.Unsafe}
		l.pkgs[m.ImportPath] = p
		return p, nil
	}
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	p, err := l.typeCheck(m.ImportPath, m.ImportMap, files)
	if err != nil {
		return nil, fmt.Errorf("loader: checking %s: %w", m.ImportPath, err)
	}
	l.pkgs[m.ImportPath] = p
	return p, nil
}

// typeCheck runs go/types over a parsed file set under the given import
// path, resolving imports through the loader. importMap carries `go
// list`'s per-package remappings (std-vendored paths).
func (l *Loader) typeCheck(path string, importMap map[string]string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &loaderImporter{l: l, importMap: importMap},
		Sizes:    types.SizesFor("gc", "amd64"),
		Error:    func(error) {}, // collect the first hard error below
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, err
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{
		Path:  path,
		Name:  name,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadFixture parses the .go files under dir as a single package and
// type-checks it under the masqueraded import path `as` — the
// analysistest hook: testdata packages live outside the module's package
// graph but must exercise path-scoped analyzers as if they were, say,
// gps/internal/netmodel.
func (l *Loader) LoadFixture(dir, as string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: fixture %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: fixture %s holds no .go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: parsing fixture %s: %w", name, err)
		}
		files = append(files, f)
	}
	p, err := l.typeCheck(as, nil, files)
	if err != nil {
		return nil, fmt.Errorf("loader: checking fixture %s: %w", dir, err)
	}
	p.Target = true
	return p, nil
}

// loaderImporter adapts the loader to types.Importer for one package
// being checked.
type loaderImporter struct {
	l         *Loader
	importMap map[string]string
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := li.importMap[path]; ok {
		path = mapped
	}
	p, err := li.l.importPkg(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// defaultLoader serves the analysistest harness and any caller that
// wants cross-test caching of the (expensive) stdlib type-check.
var (
	defaultLoader     *Loader
	defaultLoaderOnce sync.Once
	defaultLoaderMu   sync.Mutex
)

// SharedLoader returns a process-wide Loader rooted at dir (first call
// wins the root; subsequent calls reuse it regardless of dir). Callers
// must not use it concurrently; LockSharedLoader serializes access.
func SharedLoader(dir string) *Loader {
	defaultLoaderOnce.Do(func() { defaultLoader = NewLoader(dir) })
	return defaultLoader
}

// LockSharedLoader takes the shared loader's lock and returns the
// unlock func, letting parallel tests serialize fixture loads.
func LockSharedLoader() func() {
	defaultLoaderMu.Lock()
	return defaultLoaderMu.Unlock
}
