// Package fixture is the atomichygiene known-dirty golden package:
// the field has atomic writers and plain readers — a torn-read race.
package fixture

import "sync/atomic"

type gauge struct {
	v uint64
}

func (g *gauge) bump() {
	atomic.AddUint64(&g.v, 1)
}

func (g *gauge) read() uint64 {
	return g.v // want `plain access to field v, which is accessed via atomic.AddUint64`
}

func (g *gauge) reset() {
	g.v = 0 // want `plain access to field v, which is accessed via atomic.AddUint64`
}
