// Package fixture is the atomichygiene known-clean golden package:
// every access to atomically-touched fields goes through sync/atomic,
// except pre-publication initialization in a constructor.
package fixture

import "sync/atomic"

type counter struct {
	n     uint64
	total int64
}

// newCounter initializes plainly before the value is shared: exempt.
func newCounter(seed uint64) *counter {
	c := &counter{}
	c.n = seed
	return c
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
	atomic.AddInt64(&c.total, 1)
}

func (c *counter) snapshot() (uint64, int64) {
	return atomic.LoadUint64(&c.n), atomic.LoadInt64(&c.total)
}

func (c *counter) reset() {
	atomic.StoreUint64(&c.n, 0)
	atomic.StoreInt64(&c.total, 0)
}
