// Package fixture exercises the mandatory-reason rule: a bare
// //gpslint:ignore both re-surfaces the silenced finding and reports
// the pragma itself. (Checked programmatically, not via want comments —
// the expectation comment would otherwise become the pragma's reason.)
package fixture

import "time"

func clock() int64 {
	return time.Now().UnixNano() //gpslint:ignore detranddet
}
