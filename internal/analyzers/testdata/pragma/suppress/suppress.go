// Package fixture exercises the //gpslint:ignore pragma, checked as
// gps/internal/netmodel with detranddet: a reasoned pragma silences its
// line, and a pragma that silences nothing is itself a finding.
package fixture

import "time"

// stampSuppressed carries a justified suppression: the time.Now finding
// on its line is dropped and the pragma is consumed.
func stampSuppressed() int64 {
	return time.Now().UnixNano() //gpslint:ignore detranddet fixture: proves a reasoned pragma silences exactly its line
}

//gpslint:ignore detranddet speculative suppression of a clean line // want `stale ignore pragma: no detranddet finding on the governed line`
func pure() int { return 42 }
