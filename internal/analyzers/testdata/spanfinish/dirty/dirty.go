// Package fixture is the spanfinish known-dirty golden package: leaked
// spans and hot-path telemetry registration.
package fixture

import (
	"gps/internal/telemetry"
	"gps/internal/trace"
)

var hist = telemetry.Default.Histogram("fixture_dirty_seconds", "fixture histogram", nil)

func discarded(parent trace.SpanContext) {
	trace.StartSpan(parent, "discarded") // want `span started and immediately discarded`
}

func blanked(parent trace.SpanContext) {
	_ = trace.StartSpan(parent, "blanked") // want `span assigned to _`
}

func leaked(parent trace.SpanContext) {
	sp := trace.StartSpan(parent, "leaked") // want `span sp is started but never finished on any path`
	sp.SetAttr()
}

func leakedTelemetry() {
	sp := telemetry.StartSpan(hist) // want `span sp is started but never finished on any path`
	if sp == (telemetry.Span{}) {
		return
	}
}

// observe registers on every call: the registry lock on a hot path, and
// a conflict panic mid-serve instead of at startup.
func observe(n int) {
	g := telemetry.Default.Gauge("fixture_hot_gauge", "hot registration") // want `telemetry registration \(Registry.Gauge\) in observe`
	g.Set(float64(n))
}

func record() {
	telemetry.Default.Counter("fixture_hot_counter", "hot registration").Add(1) // want `telemetry registration \(Registry.Counter\) in record`
}
