// Package fixture is the spanfinish known-clean golden package: every
// span reaches a finisher or escapes, and all telemetry registration
// happens at init/constructor scope.
package fixture

import (
	"gps/internal/telemetry"
	"gps/internal/trace"
)

// Package-level var initializers run exactly once, before main: the
// registry's conflicts-panic-at-startup promise holds.
var hist = telemetry.Default.Histogram("fixture_clean_seconds", "fixture histogram", nil)

var lateGauge *telemetry.Gauge

func init() {
	lateGauge = telemetry.Default.Gauge("fixture_clean_gauge", "fixture gauge")
}

type metrics struct{ reqs *telemetry.Counter }

// newMetrics is constructor scope: registration here is sanctioned.
func newMetrics() *metrics {
	return &metrics{reqs: telemetry.Default.Counter("fixture_clean_reqs", "fixture counter")}
}

// timed retires its span with the canonical deferred Finish.
func timed(parent trace.SpanContext) {
	sp := trace.StartSpan(parent, "timed")
	defer sp.Finish()
}

// timedErr retires its span explicitly through FinishErr.
func timedErr(parent trace.SpanContext) error {
	sp := trace.StartSpan(parent, "timed-err")
	err := work()
	sp.FinishErr(err)
	return err
}

// beginNamed returns the span: the caller owns finishing it.
func beginNamed(parent trace.SpanContext) *trace.Span {
	sp := trace.StartSpan(parent, "begin")
	sp.SetAttr()
	return sp
}

// handoff passes the span on: the consumer owns finishing it.
func handoff(parent trace.SpanContext) {
	sp := trace.StartSpan(parent, "handoff")
	consume(sp)
}

func consume(sp *trace.Span) { sp.Finish() }

// observeOnce retires a telemetry span through End.
func observeOnce() {
	sp := telemetry.StartSpan(hist)
	defer sp.End()
}

func work() error { return nil }
