// Package fixture is the wirehygiene known-clean golden package,
// checked as gps/internal/shard/transport: every frame constant has an
// encode and a decode site, and the decoders only use minimum-length
// guards.
package fixture

import (
	"errors"
	"io"
)

// Frame types: each must appear on both sides of the wire.
const (
	msgPing = 1
	msgPong = 2
	msgData = 3
)

func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	_, err := w.Write(append([]byte{typ}, payload...))
	return err
}

// send covers the encode side of all three constants.
func send(w io.Writer) error {
	if err := writeFrame(w, msgPing, nil); err != nil {
		return err
	}
	if err := writeFrame(w, msgData, []byte("x")); err != nil {
		return err
	}
	return writeFrame(w, msgPong, nil)
}

// dispatch covers the decode side via switch cases.
func dispatch(typ uint8, payload []byte) error {
	switch typ {
	case msgPing:
		return nil
	case msgData:
		return decodeData(payload)
	}
	return errors.New("unhandled")
}

// rpc covers msgPong's decode side via an expected-reply parameter and
// the comparison inside the helper.
func rpc(typ uint8, want uint8) error {
	if typ != want {
		return errors.New("unexpected reply")
	}
	return nil
}

func call(w io.Writer) error {
	if err := send(w); err != nil {
		return err
	}
	return rpc(msgPong, msgPong)
}

// decodeData uses a minimum-length guard and tolerates trailing bytes —
// the two-way-compatibility rule.
func decodeData(payload []byte) error {
	if len(payload) < 1 {
		return errors.New("short payload")
	}
	return nil
}
