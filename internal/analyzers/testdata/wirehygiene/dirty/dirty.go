// Package fixture is the wirehygiene known-dirty golden package,
// checked as gps/internal/shard/transport.
package fixture

import (
	"errors"
	"io"
)

const (
	msgHello = 1 // encoded and dispatched: clean
	// msgOrphan is never consumed anywhere.
	msgOrphan = 2 // want `frame constant msgOrphan is declared but has neither an encode nor a decode site`
	// msgSendOnly is written but no reader dispatches it.
	msgSendOnly = 3 // want `frame constant msgSendOnly has no decode site`
	// msgReadOnly is dispatched but nothing ever writes it.
	msgReadOnly = 4 // want `frame constant msgReadOnly has no encode site`
)

func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	_, err := w.Write(append([]byte{typ}, payload...))
	return err
}

func send(w io.Writer) error {
	if err := writeFrame(w, msgHello, nil); err != nil {
		return err
	}
	return writeFrame(w, msgSendOnly, nil)
}

func dispatch(typ uint8, payload []byte) error {
	switch typ {
	case msgHello:
		return decodeHello(payload)
	case msgReadOnly:
		return nil
	}
	return errors.New("unhandled")
}

// decodeHello asserts exact exhaustion — the compatibility hazard: a
// peer that appends an optional trailing field breaks this reader.
func decodeHello(payload []byte) error {
	if len(payload) != 8 { // want `decoder decodeHello asserts exact payload length`
		return errors.New("bad length")
	}
	return nil
}

// readBody double-checks the remainder with an equality on len.
func readBody(payload []byte, n int) error {
	if n == len(payload) { // want `decoder readBody asserts exact payload length`
		return nil
	}
	return errors.New("trailing bytes")
}
