// Package fixture is the typederr known-dirty golden package, checked
// as gps/internal/serve.
package fixture

import (
	"errors"
	"fmt"
)

// errHidden cannot be errors.Is-matched from outside the package.
var errHidden = errors.New("fixture: hidden") // want `unexported errors.New sentinel errHidden`

func wrap(err error) error {
	return fmt.Errorf("reading header: %v", err) // want `fmt.Errorf interpolates an error without %w`
}

func wrapStringified(err error) error {
	return fmt.Errorf("closing conn: %s", err) // want `fmt.Errorf interpolates an error without %w`
}

func use() error {
	return errHidden
}
