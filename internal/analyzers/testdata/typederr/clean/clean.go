// Package fixture is the typederr known-clean golden package, checked
// as gps/internal/serve: sentinels are exported, causes are wrapped
// with %w, and function-local errors are not package API.
package fixture

import (
	"errors"
	"fmt"
)

// ErrDrained is exported: callers can errors.Is-match it.
var ErrDrained = errors.New("fixture: drained")

// wrap keeps the cause reachable through errors.Is/As.
func wrap(err error) error {
	return fmt.Errorf("reading header: %w", err)
}

// plain interpolates no error values, so %w is not required.
func plain(n int) error {
	return fmt.Errorf("bad count %d", n)
}

// local sentinels never leave the function, so they are not part of the
// matchable API surface.
func local() error {
	var errTransient = errors.New("transient")
	return errTransient
}
