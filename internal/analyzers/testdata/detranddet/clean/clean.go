// Package fixture is the detranddet known-clean golden package: every
// construct here is the sanctioned deterministic idiom and must produce
// zero findings when checked as gps/internal/netmodel.
package fixture

import (
	"io"
	"math/rand"
	"sort"
)

// seededDraws uses a locally seeded source: deterministic, allowed.
func seededDraws(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, 4)
	for i := range out {
		out[i] = rng.Intn(100)
	}
	return out
}

// WriteCounts is the canonical collect-sort-emit encoder shape: the map
// range only gathers keys, the sort pins the order, the emit loop
// ranges a slice.
func WriteCounts(w io.Writer, counts map[string]int) error {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := io.WriteString(w, k); err != nil {
			return err
		}
	}
	return nil
}

// EncodeTotal may range the map freely: summing is done in a collect
// loop (counters are order-independent gathering).
func EncodeTotal(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}

// encodePrep is encoder-named yet its range only gathers: deleting
// zero entries is order-independent, so the collect-loop exemption
// applies.
func encodePrep(counts map[string]int) {
	for k, v := range counts {
		if v == 0 {
			delete(counts, k)
		}
	}
}
