// Package fixture is the detranddet known-dirty golden package: each
// marked line must be caught when checked as gps/internal/netmodel.
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// stamp reads the wall clock inside a deterministic package.
func stamp() int64 {
	t := time.Now() // want `time.Now in deterministic package`
	return t.UnixNano()
}

// age compounds it with a Since.
func age(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want `time.Since in deterministic package`
}

// globalDraw draws from the shared global source.
func globalDraw() int {
	return rand.Intn(100) // want `global rand.Intn in deterministic package`
}

// shuffleHosts uses the global Shuffle.
func shuffleHosts(hosts []string) {
	rand.Shuffle(len(hosts), func(i, j int) { // want `global rand.Shuffle in deterministic package`
		hosts[i], hosts[j] = hosts[j], hosts[i]
	})
}

// EncodeCounts iterates a map straight into the output stream.
func EncodeCounts(w io.Writer, counts map[string]int) {
	for k, v := range counts { // want `map iteration in encoder EncodeCounts`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// WriteIndex emits through a helper call, which is just as
// order-dependent.
func WriteIndex(w io.Writer, idx map[int]string) {
	for _, name := range idx { // want `map iteration in encoder WriteIndex`
		emit(w, name)
	}
}

func emit(w io.Writer, s string) { io.WriteString(w, s) }
