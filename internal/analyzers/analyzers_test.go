package analyzers_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gps/internal/analyzers"
	"gps/internal/analyzers/analysistest"
)

// Golden-fixture coverage: one known-clean and one known-dirty package
// per analyzer, type-checked under the masqueraded import path each
// analyzer scopes itself to.

func TestDetranddetClean(t *testing.T) {
	analysistest.Run(t, analyzers.Detranddet, "gps/internal/netmodel", "testdata/detranddet/clean")
}

func TestDetranddetDirty(t *testing.T) {
	analysistest.Run(t, analyzers.Detranddet, "gps/internal/netmodel", "testdata/detranddet/dirty")
}

func TestWirehygieneClean(t *testing.T) {
	analysistest.Run(t, analyzers.Wirehygiene, "gps/internal/shard/transport", "testdata/wirehygiene/clean")
}

func TestWirehygieneDirty(t *testing.T) {
	analysistest.Run(t, analyzers.Wirehygiene, "gps/internal/shard/transport", "testdata/wirehygiene/dirty")
}

func TestTypederrClean(t *testing.T) {
	analysistest.Run(t, analyzers.Typederr, "gps/internal/serve", "testdata/typederr/clean")
}

func TestTypederrDirty(t *testing.T) {
	analysistest.Run(t, analyzers.Typederr, "gps/internal/serve", "testdata/typederr/dirty")
}

func TestSpanfinishClean(t *testing.T) {
	analysistest.Run(t, analyzers.Spanfinish, "gps/internal/spanfixture", "testdata/spanfinish/clean")
}

func TestSpanfinishDirty(t *testing.T) {
	analysistest.Run(t, analyzers.Spanfinish, "gps/internal/spanfixture", "testdata/spanfinish/dirty")
}

func TestAtomichygieneClean(t *testing.T) {
	analysistest.Run(t, analyzers.Atomichygiene, "gps/internal/atomicfixture", "testdata/atomichygiene/clean")
}

func TestAtomichygieneDirty(t *testing.T) {
	analysistest.Run(t, analyzers.Atomichygiene, "gps/internal/atomicfixture", "testdata/atomichygiene/dirty")
}

// TestPragmaSuppress proves a reasoned //gpslint:ignore silences
// exactly its line and that a pragma silencing nothing is reported.
func TestPragmaSuppress(t *testing.T) {
	analysistest.Run(t, analyzers.Detranddet, "gps/internal/netmodel", "testdata/pragma/suppress")
}

// TestPragmaMissingReason proves a bare pragma re-surfaces the finding
// it tried to silence plus a finding for the pragma itself. Checked
// programmatically: an inline `// want` comment would become the
// pragma's reason.
func TestPragmaMissingReason(t *testing.T) {
	unlock := analyzers.LockSharedLoader()
	defer unlock()
	loader := analyzers.SharedLoader(moduleRoot(t))

	pkg, err := loader.LoadFixture("testdata/pragma/noreason", "gps/internal/netmodel")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := analyzers.Run([]*analyzers.Package{pkg}, []*analyzers.Analyzer{analyzers.Detranddet})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%v", len(diags), diags)
	}
	wants := []string{
		"ignore pragma without a reason",
		"time.Now in deterministic package",
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in:\n%v", want, diags)
		}
	}
}

// TestGPSLintTreeClean is the in-repo hard gate: the full suite over
// the whole module must be clean, so `go test ./...` fails the moment a
// violation lands, with or without the dedicated CI job.
func TestGPSLintTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type-check is slow; skipped under -short")
	}
	unlock := analyzers.LockSharedLoader()
	defer unlock()
	loader := analyzers.SharedLoader(moduleRoot(t))

	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range analyzers.Run(pkgs, analyzers.All()) {
		t.Errorf("gpslint: %s", d)
	}
}

// moduleRoot locates the repo root from the test's working directory
// (internal/analyzers).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	return root
}
