// Package analysistest runs an analyzer over a golden fixture package
// and compares its findings against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's
// dependency-free analysis framework.
//
// A fixture is a directory of .go files forming one package. Lines that
// must produce a finding carry a trailing expectation comment:
//
//	for k := range m { // want `map iteration`
//
// The backquoted text is a regexp matched against the diagnostic
// message. A line may carry several expectations (repeat the comment).
// Run fails the test if any expectation goes unmatched or any
// unexpected finding fires. Because most analyzers scope themselves by
// import path, Run type-checks the fixture under a caller-chosen
// masqueraded path (say, gps/internal/netmodel).
package analysistest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"testing"

	"gps/internal/analyzers"
)

// wantRe matches one expectation comment. Multiple expectations may
// ride one line in separate comments.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies one analyzer to the fixture in dir, type-checked under
// importPath, and asserts the findings equal the fixture's `// want`
// expectations.
func Run(t *testing.T, a *analyzers.Analyzer, importPath, dir string) {
	t.Helper()
	unlock := analyzers.LockSharedLoader()
	defer unlock()
	loader := analyzers.SharedLoader(moduleRoot(dir))

	pkg, err := loader.LoadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	want := collectExpectations(t, dir)
	got := analyzers.Run([]*analyzers.Package{pkg}, []*analyzers.Analyzer{a})

	for _, d := range got {
		base := filepath.Base(d.Pos.Filename)
		found := false
		for _, w := range want {
			if w.matched || w.file != base || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collectExpectations parses the fixture's `// want` comments.
func collectExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}
	var want []*expectation
	for _, pkg := range pkgs {
		for filename, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", filename, m[1], err)
						}
						pos := fset.Position(c.Pos())
						want = append(want, &expectation{
							file:    filepath.Base(filename),
							line:    pos.Line,
							pattern: re,
						})
					}
				}
			}
		}
	}
	return want
}

// moduleRoot walks up from dir to the directory holding go.mod, so the
// shared loader's `go list` runs inside the module whatever the test's
// working directory.
func moduleRoot(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for d := abs; ; {
		if _, err := filepath.Glob(filepath.Join(d, "go.mod")); err == nil {
			if matches, _ := filepath.Glob(filepath.Join(d, "go.mod")); len(matches) == 1 {
				return d
			}
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
