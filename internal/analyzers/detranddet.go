package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// detPkgs are the fully deterministic packages: everything in them must
// be a pure function of (seed, inputs). PR 1 made churn deterministic
// under a fixed seed and PR 5 made generation partition-stable; both
// contracts die the moment wall-clock time or the global math/rand
// stream leaks in.
var detPkgs = []string{
	"gps/internal/netmodel",
}

// encoderPkgs are the packages whose Encode*/Write*/Marshal* functions
// feed byte-identity gates: wire frames, checkpoints, GPSV inventories,
// GPSE deltas, Prometheus exposition. Iterating a Go map directly into
// such an output stream is the canonical way to break the
// distributed==in-process CI diff.
var encoderPkgs = []string{
	"gps/internal/netmodel",
	"gps/internal/shard",
	"gps/internal/shard/transport",
	"gps/internal/continuous",
	"gps/internal/serve",
	"gps/internal/store",
	"gps/internal/telemetry",
	"gps/internal/trace",
}

// encoderFuncRe names the functions the map-range rule governs.
var encoderFuncRe = regexp.MustCompile(`(?i)^(encode|write|marshal)`)

// bannedTimeFuncs are the time package functions that read the wall
// clock.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

// Detranddet enforces determinism: no wall-clock or global-rand reads
// in deterministic packages, and no map iteration feeding encoder
// output. See the package comment for the full story.
var Detranddet = &Analyzer{
	Name: "detranddet",
	Doc: `forbid nondeterminism in deterministic packages and encoders

In deterministic packages (internal/netmodel), calls to time.Now /
time.Since / time.Until / timers and to global math/rand functions are
flagged: generation and churn must be pure functions of the seed so a
partition regenerates byte-identical to the full run (PR 5). Seeded
sources (rand.New(rand.NewSource(seed))) are fine.

In encoder functions (Encode*/Write*/Marshal* in wire/checkpoint/codec
packages), ranging over a map is flagged unless the loop only collects
(appends, assigns, counts, deletes) for a later sort — iterating a map
straight into an output stream breaks the byte-identity contract the
distributed CI gate diffs (PR 2/3).`,
	Run: runDetranddet,
}

func runDetranddet(pass *Pass) {
	path := pass.Pkg.Path
	inDet := pathMatches(path, detPkgs)
	inEnc := pathMatches(path, encoderPkgs)
	if !inDet && !inEnc {
		return
	}
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		if decl.Body == nil {
			return
		}
		if inDet {
			checkClockAndRand(pass, decl)
		}
		if inEnc && encoderFuncRe.MatchString(decl.Name.Name) {
			checkMapRanges(pass, decl)
		}
	})
}

// checkClockAndRand flags wall-clock reads and global math/rand use
// anywhere under decl.
func checkClockAndRand(pass *Pass, decl *ast.FuncDecl) {
	info := pass.Info()
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch funcPkgPath(fn) {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %s: generation and churn must be pure functions of the seed",
					fn.Name(), pass.Pkg.Path)
			}
		case "math/rand", "math/rand/v2":
			// Methods on a seeded *rand.Rand are deterministic;
			// package-level functions draw from the shared global
			// source. Constructors (New, NewSource, NewZipf) are how
			// the deterministic path is built.
			if recvTypeName(fn) == "" && !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(call.Pos(),
					"global rand.%s in deterministic package %s: draw from a seeded *rand.Rand instead",
					fn.Name(), pass.Pkg.Path)
			}
		}
		return true
	})
}

// checkMapRanges flags map-range statements inside an encoder function
// unless the loop is a pure collect loop.
func checkMapRanges(pass *Pass, decl *ast.FuncDecl) {
	info := pass.Info()
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectOnlyBlock(info, rng.Body) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"map iteration in encoder %s writes in nondeterministic order: collect the keys, sort, then emit",
			decl.Name.Name)
		return true
	})
}

// collectOnlyBlock reports whether every statement in the block (and
// nested control flow) only gathers data — assignments, declarations,
// counters, appends, deletes — with no statement-level call that could
// reach an output stream. Such loops are order-independent as long as
// the gathered collection is sorted before use, which is the repo's
// canonical collect-sort-emit encoder shape.
func collectOnlyBlock(info *types.Info, block *ast.BlockStmt) bool {
	ok := true
	var checkStmt func(s ast.Stmt)
	checkStmt = func(s ast.Stmt) {
		if !ok || s == nil {
			return
		}
		switch st := s.(type) {
		case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt,
			*ast.BranchStmt, *ast.ReturnStmt, *ast.EmptyStmt:
			// Gathering, counting, or bailing out: order-independent.
		case *ast.ExprStmt:
			// The only statement-level call a collect loop may make is
			// the delete builtin.
			call, isCall := st.X.(*ast.CallExpr)
			if !isCall {
				ok = false
				return
			}
			if id, isIdent := unparen(call.Fun).(*ast.Ident); !isIdent || id.Name != "delete" ||
				info.Uses[id] != types.Universe.Lookup("delete") {
				ok = false
			}
		case *ast.IfStmt:
			checkStmt(st.Init)
			checkStmt(st.Body)
			checkStmt(st.Else)
		case *ast.BlockStmt:
			for _, s2 := range st.List {
				checkStmt(s2)
			}
		case *ast.ForStmt:
			checkStmt(st.Init)
			checkStmt(st.Post)
			checkStmt(st.Body)
		case *ast.RangeStmt:
			checkStmt(st.Body)
		case *ast.SwitchStmt:
			checkStmt(st.Init)
			for _, c := range st.Body.List {
				for _, s2 := range c.(*ast.CaseClause).Body {
					checkStmt(s2)
				}
			}
		default:
			ok = false
		}
	}
	checkStmt(block)
	return ok
}
