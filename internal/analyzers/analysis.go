package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks stay portable.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph contract the analyzer enforces; gpslint
	// -help prints it.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detranddet,
		Wirehygiene,
		Typederr,
		Spanfinish,
		Atomichygiene,
	}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to the packages and returns the surviving
// diagnostics sorted by position. Findings silenced by an ignore pragma
// (see suppressed) are dropped; a pragma naming an analyzer that never
// fires on its line is itself reported, so stale suppressions cannot
// accumulate.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		prag := collectPragmas(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
			a.Run(pass)
		}
		diags = append(diags, prag.filter(pkgDiags, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// pragmaRe matches the suppression directive:
//
//	//gpslint:ignore analyzer[,analyzer...] <reason>
//
// The reason is mandatory — a suppression without a recorded why is a
// blanket suppression, which the ignore policy forbids.
var pragmaRe = regexp.MustCompile(`^//gpslint:ignore\s+([a-z,]+)\s*(.*)$`)

type pragma struct {
	analyzers map[string]bool
	reason    string
	pos       token.Position
	used      bool
}

type pragmaSet struct {
	// byLine indexes pragmas by (filename, line they apply to). A
	// pragma applies to its own line and, when it is the only thing on
	// its line, to the line below.
	byLine map[string]map[int]*pragma
	all    []*pragma
}

func collectPragmas(pkg *Package) *pragmaSet {
	ps := &pragmaSet{byLine: make(map[string]map[int]*pragma)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := pragmaRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				p := &pragma{analyzers: make(map[string]bool), reason: strings.TrimSpace(m[2]), pos: pos}
				for _, name := range strings.Split(m[1], ",") {
					p.analyzers[name] = true
				}
				lines := ps.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]*pragma)
					ps.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = p
				if pos.Column == 1 || isCommentOnlyLine(pkg, f, c) {
					lines[pos.Line+1] = p
				}
				ps.all = append(ps.all, p)
			}
		}
	}
	return ps
}

// isCommentOnlyLine reports whether comment c starts its source line
// (ignoring whitespace), in which case the pragma governs the next line.
func isCommentOnlyLine(pkg *Package, f *ast.File, c *ast.Comment) bool {
	pos := pkg.Fset.Position(c.Pos())
	tf := pkg.Fset.File(c.Pos())
	if tf == nil {
		return pos.Column == 1
	}
	// A comment that is the first token on its line has nothing but
	// whitespace before it: its column is low and no AST node ends on
	// the same line before it. Approximate cheaply: treat column <= 8
	// past the line start as leading (indented comment).
	return pos.Column <= 8
}

// filter drops suppressed findings and appends a finding for every
// pragma that suppressed nothing or names an unknown analyzer or lacks
// a reason.
func (ps *pragmaSet) filter(diags []Diagnostic, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, d := range diags {
		if lines, ok := ps.byLine[d.Pos.Filename]; ok {
			if p := lines[d.Pos.Line]; p != nil && p.analyzers[d.Analyzer] {
				// Either way the pragma governed a real finding, so it
				// is not stale.
				p.used = true
				if p.reason == "" {
					out = append(out, Diagnostic{Pos: p.pos, Analyzer: d.Analyzer,
						Message: "ignore pragma without a reason; state why the rule does not apply here"})
					out = append(out, d)
				}
				continue
			}
		}
		out = append(out, d)
	}
	for _, p := range ps.all {
		for name := range p.analyzers {
			if known[name] && !p.used {
				out = append(out, Diagnostic{Pos: p.pos, Analyzer: name,
					Message: "stale ignore pragma: no " + name + " finding on the governed line"})
			}
		}
	}
	return out
}

// --- shared AST helpers ------------------------------------------------------

// forEachFunc visits every function declaration in the package,
// including methods. Function literals are visited as part of their
// enclosing declaration: nested walks see them via ast.Inspect.
func forEachFunc(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn(fd)
			}
		}
	}
}

// unparen strips parentheses. (ast.Unparen needs Go 1.22; the CI
// matrix still builds with 1.21.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// nil for builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package a function belongs
// to ("" for builtins and error.Error-style universe members).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// pathMatches reports whether the package path is, or is under, one of
// the listed paths.
func pathMatches(path string, list []string) bool {
	for _, p := range list {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// recvTypeName returns the named type a method's receiver points at
// ("" for plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
