// Package lzr simulates LZR (Izhikevich et al., USENIX Security 2021), the
// service fingerprinting layer of the GPS pipeline. LZR adopts the TCP
// connection ZMap opened, filters out middleboxes that acknowledge every
// port without speaking a protocol, and identifies the protocol actually
// running on the port — a necessary step when scanning unassigned ports,
// where the port number says nothing about the service.
package lzr

import (
	"gps/internal/asndb"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// Status classifies what LZR found behind a SYN-ACK.
type Status uint8

// Fingerprinting outcomes.
const (
	// StatusService marks a real service that spoke a recognizable or
	// unknown-but-data-bearing protocol.
	StatusService Status = iota
	// StatusMiddlebox marks a middlebox: the handshake completed but the
	// peer never sent data and tore down on push. Filtered.
	StatusMiddlebox
	// StatusUnresponsive marks a peer that stopped responding after the
	// handshake (e.g., the host disappeared between probe and grab).
	StatusUnresponsive
)

var statusNames = [...]string{"service", "middlebox", "unresponsive"}

// String names the status.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "unknown"
}

// Result is LZR's verdict on one (IP, port).
type Result struct {
	IP     asndb.IP
	Port   uint16
	Status Status
	Proto  features.Protocol
	// Handshakes is how many connections/triggers the waterfall needed
	// before identifying the service; contributes to bandwidth overhead.
	// Server-first protocols always identify in one.
	Handshakes int
	// BytesTx/BytesRx are the application-layer bytes exchanged during
	// fingerprinting.
	BytesTx int
	BytesRx int
	// Banner is the identifying response data (nil for silent services).
	Banner []byte
}

// Source is the view of the network LZR needs; *netmodel.Universe
// implements it.
type Source interface {
	HostAt(ip asndb.IP) (*netmodel.Host, bool)
	ServiceAt(ip asndb.IP, port uint16) (*netmodel.Service, bool)
}

// Fingerprinter runs LZR's identification waterfall.
type Fingerprinter struct {
	src Source
}

// New creates a fingerprinter over a source.
func New(src Source) *Fingerprinter { return &Fingerprinter{src: src} }

// assigned is the protocol conventionally assigned to well-known ports;
// LZR tries its trigger first on those ports.
var assigned = map[uint16]features.Protocol{
	21: features.ProtocolFTP, 22: features.ProtocolSSH, 23: features.ProtocolTelnet,
	25: features.ProtocolSMTP, 80: features.ProtocolHTTP, 110: features.ProtocolPOP3,
	143: features.ProtocolIMAP, 443: features.ProtocolTLS, 465: features.ProtocolTLS,
	587: features.ProtocolSMTP, 623: features.ProtocolIPMI, 993: features.ProtocolTLS,
	995: features.ProtocolTLS, 1433: features.ProtocolMSSQL, 1723: features.ProtocolPPTP,
	2323: features.ProtocolTelnet, 3306: features.ProtocolMySQL, 5900: features.ProtocolVNC,
	7547: features.ProtocolCWMP, 8080: features.ProtocolHTTP, 8443: features.ProtocolTLS,
	11211: features.ProtocolMemcached,
}

// Fingerprint identifies the service behind an acknowledged (ip, port) by
// exchanging simulated application-layer bytes: first it waits for a
// server-first banner; if none arrives it walks the client-first trigger
// waterfall (the port's assigned protocol first) and matches responses.
func (f *Fingerprinter) Fingerprint(ip asndb.IP, port uint16) Result {
	host, ok := f.src.HostAt(ip)
	if !ok {
		return Result{IP: ip, Port: port, Status: StatusUnresponsive}
	}
	svc, ok := host.ServiceAt(port)
	if !ok {
		if host.Middlebox {
			// Acknowledged the SYN, sent no banner, and resets when
			// LZR pushes data: the middlebox signature.
			first := clientTriggers[0]
			return Result{IP: ip, Port: port, Status: StatusMiddlebox,
				Handshakes: 1, BytesTx: len(first.payload)}
		}
		return Result{IP: ip, Port: port, Status: StatusUnresponsive}
	}

	res := Result{IP: ip, Port: port, Status: StatusService, Proto: features.ProtocolUnknown}

	// Server-first: the banner arrives on the first connection, whatever
	// the port number — this is why LZR can fingerprint unassigned
	// ports cheaply.
	if serverFirst[svc.Proto] {
		banner := Banner(svc)
		res.Handshakes = 1
		res.BytesRx = len(banner)
		res.Banner = banner
		if p, okID := identify(banner); okID {
			res.Proto = p
		}
		return res
	}

	// Client-first waterfall, assigned protocol first.
	order := clientTriggers
	if want, okA := assigned[port]; okA {
		reordered := make([]trigger, 0, len(clientTriggers))
		for _, tr := range clientTriggers {
			if tr.proto == want {
				reordered = append(reordered, tr)
			}
		}
		for _, tr := range clientTriggers {
			if tr.proto != want {
				reordered = append(reordered, tr)
			}
		}
		order = reordered
	}
	for i, tr := range order {
		res.Handshakes = i + 1
		res.BytesTx += len(tr.payload)
		resp := respondTo(svc, tr)
		if len(resp) == 0 {
			continue
		}
		res.BytesRx += len(resp)
		if p, okID := identify(resp); okID {
			res.Proto = p
			res.Banner = resp
			return res
		}
	}
	// Nothing matched: an acknowledged but unidentified service. LZR
	// keeps it (real services do run unknown protocols) with
	// ProtocolUnknown.
	res.Handshakes = len(order)
	return res
}

// MaxRealServicesPerHost is the Appendix B pseudo-service threshold: a host
// serving more than this many services is considered a pseudo-service host
// and all its services are filtered. The paper measures this rule at 100%
// recall and 99% precision.
const MaxRealServicesPerHost = 10

// IsPseudoHost applies the Appendix B rule to a host.
func IsPseudoHost(h *netmodel.Host) bool {
	return h.NumServices() > MaxRealServicesPerHost
}
