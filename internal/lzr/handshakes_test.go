package lzr

import (
	"testing"

	"gps/internal/features"
	"gps/internal/netmodel"
)

// TestBannerIdentifyRoundTrip: for every protocol, the banner the service
// emits must be identified back as that protocol — LZR's core competence.
func TestBannerIdentifyRoundTrip(t *testing.T) {
	for _, p := range features.AllProtocols() {
		svc := &netmodel.Service{Port: 12345, Proto: p, Feats: features.Set{}}
		banner := Banner(svc)
		if len(banner) == 0 {
			t.Errorf("%v: empty banner", p)
			continue
		}
		got, ok := identify(banner)
		if !ok || got != p {
			t.Errorf("identify(Banner(%v)) = %v, %v", p, got, ok)
		}
	}
}

// TestBannerCarriesFeatures: banners embed the identifying feature values
// so ZGrab-level extraction is consistent with what LZR saw.
func TestBannerCarriesFeatures(t *testing.T) {
	cases := []struct {
		proto features.Protocol
		key   features.Key
		val   string
	}{
		{features.ProtocolSSH, features.KeySSHBanner, "SSH-2.0-TestBanner"},
		{features.ProtocolHTTP, features.KeyHTTPServer, "test-httpd/1.0"},
		{features.ProtocolFTP, features.KeyFTPBanner, "220 test ftp"},
		{features.ProtocolVNC, features.KeyVNCDesktopName, "test-desktop"},
		{features.ProtocolMemcached, features.KeyMemcachedVersion, "9.9.9"},
	}
	for _, c := range cases {
		svc := &netmodel.Service{Proto: c.proto, Feats: features.Set{c.key: c.val}}
		banner := string(Banner(svc))
		if !contains(banner, c.val) {
			t.Errorf("%v banner %q missing feature value %q", c.proto, banner, c.val)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestIdentifyAmbiguity: CWMP responses are HTTP-framed but must not be
// misidentified as plain HTTP, and SMTP/FTP both use 220 greetings but
// must separate.
func TestIdentifyAmbiguity(t *testing.T) {
	cwmp := &netmodel.Service{Proto: features.ProtocolCWMP, Feats: features.Set{}}
	if p, _ := identify(Banner(cwmp)); p != features.ProtocolCWMP {
		t.Errorf("CWMP identified as %v", p)
	}
	smtp := &netmodel.Service{Proto: features.ProtocolSMTP,
		Feats: features.Set{features.KeySMTPBanner: "220 mail ESMTP Postfix"}}
	if p, _ := identify(Banner(smtp)); p != features.ProtocolSMTP {
		t.Errorf("SMTP identified as %v", p)
	}
	ftp := &netmodel.Service{Proto: features.ProtocolFTP,
		Feats: features.Set{features.KeyFTPBanner: "220 ProFTPD ready"}}
	if p, _ := identify(Banner(ftp)); p != features.ProtocolFTP {
		t.Errorf("FTP identified as %v", p)
	}
}

func TestIdentifyGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("garbage"), {0x00}, []byte("999 nope")} {
		if p, ok := identify(b); ok {
			t.Errorf("garbage %q identified as %v", b, p)
		}
	}
}

// TestRespondToCrossProtocol: services ignore foreign triggers except HTTP
// servers, which answer any text with an error page.
func TestRespondToCrossProtocol(t *testing.T) {
	tlsSvc := &netmodel.Service{Proto: features.ProtocolTLS, Feats: features.Set{}}
	httpTrigger := clientTriggers[0]
	if resp := respondTo(tlsSvc, httpTrigger); resp != nil {
		t.Errorf("TLS service answered an HTTP trigger with %q", resp)
	}
	httpSvc := &netmodel.Service{Proto: features.ProtocolHTTP, Feats: features.Set{}}
	var memcTrigger trigger
	for _, tr := range clientTriggers {
		if tr.proto == features.ProtocolMemcached {
			memcTrigger = tr
		}
	}
	if resp := respondTo(httpSvc, memcTrigger); len(resp) == 0 {
		t.Error("HTTP service silent on a text trigger; real servers answer 400")
	}
}

// TestUniverseFingerprintAccuracy: LZR must identify the protocol of every
// explicitly-typed service in a generated universe.
func TestUniverseFingerprintAccuracy(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(61))
	f := New(u)
	checked, wrong := 0, 0
	for _, h := range u.Hosts() {
		if h.Middlebox {
			continue
		}
		for port, svc := range h.Services() {
			if svc.Proto == features.ProtocolUnknown {
				continue
			}
			checked++
			r := f.Fingerprint(h.IP, port)
			if r.Status != StatusService || r.Proto != svc.Proto {
				wrong++
			}
		}
		if checked > 3000 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	if wrong > 0 {
		t.Errorf("%d of %d services misidentified", wrong, checked)
	}
}
