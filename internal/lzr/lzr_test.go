package lzr

import (
	"testing"

	"gps/internal/asndb"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// buildSource creates a universe-like source by hand.
type handSource struct {
	hosts map[asndb.IP]*netmodel.Host
}

func (s *handSource) HostAt(ip asndb.IP) (*netmodel.Host, bool) {
	h, ok := s.hosts[ip]
	return h, ok
}

func (s *handSource) ServiceAt(ip asndb.IP, port uint16) (*netmodel.Service, bool) {
	h, ok := s.hosts[ip]
	if !ok {
		return nil, false
	}
	return h.ServiceAt(port)
}

func newHandSource() *handSource {
	s := &handSource{hosts: make(map[asndb.IP]*netmodel.Host)}

	web := netmodel.NewHost(asndb.MustParseIP("10.0.0.1"), 1, "web")
	web.AddService(&netmodel.Service{Port: 80, Proto: features.ProtocolHTTP,
		Feats: features.Set{features.KeyProtocol: "http"}})
	web.AddService(&netmodel.Service{Port: 4444, Proto: features.ProtocolSSH,
		Feats: features.Set{features.KeyProtocol: "ssh"}})
	web.AddService(&netmodel.Service{Port: 5555, Proto: features.ProtocolUnknown})
	s.hosts[web.IP] = web

	mb := netmodel.NewHost(asndb.MustParseIP("10.0.0.2"), 1, "middlebox")
	mb.Middlebox = true
	s.hosts[mb.IP] = mb

	pseudo := netmodel.NewHost(asndb.MustParseIP("10.0.0.3"), 1, "pseudo")
	pseudo.SetPseudoBlock(1000, 3000, &netmodel.Service{
		Proto: features.ProtocolHTTP, Pseudo: true,
		Feats: features.Set{features.KeyProtocol: "http"},
	})
	s.hosts[pseudo.IP] = pseudo
	return s
}

func TestFingerprintService(t *testing.T) {
	f := New(newHandSource())
	r := f.Fingerprint(asndb.MustParseIP("10.0.0.1"), 80)
	if r.Status != StatusService || r.Proto != features.ProtocolHTTP {
		t.Errorf("got %v/%v", r.Status, r.Proto)
	}
	// Assigned protocol on assigned port: one handshake.
	if r.Handshakes != 1 {
		t.Errorf("handshakes = %d; want 1", r.Handshakes)
	}
}

func TestFingerprintUnassignedPort(t *testing.T) {
	f := New(newHandSource())
	// SSH on 4444: server-first, so the banner identifies it on the
	// first connection even though the port is unassigned.
	r := f.Fingerprint(asndb.MustParseIP("10.0.0.1"), 4444)
	if r.Status != StatusService || r.Proto != features.ProtocolSSH {
		t.Fatalf("got %v/%v", r.Status, r.Proto)
	}
	if r.Handshakes != 1 {
		t.Errorf("handshakes = %d; want 1 (server-first banner)", r.Handshakes)
	}
	if len(r.Banner) == 0 || r.BytesRx == 0 {
		t.Error("no banner bytes recorded")
	}
	// Unknown protocol exhausts the client-first trigger waterfall.
	r = f.Fingerprint(asndb.MustParseIP("10.0.0.1"), 5555)
	if r.Status != StatusService || r.Proto != features.ProtocolUnknown {
		t.Fatalf("unknown service: %v/%v", r.Status, r.Proto)
	}
	if r.Handshakes != len(clientTriggers) {
		t.Errorf("handshakes = %d; want %d", r.Handshakes, len(clientTriggers))
	}
	if r.BytesTx == 0 {
		t.Error("no trigger bytes counted")
	}
}

func TestFingerprintMiddlebox(t *testing.T) {
	f := New(newHandSource())
	r := f.Fingerprint(asndb.MustParseIP("10.0.0.2"), 12345)
	if r.Status != StatusMiddlebox {
		t.Errorf("middlebox fingerprinted as %v", r.Status)
	}
	if r.BytesTx == 0 {
		t.Error("middlebox detection sent no data")
	}
}

func TestFingerprintUnresponsive(t *testing.T) {
	f := New(newHandSource())
	if r := f.Fingerprint(asndb.MustParseIP("10.9.9.9"), 80); r.Status != StatusUnresponsive {
		t.Errorf("missing host fingerprinted as %v", r.Status)
	}
	// A real host, but a closed port.
	if r := f.Fingerprint(asndb.MustParseIP("10.0.0.1"), 9999); r.Status != StatusUnresponsive {
		t.Errorf("closed port fingerprinted as %v", r.Status)
	}
}

func TestFingerprintPseudoBlock(t *testing.T) {
	f := New(newHandSource())
	r := f.Fingerprint(asndb.MustParseIP("10.0.0.3"), 2000)
	// LZR sees a real HTTP handshake — pseudo services complete L7; the
	// dataset-level Appendix B filter is what removes them.
	if r.Status != StatusService {
		t.Errorf("pseudo block port status %v", r.Status)
	}
}

func TestIsPseudoHost(t *testing.T) {
	s := newHandSource()
	web, _ := s.HostAt(asndb.MustParseIP("10.0.0.1"))
	if IsPseudoHost(web) {
		t.Error("3-service host flagged as pseudo")
	}
	pseudo, _ := s.HostAt(asndb.MustParseIP("10.0.0.3"))
	if !IsPseudoHost(pseudo) {
		t.Error("2001-port pseudo block not flagged")
	}
	// Exactly at the threshold: not filtered; one above: filtered.
	h := netmodel.NewHost(1, 1, "t")
	for p := uint16(1); p <= MaxRealServicesPerHost; p++ {
		h.AddService(&netmodel.Service{Port: p})
	}
	if IsPseudoHost(h) {
		t.Error("host at threshold filtered")
	}
	h.AddService(&netmodel.Service{Port: 9999})
	if !IsPseudoHost(h) {
		t.Error("host above threshold not filtered")
	}
}

func TestStatusString(t *testing.T) {
	if StatusService.String() != "service" || StatusMiddlebox.String() != "middlebox" ||
		StatusUnresponsive.String() != "unresponsive" {
		t.Error("status names wrong")
	}
	if Status(99).String() != "unknown" {
		t.Error("out-of-range status")
	}
}
