package lzr

import (
	"bytes"
	"fmt"

	"gps/internal/features"
	"gps/internal/netmodel"
)

// This file simulates LZR's protocol interaction at the byte level.
// Protocols divide into two classes:
//
//   - Server-first: the peer volunteers a banner on connect (SSH, FTP,
//     SMTP, POP3, IMAP, Telnet, VNC, MySQL, MSSQL). One connection
//     identifies the service, whatever port it runs on.
//   - Client-first: the peer says nothing until the client speaks (HTTP,
//     TLS, CWMP, PPTP, Memcached, IPMI). LZR sends a waterfall of trigger
//     payloads and matches the responses.
//
// Responses are synthesized from the service's feature values, so the
// bytes LZR sees carry the same identifying content ZGrab later extracts.

// serverFirst marks the protocols that speak first.
var serverFirst = map[features.Protocol]bool{
	features.ProtocolSSH:    true,
	features.ProtocolFTP:    true,
	features.ProtocolSMTP:   true,
	features.ProtocolPOP3:   true,
	features.ProtocolIMAP:   true,
	features.ProtocolTelnet: true,
	features.ProtocolVNC:    true,
	features.ProtocolMySQL:  true,
	features.ProtocolMSSQL:  true,
}

// trigger is one client-first probe payload.
type trigger struct {
	proto   features.Protocol
	payload []byte
}

// clientTriggers is the waterfall order for client-first protocols:
// most common first to minimize expected handshakes.
var clientTriggers = []trigger{
	{features.ProtocolHTTP, []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")},
	{features.ProtocolTLS, []byte{0x16, 0x03, 0x01, 0x00, 0x05, 0x01}}, // ClientHello fragment
	{features.ProtocolCWMP, []byte("POST /cwmp HTTP/1.1\r\nSOAPAction: cwmp\r\n\r\n")},
	{features.ProtocolMemcached, []byte("version\r\n")},
	{features.ProtocolPPTP, []byte{0x00, 0x9c, 0x00, 0x01, 0x1a, 0x2b, 0x3c, 0x4d}}, // StartControlConnectionRequest
	{features.ProtocolIPMI, []byte{0x06, 0x00, 0xff, 0x07}},                         // RMCP ping
}

// Banner synthesizes the bytes a service sends (either on connect for
// server-first protocols or in response to its protocol's trigger).
func Banner(svc *netmodel.Service) []byte {
	get := func(k features.Key, def string) string {
		if v, ok := svc.Feats.Get(k); ok {
			return v
		}
		return def
	}
	switch svc.Proto {
	case features.ProtocolSSH:
		return []byte(get(features.KeySSHBanner, "SSH-2.0-unknown") + "\r\n")
	case features.ProtocolFTP:
		return []byte(get(features.KeyFTPBanner, "220 FTP ready") + "\r\n")
	case features.ProtocolSMTP:
		return []byte(get(features.KeySMTPBanner, "220 ESMTP") + "\r\n")
	case features.ProtocolPOP3:
		return []byte(get(features.KeyPOP3Banner, "+OK POP3") + "\r\n")
	case features.ProtocolIMAP:
		return []byte(get(features.KeyIMAPBanner, "* OK IMAP4") + "\r\n")
	case features.ProtocolTelnet:
		// IAC DO/WILL negotiation followed by the login banner.
		return append([]byte{0xff, 0xfd, 0x18, 0xff, 0xfb, 0x01},
			[]byte(get(features.KeyTelnetBanner, "login:"))...)
	case features.ProtocolVNC:
		return []byte("RFB 003.008\n" + get(features.KeyVNCDesktopName, ""))
	case features.ProtocolMySQL:
		return append([]byte{0x4a, 0x00, 0x00, 0x00, 0x0a},
			[]byte(get(features.KeyMySQLVersion, "8.0")+"\x00")...)
	case features.ProtocolMSSQL:
		return append([]byte{0x04, 0x01, 0x00, 0x25},
			[]byte(get(features.KeyMSSQLVersion, "15.0"))...)
	case features.ProtocolHTTP:
		return []byte(fmt.Sprintf(
			"HTTP/1.1 200 OK\r\nServer: %s\r\nContent-Type: text/html\r\n\r\n<html><head><title>%s</title></head></html>",
			get(features.KeyHTTPServer, "unknown"), get(features.KeyHTTPTitle, "")))
	case features.ProtocolTLS:
		// ServerHello + Certificate fragment carrying the cert hash.
		return append([]byte{0x16, 0x03, 0x03, 0x00, 0x31, 0x02},
			[]byte(get(features.KeyTLSCertHash, ""))...)
	case features.ProtocolCWMP:
		return []byte("HTTP/1.1 200 OK\r\nServer: " + get(features.KeyCWMPHeader, "cwmp") +
			"\r\nSOAPServer: cwmp\r\n\r\n")
	case features.ProtocolMemcached:
		return []byte("VERSION " + get(features.KeyMemcachedVersion, "1.6") + "\r\n")
	case features.ProtocolPPTP:
		return append([]byte{0x00, 0x9c, 0x00, 0x01, 0x1a, 0x2b, 0x3c, 0x4d, 0x00, 0x02},
			[]byte(get(features.KeyPPTPVendor, ""))...)
	case features.ProtocolIPMI:
		return append([]byte{0x06, 0x00, 0xff, 0x07, 0x06},
			[]byte(get(features.KeyIPMIBanner, ""))...)
	}
	// Unknown protocols ack and keep the connection open but send
	// nothing recognizable.
	return nil
}

// matchers recognize a protocol from response bytes.
var matchers = map[features.Protocol]func([]byte) bool{
	features.ProtocolSSH:    func(b []byte) bool { return bytes.HasPrefix(b, []byte("SSH-")) },
	features.ProtocolFTP:    func(b []byte) bool { return bytes.HasPrefix(b, []byte("220 ")) && !bytes.Contains(b, []byte("ESMTP")) },
	features.ProtocolSMTP:   func(b []byte) bool { return bytes.HasPrefix(b, []byte("220")) && bytes.Contains(b, []byte("SMTP")) },
	features.ProtocolPOP3:   func(b []byte) bool { return bytes.HasPrefix(b, []byte("+OK")) },
	features.ProtocolIMAP:   func(b []byte) bool { return bytes.HasPrefix(b, []byte("* OK")) },
	features.ProtocolTelnet: func(b []byte) bool { return len(b) >= 2 && b[0] == 0xff && (b[1] == 0xfd || b[1] == 0xfb) },
	features.ProtocolVNC:    func(b []byte) bool { return bytes.HasPrefix(b, []byte("RFB ")) },
	features.ProtocolMySQL:  func(b []byte) bool { return len(b) > 4 && b[4] == 0x0a },
	features.ProtocolMSSQL:  func(b []byte) bool { return len(b) > 1 && b[0] == 0x04 && b[1] == 0x01 },
	features.ProtocolHTTP: func(b []byte) bool {
		return bytes.HasPrefix(b, []byte("HTTP/")) && !bytes.Contains(b, []byte("SOAPServer"))
	},
	features.ProtocolTLS:       func(b []byte) bool { return len(b) >= 6 && b[0] == 0x16 && b[5] == 0x02 },
	features.ProtocolCWMP:      func(b []byte) bool { return bytes.Contains(b, []byte("SOAPServer")) },
	features.ProtocolMemcached: func(b []byte) bool { return bytes.HasPrefix(b, []byte("VERSION ")) },
	features.ProtocolPPTP:      func(b []byte) bool { return len(b) >= 10 && b[0] == 0x00 && b[1] == 0x9c && b[9] == 0x02 },
	features.ProtocolIPMI:      func(b []byte) bool { return len(b) >= 5 && b[0] == 0x06 && b[3] == 0x07 && b[4] == 0x06 },
}

// identify matches response bytes against every known protocol.
func identify(resp []byte) (features.Protocol, bool) {
	if len(resp) == 0 {
		return features.ProtocolUnknown, false
	}
	// Check in a fixed order so ambiguous prefixes resolve
	// deterministically; CWMP before HTTP since CWMP responses are
	// HTTP-framed.
	order := []features.Protocol{
		features.ProtocolCWMP, features.ProtocolHTTP, features.ProtocolTLS,
		features.ProtocolSSH, features.ProtocolFTP, features.ProtocolSMTP,
		features.ProtocolPOP3, features.ProtocolIMAP, features.ProtocolTelnet,
		features.ProtocolVNC, features.ProtocolMySQL, features.ProtocolMSSQL,
		features.ProtocolMemcached, features.ProtocolPPTP, features.ProtocolIPMI,
	}
	for _, p := range order {
		if matchers[p](resp) {
			return p, true
		}
	}
	return features.ProtocolUnknown, false
}

// respondTo simulates how a service reacts to a client-first trigger: it
// answers its own protocol's trigger with its banner; HTTP servers also
// answer any text trigger with an error page; everything else ignores
// foreign payloads.
func respondTo(svc *netmodel.Service, tr trigger) []byte {
	if svc.Proto == tr.proto {
		return Banner(svc)
	}
	if svc.Proto == features.ProtocolHTTP && len(tr.payload) > 0 &&
		(tr.payload[0]|0x20 >= 'a' && tr.payload[0]|0x20 <= 'z') {
		// A real web server answers unknown text verbs with 400/405.
		return []byte("HTTP/1.1 400 Bad Request\r\n\r\n")
	}
	return nil
}
