package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format version this
// package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo emits the registry in Prometheus text format: families sorted
// by name, instances by label values, histograms as cumulative
// <name>_bucket{le=...} series plus _sum and _count. Scraping takes the
// registration mutex briefly to snapshot the family list; it never
// blocks an Inc/Observe.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.instances2() {
			writeMetric(cw, f, m)
		}
	}
	err := cw.w.(*bufio.Writer).Flush()
	return cw.n, err
}

// instances2 is sortedInstances; split out so writeMetric stays testable.
func (f *family) instances2() []*metric { return f.sortedInstances() }

func writeMetric(w io.Writer, f *family, m *metric) {
	switch f.kind {
	case KindCounter:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelBlock(f.labelKeys, m.labelVals), m.count.Load())
	case KindGauge:
		v := math.Float64frombits(m.bits.Load())
		if m.gaugeFn != nil {
			v = m.gaugeFn()
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelBlock(f.labelKeys, m.labelVals), formatFloat(v))
	case KindHistogram:
		var cum uint64
		for i := range m.bucketN {
			cum += m.bucketN[i].Load()
			le := "+Inf"
			if i < len(f.buckets) {
				le = formatFloat(f.buckets[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelBlockLe(f.labelKeys, m.labelVals, le), cum)
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelBlock(f.labelKeys, m.labelVals),
			formatFloat(math.Float64frombits(m.sumBits.Load())))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelBlock(f.labelKeys, m.labelVals), cum)
	}
}

// labelBlock renders {k="v",...}; empty when there are no labels.
func labelBlock(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelBlockLe renders the label block with the histogram le label
// appended last.
func labelBlockLe(keys, vals []string, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Handler serves the registry on GET (or HEAD) — the /v1/metricz
// endpoint, mountable on any mux.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET or HEAD only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WriteTo(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }
