package telemetry

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestTelemetryHammer races the registry the way a live daemon does:
// writer goroutines increment counters, move gauges, and observe
// histograms flat out while a scraper renders /v1/metricz in a loop.
// Every scrape must parse, and the counter values read across scrapes
// must be monotonic — a torn read or a lost update would show up as a
// malformed line or a counter going backward. CI re-runs this under the
// race detector with -count=2.
func TestTelemetryHammer(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const series = 4 // writers share series pairwise: registration races too
	const perWriter = 5000

	// Pre-register one series so the very first scrape has content; the
	// writers still race registration of the rest against the scraper.
	r.Counter("hammer_ops_total", "ops", "writer", "0")

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			lbl := strconv.Itoa(w % series)
			c := r.Counter("hammer_ops_total", "ops", "writer", lbl)
			g := r.Gauge("hammer_depth", "depth", "writer", lbl)
			h := r.Histogram("hammer_lat_seconds", "lat", nil, "writer", lbl)
			e := r.EWMA("hammer_ewma", "ewma", 0.3, "writer", lbl)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				e.Update(float64(i % 10))
			}
		}(w)
	}

	// Scraper: render and validate until every writer finished, tracking
	// per-series counter monotonicity across scrapes.
	stop := make(chan struct{})
	go func() { writerWG.Wait(); close(stop) }()
	scrapes := 0
	last := make(map[string]uint64)
	for looping := true; looping; {
		select {
		case <-stop:
			looping = false // one final scrape below observes the end state
		default:
		}
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		out := sb.String()
		checkExposition(t, out)
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "hammer_ops_total{") {
				continue
			}
			name, val, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("malformed counter line %q", line)
			}
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("counter %s value %q not an integer", name, val)
			}
			if v < last[name] {
				t.Fatalf("counter %s went backward: %d -> %d", name, last[name], v)
			}
			last[name] = v
		}
		scrapes++
	}

	if scrapes < 2 {
		t.Fatalf("only %d scrapes completed", scrapes)
	}
	var sum uint64
	for i := 0; i < series; i++ {
		sum += r.Counter("hammer_ops_total", "ops", "writer", strconv.Itoa(i)).Value()
	}
	if want := uint64(writers * perWriter); sum != want {
		t.Fatalf("lost updates: %d increments recorded, want %d", sum, want)
	}
	if h := r.Histogram("hammer_lat_seconds", "lat", nil, "writer", "0"); h.Count() == 0 {
		t.Fatal("histogram recorded nothing")
	}
}
