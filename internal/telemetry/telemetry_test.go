package telemetry

import (
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_ops_total", "ops", "kind", "read")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registering the identical metric returns the same series.
	if r.Counter("t_ops_total", "ops", "kind", "read").Value() != 5 {
		t.Fatal("re-registration did not return the existing series")
	}
	// A different label value is a different series.
	if r.Counter("t_ops_total", "ops", "kind", "write").Value() != 0 {
		t.Fatal("distinct label value shares state")
	}

	g := r.Gauge("t_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	r.GaugeFunc("t_now", "now", func() float64 { return 42 })
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), "t_now 42\n") {
		t.Fatalf("GaugeFunc not evaluated at scrape:\n%s", sb.String())
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind", func(r *Registry) { r.Counter("t_x", ""); r.Gauge("t_x", "") }},
		{"labels", func(r *Registry) { r.Counter("t_x", "", "a", "1"); r.Counter("t_x", "", "b", "1") }},
		{"buckets", func(r *Registry) {
			r.Histogram("t_h", "", []float64{1, 2})
			r.Histogram("t_h", "", []float64{1, 3})
		}},
		{"odd-labels", func(r *Registry) { r.Counter("t_x", "", "a") }},
		{"bad-name", func(r *Registry) { r.Counter("9bad", "") }},
		{"bad-label-name", func(r *Registry) { r.Counter("t_x", "", "bad-label", "v") }},
		{"unsorted-buckets", func(r *Registry) { r.Histogram("t_h", "", []float64{2, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("conflicting registration did not panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.01, 0.1, 1, 10})
	if h.P50() != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 90 fast, 9 medium, 1 slow: p50 in the first bucket, p99 in the third.
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05)
	}
	h.Observe(5)
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(90*0.005+9*0.05+5)) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	if p := h.P50(); p <= 0 || p > 0.01 {
		t.Fatalf("p50 = %v, want within first bucket (0, 0.01]", p)
	}
	// Rank 99 of 100 is the last medium sample: second bucket.
	if p := h.P99(); p <= 0.01 || p > 0.1 {
		t.Fatalf("p99 = %v, want within second bucket (0.01, 0.1]", p)
	}
	// Rank 99.5 is the slow outlier: fourth bucket.
	if p := h.Quantile(0.995); p <= 1 || p > 10 {
		t.Fatalf("q99.5 = %v, want within (1, 10]", p)
	}
	// An observation past the largest bound lands in +Inf and clamps the
	// top quantile to the largest finite bound.
	h2 := r.Histogram("t_lat2_seconds", "latency", []float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 1", got)
	}
}

func TestEWMA(t *testing.T) {
	r := NewRegistry()
	e := r.EWMA("t_ewma_seconds", "smoothed", 0.5)
	e.Update(10)
	if e.Value() != 10 {
		t.Fatalf("first sample should seed: %v", e.Value())
	}
	e.Update(20)
	if got := e.Value(); math.Abs(got-15) > 1e-9 {
		t.Fatalf("ewma = %v, want 15", got)
	}
}

func TestSpanObserves(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_span_seconds", "span", nil)
	sp := StartSpan(h)
	if d := sp.End(); d < 0 {
		t.Fatalf("negative span duration %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("span did not observe: count %d", h.Count())
	}
}

func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_ops_total", "")
	h := r.Histogram("t_h_seconds", "", nil)
	r.SetEnabled(false)
	c.Inc()
	h.Observe(1)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled registry still recorded")
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled registry did not record")
	}
}

// metricLine matches one sample line of the text exposition format.
var metricLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// checkExposition asserts every line of a scrape is a comment or a
// well-formed sample. Shared with the race hammer.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	if body == "" {
		t.Fatal("empty exposition")
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_reqs_total", "requests served", "code", "200").Add(7)
	r.Counter("t_reqs_total", "requests served", "code", "304").Add(3)
	r.Gauge("t_epoch", "current epoch").Set(12)
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Gauge("t_weird", "label escaping", "path", "a\"b\\c\nd").Set(1)

	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	checkExposition(t, out)

	for _, want := range []string{
		"# TYPE t_reqs_total counter",
		`t_reqs_total{code="200"} 7`,
		`t_reqs_total{code="304"} 3`,
		"# TYPE t_epoch gauge",
		"t_epoch 12",
		"# TYPE t_lat_seconds histogram",
		`t_lat_seconds_bucket{le="0.1"} 1`,
		`t_lat_seconds_bucket{le="1"} 2`,
		`t_lat_seconds_bucket{le="+Inf"} 3`,
		"t_lat_seconds_sum 5.55",
		"t_lat_seconds_count 3",
		`t_weird{path="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must be name-sorted for deterministic scrapes.
	if strings.Index(out, "t_epoch") > strings.Index(out, "t_lat_seconds") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_ok_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}
