// Package telemetry is the runtime metrics substrate every long-lived
// GPS process reports through: a dependency-free registry of atomic
// counters, gauges, fixed-bucket latency histograms, and EWMA trackers,
// exposed in Prometheus text format on /v1/metricz.
//
// The package exists because the paper's continuous-scanning claim
// (§5.5, §6) is an operations claim: GPS only beats exhaustive scanning
// if an operator can watch epoch latency, the re-verify/discover budget
// split, and per-shard skew while the daemon runs for weeks. The
// evaluation metrics (internal/metrics) answer "is the inventory good?";
// this package answers "is the daemon healthy?" — different consumers,
// different lifetimes, so they are different packages.
//
// Design rules, in priority order:
//
//   - Hot paths are lock-free. Inc/Add/Set/Observe touch only atomics;
//     the registry mutex is taken by registration and scraping, never by
//     an instrumented operation. Instrument sites register once at
//     construction and hold the returned handles.
//   - Registration failures panic. A name collision with a different
//     metric type or label schema is a programming error that must
//     surface at init, not per-op: handing back an error would force
//     every Inc() behind an if.
//   - Re-registration of an identical metric returns the existing one,
//     so per-shard instruments can be built by every coordinator or test
//     in a process without coordination.
//
// Metric identity follows the Prometheus model: a name plus an ordered
// set of label key/value pairs. Labels are passed as alternating
// key, value strings: Counter("gps_rpc_frames_total", help, "side",
// "coordinator", "dir", "sent").
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types a family can hold.
type Kind uint8

// Metric kinds, in exposition order.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// DefBuckets is the default latency histogram layout: exponential-ish
// upper bounds in seconds from 1ms to 2 minutes, matching the spread
// between a cached query (<1ms) and a budgeted shard epoch (seconds to
// minutes). The +Inf bucket is implicit.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Registry holds one process's metric families. The zero value is not
// usable; call NewRegistry (or use Default).
type Registry struct {
	disabled atomic.Bool

	mu       sync.Mutex
	families map[string]*family
}

// family groups every labeled instance of one metric name.
type family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	buckets   []float64 // histograms only; frozen at first registration

	mu        sync.Mutex // instance map only; hot paths never touch it
	instances map[string]*metric
}

// metric is one (name, labels) series.
type metric struct {
	labelVals []string

	// counter / gauge state. Counters count in u64; gauges store
	// math.Float64bits. Exactly one representation is live per kind.
	count atomic.Uint64
	bits  atomic.Uint64

	// gaugeFn, when set, is evaluated at scrape time instead of bits.
	gaugeFn func() float64

	// histogram state: bucketN[i] counts observations <= buckets[i],
	// non-cumulative; the last slot is the +Inf bucket.
	bucketN []atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Default is the process-wide registry every instrumented GPS subsystem
// reports to and /v1/metricz serves.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// SetEnabled turns the registry's hot-path updates on or off. Disabled,
// every Inc/Add/Set/Observe is a single atomic load and return — the
// knob exists so BenchmarkTelemetryOverhead can measure instrumentation
// cost against the same binary, and so an embedder can run dark.
// Registration and scraping are unaffected.
func (r *Registry) SetEnabled(on bool) { r.disabled.Store(!on) }

// on reports whether hot-path updates apply.
func (r *Registry) on() bool { return !r.disabled.Load() }

// validName matches the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitLabels validates and splits alternating key/value labels.
func splitLabels(name string, labels []string) (keys, vals []string) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %s: odd label list %q", name, labels))
	}
	for i := 0; i < len(labels); i += 2 {
		if !validName(labels[i]) {
			panic(fmt.Sprintf("telemetry: metric %s: bad label name %q", name, labels[i]))
		}
		keys = append(keys, labels[i])
		vals = append(vals, labels[i+1])
	}
	return keys, vals
}

// register resolves (name, labels) to its metric, creating family and
// instance as needed. Any structural conflict — kind, label schema, or
// histogram buckets differing from the existing family — panics: these
// are init-time programming errors, and the policy of this package is
// that they never reach a per-op code path.
func (r *Registry) register(kind Kind, name, help string, buckets []float64, labels []string) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: bad metric name %q", name))
	}
	keys, vals := splitLabels(name, labels)

	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labelKeys: keys, buckets: buckets,
			instances: make(map[string]*metric),
		}
		r.families[name] = f
	}
	r.mu.Unlock()

	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s, is %s", name, kind, f.kind))
	}
	if strings.Join(f.labelKeys, ",") != strings.Join(keys, ",") {
		panic(fmt.Sprintf("telemetry: metric %s re-registered with labels %v, has %v", name, keys, f.labelKeys))
	}
	if kind == KindHistogram && !equalF64(f.buckets, buckets) {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with buckets %v, has %v", name, buckets, f.buckets))
	}

	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.instances[key]
	if !ok {
		m = &metric{labelVals: vals}
		if kind == KindHistogram {
			m.bucketN = make([]atomic.Uint64, len(buckets)+1)
		}
		f.instances[key] = m
	}
	return m
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Counter -----------------------------------------------------------------

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and lock-free.
type Counter struct {
	r *Registry
	m *metric
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{r: r, m: r.register(KindCounter, name, help, nil, labels)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c.r.on() {
		c.m.count.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.m.count.Load() }

// --- Gauge -------------------------------------------------------------------

// Gauge is a value that goes up and down. All methods are safe for
// concurrent use and lock-free.
type Gauge struct {
	r *Registry
	m *metric
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{r: r, m: r.register(KindGauge, name, help, nil, labels)}
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values that are cheaper to read on demand than to track
// (heap size, snapshot age). Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	m := r.register(KindGauge, name, help, nil, labels)
	m.gaugeFn = fn
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g.r.on() {
		g.m.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (which may be negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if !g.r.on() {
		return
	}
	for {
		old := g.m.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.m.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.m.bits.Load()) }

// --- Histogram ---------------------------------------------------------------

// Histogram accumulates observations into fixed buckets chosen at
// registration. Observe is lock-free; quantiles are estimated from the
// bucket layout (exact enough for p50/p99 dashboards, not for billing).
type Histogram struct {
	r       *Registry
	m       *metric
	buckets []float64
}

// Histogram registers (or fetches) a histogram. Bucket upper bounds
// must be strictly ascending; nil selects DefBuckets. The +Inf bucket
// is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s buckets not ascending: %v", name, buckets))
		}
	}
	return &Histogram{r: r, m: r.register(KindHistogram, name, help, buckets, labels), buckets: buckets}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if !h.r.on() {
		return
	}
	// Linear scan: bucket counts are small (len(DefBuckets) == 16) and
	// the loop is branch-predictable; a binary search buys nothing here.
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.m.bucketN[i].Add(1)
	for {
		old := h.m.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.m.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.m.bucketN {
		n += h.m.bucketN[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.m.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket holding the target rank, the same estimate
// Prometheus's histogram_quantile computes. Observations in the +Inf
// bucket clamp to the largest finite bound. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.m.bucketN))
	var total uint64
	for i := range h.m.bucketN {
		counts[i] = h.m.bucketN[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.buckets) {
			// +Inf bucket: the largest finite bound is the best estimate.
			return h.buckets[len(h.buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.buckets[i-1]
		}
		frac := 1.0
		if c > 0 {
			frac = (rank - float64(cum-c)) / float64(c)
		}
		return lo + (h.buckets[i]-lo)*frac
	}
	return h.buckets[len(h.buckets)-1]
}

// P50 and P99 are the dashboard quantiles the epoch summary logs.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// --- Span --------------------------------------------------------------------

// Span times one phase of work into a histogram (in seconds). Use it
// for the epoch phase split:
//
//	sp := telemetry.StartSpan(reverifyHist)
//	... phase ...
//	elapsed := sp.End()
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan opens a span against h.
func StartSpan(h *Histogram) Span { return Span{h: h, start: time.Now()} }

// End closes the span, observes the elapsed seconds, and returns the
// duration.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// --- EWMA --------------------------------------------------------------------

// EWMA tracks an exponentially weighted moving average and exposes it
// as a gauge: the smoothed per-shard epoch latency the elastic-
// membership planner reads to spot sustained hotspots without reacting
// to one slow epoch. Update is lock-free (CAS on the float bits).
type EWMA struct {
	r     *Registry
	m     *metric
	alpha float64
	seen  atomic.Bool
}

// EWMA registers (or fetches) an EWMA gauge; alpha in (0, 1] is the
// weight of each new sample (0 selects 0.3). Note re-fetching returns a
// NEW accumulator over the same exposed gauge — hold the handle.
func (r *Registry) EWMA(name, help string, alpha float64, labels ...string) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EWMA{r: r, m: r.register(KindGauge, name, help, nil, labels), alpha: alpha}
}

// Update folds a sample into the average; the first sample seeds it.
func (e *EWMA) Update(sample float64) {
	if !e.r.on() {
		return
	}
	if e.seen.CompareAndSwap(false, true) {
		e.m.bits.Store(math.Float64bits(sample))
		return
	}
	for {
		old := e.m.bits.Load()
		nv := math.Float64bits(e.alpha*sample + (1-e.alpha)*math.Float64frombits(old))
		if e.m.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current average.
func (e *EWMA) Value() float64 { return math.Float64frombits(e.m.bits.Load()) }

// sortedFamilies snapshots the family list in name order for exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedInstances snapshots one family's instances in label order.
func (f *family) sortedInstances() []*metric {
	f.mu.Lock()
	out := make([]*metric, 0, len(f.instances))
	for _, m := range f.instances {
		out = append(out, m)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].labelVals, "\x00") < strings.Join(out[j].labelVals, "\x00")
	})
	return out
}
