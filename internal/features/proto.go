package features

// Protocol identifies the application-layer protocol a service speaks.
// GPS's feature set spans the 15 TCP protocols for which Censys exposes a
// banner (§5.2); ProtocolUnknown covers everything else.
type Protocol uint8

// The 15 banner-bearing protocols of Table 1, plus Unknown.
const (
	ProtocolUnknown Protocol = iota
	ProtocolHTTP
	ProtocolTLS
	ProtocolSSH
	ProtocolVNC
	ProtocolSMTP
	ProtocolFTP
	ProtocolIMAP
	ProtocolPOP3
	ProtocolCWMP
	ProtocolTelnet
	ProtocolPPTP
	ProtocolMySQL
	ProtocolMemcached
	ProtocolMSSQL
	ProtocolIPMI

	numProtocols
)

// NumProtocols is the number of named protocols, excluding Unknown.
const NumProtocols = int(numProtocols) - 1

var protoNames = [...]string{
	ProtocolUnknown:   "unknown",
	ProtocolHTTP:      "http",
	ProtocolTLS:       "tls",
	ProtocolSSH:       "ssh",
	ProtocolVNC:       "vnc",
	ProtocolSMTP:      "smtp",
	ProtocolFTP:       "ftp",
	ProtocolIMAP:      "imap",
	ProtocolPOP3:      "pop3",
	ProtocolCWMP:      "cwmp",
	ProtocolTelnet:    "telnet",
	ProtocolPPTP:      "pptp",
	ProtocolMySQL:     "mysql",
	ProtocolMemcached: "memcached",
	ProtocolMSSQL:     "mssql",
	ProtocolIPMI:      "ipmi",
}

// String returns the protocol's lowercase name.
func (p Protocol) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return "unknown"
}

// ParseProtocol maps a name back to a Protocol; unknown names return
// ProtocolUnknown.
func ParseProtocol(name string) Protocol {
	for p, n := range protoNames {
		if n == name {
			return Protocol(p)
		}
	}
	return ProtocolUnknown
}

// AllProtocols returns the 15 named protocols.
func AllProtocols() []Protocol {
	out := make([]Protocol, 0, NumProtocols)
	for p := ProtocolHTTP; p < numProtocols; p++ {
		out = append(out, p)
	}
	return out
}

// BannerKey returns the application-layer feature key that carries this
// protocol's primary banner, and whether one exists. HTTP and TLS carry
// several features; this returns the most identifying one (Server header
// and certificate hash, respectively).
func (p Protocol) BannerKey() (Key, bool) {
	switch p {
	case ProtocolHTTP:
		return KeyHTTPServer, true
	case ProtocolTLS:
		return KeyTLSCertHash, true
	case ProtocolSSH:
		return KeySSHBanner, true
	case ProtocolVNC:
		return KeyVNCDesktopName, true
	case ProtocolSMTP:
		return KeySMTPBanner, true
	case ProtocolFTP:
		return KeyFTPBanner, true
	case ProtocolIMAP:
		return KeyIMAPBanner, true
	case ProtocolPOP3:
		return KeyPOP3Banner, true
	case ProtocolCWMP:
		return KeyCWMPHeader, true
	case ProtocolTelnet:
		return KeyTelnetBanner, true
	case ProtocolPPTP:
		return KeyPPTPVendor, true
	case ProtocolMySQL:
		return KeyMySQLVersion, true
	case ProtocolMemcached:
		return KeyMemcachedVersion, true
	case ProtocolMSSQL:
		return KeyMSSQLVersion, true
	case ProtocolIPMI:
		return KeyIPMIBanner, true
	}
	return KeyNone, false
}
