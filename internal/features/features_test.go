package features

import "testing"

func TestAllKeysCount(t *testing.T) {
	keys := AllKeys()
	if len(keys) != 25 {
		t.Fatalf("AllKeys() = %d keys; Table 1 defines 25", len(keys))
	}
	if NumKeys != 25 {
		t.Fatalf("NumKeys = %d; want 25", NumKeys)
	}
	seen := map[Key]bool{}
	for _, k := range keys {
		if !k.Valid() {
			t.Errorf("key %v invalid", k)
		}
		if seen[k] {
			t.Errorf("key %v duplicated", k)
		}
		seen[k] = true
	}
}

func TestKeyClassification(t *testing.T) {
	app, net := 0, 0
	for _, k := range AllKeys() {
		switch {
		case k.IsApplication():
			app++
		case k.IsNetwork():
			net++
		default:
			t.Errorf("key %v neither application nor network", k)
		}
	}
	// 23 transport/application features plus /16 and ASN.
	if app != 23 || net != 2 {
		t.Errorf("app=%d net=%d; want 23/2", app, net)
	}
	if KeyNone.Valid() {
		t.Error("KeyNone must be invalid")
	}
}

func TestExtendedSubnetKeys(t *testing.T) {
	for _, k := range CandidateNetworkKeys() {
		if !k.Valid() {
			t.Errorf("candidate key %v invalid", k)
		}
		if !k.IsNetwork() {
			t.Errorf("candidate key %v not network", k)
		}
	}
	cases := []struct {
		k    Key
		bits uint8
		ok   bool
	}{
		{KeySubnet16, 16, true},
		{KeySubnet17, 17, true},
		{KeySubnet20, 20, true},
		{KeySubnet23, 23, true},
		{KeyASN, 0, false},
		{KeyHTTPServer, 0, false},
	}
	for _, c := range cases {
		bits, ok := c.k.SubnetBits()
		if ok != c.ok || bits != c.bits {
			t.Errorf("SubnetBits(%v) = %d,%v; want %d,%v", c.k, bits, ok, c.bits, c.ok)
		}
	}
}

func TestKeyNames(t *testing.T) {
	if KeyProtocol.String() != "Protocol" {
		t.Errorf("KeyProtocol name %q", KeyProtocol)
	}
	if KeySubnet16.String() != "IP's /16 subnetwork" {
		t.Errorf("KeySubnet16 name %q", KeySubnet16)
	}
	if Key(200).String() == "" {
		t.Error("out-of-range key must render something")
	}
}

func TestSetValuesOrderedAndCloned(t *testing.T) {
	s := Set{KeySSHBanner: "b", KeyProtocol: "ssh", KeyHTTPServer: "n"}
	vals := s.Values()
	if len(vals) != 3 {
		t.Fatalf("Values() = %d entries", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1].Key >= vals[i].Key {
			t.Error("Values() not sorted by key")
		}
	}
	if v, ok := s.Get(KeyProtocol); !ok || v != "ssh" {
		t.Error("Get failed")
	}
	if _, ok := s.Get(KeyVNCDesktopName); ok {
		t.Error("Get returned absent key")
	}
	c := s.Clone()
	c[KeyProtocol] = "changed"
	if s[KeyProtocol] != "ssh" {
		t.Error("Clone shares storage")
	}
}

func TestValueString(t *testing.T) {
	v := Value{Key: KeyHTTPServer, Val: "nginx"}
	if v.String() != "HTTP: Server=nginx" {
		t.Errorf("Value.String() = %q", v.String())
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	if NumProtocols != 15 {
		t.Fatalf("NumProtocols = %d; the paper names 15 banner protocols", NumProtocols)
	}
	for _, p := range AllProtocols() {
		if ParseProtocol(p.String()) != p {
			t.Errorf("ParseProtocol(%q) != %v", p.String(), p)
		}
	}
	if ParseProtocol("nosuch") != ProtocolUnknown {
		t.Error("unknown protocol must parse to Unknown")
	}
	if Protocol(99).String() != "unknown" {
		t.Error("out-of-range protocol must be unknown")
	}
}

func TestBannerKeys(t *testing.T) {
	for _, p := range AllProtocols() {
		k, ok := p.BannerKey()
		if !ok {
			t.Errorf("protocol %v has no banner key", p)
			continue
		}
		if !k.IsApplication() {
			t.Errorf("banner key %v of %v is not an application feature", k, p)
		}
	}
	if _, ok := ProtocolUnknown.BannerKey(); ok {
		t.Error("Unknown protocol must not have a banner key")
	}
}
