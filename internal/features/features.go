// Package features defines the feature vocabulary GPS uses to predict
// service presence. The paper (Table 1) uses 25 features spanning three
// layers: one transport-layer feature (the protocol running on a port), 22
// application-layer features (banners, certificates, keys, version strings
// across the 15 TCP protocols Censys exposes), and two network-layer
// features (the host's /16 subnetwork and its ASN).
//
// A feature is identified by a Key and carries a string Value. Keys are
// stable small integers so they can be embedded in map keys cheaply.
package features

import "fmt"

// Key identifies one of GPS's feature families.
type Key uint8

// The 25 features of Table 1, in the paper's order.
const (
	// KeyNone is the zero Key; it marks an absent feature slot in
	// composite conditions and is never attached to a service.
	KeyNone Key = iota

	// Transport/application-layer features.
	KeyProtocol         // service protocol name (56 unique values in the paper)
	KeyTLSCertHash      // TLS certificate hash
	KeyTLSOrg           // TLS certificate organization
	KeyTLSSubject       // TLS certificate subject name
	KeyHTTPTitle        // HTTP HTML title
	KeyHTTPBodyHash     // HTTP body hash
	KeyHTTPServer       // HTTP Server header
	KeyHTTPHeader       // HTTP header fingerprint
	KeySSHHostKey       // SSH host key
	KeySSHBanner        // SSH banner
	KeyVNCDesktopName   // VNC desktop name
	KeySMTPBanner       // SMTP banner
	KeyFTPBanner        // FTP banner
	KeyIMAPBanner       // IMAP banner
	KeyPOP3Banner       // POP3 banner
	KeyCWMPHeader       // CWMP header
	KeyCWMPBodyHash     // CWMP body hash
	KeyTelnetBanner     // Telnet banner
	KeyPPTPVendor       // PPTP vendor
	KeyMySQLVersion     // MySQL server version
	KeyMemcachedVersion // Memcached server version
	KeyMSSQLVersion     // MSSQL server version
	KeyIPMIBanner       // IPMI banner

	// Network-layer features.
	KeySubnet16 // the IP's /16 subnetwork
	KeyASN      // the IP's autonomous system number

	// numKeys is the count of Table-1 keys including KeyNone. The
	// extended subnet keys below are candidates evaluated in Appendix C
	// (Table 4) but excluded from GPS's final 25-feature configuration.
	numKeys

	// Extended network-layer feature candidates (Appendix C).
	KeySubnet17
	KeySubnet18
	KeySubnet19
	KeySubnet20
	KeySubnet21
	KeySubnet22
	KeySubnet23

	numKeysExtended
)

// NumKeys is the number of Table-1 feature keys, excluding KeyNone.
const NumKeys = int(numKeys) - 1

var keyNames = [numKeysExtended]string{
	KeyNone:             "none",
	KeyProtocol:         "Protocol",
	KeyTLSCertHash:      "TLS Cert: Hash",
	KeyTLSOrg:           "TLS Cert: Organization",
	KeyTLSSubject:       "TLS Cert: Subject Name",
	KeyHTTPTitle:        "HTTP: HTML title",
	KeyHTTPBodyHash:     "HTTP: Body Hash",
	KeyHTTPServer:       "HTTP: Server",
	KeyHTTPHeader:       "HTTP: Header",
	KeySSHHostKey:       "SSH: Host Key",
	KeySSHBanner:        "SSH: Banner",
	KeyVNCDesktopName:   "VNC: Desktop Name",
	KeySMTPBanner:       "SMTP: Banner",
	KeyFTPBanner:        "FTP: Banner",
	KeyIMAPBanner:       "IMAP: Banner",
	KeyPOP3Banner:       "POP3: Banner",
	KeyCWMPHeader:       "CWMP: Header",
	KeyCWMPBodyHash:     "CWMP: Body Hash",
	KeyTelnetBanner:     "Telnet: Banner",
	KeyPPTPVendor:       "PPTP: Vendor",
	KeyMySQLVersion:     "MYSQL: Server Version",
	KeyMemcachedVersion: "Memcached: Server Version",
	KeyMSSQLVersion:     "MSSQL: Server Version",
	KeyIPMIBanner:       "IPMI: Banner",
	KeySubnet16:         "IP's /16 subnetwork",
	KeyASN:              "IP's ASN",
	KeySubnet17:         "IP's /17 subnetwork",
	KeySubnet18:         "IP's /18 subnetwork",
	KeySubnet19:         "IP's /19 subnetwork",
	KeySubnet20:         "IP's /20 subnetwork",
	KeySubnet21:         "IP's /21 subnetwork",
	KeySubnet22:         "IP's /22 subnetwork",
	KeySubnet23:         "IP's /23 subnetwork",
}

// String returns the paper's display name for the key.
func (k Key) String() string {
	if int(k) < len(keyNames) {
		return keyNames[k]
	}
	return fmt.Sprintf("Key(%d)", uint8(k))
}

// Valid reports whether k names a defined feature (KeyNone is not valid).
func (k Key) Valid() bool {
	return k > KeyNone && k < numKeysExtended && k != numKeys
}

// IsNetwork reports whether k is a network-layer feature (subnet or ASN).
func (k Key) IsNetwork() bool {
	return k == KeySubnet16 || k == KeyASN || (k > numKeys && k < numKeysExtended)
}

// IsApplication reports whether k is a transport/application-layer feature
// (everything that is extracted from a service response rather than from
// the IP address itself).
func (k Key) IsApplication() bool { return k.Valid() && !k.IsNetwork() }

// SubnetBits returns the prefix length of a subnet feature key and whether
// k is one.
func (k Key) SubnetBits() (uint8, bool) {
	switch {
	case k == KeySubnet16:
		return 16, true
	case k >= KeySubnet17 && k <= KeySubnet23:
		return 17 + uint8(k-KeySubnet17), true
	}
	return 0, false
}

// AllKeys returns the 25 Table-1 feature keys in the paper's order,
// excluding the Appendix C subnet candidates.
func AllKeys() []Key {
	keys := make([]Key, 0, NumKeys)
	for k := KeyProtocol; k < numKeys; k++ {
		keys = append(keys, k)
	}
	return keys
}

// CandidateNetworkKeys returns the Appendix C network-layer candidate set:
// ASN plus every subnet size from /16 through /23.
func CandidateNetworkKeys() []Key {
	return []Key{KeyASN, KeySubnet16, KeySubnet17, KeySubnet18, KeySubnet19,
		KeySubnet20, KeySubnet21, KeySubnet22, KeySubnet23}
}

// ApplicationKeys returns only the transport/application-layer keys.
func ApplicationKeys() []Key {
	var keys []Key
	for _, k := range AllKeys() {
		if k.IsApplication() {
			keys = append(keys, k)
		}
	}
	return keys
}

// NetworkKeys returns only the network-layer keys.
func NetworkKeys() []Key { return []Key{KeySubnet16, KeyASN} }

// Value is a single observed feature value: a key plus its string payload.
type Value struct {
	Key Key
	Val string
}

// String renders the value as "Key=Val".
func (v Value) String() string { return v.Key.String() + "=" + v.Val }

// Set is an immutable collection of feature values attached to one service
// or host, at most one value per key.
type Set map[Key]string

// Get returns the value for key k and whether it is present.
func (s Set) Get(k Key) (string, bool) {
	v, ok := s[k]
	return v, ok
}

// Values returns the set's contents as a slice in ascending key order.
func (s Set) Values() []Value {
	out := make([]Value, 0, len(s))
	for k := KeyProtocol; k < numKeys; k++ {
		if v, ok := s[k]; ok {
			out = append(out, Value{Key: k, Val: v})
		}
	}
	return out
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
